#!/usr/bin/env python3
"""Turn phantomlint -json output into GitHub workflow annotations.

Reads the JSON report (schema version 1) from the file named in argv[1]
and emits one workflow command per finding: ::error for live findings,
::notice for //lint:allow-suppressed ones (so suppressions stay visible
in review without failing the job). File paths are relativized to the
workspace so annotations attach to the diff view.
"""
import json
import os
import sys


def main() -> int:
    path = sys.argv[1]
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::warning::could not read lint report {path}: {e}")
        return 0
    if report.get("version") != 1:
        print(f"::warning::unexpected lint report version {report.get('version')}")
        return 0

    cwd = os.getcwd()
    live = 0
    for f in report.get("findings", []):
        rel = os.path.relpath(f["file"], cwd)
        msg = f"[{f['analyzer']}] {f['message']}"
        where = f"file={rel},line={f['line']},col={f['col']}"
        if f.get("suppressed"):
            print(f"::notice {where},title=phantomlint (suppressed)::{msg}")
        else:
            live += 1
            print(f"::error {where},title=phantomlint::{msg}")
    print(f"{live} live finding(s), "
          f"{len(report.get('findings', [])) - live} suppressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
