package mqttsim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// recycleBrokerCfg keeps keep-alive enforcement on so every connected
// session arms a deadline timer — guaranteeing pending work at recycle
// time.
func recycleBrokerCfg() BrokerConfig { return BrokerConfig{EnforceKeepAlive: true} }

// recycleLab owns the pooled pieces: clock, network, registry, stacks,
// the handshake RNG and the broker itself.
type recycleLab struct {
	clk            *simtime.Clock
	nw             *netsim.Network
	reg            *obs.Registry
	devIP, srvIP   *ipnet.Stack
	devTCP, srvTCP *tcpsim.Stack
	rng            *simtime.Rand
	broker         *Broker
}

func newRecycleLab() *recycleLab {
	clk := simtime.NewClock()
	l := &recycleLab{clk: clk, nw: netsim.NewNetwork(clk, 1), reg: obs.NewRegistry(), rng: simtime.NewRand(99)}
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.devIP = ipnet.NewStack(clk, l.nw.NewHost("device"))
	l.srvIP = ipnet.NewStack(clk, l.nw.NewHost("broker"))
	l.devIP.MustAddIface(seg, "192.168.1.10/24")
	l.srvIP.MustAddIface(seg, "192.168.1.20/24")
	l.devTCP = tcpsim.NewStack(clk, l.devIP, tcpsim.Config{}, 7)
	l.srvTCP = tcpsim.NewStack(clk, l.srvIP, tcpsim.Config{}, 8)
	l.broker = NewBroker(clk, recycleBrokerCfg())
	clk.Instrument(l.reg)
	return l
}

func (l *recycleLab) recycle() {
	l.clk.Reset()
	l.nw.Reset(1)
	l.reg.Reset()
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.devIP.Reset(l.nw.NewHost("device"))
	l.srvIP.Reset(l.nw.NewHost("broker"))
	l.devIP.MustAddIface(seg, "192.168.1.10/24")
	l.srvIP.MustAddIface(seg, "192.168.1.20/24")
	l.devTCP.Reset(l.devIP, tcpsim.Config{}, 7)
	l.srvTCP.Reset(l.srvIP, tcpsim.Config{}, 8)
	l.rng.Reseed(99)
	l.broker.Reset(recycleBrokerCfg())
	l.clk.Instrument(l.reg)
}

// drive connects a device client, subscribes, publishes with ack, rides
// through two keep-alive cycles and disconnects, fingerprinting the
// broker-side event transcript, alarms, client state, a sentinel RNG draw
// and the metrics snapshot.
func (l *recycleLab) drive(t *testing.T) string {
	t.Helper()
	var lines []string
	l.broker.OnConnect = func(s *Session) {
		lines = append(lines, fmt.Sprintf("connect:%s@%v", s.ClientID(), l.clk.Now()))
	}
	l.broker.OnPublish = func(s *Session, p Packet) {
		lines = append(lines, fmt.Sprintf("pub:%s:%s:%q@%v", s.ClientID(), p.Topic, p.Payload, l.clk.Now()))
	}
	if _, err := l.srvTCP.Listen(8883, func(c *tcpsim.Conn) {
		l.broker.Accept(tlssim.Server(c, l.rng))
	}); err != nil {
		t.Fatal(err)
	}
	cfg := ClientConfig{ClientID: "dev-1", KeepAlive: 10 * time.Second, Pattern: proto.PatternOnIdle, PingTimeout: 5 * time.Second}
	cli := NewClient(l.clk, tlssim.Client(l.devTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 8883}), l.rng), cfg)
	cli.OnConnected = func() { lines = append(lines, fmt.Sprintf("connack@%v", l.clk.Now())) }
	l.clk.RunFor(2 * time.Second)
	if !cli.Connected() {
		t.Fatal("client did not connect")
	}
	if err := cli.Subscribe("cmd/dev-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Publish("events/dev-1", []byte("motion"), 128, true); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(25 * time.Second) // two keep-alive ping cycles
	cli.Disconnect()
	l.clk.RunFor(2 * time.Second)
	alarms, err := json.Marshal(l.broker.Alarms())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(l.reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("lines=%v connected=%v alarms=%s draw=%d now=%v snap=%s",
		lines, cli.Connected(), alarms, l.rng.Intn(1<<30), l.clk.Now(), snap)
}

// TestBrokerResetByteIdentity recycles a broker whose previous life left a
// connected session with its keep-alive enforcement deadline armed and
// requires the revived broker to replay a full connect/publish/ping
// exchange byte-identically to a fresh one, across two generations.
func TestBrokerResetByteIdentity(t *testing.T) {
	fresh := newRecycleLab().drive(t)

	l := newRecycleLab()
	if _, err := l.srvTCP.Listen(8883, func(c *tcpsim.Conn) {
		l.broker.Accept(tlssim.Server(c, l.rng))
	}); err != nil {
		t.Fatal(err)
	}
	cfg := ClientConfig{ClientID: "dev-9", KeepAlive: 30 * time.Second, Pattern: proto.PatternOnIdle, PingTimeout: 15 * time.Second}
	cli := NewClient(l.clk, tlssim.Client(l.devTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 8883}), l.rng), cfg)
	l.clk.RunFor(3 * time.Second)
	if !cli.Connected() {
		t.Fatal("setup client did not connect")
	}
	// Session live, enforcement deadline and client ping timer both pending.
	l.recycle()
	for _, g := range l.reg.Snapshot().Gauges {
		if g.Name == "simtime_queue_depth" && (g.Value != 0 || g.Max != 0) {
			t.Fatalf("simtime_queue_depth after recycle = %d (max %d), want 0", g.Value, g.Max)
		}
	}
	if got := l.drive(t); got != fresh {
		t.Errorf("recycled broker diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}

	l.recycle()
	if got := l.drive(t); got != fresh {
		t.Errorf("second recycling generation diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}
}
