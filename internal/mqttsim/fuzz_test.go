package mqttsim

import "testing"

// FuzzUnmarshal: arbitrary bytes must never panic the packet decoder, and
// every successfully decoded packet must re-encode decodable.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Packet{Type: PacketConnect, ClientID: "dev", KeepAlive: 31e9}.Marshal(0))
	f.Add(Packet{Type: PacketPublish, Topic: "a/b", ID: 7, Payload: []byte("x")}.Marshal(64))
	f.Add(Packet{Type: PacketPingReq}.Marshal(48))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		round, err := Unmarshal(p.Marshal(0))
		if err != nil {
			t.Fatalf("re-encode of %+v failed: %v", p, err)
		}
		if round.Type != p.Type || round.Topic != p.Topic || round.ID != p.ID {
			t.Fatalf("round trip changed packet: %+v -> %+v", p, round)
		}
	})
}
