package mqttsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tlssim"
)

// BrokerConfig parameterises the server side.
type BrokerConfig struct {
	// EnforceKeepAlive enables spec-style liveness: a client that sends
	// nothing for GraceFactor × its advertised keep-alive is dropped with a
	// "device offline" alarm. Off by default, matching the paper's Finding
	// 3: production servers are passive and treat silence as idleness.
	EnforceKeepAlive bool
	// GraceFactor scales the advertised keep-alive when enforcement is on.
	// Default 1.5, the MQTT-specified tolerance.
	GraceFactor float64
	// ConnAckLen pads CONNACK packets.
	ConnAckLen int
	// PingRespLen pads PINGRESP packets.
	PingRespLen int
}

func (c *BrokerConfig) fill() {
	if c.GraceFactor <= 0 {
		c.GraceFactor = 1.5
	}
}

// Session is one broker-side MQTT session. A client that reconnects gets a
// new Session; superseded sessions linger half-open (Finding 2).
type Session struct {
	broker    *Broker
	sess      *tlssim.Conn
	clientID  string
	keepAlive time.Duration
	connected bool
	closed    bool
	clean     bool
	deadline  *simtime.Timer
	subs      map[string]bool
}

// ClientID returns the session's client identifier (empty before CONNECT).
func (s *Session) ClientID() string { return s.clientID }

// Closed reports whether the session has ended.
func (s *Session) Closed() bool { return s.closed }

// CommandResult reports the outcome of a broker-initiated PUBLISH that
// requested acknowledgement.
type CommandResult struct {
	ID       uint16
	Acked    bool
	Duration time.Duration
}

// ErrNoSession reports a command for a client with no live session.
var ErrNoSession = errors.New("mqttsim: client has no live session")

// Broker is the server side of the MQTT protocol. One broker serves all
// devices of one endpoint cloud.
type Broker struct {
	clk      *simtime.Clock
	cfg      BrokerConfig
	active   map[string]*Session
	halfOpen map[string][]*Session
	pending  map[uint16]*pendingCommand
	nextID   uint16
	alarms   []proto.Alarm

	// OnConnect fires when a client completes CONNECT.
	OnConnect func(*Session)
	// OnPublish delivers every client PUBLISH to the server application.
	OnPublish func(*Session, Packet)
	// OnAlarm fires for every raised alarm (also recorded in Alarms).
	OnAlarm func(proto.Alarm)
}

type pendingCommand struct {
	session *Session
	sentAt  simtime.Time
	timer   *simtime.Timer
	done    func(CommandResult)
}

// NewBroker creates a broker.
func NewBroker(clk *simtime.Clock, cfg BrokerConfig) *Broker {
	cfg.fill()
	return &Broker{
		clk:      clk,
		cfg:      cfg,
		active:   make(map[string]*Session),
		halfOpen: make(map[string][]*Session),
		pending:  make(map[uint16]*pendingCommand),
		nextID:   1,
	}
}

// Reset returns the broker to its freshly constructed state for a new
// configuration while keeping its allocations. Live and half-open sessions
// are dropped with their enforcement deadlines stopped, pending command
// timers are cancelled, and the observer hooks are cleared for the owner
// to rewire. A reset broker behaves identically to NewBroker(clk, cfg).
func (b *Broker) Reset(cfg BrokerConfig) {
	cfg.fill()
	b.cfg = cfg
	for _, s := range b.active {
		s.deadline.Stop()
	}
	clear(b.active)
	for _, list := range b.halfOpen {
		for _, s := range list {
			s.deadline.Stop()
		}
	}
	clear(b.halfOpen)
	for _, pc := range b.pending {
		pc.timer.Stop()
	}
	clear(b.pending)
	b.nextID = 1
	clear(b.alarms)
	b.alarms = b.alarms[:0]
	b.OnConnect, b.OnPublish, b.OnAlarm = nil, nil, nil
}

// Accept attaches broker protocol handling to an inbound TLS session.
func (b *Broker) Accept(sess *tlssim.Conn) *Session {
	s := &Session{broker: b, sess: sess, subs: make(map[string]bool)}
	sess.OnMessage = func(m []byte) { b.onMessage(s, m) }
	sess.OnClose = func(error) { b.onSessionClosed(s) }
	return s
}

// Alarms returns all alarms raised so far.
func (b *Broker) Alarms() []proto.Alarm {
	out := make([]proto.Alarm, len(b.alarms))
	copy(out, b.alarms)
	return out
}

// ActiveSession returns the live session for a client, if any.
func (b *Broker) ActiveSession(clientID string) (*Session, bool) {
	s, ok := b.active[clientID]
	return s, ok
}

// HalfOpenCount reports how many superseded sessions linger for a client —
// the Finding 2 observable.
func (b *Broker) HalfOpenCount(clientID string) int {
	return len(b.halfOpen[clientID])
}

// Publish pushes a command message to a client's live session, padded to
// padTo bytes. If ackTimeout is nonzero the broker waits that long for a
// PUBACK; on expiry it closes the session (the paper's measured behaviour
// for command timeouts, e.g. Philips Hue's 21s) and reports Acked=false.
// done may be nil.
func (b *Broker) Publish(clientID, topic string, payload []byte, padTo int, ackTimeout time.Duration, done func(CommandResult)) error {
	s, ok := b.active[clientID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, clientID)
	}
	id := b.nextID
	b.nextID++
	if b.nextID == 0 {
		b.nextID = 1
	}
	pkt := Packet{
		Type:      PacketPublish,
		Topic:     topic,
		ID:        id,
		Payload:   payload,
		Timestamp: b.clk.Now(),
	}
	if err := s.sess.Send(pkt.Marshal(padTo)); err != nil {
		return err
	}
	pc := &pendingCommand{session: s, sentAt: b.clk.Now(), done: done}
	b.pending[id] = pc
	if ackTimeout > 0 {
		pc.timer = b.clk.Schedule(ackTimeout, func() {
			delete(b.pending, id)
			b.raiseAlarm(clientID, "command-timeout", topic)
			s.close(true)
			if done != nil {
				done(CommandResult{ID: id, Acked: false, Duration: b.clk.Now() - pc.sentAt})
			}
		})
	}
	return nil
}

func (b *Broker) onMessage(s *Session, m []byte) {
	pkt, err := Unmarshal(m)
	if err != nil {
		return
	}
	s.resetDeadline()
	switch pkt.Type {
	case PacketConnect:
		b.handleConnect(s, pkt)
	case PacketPingReq:
		s.send(Packet{Type: PacketPingResp}, b.cfg.PingRespLen)
	case PacketSubscribe:
		s.subs[pkt.Topic] = true
		s.send(Packet{Type: PacketSubAck}, 0)
	case PacketPublish:
		if pkt.ID != 0 {
			s.send(Packet{Type: PacketPubAck, ID: pkt.ID}, 0)
		}
		if b.OnPublish != nil {
			b.OnPublish(s, pkt)
		}
	case PacketPubAck:
		if pc, ok := b.pending[pkt.ID]; ok {
			delete(b.pending, pkt.ID)
			if pc.timer != nil {
				pc.timer.Stop()
			}
			if pc.done != nil {
				pc.done(CommandResult{ID: pkt.ID, Acked: true, Duration: b.clk.Now() - pc.sentAt})
			}
		}
	case PacketDisconnect:
		s.clean = true
		s.close(false)
	}
}

func (b *Broker) handleConnect(s *Session, pkt Packet) {
	s.clientID = pkt.ClientID
	s.keepAlive = pkt.KeepAlive
	s.connected = true
	// A reconnecting client supersedes its previous session, which is kept
	// half-open without any alarm (Finding 2).
	if old, ok := b.active[s.clientID]; ok && old != s && !old.closed {
		b.halfOpen[s.clientID] = append(b.halfOpen[s.clientID], old)
	}
	b.active[s.clientID] = s
	s.resetDeadline()
	s.send(Packet{Type: PacketConnAck}, b.cfg.ConnAckLen)
	if b.OnConnect != nil {
		b.OnConnect(s)
	}
}

func (b *Broker) onSessionClosed(s *Session) {
	if s.closed {
		return
	}
	s.closed = true
	s.deadline.Stop()
	if s.clientID == "" {
		return
	}
	// Drop from the half-open list if it lingered there.
	ho := b.halfOpen[s.clientID]
	for i, old := range ho {
		if old == s {
			b.halfOpen[s.clientID] = append(ho[:i], ho[i+1:]...)
			// A superseded session dying is unremarkable: a live
			// replacement exists, so no alarm (Finding 2).
			return
		}
	}
	if b.active[s.clientID] == s {
		delete(b.active, s.clientID)
		if !s.clean {
			b.raiseAlarm(s.clientID, "device-offline", "connection lost with no replacement")
		}
	}
}

func (b *Broker) raiseAlarm(clientID, kind, detail string) {
	a := proto.Alarm{At: b.clk.Now(), ClientID: clientID, Kind: kind, Detail: detail}
	b.alarms = append(b.alarms, a)
	if b.OnAlarm != nil {
		b.OnAlarm(a)
	}
}

func (s *Session) send(pkt Packet, padTo int) {
	// Transport errors surface through the session's OnClose.
	_ = s.sess.Send(pkt.Marshal(padTo))
}

// resetDeadline pushes the enforcement deadline back on every client
// packet. The alarm timer is allocated once per session and rearmed in
// place; before Timer.Reset existed this path scheduled a fresh event per
// packet and left the cancelled one tombstoned in the heap until its
// grace deadline passed, retaining the session from the closure.
func (s *Session) resetDeadline() {
	if !s.broker.cfg.EnforceKeepAlive || s.keepAlive <= 0 {
		return
	}
	if s.deadline == nil {
		s.deadline = s.broker.clk.NewTimer(func() {
			s.broker.raiseAlarm(s.clientID, "device-offline", "keep-alive deadline missed")
			s.close(true)
		})
	}
	grace := time.Duration(float64(s.keepAlive) * s.broker.cfg.GraceFactor)
	s.deadline.Reset(grace)
}

// close ends the session from the broker side.
func (s *Session) close(abort bool) {
	if s.closed {
		return
	}
	// The enforcement alarm must not outlive the session: a clean
	// DISCONNECT arrives through onMessage, which just rearmed the
	// deadline via resetDeadline.
	s.deadline.Stop()
	if abort {
		s.sess.Close()
	} else {
		s.send(Packet{Type: PacketDisconnect}, 0)
		s.sess.Close()
	}
	s.broker.onSessionClosed(s)
}
