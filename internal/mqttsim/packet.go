// Package mqttsim implements the MQTT subset IoT devices use: a long-lived
// session with CONNECT/CONNACK, SUBSCRIBE, PUBLISH/PUBACK and
// PINGREQ/PINGRESP keep-alives.
//
// Timeout behaviour follows the paper's measurements rather than the
// letter of the spec where the two differ:
//
//   - Clients (devices) initiate keep-alives and enforce a response
//     timeout (the "timeout threshold of keep-alive messages" parameter);
//     their keep-alive schedule is either fixed-period or reset-on-activity
//     ("on-idle") — the "pattern" parameter.
//   - Brokers are passive by default (Finding 3: unidirectional liveness
//     checking): they answer pings but never probe, and tolerate idle
//     clients indefinitely unless spec-style enforcement is enabled.
//   - A broker keeps superseded half-open sessions without alarm and only
//     raises "device offline" when a client's last live session dies with
//     no replacement (Finding 2).
package mqttsim

import (
	"errors"
	"time"

	"repro/internal/simtime"
	"repro/internal/wire"
)

// PacketType identifies an MQTT control packet.
type PacketType uint8

// Control packet types (a subset of MQTT 3.1.1).
const (
	PacketConnect PacketType = iota + 1
	PacketConnAck
	PacketSubscribe
	PacketSubAck
	PacketPublish
	PacketPubAck
	PacketPingReq
	PacketPingResp
	PacketDisconnect
)

// String names the packet type for traces.
func (t PacketType) String() string {
	switch t {
	case PacketConnect:
		return "CONNECT"
	case PacketConnAck:
		return "CONNACK"
	case PacketSubscribe:
		return "SUBSCRIBE"
	case PacketSubAck:
		return "SUBACK"
	case PacketPublish:
		return "PUBLISH"
	case PacketPubAck:
		return "PUBACK"
	case PacketPingReq:
		return "PINGREQ"
	case PacketPingResp:
		return "PINGRESP"
	case PacketDisconnect:
		return "DISCONNECT"
	default:
		return "UNKNOWN"
	}
}

// Packet is one MQTT control packet. Only the fields relevant to a type
// are encoded.
type Packet struct {
	Type PacketType
	// ClientID and KeepAlive travel in CONNECT.
	ClientID  string
	KeepAlive time.Duration
	// Topic travels in SUBSCRIBE and PUBLISH.
	Topic string
	// ID travels in PUBLISH (nonzero requests a PUBACK) and PUBACK.
	ID uint16
	// Payload travels in PUBLISH.
	Payload []byte
	// Timestamp is the sender's generation time for PUBLISH packets. The
	// timestamp-checking countermeasure and staleness policies read it.
	Timestamp simtime.Time
}

// ErrBadPacket reports an undecodable packet.
var ErrBadPacket = errors.New("mqttsim: bad packet")

// Marshal encodes the packet, padding with zeros to at least padTo bytes
// so that its TLS record has the profile-specified wire length.
func (p Packet) Marshal(padTo int) []byte {
	w := wire.NewWriter(32 + len(p.Payload))
	w.U8(uint8(p.Type))
	switch p.Type {
	case PacketConnect:
		w.String(p.ClientID)
		w.U16(uint16(p.KeepAlive / time.Second))
	case PacketSubscribe:
		w.String(p.Topic)
	case PacketPublish:
		w.String(p.Topic)
		w.U16(p.ID)
		w.U64(uint64(p.Timestamp))
		w.Bytes16(p.Payload)
	case PacketPubAck:
		w.U16(p.ID)
	}
	w.PadTo(padTo)
	return w.Bytes()
}

// Unmarshal decodes a packet, ignoring trailing padding.
func Unmarshal(b []byte) (Packet, error) {
	r := wire.NewReader(b)
	var p Packet
	p.Type = PacketType(r.U8())
	switch p.Type {
	case PacketConnect:
		p.ClientID = r.String()
		p.KeepAlive = time.Duration(r.U16()) * time.Second
	case PacketSubscribe:
		p.Topic = r.String()
	case PacketPublish:
		p.Topic = r.String()
		p.ID = r.U16()
		p.Timestamp = simtime.Time(r.U64())
		payload := r.Bytes16()
		if payload != nil {
			p.Payload = make([]byte, len(payload))
			copy(p.Payload, payload)
		}
	case PacketPubAck:
		p.ID = r.U16()
	case PacketConnAck, PacketSubAck, PacketPingReq, PacketPingResp, PacketDisconnect:
	default:
		return Packet{}, ErrBadPacket
	}
	if r.Err() != nil {
		return Packet{}, ErrBadPacket
	}
	return p, nil
}
