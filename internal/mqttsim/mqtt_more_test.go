package mqttsim

import (
	"testing"
	"time"

	"repro/internal/proto"
)

func TestPublishBeforeConnectFails(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	// No RunFor: CONNACK not yet received.
	if _, err := cli.Publish("t", []byte("x"), 0, false); err != ErrNotConnected {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
	if err := cli.Subscribe("t"); err != ErrNotConnected {
		t.Fatalf("subscribe err = %v, want ErrNotConnected", err)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	if err := cli.Subscribe("alerts/#"); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	s, _ := e.broker.ActiveSession("dev-1")
	if !s.subs["alerts/#"] {
		t.Fatal("subscription not recorded at broker")
	}
}

func TestBrokerGraceFactorCustom(t *testing.T) {
	e := newEnv(BrokerConfig{EnforceKeepAlive: true, GraceFactor: 3})
	cli := e.dial(defaultCfg()) // 31s keep-alive
	e.clk.RunFor(time.Second)
	cli.pingTimer.Stop() // silence
	// Deadline = 3 x 31s = 93s; at 60s nothing yet.
	e.clk.RunFor(time.Minute)
	if len(e.broker.Alarms()) != 0 {
		t.Fatal("alarm before the custom grace elapsed")
	}
	e.clk.RunFor(time.Minute)
	if e.broker.Alarms()[0].Kind != "device-offline" {
		t.Fatalf("alarms = %v", e.broker.Alarms())
	}
}

func TestClientConfigValidation(t *testing.T) {
	e := newEnv(BrokerConfig{})
	mustPanic := func(cfg ClientConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("config %+v should panic", cfg)
			}
		}()
		e.dial(cfg)
	}
	mustPanic(ClientConfig{ClientID: "x", PingTimeout: time.Second}) // no keep-alive
	mustPanic(ClientConfig{ClientID: "x", KeepAlive: time.Second})   // no ping timeout
}

func TestServerInitiatedDisconnect(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	var reason proto.CloseReason
	cli.OnClosed = func(r proto.CloseReason) { reason = r }
	e.clk.RunFor(time.Second)
	s, _ := e.broker.ActiveSession("dev-1")
	s.send(Packet{Type: PacketDisconnect}, 0)
	e.clk.RunFor(time.Second)
	if reason != proto.ReasonServerClosed {
		t.Fatalf("reason = %v, want server-closed", reason)
	}
}

func TestPacketTypeStrings(t *testing.T) {
	tests := []struct {
		typ  PacketType
		want string
	}{
		{PacketConnect, "CONNECT"}, {PacketConnAck, "CONNACK"},
		{PacketSubscribe, "SUBSCRIBE"}, {PacketSubAck, "SUBACK"},
		{PacketPublish, "PUBLISH"}, {PacketPubAck, "PUBACK"},
		{PacketPingReq, "PINGREQ"}, {PacketPingResp, "PINGRESP"},
		{PacketDisconnect, "DISCONNECT"}, {PacketType(0), "UNKNOWN"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("%d = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestTwoClientsIndependentSessions(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cfg2 := defaultCfg()
	cfg2.ClientID = "dev-2"
	cli1 := e.dial(defaultCfg())
	cli2 := e.dial(cfg2)
	e.clk.RunFor(time.Second)
	var got []string
	e.broker.OnPublish = func(s *Session, p Packet) { got = append(got, s.ClientID()) }
	if _, err := cli1.Publish("a", nil, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cli2.Publish("b", nil, 0, false); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("publishers = %v", got)
	}
	// Dropping one must not disturb the other.
	cli1.Disconnect()
	e.clk.RunFor(time.Second)
	if _, ok := e.broker.ActiveSession("dev-2"); !ok {
		t.Fatal("dev-2 lost its session")
	}
	if len(e.broker.Alarms()) != 0 {
		t.Fatalf("alarms = %v", e.broker.Alarms())
	}
}
