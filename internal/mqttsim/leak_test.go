package mqttsim

import (
	"testing"
	"time"
)

// Regression test for the enforcement-deadline leak: a clean DISCONNECT
// rearms the session's keep-alive deadline (the DISCONNECT packet itself
// passes through resetDeadline) just before the session closes. The close
// path must stop that alarm; before eager heap removal the cancelled event
// also lingered in the queue — retaining the session — until the grace
// deadline passed. After the teardown settles, the clock must hold no
// events at all.
func TestCleanDisconnectLeavesNoPendingEvents(t *testing.T) {
	e := newEnv(BrokerConfig{EnforceKeepAlive: true})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	if !cli.Connected() {
		t.Fatal("client never connected")
	}

	cli.Disconnect()
	// Long enough for the FIN exchange and any (leaked) grace deadline
	// (1.5 × 31s) to surface, short of nothing else.
	e.clk.RunFor(2 * time.Minute)

	if n := e.clk.Pending(); n != 0 {
		t.Fatalf("clock has %d pending events after clean disconnect, want 0 (leaked timer?)", n)
	}
	if got := len(e.broker.Alarms()); got != 0 {
		t.Fatalf("clean disconnect raised %d alarms: %v", got, e.broker.Alarms())
	}
	if s, ok := e.broker.ActiveSession("dev-1"); ok {
		t.Fatalf("broker still holds active session %v after disconnect", s.ClientID())
	}
}
