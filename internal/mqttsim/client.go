package mqttsim

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tlssim"
)

// ClientConfig parameterises a device-side MQTT session. The three timeout
// fields are exactly the paper's three timeout-behaviour parameters.
type ClientConfig struct {
	ClientID string
	// KeepAlive is the ping period. Required.
	KeepAlive time.Duration
	// Pattern selects fixed-period or on-idle pings. Default on-idle.
	Pattern proto.Pattern
	// PingTimeout is how long the client waits for a PINGRESP before
	// declaring the session dead (keep-alive timeout threshold). Required.
	PingTimeout time.Duration
	// AckTimeout bounds the wait for a PUBACK to an acknowledged PUBLISH.
	// Zero means no timeout for normal messages (the "∞" rows of Table I):
	// the spec does not mandate one.
	AckTimeout time.Duration
	// PingLen pads PINGREQ packets to the device's keep-alive wire length.
	PingLen int
	// ConnectLen pads the CONNECT packet.
	ConnectLen int
}

// ErrNotConnected reports use of a client before CONNACK.
var ErrNotConnected = errors.New("mqttsim: not connected")

// Client is the device side of an MQTT session over one TLS connection.
type Client struct {
	clk  *simtime.Clock
	sess *tlssim.Conn
	cfg  ClientConfig

	connected bool
	closed    bool
	nextID    uint16
	trace     *obs.Trace

	pingTimer    *simtime.Timer
	pingDeadline *simtime.Timer
	ackDeadlines map[uint16]*simtime.Timer

	// OnConnected fires when the CONNACK arrives.
	OnConnected func()
	// OnCommand delivers PUBLISH packets pushed by the broker. The PUBACK
	// (when requested) is sent automatically before the callback runs.
	OnCommand func(Packet)
	// OnPubAck fires when a PUBLISH acknowledgement arrives.
	OnPubAck func(id uint16)
	// OnClosed fires exactly once when the session ends.
	OnClosed func(proto.CloseReason)
}

// NewClient attaches a client to a TLS session and initiates CONNECT as
// soon as the session is established.
func NewClient(clk *simtime.Clock, sess *tlssim.Conn, cfg ClientConfig) *Client {
	if cfg.KeepAlive <= 0 {
		panic("mqttsim: ClientConfig.KeepAlive is required")
	}
	if cfg.PingTimeout <= 0 {
		panic("mqttsim: ClientConfig.PingTimeout is required")
	}
	if cfg.Pattern == 0 {
		cfg.Pattern = proto.PatternOnIdle
	}
	c := &Client{
		clk:          clk,
		sess:         sess,
		cfg:          cfg,
		nextID:       1,
		ackDeadlines: make(map[uint16]*simtime.Timer),
	}
	sess.OnMessage = c.onMessage
	sess.OnClose = func(error) { c.teardown(proto.ReasonTransport) }
	if sess.Established() {
		c.sendConnect()
	} else {
		sess.OnEstablished = c.sendConnect
	}
	return c
}

// Instrument attaches a trace ring so the client emits "mqtt" events
// (keep-alive send/answer/timeout, publish/puback, close), labeled by the
// client ID. A nil or disabled trace keeps the client silent.
func (c *Client) Instrument(tr *obs.Trace) {
	if !tr.Enabled() {
		return
	}
	c.trace = tr
}

func (c *Client) emit(event, detail string, value int64) {
	if c.trace == nil {
		return
	}
	c.trace.Emit(c.clk.Now(), "mqtt", event, detail, value)
}

// Connected reports whether the CONNACK has arrived.
func (c *Client) Connected() bool { return c.connected }

// Session returns the underlying TLS connection.
func (c *Client) Session() *tlssim.Conn { return c.sess }

// Config returns the client's configuration.
func (c *Client) Config() ClientConfig { return c.cfg }

func (c *Client) sendConnect() {
	pkt := Packet{Type: PacketConnect, ClientID: c.cfg.ClientID, KeepAlive: c.cfg.KeepAlive}
	c.send(pkt, c.cfg.ConnectLen)
}

// Publish sends an event message, padded to padTo bytes. If needAck is
// true the packet carries an ID and, when the client's AckTimeout is
// nonzero, a missing PUBACK ends the session with proto.ReasonAckTimeout.
func (c *Client) Publish(topic string, payload []byte, padTo int, needAck bool) (uint16, error) {
	if !c.connected {
		return 0, ErrNotConnected
	}
	var id uint16
	if needAck {
		id = c.nextID
		c.nextID++
		if c.nextID == 0 {
			c.nextID = 1
		}
	}
	pkt := Packet{
		Type:      PacketPublish,
		Topic:     topic,
		ID:        id,
		Payload:   payload,
		Timestamp: c.clk.Now(),
	}
	c.send(pkt, padTo)
	c.emit("publish", c.cfg.ClientID, int64(id))
	if needAck && c.cfg.AckTimeout > 0 {
		c.ackDeadlines[id] = c.clk.Schedule(c.cfg.AckTimeout, func() {
			delete(c.ackDeadlines, id)
			c.emit("ack_timeout", c.cfg.ClientID, int64(id))
			c.shutdown(proto.ReasonAckTimeout)
		})
	}
	return id, nil
}

// Subscribe registers interest in a topic (used by devices that receive
// commands via broker pushes).
func (c *Client) Subscribe(topic string) error {
	if !c.connected {
		return ErrNotConnected
	}
	c.send(Packet{Type: PacketSubscribe, Topic: topic}, 0)
	return nil
}

// Disconnect ends the session gracefully.
func (c *Client) Disconnect() {
	if c.closed {
		return
	}
	c.send(Packet{Type: PacketDisconnect}, 0)
	c.sess.Close()
	c.teardown(proto.ReasonGraceful)
}

func (c *Client) send(pkt Packet, padTo int) {
	// Transport errors surface through the session's OnClose.
	_ = c.sess.Send(pkt.Marshal(padTo))
	if c.cfg.Pattern == proto.PatternOnIdle && c.connected && pkt.Type != PacketPingReq {
		c.armPing()
	}
}

// armPing pushes the next ping one keep-alive period out. On-idle
// sessions rearm on every send, so the timer is reused, not reallocated.
func (c *Client) armPing() {
	if c.pingTimer == nil {
		c.pingTimer = c.clk.NewTimer(c.sendPing)
	}
	c.pingTimer.Reset(c.cfg.KeepAlive)
}

func (c *Client) sendPing() {
	if c.closed || !c.connected {
		return
	}
	c.send(Packet{Type: PacketPingReq}, c.cfg.PingLen)
	c.emit("ka_sent", c.cfg.ClientID, 0)
	if c.pingDeadline == nil {
		c.pingDeadline = c.clk.NewTimer(func() {
			c.emit("ka_timeout", c.cfg.ClientID, 0)
			c.shutdown(proto.ReasonKeepAliveTimeout)
		})
	}
	if !c.pingDeadline.Active() {
		c.pingDeadline.Reset(c.cfg.PingTimeout)
	}
	// Both patterns schedule the next ping one period out; on-idle sessions
	// additionally push it back on every send (see send).
	c.armPing()
}

func (c *Client) onMessage(b []byte) {
	pkt, err := Unmarshal(b)
	if err != nil {
		return
	}
	switch pkt.Type {
	case PacketConnAck:
		c.connected = true
		c.armPing()
		if c.OnConnected != nil {
			c.OnConnected()
		}
	case PacketPingResp:
		c.emit("ka_answered", c.cfg.ClientID, 0)
		if c.pingDeadline != nil {
			c.pingDeadline.Stop()
		}
	case PacketPublish:
		if pkt.ID != 0 {
			c.send(Packet{Type: PacketPubAck, ID: pkt.ID}, 0)
		}
		if c.OnCommand != nil {
			c.OnCommand(pkt)
		}
	case PacketPubAck:
		c.emit("puback", c.cfg.ClientID, int64(pkt.ID))
		if t, ok := c.ackDeadlines[pkt.ID]; ok {
			t.Stop()
			delete(c.ackDeadlines, pkt.ID)
		}
		if c.OnPubAck != nil {
			c.OnPubAck(pkt.ID)
		}
	case PacketDisconnect:
		c.sess.Close()
		c.teardown(proto.ReasonServerClosed)
	}
}

// shutdown ends the session because a local timeout fired.
func (c *Client) shutdown(reason proto.CloseReason) {
	if c.closed {
		return
	}
	c.sess.Close()
	c.teardown(reason)
}

func (c *Client) teardown(reason proto.CloseReason) {
	if c.closed {
		return
	}
	if c.trace != nil {
		c.emit("closed", c.cfg.ClientID+":"+reason.String(), 0)
	}
	c.closed = true
	c.connected = false
	c.pingTimer.Stop()
	c.pingDeadline.Stop()
	for id, t := range c.ackDeadlines {
		t.Stop()
		delete(c.ackDeadlines, id)
	}
	if c.OnClosed != nil {
		c.OnClosed(reason)
	}
}
