package mqttsim

import (
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// env wires a device-side client and a broker over a simulated LAN.
type env struct {
	clk     *simtime.Clock
	broker  *Broker
	cliTCP  *tcpsim.Stack
	rng     *simtime.Rand
	srvAddr tcpsim.Endpoint
}

func newEnv(brokerCfg BrokerConfig) *env {
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)

	devIP := ipnet.NewStack(clk, nw.NewHost("device"))
	devIP.MustAddIface(seg, "192.168.1.10/24")
	srvIP := ipnet.NewStack(clk, nw.NewHost("broker"))
	srvIP.MustAddIface(seg, "192.168.1.20/24")

	devTCP := tcpsim.NewStack(clk, devIP, tcpsim.Config{}, 7)
	srvTCP := tcpsim.NewStack(clk, srvIP, tcpsim.Config{}, 8)

	rng := simtime.NewRand(99)
	broker := NewBroker(clk, brokerCfg)
	if _, err := srvTCP.Listen(8883, func(c *tcpsim.Conn) {
		broker.Accept(tlssim.Server(c, rng))
	}); err != nil {
		panic(err)
	}
	return &env{
		clk:     clk,
		broker:  broker,
		cliTCP:  devTCP,
		rng:     rng,
		srvAddr: tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 8883},
	}
}

func (e *env) dial(cfg ClientConfig) *Client {
	tcp := e.cliTCP.Dial(e.srvAddr)
	return NewClient(e.clk, tlssim.Client(tcp, e.rng), cfg)
}

func defaultCfg() ClientConfig {
	return ClientConfig{
		ClientID:    "dev-1",
		KeepAlive:   31 * time.Second,
		Pattern:     proto.PatternOnIdle,
		PingTimeout: 16 * time.Second,
	}
}

func TestConnectHandshake(t *testing.T) {
	e := newEnv(BrokerConfig{})
	connected := false
	cli := e.dial(defaultCfg())
	cli.OnConnected = func() { connected = true }
	e.clk.RunFor(time.Second)
	if !connected || !cli.Connected() {
		t.Fatal("client never connected")
	}
	if _, ok := e.broker.ActiveSession("dev-1"); !ok {
		t.Fatal("broker has no active session")
	}
}

func TestPublishReachesBroker(t *testing.T) {
	e := newEnv(BrokerConfig{})
	var got []Packet
	e.broker.OnPublish = func(_ *Session, p Packet) { got = append(got, p) }
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli.Publish("contact/state", []byte("open"), 256, false); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(got) != 1 || string(got[0].Payload) != "open" || got[0].Topic != "contact/state" {
		t.Fatalf("broker got %v", got)
	}
}

func TestPublishTimestampIsGenerationTime(t *testing.T) {
	e := newEnv(BrokerConfig{})
	var ts simtime.Time
	e.broker.OnPublish = func(_ *Session, p Packet) { ts = p.Timestamp }
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	e.clk.RunUntil(10 * time.Second)
	if _, err := cli.Publish("t", []byte("x"), 0, false); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if ts != 10*time.Second {
		t.Fatalf("timestamp = %v, want 10s", ts)
	}
}

func TestPublishWithAck(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	acked := uint16(0)
	cli.OnPubAck = func(id uint16) { acked = id }
	id, err := cli.Publish("t", []byte("x"), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if acked != id || id == 0 {
		t.Fatalf("acked=%d want %d", acked, id)
	}
}

func TestKeepAlivePingsOnIdle(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	closed := false
	cli.OnClosed = func(proto.CloseReason) { closed = true }
	e.clk.RunFor(5 * time.Minute)
	if closed {
		t.Fatal("idle session with answered pings should stay up")
	}
}

func TestOnIdlePatternResetsOnPublish(t *testing.T) {
	// With the on-idle pattern, publishing every 20s (< 31s keep-alive)
	// suppresses pings entirely.
	e := newEnv(BrokerConfig{})
	pings := 0
	e.broker.OnPublish = func(*Session, Packet) {}
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	// Count pings at the broker by watching message types via client sends:
	// instrument by wrapping OnPubAck? Simplest: observe via session stats
	// before/after. Instead count PINGRESPs seen by the client.
	origOnMessage := cli.sess.OnMessage
	cli.sess.OnMessage = func(b []byte) {
		if pkt, err := Unmarshal(b); err == nil && pkt.Type == PacketPingResp {
			pings++
		}
		origOnMessage(b)
	}
	tick := simtime.NewTicker(e.clk, 20*time.Second, func() {
		_, _ = cli.Publish("t", []byte("x"), 0, false)
	})
	e.clk.RunFor(3 * time.Minute)
	tick.Stop()
	if pings != 0 {
		t.Fatalf("on-idle pattern sent %d pings despite activity", pings)
	}
}

func TestFixedPatternPingsDespiteActivity(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cfg := defaultCfg()
	cfg.Pattern = proto.PatternFixed
	cfg.KeepAlive = 30 * time.Second
	pings := 0
	cli := e.dial(cfg)
	e.clk.RunFor(time.Second)
	origOnMessage := cli.sess.OnMessage
	cli.sess.OnMessage = func(b []byte) {
		if pkt, err := Unmarshal(b); err == nil && pkt.Type == PacketPingResp {
			pings++
		}
		origOnMessage(b)
	}
	tick := simtime.NewTicker(e.clk, 10*time.Second, func() {
		_, _ = cli.Publish("t", []byte("x"), 0, false)
	})
	e.clk.RunFor(3 * time.Minute)
	tick.Stop()
	if pings < 4 {
		t.Fatalf("fixed pattern sent only %d pings in 3min, want >= 4", pings)
	}
}

func TestPingTimeoutClosesSession(t *testing.T) {
	// Kill the broker-side NIC so pings go unanswered: the client must end
	// the session PingTimeout after the unanswered ping.
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	var reason proto.CloseReason
	var closedAt simtime.Time
	cli.OnClosed = func(r proto.CloseReason) { reason, closedAt = r, e.clk.Now() }
	e.clk.RunFor(time.Second)
	// Rather than severing the link (which would trip the TCP RTO through
	// unacked segments), make the broker deaf at the MQTT layer just before
	// the first ping (due ~31s after CONNECT): pings then go unanswered
	// while TCP stays perfectly healthy.
	e.clk.At(20*time.Second, func() {
		s, _ := e.broker.ActiveSession("dev-1")
		s.sess.OnMessage = func([]byte) {} // broker goes deaf at MQTT layer
	})
	e.clk.RunFor(5 * time.Minute)
	if reason != proto.ReasonKeepAliveTimeout {
		t.Fatalf("close reason = %v, want keepalive-timeout", reason)
	}
	// First ping at ~32s (CONNECT+31s), deadline 16s later: ~48s.
	want := 48 * time.Second
	if closedAt < want-2*time.Second || closedAt > want+2*time.Second {
		t.Fatalf("closed at %v, want about %v", closedAt, want)
	}
}

func TestAckTimeoutClosesSession(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cfg := defaultCfg()
	cfg.AckTimeout = 5 * time.Second
	cli := e.dial(cfg)
	var reason proto.CloseReason
	cli.OnClosed = func(r proto.CloseReason) { reason = r }
	e.clk.RunFor(time.Second)
	// Broker goes deaf: PUBLISH will never be acked.
	s, _ := e.broker.ActiveSession("dev-1")
	s.sess.OnMessage = func([]byte) {}
	if _, err := cli.Publish("t", []byte("x"), 0, true); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Minute)
	if reason != proto.ReasonAckTimeout {
		t.Fatalf("close reason = %v, want ack-timeout", reason)
	}
}

func TestNoAckTimeoutWhenZero(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg()) // AckTimeout zero: ∞ per Table I
	closed := false
	cli.OnClosed = func(proto.CloseReason) { closed = true }
	e.clk.RunFor(time.Second)
	s, _ := e.broker.ActiveSession("dev-1")
	deaf := true
	orig := s.sess.OnMessage
	s.sess.OnMessage = func(b []byte) {
		if pkt, err := Unmarshal(b); err == nil && pkt.Type == PacketPublish && deaf {
			return // swallow only the PUBLISH, keep answering pings
		}
		orig(b)
	}
	if _, err := cli.Publish("t", []byte("x"), 0, true); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(5 * time.Minute)
	if closed {
		t.Fatal("session closed despite no normal-message timeout")
	}
}

func TestBrokerCommandDelivered(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	var gotCmd Packet
	cli.OnCommand = func(p Packet) { gotCmd = p }
	e.clk.RunFor(time.Second)
	var res CommandResult
	err := e.broker.Publish("dev-1", "lock/set", []byte("lock"), 128, 21*time.Second, func(r CommandResult) { res = r })
	if err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if string(gotCmd.Payload) != "lock" {
		t.Fatalf("device got %v", gotCmd)
	}
	if !res.Acked {
		t.Fatal("command not acked")
	}
}

func TestBrokerCommandTimeoutClosesSession(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	cli.OnCommand = func(Packet) {}
	e.clk.RunFor(time.Second)
	// Device goes deaf so the PUBACK never comes.
	cli.sess.OnMessage = func([]byte) {}
	var res CommandResult
	gotRes := false
	err := e.broker.Publish("dev-1", "lock/set", []byte("lock"), 0, 21*time.Second, func(r CommandResult) { res, gotRes = r, true })
	if err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Minute)
	if !gotRes || res.Acked {
		t.Fatalf("res=%v gotRes=%v, want unacked result", res, gotRes)
	}
	if res.Duration < 21*time.Second {
		t.Fatalf("timeout after %v, want >= 21s", res.Duration)
	}
	if len(e.broker.Alarms()) == 0 {
		t.Fatal("command timeout should raise an alarm")
	}
}

func TestCommandToUnknownClientFails(t *testing.T) {
	e := newEnv(BrokerConfig{})
	if err := e.broker.Publish("ghost", "t", nil, 0, 0, nil); err == nil {
		t.Fatal("command to unknown client should fail")
	}
}

func TestPassiveBrokerRaisesNoAlarmOnSilence(t *testing.T) {
	// Finding 3: with enforcement off (the default, matching production
	// servers), a silent client looks idle forever.
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	// Client stops all traffic including pings (simulate by stopping timer).
	cli.pingTimer.Stop()
	e.clk.RunFor(30 * time.Minute)
	if n := len(e.broker.Alarms()); n != 0 {
		t.Fatalf("passive broker raised %d alarms", n)
	}
}

func TestEnforcingBrokerDropsSilentClient(t *testing.T) {
	e := newEnv(BrokerConfig{EnforceKeepAlive: true})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	cli.pingTimer.Stop() // client goes silent
	e.clk.RunFor(2 * time.Minute)
	alarms := e.broker.Alarms()
	if len(alarms) == 0 {
		t.Fatal("enforcing broker should alarm on silent client")
	}
	if alarms[0].Kind != "device-offline" {
		t.Fatalf("alarm kind = %s", alarms[0].Kind)
	}
	// Deadline is 1.5 x 31s = 46.5s after the last packet.
	if alarms[0].At > time.Minute+time.Second {
		t.Fatalf("alarm at %v, want about 47s", alarms[0].At)
	}
}

func TestReconnectSupersedesWithoutAlarm(t *testing.T) {
	// Finding 2: a new connection supersedes the old one, which lingers
	// half-open; no alarm is raised at any point.
	e := newEnv(BrokerConfig{})
	e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	first, _ := e.broker.ActiveSession("dev-1")
	// Same device reconnects (e.g. after a device-side timeout the server
	// never saw).
	e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	second, _ := e.broker.ActiveSession("dev-1")
	if first == second {
		t.Fatal("second session should supersede")
	}
	if e.broker.HalfOpenCount("dev-1") != 1 {
		t.Fatalf("half-open count = %d, want 1", e.broker.HalfOpenCount("dev-1"))
	}
	if len(e.broker.Alarms()) != 0 {
		t.Fatalf("alarms = %v, want none", e.broker.Alarms())
	}
	// The stale half-open session eventually dies; still no alarm because a
	// live replacement exists.
	first.sess.Close()
	e.clk.RunFor(time.Second)
	if e.broker.HalfOpenCount("dev-1") != 0 {
		t.Fatal("half-open session not reaped")
	}
	if len(e.broker.Alarms()) != 0 {
		t.Fatalf("alarms after half-open close = %v, want none", e.broker.Alarms())
	}
}

func TestAbruptLossWithoutReplacementAlarms(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	cli.sess.TCP().Abort() // crash, RST reaches broker
	e.clk.RunFor(time.Second)
	alarms := e.broker.Alarms()
	if len(alarms) != 1 || alarms[0].Kind != "device-offline" {
		t.Fatalf("alarms = %v, want one device-offline", alarms)
	}
}

func TestGracefulDisconnectNoAlarm(t *testing.T) {
	e := newEnv(BrokerConfig{})
	cli := e.dial(defaultCfg())
	e.clk.RunFor(time.Second)
	cli.Disconnect()
	e.clk.RunFor(time.Second)
	if len(e.broker.Alarms()) != 0 {
		t.Fatalf("alarms = %v, want none for clean disconnect", e.broker.Alarms())
	}
	if _, ok := e.broker.ActiveSession("dev-1"); ok {
		t.Fatal("session should be gone after disconnect")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	tests := []Packet{
		{Type: PacketConnect, ClientID: "dev", KeepAlive: 31 * time.Second},
		{Type: PacketConnAck},
		{Type: PacketSubscribe, Topic: "a/b"},
		{Type: PacketPublish, Topic: "x", ID: 7, Payload: []byte("data"), Timestamp: 5 * time.Second},
		{Type: PacketPubAck, ID: 7},
		{Type: PacketPingReq},
		{Type: PacketPingResp},
		{Type: PacketDisconnect},
	}
	for _, want := range tests {
		got, err := Unmarshal(want.Marshal(0))
		if err != nil {
			t.Fatalf("%v: %v", want.Type, err)
		}
		if got.Type != want.Type || got.ClientID != want.ClientID ||
			got.KeepAlive != want.KeepAlive || got.Topic != want.Topic ||
			got.ID != want.ID || string(got.Payload) != string(want.Payload) ||
			got.Timestamp != want.Timestamp {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestPacketPadding(t *testing.T) {
	p := Packet{Type: PacketPingReq}
	b := p.Marshal(48)
	if len(b) != 48 {
		t.Fatalf("padded len = %d, want 48", len(b))
	}
	got, err := Unmarshal(b)
	if err != nil || got.Type != PacketPingReq {
		t.Fatalf("padded packet decode: %v %v", got, err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{0xff, 0x01}); err == nil {
		t.Fatal("garbage should fail to decode")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty should fail to decode")
	}
}
