// Package ipaddr provides the IPv4-style address type shared by the ARP and
// IP layers.
package ipaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is a 32-bit network address.
type Addr uint32

// Parse converts dotted-quad notation to an Addr.
func Parse(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipaddr: %q is not dotted quad", s)
	}
	var a Addr
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ipaddr: bad octet in %q: %w", s, err)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// MustParse is Parse for constants; it panics on malformed input.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a == 0 }

// Bytes returns the big-endian 4-byte encoding.
func (a Addr) Bytes() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// FromBytes decodes a big-endian 4-byte address.
func FromBytes(b [4]byte) Addr {
	return Addr(b[0])<<24 | Addr(b[1])<<16 | Addr(b[2])<<8 | Addr(b[3])
}

// Prefix is an address block in CIDR style.
type Prefix struct {
	Addr Addr
	Bits int
}

// ParsePrefix converts "a.b.c.d/n" to a Prefix.
func ParsePrefix(s string) (Prefix, error) {
	addrPart, bitsPart, ok := strings.Cut(s, "/")
	if !ok {
		return Prefix{}, fmt.Errorf("ipaddr: %q is not CIDR notation", s)
	}
	a, err := Parse(addrPart)
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(bitsPart)
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipaddr: bad prefix length in %q", s)
	}
	return Prefix{Addr: a, Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix for constants; it panics on bad input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether a falls within the prefix.
func (p Prefix) Contains(a Addr) bool {
	if p.Bits <= 0 {
		return true
	}
	mask := ^Addr(0) << (32 - p.Bits)
	return a&mask == p.Addr&mask
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}
