package ipaddr

import (
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	tests := []string{"0.0.0.0", "192.168.1.1", "10.0.0.254", "255.255.255.255", "8.8.8.8"}
	for _, s := range tests {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if a.String() != s {
			t.Fatalf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.-4"}
	for _, s := range tests {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not-an-addr")
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		return FromBytes(a.Bytes()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	if !Addr(0).IsZero() {
		t.Fatal("zero addr not detected")
	}
	if MustParse("1.0.0.0").IsZero() {
		t.Fatal("nonzero addr reported zero")
	}
}

func TestPrefixContains(t *testing.T) {
	tests := []struct {
		prefix string
		addr   string
		want   bool
	}{
		{"192.168.1.0/24", "192.168.1.55", true},
		{"192.168.1.0/24", "192.168.2.55", false},
		{"10.0.0.0/8", "10.255.0.1", true},
		{"10.0.0.0/8", "11.0.0.1", false},
		{"0.0.0.0/0", "1.2.3.4", true},
		{"192.168.1.7/32", "192.168.1.7", true},
		{"192.168.1.7/32", "192.168.1.8", false},
	}
	for _, tt := range tests {
		p := MustParsePrefix(tt.prefix)
		if got := p.Contains(MustParse(tt.addr)); got != tt.want {
			t.Errorf("%s contains %s = %v, want %v", tt.prefix, tt.addr, got, tt.want)
		}
	}
}

func TestParsePrefixErrors(t *testing.T) {
	tests := []string{"", "1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3/24", "1.2.3.4/x"}
	for _, s := range tests {
		if _, err := ParsePrefix(s); err == nil {
			t.Fatalf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestPrefixString(t *testing.T) {
	p := MustParsePrefix("192.168.1.0/24")
	if p.String() != "192.168.1.0/24" {
		t.Fatalf("String() = %q", p.String())
	}
}
