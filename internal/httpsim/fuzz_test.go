package httpsim

import "testing"

// FuzzUnmarshal: arbitrary bytes must never panic the message decoder.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Message{Type: MsgRequest, ID: 1, DeviceID: "d", Path: "/event", Body: []byte("b")}.Marshal(0))
	f.Add(Message{Type: MsgResponse, ID: 2, Status: 200}.Marshal(128))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		round, err := Unmarshal(m.Marshal(0))
		if err != nil {
			t.Fatalf("re-encode of %+v failed: %v", m, err)
		}
		if round.Type != m.Type || round.ID != m.ID || round.Path != m.Path {
			t.Fatalf("round trip changed message: %+v -> %+v", m, round)
		}
	})
}
