package httpsim

import (
	"testing"
	"time"

	"repro/internal/proto"
)

func TestClientConfigValidation(t *testing.T) {
	e := newEnv(ServerConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("keep-alive without timeout should panic")
		}
	}()
	e.dial(ClientConfig{DeviceID: "d", KeepAlive: time.Second})
}

func TestFixedPatternKeepAliveIgnoresRequests(t *testing.T) {
	e := newEnv(ServerConfig{})
	cfg := longLivedCfg()
	cfg.Pattern = proto.PatternFixed
	cfg.KeepAlive = 20 * time.Second
	cli := e.dial(cfg)
	e.clk.RunFor(time.Second)
	// Requests every 8s would suppress on-idle keep-alives entirely; fixed
	// keep-alives must keep their own schedule.
	kaSeen := 0
	e.server.OnRequest = func(_ *Session, m Message) {}
	for _, s := range e.accepted {
		orig := s.OnMessage
		s.OnMessage = func(b []byte) {
			if m, err := Unmarshal(b); err == nil && m.Path == KeepAlivePath {
				kaSeen++
			}
			orig(b)
		}
	}
	stop := false
	var tickFn func()
	tick := func() {
		if stop {
			return
		}
		_, _ = cli.Request("/event", []byte("x"), 0)
		e.clk.Schedule(8*time.Second, tickFn)
	}
	tickFn = tick
	e.clk.Schedule(0, tick)
	e.clk.RunFor(90 * time.Second)
	stop = true
	if kaSeen < 3 {
		t.Fatalf("fixed pattern sent %d keep-alives in 90s of activity, want >= 3", kaSeen)
	}
}

func TestResponsesCorrelateByID(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(ClientConfig{DeviceID: "d", ResponseTimeout: time.Minute})
	e.clk.RunFor(time.Second)
	var ids []uint16
	cli.OnResponse = func(m Message) { ids = append(ids, m.ID) }
	id1, err := cli.Request("/event", []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cli.Request("/event", []byte("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Fatalf("response ids = %v, want [%d %d]", ids, id1, id2)
	}
}

func TestServerAlarmHook(t *testing.T) {
	e := newEnv(ServerConfig{})
	var seen []proto.Alarm
	e.server.OnAlarm = func(a proto.Alarm) { seen = append(seen, a) }
	cli := e.dial(longLivedCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", nil, 0); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	cli.sess.OnMessage = func([]byte) {}
	if err := e.server.Command("cam-1", "/cmd", nil, 0, 5*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Minute)
	if len(seen) != 1 || seen[0].Kind != "command-timeout" {
		t.Fatalf("alarm hook saw %v", seen)
	}
}

func TestRequestPaddingApplied(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(ClientConfig{DeviceID: "d"})
	var gotLen int
	for _, s := range e.accepted {
		_ = s
	}
	e.clk.RunFor(time.Second)
	// Observe the raw record length via the server session's message hook.
	for _, s := range e.accepted {
		orig := s.OnMessage
		s.OnMessage = func(b []byte) {
			gotLen = len(b)
			orig(b)
		}
	}
	if _, err := cli.Request("/event", []byte("tiny"), 512); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if gotLen != 512 {
		t.Fatalf("padded message length = %d, want 512", gotLen)
	}
}
