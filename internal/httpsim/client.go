package httpsim

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tlssim"
)

// ClientConfig parameterises the device side of an HTTP-like session.
type ClientConfig struct {
	DeviceID string
	// KeepAlive is the application keep-alive period for long-lived
	// sessions. Zero disables keep-alives (on-demand sessions).
	KeepAlive time.Duration
	// Pattern selects fixed-period or on-idle keep-alives.
	Pattern proto.Pattern
	// KeepAliveTimeout bounds the wait for a keep-alive response.
	// Required when KeepAlive is set.
	KeepAliveTimeout time.Duration
	// ResponseTimeout bounds the wait for a normal request's response
	// (the 408 threshold). Zero means no timeout.
	ResponseTimeout time.Duration
	// KeepAliveLen pads keep-alive requests to the device's wire length.
	KeepAliveLen int
}

// ErrNotReady reports a request before the session established.
var ErrNotReady = errors.New("httpsim: session not established")

// KeepAlivePath is the path keep-alive exchanges use.
const KeepAlivePath = "/keepalive"

// Client is the device side of one HTTP-like session.
type Client struct {
	clk  *simtime.Clock
	sess *tlssim.Conn
	cfg  ClientConfig

	ready  bool
	closed bool
	nextID uint16
	trace  *obs.Trace

	kaTimer   *simtime.Timer
	deadlines map[uint16]*simtime.Timer

	// OnReady fires when the session is usable.
	OnReady func()
	// OnResponse delivers responses to this client's requests.
	OnResponse func(Message)
	// OnCommand delivers server-initiated requests. The 200 response is
	// sent automatically before the callback runs.
	OnCommand func(Message)
	// OnClosed fires exactly once when the session ends.
	OnClosed func(proto.CloseReason)
}

// NewClient attaches a device-side HTTP client to a TLS session.
func NewClient(clk *simtime.Clock, sess *tlssim.Conn, cfg ClientConfig) *Client {
	if cfg.KeepAlive > 0 && cfg.KeepAliveTimeout <= 0 {
		panic("httpsim: KeepAliveTimeout required when KeepAlive is set")
	}
	if cfg.Pattern == 0 {
		cfg.Pattern = proto.PatternOnIdle
	}
	c := &Client{
		clk:       clk,
		sess:      sess,
		cfg:       cfg,
		nextID:    1,
		deadlines: make(map[uint16]*simtime.Timer),
	}
	sess.OnMessage = c.onMessage
	sess.OnClose = func(error) { c.teardown(proto.ReasonTransport) }
	becomeReady := func() {
		c.ready = true
		if c.cfg.KeepAlive > 0 {
			c.armKeepAlive()
		}
		if c.OnReady != nil {
			c.OnReady()
		}
	}
	if sess.Established() {
		becomeReady()
	} else {
		sess.OnEstablished = becomeReady
	}
	return c
}

// Instrument attaches a trace ring so the client emits "http" events
// (keep-alive send/answer/timeout, request/response, close), labeled by the
// device ID. A nil or disabled trace keeps the client silent.
func (c *Client) Instrument(tr *obs.Trace) {
	if !tr.Enabled() {
		return
	}
	c.trace = tr
}

func (c *Client) emit(event, detail string, value int64) {
	if c.trace == nil {
		return
	}
	c.trace.Emit(c.clk.Now(), "http", event, detail, value)
}

// Ready reports whether the session is usable.
func (c *Client) Ready() bool { return c.ready && !c.closed }

// Session returns the underlying TLS connection.
func (c *Client) Session() *tlssim.Conn { return c.sess }

// Request sends a request padded to padTo bytes. The response timeout is
// the client's ResponseTimeout; on expiry the session is dropped with
// ReasonAckTimeout, mirroring a 408.
func (c *Client) Request(path string, body []byte, padTo int) (uint16, error) {
	return c.request(path, body, padTo, c.cfg.ResponseTimeout)
}

func (c *Client) request(path string, body []byte, padTo int, timeout time.Duration) (uint16, error) {
	if !c.Ready() {
		return 0, ErrNotReady
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	m := Message{
		Type:      MsgRequest,
		ID:        id,
		DeviceID:  c.cfg.DeviceID,
		Path:      path,
		Body:      body,
		Timestamp: c.clk.Now(),
	}
	if err := c.sess.Send(m.Marshal(padTo)); err != nil {
		return 0, err
	}
	if path == KeepAlivePath {
		c.emit("ka_sent", c.cfg.DeviceID, int64(id))
	} else {
		c.emit("request", c.cfg.DeviceID, int64(id))
	}
	if c.cfg.KeepAlive > 0 && c.cfg.Pattern == proto.PatternOnIdle && path != KeepAlivePath {
		c.armKeepAlive()
	}
	if timeout > 0 {
		reason := proto.ReasonAckTimeout
		event := "ack_timeout"
		if path == KeepAlivePath {
			reason = proto.ReasonKeepAliveTimeout
			event = "ka_timeout"
		}
		c.deadlines[id] = c.clk.Schedule(timeout, func() {
			delete(c.deadlines, id)
			c.emit(event, c.cfg.DeviceID, int64(id))
			c.shutdown(reason)
		})
	}
	return id, nil
}

// Close ends the session gracefully (the on-demand pattern after a
// completed exchange).
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.sess.Close()
	c.teardown(proto.ReasonGraceful)
}

func (c *Client) armKeepAlive() {
	if c.kaTimer == nil {
		c.kaTimer = c.clk.NewTimer(c.sendKeepAlive)
	}
	c.kaTimer.Reset(c.cfg.KeepAlive)
}

func (c *Client) sendKeepAlive() {
	if c.closed || !c.ready {
		return
	}
	// Keep-alive requests carry their own response deadline.
	if _, err := c.request(KeepAlivePath, nil, c.cfg.KeepAliveLen, c.cfg.KeepAliveTimeout); err != nil {
		return
	}
	c.armKeepAlive()
}

func (c *Client) onMessage(b []byte) {
	m, err := Unmarshal(b)
	if err != nil {
		return
	}
	switch m.Type {
	case MsgResponse:
		if t, ok := c.deadlines[m.ID]; ok {
			t.Stop()
			delete(c.deadlines, m.ID)
		}
		if m.Path == KeepAlivePath {
			c.emit("ka_answered", c.cfg.DeviceID, int64(m.ID))
		} else {
			c.emit("response", c.cfg.DeviceID, int64(m.ID))
			if c.OnResponse != nil {
				c.OnResponse(m)
			}
		}
	case MsgRequest:
		// Server-initiated command: acknowledge, then hand to the app.
		resp := Message{
			Type:      MsgResponse,
			ID:        m.ID,
			DeviceID:  c.cfg.DeviceID,
			Path:      m.Path,
			Status:    StatusOK,
			Timestamp: c.clk.Now(),
		}
		_ = c.sess.Send(resp.Marshal(0))
		if c.OnCommand != nil {
			c.OnCommand(m)
		}
	}
}

func (c *Client) shutdown(reason proto.CloseReason) {
	if c.closed {
		return
	}
	c.sess.Close()
	c.teardown(reason)
}

func (c *Client) teardown(reason proto.CloseReason) {
	if c.closed {
		return
	}
	if c.trace != nil {
		c.emit("closed", c.cfg.DeviceID+":"+reason.String(), 0)
	}
	c.closed = true
	c.ready = false
	if c.kaTimer != nil {
		c.kaTimer.Stop()
	}
	for id, t := range c.deadlines {
		t.Stop()
		delete(c.deadlines, id)
	}
	if c.OnClosed != nil {
		c.OnClosed(reason)
	}
}
