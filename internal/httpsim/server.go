package httpsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tlssim"
)

// ServerConfig parameterises the cloud side.
type ServerConfig struct {
	// ResponseLen pads responses.
	ResponseLen int
	// SessionIdleTimeout silently drops sessions idle this long (no alarm
	// — Finding 1's enabler for on-demand devices). Zero disables it.
	SessionIdleTimeout time.Duration
}

// ErrNoSession reports a command for a device with no live session.
var ErrNoSession = errors.New("httpsim: device has no live session")

// CommandResult reports the outcome of a server-initiated request.
type CommandResult struct {
	ID       uint16
	Acked    bool
	Duration time.Duration
}

// Session is one server-side HTTP session.
type Session struct {
	server   *Server
	sess     *tlssim.Conn
	deviceID string
	closed   bool
	clean    bool
	idle     *simtime.Timer
}

// DeviceID returns the bound device identity (empty before any request).
func (s *Session) DeviceID() string { return s.deviceID }

// Closed reports whether the session has ended.
func (s *Session) Closed() bool { return s.closed }

// Server is the cloud side of the HTTP-like protocol.
type Server struct {
	clk      *simtime.Clock
	cfg      ServerConfig
	active   map[string]*Session
	halfOpen map[string][]*Session
	pending  map[uint16]*pendingCommand
	nextID   uint16
	alarms   proto.AlarmLog

	// OnRequest delivers every device request (except keep-alives, which
	// are answered internally) after the 200 response has been sent.
	OnRequest func(*Session, Message)
	// OnAlarm mirrors the alarm log's observer hook.
	OnAlarm func(proto.Alarm)
}

type pendingCommand struct {
	sentAt simtime.Time
	timer  *simtime.Timer
	done   func(CommandResult)
}

// NewServer creates an HTTP-like cloud server.
func NewServer(clk *simtime.Clock, cfg ServerConfig) *Server {
	s := &Server{
		clk:      clk,
		cfg:      cfg,
		active:   make(map[string]*Session),
		halfOpen: make(map[string][]*Session),
		pending:  make(map[uint16]*pendingCommand),
		nextID:   1,
	}
	s.alarms.OnAlarm = func(a proto.Alarm) {
		if s.OnAlarm != nil {
			s.OnAlarm(a)
		}
	}
	return s
}

// Reset returns the server to its freshly constructed state for a new
// configuration while keeping its allocations. Live and half-open sessions
// are dropped with their idle timers stopped, pending command timers are
// cancelled, and the observer hooks are cleared for the owner to rewire
// (the alarm log keeps its internal relay to OnAlarm). A reset server
// behaves identically to NewServer(clk, cfg).
func (s *Server) Reset(cfg ServerConfig) {
	s.cfg = cfg
	for _, ss := range s.active {
		ss.idle.Stop()
	}
	clear(s.active)
	for _, list := range s.halfOpen {
		for _, ss := range list {
			ss.idle.Stop()
		}
	}
	clear(s.halfOpen)
	for _, pc := range s.pending {
		pc.timer.Stop()
	}
	clear(s.pending)
	s.nextID = 1
	s.alarms.Reset()
	s.OnRequest, s.OnAlarm = nil, nil
}

// Accept attaches server protocol handling to an inbound TLS session.
func (s *Server) Accept(sess *tlssim.Conn) *Session {
	ss := &Session{server: s, sess: sess}
	sess.OnMessage = func(m []byte) { s.onMessage(ss, m) }
	sess.OnClose = func(err error) { s.onSessionClosed(ss, err) }
	ss.resetIdle()
	return ss
}

// Alarms returns the alarms raised so far.
func (s *Server) Alarms() []proto.Alarm { return s.alarms.All() }

// AlarmCount returns the number of alarms raised so far.
func (s *Server) AlarmCount() int { return s.alarms.Count() }

// ActiveSession returns the live session bound to a device, if any.
func (s *Server) ActiveSession(deviceID string) (*Session, bool) {
	ss, ok := s.active[deviceID]
	return ss, ok
}

// HalfOpenCount reports superseded sessions lingering for a device.
func (s *Server) HalfOpenCount(deviceID string) int {
	return len(s.halfOpen[deviceID])
}

// Command sends a server-initiated request on the device's live session.
// If ackTimeout is nonzero and no response arrives in time, the session is
// dropped (the command-timeout behaviour of Table I) and done receives
// Acked=false. done may be nil.
func (s *Server) Command(deviceID, path string, body []byte, padTo int, ackTimeout time.Duration, done func(CommandResult)) error {
	ss, ok := s.active[deviceID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, deviceID)
	}
	id := s.nextID
	s.nextID++
	if s.nextID == 0 {
		s.nextID = 1
	}
	m := Message{
		Type:      MsgRequest,
		ID:        id,
		Path:      path,
		Body:      body,
		Timestamp: s.clk.Now(),
	}
	if err := ss.sess.Send(m.Marshal(padTo)); err != nil {
		return err
	}
	pc := &pendingCommand{sentAt: s.clk.Now(), done: done}
	s.pending[id] = pc
	if ackTimeout > 0 {
		pc.timer = s.clk.Schedule(ackTimeout, func() {
			delete(s.pending, id)
			s.alarms.Raise(s.clk.Now(), deviceID, "command-timeout", path)
			ss.close()
			if done != nil {
				done(CommandResult{ID: id, Acked: false, Duration: s.clk.Now() - pc.sentAt})
			}
		})
	}
	return nil
}

func (s *Server) onMessage(ss *Session, b []byte) {
	m, err := Unmarshal(b)
	if err != nil {
		return
	}
	ss.resetIdle()
	switch m.Type {
	case MsgRequest:
		if m.DeviceID != "" {
			s.bind(ss, m.DeviceID)
		}
		resp := Message{
			Type:      MsgResponse,
			ID:        m.ID,
			Path:      m.Path,
			Status:    StatusOK,
			Timestamp: s.clk.Now(),
		}
		_ = ss.sess.Send(resp.Marshal(s.cfg.ResponseLen))
		if m.Path != KeepAlivePath && s.OnRequest != nil {
			s.OnRequest(ss, m)
		}
	case MsgResponse:
		if pc, ok := s.pending[m.ID]; ok {
			delete(s.pending, m.ID)
			if pc.timer != nil {
				pc.timer.Stop()
			}
			if pc.done != nil {
				pc.done(CommandResult{ID: m.ID, Acked: true, Duration: s.clk.Now() - pc.sentAt})
			}
		}
	}
}

func (s *Server) bind(ss *Session, deviceID string) {
	if ss.deviceID == deviceID {
		return
	}
	ss.deviceID = deviceID
	if old, ok := s.active[deviceID]; ok && old != ss && !old.closed {
		// Finding 2: the superseded session lingers half-open, no alarm.
		s.halfOpen[deviceID] = append(s.halfOpen[deviceID], old)
	}
	s.active[deviceID] = ss
}

func (s *Server) onSessionClosed(ss *Session, err error) {
	if ss.closed {
		return
	}
	ss.closed = true
	if ss.idle != nil {
		ss.idle.Stop()
	}
	if ss.deviceID == "" {
		return
	}
	ho := s.halfOpen[ss.deviceID]
	for i, old := range ho {
		if old == ss {
			s.halfOpen[ss.deviceID] = append(ho[:i], ho[i+1:]...)
			return
		}
	}
	if s.active[ss.deviceID] == ss {
		delete(s.active, ss.deviceID)
		// Graceful closes (on-demand sessions ending, devices cycling) are
		// unremarkable; only an abrupt loss with no replacement alarms.
		if err != nil && !ss.clean {
			s.alarms.Raise(s.clk.Now(), ss.deviceID, "device-offline", "connection lost with no replacement")
		}
	}
}

func (ss *Session) resetIdle() {
	if ss.server.cfg.SessionIdleTimeout <= 0 {
		return
	}
	if ss.idle == nil {
		ss.idle = ss.server.clk.NewTimer(func() {
			// Idle reaping is silent: no alarm (Finding 1).
			ss.clean = true
			ss.close()
		})
	}
	ss.idle.Reset(ss.server.cfg.SessionIdleTimeout)
}

// close ends the session from the server side.
func (ss *Session) close() {
	if ss.closed {
		return
	}
	ss.sess.Close()
	ss.server.onSessionClosed(ss, nil)
}
