package httpsim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// recycleServerCfg keeps an idle timeout on so every accepted session
// arms an idle timer — guaranteeing pending work at recycle time.
func recycleServerCfg() ServerConfig { return ServerConfig{SessionIdleTimeout: 60 * time.Second} }

// recycleLab owns the pooled pieces: clock, network, registry, stacks,
// the handshake RNG and the cloud server itself.
type recycleLab struct {
	clk            *simtime.Clock
	nw             *netsim.Network
	reg            *obs.Registry
	devIP, srvIP   *ipnet.Stack
	devTCP, srvTCP *tcpsim.Stack
	rng            *simtime.Rand
	server         *Server
}

func newRecycleLab() *recycleLab {
	clk := simtime.NewClock()
	l := &recycleLab{clk: clk, nw: netsim.NewNetwork(clk, 1), reg: obs.NewRegistry(), rng: simtime.NewRand(99)}
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.devIP = ipnet.NewStack(clk, l.nw.NewHost("device"))
	l.srvIP = ipnet.NewStack(clk, l.nw.NewHost("cloud"))
	l.devIP.MustAddIface(seg, "192.168.1.10/24")
	l.srvIP.MustAddIface(seg, "192.168.1.20/24")
	l.devTCP = tcpsim.NewStack(clk, l.devIP, tcpsim.Config{}, 7)
	l.srvTCP = tcpsim.NewStack(clk, l.srvIP, tcpsim.Config{}, 8)
	l.server = NewServer(clk, recycleServerCfg())
	clk.Instrument(l.reg)
	return l
}

func (l *recycleLab) recycle() {
	l.clk.Reset()
	l.nw.Reset(1)
	l.reg.Reset()
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.devIP.Reset(l.nw.NewHost("device"))
	l.srvIP.Reset(l.nw.NewHost("cloud"))
	l.devIP.MustAddIface(seg, "192.168.1.10/24")
	l.srvIP.MustAddIface(seg, "192.168.1.20/24")
	l.devTCP.Reset(l.devIP, tcpsim.Config{}, 7)
	l.srvTCP.Reset(l.srvIP, tcpsim.Config{}, 8)
	l.rng.Reseed(99)
	l.server.Reset(recycleServerCfg())
	l.clk.Instrument(l.reg)
}

// drive establishes a keep-alive session, sends two event requests,
// delivers a server-initiated command, then closes — fingerprinting the
// request/response transcript, command outcome, alarms, a sentinel RNG
// draw and the metrics snapshot.
func (l *recycleLab) drive(t *testing.T) string {
	t.Helper()
	var lines []string
	l.server.OnRequest = func(s *Session, m Message) {
		lines = append(lines, fmt.Sprintf("req:%s:%s:%q@%v", s.DeviceID(), m.Path, m.Body, l.clk.Now()))
	}
	if _, err := l.srvTCP.Listen(443, func(c *tcpsim.Conn) {
		l.server.Accept(tlssim.Server(c, l.rng))
	}); err != nil {
		t.Fatal(err)
	}
	cfg := ClientConfig{
		DeviceID:         "cam-1",
		KeepAlive:        10 * time.Second,
		Pattern:          proto.PatternOnIdle,
		KeepAliveTimeout: 5 * time.Second,
		ResponseTimeout:  8 * time.Second,
	}
	cli := NewClient(l.clk, tlssim.Client(l.devTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443}), l.rng), cfg)
	cli.OnResponse = func(m Message) { lines = append(lines, fmt.Sprintf("resp:%d:%d@%v", m.ID, m.Status, l.clk.Now())) }
	cli.OnCommand = func(m Message) { lines = append(lines, fmt.Sprintf("cmd:%s:%q@%v", m.Path, m.Body, l.clk.Now())) }
	l.clk.RunFor(time.Second)
	if !cli.Ready() {
		t.Fatal("session did not establish")
	}
	for i := 0; i < 2; i++ {
		if _, err := cli.Request("/event", []byte(fmt.Sprintf("motion-%d", i)), 256); err != nil {
			t.Fatal(err)
		}
		l.clk.RunFor(3 * time.Second)
	}
	if err := l.server.Command("cam-1", "/command", []byte("reboot"), 128, 5*time.Second, func(r CommandResult) {
		lines = append(lines, fmt.Sprintf("cmdres:%v:%v@%v", r.Acked, r.Duration, l.clk.Now()))
	}); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(12 * time.Second) // a keep-alive cycle rides along
	cli.Close()
	l.clk.RunFor(2 * time.Second)
	alarms, err := json.Marshal(l.server.Alarms())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(l.reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("lines=%v ready=%v alarms=%s draw=%d now=%v snap=%s",
		lines, cli.Ready(), alarms, l.rng.Intn(1<<30), l.clk.Now(), snap)
}

// TestServerResetByteIdentity recycles a server whose previous life left a
// bound session with its idle timer armed and a client keep-alive pending,
// and requires the revived server to replay a full request/command
// exchange byte-identically to a fresh one, across two generations.
func TestServerResetByteIdentity(t *testing.T) {
	fresh := newRecycleLab().drive(t)

	l := newRecycleLab()
	if _, err := l.srvTCP.Listen(443, func(c *tcpsim.Conn) {
		l.server.Accept(tlssim.Server(c, l.rng))
	}); err != nil {
		t.Fatal(err)
	}
	cli := NewClient(l.clk, tlssim.Client(l.devTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443}), l.rng),
		ClientConfig{DeviceID: "cam-9", KeepAlive: 30 * time.Second, Pattern: proto.PatternFixed, KeepAliveTimeout: 10 * time.Second})
	l.clk.RunFor(2 * time.Second)
	if !cli.Ready() {
		t.Fatal("setup session did not establish")
	}
	// Session bound, idle timer and keep-alive timer both pending.
	l.recycle()
	for _, g := range l.reg.Snapshot().Gauges {
		if g.Name == "simtime_queue_depth" && (g.Value != 0 || g.Max != 0) {
			t.Fatalf("simtime_queue_depth after recycle = %d (max %d), want 0", g.Value, g.Max)
		}
	}
	if got := l.drive(t); got != fresh {
		t.Errorf("recycled server diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}

	l.recycle()
	if got := l.drive(t); got != fresh {
		t.Errorf("second recycling generation diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}
}
