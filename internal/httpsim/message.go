// Package httpsim implements the HTTP-style request/response protocol many
// IoT devices speak to their vendor clouds: connectionless semantics over
// either a long-lived session (with application keep-alive exchanges) or
// on-demand sessions opened per event and closed after the response.
//
// Timeout behaviour mirrors the paper's description of HTTP-based IoT
// protocols: the sender of a request waits for the response up to a
// configurable threshold, then raises a 408-style timeout and drops the
// session. Servers are passive: they never probe devices (Finding 3), drop
// idle on-demand sessions silently (Finding 1), and only alarm when a
// device's last live long-lived session dies abruptly with no replacement
// (Finding 2).
package httpsim

import (
	"errors"

	"repro/internal/simtime"
	"repro/internal/wire"
)

// MsgType distinguishes requests from responses.
type MsgType uint8

// Message kinds.
const (
	MsgRequest MsgType = iota + 1
	MsgResponse
)

// Message is one HTTP-like message. Requests flow in both directions:
// device→server (events, keep-alives) and server→device (commands).
type Message struct {
	Type MsgType
	// ID correlates a response to its request.
	ID uint16
	// DeviceID identifies the device on every device→server request, which
	// is how on-demand sessions get bound to an identity.
	DeviceID string
	// Path names the operation, e.g. "/event", "/keepalive", "/command".
	Path string
	// Status carries the response code (200, 408, ...).
	Status uint16
	// Body is the operation payload.
	Body []byte
	// Timestamp is the sender's generation time; staleness policies and
	// the timestamp-checking countermeasure read it.
	Timestamp simtime.Time
}

// Response status codes used by the simulation.
const (
	StatusOK      uint16 = 200
	StatusTimeout uint16 = 408
)

// ErrBadMessage reports an undecodable message.
var ErrBadMessage = errors.New("httpsim: bad message")

// Marshal encodes the message, padded with zeros to at least padTo bytes.
func (m Message) Marshal(padTo int) []byte {
	w := wire.NewWriter(32 + len(m.Body))
	w.U8(uint8(m.Type))
	w.U16(m.ID)
	w.String(m.DeviceID)
	w.String(m.Path)
	w.U16(m.Status)
	w.U64(uint64(m.Timestamp))
	w.Bytes16(m.Body)
	w.PadTo(padTo)
	return w.Bytes()
}

// Unmarshal decodes a message, ignoring trailing padding.
func Unmarshal(b []byte) (Message, error) {
	r := wire.NewReader(b)
	var m Message
	m.Type = MsgType(r.U8())
	m.ID = r.U16()
	m.DeviceID = r.String()
	m.Path = r.String()
	m.Status = r.U16()
	m.Timestamp = simtime.Time(r.U64())
	body := r.Bytes16()
	if r.Err() != nil {
		return Message{}, ErrBadMessage
	}
	if m.Type != MsgRequest && m.Type != MsgResponse {
		return Message{}, ErrBadMessage
	}
	if body != nil {
		m.Body = make([]byte, len(body))
		copy(m.Body, body)
	}
	return m, nil
}
