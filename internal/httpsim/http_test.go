package httpsim

import (
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

type env struct {
	clk      *simtime.Clock
	server   *Server
	cliTCP   *tcpsim.Stack
	rng      *simtime.Rand
	srvAddr  tcpsim.Endpoint
	accepted []*tlssim.Conn
}

// deafAll makes every accepted server session silently discard inbound
// messages, leaving TCP and TLS healthy — the cleanest way to make
// application-layer timeouts fire in isolation.
func (e *env) deafAll() {
	for _, s := range e.accepted {
		s.OnMessage = func([]byte) {}
	}
}

func newEnv(srvCfg ServerConfig) *env {
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)

	devIP := ipnet.NewStack(clk, nw.NewHost("device"))
	devIP.MustAddIface(seg, "192.168.1.10/24")
	srvIP := ipnet.NewStack(clk, nw.NewHost("cloud"))
	srvIP.MustAddIface(seg, "192.168.1.20/24")

	devTCP := tcpsim.NewStack(clk, devIP, tcpsim.Config{}, 7)
	srvTCP := tcpsim.NewStack(clk, srvIP, tcpsim.Config{}, 8)

	rng := simtime.NewRand(99)
	server := NewServer(clk, srvCfg)
	e := &env{
		clk:     clk,
		server:  server,
		cliTCP:  devTCP,
		rng:     rng,
		srvAddr: tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443},
	}
	if _, err := srvTCP.Listen(443, func(c *tcpsim.Conn) {
		sess := tlssim.Server(c, rng)
		server.Accept(sess)
		e.accepted = append(e.accepted, sess)
	}); err != nil {
		panic(err)
	}
	return e
}

func (e *env) dial(cfg ClientConfig) *Client {
	tcp := e.cliTCP.Dial(e.srvAddr)
	return NewClient(e.clk, tlssim.Client(tcp, e.rng), cfg)
}

func longLivedCfg() ClientConfig {
	return ClientConfig{
		DeviceID:         "cam-1",
		KeepAlive:        25 * time.Second,
		Pattern:          proto.PatternOnIdle,
		KeepAliveTimeout: 10 * time.Second,
		ResponseTimeout:  30 * time.Second,
	}
}

func onDemandCfg() ClientConfig {
	return ClientConfig{
		DeviceID:        "sensor-1",
		ResponseTimeout: 2 * time.Minute,
	}
}

func TestRequestResponse(t *testing.T) {
	e := newEnv(ServerConfig{})
	var got []Message
	e.server.OnRequest = func(_ *Session, m Message) { got = append(got, m) }
	cli := e.dial(longLivedCfg())
	var resp *Message
	cli.OnResponse = func(m Message) { resp = &m }
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", []byte("motion"), 256); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(got) != 1 || string(got[0].Body) != "motion" || got[0].DeviceID != "cam-1" {
		t.Fatalf("server got %v", got)
	}
	if resp == nil || resp.Status != StatusOK {
		t.Fatalf("client response = %v", resp)
	}
}

func TestRequestBeforeReadyFails(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	if _, err := cli.Request("/event", nil, 0); err == nil {
		t.Fatal("request before established should fail")
	}
	_ = cli
}

func TestResponseTimeoutDropsSession(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	var reason proto.CloseReason
	var at simtime.Time
	cli.OnClosed = func(r proto.CloseReason) { reason, at = r, e.clk.Now() }
	e.clk.RunFor(time.Second)
	// Server goes deaf: the response never comes and the client's 408
	// threshold fires.
	e.deafAll()
	start := e.clk.Now()
	if _, err := cli.Request("/event", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(2 * time.Minute)
	if reason != proto.ReasonAckTimeout {
		t.Fatalf("close reason = %v, want ack-timeout", reason)
	}
	if got := at - start; got != 30*time.Second {
		t.Fatalf("timed out after %v, want 30s", got)
	}
}

func TestKeepAliveKeepsSessionAlive(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	closed := false
	cli.OnClosed = func(proto.CloseReason) { closed = true }
	e.clk.RunFor(5 * time.Minute)
	if closed {
		t.Fatal("keep-alives answered; session should stay up")
	}
}

func TestKeepAliveTimeoutClosesSession(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	var reason proto.CloseReason
	cli.OnClosed = func(r proto.CloseReason) { reason = r }
	e.clk.RunFor(time.Second)
	e.deafAll()
	e.clk.RunFor(5 * time.Minute)
	if reason != proto.ReasonKeepAliveTimeout {
		t.Fatalf("close reason = %v, want keepalive-timeout", reason)
	}
}

func TestOnDemandSessionLifecycle(t *testing.T) {
	e := newEnv(ServerConfig{SessionIdleTimeout: 5 * time.Minute})
	var got []Message
	e.server.OnRequest = func(_ *Session, m Message) { got = append(got, m) }
	cli := e.dial(onDemandCfg())
	done := false
	cli.OnResponse = func(Message) {
		cli.Close()
		done = true
	}
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", []byte("water leak"), 128); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if !done || len(got) != 1 {
		t.Fatalf("done=%v got=%d", done, len(got))
	}
	if e.server.AlarmCount() != 0 {
		t.Fatalf("on-demand close raised alarms: %v", e.server.Alarms())
	}
}

func TestIdleSessionReapedSilently(t *testing.T) {
	e := newEnv(ServerConfig{SessionIdleTimeout: time.Minute})
	cli := e.dial(onDemandCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	// Device never closes; the server reaps the idle session after 1min.
	e.clk.RunFor(10 * time.Minute)
	if _, ok := e.server.ActiveSession("sensor-1"); ok {
		t.Fatal("idle session not reaped")
	}
	if e.server.AlarmCount() != 0 {
		t.Fatalf("idle reaping alarmed: %v", e.server.Alarms())
	}
}

func TestServerCommandRoundTrip(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	var gotCmd Message
	cli.OnCommand = func(m Message) { gotCmd = m }
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", []byte("register"), 0); err != nil {
		t.Fatal(err) // binds the session to cam-1
	}
	e.clk.RunFor(time.Second)
	var res CommandResult
	if err := e.server.Command("cam-1", "/command", []byte("start-recording"), 200, 21*time.Second, func(r CommandResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if string(gotCmd.Body) != "start-recording" {
		t.Fatalf("device got %v", gotCmd)
	}
	if !res.Acked {
		t.Fatal("command not acked")
	}
}

func TestServerCommandTimeout(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", []byte("register"), 0); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	cli.sess.OnMessage = func([]byte) {} // device goes deaf
	var res CommandResult
	gotRes := false
	if err := e.server.Command("cam-1", "/command", nil, 0, 21*time.Second, func(r CommandResult) { res, gotRes = r, true }); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Minute)
	if !gotRes || res.Acked {
		t.Fatalf("res=%+v gotRes=%v, want unacked", res, gotRes)
	}
	if res.Duration != 21*time.Second {
		t.Fatalf("timeout after %v, want 21s", res.Duration)
	}
	if e.server.alarms.CountKind("command-timeout") != 1 {
		t.Fatalf("alarms = %v", e.server.Alarms())
	}
}

func TestCommandToUnknownDeviceFails(t *testing.T) {
	e := newEnv(ServerConfig{})
	if err := e.server.Command("ghost", "/x", nil, 0, 0, nil); err == nil {
		t.Fatal("command to unknown device should fail")
	}
}

func TestReconnectSupersedesWithoutAlarm(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli1 := e.dial(longLivedCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli1.Request("/event", nil, 0); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	first, _ := e.server.ActiveSession("cam-1")
	cli2 := e.dial(longLivedCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli2.Request("/event", nil, 0); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	second, _ := e.server.ActiveSession("cam-1")
	if first == second {
		t.Fatal("second session should supersede")
	}
	if e.server.HalfOpenCount("cam-1") != 1 {
		t.Fatalf("half-open = %d, want 1", e.server.HalfOpenCount("cam-1"))
	}
	if e.server.AlarmCount() != 0 {
		t.Fatalf("alarms = %v", e.server.Alarms())
	}
}

func TestAbruptLossAlarms(t *testing.T) {
	e := newEnv(ServerConfig{})
	cli := e.dial(longLivedCfg())
	e.clk.RunFor(time.Second)
	if _, err := cli.Request("/event", nil, 0); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	cli.sess.TCP().Abort()
	e.clk.RunFor(time.Second)
	if e.server.alarms.CountKind("device-offline") != 1 {
		t.Fatalf("alarms = %v, want one device-offline", e.server.Alarms())
	}
}

func TestMessageRoundTrip(t *testing.T) {
	tests := []Message{
		{Type: MsgRequest, ID: 1, DeviceID: "d", Path: "/event", Body: []byte("x"), Timestamp: 3 * time.Second},
		{Type: MsgResponse, ID: 1, Path: "/event", Status: 200},
		{Type: MsgRequest, ID: 9, DeviceID: "d2", Path: KeepAlivePath},
	}
	for _, want := range tests {
		got, err := Unmarshal(want.Marshal(100))
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.ID != want.ID || got.DeviceID != want.DeviceID ||
			got.Path != want.Path || got.Status != want.Status ||
			string(got.Body) != string(want.Body) || got.Timestamp != want.Timestamp {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{9, 9}); err == nil {
		t.Fatal("garbage should fail")
	}
}
