package arp

import "testing"

// FuzzUnmarshal: arbitrary bytes must never panic the ARP decoder.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Packet{Op: OpRequest}.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		round, err := Unmarshal(p.Marshal())
		if err != nil || round != p {
			t.Fatalf("round trip failed: %+v -> %+v (%v)", p, round, err)
		}
	})
}
