// Package arp implements address resolution over netsim segments, including
// the cache-poisoning behaviour the paper's attack model relies on: caches
// accept unsolicited replies, so an attacker can redirect a victim's unicast
// traffic through itself (Section III-B of the paper; the large-scale study
// it cites found IoT devices widely vulnerable to exactly this).
package arp

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Op distinguishes ARP packet kinds.
type Op uint16

// ARP operations, numbered as in RFC 826.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

// Packet is an ARP request or reply.
type Packet struct {
	Op        Op
	SenderMAC netsim.MAC
	SenderIP  ipaddr.Addr
	TargetMAC netsim.MAC
	TargetIP  ipaddr.Addr
}

const packetLen = 2 + 6 + 4 + 6 + 4

// Marshal encodes the packet for a frame payload.
func (p Packet) Marshal() []byte {
	b := make([]byte, packetLen)
	binary.BigEndian.PutUint16(b[0:2], uint16(p.Op))
	copy(b[2:8], p.SenderMAC[:])
	sip := p.SenderIP.Bytes()
	copy(b[8:12], sip[:])
	copy(b[12:18], p.TargetMAC[:])
	tip := p.TargetIP.Bytes()
	copy(b[18:22], tip[:])
	return b
}

// ErrShortPacket reports a truncated ARP payload.
var ErrShortPacket = errors.New("arp: short packet")

// Unmarshal decodes a frame payload into a Packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < packetLen {
		return Packet{}, ErrShortPacket
	}
	var p Packet
	p.Op = Op(binary.BigEndian.Uint16(b[0:2]))
	copy(p.SenderMAC[:], b[2:8])
	var sip, tip [4]byte
	copy(sip[:], b[8:12])
	p.SenderIP = ipaddr.FromBytes(sip)
	copy(p.TargetMAC[:], b[12:18])
	copy(tip[:], b[18:22])
	p.TargetIP = ipaddr.FromBytes(tip)
	return p, nil
}

// Config parameterises a Client.
type Config struct {
	// RequestTimeout bounds one resolution attempt. Default 1s.
	RequestTimeout time.Duration
	// MaxRetries is the number of re-requests before resolution fails.
	// Default 2.
	MaxRetries int
}

func (c *Config) fill() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
}

// Client resolves protocol addresses to MACs on one NIC and answers
// requests for its own address. It deliberately reproduces the permissive
// cache behaviour common in deployed stacks: any reply, solicited or not,
// overwrites the cache entry for its sender.
type Client struct {
	clk     *simtime.Clock
	nic     *netsim.NIC
	self    ipaddr.Addr
	cfg     Config
	cache   map[ipaddr.Addr]netsim.MAC
	pending map[ipaddr.Addr]*resolution
}

type resolution struct {
	callbacks []func(netsim.MAC, bool)
	retries   int
	timer     *simtime.Timer
}

// NewClient creates an ARP client for a NIC bound to the given address.
func NewClient(clk *simtime.Clock, nic *netsim.NIC, self ipaddr.Addr, cfg Config) *Client {
	cfg.fill()
	return &Client{
		clk:     clk,
		nic:     nic,
		self:    self,
		cfg:     cfg,
		cache:   make(map[ipaddr.Addr]netsim.MAC),
		pending: make(map[ipaddr.Addr]*resolution),
	}
}

// Self returns the protocol address the client answers for.
func (c *Client) Self() ipaddr.Addr { return c.self }

// Lookup returns the cached MAC for addr, if any.
func (c *Client) Lookup(addr ipaddr.Addr) (netsim.MAC, bool) {
	m, ok := c.cache[addr]
	return m, ok
}

// Resolve invokes done with the MAC for addr once known. The callback fires
// immediately on a cache hit, otherwise after a request/reply exchange; it
// receives ok=false if resolution times out.
func (c *Client) Resolve(addr ipaddr.Addr, done func(netsim.MAC, bool)) {
	if m, ok := c.cache[addr]; ok {
		done(m, true)
		return
	}
	if r, ok := c.pending[addr]; ok {
		r.callbacks = append(r.callbacks, done)
		return
	}
	r := &resolution{callbacks: []func(netsim.MAC, bool){done}}
	c.pending[addr] = r
	c.sendRequest(addr, r)
}

func (c *Client) sendRequest(addr ipaddr.Addr, r *resolution) {
	c.nic.Send(netsim.Frame{
		Dst:  netsim.BroadcastMAC,
		Type: netsim.EtherTypeARP,
		Payload: Packet{
			Op:        OpRequest,
			SenderMAC: c.nic.MAC(),
			SenderIP:  c.self,
			TargetIP:  addr,
		}.Marshal(),
	})
	r.timer = c.clk.Schedule(c.cfg.RequestTimeout, func() {
		if r.retries < c.cfg.MaxRetries {
			r.retries++
			c.sendRequest(addr, r)
			return
		}
		delete(c.pending, addr)
		for _, cb := range r.callbacks {
			cb(netsim.MAC{}, false)
		}
	})
}

// Announce broadcasts a gratuitous reply advertising the client's own
// binding, as hosts do when joining a network.
func (c *Client) Announce() {
	c.nic.Send(netsim.Frame{
		Dst:  netsim.BroadcastMAC,
		Type: netsim.EtherTypeARP,
		Payload: Packet{
			Op:        OpReply,
			SenderMAC: c.nic.MAC(),
			SenderIP:  c.self,
			TargetMAC: netsim.BroadcastMAC,
			TargetIP:  c.self,
		}.Marshal(),
	})
}

// HandleFrame processes an ARP frame received on the client's NIC. The
// owner of the NIC handler (the IP stack) routes EtherTypeARP frames here.
func (c *Client) HandleFrame(f netsim.Frame) {
	p, err := Unmarshal(f.Payload)
	if err != nil {
		return
	}
	// Vulnerable-by-default cache update: learn the sender binding from any
	// packet, including unsolicited replies. This is the poisoning surface.
	if !p.SenderIP.IsZero() {
		c.cache[p.SenderIP] = p.SenderMAC
		if r, ok := c.pending[p.SenderIP]; ok {
			delete(c.pending, p.SenderIP)
			r.timer.Stop()
			for _, cb := range r.callbacks {
				cb(p.SenderMAC, true)
			}
		}
	}
	if p.Op == OpRequest && p.TargetIP == c.self {
		c.nic.Send(netsim.Frame{
			Dst:  p.SenderMAC,
			Type: netsim.EtherTypeARP,
			Payload: Packet{
				Op:        OpReply,
				SenderMAC: c.nic.MAC(),
				SenderIP:  c.self,
				TargetMAC: p.SenderMAC,
				TargetIP:  p.SenderIP,
			}.Marshal(),
		})
	}
}
