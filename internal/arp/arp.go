// Package arp implements address resolution over netsim segments, including
// the cache-poisoning behaviour the paper's attack model relies on: caches
// accept unsolicited replies, so an attacker can redirect a victim's unicast
// traffic through itself (Section III-B of the paper; the large-scale study
// it cites found IoT devices widely vulnerable to exactly this).
package arp

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Op distinguishes ARP packet kinds.
type Op uint16

// ARP operations, numbered as in RFC 826.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

// Packet is an ARP request or reply.
type Packet struct {
	Op        Op
	SenderMAC netsim.MAC
	SenderIP  ipaddr.Addr
	TargetMAC netsim.MAC
	TargetIP  ipaddr.Addr
}

const packetLen = 2 + 6 + 4 + 6 + 4

// Marshal encodes the packet for a frame payload.
func (p Packet) Marshal() []byte {
	return p.AppendTo(nil)
}

// AppendTo encodes the packet onto b (usually a reusable scratch buffer)
// and returns the extended slice.
func (p Packet) AppendTo(b []byte) []byte {
	n := len(b)
	total := n + packetLen
	if cap(b) < total {
		nb := make([]byte, total)
		copy(nb, b)
		b = nb
	} else {
		b = b[:total]
	}
	out := b[n:]
	binary.BigEndian.PutUint16(out[0:2], uint16(p.Op))
	copy(out[2:8], p.SenderMAC[:])
	sip := p.SenderIP.Bytes()
	copy(out[8:12], sip[:])
	copy(out[12:18], p.TargetMAC[:])
	tip := p.TargetIP.Bytes()
	copy(out[18:22], tip[:])
	return b
}

// ErrShortPacket reports a truncated ARP payload.
var ErrShortPacket = errors.New("arp: short packet")

// Unmarshal decodes a frame payload into a Packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < packetLen {
		return Packet{}, ErrShortPacket
	}
	var p Packet
	p.Op = Op(binary.BigEndian.Uint16(b[0:2]))
	copy(p.SenderMAC[:], b[2:8])
	var sip, tip [4]byte
	copy(sip[:], b[8:12])
	p.SenderIP = ipaddr.FromBytes(sip)
	copy(p.TargetMAC[:], b[12:18])
	copy(tip[:], b[18:22])
	p.TargetIP = ipaddr.FromBytes(tip)
	return p, nil
}

// Config parameterises a Client.
type Config struct {
	// RequestTimeout bounds one resolution attempt. Default 1s.
	RequestTimeout time.Duration
	// MaxRetries is the number of re-requests before resolution fails.
	// Default 2.
	MaxRetries int
}

func (c *Config) fill() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
}

// Client resolves protocol addresses to MACs on one NIC and answers
// requests for its own address. It deliberately reproduces the permissive
// cache behaviour common in deployed stacks: any reply, solicited or not,
// overwrites the cache entry for its sender.
type Client struct {
	clk     *simtime.Clock
	nic     *netsim.NIC
	self    ipaddr.Addr
	cfg     Config
	cache   map[ipaddr.Addr]netsim.MAC
	pending map[ipaddr.Addr]*resolution
	// txbuf is the marshal scratch for the client's sends; netsim copies a
	// frame's payload before Send returns, so one buffer serves them all.
	txbuf []byte
}

// send marshals p into the client's scratch and transmits it.
func (c *Client) send(dst netsim.MAC, p Packet) {
	c.txbuf = p.AppendTo(c.txbuf[:0])
	c.nic.Send(netsim.Frame{Dst: dst, Type: netsim.EtherTypeARP, Payload: c.txbuf})
}

type resolution struct {
	callbacks []func(netsim.MAC, bool)
	retries   int
	timer     *simtime.Timer
}

// NewClient creates an ARP client for a NIC bound to the given address.
func NewClient(clk *simtime.Clock, nic *netsim.NIC, self ipaddr.Addr, cfg Config) *Client {
	cfg.fill()
	return &Client{
		clk:     clk,
		nic:     nic,
		self:    self,
		cfg:     cfg,
		cache:   make(map[ipaddr.Addr]netsim.MAC),
		pending: make(map[ipaddr.Addr]*resolution),
	}
}

// Reset rebinds the client to a NIC and address, dropping all resolution
// state while keeping its allocations (cache and pending maps, marshal
// scratch, configuration). Outstanding resolutions are cancelled: their
// timers stop and their callbacks never fire. A reset client behaves
// byte-identically to NewClient(clk, nic, self, cfg) for the same cfg.
func (c *Client) Reset(nic *netsim.NIC, self ipaddr.Addr) {
	c.nic = nic
	c.self = self
	clear(c.cache)
	for _, r := range c.pending {
		r.timer.Stop()
	}
	clear(c.pending)
}

// Self returns the protocol address the client answers for.
func (c *Client) Self() ipaddr.Addr { return c.self }

// Lookup returns the cached MAC for addr, if any.
func (c *Client) Lookup(addr ipaddr.Addr) (netsim.MAC, bool) {
	m, ok := c.cache[addr]
	return m, ok
}

// Resolve invokes done with the MAC for addr once known. The callback fires
// immediately on a cache hit, otherwise after a request/reply exchange; it
// receives ok=false if resolution times out.
func (c *Client) Resolve(addr ipaddr.Addr, done func(netsim.MAC, bool)) {
	if m, ok := c.cache[addr]; ok {
		done(m, true)
		return
	}
	if r, ok := c.pending[addr]; ok {
		r.callbacks = append(r.callbacks, done)
		return
	}
	r := &resolution{callbacks: []func(netsim.MAC, bool){done}}
	c.pending[addr] = r
	c.sendRequest(addr, r)
}

func (c *Client) sendRequest(addr ipaddr.Addr, r *resolution) {
	c.send(netsim.BroadcastMAC, Packet{
		Op:        OpRequest,
		SenderMAC: c.nic.MAC(),
		SenderIP:  c.self,
		TargetIP:  addr,
	})
	r.timer = c.clk.Schedule(c.cfg.RequestTimeout, func() {
		if r.retries < c.cfg.MaxRetries {
			r.retries++
			c.sendRequest(addr, r)
			return
		}
		delete(c.pending, addr)
		for _, cb := range r.callbacks {
			cb(netsim.MAC{}, false)
		}
	})
}

// Announce broadcasts a gratuitous reply advertising the client's own
// binding, as hosts do when joining a network.
func (c *Client) Announce() {
	c.send(netsim.BroadcastMAC, Packet{
		Op:        OpReply,
		SenderMAC: c.nic.MAC(),
		SenderIP:  c.self,
		TargetMAC: netsim.BroadcastMAC,
		TargetIP:  c.self,
	})
}

// HandleFrame processes an ARP frame received on the client's NIC. The
// owner of the NIC handler (the IP stack) routes EtherTypeARP frames here.
func (c *Client) HandleFrame(f netsim.Frame) {
	p, err := Unmarshal(f.Payload)
	if err != nil {
		return
	}
	// Vulnerable-by-default cache update: learn the sender binding from any
	// packet, including unsolicited replies. This is the poisoning surface.
	if !p.SenderIP.IsZero() {
		c.cache[p.SenderIP] = p.SenderMAC
		if r, ok := c.pending[p.SenderIP]; ok {
			delete(c.pending, p.SenderIP)
			r.timer.Stop()
			for _, cb := range r.callbacks {
				cb(p.SenderMAC, true)
			}
		}
	}
	if p.Op == OpRequest && p.TargetIP == c.self {
		c.send(p.SenderMAC, Packet{
			Op:        OpReply,
			SenderMAC: c.nic.MAC(),
			SenderIP:  c.self,
			TargetMAC: p.SenderMAC,
			TargetIP:  p.SenderIP,
		})
	}
}
