package arp

import (
	"time"

	"repro/internal/ipaddr"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Spoofer poisons victims' ARP caches so that their traffic for chosen
// addresses is delivered to the attacker's NIC instead. It periodically
// re-sends the forged bindings, as real tools do, so that legitimate ARP
// traffic cannot heal the victims' caches for long.
type Spoofer struct {
	clk      *simtime.Clock
	client   *Client
	period   time.Duration
	entries  []spoofEntry
	realMACs map[ipaddr.Addr]netsim.MAC
	ticker   *simtime.Ticker
	active   bool
}

type spoofEntry struct {
	victimIP  ipaddr.Addr
	victimMAC netsim.MAC
	claimedIP ipaddr.Addr
}

// NewSpoofer creates a spoofer that re-poisons every period (default 1s if
// period <= 0) once Start is called.
func NewSpoofer(clk *simtime.Clock, client *Client, period time.Duration) *Spoofer {
	if period <= 0 {
		period = time.Second
	}
	return &Spoofer{
		clk:      clk,
		client:   client,
		period:   period,
		realMACs: make(map[ipaddr.Addr]netsim.MAC),
	}
}

// Poison tells victim that claimed is at the attacker's MAC. It resolves
// the victim's real MAC first (needed to address the forged reply) and
// remembers the claimed address's real binding so Restore can heal it.
// done, if non-nil, fires when the first forged reply has been sent, or
// with ok=false if the victim could not be resolved.
func (s *Spoofer) Poison(victim, claimed ipaddr.Addr, done func(ok bool)) {
	s.client.Resolve(victim, func(victimMAC netsim.MAC, ok bool) {
		if !ok {
			if done != nil {
				done(false)
			}
			return
		}
		// Learn the claimed address's genuine MAC before we start lying
		// about it, so Restore can put it back.
		s.client.Resolve(claimed, func(realMAC netsim.MAC, ok bool) {
			if ok {
				s.realMACs[claimed] = realMAC
			}
			s.entries = append(s.entries, spoofEntry{
				victimIP:  victim,
				victimMAC: victimMAC,
				claimedIP: claimed,
			})
			s.sendForged(s.entries[len(s.entries)-1])
			if s.active && s.ticker == nil {
				s.startTicker()
			}
			if done != nil {
				done(true)
			}
		})
	})
}

// Start begins periodic re-poisoning of all registered entries.
func (s *Spoofer) Start() {
	if s.active {
		return
	}
	s.active = true
	if len(s.entries) > 0 {
		s.startTicker()
	}
}

func (s *Spoofer) startTicker() {
	s.ticker = simtime.NewTicker(s.clk, s.period, func() {
		for _, e := range s.entries {
			s.sendForged(e)
		}
	})
}

// SetPeriod changes the re-poison interval. Against quiet LANs a slow
// period is just as effective (see the ablation tests) and far less
// chatty; against caches that re-learn frequently, faster wins.
func (s *Spoofer) SetPeriod(period time.Duration) {
	if period <= 0 {
		period = time.Second
	}
	s.period = period
	if s.ticker != nil {
		s.ticker.Stop()
		s.startTicker()
	}
}

// Period returns the current re-poison interval.
func (s *Spoofer) Period() time.Duration { return s.period }

// Stop halts re-poisoning without healing the victims' caches.
func (s *Spoofer) Stop() {
	s.active = false
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Restore stops the attack and sends corrective replies re-binding each
// claimed address to its genuine MAC.
func (s *Spoofer) Restore() {
	s.Stop()
	for _, e := range s.entries {
		realMAC, ok := s.realMACs[e.claimedIP]
		if !ok {
			continue
		}
		s.client.nic.Send(netsim.Frame{
			Dst:  e.victimMAC,
			Type: netsim.EtherTypeARP,
			Payload: Packet{
				Op:        OpReply,
				SenderMAC: realMAC,
				SenderIP:  e.claimedIP,
				TargetMAC: e.victimMAC,
				TargetIP:  e.victimIP,
			}.Marshal(),
		})
	}
	s.entries = nil
}

func (s *Spoofer) sendForged(e spoofEntry) {
	s.client.nic.Send(netsim.Frame{
		Dst:  e.victimMAC,
		Type: netsim.EtherTypeARP,
		Payload: Packet{
			Op:        OpReply,
			SenderMAC: s.client.nic.MAC(), // the lie: claimedIP is-at attacker
			SenderIP:  e.claimedIP,
			TargetMAC: e.victimMAC,
			TargetIP:  e.victimIP,
		}.Marshal(),
	})
}
