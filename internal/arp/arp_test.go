package arp

import (
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

type testHost struct {
	nic    *netsim.NIC
	client *Client
}

type testEnv struct {
	clk *simtime.Clock
	net *netsim.Network
	seg *netsim.Segment
}

func newEnv() *testEnv {
	clk := simtime.NewClock()
	net := netsim.NewNetwork(clk, 1)
	return &testEnv{clk: clk, net: net, seg: net.NewSegment("lan", time.Millisecond, 0)}
}

func (e *testEnv) addHost(name, ip string) *testHost {
	nic := e.net.NewHost(name).AttachNIC(e.seg)
	c := NewClient(e.clk, nic, ipaddr.MustParse(ip), Config{})
	nic.SetHandler(func(_ *netsim.NIC, f netsim.Frame) {
		if f.Type == netsim.EtherTypeARP {
			c.HandleFrame(f)
		}
	})
	return &testHost{nic: nic, client: c}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := Packet{
		Op:        OpReply,
		SenderMAC: netsim.MAC{0x02, 0, 0, 0, 0, 1},
		SenderIP:  ipaddr.MustParse("192.168.1.10"),
		TargetMAC: netsim.MAC{0x02, 0, 0, 0, 0, 2},
		TargetIP:  ipaddr.MustParse("192.168.1.1"),
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip %+v -> %+v", p, got)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 5)); err != ErrShortPacket {
		t.Fatalf("err = %v, want ErrShortPacket", err)
	}
}

func TestResolve(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	b := e.addHost("b", "192.168.1.20")
	var gotMAC netsim.MAC
	var gotOK bool
	a.client.Resolve(b.client.Self(), func(m netsim.MAC, ok bool) { gotMAC, gotOK = m, ok })
	e.clk.Run()
	if !gotOK || gotMAC != b.nic.MAC() {
		t.Fatalf("resolve = %v,%v want %v,true", gotMAC, gotOK, b.nic.MAC())
	}
}

func TestResolveCachesResult(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	b := e.addHost("b", "192.168.1.20")
	a.client.Resolve(b.client.Self(), func(netsim.MAC, bool) {})
	e.clk.Run()
	framesBefore := a.nic.Stats().FramesSent
	immediate := false
	a.client.Resolve(b.client.Self(), func(m netsim.MAC, ok bool) { immediate = ok })
	if !immediate {
		t.Fatal("cached resolve should fire synchronously")
	}
	if a.nic.Stats().FramesSent != framesBefore {
		t.Fatal("cached resolve should send no frames")
	}
}

func TestResolveTimeout(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	done := false
	ok := true
	a.client.Resolve(ipaddr.MustParse("192.168.1.99"), func(_ netsim.MAC, o bool) {
		done, ok = true, o
	})
	e.clk.Run()
	if !done {
		t.Fatal("resolution never completed")
	}
	if ok {
		t.Fatal("resolution of absent host should fail")
	}
}

func TestResolveRetries(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	a.client.Resolve(ipaddr.MustParse("192.168.1.99"), func(netsim.MAC, bool) {})
	e.clk.Run()
	// 1 initial + 2 retries.
	if got := a.nic.Stats().FramesSent; got != 3 {
		t.Fatalf("sent %d requests, want 3", got)
	}
}

func TestConcurrentResolveCoalesced(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	b := e.addHost("b", "192.168.1.20")
	calls := 0
	for i := 0; i < 5; i++ {
		a.client.Resolve(b.client.Self(), func(_ netsim.MAC, ok bool) {
			if ok {
				calls++
			}
		})
	}
	e.clk.Run()
	if calls != 5 {
		t.Fatalf("callbacks = %d, want 5", calls)
	}
	if got := a.nic.Stats().FramesSent; got != 1 {
		t.Fatalf("sent %d requests, want 1 (coalesced)", got)
	}
}

func TestLearnFromRequest(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	b := e.addHost("b", "192.168.1.20")
	// b requests a; a should passively learn b's binding.
	b.client.Resolve(a.client.Self(), func(netsim.MAC, bool) {})
	e.clk.Run()
	if m, ok := a.client.Lookup(b.client.Self()); !ok || m != b.nic.MAC() {
		t.Fatalf("a did not learn b's binding from the request: %v %v", m, ok)
	}
}

func TestGratuitousAnnounceLearned(t *testing.T) {
	e := newEnv()
	a := e.addHost("a", "192.168.1.10")
	b := e.addHost("b", "192.168.1.20")
	b.client.Announce()
	e.clk.Run()
	if m, ok := a.client.Lookup(b.client.Self()); !ok || m != b.nic.MAC() {
		t.Fatal("gratuitous announce not learned")
	}
}

func TestCachePoisoning(t *testing.T) {
	e := newEnv()
	victim := e.addHost("victim", "192.168.1.10")
	gw := e.addHost("gw", "192.168.1.1")
	attacker := e.addHost("attacker", "192.168.1.66")

	// Victim resolves the gateway legitimately.
	victim.client.Resolve(gw.client.Self(), func(netsim.MAC, bool) {})
	e.clk.Run()
	if m, _ := victim.client.Lookup(gw.client.Self()); m != gw.nic.MAC() {
		t.Fatal("precondition: victim should know real gateway MAC")
	}

	sp := NewSpoofer(e.clk, attacker.client, time.Second)
	poisoned := false
	sp.Poison(victim.client.Self(), gw.client.Self(), func(ok bool) { poisoned = ok })
	e.clk.Run()
	if !poisoned {
		t.Fatal("poisoning reported failure")
	}
	if m, _ := victim.client.Lookup(gw.client.Self()); m != attacker.nic.MAC() {
		t.Fatalf("victim cache = %v, want attacker MAC %v", m, attacker.nic.MAC())
	}
}

func TestRepoisoningOverridesHealing(t *testing.T) {
	e := newEnv()
	victim := e.addHost("victim", "192.168.1.10")
	gw := e.addHost("gw", "192.168.1.1")
	attacker := e.addHost("attacker", "192.168.1.66")

	sp := NewSpoofer(e.clk, attacker.client, 500*time.Millisecond)
	sp.Start()
	sp.Poison(victim.client.Self(), gw.client.Self(), nil)
	e.clk.RunFor(2 * time.Second)

	// The gateway announces itself (healing the victim's cache)...
	gw.client.Announce()
	e.clk.RunFor(2 * time.Millisecond)
	if m, _ := victim.client.Lookup(gw.client.Self()); m != gw.nic.MAC() {
		t.Fatal("announce should momentarily heal the cache")
	}
	// ...but the next re-poison tick re-corrupts it.
	e.clk.RunFor(time.Second)
	if m, _ := victim.client.Lookup(gw.client.Self()); m != attacker.nic.MAC() {
		t.Fatal("re-poisoning did not re-corrupt the cache")
	}
	sp.Stop()
}

func TestRestoreHealsCache(t *testing.T) {
	e := newEnv()
	victim := e.addHost("victim", "192.168.1.10")
	gw := e.addHost("gw", "192.168.1.1")
	attacker := e.addHost("attacker", "192.168.1.66")

	sp := NewSpoofer(e.clk, attacker.client, time.Second)
	sp.Start()
	sp.Poison(victim.client.Self(), gw.client.Self(), nil)
	e.clk.RunFor(3 * time.Second)
	sp.Restore()
	e.clk.RunFor(time.Second)
	if m, _ := victim.client.Lookup(gw.client.Self()); m != gw.nic.MAC() {
		t.Fatalf("restore did not heal cache: %v", m)
	}
}

func TestPoisonUnknownVictimFails(t *testing.T) {
	e := newEnv()
	attacker := e.addHost("attacker", "192.168.1.66")
	sp := NewSpoofer(e.clk, attacker.client, time.Second)
	var ok = true
	sp.Poison(ipaddr.MustParse("192.168.1.77"), ipaddr.MustParse("192.168.1.1"), func(o bool) { ok = o })
	e.clk.Run()
	if ok {
		t.Fatal("poisoning an absent victim should fail")
	}
}
