package arp

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// poisonCoverage measures the fraction of time a victim's cache points at
// the attacker while the legitimate gateway re-announces itself every
// healPeriod and the spoofer re-poisons every repoisonPeriod.
func poisonCoverage(t *testing.T, repoisonPeriod, healPeriod time.Duration) float64 {
	t.Helper()
	e := newEnv()
	victim := e.addHost("victim", "192.168.1.10")
	gw := e.addHost("gw", "192.168.1.1")
	attacker := e.addHost("attacker", "192.168.1.66")

	simtime.NewTicker(e.clk, healPeriod, gw.client.Announce)

	sp := NewSpoofer(e.clk, attacker.client, repoisonPeriod)
	sp.Start()
	sp.Poison(victim.client.Self(), gw.client.Self(), nil)
	e.clk.RunFor(2 * time.Second) // let the first poison land

	poisoned, samples := 0, 0
	simtime.NewTicker(e.clk, time.Second, func() {
		samples++
		if m, ok := victim.client.Lookup(gw.client.Self()); ok && m == attacker.nic.MAC() {
			poisoned++
		}
	})
	e.clk.RunFor(10 * time.Minute)
	sp.Stop()
	if samples == 0 {
		t.Fatal("no samples")
	}
	return float64(poisoned) / float64(samples)
}

// TestRepoisonPeriodAblation charts the design trade-off behind the
// spoofer's re-poison interval: against a gateway that re-announces every
// 30s, a 1s re-poison keeps the victim poisoned essentially always, while
// a multi-minute interval leaves large healed gaps.
func TestRepoisonPeriodAblation(t *testing.T) {
	// Periods deliberately misaligned with the 30s healing schedule so the
	// deterministic tick ordering cannot mask the gaps.
	heal := 30 * time.Second
	fast := poisonCoverage(t, time.Second, heal)
	medium := poisonCoverage(t, 50*time.Second, heal)
	slow := poisonCoverage(t, 5*time.Minute, heal)

	if fast < 0.95 {
		t.Errorf("1s re-poison coverage = %.2f, want >= 0.95", fast)
	}
	if !(fast > medium && medium > slow) {
		t.Errorf("coverage should fall with the re-poison interval: %.2f, %.2f, %.2f", fast, medium, slow)
	}
	if slow > 0.3 {
		t.Errorf("5m re-poison coverage = %.2f, want a clearly degraded position", slow)
	}
}

// TestNoHealingMeansPermanentPoison: with a silent gateway (the common
// case — hosts rarely re-announce), even a slow re-poison holds forever.
func TestNoHealingMeansPermanentPoison(t *testing.T) {
	e := newEnv()
	victim := e.addHost("victim", "192.168.1.10")
	gw := e.addHost("gw", "192.168.1.1")
	attacker := e.addHost("attacker", "192.168.1.66")

	sp := NewSpoofer(e.clk, attacker.client, 5*time.Minute)
	sp.Start()
	sp.Poison(victim.client.Self(), gw.client.Self(), nil)
	e.clk.RunFor(time.Hour)
	if m, ok := victim.client.Lookup(gw.client.Self()); !ok || m != attacker.nic.MAC() {
		t.Fatal("poison did not persist against a silent gateway")
	}
	sp.Stop()
}
