// Package wire provides the binary encoding helpers shared by the
// simulation's application protocols, plus padding support: IoT messages
// are padded to profile-specified wire lengths so that the record-length
// fingerprinting the paper relies on has realistic, stable signatures.
package wire

import (
	"encoding/binary"
	"errors"
)

// ErrTruncated reports a read past the end of a message.
var ErrTruncated = errors.New("wire: truncated message")

// Writer appends binary fields to a buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a byte.
func (w *Writer) U8(v uint8) *Writer {
	w.buf = append(w.buf, v)
	return w
}

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// String appends a 16-bit-length-prefixed string.
func (w *Writer) String(s string) *Writer {
	w.U16(uint16(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Bytes16 appends a 16-bit-length-prefixed byte slice.
func (w *Writer) Bytes16(b []byte) *Writer {
	w.U16(uint16(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// PadTo extends the buffer with zero bytes to reach exactly n. If the
// buffer is already longer, it is returned unchanged: padding can only
// grow a message. Decoders ignore trailing padding.
func (w *Writer) PadTo(n int) *Writer {
	for len(w.buf) < n {
		w.buf = append(w.buf, 0)
	}
	return w
}

// Reader consumes binary fields from a buffer. Trailing unread bytes are
// permitted (they are message padding).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a received message.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// String reads a 16-bit-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes16 reads a 16-bit-length-prefixed byte slice. The result aliases
// the input buffer; callers that retain it must copy.
func (r *Reader) Bytes16() []byte {
	n := int(r.U16())
	return r.take(n)
}
