package wire

import "testing"

// FuzzReader: no input may panic the reader; errors must be sticky.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(NewWriter(16).U8(1).U16(2).String("abc").Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.U8()
		_ = r.U16()
		_ = r.U32()
		_ = r.U64()
		_ = r.String()
		_ = r.Bytes16()
		if r.Err() != nil {
			// Sticky: all further reads are zero-valued, never panicking.
			if r.U8() != 0 || r.String() != "" {
				t.Fatal("reads after error must be zero-valued")
			}
		}
	})
}
