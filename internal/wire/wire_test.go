package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.U8(7).U16(300).U32(70000).U64(1 << 40).String("hello").Bytes16([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U16(); got != 300 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 70000 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes16(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes16 = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestTruncatedRead(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.U32()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// Subsequent reads keep returning zero values without panicking.
	if r.U16() != 0 || r.String() != "" {
		t.Fatal("reads after error should be zero-valued")
	}
}

func TestTruncatedString(t *testing.T) {
	w := NewWriter(8)
	w.U16(100) // claims 100 bytes, provides none
	r := NewReader(w.Bytes())
	if r.String() != "" || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatal("truncated string not detected")
	}
}

func TestPadTo(t *testing.T) {
	w := NewWriter(8)
	w.U8(1)
	w.PadTo(20)
	if w.Len() != 20 {
		t.Fatalf("len = %d, want 20", w.Len())
	}
	// Decoding ignores trailing padding.
	r := NewReader(w.Bytes())
	if r.U8() != 1 || r.Err() != nil {
		t.Fatal("padded message decode failed")
	}
	if r.Remaining() != 19 {
		t.Fatalf("remaining = %d, want 19", r.Remaining())
	}
}

func TestPadToNeverShrinks(t *testing.T) {
	w := NewWriter(8)
	w.String("a fairly long field")
	n := w.Len()
	w.PadTo(4)
	if w.Len() != n {
		t.Fatalf("PadTo shrank buffer: %d -> %d", n, w.Len())
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string, pad uint8) bool {
		if len(s) > 60000 {
			return true
		}
		w := NewWriter(len(s) + 2)
		w.String(s)
		w.PadTo(w.Len() + int(pad))
		r := NewReader(w.Bytes())
		return r.String() == s && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntRoundTrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64) bool {
		w := NewWriter(15)
		w.U8(a).U16(b).U32(c).U64(d)
		r := NewReader(w.Bytes())
		return r.U8() == a && r.U16() == b && r.U32() == c && r.U64() == d && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
