package fleet

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestStreamingAggregateMatchesRetained pins the tentpole guarantee: the
// streaming aggregator (fold-as-they-land, retain nothing) produces a
// Result byte-identical to the seed's retain-all-then-merge reference
// (aggregateRetained), across worker counts, testbed reuse, and a
// checkpointed resume.
func TestStreamingAggregateMatchesRetained(t *testing.T) {
	// Reference: run every shard sequentially, retain the results, and
	// aggregate them the old way.
	ref := testCampaign(t).withDefaults()
	ref.Spec.fill()
	var shards []ShardResult
	for i := 0; i < ref.shardCount(); i++ {
		shards = append(shards, ref.runShard(i))
	}
	want := resultJSON(t, ref.aggregateRetained(shards))

	for _, tc := range []struct {
		name       string
		workers    int
		reuse      bool
		checkpoint bool
	}{
		{"workers=1", 1, false, false},
		{"workers=4", 4, false, false},
		{"workers=16", 16, false, false},
		{"workers=4 reuse", 4, true, false},
		{"workers=16 reuse", 16, true, false},
		{"workers=4 checkpoint", 4, false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := testCampaign(t)
			c.Workers = tc.workers
			c.ReuseTestbeds = tc.reuse
			if tc.checkpoint {
				c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
			}
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got := resultJSON(t, res); !bytes.Equal(got, want) {
				t.Errorf("streaming aggregate differs from retained reference:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestStreamingResumeMatchesRetained replays an interrupted campaign —
// half the shards pre-folded from a checkpoint, half run live — against
// the retained reference.
func TestStreamingResumeMatchesRetained(t *testing.T) {
	ref := testCampaign(t).withDefaults()
	ref.Spec.fill()
	total := ref.shardCount()
	var shards []ShardResult
	for i := 0; i < total; i++ {
		shards = append(shards, ref.runShard(i))
	}
	want := resultJSON(t, ref.aggregateRetained(shards))

	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	interrupted := testCampaign(t).withDefaults()
	interrupted.Spec.fill()
	g := interrupted.newAggregator(nil, 0)
	for _, s := range shards[:total/2] {
		g.add(s)
	}
	ck := newCheckpointer(path, interrupted.identity())
	if err := ck.save(g.partial()); err != nil {
		t.Fatal(err)
	}

	resumed := testCampaign(t)
	resumed.Workers = 3
	resumed.CheckpointPath = path
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Errorf("resumed streaming aggregate differs from retained reference:\n got %s\nwant %s", got, want)
	}
}

// TestAggregatorReordersShards feeds shard results to the aggregator in a
// scrambled completion order and expects the in-order fold.
func TestAggregatorReordersShards(t *testing.T) {
	c := testCampaign(t).withDefaults()
	c.Spec.fill()
	total := c.shardCount()
	shards := make([]ShardResult, total)
	for i := 0; i < total; i++ {
		shards[i] = c.runShard(i)
	}
	want := resultJSON(t, c.aggregateRetained(shards))

	// Worst case: shard 0 lands last, so everything buffers in the window.
	g := c.newAggregator(nil, 0)
	for i := total - 1; i >= 0; i-- {
		g.add(shards[i])
	}
	if len(g.window) != 0 {
		t.Fatalf("reorder window not drained: %d buffered", len(g.window))
	}
	if got := resultJSON(t, g.finish()); !bytes.Equal(got, want) {
		t.Errorf("scrambled-order aggregate differs:\n got %s\nwant %s", got, want)
	}
}

// TestCampaignExternalAccumulator checks the -serve wiring contract: a
// caller-supplied accumulator ends up holding the final metrics, readable
// mid-run, and a stale one is rejected.
func TestCampaignExternalAccumulator(t *testing.T) {
	acc := obs.NewAccumulator()
	c := testCampaign(t)
	c.Workers = 4
	c.Accumulator = acc
	midReads := 0
	c.OnShard = func(s ShardResult, done, total int) {
		// A mid-run read must be internally consistent and never ahead of
		// the shards that have landed.
		if acc.Adds() > done {
			t.Errorf("accumulator ahead of completion: %d adds after %d shards", acc.Adds(), done)
		}
		midReads++
		_ = acc.State()
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if midReads == 0 {
		t.Fatal("OnShard never fired")
	}
	if got, want := resultJSON(t, Result{Metrics: acc.State()}), resultJSON(t, Result{Metrics: res.Metrics}); !bytes.Equal(got, want) {
		t.Error("external accumulator state differs from final Result.Metrics")
	}

	// The same accumulator is spent now: a second Run must refuse it.
	reuse := testCampaign(t)
	reuse.Accumulator = acc
	if _, err := reuse.Run(); err == nil {
		t.Fatal("Run accepted a non-fresh accumulator")
	}
}
