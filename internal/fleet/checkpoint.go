package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// checkpointVersion guards the on-disk shape; bump on incompatible change.
const checkpointVersion = 1

// identity is the part of a campaign that must match for a checkpoint to
// be resumable: same spec, population and sharding → same shard results.
//
// Execution knobs that provably cannot change shard results stay out of
// the identity: Workers (pure scheduling) and ReuseTestbeds (recycled
// testbeds are byte-identical to fresh ones — the experiment package's
// reset identity tests and fleet's TestReuseFlagOutsideCampaignIdentity
// hold that line). A knob may only be excluded here alongside a test
// proving resume-across-the-flag equals an uninterrupted run.
type identity struct {
	Spec      Spec   `json:"spec"`
	Homes     int    `json:"homes"`
	Seed      int64  `json:"seed"`
	ShardSize int    `json:"shardSize"`
	Template  string `json:"template"`
}

func (c Campaign) identity() identity {
	return identity{
		Spec:      c.Spec,
		Homes:     c.Homes,
		Seed:      c.Seed,
		ShardSize: c.ShardSize,
		Template:  c.Template.Name,
	}
}

// fingerprint hashes the identity's canonical JSON.
func (id identity) fingerprint() string {
	b, err := json.Marshal(id)
	if err != nil {
		// identity contains only plain data; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// checkpointFile is the on-disk resume state: the campaign fingerprint
// plus every completed shard, sorted by index.
type checkpointFile struct {
	Version     int           `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	Identity    identity      `json:"identity"`
	Shards      []ShardResult `json:"shards"`
}

// checkpointer persists completed shards for one campaign.
type checkpointer struct {
	path string
	id   identity
	fp   string
}

func newCheckpointer(path string, id identity) *checkpointer {
	return &checkpointer{path: path, id: id, fp: id.fingerprint()}
}

// load reads the checkpoint, if any. A missing file is a fresh start; a
// file from a different campaign (or a corrupt one) is an error so a stale
// path never silently poisons the results.
func (c *checkpointer) load() ([]ShardResult, error) {
	data, err := os.ReadFile(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint %s is corrupt: %w", c.path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("fleet: checkpoint %s has version %d, want %d", c.path, f.Version, checkpointVersion)
	}
	if f.Fingerprint != c.fp {
		return nil, fmt.Errorf("fleet: checkpoint %s belongs to a different campaign (spec/homes/seed/shard-size changed); delete it or pick another path", c.path)
	}
	return f.Shards, nil
}

// save atomically replaces the checkpoint with the given shards (already
// sorted by index). Write-then-rename keeps a crash mid-save from ever
// leaving a truncated checkpoint behind.
func (c *checkpointer) save(shards []ShardResult) error {
	f := checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: c.fp,
		Identity:    c.id,
		Shards:      shards,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(c.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	return nil
}
