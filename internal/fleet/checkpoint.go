package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// checkpointVersion guards the on-disk shape; bump on incompatible change.
// v1 retained every completed ShardResult (each save rewrote them all —
// O(shards²) I/O across a campaign); v2 persists a compacted mergeable
// Partial whose size is bounded by the reorder window.
const checkpointVersion = 2

// identity is the part of a campaign that must match for a checkpoint to
// be resumable: same spec, population and sharding → same shard results.
//
// Execution knobs that provably cannot change shard results stay out of
// the identity: Workers (pure scheduling) and ReuseTestbeds (recycled
// testbeds are byte-identical to fresh ones — the experiment package's
// reset identity tests and fleet's TestReuseFlagOutsideCampaignIdentity
// hold that line). A knob may only be excluded here alongside a test
// proving resume-across-the-flag equals an uninterrupted run.
type identity struct {
	Spec      Spec   `json:"spec"`
	Homes     int    `json:"homes"`
	Seed      int64  `json:"seed"`
	ShardSize int    `json:"shardSize"`
	Template  string `json:"template"`
}

func (c Campaign) identity() identity {
	return identity{
		Spec:      c.Spec,
		Homes:     c.Homes,
		Seed:      c.Seed,
		ShardSize: c.ShardSize,
		Template:  c.Template.Name,
	}
}

// fingerprint hashes the identity's canonical JSON.
func (id identity) fingerprint() string {
	b, err := json.Marshal(id)
	if err != nil {
		// identity contains only plain data; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// checkpointFile is the on-disk resume state: the campaign fingerprint
// plus the compacted partial aggregate. The same shape serves as a
// -shard-range worker's partial output file, so a completed campaign's
// checkpoint is directly mergeable.
type checkpointFile struct {
	Version     int      `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Identity    identity `json:"identity"`
	Partial     Partial  `json:"partial"`
}

// decodeCheckpoint parses and version-checks checkpoint/partial bytes.
// Structural validation of the partial needs the campaign's shard count
// and stays with the callers.
func decodeCheckpoint(data []byte, path string) (checkpointFile, error) {
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return checkpointFile{}, fmt.Errorf("fleet: checkpoint %s is corrupt: %w", path, err)
	}
	if f.Version == 1 {
		return checkpointFile{}, fmt.Errorf("fleet: checkpoint %s uses the v1 retain-every-shard format; this build reads compacted v2 partials only — finish the campaign with the build that wrote it, or delete the file to restart", path)
	}
	if f.Version != checkpointVersion {
		return checkpointFile{}, fmt.Errorf("fleet: checkpoint %s has version %d, want %d", path, f.Version, checkpointVersion)
	}
	return f, nil
}

// checkpointer persists one campaign's resumable partial aggregate.
type checkpointer struct {
	path string
	id   identity
	fp   string
}

func newCheckpointer(path string, id identity) *checkpointer {
	return &checkpointer{path: path, id: id, fp: id.fingerprint()}
}

// load reads the checkpoint, if any. A missing file is a fresh start; a
// file from a different campaign, a corrupt one, or one whose partial
// violates the watermark/window invariants is an error so a stale or
// hand-edited path never silently poisons the results. total is the
// campaign's shard count, bounding the structural validation.
func (c *checkpointer) load(total int) (Partial, bool, error) {
	data, err := os.ReadFile(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return Partial{}, false, nil
	}
	if err != nil {
		return Partial{}, false, fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	f, err := decodeCheckpoint(data, c.path)
	if err != nil {
		return Partial{}, false, err
	}
	if f.Fingerprint != c.fp {
		return Partial{}, false, fmt.Errorf("fleet: checkpoint %s belongs to a different campaign (spec/homes/seed/shard-size changed); delete it or pick another path", c.path)
	}
	if err := f.Partial.validate(total); err != nil {
		return Partial{}, false, fmt.Errorf("fleet: checkpoint %s: %w", c.path, err)
	}
	return f.Partial, true, nil
}

// save atomically replaces the checkpoint with the partial. Cost is
// O(aggregate + reorder window) and independent of how many shards have
// completed — the v1 format re-encoded every done shard on every save,
// O(shards²) over a campaign. Write-then-rename keeps a crash mid-save
// from ever leaving a truncated checkpoint behind.
func (c *checkpointer) save(p Partial) error {
	f := checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: c.fp,
		Identity:    c.id,
		Partial:     p,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(c.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	return nil
}
