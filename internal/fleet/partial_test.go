package fleet

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestMergePartialsMatchesSingleProcess is the multi-process guarantee:
// split the shard range any way at all, run each range independently
// (with its own worker pool), merge the partials — the Result is
// byte-identical to a single-process Run and to the seed's
// retain-all-then-merge reference.
func TestMergePartialsMatchesSingleProcess(t *testing.T) {
	ref := testCampaign(t).withDefaults()
	ref.Spec.fill()
	total := ref.shardCount()
	var shards []ShardResult
	for i := 0; i < total; i++ {
		shards = append(shards, ref.runShard(i))
	}
	want := resultJSON(t, ref.aggregateRetained(shards))

	for _, tc := range []struct {
		name   string
		bounds []int // split points, e.g. {0,2,6} → ranges [0,2) [2,6)
	}{
		{"one range", []int{0, total}},
		{"single shard head", []int{0, 1, total}},
		{"even halves", []int{0, total / 2, total}},
		{"three ways", []int{0, 2, 4, total}},
		{"all singletons", []int{0, 1, 2, 3, 4, 5, total}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var parts []Partial
			for i := 0; i+1 < len(tc.bounds); i++ {
				worker := testCampaign(t)
				worker.Workers = 1 + i%3 // vary pool size across ranges
				p, err := worker.RunRange(tc.bounds[i], tc.bounds[i+1])
				if err != nil {
					t.Fatal(err)
				}
				if p.Start != tc.bounds[i] || p.Watermark != tc.bounds[i+1] || len(p.Window) != 0 {
					t.Fatalf("range [%d,%d) partial covers [%d,%d) with %d windowed",
						tc.bounds[i], tc.bounds[i+1], p.Start, p.Watermark, len(p.Window))
				}
				parts = append(parts, p)
			}
			// Merge order must not matter: feed ranges back-to-front.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			res, err := testCampaign(t).MergePartials(parts)
			if err != nil {
				t.Fatal(err)
			}
			if got := resultJSON(t, res); !bytes.Equal(got, want) {
				t.Errorf("merged result differs from single-process run:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestSaveLoadMergeRoundTrip walks the full CLI path in-process: range
// workers persist partials with SavePartial, LoadPartials reconstructs
// the campaign from the embedded identity alone, and the merge matches a
// plain Run byte-for-byte.
func TestSaveLoadMergeRoundTrip(t *testing.T) {
	plain := testCampaign(t)
	plainRes, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	total := plain.withDefaults().shardCount()
	var paths []string
	for i, b := range [][2]int{{0, 2}, {2, 4}, {4, total}} {
		worker := testCampaign(t)
		worker.Workers = 2
		p, err := worker.RunRange(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "part"+string(rune('a'+i))+".json")
		if err := worker.SavePartial(path, p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	mc, parts, err := LoadPartials(paths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, res), resultJSON(t, plainRes)) {
		t.Error("save/load/merge round trip differs from single-process run")
	}
}

// TestMergePartialsRejects: gaps, overlaps, missing tails, interrupted
// ranges and cross-campaign files must all fail loudly — merging them
// silently would fabricate results.
func TestMergePartialsRejects(t *testing.T) {
	c := testCampaign(t)
	ranges := map[string]Partial{}
	for _, b := range [][2]int{{0, 2}, {0, 3}, {2, 4}, {2, 6}, {3, 6}, {4, 6}} {
		p, err := c.RunRange(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		ranges[key(b[0], b[1])] = p
	}
	interrupted := ranges[key(2, 6)]
	interrupted.Watermark = 4
	interrupted.Window = []ShardResult{{Index: 5}}

	for _, tc := range []struct {
		name    string
		parts   []Partial
		wantErr string
	}{
		{"empty", nil, "no partials"},
		{"gap", []Partial{ranges[key(0, 2)], ranges[key(3, 6)]}, "contiguous"},
		{"overlap", []Partial{ranges[key(0, 3)], ranges[key(2, 6)]}, "contiguous"},
		{"missing head", []Partial{ranges[key(2, 6)]}, "contiguous"},
		{"missing tail", []Partial{ranges[key(0, 2)], ranges[key(2, 4)]}, "range is missing"},
		{"duplicate range", []Partial{ranges[key(0, 2)], ranges[key(0, 2)], ranges[key(2, 6)]}, "contiguous"},
		{"interrupted range", []Partial{ranges[key(0, 2)], interrupted}, "incomplete"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.MergePartials(tc.parts)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("MergePartials error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if _, err := c.MergePartials([]Partial{ranges[key(0, 3)], ranges[key(3, 6)]}); err != nil {
		t.Fatalf("valid tiling rejected: %v", err)
	}
}

func key(a, b int) string { return string(rune('0'+a)) + ":" + string(rune('0'+b)) }

// TestLoadPartialsRejectsForeignFile: partials from different campaigns
// must not merge.
func TestLoadPartialsRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	a := testCampaign(t)
	pa, err := a.RunRange(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	pathA := filepath.Join(dir, "a.json")
	if err := a.SavePartial(pathA, pa); err != nil {
		t.Fatal(err)
	}
	b := testCampaign(t)
	b.Seed = 99
	pb, err := b.RunRange(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(dir, "b.json")
	if err := b.SavePartial(pathB, pb); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadPartials([]string{pathA, pathB}); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign partial accepted: %v", err)
	}
	if _, _, err := LoadPartials(nil); err == nil {
		t.Fatal("empty path list accepted")
	}
}

// TestRunRangeCheckpointResume: a range worker's checkpoint resumes that
// range — producing the identical partial file a never-interrupted worker
// writes — and a checkpoint from a different range is rejected by name.
func TestRunRangeCheckpointResume(t *testing.T) {
	clean := testCampaign(t)
	wantPartial, err := clean.RunRange(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wantPartial)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted worker: one shard of the range folded, then killed.
	c := testCampaign(t)
	c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	prep := c.withDefaults()
	prep.Spec.fill()
	g := prep.newAggregator(nil, 2)
	g.add(prep.runShard(2))
	if err := newCheckpointer(c.CheckpointPath, prep.identity()).save(g.partial()); err != nil {
		t.Fatal(err)
	}
	var resumedFrom int
	c.OnResume = func(p Partial, done, total int) { resumedFrom = p.Shards() }
	p, err := c.RunRange(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resumedFrom != 1 {
		t.Fatalf("resumed %d shards, want 1", resumedFrom)
	}
	got, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed range partial differs from uninterrupted worker:\n got %s\nwant %s", got, want)
	}

	// The same checkpoint offered to the wrong range names the mismatch.
	wrong := testCampaign(t)
	wrong.CheckpointPath = c.CheckpointPath
	if _, err := wrong.RunRange(0, 5); err == nil || !strings.Contains(err.Error(), "starting at 2 but this run starts at 0") {
		t.Fatalf("wrong-range resume error = %v", err)
	}
	if _, err := wrong.RunRange(2, 3); err == nil || !strings.Contains(err.Error(), "beyond this run's range end") {
		t.Fatalf("short-range resume error = %v", err)
	}
}

// TestRunRangeRejectsBadBounds pins the range validation message.
func TestRunRangeRejectsBadBounds(t *testing.T) {
	c := testCampaign(t)
	for _, b := range [][2]int{{-1, 3}, {3, 3}, {4, 2}, {0, 7}} {
		if _, err := c.RunRange(b[0], b[1]); err == nil || !strings.Contains(err.Error(), "shard range") {
			t.Fatalf("RunRange(%d,%d) error = %v", b[0], b[1], err)
		}
	}
}
