package fleet

import "testing"

// FuzzParseSpec: arbitrary spec bytes must never panic, and every accepted
// spec must be filled and valid.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"attack":"edelay"}`))
	f.Add([]byte(`{"name":"x","attack":"offline","holdSecs":300,"targets":{"labels":["C1"],"perHome":2}}`))
	f.Add([]byte(`{"attack":"cdelay","marginSecs":0.5,"trials":3,"timingJitter":0.25}`))
	f.Add([]byte(`{"attack":"edelay","unknown":1}`))
	f.Add([]byte(`{"attack":"edelay"}{"attack":"cdelay"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"attack":"edelay","trials":-1}`))
	f.Add([]byte(`{"attack":"edelay","holdSecs":1e300}`))
	f.Add([]byte(`{"attack":"replay"}`))
	f.Add([]byte(`{"attack":"replay","replay":{"mode":"raw","retainBytes":1024}}`))
	f.Add([]byte(`{"attack":"replay","replay":{"mode":"verbatim"}}`))
	f.Add([]byte(`{"attack":"replay","replay":{"retainBytes":-1}}`))
	f.Add([]byte(`{"attack":"edelay","replay":{"mode":"app"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v (%q)", err, data)
		}
		if s.Attack == "" || s.Trials < 1 || s.Targets.PerHome < 1 {
			t.Fatalf("accepted spec not filled: %+v (%q)", s, data)
		}
		if s.Attack == AttackReplay {
			if s.Replay == nil || s.Replay.Mode == "" || s.Replay.RetainBytes < 1 {
				t.Fatalf("accepted replay spec not filled: %+v (%q)", s.Replay, data)
			}
		} else if s.Replay != nil {
			t.Fatalf("non-replay spec carries replay settings: %+v (%q)", s, data)
		}
	})
}
