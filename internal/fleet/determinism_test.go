package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testCampaign(t *testing.T) Campaign {
	t.Helper()
	spec := DefaultSpec()
	spec.Trials = 1
	return Campaign{Spec: spec, Homes: 24, ShardSize: 4, Seed: 7}
}

func resultJSON(t *testing.T, r Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerCountInvariance is the subsystem's core guarantee: the worker
// pool only changes wall-clock time. Results and checkpoints are
// byte-identical for 1, 4 and 8 workers.
func TestWorkerCountInvariance(t *testing.T) {
	var wantResult, wantCk []byte
	for _, workers := range []int{1, 4, 8} {
		c := testCampaign(t)
		c.Workers = workers
		c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
		res, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.TotalTrials == 0 {
			t.Fatalf("workers=%d: campaign ran no trials", workers)
		}
		gotResult := resultJSON(t, res)
		gotCk, err := os.ReadFile(c.CheckpointPath)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if wantResult == nil {
			wantResult, wantCk = gotResult, gotCk
			continue
		}
		if !bytes.Equal(gotResult, wantResult) {
			t.Errorf("workers=%d: result differs from workers=1", workers)
		}
		if !bytes.Equal(gotCk, wantCk) {
			t.Errorf("workers=%d: checkpoint differs from workers=1", workers)
		}
	}
}

// TestResumeEqualsUninterrupted simulates an interrupted campaign: only
// the first half of the shards are checkpointed, then a fresh Run resumes
// from that state. The resumed result and final checkpoint must be
// byte-identical to an uninterrupted run's.
func TestResumeEqualsUninterrupted(t *testing.T) {
	full := testCampaign(t)
	full.Workers = 2
	full.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	fullCk, err := os.ReadFile(full.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted twin: checkpoint holding the partial aggregate of shards
	// 0..2 of 6, as if the process died mid-campaign.
	interrupted := testCampaign(t)
	interrupted.Workers = 3
	interrupted.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	interrupted = interrupted.withDefaults()
	interrupted.Spec.fill()
	g := interrupted.newAggregator(nil, 0)
	for idx := 0; idx < interrupted.shardCount()/2; idx++ {
		g.add(interrupted.runShard(idx))
	}
	ck := newCheckpointer(interrupted.CheckpointPath, interrupted.identity())
	if err := ck.save(g.partial()); err != nil {
		t.Fatal(err)
	}

	resumedRes, err := interrupted.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, resumedRes), resultJSON(t, fullRes)) {
		t.Error("resumed result differs from uninterrupted run")
	}
	resumedCk, err := os.ReadFile(interrupted.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedCk, fullCk) {
		t.Error("resumed checkpoint differs from uninterrupted run")
	}
}

// TestShardSizeChangesIdentity: a different shard size is a different
// campaign for checkpointing purposes (shard results are per-shard merges,
// so mixing sizes would corrupt aggregation).
func TestShardSizeChangesIdentity(t *testing.T) {
	a := testCampaign(t).withDefaults()
	b := a
	b.ShardSize = 8
	if a.identity().fingerprint() == b.identity().fingerprint() {
		t.Fatal("shard size not part of campaign fingerprint")
	}
}
