package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestReuseTestbedsByteIdentity is the campaign-level face of the arena's
// byte-identity contract: flipping ReuseTestbeds changes allocation
// behaviour only. Results — tallies, alarms, merged metric snapshots — and
// checkpoints are byte-identical with the flag on and off.
func TestReuseTestbedsByteIdentity(t *testing.T) {
	var wantResult, wantCk []byte
	for _, reuse := range []bool{false, true} {
		c := testCampaign(t)
		c.ReuseTestbeds = reuse
		c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
		res, err := c.Run()
		if err != nil {
			t.Fatalf("reuse=%v: %v", reuse, err)
		}
		if res.TotalTrials == 0 {
			t.Fatalf("reuse=%v: campaign ran no trials", reuse)
		}
		gotResult := resultJSON(t, res)
		gotCk, err := os.ReadFile(c.CheckpointPath)
		if err != nil {
			t.Fatalf("reuse=%v: %v", reuse, err)
		}
		if wantResult == nil {
			wantResult, wantCk = gotResult, gotCk
			continue
		}
		if !bytes.Equal(gotResult, wantResult) {
			t.Errorf("reuse=%v: result differs from reuse=false", reuse)
		}
		if !bytes.Equal(gotCk, wantCk) {
			t.Errorf("reuse=%v: checkpoint differs from reuse=false", reuse)
		}
	}
}

// TestReuseFlagOutsideCampaignIdentity pins the satellite decision on
// checkpoint compatibility: because recycled homes are proven
// byte-identical to fresh ones, ReuseTestbeds is deliberately NOT part of
// the campaign identity. A checkpoint written with the flag off must
// resume — and finish identically — with it on.
func TestReuseFlagOutsideCampaignIdentity(t *testing.T) {
	a := testCampaign(t)
	b := testCampaign(t)
	b.ReuseTestbeds = true
	if a.identity().fingerprint() != b.identity().fingerprint() {
		t.Fatal("fingerprint differs across ReuseTestbeds")
	}

	// Interrupted run with reuse off…
	ck := filepath.Join(t.TempDir(), "ck.json")
	partial := testCampaign(t)
	partial.CheckpointPath = ck
	stopAfter := partial.shardCount() / 2
	calls := 0
	partial.OnShard = func(ShardResult, int, int) {
		calls++
		if calls == stopAfter {
			panic("interrupt")
		}
	}
	func() {
		defer func() { _ = recover() }()
		_, _ = partial.Run()
	}()

	// …resumed with reuse on must equal an uninterrupted plain run.
	resumed := testCampaign(t)
	resumed.ReuseTestbeds = true
	resumed.CheckpointPath = ck
	resRes, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	plain := testCampaign(t)
	plainRes, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, resRes), resultJSON(t, plainRes)) {
		t.Error("resume across ReuseTestbeds flag changed the campaign result")
	}
	if _, err := os.ReadFile(ck); err != nil {
		t.Fatal(err)
	}
}
