package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// DefaultShardSize is the number of homes per checkpointable work unit.
const DefaultShardSize = 64

// Campaign binds a spec to a population and an execution budget.
type Campaign struct {
	// Spec is the attack procedure to run in every home.
	Spec Spec
	// Homes is the population size.
	Homes int
	// Workers is the worker-pool size. Workers only changes wall-clock
	// time: results are byte-identical for any value. Default 1.
	Workers int
	// ShardSize is the number of homes per shard — the unit of
	// checkpointing and of work distribution. It is part of the campaign
	// identity: resuming requires the same value. Default DefaultShardSize.
	ShardSize int
	// Seed is the population master seed.
	Seed int64
	// CheckpointPath, when non-empty, persists completed shards as JSON so
	// an interrupted campaign resumes instead of restarting.
	CheckpointPath string
	// Template drives device-mix sampling; zero value selects the default.
	Template device.PopulationTemplate
	// ReuseTestbeds recycles one testbed arena per shard worker through
	// experiment.Testbed.Reset instead of building each home's testbed from
	// scratch. Purely an allocation optimisation: recycled homes are
	// byte-identical to fresh ones (the experiment package's identity tests
	// prove it), so the flag changes neither results nor campaign identity —
	// checkpoints written with it off resume with it on and vice versa.
	ReuseTestbeds bool
	// Progress, when set, is called after every completed shard with the
	// number of completed shards (including resumed ones) and the total.
	Progress func(done, total int)
	// OnShard, when set, receives every shard result as it lands: resumed
	// shards in index order before any work starts, then live shards in
	// completion order. All calls happen on the collector goroutine, and
	// the callback observes results only — it cannot alter aggregation.
	OnShard func(s ShardResult, done, total int)
	// Accumulator, when set, is the streaming sink for shard metrics: the
	// collector folds each shard's snapshot into it in shard-index order as
	// results land, and the final Result.Metrics is its end state. External
	// readers (the -serve observability plane) may call State() at any time
	// from any goroutine; what they see is always the aggregate of a prefix
	// of the campaign's shards. It must be fresh (zero Adds) when Run
	// starts — Run owns the fold. When nil, Run uses a private accumulator.
	Accumulator *obs.Accumulator
}

// ShardResult is the deterministic outcome of one shard: a pure function
// of (campaign identity, shard index), independent of worker count and of
// which other shards have run.
type ShardResult struct {
	Index         int          `json:"index"`
	FirstHome     int          `json:"firstHome"`
	Homes         int          `json:"homes"`
	HomesNoTarget int          `json:"homesNoTarget"`
	HomesFailed   int          `json:"homesFailed"`
	Errors        []string     `json:"errors,omitempty"`
	Alarms        int          `json:"alarms"`
	Tallies       []ModelTally `json:"tallies"`
	Metrics       obs.Snapshot `json:"metrics"`
}

// maxShardErrors bounds how many home errors a shard records verbatim.
const maxShardErrors = 3

func (c Campaign) withDefaults() Campaign {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	return c
}

func (c Campaign) shardCount() int {
	return (c.Homes + c.ShardSize - 1) / c.ShardSize
}

// Run executes the campaign: shards not present in the checkpoint are
// distributed over the worker pool, each worker building one home's
// testbed at a time (memory stays bounded by Workers, not Homes), and the
// shard results stream through an aggregator — folded in shard-index order
// as they land, then released — into a worker-count-independent Result.
// Only an active checkpoint retains shard results beyond their fold (the
// checkpoint file stores every completed shard); without one, steady-state
// memory is the aggregate plus a reorder window of roughly Workers shards.
func (c Campaign) Run() (Result, error) {
	c = c.withDefaults()
	c.Spec.fill()
	if err := c.Spec.Validate(); err != nil {
		return Result{}, err
	}
	if c.Homes <= 0 {
		return Result{}, fmt.Errorf("fleet: campaign needs a positive number of homes, got %d", c.Homes)
	}
	if c.Accumulator != nil && c.Accumulator.Adds() != 0 {
		return Result{}, fmt.Errorf("fleet: campaign accumulator already holds %d snapshots; Run needs a fresh one", c.Accumulator.Adds())
	}

	total := c.shardCount()
	agg := c.newAggregator(c.Accumulator)
	doneCount := 0

	var ck *checkpointer
	// completed mirrors every finished shard for checkpoint saves — the
	// one remaining retain-everything structure, inherent to the current
	// checkpoint format, so it exists only when checkpointing is on.
	var completed map[int]ShardResult
	if c.CheckpointPath != "" {
		ck = newCheckpointer(c.CheckpointPath, c.identity())
		resumed, err := ck.load()
		if err != nil {
			return Result{}, err
		}
		completed = make(map[int]ShardResult, total)
		for _, s := range resumed {
			if s.Index >= 0 && s.Index < total {
				completed[s.Index] = s
			}
		}
	}
	report := func() {
		if c.Progress != nil {
			c.Progress(doneCount, total)
		}
	}
	for _, s := range sortedShards(completed) {
		doneCount++
		agg.add(s)
		if c.OnShard != nil {
			c.OnShard(s, doneCount, total)
		}
	}
	report()

	var pending []int
	for i := 0; i < total; i++ {
		if _, ok := completed[i]; !ok {
			pending = append(pending, i)
		}
	}

	if len(pending) > 0 {
		jobs := make(chan int)
		results := make(chan ShardResult)
		var wg sync.WaitGroup
		workers := c.Workers
		if workers > len(pending) {
			workers = len(pending)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					results <- c.runShard(idx)
				}
			}()
		}
		go func() {
			for _, idx := range pending {
				jobs <- idx
			}
			close(jobs)
			wg.Wait()
			close(results)
		}()
		// Single collector: completion order varies with the worker pool,
		// but nothing order-sensitive happens here — the aggregator's
		// reorder window restores index order before folding, and
		// checkpoints store shards sorted by index.
		for s := range results {
			doneCount++
			agg.add(s)
			if ck != nil {
				completed[s.Index] = s
				if err := ck.save(sortedShards(completed)); err != nil {
					return Result{}, err
				}
			}
			if c.OnShard != nil {
				c.OnShard(s, doneCount, total)
			}
			report()
		}
	}

	return agg.finish(), nil
}

// runShard generates and runs the shard's homes sequentially. Everything
// inside a shard happens in home order, so the shard result is
// deterministic no matter which worker executes it.
func (c Campaign) runShard(idx int) ShardResult {
	first := idx * c.ShardSize
	n := c.ShardSize
	if first+n > c.Homes {
		n = c.Homes - first
	}
	sr := ShardResult{Index: idx, FirstHome: first, Homes: n}
	pc := PopulationConfig{
		Seed:         c.Seed,
		Template:     c.Template,
		TimingJitter: c.Spec.TimingJitter,
		RulesPerHome: c.Spec.RulesPerHome,
	}
	tallies := make(map[string]*ModelTally)
	// Home snapshots stream into a per-shard accumulator as each home
	// completes — the same left fold as obs.Merge over the retained list,
	// so the shard metrics are byte-identical while a home's snapshot (and
	// with it the discarded testbed's last reachable state) is released as
	// soon as the next home starts.
	snaps := obs.NewAccumulator()
	// With ReuseTestbeds on, one arena cycles through the shard's homes;
	// runHome hands it back (or a replacement) after each home. Amortised
	// over ShardSize homes, steady-state testbed construction allocates
	// almost nothing.
	var arena *experiment.Testbed
	for i := 0; i < n; i++ {
		hr, tb := runHome(c.Spec, GenerateHome(pc, first+i), arena)
		if c.ReuseTestbeds {
			arena = tb
		}
		if hr.err != nil {
			sr.HomesFailed++
			if len(sr.Errors) < maxShardErrors {
				sr.Errors = append(sr.Errors, hr.err.Error())
			}
		}
		if hr.noTarget {
			sr.HomesNoTarget++
		}
		for model, t := range hr.tallies {
			agg, ok := tallies[model]
			if !ok {
				agg = &ModelTally{Model: model}
				tallies[model] = agg
			}
			agg.add(*t)
		}
		sr.Alarms += hr.alarms
		snaps.Add(hr.snapshot)
	}
	sr.Tallies = sortTallies(tallies)
	sr.Metrics = snaps.State()
	return sr
}

func sortTallies(m map[string]*ModelTally) []ModelTally {
	out := make([]ModelTally, 0, len(m))
	for _, t := range m {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

func sortedShards(m map[int]ShardResult) []ShardResult {
	out := make([]ShardResult, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
