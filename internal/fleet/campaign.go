package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// DefaultShardSize is the number of homes per checkpointable work unit.
const DefaultShardSize = 64

// Campaign binds a spec to a population and an execution budget.
type Campaign struct {
	// Spec is the attack procedure to run in every home.
	Spec Spec
	// Homes is the population size.
	Homes int
	// Workers is the worker-pool size. Workers only changes wall-clock
	// time: results are byte-identical for any value. Default 1.
	Workers int
	// ShardSize is the number of homes per shard — the unit of
	// checkpointing and of work distribution. It is part of the campaign
	// identity: resuming requires the same value. Default DefaultShardSize.
	ShardSize int
	// Seed is the population master seed.
	Seed int64
	// CheckpointPath, when non-empty, persists the campaign's compacted
	// partial aggregate as JSON after every completed shard, so an
	// interrupted campaign resumes instead of restarting. The file stays
	// O(aggregate + reorder window) no matter how many shards are done.
	CheckpointPath string
	// Template drives device-mix sampling; zero value selects the default.
	Template device.PopulationTemplate
	// ReuseTestbeds recycles one testbed arena per shard worker through
	// experiment.Testbed.Reset instead of building each home's testbed from
	// scratch. Purely an allocation optimisation: recycled homes are
	// byte-identical to fresh ones (the experiment package's identity tests
	// prove it), so the flag changes neither results nor campaign identity —
	// checkpoints written with it off resume with it on and vice versa.
	ReuseTestbeds bool
	// Progress, when set, observes completion: once before live work
	// starts (reporting the checkpoint-resumed shard count, zero on a
	// fresh start) and then after every live completed shard, with the
	// number of completed shards and the total for this run's range.
	Progress func(done, total int)
	// OnShard, when set, receives every live shard result as it lands, in
	// completion order. Resumed state is not replayed shard-by-shard —
	// compacted checkpoints no longer retain folded shards — it arrives
	// once through OnResume instead. All calls happen on the collector
	// goroutine, and the callback observes results only — it cannot alter
	// aggregation.
	OnShard func(s ShardResult, done, total int)
	// OnResume, when set, is called once when a checkpoint seeds the run:
	// p is the resumed partial aggregate (folded prefix plus any retained
	// out-of-order window shards), done counts its completed shards and
	// total the shards of this run's range. Not called on a fresh start.
	OnResume func(p Partial, done, total int)
	// Accumulator, when set, is the streaming sink for shard metrics: the
	// collector folds each shard's snapshot into it in shard-index order as
	// results land, and the final Result.Metrics is its end state. External
	// readers (the -serve observability plane) may call State() at any time
	// from any goroutine; what they see is always the aggregate of a prefix
	// of the campaign's shards. It must be fresh (zero Adds) when Run
	// starts — Run owns the fold. When nil, Run uses a private accumulator.
	Accumulator *obs.Accumulator
}

// ShardResult is the deterministic outcome of one shard: a pure function
// of (campaign identity, shard index), independent of worker count and of
// which other shards have run.
type ShardResult struct {
	Index         int          `json:"index"`
	FirstHome     int          `json:"firstHome"`
	Homes         int          `json:"homes"`
	HomesNoTarget int          `json:"homesNoTarget"`
	HomesFailed   int          `json:"homesFailed"`
	Errors        []string     `json:"errors,omitempty"`
	Alarms        int          `json:"alarms"`
	Tallies       []ModelTally `json:"tallies"`
	Metrics       obs.Snapshot `json:"metrics"`
}

// maxShardErrors bounds how many home errors a shard records verbatim.
const maxShardErrors = 3

func (c Campaign) withDefaults() Campaign {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	return c
}

func (c Campaign) shardCount() int {
	return (c.Homes + c.ShardSize - 1) / c.ShardSize
}

// validateRun checks the knobs shared by Run, RunRange and MergePartials.
// The receiver is already withDefaults()'d and spec-filled.
func (c Campaign) validateRun() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Homes <= 0 {
		return fmt.Errorf("fleet: campaign needs a positive number of homes, got %d", c.Homes)
	}
	if c.Accumulator != nil && c.Accumulator.Adds() != 0 {
		return fmt.Errorf("fleet: campaign accumulator already holds %d snapshots; the run needs a fresh one", c.Accumulator.Adds())
	}
	return nil
}

// Run executes the campaign: shards not already folded into the checkpoint
// are distributed over the worker pool, each worker building one home's
// testbed at a time (memory stays bounded by Workers, not Homes), and the
// shard results stream through an aggregator — folded in shard-index order
// as they land, then released — into a worker-count-independent Result.
// A checkpoint resumes by absorbing the persisted partial aggregate, so
// steady-state memory — and the checkpoint file itself — is the aggregate
// plus a reorder window of roughly Workers shards, never the shard set.
func (c Campaign) Run() (Result, error) {
	c = c.withDefaults()
	c.Spec.fill()
	if err := c.validateRun(); err != nil {
		return Result{}, err
	}
	total := c.shardCount()
	agg, err := c.runShards(0, total, total)
	if err != nil {
		return Result{}, err
	}
	return agg.finish(), nil
}

// RunRange executes only shards [first, last) of the campaign and returns
// the completed range's Partial — one worker process's share of a
// multi-process fleet. Partials from ranges tiling the whole campaign
// merge (MergePartials, `phantomlab fleet -merge`) into a Result
// byte-identical to a single-process Run. CheckpointPath works per range:
// an interrupted range worker resumes its own shards, and its checkpoint
// records Start so a mismatched -shard-range is rejected rather than
// silently misattributed.
func (c Campaign) RunRange(first, last int) (Partial, error) {
	c = c.withDefaults()
	c.Spec.fill()
	if err := c.validateRun(); err != nil {
		return Partial{}, err
	}
	total := c.shardCount()
	if first < 0 || last <= first || last > total {
		return Partial{}, fmt.Errorf("fleet: shard range [%d,%d) outside the campaign's %d shards", first, last, total)
	}
	agg, err := c.runShards(first, last, total)
	if err != nil {
		return Partial{}, err
	}
	return agg.partial(), nil
}

// runShards is the engine shared by Run and RunRange: seed an aggregator
// for [first, last) — from the checkpoint when one exists — then fill the
// pending shards through the worker pool. Progress/OnShard/OnResume done
// and total counts are relative to the range.
func (c Campaign) runShards(first, last, total int) (*aggregator, error) {
	agg := c.newAggregator(c.Accumulator, first)
	units := last - first
	done := 0
	var ck *checkpointer
	if c.CheckpointPath != "" {
		ck = newCheckpointer(c.CheckpointPath, c.identity())
		p, found, err := ck.load(total)
		if err != nil {
			return nil, err
		}
		if found {
			if p.Start != first {
				return nil, fmt.Errorf("fleet: checkpoint %s covers shards starting at %d but this run starts at %d; resume with the original shard range or use a fresh checkpoint path", c.CheckpointPath, p.Start, first)
			}
			if p.Watermark > last {
				return nil, fmt.Errorf("fleet: checkpoint %s is folded through shard %d, beyond this run's range end %d", c.CheckpointPath, p.Watermark, last)
			}
			if n := len(p.Window); n > 0 && p.Window[n-1].Index >= last {
				return nil, fmt.Errorf("fleet: checkpoint %s retains shard %d, beyond this run's range end %d", c.CheckpointPath, p.Window[n-1].Index, last)
			}
			if err := agg.restore(p); err != nil {
				return nil, err
			}
			done = p.Shards()
			if c.OnResume != nil {
				c.OnResume(p, done, units)
			}
		}
	}
	if c.Progress != nil {
		c.Progress(done, units)
	}
	var pending []int
	for i := agg.next; i < last; i++ {
		if _, ok := agg.window[i]; !ok {
			pending = append(pending, i)
		}
	}
	if err := c.collect(agg, ck, pending, done, units); err != nil {
		return nil, err
	}
	if agg.next != last || len(agg.window) != 0 {
		return nil, fmt.Errorf("fleet: internal: aggregation stalled at shard %d with %d windowed shards", agg.next, len(agg.window))
	}
	return agg, nil
}

// collect distributes pending shards over the worker pool and folds
// results as they land. On a checkpoint-save failure it cancels the feeder
// and workers and drains the pool before returning, so no goroutine
// outlives the call — the previous collector returned immediately on that
// path, leaking every worker blocked on the unbuffered results channel
// plus the feeder.
//
//lint:bridge detflow -- completion order is reconciled here: the aggregator's reorder window folds shards in index order, so the result is order-independent
func (c Campaign) collect(agg *aggregator, ck *checkpointer, pending []int, done, total int) error {
	if len(pending) == 0 {
		return nil
	}
	jobs := make(chan int)
	results := make(chan ShardResult)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	workers := c.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				select {
				case results <- c.runShard(idx):
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, idx := range pending {
			select {
			case jobs <- idx:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	var runErr error
	// Single collector: completion order varies with the worker pool, but
	// nothing order-sensitive happens here — the aggregator's reorder
	// window restores index order before folding, and each checkpoint save
	// persists the folded prefix plus that window.
	for s := range results {
		if runErr != nil {
			continue // cancelled: drain until the pool shuts down
		}
		done++
		agg.add(s)
		if ck != nil {
			if err := ck.save(agg.partial()); err != nil {
				runErr = err
				close(stop)
				continue
			}
		}
		if c.OnShard != nil {
			c.OnShard(s, done, total)
		}
		if c.Progress != nil {
			c.Progress(done, total)
		}
	}
	return runErr
}

// runShard generates and runs the shard's homes sequentially. Everything
// inside a shard happens in home order, so the shard result is
// deterministic no matter which worker executes it.
func (c Campaign) runShard(idx int) ShardResult {
	first := idx * c.ShardSize
	n := c.ShardSize
	if first+n > c.Homes {
		n = c.Homes - first
	}
	sr := ShardResult{Index: idx, FirstHome: first, Homes: n}
	pc := PopulationConfig{
		Seed:         c.Seed,
		Template:     c.Template,
		TimingJitter: c.Spec.TimingJitter,
		RulesPerHome: c.Spec.RulesPerHome,
	}
	tallies := make(map[string]*ModelTally)
	// Home snapshots stream into a per-shard accumulator as each home
	// completes — the same left fold as obs.Merge over the retained list,
	// so the shard metrics are byte-identical while a home's snapshot (and
	// with it the discarded testbed's last reachable state) is released as
	// soon as the next home starts.
	snaps := obs.NewAccumulator()
	// With ReuseTestbeds on, one arena cycles through the shard's homes;
	// runHome hands it back (or a replacement) after each home. Amortised
	// over ShardSize homes, steady-state testbed construction allocates
	// almost nothing.
	var arena *experiment.Testbed
	for i := 0; i < n; i++ {
		hr, tb := runHome(c.Spec, GenerateHome(pc, first+i), arena)
		if c.ReuseTestbeds {
			arena = tb
		}
		if hr.err != nil {
			sr.HomesFailed++
			if len(sr.Errors) < maxShardErrors {
				sr.Errors = append(sr.Errors, hr.err.Error())
			}
		}
		if hr.noTarget {
			sr.HomesNoTarget++
		}
		for model, t := range hr.tallies {
			agg, ok := tallies[model]
			if !ok {
				agg = &ModelTally{Model: model}
				tallies[model] = agg
			}
			agg.add(*t)
		}
		sr.Alarms += hr.alarms
		snaps.Add(hr.snapshot)
	}
	sr.Tallies = sortTallies(tallies)
	sr.Metrics = snaps.State()
	return sr
}

func sortTallies(m map[string]*ModelTally) []ModelTally {
	out := make([]ModelTally, 0, len(m))
	for _, t := range m {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

func sortedShards(m map[int]ShardResult) []ShardResult {
	out := make([]ShardResult, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
