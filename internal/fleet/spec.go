// Package fleet is the attack-campaign engine: it scales the paper's
// one-testbed-at-a-time evaluation to synthetic populations of smart homes.
// A population is generated deterministically from a seed (each home's
// device mix, timing jitter, link latencies and automation rules are a pure
// function of (seed, home index)), a campaign spec describes one attack
// procedure, and a sharded worker pool executes it across every home with
// bounded memory, checkpointed progress and worker-count-independent
// aggregated results.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Attack families a campaign can run.
const (
	// AttackEDelay holds each target's next event until the margin before
	// the predicted session timeout (the paper's maximum stealthy e-Delay);
	// unbounded targets are held for HoldSecs instead.
	AttackEDelay = "edelay"
	// AttackCDelay is the command-direction counterpart; targets without a
	// commandable attribute are skipped.
	AttackCDelay = "cdelay"
	// AttackOffline blackholes the target session's keep-alives for
	// HoldSecs while keeping the server-side connection open — the
	// Finding 2/3 offline-masking attack. Success means the servers raised
	// no offline alarm during the hold.
	AttackOffline = "offline"
	// AttackReplay captures one genuine event from each target and
	// re-injects it — verbatim on the hijacked session and/or re-issued
	// from a fresh attacker connection, per Spec.Replay. Success means the
	// duplicate event was accepted by the automation backend.
	AttackReplay = "replay"
)

// Replay injection modes for ReplaySpec.Mode.
const (
	// ReplayModeAuto tries raw injection first and falls back to the
	// application layer when raw is rejected and the capture is readable.
	ReplayModeAuto = "auto"
	// ReplayModeRaw only re-injects captured wire bytes on the live session.
	ReplayModeRaw = "raw"
	// ReplayModeApp only replays readable plaintexts from a fresh session.
	ReplayModeApp = "app"
)

// ReplaySpec tunes the replay attack family.
type ReplaySpec struct {
	// Mode selects the injection path: auto (default), raw or app.
	Mode string `json:"mode,omitempty"`
	// RetainBytes is the attacker capture's per-flow payload retention
	// budget. Default 4096.
	RetainBytes int `json:"retainBytes,omitempty"`
}

// TargetSpec selects which devices in each home the campaign attacks.
// An empty spec matches the default sensor classes (contact and motion).
type TargetSpec struct {
	// Classes matches device catalog classes ("contact sensor", ...).
	Classes []string `json:"classes,omitempty"`
	// Labels matches explicit catalog labels; unioned with Classes.
	Labels []string `json:"labels,omitempty"`
	// PerHome bounds how many matching devices are attacked per home
	// (first matches in deployment order). Default 1.
	PerHome int `json:"perHome,omitempty"`
}

// Spec is a campaign: one attack procedure applied to every home of the
// population. The zero value is not runnable; use DefaultSpec or ParseSpec
// and Validate.
type Spec struct {
	// Name labels the campaign in results and checkpoints.
	Name string `json:"name,omitempty"`
	// Attack selects the family: edelay, cdelay or offline.
	Attack string `json:"attack"`
	// Targets selects the attacked devices per home.
	Targets TargetSpec `json:"targets,omitempty"`
	// MarginSecs is the release margin before the predicted timeout for
	// the delay families. Default 2.
	MarginSecs float64 `json:"marginSecs,omitempty"`
	// Trials is the number of attack trials per target. Default 1.
	Trials int `json:"trials,omitempty"`
	// HoldSecs is the fixed hold for AttackOffline and for delay targets
	// with no bounding timeout (the HomeKit "∞" rows). Default 60.
	HoldSecs float64 `json:"holdSecs,omitempty"`
	// TimingJitter is the per-home perturbation factor applied to every
	// profile's timing parameters (clamped to [0, 0.5]). Default 0.1.
	TimingJitter float64 `json:"timingJitter,omitempty"`
	// RulesPerHome is the maximum number of synthetic TCA rules installed
	// per home. Default 2.
	RulesPerHome int `json:"rulesPerHome,omitempty"`
	// Replay configures the replay attack family. A pointer so that specs
	// of the other families marshal exactly as they did before the field
	// existed, keeping historical checkpoint fingerprints valid.
	Replay *ReplaySpec `json:"replay,omitempty"`
}

// DefaultSpec is the built-in campaign: one maximum-stealthy event delay
// against the first contact or motion sensor of every home.
func DefaultSpec() Spec {
	return Spec{
		Name:   "edelay-sensors",
		Attack: AttackEDelay,
		Targets: TargetSpec{
			Classes: []string{"contact sensor", "motion sensor"},
			PerHome: 1,
		},
		MarginSecs:   2,
		Trials:       1,
		HoldSecs:     60,
		TimingJitter: 0.1,
		RulesPerHome: 2,
	}
}

// fill applies defaults to optional fields.
func (s *Spec) fill() {
	if s.Name == "" {
		s.Name = s.Attack
	}
	if len(s.Targets.Classes) == 0 && len(s.Targets.Labels) == 0 {
		s.Targets.Classes = []string{"contact sensor", "motion sensor"}
	}
	if s.Targets.PerHome == 0 {
		s.Targets.PerHome = 1
	}
	if s.MarginSecs == 0 {
		s.MarginSecs = 2
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.HoldSecs == 0 {
		s.HoldSecs = 60
	}
	if s.TimingJitter == 0 {
		s.TimingJitter = 0.1
	}
	if s.RulesPerHome == 0 {
		s.RulesPerHome = 2
	}
	if s.Attack == AttackReplay {
		if s.Replay == nil {
			s.Replay = &ReplaySpec{}
		}
		if s.Replay.Mode == "" {
			s.Replay.Mode = ReplayModeAuto
		}
		if s.Replay.RetainBytes == 0 {
			s.Replay.RetainBytes = 4096
		}
	}
}

// Validate checks a (filled or raw) spec for semantic errors.
func (s Spec) Validate() error {
	switch s.Attack {
	case AttackEDelay, AttackCDelay, AttackOffline, AttackReplay:
	case "":
		return fmt.Errorf("fleet: spec has no attack family")
	default:
		return fmt.Errorf("fleet: unknown attack family %q", s.Attack)
	}
	if s.Replay != nil {
		if s.Attack != AttackReplay {
			return fmt.Errorf("fleet: replay settings given for attack family %q", s.Attack)
		}
		switch s.Replay.Mode {
		case "", ReplayModeAuto, ReplayModeRaw, ReplayModeApp:
		default:
			return fmt.Errorf("fleet: unknown replay mode %q", s.Replay.Mode)
		}
		if s.Replay.RetainBytes < 0 {
			return fmt.Errorf("fleet: negative replay.retainBytes %d", s.Replay.RetainBytes)
		}
		if s.Replay.RetainBytes > 1<<20 {
			return fmt.Errorf("fleet: replay.retainBytes %d beyond sanity bound %d", s.Replay.RetainBytes, 1<<20)
		}
	}
	if s.MarginSecs < 0 {
		return fmt.Errorf("fleet: negative marginSecs %v", s.MarginSecs)
	}
	if s.HoldSecs < 0 {
		return fmt.Errorf("fleet: negative holdSecs %v", s.HoldSecs)
	}
	if s.Trials < 0 {
		return fmt.Errorf("fleet: negative trials %d", s.Trials)
	}
	if s.Targets.PerHome < 0 {
		return fmt.Errorf("fleet: negative targets.perHome %d", s.Targets.PerHome)
	}
	if s.TimingJitter < 0 || s.TimingJitter > 0.5 {
		return fmt.Errorf("fleet: timingJitter %v outside [0, 0.5]", s.TimingJitter)
	}
	if s.RulesPerHome < 0 {
		return fmt.Errorf("fleet: negative rulesPerHome %d", s.RulesPerHome)
	}
	const maxSecs = 7 * 24 * 3600
	if s.MarginSecs > maxSecs || s.HoldSecs > maxSecs {
		return fmt.Errorf("fleet: margin/hold beyond one week of simulated time")
	}
	if s.Trials > 1000 {
		return fmt.Errorf("fleet: trials %d beyond sanity bound 1000", s.Trials)
	}
	return nil
}

// Margin returns the release margin as a duration.
func (s Spec) Margin() time.Duration { return time.Duration(s.MarginSecs * float64(time.Second)) }

// Hold returns the fixed hold as a duration.
func (s Spec) Hold() time.Duration { return time.Duration(s.HoldSecs * float64(time.Second)) }

// ParseSpec decodes and validates a campaign spec. Unknown fields are
// rejected so a typo'd knob fails loudly instead of silently running the
// default. Defaults are applied to omitted optional fields; malformed
// specs return an error, never a panic.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fleet: parse campaign spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file.
	if dec.More() {
		return Spec{}, fmt.Errorf("fleet: campaign spec has trailing data")
	}
	s.fill()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// matchesTarget reports whether a device with the given label and class is
// in the campaign's target set.
func (t TargetSpec) matches(label, class string) bool {
	for _, l := range t.Labels {
		if l == label {
			return true
		}
	}
	for _, c := range t.Classes {
		if c == class {
			return true
		}
	}
	return false
}
