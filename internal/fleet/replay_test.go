package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// replayCampaign targets the catalog classes whose direct-WiFi members
// carry the replay-relevant protection mix (legacy plugs, null-cipher
// thermostats and water sensors); enough homes that the sampler deals a
// vulnerable device into several of them.
func replayCampaign() Campaign {
	return Campaign{
		Spec: Spec{
			Name:   "replay-mix",
			Attack: AttackReplay,
			Targets: TargetSpec{
				Classes: []string{"plug", "thermostat", "water sensor"},
				PerHome: 2,
			},
			Trials: 1,
		},
		Homes:     24,
		ShardSize: 4,
		Seed:      11,
	}
}

// TestReplayCampaignWorkerAndReuseInvariance extends the engine's core
// guarantee to the replay family: aggregated results are byte-identical
// for any worker count and with or without arena recycling.
func TestReplayCampaignWorkerAndReuseInvariance(t *testing.T) {
	var want []byte
	run := func(workers int, reuse bool) {
		t.Helper()
		c := replayCampaign()
		c.Workers = workers
		c.ReuseTestbeds = reuse
		res, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d reuse=%v: %v", workers, reuse, err)
		}
		if res.TotalTrials == 0 {
			t.Fatalf("workers=%d reuse=%v: campaign ran no trials", workers, reuse)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			return
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d reuse=%v: result differs from baseline", workers, reuse)
		}
	}
	run(1, false)
	run(4, false)
	run(1, true)
	run(4, true)
}

// TestReplayCampaignOutcomes checks the family against ground truth: the
// legacy plugs (P3, P4) must replay successfully wherever they appear,
// the null-cipher thermostat (T1) and water sensor (W1) must land via the
// app path, and the protected models (P1/P2 seq-bound, K2-class defenses)
// must never produce a successful replay.
func TestReplayCampaignOutcomes(t *testing.T) {
	c := replayCampaign()
	c.Homes = 48
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	vulnerable := map[string]bool{"P3": true, "P4": true, "T1": true, "W1": true}
	seenVuln, seenProtected := false, false
	for _, tally := range res.PerModel {
		if vulnerable[tally.Model] {
			seenVuln = true
			if tally.Successes != tally.Trials {
				t.Errorf("%s: %d/%d replays landed, want all", tally.Model, tally.Successes, tally.Trials)
			}
			continue
		}
		seenProtected = true
		if tally.Successes != 0 {
			t.Errorf("%s: %d replays landed on a protected model", tally.Model, tally.Successes)
		}
		if tally.Trials == 0 {
			t.Errorf("%s: no trials recorded", tally.Model)
		}
	}
	if !seenVuln || !seenProtected {
		t.Fatalf("population missed a class: vulnerable=%v protected=%v (perModel %v)", seenVuln, seenProtected, res.PerModel)
	}
}

// TestReplaySpecRoundTrip pins the spec surface: defaults fill, bad modes
// and misplaced replay blocks are rejected, and non-replay specs marshal
// without any replay field (checkpoint fingerprint compatibility).
func TestReplaySpecRoundTrip(t *testing.T) {
	s, err := ParseSpec([]byte(`{"attack":"replay"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Replay == nil || s.Replay.Mode != ReplayModeAuto || s.Replay.RetainBytes != 4096 {
		t.Fatalf("replay defaults not filled: %+v", s.Replay)
	}

	for _, bad := range []string{
		`{"attack":"replay","replay":{"mode":"verbatim"}}`,
		`{"attack":"replay","replay":{"retainBytes":-1}}`,
		`{"attack":"replay","replay":{"retainBytes":2097152}}`,
		`{"attack":"edelay","replay":{"mode":"raw"}}`,
	} {
		if _, err := ParseSpec([]byte(bad)); err == nil {
			t.Errorf("spec %s accepted, want error", bad)
		}
	}

	// A non-replay spec must not grow a replay field when re-marshalled.
	plain := DefaultSpec()
	plain.fill()
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("replay")) {
		t.Fatalf("non-replay spec marshals a replay field: %s", data)
	}
}
