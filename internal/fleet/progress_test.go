package fleet

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func progressShard(model string, homes, trials, successes int) ShardResult {
	return ShardResult{
		Homes:   homes,
		Tallies: []ModelTally{{Model: model, Trials: trials, Successes: successes}},
	}
}

func TestProgressTrackerReport(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewProgressTracker(start, 100)
	p.OnShard(progressShard("C1", 10, 20, 18), 1, 5)
	p.OnShard(progressShard("P4", 10, 8, 4), 2, 5)

	r := p.ReportAt(start.Add(4 * time.Second))
	if r.ShardsDone != 2 || r.ShardsTotal != 5 || r.HomesDone != 20 || r.HomesTotal != 100 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.HomesPerSec != 5 {
		t.Fatalf("rate = %v, want 5", r.HomesPerSec)
	}
	if r.ETASecs != 16 {
		t.Fatalf("eta = %v, want 16 (80 homes at 5/s)", r.ETASecs)
	}
	if len(r.PerModel) != 2 || r.PerModel[0].Model != "C1" || r.PerModel[1].Model != "P4" {
		t.Fatalf("per-model not sorted: %+v", r.PerModel)
	}
	if r.PerModel[0].SuccessRate != 0.9 || r.PerModel[1].SuccessRate != 0.5 {
		t.Fatalf("success rates wrong: %+v", r.PerModel)
	}
}

// TestProgressLineFormat pins the stderr rendering — the same line format
// the CLI printed before the formatter was shared with /progress.
func TestProgressLineFormat(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewProgressTracker(start, 100)
	p.OnShard(progressShard("P4", 10, 8, 4), 1, 5)
	p.OnShard(progressShard("C1", 10, 20, 18), 2, 5)

	got := p.LineAt(start.Add(4 * time.Second))
	want := "fleet: shard 2/5  homes 20/100  5.0 homes/s  ETA 16s  C1 90%  P4 50%"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}

	// Campaign complete: no ETA segment.
	done := NewProgressTracker(start, 10)
	done.OnShard(progressShard("C1", 10, 20, 20), 1, 1)
	line := done.LineAt(start.Add(time.Second))
	if strings.Contains(line, "ETA") {
		t.Fatalf("completed campaign still shows ETA: %q", line)
	}
	if !strings.Contains(line, "C1 100%") {
		t.Fatalf("missing model segment: %q", line)
	}
}

// TestProgressTrackerResumedRate: homes restored from a checkpoint count
// toward completion but not toward the rate, so the ETA reflects the
// speed of this process rather than a fantasy extrapolated from free
// work. The tallies inside the resumed partial (folded prefix and parked
// window shards alike) still feed the per-model breakdown.
func TestProgressTrackerResumedRate(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewProgressTracker(start, 100)
	resumed := Partial{
		Start:         0,
		Watermark:     2,
		HomesAttacked: 18,
		Tallies: []PartialTally{
			{ModelTally: ModelTally{Model: "C1", Trials: 20, Successes: 18}},
		},
		Window: []ShardResult{progressShard("P4", 10, 8, 4)},
	}
	resumed.Window[0].Index = 3
	p.OnResume(resumed, 3, 10)
	p.OnShard(progressShard("C1", 10, 10, 9), 4, 10)
	p.OnShard(progressShard("C1", 10, 10, 9), 5, 10)

	r := p.ReportAt(start.Add(4 * time.Second))
	if r.HomesDone != 48 || r.HomesResumed != 28 {
		t.Fatalf("homes done/resumed = %d/%d, want 48/28", r.HomesDone, r.HomesResumed)
	}
	if r.ShardsDone != 5 || r.ShardsTotal != 10 {
		t.Fatalf("shards = %d/%d, want 5/10", r.ShardsDone, r.ShardsTotal)
	}
	// 20 live homes over 4s, not 48/4: resumed homes cost nothing here.
	if r.HomesPerSec != 5 {
		t.Fatalf("rate = %v, want 5 (live homes only)", r.HomesPerSec)
	}
	if want := float64(100-48) / 5; r.ETASecs != want {
		t.Fatalf("eta = %v, want %v", r.ETASecs, want)
	}
	if len(r.PerModel) != 2 || r.PerModel[0].Model != "C1" || r.PerModel[1].Model != "P4" {
		t.Fatalf("per-model missing resumed tallies: %+v", r.PerModel)
	}
	if r.PerModel[0].Trials != 40 || r.PerModel[1].Trials != 8 {
		t.Fatalf("resumed tallies not folded: %+v", r.PerModel)
	}

	line := r.Line()
	if !strings.Contains(line, "homes 48/100 (28 resumed)") {
		t.Fatalf("line missing resumed segment: %q", line)
	}
	if !strings.Contains(line, "5.0 homes/s") {
		t.Fatalf("line rate not live-only: %q", line)
	}
}

func TestProgressTrackerZeroElapsed(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewProgressTracker(start, 100)
	p.OnShard(progressShard("C1", 10, 1, 1), 1, 5)
	r := p.ReportAt(start)
	if r.HomesPerSec != 0 || r.ETASecs != 0 {
		t.Fatalf("zero-elapsed report invented a rate: %+v", r)
	}
	if got := r.Line(); strings.Contains(got, "homes/s") {
		t.Fatalf("zero-elapsed line shows a rate: %q", got)
	}
}

// TestProgressTrackerConcurrent drives the wall-clock-plane shape under
// -race: the collector folds while /progress readers report.
func TestProgressTrackerConcurrent(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewProgressTracker(start, 1000)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rep := p.ReportAt(start.Add(time.Second))
				if rep.HomesDone%10 != 0 {
					t.Errorf("torn read: homesDone = %d", rep.HomesDone)
					return
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		p.OnShard(progressShard("C1", 10, 5, 3), i+1, 100)
	}
	close(done)
	wg.Wait()
	if got := p.ReportAt(start.Add(time.Second)).HomesDone; got != 1000 {
		t.Fatalf("homesDone = %d", got)
	}
}
