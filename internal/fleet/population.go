package fleet

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/rules"
	"repro/internal/simtime"
)

// PopulationConfig parameterises synthetic home generation. A (config,
// home index) pair fully determines a home: its device mix, its jittered
// timing parameters, its link latencies and its automation rules.
type PopulationConfig struct {
	// Seed is the population master seed.
	Seed int64
	// Template drives device-mix sampling. Zero value selects the default
	// template.
	Template device.PopulationTemplate
	// TimingJitter perturbs each home's profile timing parameters.
	TimingJitter float64
	// RulesPerHome bounds the synthetic TCA rules installed per home.
	RulesPerHome int
}

// HomeSpec is one generated home, ready to build as a testbed.
type HomeSpec struct {
	// Index is the home's position in the population.
	Index int
	// Seed drives the home's testbed (network, TCP ISNs, device phases).
	Seed int64
	// Devices lists the home's catalog labels in deployment order.
	Devices []string
	// Overrides carries the jittered profiles deployed instead of the
	// stock catalog entries.
	Overrides []device.Profile
	// LANLatency and WANLatency are the home's link latencies.
	LANLatency time.Duration
	WANLatency time.Duration
	// LinkJitter perturbs per-frame latencies inside the simulation.
	LinkJitter float64
	// Rules are the home's automation rules.
	Rules []rules.Rule
}

// homeSeed mixes the population seed and a home index into an independent
// stream seed (splitmix64 finalizer), so neighbouring homes do not share
// correlated randomness.
func homeSeed(seed int64, index int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(index)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// GenerateHome derives home number index of the population — a pure
// function of (cfg, index).
func GenerateHome(cfg PopulationConfig, index int) HomeSpec {
	seed := homeSeed(cfg.Seed, index)
	rng := simtime.NewRand(seed)
	home := HomeSpec{
		Index:      index,
		Seed:       seed,
		Devices:    cfg.Template.SampleDevices(rng),
		LANLatency: rng.DurationRange(time.Millisecond, 5*time.Millisecond),
		WANLatency: rng.DurationRange(5*time.Millisecond, 30*time.Millisecond),
		LinkJitter: 0.05 + 0.1*rng.Float64(),
	}
	if cfg.TimingJitter > 0 {
		byLabel := device.Index()
		for _, l := range home.Devices {
			home.Overrides = append(home.Overrides, byLabel[l].WithTimingJitter(rng, cfg.TimingJitter))
		}
	}
	home.Rules = sampleRules(rng, home, cfg.RulesPerHome)
	return home
}

// sampleRules builds up to max notify rules over the home's reportable
// devices — every home runs its own slice of automation so campaigns
// exercise the rule engine at population scale.
func sampleRules(rng *simtime.Rand, home HomeSpec, max int) []rules.Rule {
	if max <= 0 {
		return nil
	}
	byLabel := device.Index()
	var out []rules.Rule
	n := rng.Intn(max + 1)
	for i := 0; i < n; i++ {
		l := home.Devices[rng.Intn(len(home.Devices))]
		p := byLabel[l]
		if p.EventAttr == "" || len(p.EventValues) == 0 {
			continue
		}
		v := p.EventValues[rng.Intn(len(p.EventValues))]
		out = append(out, rules.Rule{
			Name:    fmt.Sprintf("fleet-%d-%d", home.Index, i),
			Trigger: rules.Trigger{Device: l, Attribute: p.EventAttr, Value: v},
			Actions: []rules.Action{{Kind: rules.ActionNotify,
				Message: fmt.Sprintf("%s %s=%s", l, p.EventAttr, v)}},
		})
	}
	return out
}
