package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ModelProgress is one device model's running campaign outcome.
type ModelProgress struct {
	Model       string  `json:"model"`
	Trials      int     `json:"trials"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"successRate"`
}

// ProgressReport is a point-in-time view of a running campaign: shard and
// home completion, throughput, an ETA, and per-model running success. It
// is the JSON payload of the observability plane's /progress endpoint and
// the data behind phantomlab's stderr progress line — one computation, two
// renderings, so the two can never disagree.
type ProgressReport struct {
	ShardsDone  int     `json:"shardsDone"`
	ShardsTotal int     `json:"shardsTotal"`
	HomesDone   int     `json:"homesDone"`
	HomesTotal  int     `json:"homesTotal"`
	ElapsedSecs float64 `json:"elapsedSecs"`
	// HomesResumed counts homes restored from a checkpoint rather than run
	// in this process. They are part of HomesDone but excluded from the
	// rate: a 90%-resumed campaign reports the throughput of the homes it
	// is actually running, not a fantasy extrapolated from free work.
	HomesResumed int `json:"homesResumed,omitempty"`
	// HomesPerSec is the live-home rate — (HomesDone-HomesResumed) per
	// elapsed second — and 0 until any wall-clock time has elapsed.
	HomesPerSec float64 `json:"homesPerSec"`
	// ETASecs estimates remaining wall-clock seconds from the live rate;
	// 0 while the rate is unknown or once the campaign is done.
	ETASecs float64 `json:"etaSecs"`
	// PerModel is sorted by model label.
	PerModel []ModelProgress `json:"perModel"`
}

// ProgressTracker folds shard results into running campaign progress.
//
// It sits on the wall-clock side of the sim/wall seam: the fleet package
// never reads a clock (simdeterminism fences that), so the tracker is
// handed its start instant at construction and the current instant on
// every read. Writes arrive on the campaign's collector goroutine via
// OnShard; reads may come from any goroutine (the /progress HTTP handler),
// so the state is mutex-guarded. The tracker observes results only — it
// cannot perturb aggregation.
type ProgressTracker struct {
	mu           sync.Mutex
	start        time.Time
	homesTotal   int
	shardsDone   int
	shardsTotal  int
	homesDone    int
	homesResumed int
	models       []string // sorted model labels
	trials       map[string]int
	successes    map[string]int
}

// NewProgressTracker creates a tracker for a campaign over homesTotal
// homes, measuring elapsed time from start.
func NewProgressTracker(start time.Time, homesTotal int) *ProgressTracker {
	return &ProgressTracker{
		start:      start,
		homesTotal: homesTotal,
		trials:     make(map[string]int),
		successes:  make(map[string]int),
	}
}

// OnShard folds one live shard result. Its signature matches
// Campaign.OnShard, so it can be wired directly or wrapped.
func (p *ProgressTracker) OnShard(s ShardResult, done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shardsDone = done
	p.shardsTotal = total
	p.homesDone += s.Homes
	for _, t := range s.Tallies {
		p.noteTally(t)
	}
}

// OnResume folds a checkpoint's resumed partial aggregate. Its signature
// matches Campaign.OnResume. Resumed homes count toward completion but
// not toward the throughput rate — they cost this process nothing.
func (p *ProgressTracker) OnResume(pt Partial, done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shardsDone = done
	p.shardsTotal = total
	homes := pt.Homes()
	p.homesDone += homes
	p.homesResumed += homes
	for _, t := range pt.Tallies {
		p.noteTally(t.ModelTally)
	}
	for _, s := range pt.Window {
		for _, t := range s.Tallies {
			p.noteTally(t)
		}
	}
}

// noteTally folds one model tally; the caller holds the mutex.
func (p *ProgressTracker) noteTally(t ModelTally) {
	if _, ok := p.trials[t.Model]; !ok {
		i := sort.SearchStrings(p.models, t.Model)
		p.models = append(p.models, "")
		copy(p.models[i+1:], p.models[i:])
		p.models[i] = t.Model
	}
	p.trials[t.Model] += t.Trials
	p.successes[t.Model] += t.Successes
}

// ReportAt returns the progress as of now.
func (p *ProgressTracker) ReportAt(now time.Time) ProgressReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := ProgressReport{
		ShardsDone:   p.shardsDone,
		ShardsTotal:  p.shardsTotal,
		HomesDone:    p.homesDone,
		HomesTotal:   p.homesTotal,
		HomesResumed: p.homesResumed,
		ElapsedSecs:  now.Sub(p.start).Seconds(),
	}
	if r.ElapsedSecs > 0 {
		r.HomesPerSec = float64(p.homesDone-p.homesResumed) / r.ElapsedSecs
		if remaining := p.homesTotal - p.homesDone; remaining > 0 && r.HomesPerSec > 0 {
			r.ETASecs = float64(remaining) / r.HomesPerSec
		}
	}
	for _, m := range p.models {
		mp := ModelProgress{Model: m, Trials: p.trials[m], Successes: p.successes[m]}
		if mp.Trials > 0 {
			mp.SuccessRate = float64(mp.Successes) / float64(mp.Trials)
		}
		r.PerModel = append(r.PerModel, mp)
	}
	return r
}

// LineAt renders the report as the one-line stderr progress format:
//
//	fleet: shard 3/7  homes 192/400  412.3 homes/s  ETA 1s  C1 93%  P4 88%
func (p *ProgressTracker) LineAt(now time.Time) string {
	return p.ReportAt(now).Line()
}

// Line renders the report in the stderr progress-line format.
func (r ProgressReport) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: shard %d/%d  homes %d/%d", r.ShardsDone, r.ShardsTotal, r.HomesDone, r.HomesTotal)
	if r.HomesResumed > 0 {
		fmt.Fprintf(&b, " (%d resumed)", r.HomesResumed)
	}
	if r.ElapsedSecs > 0 {
		fmt.Fprintf(&b, "  %.1f homes/s", r.HomesPerSec)
		if r.ETASecs > 0 {
			eta := time.Duration(r.ETASecs * float64(time.Second)).Round(time.Second)
			fmt.Fprintf(&b, "  ETA %v", eta)
		}
	}
	for _, m := range r.PerModel {
		if m.Trials > 0 {
			fmt.Fprintf(&b, "  %s %.0f%%", m.Model, 100*m.SuccessRate)
		}
	}
	return b.String()
}
