package fleet

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestOnShardObservesEveryShard: the callback sees each shard exactly once
// with monotonically increasing done counts, and attaching it does not
// change the aggregated result.
func TestOnShardObservesEveryShard(t *testing.T) {
	plain := testCampaign(t)
	plainRes, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	c := testCampaign(t)
	c.Workers = 4
	seen := make(map[int]int)
	lastDone := 0
	homes := 0
	c.OnShard = func(s ShardResult, done, total int) {
		seen[s.Index]++
		homes += s.Homes
		if done != lastDone+1 || total != c.shardCount() {
			t.Errorf("done/total = %d/%d after %d calls", done, total, lastDone)
		}
		lastDone = done
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != c.shardCount() {
		t.Fatalf("callback saw %d shards, want %d", len(seen), c.shardCount())
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d observed %d times", idx, n)
		}
	}
	if homes != c.Homes {
		t.Fatalf("callback saw %d homes, want %d", homes, c.Homes)
	}
	if !bytes.Equal(resultJSON(t, res), resultJSON(t, plainRes)) {
		t.Error("OnShard changed the aggregated result")
	}
}

// TestOnResumeDeliversCheckpointedState: on resume, the checkpoint's
// partial aggregate arrives once through OnResume before any live work,
// OnShard then fires only for live shards with done counts continuing
// from the resumed total, and the final result matches an uninterrupted
// run. The checkpoint covers the BACK half of the shards (all parked in
// the reorder window, watermark still zero) so the live/resumed
// accounting below cannot pass by accident.
func TestOnResumeDeliversCheckpointedState(t *testing.T) {
	plain := testCampaign(t)
	plainRes, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	c := testCampaign(t)
	c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	c = c.withDefaults()
	c.Spec.fill()
	total := c.shardCount()
	resumedCount := total / 2
	g := c.newAggregator(nil, 0)
	for idx := total - resumedCount; idx < total; idx++ {
		g.add(c.runShard(idx))
	}
	ck := newCheckpointer(c.CheckpointPath, c.identity())
	if err := ck.save(g.partial()); err != nil {
		t.Fatal(err)
	}

	resumes := 0
	var order []int
	lastDone := 0
	c.OnResume = func(p Partial, done, total int) {
		resumes++
		if len(order) != 0 {
			t.Error("OnResume fired after live OnShard deliveries")
		}
		if p.Watermark != 0 || len(p.Window) != resumedCount {
			t.Errorf("resumed partial watermark/window = %d/%d, want 0/%d", p.Watermark, len(p.Window), resumedCount)
		}
		if done != resumedCount || total != c.shardCount() {
			t.Errorf("OnResume done/total = %d/%d, want %d/%d", done, total, resumedCount, c.shardCount())
		}
		if p.Shards() != done {
			t.Errorf("partial accounts for %d shards, done says %d", p.Shards(), done)
		}
		lastDone = done
	}
	c.OnShard = func(s ShardResult, done, total int) {
		order = append(order, s.Index)
		if done != lastDone+1 {
			t.Errorf("live done count %d after %d", done, lastDone)
		}
		lastDone = done
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumes != 1 {
		t.Fatalf("OnResume fired %d times, want 1", resumes)
	}
	if len(order) != total-resumedCount {
		t.Fatalf("OnShard saw %d live shards, want %d", len(order), total-resumedCount)
	}
	for _, idx := range order {
		if idx >= total-resumedCount {
			t.Fatalf("OnShard delivered checkpointed shard %d as live work: %v", idx, order)
		}
	}
	if !bytes.Equal(resultJSON(t, res), resultJSON(t, plainRes)) {
		t.Error("window-resumed result differs from uninterrupted run")
	}
}

// TestOnResumeNotCalledFresh: without a checkpoint (or with an empty
// file-less path) OnResume stays silent.
func TestOnResumeNotCalledFresh(t *testing.T) {
	c := testCampaign(t)
	c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	c.OnResume = func(Partial, int, int) { t.Error("OnResume fired on a fresh start") }
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
