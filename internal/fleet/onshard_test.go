package fleet

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestOnShardObservesEveryShard: the callback sees each shard exactly once
// with monotonically increasing done counts, and attaching it does not
// change the aggregated result.
func TestOnShardObservesEveryShard(t *testing.T) {
	plain := testCampaign(t)
	plainRes, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	c := testCampaign(t)
	c.Workers = 4
	seen := make(map[int]int)
	lastDone := 0
	homes := 0
	c.OnShard = func(s ShardResult, done, total int) {
		seen[s.Index]++
		homes += s.Homes
		if done != lastDone+1 || total != c.shardCount() {
			t.Errorf("done/total = %d/%d after %d calls", done, total, lastDone)
		}
		lastDone = done
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != c.shardCount() {
		t.Fatalf("callback saw %d shards, want %d", len(seen), c.shardCount())
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d observed %d times", idx, n)
		}
	}
	if homes != c.Homes {
		t.Fatalf("callback saw %d homes, want %d", homes, c.Homes)
	}
	if !bytes.Equal(resultJSON(t, res), resultJSON(t, plainRes)) {
		t.Error("OnShard changed the aggregated result")
	}
}

// TestOnShardReplaysResumedShards: on resume, previously checkpointed
// shards are delivered in index order before live work, so a progress
// consumer's running totals start from the resumed state.
func TestOnShardReplaysResumedShards(t *testing.T) {
	c := testCampaign(t)
	c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	c = c.withDefaults()
	c.Spec.fill()
	resumedCount := c.shardCount() / 2
	partial := make(map[int]ShardResult)
	// Checkpoint the back half so the replay-order assertion below cannot
	// pass by accident.
	for idx := c.shardCount() - resumedCount; idx < c.shardCount(); idx++ {
		partial[idx] = c.runShard(idx)
	}
	ck := newCheckpointer(c.CheckpointPath, c.identity())
	if err := ck.save(sortedShards(partial)); err != nil {
		t.Fatal(err)
	}

	var order []int
	c.OnShard = func(s ShardResult, done, total int) {
		order = append(order, s.Index)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != c.shardCount() {
		t.Fatalf("callback saw %d shards, want %d", len(order), c.shardCount())
	}
	for i := 1; i < resumedCount; i++ {
		if order[i] < order[i-1] {
			t.Fatalf("resumed shards not replayed in index order: %v", order[:resumedCount])
		}
	}
	replayed := make(map[int]bool)
	for _, idx := range order[:resumedCount] {
		replayed[idx] = true
	}
	for idx := range partial {
		if !replayed[idx] {
			t.Fatalf("checkpointed shard %d not replayed first: %v", idx, order)
		}
	}
}
