package fleet

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
)

// ModelTally accumulates campaign outcomes for one device model.
type ModelTally struct {
	Model        string  `json:"model"`
	Trials       int     `json:"trials"`
	Successes    int     `json:"successes"`
	DelaySumSecs float64 `json:"delaySumSecs"`
	MaxDelaySecs float64 `json:"maxDelaySecs"`
}

func (t *ModelTally) add(o ModelTally) {
	t.Trials += o.Trials
	t.Successes += o.Successes
	t.DelaySumSecs += o.DelaySumSecs
	if o.MaxDelaySecs > t.MaxDelaySecs {
		t.MaxDelaySecs = o.MaxDelaySecs
	}
}

// homeResult is the compact outcome of one home: per-model tallies plus
// the testbed's metrics snapshot. The testbed itself is discarded — this
// is what keeps a million-home campaign within bounded memory.
type homeResult struct {
	index    int
	err      error
	noTarget bool
	alarms   int
	tallies  map[string]*ModelTally
	snapshot obs.Snapshot
}

// runHome builds the home's testbed on demand, runs the campaign's attack
// against its targets and returns the compact result. The home simulation
// is single-threaded and owns all its state, so many runHome calls can
// proceed concurrently on independent homes.
//
// reuse, when non-nil, is a testbed arena from a previous home: it is
// recycled through Testbed.Reset instead of building from scratch, which is
// byte-identical to a fresh build. The second return value is the arena to
// pass to the next home — the same one, a newly built one, or nil if this
// home produced no usable testbed (a failed Reset falls back to a fresh
// build for this home rather than failing it).
func runHome(spec Spec, home HomeSpec, reuse *experiment.Testbed) (res homeResult, arena *experiment.Testbed) {
	res = homeResult{index: home.Index, tallies: make(map[string]*ModelTally)}

	targets := selectTargets(spec, home)
	if len(targets) == 0 {
		res.noTarget = true
		return res, reuse
	}

	// Per-home traces would dominate the merged snapshot and their
	// concatenation order is not worker-count independent; campaigns run
	// traceless (TraceCap < 0 disables the ring before any component is
	// instrumented, so nothing ever writes an event).
	cfg := experiment.TestbedConfig{
		Seed:       home.Seed,
		Devices:    home.Devices,
		LANLatency: home.LANLatency,
		WANLatency: home.WANLatency,
		Jitter:     home.LinkJitter,
		Overrides:  home.Overrides,
		TraceCap:   -1,
	}
	tb := reuse
	if tb != nil {
		if err := tb.Reset(cfg); err != nil {
			tb = nil
		}
	}
	if tb == nil {
		var err error
		if tb, err = experiment.NewTestbed(cfg); err != nil {
			res.err = err
			return res, nil
		}
	}
	defer func() {
		res.alarms = tb.TotalAlarmCount()
		tb.Metrics.Counter("fleet_alarms_total").Add(uint64(res.alarms))
		res.snapshot = tb.Metrics.Snapshot()
	}()

	for _, r := range home.Rules {
		if err := tb.InstallRule(r); err != nil {
			res.err = err
			return res, tb
		}
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		res.err = err
		return res, tb
	}
	if spec.Attack == AttackReplay && spec.Replay != nil {
		atk.Capture.RetainPayloads(spec.Replay.RetainBytes)
	}
	// One hijack per session owner, shared by targets riding the same hub.
	hijackers := make(map[string]*core.Hijacker)
	for _, label := range targets {
		owner := tb.SessionOwnerProfile(label).Label
		if _, ok := hijackers[owner]; ok {
			continue
		}
		h, err := tb.Hijack(atk, label)
		if err != nil {
			res.err = err
			return res, tb
		}
		hijackers[owner] = h
	}
	tb.Start()

	for _, label := range targets {
		h := hijackers[tb.SessionOwnerProfile(label).Label]
		if err := attackTarget(tb, h, spec, label, res.tallies); err != nil {
			res.err = fmt.Errorf("home %d target %s: %w", home.Index, label, err)
			return res, tb
		}
	}
	return res, tb
}

// selectTargets picks the campaign's targets in deployment order.
func selectTargets(spec Spec, home HomeSpec) []string {
	byLabel := device.Index()
	var out []string
	for _, l := range home.Devices {
		p := byLabel[l]
		if !spec.Targets.matches(p.Label, p.Class) {
			continue
		}
		if spec.Attack == AttackCDelay && p.CommandAttr == "" {
			continue
		}
		if p.EventAttr == "" || len(p.EventValues) == 0 {
			continue
		}
		out = append(out, l)
		if len(out) >= spec.Targets.PerHome {
			break
		}
	}
	return out
}

// attackTarget runs the spec's trials against one device, recording
// outcomes into tallies and the testbed's metrics registry.
func attackTarget(tb *experiment.Testbed, h *core.Hijacker, spec Spec, label string, tallies map[string]*ModelTally) error {
	owner := tb.SessionOwnerProfile(label)
	m := experiment.MeasuredFromProfile(owner)
	h.ArmPredictor(m)
	lab, err := tb.NewLab(h, label)
	if err != nil {
		return err
	}
	tally, ok := tallies[label]
	if !ok {
		tally = &ModelTally{Model: label}
		tallies[label] = tally
	}
	reg := tb.Metrics
	delayHist := reg.Histogram("fleet_delay_seconds", obs.DurationBuckets, obs.L("model", label))
	trialCtr := reg.Counter("fleet_trials_total", obs.L("model", label))
	successCtr := reg.Counter("fleet_trials_success", obs.L("model", label))

	for trial := 0; trial < spec.Trials; trial++ {
		var achieved time.Duration
		var success bool
		var err error
		switch spec.Attack {
		case AttackOffline:
			achieved, success, err = offlineTrial(tb, h, spec)
		case AttackReplay:
			achieved, success, err = replayTrial(tb, h, lab, spec, label)
		default:
			achieved, success, err = delayTrial(tb, h, lab, spec, m, label)
		}
		if err != nil {
			return err
		}
		tally.Trials++
		trialCtr.Inc()
		if success {
			tally.Successes++
			successCtr.Inc()
		}
		secs := achieved.Seconds()
		tally.DelaySumSecs += secs
		if secs > tally.MaxDelaySecs {
			tally.MaxDelaySecs = secs
		}
		delayHist.Observe(secs)
		// Inter-trial recovery lets sessions and keep-alive schedules
		// settle before the next hold.
		tb.Clock.RunFor(10 * time.Second)
	}
	return nil
}

// delayTrial runs one maximum-stealthy delay: hold the target's next
// event (or command) to the margin before the predicted timeout, release,
// and check delivery plus stealth.
func delayTrial(tb *experiment.Testbed, h *core.Hijacker, lab *core.Lab, spec Spec, m core.Measured, label string) (time.Duration, bool, error) {
	var bounded bool
	var op *core.DelayOp
	var trigger func() error
	origin := lab.EventOrigin
	if spec.Attack == AttackCDelay {
		if lab.TriggerCommand == nil {
			return 0, false, fmt.Errorf("fleet: %s takes no commands", label)
		}
		origin = lab.CommandOrigin
		trigger = lab.TriggerCommand
		_, _, bounded = m.CommandWindow()
		if bounded {
			op = h.MaxCDelay(origin, spec.Margin())
		} else {
			op = h.CDelay(origin, spec.Hold())
		}
	} else {
		trigger = lab.TriggerEvent
		_, _, bounded = m.EventWindow()
		if bounded {
			op = h.MaxEDelay(origin, spec.Margin())
		} else {
			op = h.EDelay(origin, spec.Hold())
		}
	}

	var achieved time.Duration
	released := false
	op.OnReleased = func(d time.Duration) { achieved, released = d, true }

	alarmsBefore := tb.TotalAlarmCount()
	acceptedBefore := tb.AcceptedEventCount(origin)
	if err := trigger(); err != nil {
		return 0, false, err
	}
	// Drive the simulation until the hold releases; the deadline guards
	// against an op that never matches (e.g. a lost trigger).
	deadline := tb.Clock.Now() + simTimeBound(spec, m)
	for !released && tb.Clock.Now() < deadline {
		if next, ok := tb.Clock.NextEventAt(); !ok || next > deadline {
			tb.Clock.RunUntil(deadline)
			break
		}
		tb.Clock.Step()
	}
	tb.Clock.RunFor(5 * time.Second)
	if !released {
		return 0, false, fmt.Errorf("fleet: delay never released")
	}
	success := tb.TotalAlarmCount() == alarmsBefore
	if spec.Attack == AttackEDelay && tb.AcceptedEventCount(origin) <= acceptedBefore {
		success = false
	}
	return achieved, success, nil
}

// replayTrial runs one record-and-replay attempt: trigger a genuine
// event, find its retained record in the attacker's capture, and
// re-inject it per the spec's mode. Success means the duplicate was
// accepted by the automation backend; the achieved delay is zero because
// a replay is not a hold. A trial whose event record was not retained
// (eviction, or an out-of-order capture) simply fails — replay coverage
// is itself a campaign observable, not an error.
func replayTrial(tb *experiment.Testbed, h *core.Hijacker, lab *core.Lab, spec Spec, label string) (time.Duration, bool, error) {
	atk := h.Attacker()
	eng := replay.NewEngine(atk)
	eng.Instrument(tb.Metrics)
	origin := lab.EventOrigin

	if err := lab.TriggerEvent(); err != nil {
		return 0, false, err
	}
	tb.Clock.RunFor(3 * time.Second)

	records := atk.Capture.Records()
	owner := tb.SessionOwnerProfile(label).Label
	idx, ok := replay.FindEventRecord(sniff.CatalogClassifier(), owner, origin, records)
	if !ok {
		return 0, false, nil
	}

	mode := ReplayModeAuto
	if spec.Replay != nil && spec.Replay.Mode != "" {
		mode = spec.Replay.Mode
	}
	success := false
	if mode == ReplayModeRaw || mode == ReplayModeAuto {
		before := tb.AcceptedEventCount(origin)
		if eng.RawReplay(h, records[idx]) == nil {
			tb.Clock.RunFor(5 * time.Second)
			success = tb.AcceptedEventCount(origin) > before
			eng.ReportOutcome(origin, success)
		}
	}
	if !success && (mode == ReplayModeApp || mode == ReplayModeAuto) {
		target := h.Target()
		server := tcpsim.Endpoint{Addr: target.ServerAddr, Port: target.ServerPort}
		before := tb.AcceptedEventCount(origin)
		if _, err := eng.AppReplay(server, replay.SessionPrefix(records, idx)); err == nil {
			tb.Clock.RunFor(5 * time.Second)
			success = tb.AcceptedEventCount(origin) > before
			eng.ReportOutcome(origin, success)
		}
	}
	return 0, success, nil
}

// simTimeBound bounds one trial's simulated time: the widest possible
// window plus slack.
func simTimeBound(spec Spec, m core.Measured) time.Duration {
	bound := spec.Hold()
	if _, max, ok := m.EventWindow(); ok && max > bound {
		bound = max
	}
	if _, max, ok := m.CommandWindow(); ok && max > bound {
		bound = max
	}
	return bound + 10*time.Minute
}

// offlineTrial blackholes the session's device-to-server direction for the
// spec's hold, keeping the server-side connection open (Finding 2), and
// reports whether the servers stayed silent.
func offlineTrial(tb *experiment.Testbed, h *core.Hijacker, spec Spec) (time.Duration, bool, error) {
	b, ok := h.CurrentBridge()
	if !ok {
		return 0, false, fmt.Errorf("fleet: no live bridge for offline hold")
	}
	b.HoldDeviceClose = true
	op := h.DelayKeepAlive(0)
	alarmsBefore := tb.TotalAlarmCount()
	tb.Clock.RunFor(spec.Hold())
	success := tb.TotalAlarmCount() == alarmsBefore
	op.Release()
	b.HoldDeviceClose = false
	tb.Clock.RunFor(10 * time.Second)
	return spec.Hold(), success, nil
}
