package fleet

import (
	"encoding/json"
	"io"

	"repro/internal/obs"
)

// ModelSummary is one device model's aggregated campaign outcome.
type ModelSummary struct {
	Model       string  `json:"model"`
	Trials      int     `json:"trials"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"successRate"`
	// MeanDelaySecs and MaxDelaySecs summarise the achieved phantom delay
	// across all trials against this model.
	MeanDelaySecs float64 `json:"meanDelaySecs"`
	MaxDelaySecs  float64 `json:"maxDelaySecs"`
}

// Result is a campaign's aggregated outcome. It is a pure function of the
// campaign identity: any worker count, and any interrupt/resume split,
// produces byte-identical JSON.
type Result struct {
	Campaign  string `json:"campaign"`
	Homes     int    `json:"homes"`
	Seed      int64  `json:"seed"`
	ShardSize int    `json:"shardSize"`
	Spec      Spec   `json:"spec"`

	// HomesAttacked counts homes with at least one matching target;
	// HomesNoTarget counts homes the spec's target selector skipped
	// entirely; HomesFailed counts homes whose run errored.
	HomesAttacked int `json:"homesAttacked"`
	HomesNoTarget int `json:"homesNoTarget"`
	HomesFailed   int `json:"homesFailed"`

	TotalTrials    int `json:"totalTrials"`
	TotalSuccesses int `json:"totalSuccesses"`
	// Alarms counts offline alarms raised across the whole population —
	// the campaign's stealth bill.
	Alarms int `json:"alarms"`

	// Errors samples per-home failures (up to maxShardErrors per shard).
	Errors []string `json:"errors,omitempty"`

	// PerModel is sorted by model label.
	PerModel []ModelSummary `json:"perModel"`

	// Metrics merges every home testbed's observability snapshot in shard
	// order: fleet_delay_seconds{model=...} histograms, trial counters,
	// alarm counts, plus the simulators' own counters.
	Metrics obs.Snapshot `json:"metrics"`
}

// aggregate folds sorted shard results into the campaign result,
// combining metrics via obs.Merge in shard-index order.
func (c Campaign) aggregate(shards []ShardResult) Result {
	res := Result{
		Campaign:  c.Spec.Name,
		Homes:     c.Homes,
		Seed:      c.Seed,
		ShardSize: c.ShardSize,
		Spec:      c.Spec,
	}
	tallies := make(map[string]*ModelTally)
	snaps := make([]obs.Snapshot, 0, len(shards))
	for _, s := range shards {
		res.HomesNoTarget += s.HomesNoTarget
		res.HomesFailed += s.HomesFailed
		res.HomesAttacked += s.Homes - s.HomesNoTarget - s.HomesFailed
		res.Alarms += s.Alarms
		res.Errors = append(res.Errors, s.Errors...)
		for _, t := range s.Tallies {
			agg, ok := tallies[t.Model]
			if !ok {
				agg = &ModelTally{Model: t.Model}
				tallies[t.Model] = agg
			}
			agg.add(t)
		}
		snaps = append(snaps, s.Metrics)
	}
	for _, t := range sortTallies(tallies) {
		s := ModelSummary{
			Model:        t.Model,
			Trials:       t.Trials,
			Successes:    t.Successes,
			MaxDelaySecs: t.MaxDelaySecs,
		}
		if t.Trials > 0 {
			s.SuccessRate = float64(t.Successes) / float64(t.Trials)
			s.MeanDelaySecs = t.DelaySumSecs / float64(t.Trials)
		}
		res.TotalTrials += t.Trials
		res.TotalSuccesses += t.Successes
		res.PerModel = append(res.PerModel, s)
	}
	res.Metrics = obs.Merge(snaps...)
	return res
}

// WriteJSON writes the result as indented JSON.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
