package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// ModelSummary is one device model's aggregated campaign outcome.
type ModelSummary struct {
	Model       string  `json:"model"`
	Trials      int     `json:"trials"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"successRate"`
	// MeanDelaySecs and MaxDelaySecs summarise the achieved phantom delay
	// across all trials against this model.
	MeanDelaySecs float64 `json:"meanDelaySecs"`
	MaxDelaySecs  float64 `json:"maxDelaySecs"`
}

// Result is a campaign's aggregated outcome. It is a pure function of the
// campaign identity: any worker count, and any interrupt/resume split,
// produces byte-identical JSON.
type Result struct {
	Campaign  string `json:"campaign"`
	Homes     int    `json:"homes"`
	Seed      int64  `json:"seed"`
	ShardSize int    `json:"shardSize"`
	Spec      Spec   `json:"spec"`

	// HomesAttacked counts homes with at least one matching target;
	// HomesNoTarget counts homes the spec's target selector skipped
	// entirely; HomesFailed counts homes whose run errored.
	HomesAttacked int `json:"homesAttacked"`
	HomesNoTarget int `json:"homesNoTarget"`
	HomesFailed   int `json:"homesFailed"`

	TotalTrials    int `json:"totalTrials"`
	TotalSuccesses int `json:"totalSuccesses"`
	// Alarms counts offline alarms raised across the whole population —
	// the campaign's stealth bill.
	Alarms int `json:"alarms"`

	// Errors samples per-home failures (up to maxShardErrors per shard).
	Errors []string `json:"errors,omitempty"`

	// PerModel is sorted by model label.
	PerModel []ModelSummary `json:"perModel"`

	// Metrics merges every home testbed's observability snapshot in shard
	// order: fleet_delay_seconds{model=...} histograms, trial counters,
	// alarm counts, plus the simulators' own counters.
	Metrics obs.Snapshot `json:"metrics"`
}

// exactTally is the aggregation-side form of ModelTally: the cross-shard
// delay sum accumulates exactly (see obs.FloatSum) with the embedded
// rounded DelaySumSecs re-derived after every fold. Exactness is what
// makes tally aggregation independent of how the shard sequence is split
// across checkpoints and worker processes.
type exactTally struct {
	t   ModelTally
	sum obs.FloatSum
}

// fold absorbs one shard's tally for this model.
func (e *exactTally) fold(o ModelTally) {
	e.t.Trials += o.Trials
	e.t.Successes += o.Successes
	e.sum.Add(o.DelaySumSecs)
	e.t.DelaySumSecs = e.sum.Value()
	if o.MaxDelaySecs > e.t.MaxDelaySecs {
		e.t.MaxDelaySecs = o.MaxDelaySecs
	}
}

// absorb merges another aggregate's exact tally state for this model.
func (e *exactTally) absorb(p PartialTally) {
	e.t.Trials += p.Trials
	e.t.Successes += p.Successes
	e.sum.AddSum(&p.DelaySum)
	e.t.DelaySumSecs = e.sum.Value()
	if p.MaxDelaySecs > e.t.MaxDelaySecs {
		e.t.MaxDelaySecs = p.MaxDelaySecs
	}
}

// sortedExactTallies flattens the tally map into PartialTally entries
// sorted by model — the canonical order both Partial encoding and result
// summaries use.
func sortedExactTallies(m map[string]*exactTally) []PartialTally {
	out := make([]PartialTally, 0, len(m))
	for _, e := range m {
		out = append(out, PartialTally{ModelTally: e.t, DelaySum: e.sum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// aggregateRetained is the retain-all-then-merge aggregation: fold sorted
// shard results into the campaign result, combining metrics via obs.Merge
// in shard-index order. Run no longer uses it — aggregation streams
// through an aggregator as shards land — but it stays as the executable
// reference the byte-identity tests compare the streaming, resumed, and
// multi-process paths against (TestStreamingAggregateMatchesRetained,
// TestMergePartialsMatchesRetained).
func (c Campaign) aggregateRetained(shards []ShardResult) Result {
	res := Result{
		Campaign:  c.Spec.Name,
		Homes:     c.Homes,
		Seed:      c.Seed,
		ShardSize: c.ShardSize,
		Spec:      c.Spec,
	}
	tallies := make(map[string]*exactTally)
	snaps := make([]obs.Snapshot, 0, len(shards))
	for _, s := range shards {
		res.HomesNoTarget += s.HomesNoTarget
		res.HomesFailed += s.HomesFailed
		res.HomesAttacked += s.Homes - s.HomesNoTarget - s.HomesFailed
		res.Alarms += s.Alarms
		res.Errors = append(res.Errors, s.Errors...)
		for _, t := range s.Tallies {
			agg, ok := tallies[t.Model]
			if !ok {
				agg = &exactTally{t: ModelTally{Model: t.Model}}
				tallies[t.Model] = agg
			}
			agg.fold(t)
		}
		snaps = append(snaps, s.Metrics)
	}
	res.finishTallies(tallies)
	res.Metrics = obs.Merge(snaps...)
	return res
}

// finishTallies folds the per-model tally map into the result's sorted
// PerModel summaries and campaign totals. Shared by the retained reference
// path and the streaming aggregator so their derived numbers cannot drift.
func (res *Result) finishTallies(tallies map[string]*exactTally) {
	for _, pt := range sortedExactTallies(tallies) {
		t := pt.ModelTally
		s := ModelSummary{
			Model:        t.Model,
			Trials:       t.Trials,
			Successes:    t.Successes,
			MaxDelaySecs: t.MaxDelaySecs,
		}
		if t.Trials > 0 {
			s.SuccessRate = float64(t.Successes) / float64(t.Trials)
			s.MeanDelaySecs = t.DelaySumSecs / float64(t.Trials)
		}
		res.TotalTrials += t.Trials
		res.TotalSuccesses += t.Successes
		res.PerModel = append(res.PerModel, s)
	}
}

// aggregator is the streaming replacement for aggregateRetained: shard
// results fold into the running campaign result as they land and are then
// released — nothing is retained per shard. Fold order is part of the
// byte-identity contract (error sampling order, trace concatenation), so
// results arriving out of shard-index order wait in a small reorder window
// until every lower-indexed shard has folded. With roughly uniform shard
// costs the window holds O(workers) results; a campaign's full shard set
// is never resident.
//
// The aggregator's complete state is exportable as a Partial (partial())
// and re-importable (restore()/absorb()), exact float sums included —
// that is the basis of both compact checkpoints and multi-process merges.
//
// The metrics side folds into an obs.Accumulator — mutex-guarded and
// readable at any instant by the live observability plane — whose folded
// prefix is, by the in-order guarantee, always a prefix of the final
// aggregate.
type aggregator struct {
	res     Result
	tallies map[string]*exactTally
	metrics *obs.Accumulator
	start   int                 // first shard index of this aggregate's range
	next    int                 // next shard index to fold
	window  map[int]ShardResult // out-of-order arrivals awaiting their turn
}

func (c Campaign) newAggregator(metrics *obs.Accumulator, start int) *aggregator {
	if metrics == nil {
		metrics = obs.NewAccumulator()
	}
	return &aggregator{
		res: Result{
			Campaign:  c.Spec.Name,
			Homes:     c.Homes,
			Seed:      c.Seed,
			ShardSize: c.ShardSize,
			Spec:      c.Spec,
		},
		tallies: make(map[string]*exactTally),
		metrics: metrics,
		start:   start,
		next:    start,
		window:  make(map[int]ShardResult),
	}
}

// add accepts one shard result in any order, folding it — and any buffered
// successors it unblocks — once it is next in index order.
func (g *aggregator) add(s ShardResult) {
	if s.Index != g.next {
		g.window[s.Index] = s
		return
	}
	g.fold(s)
	for {
		h, ok := g.window[g.next]
		if !ok {
			return
		}
		delete(g.window, g.next)
		g.fold(h)
	}
}

// fold applies one in-order shard: the same statements, in the same order,
// as one iteration of aggregateRetained's loop.
func (g *aggregator) fold(s ShardResult) {
	g.res.HomesNoTarget += s.HomesNoTarget
	g.res.HomesFailed += s.HomesFailed
	g.res.HomesAttacked += s.Homes - s.HomesNoTarget - s.HomesFailed
	g.res.Alarms += s.Alarms
	g.res.Errors = append(g.res.Errors, s.Errors...)
	for _, t := range s.Tallies {
		agg, ok := g.tallies[t.Model]
		if !ok {
			agg = &exactTally{t: ModelTally{Model: t.Model}}
			g.tallies[t.Model] = agg
		}
		agg.fold(t)
	}
	g.metrics.Add(s.Metrics)
	g.next++
}

// partial exports the aggregator's complete state as a mergeable Partial:
// what a checkpoint persists after every fold, and what a finished
// -shard-range worker emits. O(aggregate + reorder window), independent of
// how many shards have folded.
func (g *aggregator) partial() Partial {
	return Partial{
		Start:         g.start,
		Watermark:     g.next,
		HomesAttacked: g.res.HomesAttacked,
		HomesNoTarget: g.res.HomesNoTarget,
		HomesFailed:   g.res.HomesFailed,
		Alarms:        g.res.Alarms,
		Errors:        append([]string(nil), g.res.Errors...),
		Tallies:       sortedExactTallies(g.tallies),
		Metrics:       g.metrics.State(),
		MetricSums:    g.metrics.HistogramSums(),
		Window:        sortedShards(g.window),
	}
}

// absorb folds a completed adjacent partial into the aggregate — the
// cross-process merge step. The partial's exact tally and metric sums
// transfer limb-for-limb, so absorbing a range's partial leaves the
// aggregator in the precise state it would hold had it folded that
// range's shards itself.
func (g *aggregator) absorb(p Partial) error {
	if p.Start != g.next {
		return fmt.Errorf("fleet: partial starts at shard %d but the aggregate is at shard %d — ranges must be contiguous", p.Start, g.next)
	}
	if len(p.Window) != 0 {
		return fmt.Errorf("fleet: partial covering shards [%d,%d) still holds %d unfolded window shards — its range is incomplete", p.Start, p.Watermark, len(p.Window))
	}
	g.res.HomesAttacked += p.HomesAttacked
	g.res.HomesNoTarget += p.HomesNoTarget
	g.res.HomesFailed += p.HomesFailed
	g.res.Alarms += p.Alarms
	g.res.Errors = append(g.res.Errors, p.Errors...)
	for _, t := range p.Tallies {
		agg, ok := g.tallies[t.Model]
		if !ok {
			agg = &exactTally{t: ModelTally{Model: t.Model}}
			g.tallies[t.Model] = agg
		}
		agg.absorb(t)
	}
	if err := g.metrics.Absorb(p.Metrics, p.MetricSums, p.Watermark-p.Start); err != nil {
		return err
	}
	g.next = p.Watermark
	return nil
}

// restore seeds a fresh aggregator from a checkpointed partial: the folded
// prefix absorbs exactly, the window shards re-enter the reorder window.
func (g *aggregator) restore(p Partial) error {
	window := p.Window
	p.Window = nil
	if err := g.absorb(p); err != nil {
		return err
	}
	for _, s := range window {
		g.window[s.Index] = s
	}
	return nil
}

// finish assembles the final Result. Every shard must have folded (the
// reorder window drained) by the time it is called.
func (g *aggregator) finish() Result {
	res := g.res
	res.finishTallies(g.tallies)
	res.Metrics = g.metrics.State()
	return res
}

// WriteJSON writes the result as indented JSON.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
