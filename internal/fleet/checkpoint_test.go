package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// windowedPartial builds a real partial whose watermark sits at 1 with
// shard 2 parked in the reorder window (shard 1 never landed), the
// starting point the corruption table below mutates.
func windowedPartial(t *testing.T, c Campaign) Partial {
	t.Helper()
	g := c.newAggregator(nil, 0)
	g.add(c.runShard(0))
	g.add(c.runShard(2))
	p := g.partial()
	if p.Watermark != 1 || len(p.Window) != 1 {
		t.Fatalf("fixture partial watermark/window = %d/%d, want 1/1", p.Watermark, len(p.Window))
	}
	return p
}

// TestCheckpointLoadRejectsCorruptPartials: load must hard-error — naming
// the offending shard index — on structurally invalid partials instead of
// silently dropping or last-one-wins'ing entries, which would quietly
// change results.
func TestCheckpointLoadRejectsCorruptPartials(t *testing.T) {
	c := testCampaign(t).withDefaults()
	c.Spec.fill()
	total := c.shardCount()
	base := windowedPartial(t, c)

	for _, tc := range []struct {
		name    string
		mutate  func(p *Partial)
		wantErr string
	}{
		{
			"duplicate window index",
			func(p *Partial) { p.Window = append(p.Window, p.Window[0]) },
			"duplicate shard index 2",
		},
		{
			"window index below watermark",
			func(p *Partial) { p.Window[0].Index = 0 },
			"shard index 0 below the fold watermark 1",
		},
		{
			"window index equals watermark",
			func(p *Partial) { p.Window[0].Index = 1 },
			"shard index 1 equals the fold watermark",
		},
		{
			"window index out of range",
			func(p *Partial) { p.Window[0].Index = total },
			"out of range",
		},
		{
			"window out of order",
			func(p *Partial) {
				s := p.Window[0]
				s.Index = 4
				p.Window = append([]ShardResult{s}, p.Window[0])
			},
			"out of order at shard index 2",
		},
		{
			"watermark beyond campaign",
			func(p *Partial) { p.Watermark = total + 1; p.Window = nil },
			"claims folded shards",
		},
		{
			"negative start",
			func(p *Partial) { p.Start = -1 },
			"claims folded shards",
		},
		{
			"metric sums misaligned",
			func(p *Partial) { p.MetricSums = p.MetricSums[:len(p.MetricSums)-1] },
			"exact metric sums",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bad := base
			bad.Window = append([]ShardResult(nil), base.Window...)
			bad.MetricSums = append([]obs.FloatSum(nil), base.MetricSums...)
			tc.mutate(&bad)
			path := filepath.Join(t.TempDir(), "ck.json")
			ck := newCheckpointer(path, c.identity())
			if err := ck.save(bad); err != nil {
				t.Fatal(err)
			}
			_, _, err := ck.load(total)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("load error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckpointRejectsV1: the old retain-every-shard format gets a
// specific migration message, not a generic version mismatch or a
// misleading structural error.
func TestCheckpointRejectsV1(t *testing.T) {
	c := testCampaign(t).withDefaults()
	c.Spec.fill()
	path := filepath.Join(t.TempDir(), "ck.json")
	v1 := map[string]interface{}{
		"version":     1,
		"fingerprint": c.identity().fingerprint(),
		"identity":    c.identity(),
		"shards":      []ShardResult{c.runShard(0)},
	}
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ck := newCheckpointer(path, c.identity())
	_, _, err = ck.load(c.shardCount())
	if err == nil || !strings.Contains(err.Error(), "v1 retain-every-shard format") {
		t.Fatalf("v1 checkpoint error = %v, want migration message", err)
	}

	c.CheckpointPath = path
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("Run accepted a v1 checkpoint: %v", err)
	}
}

// TestCheckpointRejectsUnknownVersionAndGarbage rounds out decode errors.
func TestCheckpointRejectsUnknownVersionAndGarbage(t *testing.T) {
	c := testCampaign(t).withDefaults()
	c.Spec.fill()
	ck := newCheckpointer(filepath.Join(t.TempDir(), "ck.json"), c.identity())
	if err := os.WriteFile(ck.path, []byte(`{"version":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.load(c.shardCount()); err == nil || !strings.Contains(err.Error(), "version 3, want 2") {
		t.Fatalf("unknown version error = %v", err)
	}
	if err := os.WriteFile(ck.path, []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.load(c.shardCount()); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("truncated checkpoint error = %v", err)
	}
}

// TestKillAndResumeEveryShard interrupts a campaign after every k-th
// checkpoint save and resumes each interruption to completion: all of
// them must reproduce the uninterrupted result byte-for-byte, and every
// checkpoint along the way must stay compacted — no retained folded
// shards, file size flat in the number of completed shards (the v1 format
// grew linearly per save, O(shards²) over a campaign).
func TestKillAndResumeEveryShard(t *testing.T) {
	plain := testCampaign(t)
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := resultJSON(t, want)

	// Workers=1 makes the save sequence deterministic: save k holds
	// exactly shards [0,k) folded, window empty.
	run := testCampaign(t)
	run.Workers = 1
	run.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	var snapshots [][]byte
	run.OnShard = func(ShardResult, int, int) {
		// Saves happen before OnShard, so this reads the state just written.
		data, err := os.ReadFile(run.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, data)
	}
	if _, err := run.Run(); err != nil {
		t.Fatal(err)
	}
	total := plain.withDefaults().shardCount()
	if len(snapshots) != total {
		t.Fatalf("captured %d checkpoints, want %d", len(snapshots), total)
	}

	for k, snap := range snapshots {
		var f checkpointFile
		if err := json.Unmarshal(snap, &f); err != nil {
			t.Fatalf("checkpoint %d: %v", k, err)
		}
		if f.Partial.Watermark != k+1 || len(f.Partial.Window) != 0 {
			t.Fatalf("checkpoint %d not compacted: watermark %d, %d retained shards",
				k, f.Partial.Watermark, len(f.Partial.Window))
		}

		// Kill here and resume: byte-identical final result, for every k,
		// with a different worker count than the interrupted process.
		resume := testCampaign(t)
		resume.Workers = 3
		resume.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(resume.CheckpointPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := resume.Run()
		if err != nil {
			t.Fatalf("resume after shard %d: %v", k+1, err)
		}
		if !bytes.Equal(resultJSON(t, res), wantJSON) {
			t.Errorf("resume after shard %d differs from uninterrupted run", k+1)
		}
	}
}

// TestCheckpointSizeBoundedByWindow pins the O(window) claim with
// numbers, not eyeballs: quadrupling the shard count must not come close
// to quadrupling the finished checkpoint. The aggregate's label space
// saturates once every device model has appeared, so past that point the
// file size is flat in completed shards — the v1 format retained every
// ShardResult (~O(done) entries, each with its own metrics snapshot) and
// grew linearly.
func TestCheckpointSizeBoundedByWindow(t *testing.T) {
	size := func(homes int) int {
		c := testCampaign(t)
		c.Homes = homes
		c.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(c.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	base, quad := size(24), size(96) // 6 shards vs 24
	if quad > base+base/2 {
		t.Fatalf("checkpoint grows with completed shards: %d bytes at 24 shards vs %d at 6 — not O(window)", quad, base)
	}
}

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint decoder:
// it must never panic, and anything it accepts must be version 2 and
// survive structural validation without panicking.
func FuzzCheckpointDecode(f *testing.F) {
	spec := DefaultSpec()
	spec.Trials = 1
	c := Campaign{Spec: spec, Homes: 24, ShardSize: 4, Seed: 7}.withDefaults()
	c.Spec.fill()
	g := c.newAggregator(nil, 0)
	g.add(c.runShard(0))
	g.add(c.runShard(2))
	valid := checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: c.identity().fingerprint(),
		Identity:    c.identity(),
		Partial:     g.partial(),
	}
	seed, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1,"shards":[{"index":0}]}`))
	f.Add([]byte(`{"version":2,"partial":{"watermark":-3,"window":[{"index":9}]}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := decodeCheckpoint(data, "fuzz-input")
		if err != nil {
			return
		}
		if file.Version != checkpointVersion {
			t.Fatalf("decoder accepted version %d", file.Version)
		}
		// Structural validation must classify, not crash, whatever decoded.
		_ = file.Partial.validate(6)
	})
}
