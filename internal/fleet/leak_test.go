package fleet

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCheckpointFailureLeaksNoGoroutines: when a mid-campaign checkpoint
// save fails, Run must cancel the feeder and worker pool and drain it
// before returning. The previous collector returned from the results loop
// immediately on that path, stranding every worker blocked on the
// unbuffered results channel plus the feeder — this test fails against
// that code.
//
// The failure is induced by deleting the checkpoint's directory after the
// first shard lands (saves happen before OnShard fires, so the first save
// succeeds and every later one fails at CreateTemp). Deleting the
// directory rather than chmod'ing it keeps the test honest under root,
// where permission bits don't bite.
func TestCheckpointFailureLeaksNoGoroutines(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	c := testCampaign(t)
	c.Workers = 4
	c.CheckpointPath = filepath.Join(dir, "ck.json")
	broke := false
	c.OnShard = func(ShardResult, int, int) {
		if !broke {
			broke = true
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
		}
	}

	before := runtime.NumGoroutine()
	_, err := c.Run()
	if err == nil {
		t.Fatal("Run succeeded despite the checkpoint directory vanishing")
	}
	if !strings.Contains(err.Error(), "write checkpoint") {
		t.Fatalf("unexpected error: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("pool leaked after checkpoint failure: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
