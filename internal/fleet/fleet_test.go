package fleet

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"attack":"edelay"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "edelay" || s.Trials != 1 || s.Targets.PerHome != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.MarginSecs != 2 || s.HoldSecs != 60 || s.TimingJitter != 0.1 || s.RulesPerHome != 2 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if len(s.Targets.Classes) != 2 {
		t.Fatalf("default target classes not applied: %+v", s.Targets)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty object", `{}`, "no attack family"},
		{"unknown family", `{"attack":"ddos"}`, "unknown attack family"},
		{"unknown field", `{"attack":"edelay","margin":2}`, "unknown field"},
		{"trailing data", `{"attack":"edelay"}{"attack":"cdelay"}`, "trailing data"},
		{"not json", `nope`, "parse campaign spec"},
		{"wrong type", `[]`, "parse campaign spec"},
		{"negative trials", `{"attack":"edelay","trials":-1}`, "negative trials"},
		{"negative margin", `{"attack":"edelay","marginSecs":-5}`, "negative marginSecs"},
		{"jitter too big", `{"attack":"edelay","timingJitter":0.9}`, "timingJitter"},
		{"absurd hold", `{"attack":"offline","holdSecs":1e9}`, "beyond one week"},
		{"absurd trials", `{"attack":"edelay","trials":5000}`, "sanity bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.data))
			if err == nil {
				t.Fatalf("accepted %q", c.data)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestGenerateHomeDeterministic(t *testing.T) {
	cfg := PopulationConfig{Seed: 42, TimingJitter: 0.2, RulesPerHome: 3}
	for idx := 0; idx < 20; idx++ {
		a := GenerateHome(cfg, idx)
		b := GenerateHome(cfg, idx)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("home %d not deterministic", idx)
		}
	}
	// Neighbouring homes must not share the same stream.
	a, b := GenerateHome(cfg, 0), GenerateHome(cfg, 1)
	if a.Seed == b.Seed {
		t.Fatalf("homes 0 and 1 share seed %d", a.Seed)
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := (Campaign{Spec: DefaultSpec()}).Run(); err == nil {
		t.Fatal("zero homes accepted")
	}
	bad := DefaultSpec()
	bad.Attack = "nope"
	if _, err := (Campaign{Spec: bad, Homes: 1}).Run(); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestCheckpointGuards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	c := Campaign{Spec: DefaultSpec(), Homes: 4, ShardSize: 2, Seed: 1, CheckpointPath: path}.withDefaults()
	c.Spec.fill()
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Same campaign resumes cleanly (everything cached, nothing re-runs).
	if _, err := c.Run(); err != nil {
		t.Fatalf("resume of identical campaign: %v", err)
	}
	// A different campaign must refuse the stale checkpoint.
	other := c
	other.Seed = 2
	if _, err := other.Run(); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("stale checkpoint not rejected: %v", err)
	}
}
