package fleet

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/device"
	"repro/internal/obs"
)

// PartialTally is a ModelTally whose cross-shard delay sum is carried
// exactly. DelaySumSecs inside the embedded ModelTally is always DelaySum
// rounded once; DelaySum is what lets two partials' tallies combine into
// the same bits a single serial fold would have produced.
type PartialTally struct {
	ModelTally
	DelaySum obs.FloatSum `json:"delaySum"`
}

// Partial is checkpoint format v2 and the unit of multi-process fleet
// sharding: the mergeable aggregate of the shard range [Start, Watermark)
// plus the completed-but-unfolded shards sitting past the watermark.
//
// The invariant: every shard in [Start, Watermark) is folded into the
// aggregate fields (counts, errors, tallies, metrics) and is gone — a
// checkpoint never re-retains it. Shards that completed out of order
// beyond the watermark wait, whole, in Window (sorted by index, each index
// in (Watermark, total)); the window is bounded by the campaign's reorder
// depth — roughly Workers entries — so a checkpoint's size is O(window)
// regardless of how many shards are done. A partial with an empty window
// is a completed range and can merge with its neighbours.
//
// Tallies and MetricSums carry the exact float state behind the rounded
// aggregate (see obs.FloatSum): resuming or merging absorbs that state
// rather than re-folding rounded values, which is why any interrupt/resume
// split and any process topology produce byte-identical results.
type Partial struct {
	// Start is the first shard index the partial covers; Watermark is one
	// past the last contiguously folded shard.
	Start     int `json:"start"`
	Watermark int `json:"watermark"`

	HomesAttacked int `json:"homesAttacked"`
	HomesNoTarget int `json:"homesNoTarget"`
	HomesFailed   int `json:"homesFailed"`
	Alarms        int `json:"alarms"`

	Errors []string `json:"errors,omitempty"`

	// Tallies is the folded per-model state, sorted by model.
	Tallies []PartialTally `json:"tallies"`

	// Metrics is the folded obs aggregate (an Accumulator State) and
	// MetricSums its exact histogram sums, index-aligned with
	// Metrics.Histograms (Accumulator.HistogramSums).
	Metrics    obs.Snapshot   `json:"metrics"`
	MetricSums []obs.FloatSum `json:"metricSums"`

	// Window holds completed shards beyond the watermark, sorted by index.
	Window []ShardResult `json:"window,omitempty"`
}

// Shards reports how many completed shards the partial accounts for.
func (p Partial) Shards() int { return p.Watermark - p.Start + len(p.Window) }

// Homes reports how many homes those shards cover.
func (p Partial) Homes() int {
	n := p.HomesAttacked + p.HomesNoTarget + p.HomesFailed
	for _, s := range p.Window {
		n += s.Homes
	}
	return n
}

// validate checks the structural invariants against the campaign's shard
// count. A violation means a corrupt or hand-edited file, and names the
// offending shard index — silently dropping or last-one-wins'ing bad
// entries would quietly change results.
func (p Partial) validate(total int) error {
	if p.Start < 0 || p.Watermark < p.Start || p.Watermark > total {
		return fmt.Errorf("fleet: partial claims folded shards [%d,%d) of a %d-shard campaign", p.Start, p.Watermark, total)
	}
	prev := -1
	for _, s := range p.Window {
		switch {
		case s.Index < 0 || s.Index >= total:
			return fmt.Errorf("fleet: partial window shard index %d out of range [0,%d)", s.Index, total)
		case s.Index < p.Watermark:
			return fmt.Errorf("fleet: partial window shard index %d below the fold watermark %d", s.Index, p.Watermark)
		case s.Index == p.Watermark:
			return fmt.Errorf("fleet: partial window shard index %d equals the fold watermark — a contiguous shard left unfolded means a corrupt save", s.Index)
		case s.Index == prev:
			return fmt.Errorf("fleet: partial window has duplicate shard index %d", s.Index)
		case s.Index < prev:
			return fmt.Errorf("fleet: partial window out of order at shard index %d", s.Index)
		}
		prev = s.Index
	}
	if len(p.MetricSums) != len(p.Metrics.Histograms) {
		return fmt.Errorf("fleet: partial has %d exact metric sums for %d histograms", len(p.MetricSums), len(p.Metrics.Histograms))
	}
	return nil
}

// SavePartial writes a partial to path in the checkpoint file format —
// a finished -shard-range worker's output and an in-flight checkpoint are
// deliberately one format, so a completed campaign's checkpoint is itself
// a mergeable partial.
func (c Campaign) SavePartial(path string, p Partial) error {
	c = c.withDefaults()
	return newCheckpointer(path, c.identity()).save(p)
}

// LoadPartials reads a set of partial files for merging. Every file must
// belong to the same campaign (matching fingerprints); the campaign is
// reconstructed from the embedded identity, so the merger needs no
// out-of-band configuration. Partials are returned sorted by Start.
func LoadPartials(paths []string) (Campaign, []Partial, error) {
	if len(paths) == 0 {
		return Campaign{}, nil, fmt.Errorf("fleet: no partial files to load")
	}
	var c Campaign
	var fp string
	var total int
	parts := make([]Partial, 0, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return Campaign{}, nil, fmt.Errorf("fleet: read partial: %w", err)
		}
		f, err := decodeCheckpoint(data, path)
		if err != nil {
			return Campaign{}, nil, err
		}
		if i == 0 {
			c = Campaign{
				Spec:      f.Identity.Spec,
				Homes:     f.Identity.Homes,
				Seed:      f.Identity.Seed,
				ShardSize: f.Identity.ShardSize,
				Template:  device.PopulationTemplate{Name: f.Identity.Template},
			}
			fp = f.Identity.fingerprint()
			if f.Fingerprint != fp {
				return Campaign{}, nil, fmt.Errorf("fleet: partial %s fingerprint does not match its own identity — corrupt file", path)
			}
			total = c.withDefaults().shardCount()
		}
		if f.Fingerprint != fp {
			return Campaign{}, nil, fmt.Errorf("fleet: partial %s belongs to a different campaign than %s", path, paths[0])
		}
		if err := f.Partial.validate(total); err != nil {
			return Campaign{}, nil, fmt.Errorf("fleet: partial %s: %w", path, err)
		}
		parts = append(parts, f.Partial)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Start < parts[j].Start })
	return c, parts, nil
}

// MergePartials folds completed partials covering adjacent shard ranges
// into the campaign Result — byte-identical to a single-process run of the
// whole campaign, for any way the shard range was split. The partials
// must tile [0, shardCount) exactly: sorted by Start, first at 0,
// contiguous, last watermark at the end, every window empty (a non-empty
// window is an interrupted range — resume it first).
func (c Campaign) MergePartials(parts []Partial) (Result, error) {
	c = c.withDefaults()
	c.Spec.fill()
	if err := c.Spec.Validate(); err != nil {
		return Result{}, err
	}
	if c.Homes <= 0 {
		return Result{}, fmt.Errorf("fleet: campaign needs a positive number of homes, got %d", c.Homes)
	}
	if c.Accumulator != nil && c.Accumulator.Adds() != 0 {
		return Result{}, fmt.Errorf("fleet: campaign accumulator already holds %d snapshots; MergePartials needs a fresh one", c.Accumulator.Adds())
	}
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("fleet: no partials to merge")
	}
	total := c.shardCount()
	sorted := append([]Partial(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	agg := c.newAggregator(c.Accumulator, 0)
	for _, p := range sorted {
		if err := p.validate(total); err != nil {
			return Result{}, err
		}
		if err := agg.absorb(p); err != nil {
			return Result{}, err
		}
	}
	if agg.next != total {
		return Result{}, fmt.Errorf("fleet: merged partials cover shards [0,%d) of %d — a range is missing", agg.next, total)
	}
	return agg.finish(), nil
}
