package tcpsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ipnet"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Config parameterises the TCP timers. Zero values select defaults that
// mirror common kernel settings.
type Config struct {
	// RTOInitial is the first retransmission timeout. Default 1s.
	RTOInitial time.Duration
	// RTOMax caps exponential backoff. Default 60s.
	RTOMax time.Duration
	// MaxRetries is how many retransmissions are attempted before the
	// connection aborts with ErrTimeout. Default 5.
	MaxRetries int
	// MSS is the maximum payload per segment. Default 1400.
	MSS int
	// EnableKeepAlive turns on idle-connection probing.
	EnableKeepAlive bool
	// KeepAliveIdle is the idle period before the first probe. Default 2h.
	KeepAliveIdle time.Duration
	// KeepAliveInterval separates successive probes. Default 75s.
	KeepAliveInterval time.Duration
	// KeepAliveProbes is the number of unanswered probes tolerated before
	// the connection aborts with ErrKeepAliveTimeout. Default 9.
	KeepAliveProbes int
}

func (c *Config) fill() {
	if c.RTOInitial <= 0 {
		c.RTOInitial = time.Second
	}
	if c.RTOMax <= 0 {
		c.RTOMax = 60 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.KeepAliveIdle <= 0 {
		c.KeepAliveIdle = 2 * time.Hour
	}
	if c.KeepAliveInterval <= 0 {
		c.KeepAliveInterval = 75 * time.Second
	}
	if c.KeepAliveProbes <= 0 {
		c.KeepAliveProbes = 9
	}
}

type connKey struct {
	local  Endpoint
	remote Endpoint
}

// Listener accepts inbound connections on a port.
type Listener struct {
	port   uint16
	accept func(*Conn)
}

// Stack is a host's TCP layer. One Stack serves all connections of a host.
type Stack struct {
	clk       *simtime.Clock
	ip        *ipnet.Stack
	cfg       Config
	rng       *simtime.Rand
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16
	// SendRST controls whether segments for unknown connections are
	// answered with RST (real stacks do; default true).
	SendRST bool

	met stackMetrics

	// txbuf is the segment-marshal scratch: sends are synchronous down to
	// netsim's copy boundary, so one buffer serves every transmission.
	txbuf []byte
	// chunkFree pools send-chunk buffers (Conn.Send copies application
	// bytes into one chunk per segment, held until acknowledged).
	chunkFree [][]byte
	// graveyard holds connections closed since the last Reset. They are not
	// revived mid-epoch — application code may still inspect a closed Conn —
	// but Reset moves them to connFree for newConn to reuse, timers and
	// buffers included.
	graveyard []*Conn
	connFree  []*Conn
}

// Reset rebinds the stack to an IP layer and returns it to its freshly
// constructed state while keeping its allocations: the RNG is reseeded in
// place, listeners and connections are dropped (every connection — live or
// already closed — is parked for newConn to revive), and the chunk pool is
// retained when the MSS is unchanged. A reset stack behaves
// byte-identically to NewStack(clk, ip, cfg, seed).
func (s *Stack) Reset(ip *ipnet.Stack, cfg Config, seed int64) {
	cfg.fill()
	if cfg.MSS != s.cfg.MSS {
		s.chunkFree = nil
	}
	s.cfg = cfg
	s.ip = ip
	s.rng.Reseed(seed)
	clear(s.listeners)
	// Live connections are reclaimed in map order; revived connections are
	// fully reinitialised, so pool order is unobservable.
	for _, c := range s.conns {
		s.retire(c)
		//lint:allow maporder -- free-pool order is unobservable: reinit fills every field
		s.connFree = append(s.connFree, c)
	}
	clear(s.conns)
	for _, c := range s.graveyard {
		s.retire(c)
	}
	s.connFree = append(s.connFree, s.graveyard...)
	clear(s.graveyard)
	s.graveyard = s.graveyard[:0]
	s.nextPort = 49152
	s.SendRST = true
	s.met = stackMetrics{}
	ip.Handle(ipnet.ProtoTCP, s.HandlePacket)
}

// retire severs a connection's ties to the current epoch: timers stopped
// (live connections may still have one pending when the clock was not
// reset), queued chunks recycled, callbacks and payload references dropped.
func (s *Stack) retire(c *Conn) {
	c.rtxTimer.Stop()
	c.kaTimer.Stop()
	for i := range c.rtxq {
		if len(c.rtxq[i].payload) > 0 {
			s.putChunk(c.rtxq[i].payload)
		}
		c.rtxq[i] = rtxEntry{}
	}
	c.rtxq = c.rtxq[:0]
	clear(c.ooo)
	c.OnEstablished, c.OnData, c.OnClose = nil, nil, nil
}

// getChunk returns a pooled buffer of length n (n never exceeds the MSS:
// Conn.Send segments at the MSS and is the only caller).
func (s *Stack) getChunk(n int) []byte {
	if k := len(s.chunkFree); k > 0 {
		b := s.chunkFree[k-1]
		s.chunkFree = s.chunkFree[:k-1]
		return b[:n]
	}
	c := n
	if c < s.cfg.MSS {
		c = s.cfg.MSS
	}
	return make([]byte, n, c)
}

// putChunk recycles a chunk once its retransmission-queue entry retires.
func (s *Stack) putChunk(b []byte) {
	if cap(b) >= s.cfg.MSS {
		s.chunkFree = append(s.chunkFree, b[:0])
	}
}

// stackMetrics are a stack's obs handles; the zero value (all nil) is the
// uninstrumented no-op state.
type stackMetrics struct {
	segmentsSent  *obs.Counter
	retransmits   *obs.Counter
	backoffResets *obs.Counter
	kaProbes      *obs.Counter
	oooDepth      *obs.Gauge
	connsOpened   *obs.Counter
	closedByCause map[string]*obs.Counter
	// trace is nil unless the registry's trace ring is enabled, so the
	// per-event emission sites pay one branch when tracing is off.
	trace *obs.Trace
	host  string
}

// Instrument registers the stack's metrics with reg, labeled by host:
//
//	tcpsim_segments_sent_total{host}   every transmitted segment
//	tcpsim_retransmits_total{host}     RTO-driven retransmissions
//	tcpsim_backoff_resets_total{host}  backoff abandoned after an ACK made progress
//	tcpsim_keepalive_probes_total{host}
//	tcpsim_ooo_queue_depth{host}       out-of-order queue length (Max = high-water)
//	tcpsim_conns_opened_total{host}
//	tcpsim_conns_closed_total{host,cause}
//	    cause: graceful | timeout | keepalive_timeout | reset | aborted
//
// When the registry's trace ring is enabled the stack also emits "tcpsim"
// trace events: conn_established, conn_closed, rto_fired, ka_probe and
// spoofed_ack (a bare ACK sent from an address that is not the host's own
// — the split-connection attacker acknowledging on a victim's behalf).
func (s *Stack) Instrument(reg *obs.Registry, host string) {
	l := obs.L("host", host)
	s.met = stackMetrics{
		segmentsSent:  reg.Counter("tcpsim_segments_sent_total", l),
		retransmits:   reg.Counter("tcpsim_retransmits_total", l),
		backoffResets: reg.Counter("tcpsim_backoff_resets_total", l),
		kaProbes:      reg.Counter("tcpsim_keepalive_probes_total", l),
		oooDepth:      reg.Gauge("tcpsim_ooo_queue_depth", l),
		connsOpened:   reg.Counter("tcpsim_conns_opened_total", l),
		closedByCause: make(map[string]*obs.Counter),
		host:          host,
	}
	if tr := reg.Trace(); tr.Enabled() {
		s.met.trace = tr
	}
	for _, cause := range []string{"graceful", "timeout", "keepalive_timeout", "reset", "aborted"} {
		s.met.closedByCause[cause] = reg.Counter("tcpsim_conns_closed_total", l, obs.L("cause", cause))
	}
}

func closeCause(err error) string {
	switch {
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrKeepAliveTimeout):
		return "keepalive_timeout"
	case errors.Is(err, ErrReset):
		return "reset"
	case err != nil:
		return "aborted"
	default:
		return "graceful"
	}
}

func (m stackMetrics) connClosed(err error) {
	if m.closedByCause == nil {
		return
	}
	m.closedByCause[closeCause(err)].Inc()
}

// NewStack creates a TCP layer bound to an IP stack and registers itself as
// the handler for TCP packets.
func NewStack(clk *simtime.Clock, ip *ipnet.Stack, cfg Config, seed int64) *Stack {
	cfg.fill()
	s := &Stack{
		clk:       clk,
		ip:        ip,
		cfg:       cfg,
		rng:       simtime.NewRand(seed),
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  49152,
		SendRST:   true,
	}
	ip.Handle(ipnet.ProtoTCP, s.HandlePacket)
	return s
}

// Clock returns the stack's virtual clock.
func (s *Stack) Clock() *simtime.Clock { return s.clk }

// Config returns the stack's effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// Listen registers an accept callback for inbound connections to port. The
// callback runs when a SYN arrives, before the SYN-ACK is sent, so it can
// install the connection's event handlers.
func (s *Stack) Listen(port uint16, accept func(*Conn)) (*Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("tcpsim: port %d already listening", port)
	}
	l := &Listener{port: port, accept: accept}
	s.listeners[port] = l
	return l, nil
}

// CloseListener removes a listener. Established connections are unaffected.
func (s *Stack) CloseListener(l *Listener) { delete(s.listeners, l.port) }

// Dial opens a connection from this host's primary address and an ephemeral
// port to the remote endpoint. Handlers should be installed on the returned
// Conn before the event loop next runs.
func (s *Stack) Dial(remote Endpoint) *Conn {
	local := Endpoint{Addr: s.ip.Addr(), Port: s.ephemeralPort()}
	return s.DialFrom(local, remote)
}

// DialFrom opens a connection with an explicit local endpoint. The local
// address need not belong to this host: an attacker's split-connection
// proxy dials the server with the victim device's address.
func (s *Stack) DialFrom(local, remote Endpoint) *Conn {
	c := s.newConn(local, remote)
	c.state = StateSynSent
	s.conns[connKey{local, remote}] = c
	c.queueAndSend(FlagSYN, nil)
	return c
}

func (s *Stack) ephemeralPort() uint16 {
	p := s.nextPort
	s.nextPort++
	if s.nextPort < 49152 {
		s.nextPort = 49152
	}
	return p
}

// HandlePacket demultiplexes an inbound TCP packet. It is exported so the
// attacker's divert hook can feed diverted packets into its own TCP layer.
func (s *Stack) HandlePacket(p ipnet.Packet) {
	seg, err := UnmarshalSegment(p.Payload)
	if err != nil {
		return
	}
	key := connKey{
		local:  Endpoint{Addr: p.Dst, Port: seg.DstPort},
		remote: Endpoint{Addr: p.Src, Port: seg.SrcPort},
	}
	if c, ok := s.conns[key]; ok {
		c.handleSegment(seg)
		return
	}
	if seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
		if l, ok := s.listeners[seg.DstPort]; ok {
			c := s.newConn(key.local, key.remote)
			c.state = StateSynRcvd
			c.rcvNxt = seg.Seq + 1
			s.conns[key] = c
			l.accept(c)
			c.queueAndSend(FlagSYN|FlagACK, nil)
			return
		}
	}
	if s.SendRST && !seg.Flags.Has(FlagRST) {
		s.sendRaw(key.local, key.remote, Segment{
			Seq:   seg.Ack,
			Ack:   seg.Seq + seg.seqLen(),
			Flags: FlagRST | FlagACK,
		})
	}
}

func (s *Stack) newConn(local, remote Endpoint) *Conn {
	s.met.connsOpened.Inc()
	iss := uint32(s.rng.Int63())
	c := &Conn{stack: s}
	if k := len(s.connFree); k > 0 {
		c, s.connFree[k-1] = s.connFree[k-1], nil
		s.connFree = s.connFree[:k-1]
		c.reinit()
	}
	c.local = local
	c.remote = remote
	c.iss = iss
	c.sndUna = iss
	c.sndNxt = iss
	c.rto = s.cfg.RTOInitial
	return c
}

func (s *Stack) sendRaw(from, to Endpoint, seg Segment) {
	seg.SrcPort = from.Port
	seg.DstPort = to.Port
	// The marshal scratch is safe to reuse per send: ipnet either marshals
	// the packet into its own scratch synchronously or detaches the payload
	// before deferring on ARP resolution.
	s.txbuf = seg.AppendTo(s.txbuf[:0])
	// A send can only fail for lack of a route; the segment is then lost,
	// which the retransmission machinery already handles.
	_ = s.ip.Send(ipnet.Packet{
		Src:     from.Addr,
		Dst:     to.Addr,
		Proto:   ipnet.ProtoTCP,
		Payload: s.txbuf,
	})
}

func (s *Stack) removeConn(c *Conn) {
	delete(s.conns, connKey{c.local, c.remote})
	// Closed connections wait in the graveyard until the next Reset rather
	// than reviving immediately: callers may still hold the pointer and read
	// its final state.
	s.graveyard = append(s.graveyard, c)
}

// ConnCount reports the number of live connections (diagnostics and the
// half-open-connection experiments use this).
func (s *Stack) ConnCount() int { return len(s.conns) }
