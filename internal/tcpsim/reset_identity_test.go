package tcpsim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// recycleLab owns the long-lived pieces a fleet shard reuses between
// homes: clock, network, registry, and the IP and TCP stacks of a
// two-host LAN.
type recycleLab struct {
	clk      *simtime.Clock
	nw       *netsim.Network
	reg      *obs.Registry
	cIP, sIP *ipnet.Stack
	cli, srv *Stack
}

func newRecycleLab() *recycleLab {
	clk := simtime.NewClock()
	l := &recycleLab{clk: clk, nw: netsim.NewNetwork(clk, 1), reg: obs.NewRegistry()}
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.cIP = ipnet.NewStack(clk, l.nw.NewHost("client"))
	l.sIP = ipnet.NewStack(clk, l.nw.NewHost("server"))
	l.cIP.MustAddIface(seg, "192.168.1.10/24")
	l.sIP.MustAddIface(seg, "192.168.1.20/24")
	l.cli = NewStack(clk, l.cIP, Config{}, 7)
	l.srv = NewStack(clk, l.sIP, Config{}, 8)
	l.instrument()
	return l
}

func (l *recycleLab) instrument() {
	l.clk.Instrument(l.reg)
	l.cli.Instrument(l.reg, "client")
	l.srv.Instrument(l.reg, "server")
}

// recycle rewinds every component in the teardown order the testbed arena
// uses: clock first (pending retransmission, delayed-ACK and TIME_WAIT
// timers become inert), then network, registry and the stacks.
func (l *recycleLab) recycle() {
	l.clk.Reset()
	l.nw.Reset(1)
	l.reg.Reset()
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.cIP.Reset(l.nw.NewHost("client"))
	l.sIP.Reset(l.nw.NewHost("server"))
	l.cIP.MustAddIface(seg, "192.168.1.10/24")
	l.sIP.MustAddIface(seg, "192.168.1.20/24")
	l.cli.Reset(l.cIP, Config{}, 7)
	l.srv.Reset(l.sIP, Config{}, 8)
	l.instrument()
}

// drive runs the canonical workload — handshake, four echoed payloads, an
// orderly close — and fingerprints delivery order and timing, both
// connection states and stats, and the full metrics snapshot.
func (l *recycleLab) drive(t *testing.T) string {
	t.Helper()
	var events []string
	var srvConn *Conn
	if _, err := l.srv.Listen(443, func(c *Conn) {
		srvConn = c
		c.OnData = func(b []byte) {
			events = append(events, fmt.Sprintf("srv<-%q@%v", b, l.clk.Now()))
			if err := c.Send([]byte("ack")); err != nil {
				t.Errorf("server send: %v", err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	cli := l.cli.Dial(Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
	cli.OnData = func(b []byte) { events = append(events, fmt.Sprintf("cli<-%q@%v", b, l.clk.Now())) }
	l.clk.RunFor(time.Second)
	if cli.State() != StateEstablished || srvConn == nil {
		t.Fatal("handshake did not complete")
	}
	for i := 0; i < 4; i++ {
		if err := cli.Send([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		l.clk.RunFor(200 * time.Millisecond)
	}
	cli.Close()
	l.clk.RunFor(5 * time.Second)
	snap, err := json.Marshal(l.reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("events=%v cli=%v/%+v srv=%v/%+v now=%v snap=%s",
		events, cli.State(), cli.Stats(), srvConn.State(), srvConn.Stats(), l.clk.Now(), snap)
}

// TestStackResetByteIdentity recycles a stack pair whose previous life
// ended mid-handshake — SYN in flight, its retransmission timer pending —
// and requires the revived stacks to replay a full workload
// byte-identically to freshly built ones, across two recycling
// generations.
func TestStackResetByteIdentity(t *testing.T) {
	fresh := newRecycleLab().drive(t)

	l := newRecycleLab()
	if _, err := l.srv.Listen(80, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	l.cli.Dial(Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 80})
	l.clk.RunFor(100 * time.Microsecond) // SYN and its rearm timer still live

	l.recycle()
	for _, g := range l.reg.Snapshot().Gauges {
		if g.Name == "simtime_queue_depth" && (g.Value != 0 || g.Max != 0) {
			t.Fatalf("simtime_queue_depth after recycle = %d (max %d), want 0", g.Value, g.Max)
		}
	}
	if got := l.drive(t); got != fresh {
		t.Errorf("recycled stacks diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}

	l.recycle()
	if got := l.drive(t); got != fresh {
		t.Errorf("second recycling generation diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}
}
