package tcpsim

import (
	"testing"
	"time"
)

// BenchmarkRTORearm measures the ACK hot path: every data segment arms the
// retransmission timer and every acknowledgement rearms it, with keep-alive
// rearming on top — the per-packet timer churn that dominates fleet-scale
// simulation (IoT traffic is overwhelmingly periodic keep-alive exchanges).
// Ten pipelined segments per round keep the retransmission queue non-empty
// across ACKs, so the rearm-under-load branch is exercised, not just the
// queue-drained early return.
func BenchmarkRTORearm(b *testing.B) {
	e := newEnv(Config{
		EnableKeepAlive: true,
		KeepAliveIdle:   30 * time.Second,
	})
	var srvConn *Conn
	if _, err := e.server.Listen(443, func(c *Conn) { srvConn = c }); err != nil {
		b.Fatal(err)
	}
	cli := e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 443})
	e.clk.RunFor(time.Second)
	if srvConn == nil || cli.State() != StateEstablished {
		b.Fatal("handshake did not complete")
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			if err := cli.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
		e.clk.RunFor(20 * time.Millisecond)
	}
	b.StopTimer()
	if cli.Stats().Retransmits != 0 {
		b.Fatalf("lossless bench saw %d retransmits", cli.Stats().Retransmits)
	}
}
