package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// env wires two hosts on one LAN with TCP stacks.
type env struct {
	clk    *simtime.Clock
	net    *netsim.Network
	seg    *netsim.Segment
	client *Stack
	server *Stack
}

func newEnv(cfg Config) *env {
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)

	clientIP := ipnet.NewStack(clk, nw.NewHost("client"))
	clientIP.MustAddIface(seg, "192.168.1.10/24")
	serverIP := ipnet.NewStack(clk, nw.NewHost("server"))
	serverIP.MustAddIface(seg, "192.168.1.20/24")

	return &env{
		clk:    clk,
		net:    nw,
		seg:    seg,
		client: NewStack(clk, clientIP, cfg, 7),
		server: NewStack(clk, serverIP, cfg, 8),
	}
}

func (e *env) serverAddr() ipaddr.Addr { return ipaddr.MustParse("192.168.1.20") }

// connect establishes a connection and returns both halves.
func (e *env) connect(t *testing.T, port uint16) (client, server *Conn) {
	t.Helper()
	var srvConn *Conn
	if _, err := e.server.Listen(port, func(c *Conn) { srvConn = c }); err != nil {
		t.Fatal(err)
	}
	cli := e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: port})
	established := false
	cli.OnEstablished = func() { established = true }
	e.clk.RunFor(time.Second)
	if !established {
		t.Fatal("handshake did not complete")
	}
	if srvConn == nil || srvConn.State() != StateEstablished {
		t.Fatal("server side not established")
	}
	return cli, srvConn
}

func TestHandshake(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	if cli.State() != StateEstablished || srv.State() != StateEstablished {
		t.Fatalf("states: %v / %v", cli.State(), srv.State())
	}
}

func TestDataTransferBothDirections(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	var fromCli, fromSrv bytes.Buffer
	srv.OnData = func(b []byte) { fromCli.Write(b) }
	cli.OnData = func(b []byte) { fromSrv.Write(b) }
	if err := cli.Send([]byte("hello server")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send([]byte("hello client")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if fromCli.String() != "hello server" || fromSrv.String() != "hello client" {
		t.Fatalf("got %q / %q", fromCli.String(), fromSrv.String())
	}
}

func TestLargeTransferSegmented(t *testing.T) {
	e := newEnv(Config{MSS: 100})
	cli, srv := e.connect(t, 443)
	var got bytes.Buffer
	srv.OnData = func(b []byte) { got.Write(b) }
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := cli.Send(data); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(5 * time.Second)
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d bytes, want %d (content mismatch=%v)",
			got.Len(), len(data), !bytes.Equal(got.Bytes(), data))
	}
	if cli.Stats().Retransmits != 0 {
		t.Fatalf("lossless network should need no retransmits, got %d", cli.Stats().Retransmits)
	}
}

func TestGracefulClose(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	var cliErr, srvErr error
	cliClosed, srvClosed := false, false
	cli.OnClose = func(err error) { cliClosed, cliErr = true, err }
	srv.OnClose = func(err error) { srvClosed, srvErr = true, err }
	cli.Close()
	e.clk.RunFor(time.Second)
	if !cliClosed || !srvClosed {
		t.Fatalf("closed: cli=%v srv=%v", cliClosed, srvClosed)
	}
	if cliErr != nil || srvErr != nil {
		t.Fatalf("graceful close errors: %v / %v", cliErr, srvErr)
	}
	if e.client.ConnCount() != 0 || e.server.ConnCount() != 0 {
		t.Fatalf("lingering conns: %d / %d", e.client.ConnCount(), e.server.ConnCount())
	}
}

func TestDataBeforeCloseDelivered(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	var got bytes.Buffer
	srv.OnData = func(b []byte) { got.Write(b) }
	if err := cli.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	e.clk.RunFor(time.Second)
	if got.String() != "last words" {
		t.Fatalf("got %q", got.String())
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	e := newEnv(Config{})
	cli, _ := e.connect(t, 443)
	cli.Close()
	if err := cli.Send([]byte("x")); err == nil {
		t.Fatal("Send after Close should fail")
	}
}

func TestAbortSendsRST(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	var srvErr error
	srv.OnClose = func(err error) { srvErr = err }
	cli.Abort()
	e.clk.RunFor(time.Second)
	if srvErr != ErrReset {
		t.Fatalf("server close err = %v, want ErrReset", srvErr)
	}
}

func TestSynToClosedPortGetsRST(t *testing.T) {
	e := newEnv(Config{})
	cli := e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 9999})
	var err error
	closed := false
	cli.OnClose = func(e error) { closed, err = true, e }
	e.clk.RunFor(time.Second)
	if !closed || err != ErrReset {
		t.Fatalf("closed=%v err=%v, want reset", closed, err)
	}
}

func TestRetransmissionTimeoutAborts(t *testing.T) {
	// No listener and RSTs disabled: SYN goes unanswered until retries are
	// exhausted.
	e := newEnv(Config{RTOInitial: 100 * time.Millisecond, MaxRetries: 3})
	e.server.SendRST = false
	cli := e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 9999})
	var err error
	cli.OnClose = func(e error) { err = e }
	e.clk.RunFor(time.Minute)
	if err != ErrTimeout {
		t.Fatalf("close err = %v, want ErrTimeout", err)
	}
	// 1 initial + 3 retries.
	if got := cli.Stats().SegmentsSent; got != 4 {
		t.Fatalf("sent %d SYNs, want 4", got)
	}
}

func TestRetransmitBackoffDoubles(t *testing.T) {
	e := newEnv(Config{RTOInitial: 100 * time.Millisecond, MaxRetries: 10})
	e.server.SendRST = false
	e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 9999})
	// Observe retransmission times via a tap.
	var times []simtime.Time
	e.seg.AddTap(func(f netsim.Frame) {
		if f.Type == netsim.EtherTypeIPv4 {
			times = append(times, e.clk.Now())
		}
	})
	e.clk.RunFor(2 * time.Second)
	// Transmissions at ~0, 100ms, 300ms, 700ms, 1500ms (+1ms latency each).
	if len(times) < 4 {
		t.Fatalf("saw %d transmissions, want >= 4", len(times))
	}
	gap1 := times[2] - times[1]
	gap2 := times[3] - times[2]
	if gap2 < gap1*18/10 {
		t.Fatalf("backoff not doubling: gaps %v then %v", gap1, gap2)
	}
}

func TestDataRetransmittedAfterLoss(t *testing.T) {
	// Simulate loss by detaching the server NIC briefly.
	e := newEnv(Config{RTOInitial: 50 * time.Millisecond})
	cli, srv := e.connect(t, 443)
	var got bytes.Buffer
	srv.OnData = func(b []byte) { got.Write(b) }
	srvNIC := e.server.ip.Ifaces()[0].NIC()
	srvNIC.SetDown(true)
	if err := cli.Send([]byte("persistent")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(80 * time.Millisecond)
	srvNIC.SetDown(false)
	e.clk.RunFor(time.Second)
	if got.String() != "persistent" {
		t.Fatalf("got %q after recovery", got.String())
	}
	if cli.Stats().Retransmits == 0 {
		t.Fatal("expected at least one retransmission")
	}
}

func TestKeepAliveProbesIdleConnection(t *testing.T) {
	e := newEnv(Config{
		EnableKeepAlive:   true,
		KeepAliveIdle:     10 * time.Second,
		KeepAliveInterval: 2 * time.Second,
		KeepAliveProbes:   3,
	})
	cli, srv := e.connect(t, 443)
	_ = srv
	e.clk.RunFor(15 * time.Second)
	if cli.Stats().ProbesSent == 0 {
		t.Fatal("no keep-alive probes sent on idle connection")
	}
	if cli.State() != StateEstablished {
		t.Fatalf("answered probes should keep the connection up, state=%v", cli.State())
	}
}

func TestKeepAliveTimeoutAbortsWhenPeerGone(t *testing.T) {
	e := newEnv(Config{
		EnableKeepAlive:   true,
		KeepAliveIdle:     10 * time.Second,
		KeepAliveInterval: 2 * time.Second,
		KeepAliveProbes:   3,
		RTOInitial:        time.Hour, // keep RTO out of the picture
	})
	cli, _ := e.connect(t, 443)
	var err error
	cli.OnClose = func(e error) { err = e }
	e.server.ip.Ifaces()[0].NIC().SetDown(true)
	e.clk.RunFor(time.Minute)
	if err != ErrKeepAliveTimeout {
		t.Fatalf("close err = %v, want ErrKeepAliveTimeout", err)
	}
}

func TestKeepAliveSuppressedByActivity(t *testing.T) {
	e := newEnv(Config{
		EnableKeepAlive:   true,
		KeepAliveIdle:     10 * time.Second,
		KeepAliveInterval: 2 * time.Second,
		KeepAliveProbes:   3,
	})
	cli, srv := e.connect(t, 443)
	srv.OnData = func([]byte) {}
	// Send data every 5s — under the 10s idle threshold.
	tick := simtime.NewTicker(e.clk, 5*time.Second, func() { _ = cli.Send([]byte("ping")) })
	e.clk.RunFor(60 * time.Second)
	tick.Stop()
	if got := cli.Stats().ProbesSent; got != 0 {
		t.Fatalf("probes sent despite activity: %d", got)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	// Deliver segments out of order by reordering at a custom relay; here we
	// cheat by injecting segments directly into the server's handler.
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	var got bytes.Buffer
	srv.OnData = func(b []byte) { got.Write(b) }
	// Build two in-sequence segments from the client but deliver swapped.
	base := cli.sndNxt
	seg1 := Segment{SrcPort: cli.local.Port, DstPort: 443, Seq: base, Ack: cli.rcvNxt, Flags: FlagACK, Payload: []byte("AAAA")}
	seg2 := Segment{SrcPort: cli.local.Port, DstPort: 443, Seq: base + 4, Ack: cli.rcvNxt, Flags: FlagACK, Payload: []byte("BBBB")}
	srvAddr := e.serverAddr()
	cliAddr := ipaddr.MustParse("192.168.1.10")
	e.server.HandlePacket(ipnet.Packet{Src: cliAddr, Dst: srvAddr, Proto: ipnet.ProtoTCP, Payload: seg2.Marshal()})
	e.server.HandlePacket(ipnet.Packet{Src: cliAddr, Dst: srvAddr, Proto: ipnet.ProtoTCP, Payload: seg1.Marshal()})
	e.clk.RunFor(time.Second)
	if got.String() != "AAAABBBB" {
		t.Fatalf("reassembled %q, want AAAABBBB", got.String())
	}
}

func TestDuplicateSegmentIgnored(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	var got bytes.Buffer
	srv.OnData = func(b []byte) { got.Write(b) }
	base := cli.sndNxt
	seg := Segment{SrcPort: cli.local.Port, DstPort: 443, Seq: base, Ack: cli.rcvNxt, Flags: FlagACK, Payload: []byte("once")}
	srvAddr := e.serverAddr()
	cliAddr := ipaddr.MustParse("192.168.1.10")
	p := ipnet.Packet{Src: cliAddr, Dst: srvAddr, Proto: ipnet.ProtoTCP, Payload: seg.Marshal()}
	e.server.HandlePacket(p)
	e.server.HandlePacket(p)
	e.clk.RunFor(time.Second)
	if got.String() != "once" {
		t.Fatalf("got %q, duplicate delivered twice", got.String())
	}
}

func TestSimultaneousConnections(t *testing.T) {
	e := newEnv(Config{})
	conns := make(map[*Conn][]byte)
	if _, err := e.server.Listen(443, func(c *Conn) {
		c.OnData = func(b []byte) { conns[c] = append(conns[c], b...) }
	}); err != nil {
		t.Fatal(err)
	}
	var clis []*Conn
	for i := 0; i < 5; i++ {
		clis = append(clis, e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 443}))
	}
	e.clk.RunFor(time.Second)
	for i, c := range clis {
		if err := c.Send([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.clk.RunFor(time.Second)
	if len(conns) != 5 {
		t.Fatalf("server saw %d conns, want 5", len(conns))
	}
	seen := make(map[string]bool)
	for _, data := range conns {
		seen[string(data)] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[string(byte('a'+i))] {
			t.Fatalf("missing data from conn %d", i)
		}
	}
}

func TestListenDuplicatePort(t *testing.T) {
	e := newEnv(Config{})
	if _, err := e.server.Listen(443, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.server.Listen(443, func(*Conn) {}); err == nil {
		t.Fatal("duplicate listen should fail")
	}
}

func TestCloseListenerStopsAccepting(t *testing.T) {
	e := newEnv(Config{})
	l, err := e.server.Listen(443, func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	e.server.CloseListener(l)
	cli := e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 443})
	var cliErr error
	cli.OnClose = func(e error) { cliErr = e }
	e.clk.RunFor(time.Second)
	if cliErr != ErrReset {
		t.Fatalf("dial to closed listener: err=%v, want reset", cliErr)
	}
}

func TestOnCloseFiresExactlyOnce(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	n := 0
	cli.OnClose = func(error) { n++ }
	cli.Close()
	srv.Close()
	e.clk.RunFor(time.Second)
	cli.Abort()
	if n != 1 {
		t.Fatalf("OnClose fired %d times", n)
	}
}

func TestSpoofedDial(t *testing.T) {
	// A third host dials the server claiming the client's address; replies
	// route to the real client's IP, so the spoofer must sit on-path. Here
	// we verify the spoofed source is what the server observes.
	e := newEnv(Config{})
	accepted := make(map[ipaddr.Addr]bool)
	if _, err := e.server.Listen(443, func(c *Conn) { accepted[c.Remote().Addr] = true }); err != nil {
		t.Fatal(err)
	}
	fake := ipaddr.MustParse("192.168.1.10") // the client's own address
	e.client.DialFrom(Endpoint{Addr: fake, Port: 50000}, Endpoint{Addr: e.serverAddr(), Port: 443})
	e.clk.RunFor(time.Second)
	if !accepted[fake] {
		t.Fatalf("server saw remotes %v, want %v", accepted, fake)
	}
}

func TestSegmentMarshalRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 60000 {
			return true
		}
		s := Segment{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack,
			Flags:   Flags(flags),
			Payload: payload,
		}
		got, err := UnmarshalSegment(s.Marshal())
		if err != nil {
			return false
		}
		return got.SrcPort == s.SrcPort && got.DstPort == s.DstPort &&
			got.Seq == s.Seq && got.Ack == s.Ack && got.Flags == s.Flags &&
			bytes.Equal(got.Payload, s.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqComparisonWraparound(t *testing.T) {
	if !seqLT(0xffffff00, 0x10) {
		t.Fatal("wraparound compare failed: 0xffffff00 should be before 0x10")
	}
	if seqGT(0xffffff00, 0x10) {
		t.Fatal("wraparound greater-than failed")
	}
	if !seqLEQ(5, 5) {
		t.Fatal("seqLEQ equal failed")
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SA" {
		t.Fatalf("flags string = %q, want SA", got)
	}
	if got := Flags(0).String(); got != "-" {
		t.Fatalf("empty flags = %q", got)
	}
}

// Property: any payload stream sent over a lossless link arrives intact and
// in order regardless of chunking.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(chunks [][]byte) bool {
		e := newEnv(Config{MSS: 64})
		var srv *Conn
		if _, err := e.server.Listen(443, func(c *Conn) { srv = c }); err != nil {
			return false
		}
		cli := e.client.Dial(Endpoint{Addr: e.serverAddr(), Port: 443})
		e.clk.RunFor(time.Second)
		if srv == nil || cli.State() != StateEstablished {
			return false
		}
		var want, got bytes.Buffer
		srv.OnData = func(b []byte) { got.Write(b) }
		for _, ch := range chunks {
			if len(ch) > 500 {
				ch = ch[:500]
			}
			want.Write(ch)
			if err := cli.Send(ch); err != nil {
				return false
			}
		}
		e.clk.RunFor(time.Minute)
		return bytes.Equal(want.Bytes(), got.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSRTTTracksNetworkLatency(t *testing.T) {
	e := newEnv(Config{})
	cli, srv := e.connect(t, 443)
	srv.OnData = func([]byte) {}
	for i := 0; i < 20; i++ {
		if err := cli.Send([]byte("sample")); err != nil {
			t.Fatal(err)
		}
		e.clk.RunFor(time.Second)
	}
	srtt, n := cli.SRTT()
	if n < 20 {
		t.Fatalf("samples = %d, want >= 20", n)
	}
	// One LAN hop each way at 1ms.
	if srtt < time.Millisecond || srtt > 4*time.Millisecond {
		t.Fatalf("srtt = %v, want about 2ms", srtt)
	}
}

func TestSRTTIgnoresRetransmittedSegments(t *testing.T) {
	// Karn's rule: a segment that was retransmitted contributes no sample,
	// so a long outage cannot poison the estimate.
	e := newEnv(Config{RTOInitial: 50 * time.Millisecond})
	cli, srv := e.connect(t, 443)
	srv.OnData = func([]byte) {}
	for i := 0; i < 5; i++ {
		_ = cli.Send([]byte("x"))
		e.clk.RunFor(time.Second)
	}
	before, nBefore := cli.SRTT()
	srvNIC := e.server.ip.Ifaces()[0].NIC()
	srvNIC.SetDown(true)
	_ = cli.Send([]byte("lost"))
	e.clk.RunFor(200 * time.Millisecond)
	srvNIC.SetDown(false)
	e.clk.RunFor(2 * time.Second)
	after, nAfter := cli.SRTT()
	if nAfter != nBefore {
		t.Fatalf("retransmitted segment produced a sample: %d -> %d", nBefore, nAfter)
	}
	if after != before {
		t.Fatalf("srtt changed across a retransmission: %v -> %v", before, after)
	}
}

func TestStreamSurvivesLossyLink(t *testing.T) {
	// Failure injection: 20% frame loss; retransmission must still deliver
	// the stream intact and in order.
	e := newEnv(Config{RTOInitial: 100 * time.Millisecond, MaxRetries: 10, MSS: 200})
	e.seg.SetLossRate(0)
	cli, srv := e.connect(t, 443)
	var got bytes.Buffer
	srv.OnData = func(b []byte) { got.Write(b) }
	e.seg.SetLossRate(0.2)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := cli.Send(data); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(5 * time.Minute)
	e.seg.SetLossRate(0)
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d/%d bytes intact=%v", got.Len(), len(data), bytes.Equal(got.Bytes(), data))
	}
	if cli.Stats().Retransmits == 0 {
		t.Fatal("a 20%-loss link should force retransmissions")
	}
}
