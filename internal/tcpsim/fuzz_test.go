package tcpsim

import "testing"

// FuzzUnmarshalSegment: arbitrary bytes must never panic the segment
// decoder.
func FuzzUnmarshalSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add(Segment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagSYN}.Marshal())
	f.Add(Segment{Flags: FlagACK, Payload: []byte("data")}.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSegment(data)
		if err != nil {
			return
		}
		round, err := UnmarshalSegment(s.Marshal())
		if err != nil || round.Seq != s.Seq || round.Flags != s.Flags {
			t.Fatalf("round trip failed: %+v -> %+v (%v)", s, round, err)
		}
	})
}
