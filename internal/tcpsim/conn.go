package tcpsim

import (
	"errors"
	"fmt"

	"repro/internal/simtime"
)

// State is a TCP connection state.
type State int

// Connection states (TIME_WAIT is elided: closed connections are removed
// immediately, which is safe under simulated, loss-free reordering).
const (
	StateSynSent State = iota + 1
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateClosing
	StateLastAck
	StateClosed
)

// String names the state for traces.
func (s State) String() string {
	switch s {
	case StateSynSent:
		return "SYN_SENT"
	case StateSynRcvd:
		return "SYN_RCVD"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait1:
		return "FIN_WAIT_1"
	case StateFinWait2:
		return "FIN_WAIT_2"
	case StateClosing:
		return "CLOSING"
	case StateLastAck:
		return "LAST_ACK"
	case StateClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors delivered to OnClose. A nil OnClose error means graceful close.
var (
	// ErrTimeout reports that retransmission retries were exhausted — the
	// alarm the phantom-delay attack is designed never to trigger.
	ErrTimeout = errors.New("tcpsim: retransmission timeout")
	// ErrKeepAliveTimeout reports that keep-alive probes went unanswered.
	ErrKeepAliveTimeout = errors.New("tcpsim: keep-alive timeout")
	// ErrReset reports an inbound RST.
	ErrReset = errors.New("tcpsim: connection reset by peer")
	// ErrClosed reports use of a closed or closing connection.
	ErrClosed = errors.New("tcpsim: connection closed")
)

// ConnStats counts per-connection activity. The paper distinguishes its
// attack from packet dropping precisely by these counters: a hijacked
// connection shows zero retransmissions and zero failed probes.
type ConnStats struct {
	SegmentsSent     uint64
	SegmentsReceived uint64
	BytesSent        uint64
	BytesReceived    uint64
	Retransmits      uint64
	ProbesSent       uint64
}

type rtxEntry struct {
	seq     uint32
	flags   Flags
	payload []byte
	// sentAt timestamps the first transmission for RTT sampling; zero
	// until transmitted, and ignored after a retransmission (Karn's rule).
	sentAt      simtime.Time
	retransmits bool
}

func (e rtxEntry) seqLen() uint32 {
	n := uint32(len(e.payload))
	if e.flags.Has(FlagSYN) {
		n++
	}
	if e.flags.Has(FlagFIN) {
		n++
	}
	return n
}

// Conn is one TCP connection. All callbacks run on the simulation's event
// loop.
type Conn struct {
	stack  *Stack
	local  Endpoint
	remote Endpoint
	state  State

	iss    uint32
	sndUna uint32
	sndNxt uint32
	rcvNxt uint32

	rtxq     []rtxEntry
	rtxTimer *simtime.Timer
	rto      simtime.Time
	retries  int

	ooo map[uint32]Segment

	srtt       simtime.Time
	rttSamples int

	kaTimer      *simtime.Timer
	kaProbes     int
	lastActivity simtime.Time

	appClosed bool
	finRcvd   bool
	closedErr error
	notified  bool

	stats ConnStats

	// OnEstablished fires when the three-way handshake completes.
	OnEstablished func()
	// OnData delivers in-order stream bytes.
	OnData func([]byte)
	// OnClose fires exactly once when the connection ends: nil for a
	// graceful close, otherwise one of the Err values above.
	OnClose func(error)
}

// reinit returns a pooled connection to its zero protocol state, keeping
// the allocations a connection reuses across lives: its stack binding, its
// two timers (their closures bind this very Conn and the stack's clock),
// the retransmission queue's backing array and the out-of-order map. A
// revived connection behaves byte-identically to a fresh one.
func (c *Conn) reinit() {
	c.state = 0
	c.rcvNxt = 0
	c.retries = 0
	c.srtt, c.rttSamples = 0, 0
	c.kaProbes = 0
	c.lastActivity = 0
	c.appClosed, c.finRcvd, c.notified = false, false, false
	c.closedErr = nil
	c.stats = ConnStats{}
	c.OnEstablished, c.OnData, c.OnClose = nil, nil, nil
}

// Local returns the connection's local endpoint.
func (c *Conn) Local() Endpoint { return c.local }

// Clock returns the virtual clock of the stack the connection runs on, so
// layers above TCP (tlssim) can timestamp trace events.
func (c *Conn) Clock() *simtime.Clock { return c.stack.clk }

// trace emits a "tcpsim" trace event when the stack is trace-instrumented.
// The guard keeps the detail strings unbuilt on the common (off) path.
func (c *Conn) trace(event, detail string, value int64) {
	if c.stack.met.trace == nil {
		return
	}
	c.stack.met.trace.Emit(c.stack.clk.Now(), "tcpsim", event, detail, value)
}

// Remote returns the connection's remote endpoint.
func (c *Conn) Remote() Endpoint { return c.remote }

// State returns the connection's current state.
func (c *Conn) State() State { return c.state }

// Stats returns a copy of the connection's counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// SRTT returns the smoothed round-trip time (EWMA over first-transmission
// acknowledgements, Karn's rule applied) and the number of samples behind
// it. A man-in-the-middle that terminates TCP nearby collapses this value
// — the signal the defense package's RTT monitor watches.
func (c *Conn) SRTT() (simtime.Time, int) { return c.srtt, c.rttSamples }

func (c *Conn) sampleRTT(sample simtime.Time) {
	c.rttSamples++
	if c.rttSamples == 1 {
		c.srtt = sample
		return
	}
	// Classic RFC 6298 smoothing: srtt <- 7/8 srtt + 1/8 sample.
	c.srtt = (7*c.srtt + sample) / 8
}

// Send queues stream data for transmission, segmenting at the MSS.
func (c *Conn) Send(data []byte) error {
	if c.appClosed || c.state == StateClosed {
		return ErrClosed
	}
	if c.state != StateEstablished && c.state != StateSynSent && c.state != StateSynRcvd {
		return ErrClosed
	}
	mss := c.stack.cfg.MSS
	for len(data) > 0 {
		n := min(len(data), mss)
		// The chunk comes from the stack's pool and returns to it when its
		// retransmission-queue entry retires — the copy detaches the queued
		// bytes from the caller's buffer without a per-segment allocation.
		chunk := c.stack.getChunk(n)
		copy(chunk, data[:n])
		data = data[n:]
		c.queueAndSend(0, chunk)
	}
	return nil
}

// Close performs a graceful close: queued data is still delivered, then a
// FIN is sent.
func (c *Conn) Close() {
	if c.appClosed || c.state == StateClosed {
		return
	}
	c.appClosed = true
	switch c.state {
	case StateEstablished, StateSynRcvd:
		c.state = StateFinWait1
		c.queueAndSend(FlagFIN, nil)
	case StateSynSent:
		c.teardown(nil)
	default:
	}
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.transmitRaw(Segment{Seq: c.sndNxt, Ack: c.rcvNxt, Flags: FlagRST | FlagACK})
	c.teardown(ErrClosed)
}

// queueAndSend appends a retransmittable segment (SYN, FIN or data) to the
// retransmission queue and transmits it. Data queued before the handshake
// completes is held back and flushed on establishment.
func (c *Conn) queueAndSend(flags Flags, payload []byte) {
	e := rtxEntry{seq: c.sndNxt, flags: flags, payload: payload}
	c.sndNxt += e.seqLen()
	c.rtxq = append(c.rtxq, e)
	handshaking := c.state == StateSynSent || c.state == StateSynRcvd
	if !handshaking || flags.Has(FlagSYN) {
		c.rtxq[len(c.rtxq)-1].sentAt = c.stack.clk.Now()
		c.transmitEntry(e, false)
		c.armRTO()
	}
}

// flushPending transmits everything still queued when the handshake
// completes (data accepted during SYN_SENT/SYN_RCVD).
func (c *Conn) flushPending() {
	for i := range c.rtxq {
		if c.rtxq[i].sentAt == 0 {
			c.rtxq[i].sentAt = c.stack.clk.Now()
			c.transmitEntry(c.rtxq[i], false)
		}
	}
	c.armRTO()
}

func (c *Conn) transmitEntry(e rtxEntry, isRetransmit bool) {
	flags := e.flags
	// Everything after the initial SYN carries an ACK.
	if !(flags.Has(FlagSYN) && c.state == StateSynSent) {
		flags |= FlagACK
	}
	seg := Segment{Seq: e.seq, Ack: c.rcvNxt, Flags: flags, Payload: e.payload}
	if isRetransmit {
		c.stats.Retransmits++
		c.stack.met.retransmits.Inc()
	}
	c.transmitRaw(seg)
}

func (c *Conn) transmitRaw(seg Segment) {
	c.stats.SegmentsSent++
	c.stats.BytesSent += uint64(len(seg.Payload))
	c.stack.met.segmentsSent.Inc()
	c.touch()
	c.stack.sendRaw(c.local, c.remote, seg)
}

func (c *Conn) sendAck() {
	// A bare ACK from an address the stack does not own is the attacker's
	// split connection acknowledging on a victim's behalf — the spoofed
	// keep-alive answer that keeps every timer quiet during a hold.
	if c.stack.met.trace != nil && c.local.Addr != c.stack.ip.Addr() {
		c.trace("spoofed_ack", c.stack.met.host, int64(c.remote.Port))
	}
	c.transmitRaw(Segment{Seq: c.sndNxt, Ack: c.rcvNxt, Flags: FlagACK})
}

// --- retransmission timer ---

// armRTO (re)arms the retransmission timer. The timer is allocated once
// per connection and rearmed in place — this path runs on every ACK, and
// a per-ACK allocation is exactly the scheduler churn fleet-scale
// campaigns choke on.
func (c *Conn) armRTO() {
	if len(c.rtxq) == 0 {
		return
	}
	if c.rtxTimer == nil {
		c.rtxTimer = c.stack.clk.NewTimer(c.onRTO)
	}
	c.rtxTimer.Reset(c.rto)
}

func (c *Conn) stopRTO() {
	c.rtxTimer.Stop()
	if c.retries > 0 {
		// An ACK made progress while backoff was in flight: the exponential
		// backoff state is abandoned — the alarm the phantom-delay attack
		// keeps from ever arming.
		c.stack.met.backoffResets.Inc()
	}
	c.rto = c.stack.cfg.RTOInitial
	c.retries = 0
}

func (c *Conn) onRTO() {
	if len(c.rtxq) == 0 || c.state == StateClosed {
		return
	}
	c.retries++
	if c.retries > c.stack.cfg.MaxRetries {
		c.teardown(ErrTimeout)
		return
	}
	c.trace("rto_fired", c.stack.met.host, int64(c.retries))
	c.rtxq[0].retransmits = true
	c.transmitEntry(c.rtxq[0], true)
	c.rto *= 2
	if c.rto > c.stack.cfg.RTOMax {
		c.rto = c.stack.cfg.RTOMax
	}
	c.rtxTimer.Reset(c.rto)
}

// --- keep-alive timer ---

func (c *Conn) touch() {
	c.lastActivity = c.stack.clk.Now()
}

func (c *Conn) armKeepAlive() {
	if !c.stack.cfg.EnableKeepAlive {
		return
	}
	if c.kaTimer == nil {
		c.kaTimer = c.stack.clk.NewTimer(c.onKeepAlive)
	}
	c.kaProbes = 0
	c.kaTimer.Reset(c.stack.cfg.KeepAliveIdle)
}

func (c *Conn) onKeepAlive() {
	if c.state != StateEstablished {
		return
	}
	idle := c.stack.clk.Now() - c.lastActivity
	if idle < c.stack.cfg.KeepAliveIdle && c.kaProbes == 0 {
		// Activity happened since arming; re-arm for the remainder.
		c.kaTimer.Reset(c.stack.cfg.KeepAliveIdle - idle)
		return
	}
	if c.kaProbes >= c.stack.cfg.KeepAliveProbes {
		c.teardown(ErrKeepAliveTimeout)
		return
	}
	c.kaProbes++
	c.stats.ProbesSent++
	c.stack.met.kaProbes.Inc()
	c.trace("ka_probe", c.stack.met.host, int64(c.kaProbes))
	// Probe: one byte before snd.nxt, empty payload; elicits a bare ACK.
	c.stack.sendRaw(c.local, c.remote, Segment{Seq: c.sndNxt - 1, Ack: c.rcvNxt, Flags: FlagACK})
	c.stats.SegmentsSent++
	c.stack.met.segmentsSent.Inc()
	c.kaTimer.Reset(c.stack.cfg.KeepAliveInterval)
}

// keepAliveSatisfied pushes the idle deadline back on every received
// segment — the other per-packet rearm the phantom-delay attack's spoofed
// ACKs keep exercising for hours of virtual time.
func (c *Conn) keepAliveSatisfied() {
	if !c.stack.cfg.EnableKeepAlive {
		return
	}
	c.kaProbes = 0
	if c.state != StateEstablished {
		c.kaTimer.Stop()
		return
	}
	if c.kaTimer == nil {
		c.kaTimer = c.stack.clk.NewTimer(c.onKeepAlive)
	}
	c.kaTimer.Reset(c.stack.cfg.KeepAliveIdle)
}

// --- inbound segment processing ---

func (c *Conn) handleSegment(seg Segment) {
	if c.state == StateClosed {
		return
	}
	c.stats.SegmentsReceived++
	c.stats.BytesReceived += uint64(len(seg.Payload))
	c.touch()
	c.keepAliveSatisfied()

	if seg.Flags.Has(FlagRST) {
		c.teardown(ErrReset)
		return
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(FlagSYN|FlagACK) && seg.Ack == c.iss+1 {
			c.rcvNxt = seg.Seq + 1
			c.processAck(seg.Ack)
			c.state = StateEstablished
			c.trace("conn_established", c.stack.met.host, int64(c.remote.Port))
			c.sendAck()
			c.flushPending()
			c.armKeepAlive()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(FlagACK) && seg.Ack == c.iss+1 {
			c.processAck(seg.Ack)
			c.state = StateEstablished
			c.trace("conn_established", c.stack.met.host, int64(c.remote.Port))
			c.flushPending()
			c.armKeepAlive()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			// Fall through to payload processing: the ACK may carry data.
		} else {
			return
		}
	}

	if seg.Flags.Has(FlagACK) {
		c.processAck(seg.Ack)
		if c.state == StateClosed {
			return
		}
	}

	if seg.seqLen() > 0 {
		c.processSequenced(seg)
	} else if seqLT(seg.Seq, c.rcvNxt) {
		// Keep-alive probe or stale duplicate: answer so the sender's
		// liveness check passes.
		c.sendAck()
	}
}

func (c *Conn) processAck(ack uint32) {
	if seqGT(ack, c.sndUna) {
		c.sndUna = ack
	}
	progressed := false
	for len(c.rtxq) > 0 {
		e := c.rtxq[0]
		if !seqLEQ(e.seq+e.seqLen(), ack) {
			break
		}
		if !e.retransmits && e.sentAt > 0 {
			c.sampleRTT(c.stack.clk.Now() - e.sentAt)
		}
		c.rtxq[0].payload = nil
		c.rtxq = c.rtxq[1:]
		if len(e.payload) > 0 {
			c.stack.putChunk(e.payload)
		}
		progressed = true
	}
	if !progressed {
		return
	}
	c.stopRTO()
	c.armRTO()
	if len(c.rtxq) != 0 {
		return
	}
	// All sent data (including any FIN) is acknowledged.
	switch c.state {
	case StateFinWait1:
		c.state = StateFinWait2
	case StateClosing, StateLastAck:
		c.teardown(nil)
	}
}

func (c *Conn) processSequenced(seg Segment) {
	switch {
	case seg.Seq == c.rcvNxt:
		c.acceptInOrder(seg)
		c.drainOOO()
		c.sendAck()
	case seqGT(seg.Seq, c.rcvNxt):
		if c.ooo == nil {
			c.ooo = make(map[uint32]Segment)
		}
		// A queued segment outlives the delivery that carried it, and frame
		// buffers recycle as soon as delivery returns — detach the payload.
		seg.Payload = append([]byte(nil), seg.Payload...)
		c.ooo[seg.Seq] = seg
		c.stack.met.oooDepth.Set(int64(len(c.ooo)))
		c.sendAck() // duplicate ACK for the gap
	default:
		// Full duplicate of something already received.
		c.sendAck()
	}
}

func (c *Conn) acceptInOrder(seg Segment) {
	if len(seg.Payload) > 0 {
		c.rcvNxt += uint32(len(seg.Payload))
		if c.OnData != nil {
			c.OnData(seg.Payload)
		}
	}
	if seg.Flags.Has(FlagFIN) {
		c.rcvNxt++
		c.handlePeerFin()
	}
}

func (c *Conn) drainOOO() {
	for {
		seg, ok := c.ooo[c.rcvNxt]
		if !ok {
			if c.ooo != nil {
				c.stack.met.oooDepth.Set(int64(len(c.ooo)))
			}
			return
		}
		delete(c.ooo, c.rcvNxt)
		c.acceptInOrder(seg)
	}
}

func (c *Conn) handlePeerFin() {
	if c.finRcvd {
		return
	}
	c.finRcvd = true
	switch c.state {
	case StateEstablished, StateSynRcvd:
		// Auto-close: acknowledge and send our own FIN. The simulation's
		// applications treat the stream as a whole-session transport, so a
		// peer close always ends the session.
		c.state = StateLastAck
		c.appClosed = true
		c.queueAndSend(FlagFIN, nil)
	case StateFinWait1:
		c.state = StateClosing
	case StateFinWait2:
		c.sendAck()
		c.teardown(nil)
	}
}

func (c *Conn) teardown(err error) {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.closedErr = err
	c.rtxTimer.Stop()
	c.kaTimer.Stop()
	// Unacknowledged chunks can no longer be (re)transmitted: recycle them.
	// The queue truncates instead of dropping to nil so a pooled connection
	// keeps its backing array for the next life.
	for i := range c.rtxq {
		if len(c.rtxq[i].payload) > 0 {
			c.stack.putChunk(c.rtxq[i].payload)
		}
		c.rtxq[i] = rtxEntry{}
	}
	c.rtxq = c.rtxq[:0]
	c.stack.removeConn(c)
	c.stack.met.connClosed(err)
	if c.stack.met.trace != nil {
		c.trace("conn_closed", c.stack.met.host+":"+closeCause(err), int64(c.remote.Port))
	}
	if !c.notified && c.OnClose != nil {
		c.notified = true
		c.OnClose(err)
	}
}
