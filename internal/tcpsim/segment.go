// Package tcpsim implements a TCP-like transport over ipnet with the timer
// machinery the paper's attack exploits: a retransmission timer with
// exponential backoff and a retry limit, and a keep-alive timer that probes
// idle connections. Both notify the application of a timeout by aborting
// the connection, which is exactly the alarm the phantom-delay attack must
// (and does) avoid triggering.
package tcpsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ipaddr"
)

// Flags is the TCP control-flag bitset.
type Flags uint8

// Control flags. Only the four the simulation needs are defined.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Has reports whether all flags in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// String renders the flag set for traces.
func (f Flags) String() string {
	s := ""
	if f.Has(FlagSYN) {
		s += "S"
	}
	if f.Has(FlagACK) {
		s += "A"
	}
	if f.Has(FlagFIN) {
		s += "F"
	}
	if f.Has(FlagRST) {
		s += "R"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Endpoint is one side of a connection.
type Endpoint struct {
	Addr ipaddr.Addr
	Port uint16
}

// String renders addr:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// IsZero reports whether the endpoint is unset.
func (e Endpoint) IsZero() bool { return e.Addr.IsZero() && e.Port == 0 }

// Segment is a TCP segment. Src/Dst addresses travel in the IP header; the
// ports, sequence numbers and flags are marshalled into the payload.
type Segment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   Flags
	Payload []byte
}

// headerLen is the fixed marshalled header size.
const headerLen = 15

// Marshal encodes the segment for an IP payload.
func (s Segment) Marshal() []byte {
	return s.AppendTo(nil)
}

// AppendTo encodes the segment onto b (usually a reusable scratch buffer)
// and returns the extended slice.
func (s Segment) AppendTo(b []byte) []byte {
	n := len(b)
	total := n + headerLen + len(s.Payload)
	if cap(b) < total {
		nb := make([]byte, total)
		copy(nb, b)
		b = nb
	} else {
		b = b[:total]
	}
	out := b[n:]
	binary.BigEndian.PutUint16(out[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], s.DstPort)
	binary.BigEndian.PutUint32(out[4:8], s.Seq)
	binary.BigEndian.PutUint32(out[8:12], s.Ack)
	out[12] = byte(s.Flags)
	binary.BigEndian.PutUint16(out[13:15], uint16(len(s.Payload)))
	copy(out[headerLen:], s.Payload)
	return b
}

// ErrShortSegment reports a truncated TCP payload.
var ErrShortSegment = errors.New("tcpsim: short segment")

// UnmarshalSegment decodes an IP payload into a Segment.
func UnmarshalSegment(b []byte) (Segment, error) {
	if len(b) < headerLen {
		return Segment{}, ErrShortSegment
	}
	n := int(binary.BigEndian.Uint16(b[13:15]))
	if len(b) < headerLen+n {
		return Segment{}, ErrShortSegment
	}
	return Segment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   Flags(b[12]),
		Payload: b[headerLen : headerLen+n],
	}, nil
}

// Len returns the marshalled size in bytes.
func (s Segment) Len() int { return headerLen + len(s.Payload) }

// seqLen is the sequence space the segment occupies (SYN and FIN each
// consume one sequence number).
func (s Segment) seqLen() uint32 {
	n := uint32(len(s.Payload))
	if s.Flags.Has(FlagSYN) {
		n++
	}
	if s.Flags.Has(FlagFIN) {
		n++
	}
	return n
}

// Sequence-space comparisons with wraparound.
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
