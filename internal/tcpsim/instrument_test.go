package tcpsim

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStackMetricsCountTraffic(t *testing.T) {
	e := newEnv(Config{})
	reg := obs.NewRegistry()
	e.client.Instrument(reg, "client")
	e.server.Instrument(reg, "server")

	cli, srv := e.connect(t, 443)
	if err := cli.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	cli.Close()
	e.clk.RunFor(time.Second)

	snap := reg.Snapshot()
	lc, ls := obs.L("host", "client"), obs.L("host", "server")
	if got := snap.Counter("tcpsim_conns_opened_total", lc); got != 1 {
		t.Fatalf("client conns_opened = %d, want 1", got)
	}
	if got := snap.Counter("tcpsim_conns_opened_total", ls); got != 1 {
		t.Fatalf("server conns_opened = %d, want 1", got)
	}
	// The obs counter and the per-conn stats agree.
	if got := snap.Counter("tcpsim_segments_sent_total", lc); got != cli.Stats().SegmentsSent {
		t.Fatalf("client segments_sent = %d, conn stats say %d", got, cli.Stats().SegmentsSent)
	}
	if got := snap.Counter("tcpsim_retransmits_total", lc); got != 0 {
		t.Fatalf("retransmits on a clean link = %d, want 0", got)
	}
	for _, host := range []obs.Label{lc, ls} {
		if got := snap.Counter("tcpsim_conns_closed_total", host, obs.L("cause", "graceful")); got != 1 {
			t.Fatalf("graceful closes for %v = %d, want 1", host, got)
		}
	}
	if srv.State() != StateClosed {
		t.Fatalf("server state = %v", srv.State())
	}
}

func TestRetransmitAndBackoffResetMetrics(t *testing.T) {
	e := newEnv(Config{RTOInitial: 100 * time.Millisecond})
	reg := obs.NewRegistry()
	e.client.Instrument(reg, "client")
	cli, _ := e.connect(t, 443)

	// Lose every frame so the first data segment must be retransmitted,
	// then heal the link and let the ACK reset the backoff state.
	e.seg.SetLossRate(1)
	if err := cli.Send([]byte("lossy")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(250 * time.Millisecond) // ~2 RTO firings
	e.seg.SetLossRate(0)
	e.clk.RunFor(time.Second)

	snap := reg.Snapshot()
	l := obs.L("host", "client")
	if got := snap.Counter("tcpsim_retransmits_total", l); got == 0 {
		t.Fatal("expected retransmissions under total loss")
	}
	if got := snap.Counter("tcpsim_backoff_resets_total", l); got != 1 {
		t.Fatalf("backoff_resets = %d, want 1", got)
	}
}

func TestTimeoutCauseMetric(t *testing.T) {
	e := newEnv(Config{RTOInitial: 50 * time.Millisecond, MaxRetries: 2})
	reg := obs.NewRegistry()
	e.client.Instrument(reg, "client")
	cli, _ := e.connect(t, 443)

	e.seg.SetLossRate(1)
	var closeErr error
	cli.OnClose = func(err error) { closeErr = err }
	if err := cli.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(10 * time.Second)

	if closeErr != ErrTimeout {
		t.Fatalf("close error = %v, want ErrTimeout", closeErr)
	}
	got := reg.Snapshot().Counter("tcpsim_conns_closed_total",
		obs.L("host", "client"), obs.L("cause", "timeout"))
	if got != 1 {
		t.Fatalf("timeout closes = %d, want 1", got)
	}
}

func TestKeepAliveProbeMetric(t *testing.T) {
	cfg := Config{
		EnableKeepAlive:   true,
		KeepAliveIdle:     time.Second,
		KeepAliveInterval: 500 * time.Millisecond,
		KeepAliveProbes:   3,
	}
	e := newEnv(cfg)
	reg := obs.NewRegistry()
	e.client.Instrument(reg, "client")
	cli, _ := e.connect(t, 443)

	e.clk.RunFor(2 * time.Second) // idle past KeepAliveIdle
	snap := reg.Snapshot()
	l := obs.L("host", "client")
	if got := snap.Counter("tcpsim_keepalive_probes_total", l); got == 0 {
		t.Fatal("expected keep-alive probes after idle period")
	}
	if got := snap.Counter("tcpsim_keepalive_probes_total", l); got != cli.Stats().ProbesSent {
		t.Fatalf("probe metric %d != conn stats %d", got, cli.Stats().ProbesSent)
	}
}

func TestUninstrumentedStackUnaffected(t *testing.T) {
	e := newEnv(Config{})
	cli, _ := e.connect(t, 443)
	if err := cli.Send([]byte("no registry attached")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if cli.Stats().SegmentsSent == 0 {
		t.Fatal("conn stats must work without a registry")
	}
}
