package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// floatSumLimbs sizes the fixed-point accumulator. A finite float64's
// mantissa occupies bit positions 0 (the least subnormal, 2^-1074) through
// 2097 (the top bit of the largest finite value, 2^1023) of a fixed-point
// number scaled by 2^-1074 — 2098 bits. One extra limb of headroom lets
// ~2^63 maximal values accumulate before the signed total could wrap, far
// beyond any real workload: 34 limbs, 2176 bits.
const floatSumLimbs = 34

// FloatSum is an exact float64 accumulator: the running sum is held as a
// 2176-bit two's-complement fixed-point integer (scale 2^-1074) wide
// enough to represent every finite float64 — and every sum of them —
// without rounding. Because each Add lands exactly, accumulation is
// associative and commutative: any grouping or interleaving of the same
// additions produces the same state, and Value rounds the exact real sum
// to the nearest float64 exactly once.
//
// That is the property the plain float64 fold lacks (IEEE addition rounds
// per step, so (a+b)+(c+d) ≠ ((a+b)+c)+d in general) and the one that
// lets independently-computed partial aggregates — checkpoint resumes,
// per-process shard ranges — merge byte-identically to a single serial
// fold. Merge partial sums with AddSum; it is exact limb addition.
//
// The zero value is an empty sum. FloatSum is a plain value: copy it to
// snapshot it. Add panics on NaN or ±Inf — an exact sum of non-finite
// values is meaningless, and the JSON encoding could not carry them
// anyway.
type FloatSum struct {
	limbs [floatSumLimbs]uint64
}

// Add folds one value into the sum, exactly.
func (s *FloatSum) Add(v float64) {
	if v == 0 {
		return // ±0 contributes nothing (and keeps the zero state canonical)
	}
	b := math.Float64bits(v)
	exp := int(b>>52) & 0x7ff
	mant := b & (1<<52 - 1)
	if exp == 0x7ff {
		panic(fmt.Sprintf("obs: FloatSum cannot accumulate non-finite value %v", v))
	}
	// v = mant × 2^(exp-1075) for normals (implicit leading bit restored),
	// mant × 2^-1074 for subnormals; off is the fixed-point bit position of
	// mant's least-significant bit.
	off := 0
	if exp != 0 {
		mant |= 1 << 52
		off = exp - 1
	}
	limb, shift := off/64, uint(off%64)
	lo := mant << shift
	var hi uint64
	if shift != 0 {
		hi = mant >> (64 - shift)
	}
	if b>>63 == 0 {
		s.addAt(limb, lo, hi)
	} else {
		s.subAt(limb, lo, hi)
	}
}

func (s *FloatSum) addAt(limb int, lo, hi uint64) {
	var c uint64
	s.limbs[limb], c = bits.Add64(s.limbs[limb], lo, 0)
	s.limbs[limb+1], c = bits.Add64(s.limbs[limb+1], hi, c)
	for i := limb + 2; i < floatSumLimbs && c != 0; i++ {
		s.limbs[i], c = bits.Add64(s.limbs[i], 0, c)
	}
}

func (s *FloatSum) subAt(limb int, lo, hi uint64) {
	var bw uint64
	s.limbs[limb], bw = bits.Sub64(s.limbs[limb], lo, 0)
	s.limbs[limb+1], bw = bits.Sub64(s.limbs[limb+1], hi, bw)
	for i := limb + 2; i < floatSumLimbs && bw != 0; i++ {
		s.limbs[i], bw = bits.Sub64(s.limbs[i], 0, bw)
	}
}

// AddSum folds another exact sum into this one — plain two's-complement
// limb addition, so merging partial sums is itself exact and associative.
func (s *FloatSum) AddSum(o *FloatSum) {
	var c uint64
	for i := range s.limbs {
		s.limbs[i], c = bits.Add64(s.limbs[i], o.limbs[i], c)
	}
}

// IsZero reports whether the sum is exactly zero.
func (s *FloatSum) IsZero() bool {
	for _, l := range s.limbs {
		if l != 0 {
			return false
		}
	}
	return true
}

// Value rounds the exact sum to the nearest float64 (ties to even). The
// result depends only on the exact real value accumulated, never on the
// order or grouping of the additions that produced it.
func (s *FloatSum) Value() float64 {
	m := s.limbs
	neg := m[floatSumLimbs-1]>>63 != 0
	if neg {
		c := uint64(1)
		for i := range m {
			m[i], c = bits.Add64(^m[i], 0, c)
		}
	}
	top := -1
	for i := floatSumLimbs - 1; i >= 0; i-- {
		if m[i] != 0 {
			top = i
			break
		}
	}
	if top < 0 {
		return 0
	}
	p := top*64 + bits.Len64(m[top]) - 1 // highest set bit of the magnitude
	var v float64
	if p <= 52 {
		// The whole magnitude fits a float64 mantissa at the subnormal
		// scale: exact, no rounding.
		v = math.Ldexp(float64(m[0]), -1074)
	} else {
		mant := window53(&m, p-52)
		round := bit(&m, p-53)
		if round != 0 && (anyBelow(&m, p-53) || mant&1 != 0) {
			mant++
			if mant == 1<<53 {
				mant >>= 1
				p++
			}
		}
		v = math.Ldexp(float64(mant), p-52-1074)
	}
	if neg {
		v = -v
	}
	return v
}

// window53 extracts the 53 bits starting at bit position from.
func window53(m *[floatSumLimbs]uint64, from int) uint64 {
	limb, shift := from/64, uint(from%64)
	w := m[limb] >> shift
	if shift != 0 && limb+1 < floatSumLimbs {
		w |= m[limb+1] << (64 - shift)
	}
	return w & (1<<53 - 1)
}

func bit(m *[floatSumLimbs]uint64, i int) uint64 {
	return m[i/64] >> (uint(i) % 64) & 1
}

// anyBelow reports whether any bit strictly below position k is set.
func anyBelow(m *[floatSumLimbs]uint64, k int) bool {
	limb, shift := k/64, uint(k%64)
	for i := 0; i < limb; i++ {
		if m[i] != 0 {
			return true
		}
	}
	return m[limb]&(1<<shift-1) != 0
}

// MarshalJSON encodes the sum as its little-endian limb array with
// trailing zero limbs trimmed — an exact, canonical encoding (a given
// state always produces the same bytes, and round-trips bit-for-bit).
func (s FloatSum) MarshalJSON() ([]byte, error) {
	n := floatSumLimbs
	for n > 0 && s.limbs[n-1] == 0 {
		n--
	}
	return json.Marshal(s.limbs[:n])
}

// UnmarshalJSON decodes a limb array, zero-filling the trimmed tail.
func (s *FloatSum) UnmarshalJSON(data []byte) error {
	var limbs []uint64
	if err := json.Unmarshal(data, &limbs); err != nil {
		return err
	}
	if len(limbs) > floatSumLimbs {
		return fmt.Errorf("obs: FloatSum encoding has %d limbs, max %d", len(limbs), floatSumLimbs)
	}
	*s = FloatSum{}
	copy(s.limbs[:], limbs)
	return nil
}
