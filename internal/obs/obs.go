// Package obs is the simulator's observability layer: a zero-dependency
// metrics registry (counters, gauges with high-water marks, histograms with
// fixed bucket boundaries) plus a lightweight event-trace ring buffer.
//
// The package is designed for the single-threaded simtime world: metric
// handles are plain structs and mutation is a direct field update — no
// locks, no atomics on the hot path. A Registry therefore belongs to
// exactly one simulation (one goroutine). The synchronization boundary is
// Snapshot: the owning goroutine takes a value-copy Snapshot after its run,
// and snapshots from many independent runs (the parallel table runner's
// workers) are merged with Merge, which is safe to call from any goroutine
// because snapshots are plain values.
//
// Every handle method is nil-receiver safe, so instrumented components pay
// a single predictable branch when no registry is attached.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

func labelKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// Counter is a monotonically increasing count.
type Counter struct {
	name   string
	labels []Label
	v      uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value that also tracks its high-water mark.
type Gauge struct {
	name   string
	labels []Label
	v      int64
	max    int64
}

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the current value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 on a nil handle).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-boundary histogram. Bounds are upper bounds in
// ascending order; an observation lands in the first bucket whose bound is
// >= the value, or in the implicit +Inf overflow bucket.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// DurationBuckets is a general-purpose set of histogram bounds, in seconds,
// spanning sub-millisecond latencies up to multi-hour holds.
var DurationBuckets = []float64{
	0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 900, 3600, 7200,
}

// CountBuckets is a general-purpose set of bounds for event/step counts.
var CountBuckets = []float64{
	1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
}

// Registry owns a simulation's metrics and its trace buffer. The zero
// value is not usable; create one with NewRegistry. A nil *Registry is a
// valid "off" registry: every constructor returns a nil handle and every
// handle method no-ops.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	byKey    map[string]any
	trace    *Trace
}

// NewRegistry creates an empty registry with a default-sized trace buffer.
func NewRegistry() *Registry {
	return &Registry{
		byKey: make(map[string]any),
		trace: NewTrace(DefaultTraceCap),
	}
}

// Counter returns the counter with the given name and labels, creating it
// on first use. Repeated calls with equal name+labels return the same
// handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := labelKey(name, labels)
	if m, ok := r.byKey[k]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as a different metric type", k))
		}
		return c
	}
	c := &Counter{name: name, labels: labels}
	r.byKey[k] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := labelKey(name, labels)
	if m, ok := r.byKey[k]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as a different metric type", k))
		}
		return g
	}
	g := &Gauge{name: name, labels: labels}
	r.byKey[k] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the histogram with the given name, bounds and labels,
// creating it on first use. Bounds must be ascending; they are fixed at
// creation and later calls reuse the original bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := labelKey(name, labels)
	if m, ok := r.byKey[k]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as a different metric type", k))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, labels: labels, bounds: b, counts: make([]uint64, len(b)+1)}
	r.byKey[k] = h
	r.hists = append(r.hists, h)
	return h
}

// Trace returns the registry's trace buffer (nil on a nil registry, which
// Trace methods tolerate).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// SetTraceCapacity replaces the trace buffer with one of the given
// capacity, discarding buffered events. A capacity of 0 disables tracing.
func (r *Registry) SetTraceCapacity(n int) {
	if r == nil {
		return
	}
	r.trace = NewTrace(n)
}

// Snapshot is a value copy of a registry's state at one instant. It is a
// plain value: safe to pass between goroutines, compare with
// reflect.DeepEqual, and encode as JSON.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Trace      []TraceEvent     `json:"trace,omitempty"`
	// TraceEvicted counts stored trace events overwritten by ring-buffer
	// wraparound; TraceDiscarded counts events a disabled trace refused.
	// TraceDropped is their sum, kept for compatibility.
	TraceEvicted   uint64 `json:"traceEvicted,omitempty"`
	TraceDiscarded uint64 `json:"traceDiscarded,omitempty"`
	TraceDropped   uint64 `json:"traceDropped,omitempty"`
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
	Max    int64   `json:"max"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the registry's current state. Metrics are emitted in a
// deterministic order (sorted by name, then labels) so equal runs produce
// byte-identical snapshots.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.Counters = make([]CounterValue, 0, len(r.counters))
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Labels: copyLabels(c.labels), Value: c.v})
	}
	s.Gauges = make([]GaugeValue, 0, len(r.gauges))
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Labels: copyLabels(g.labels), Value: g.v, Max: g.max})
	}
	s.Histograms = make([]HistogramValue, 0, len(r.hists))
	for _, h := range r.hists {
		counts := make([]uint64, len(h.counts))
		copy(counts, h.counts)
		bounds := make([]float64, len(h.bounds))
		copy(bounds, h.bounds)
		s.Histograms = append(s.Histograms, HistogramValue{
			Name: h.name, Labels: copyLabels(h.labels),
			Bounds: bounds, Counts: counts, Sum: h.sum, Count: h.n,
		})
	}
	if r.trace != nil {
		s.Trace = r.trace.Events()
		s.TraceEvicted = r.trace.Evicted()
		s.TraceDiscarded = r.trace.Discarded()
		s.TraceDropped = r.trace.Dropped()
	}
	s.sort()
	return s
}

func copyLabels(ls []Label) []Label {
	if len(ls) == 0 {
		return nil
	}
	out := make([]Label, len(ls))
	copy(out, ls)
	return out
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		return labelKey(s.Counters[i].Name, s.Counters[i].Labels) < labelKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return labelKey(s.Gauges[i].Name, s.Gauges[i].Labels) < labelKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return labelKey(s.Histograms[i].Name, s.Histograms[i].Labels) < labelKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
}

// Counter returns the value of the named counter in the snapshot, or 0.
func (s Snapshot) Counter(name string, labels ...Label) uint64 {
	k := labelKey(name, labels)
	for _, c := range s.Counters {
		if labelKey(c.Name, c.Labels) == k {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge in the snapshot, or a zero value.
func (s Snapshot) Gauge(name string, labels ...Label) GaugeValue {
	k := labelKey(name, labels)
	for _, g := range s.Gauges {
		if labelKey(g.Name, g.Labels) == k {
			return g
		}
	}
	return GaugeValue{Name: name, Labels: labels}
}

// Histogram returns the named histogram in the snapshot and whether it
// exists.
func (s Snapshot) Histogram(name string, labels ...Label) (HistogramValue, bool) {
	k := labelKey(name, labels)
	for _, h := range s.Histograms {
		if labelKey(h.Name, h.Labels) == k {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Families returns the sorted set of metric family names (counter, gauge
// and histogram names without labels) present in the snapshot.
func (s Snapshot) Families() []string {
	seen := make(map[string]bool)
	for _, c := range s.Counters {
		seen[c.Name] = true
	}
	for _, g := range s.Gauges {
		seen[g.Name] = true
	}
	for _, h := range s.Histograms {
		seen[h.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merge combines snapshots from independent runs into one: counters and
// histogram buckets sum, gauge values sum while high-water marks take the
// per-run maximum (a merged queue-depth HWM answers "the deepest any one
// run got"). Histograms with mismatched bounds panic — bounds are part of
// a metric's identity. Traces are concatenated in argument order. Merge
// only touches plain values, so it is safe wherever the snapshots
// themselves were safely produced.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	counters := make(map[string]*CounterValue)
	gauges := make(map[string]*GaugeValue)
	hists := make(map[string]*HistogramValue)
	for _, s := range snaps {
		for _, c := range s.Counters {
			k := labelKey(c.Name, c.Labels)
			if e, ok := counters[k]; ok {
				e.Value += c.Value
			} else {
				cc := c
				cc.Labels = copyLabels(c.Labels)
				counters[k] = &cc
			}
		}
		for _, g := range s.Gauges {
			k := labelKey(g.Name, g.Labels)
			if e, ok := gauges[k]; ok {
				e.Value += g.Value
				if g.Max > e.Max {
					e.Max = g.Max
				}
			} else {
				gg := g
				gg.Labels = copyLabels(g.Labels)
				gauges[k] = &gg
			}
		}
		for _, h := range s.Histograms {
			k := labelKey(h.Name, h.Labels)
			if e, ok := hists[k]; ok {
				if len(e.Bounds) != len(h.Bounds) {
					panic(fmt.Sprintf("obs: merge of histogram %s with mismatched bounds", k))
				}
				for i := range e.Bounds {
					if e.Bounds[i] != h.Bounds[i] {
						panic(fmt.Sprintf("obs: merge of histogram %s with mismatched bounds", k))
					}
				}
				for i := range e.Counts {
					e.Counts[i] += h.Counts[i]
				}
				e.Sum += h.Sum
				e.Count += h.Count
			} else {
				hh := h
				hh.Labels = copyLabels(h.Labels)
				hh.Bounds = append([]float64(nil), h.Bounds...)
				hh.Counts = append([]uint64(nil), h.Counts...)
				hists[k] = &hh
			}
		}
		out.Trace = append(out.Trace, s.Trace...)
		out.TraceEvicted += s.TraceEvicted
		out.TraceDiscarded += s.TraceDiscarded
		out.TraceDropped += s.TraceDropped
	}
	out.Counters = make([]CounterValue, 0, len(counters))
	for _, c := range counters {
		out.Counters = append(out.Counters, *c)
	}
	out.Gauges = make([]GaugeValue, 0, len(gauges))
	for _, g := range gauges {
		out.Gauges = append(out.Gauges, *g)
	}
	out.Histograms = make([]HistogramValue, 0, len(hists))
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	out.sort()
	return out
}
