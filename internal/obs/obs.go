// Package obs is the simulator's observability layer: a zero-dependency
// metrics registry (counters, gauges with high-water marks, histograms with
// fixed bucket boundaries) plus a lightweight event-trace ring buffer.
//
// The package is designed for the single-threaded simtime world: metric
// handles are plain structs and mutation is a direct field update — no
// locks, no atomics on the hot path. A Registry therefore belongs to
// exactly one simulation (one goroutine). The synchronization boundary is
// Snapshot: the owning goroutine takes a value-copy Snapshot after its run,
// and snapshots from many independent runs (the parallel table runner's
// workers) are merged with Merge, which is safe to call from any goroutine
// because snapshots are plain values.
//
// Every handle method is nil-receiver safe, so instrumented components pay
// a single predictable branch when no registry is attached.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

func labelKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// appendKey is labelKey into a caller-owned scratch buffer. The registry's
// lookup path builds keys this way and probes its maps with string(buf),
// which the compiler compiles without materialising a string — the key
// string is only allocated when a genuinely new metric registers.
func appendKey(b []byte, name string, labels []Label) []byte {
	b = append(b, name...)
	for _, l := range labels {
		b = append(b, '{')
		b = append(b, l.Key...)
		b = append(b, '=')
		b = append(b, l.Value...)
		b = append(b, '}')
	}
	return b
}

// compareMetric orders metric identities by name, then pairwise by label
// key and value, with a shorter label list sorting first. This tuple order
// is the one canonical metric order: registration, Snapshot and Merge all
// use it, so merge-joins over snapshots never need to build key strings.
func compareMetric(nameA string, labelsA []Label, nameB string, labelsB []Label) int {
	if c := strings.Compare(nameA, nameB); c != 0 {
		return c
	}
	n := len(labelsA)
	if len(labelsB) < n {
		n = len(labelsB)
	}
	for i := 0; i < n; i++ {
		if c := strings.Compare(labelsA[i].Key, labelsB[i].Key); c != 0 {
			return c
		}
		if c := strings.Compare(labelsA[i].Value, labelsB[i].Value); c != 0 {
			return c
		}
	}
	switch {
	case len(labelsA) < len(labelsB):
		return -1
	case len(labelsA) > len(labelsB):
		return 1
	}
	return 0
}

// Counter is a monotonically increasing count.
type Counter struct {
	name   string
	key    string
	labels []Label
	v      uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value that also tracks its high-water mark.
type Gauge struct {
	name   string
	key    string
	labels []Label
	v      int64
	max    int64
}

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the current value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 on a nil handle).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-boundary histogram. Bounds are upper bounds in
// ascending order; an observation lands in the first bucket whose bound is
// >= the value, or in the implicit +Inf overflow bucket.
type Histogram struct {
	name   string
	key    string
	labels []Label
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// DurationBuckets is a general-purpose set of histogram bounds, in seconds,
// spanning sub-millisecond latencies up to multi-hour holds.
var DurationBuckets = []float64{
	0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 900, 3600, 7200,
}

// CountBuckets is a general-purpose set of bounds for event/step counts.
var CountBuckets = []float64{
	1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
}

// Registry owns a simulation's metrics and its trace buffer. The zero
// value is not usable; create one with NewRegistry. A nil *Registry is a
// valid "off" registry: every constructor returns a nil handle and every
// handle method no-ops.
type Registry struct {
	// counters/gauges/hists are maintained in labelKey order (binary
	// insertion on first registration), so Snapshot emits deterministically
	// without sorting.
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	byKey    map[string]any
	// recycle parks handles across Reset so a recycled registry reaches a
	// zero-alloc steady state once its key universe has been seen.
	recycle map[string]any
	// keybuf is the lookup-key scratch; handle constructors probe byKey and
	// recycle with string(keybuf), allocating a key string only on a true
	// first registration.
	keybuf []byte
	trace  *Trace
}

// NewRegistry creates an empty registry with a default-sized trace buffer.
func NewRegistry() *Registry {
	return &Registry{
		byKey: make(map[string]any),
		trace: NewTrace(DefaultTraceCap),
	}
}

// Reset returns the registry to its freshly constructed state while keeping
// its allocations: every live handle is parked in a recycle pool and handed
// back — zeroed — when the same name+labels are registered again, and the
// trace ring is cleared in place. A reset registry's Snapshot is
// byte-identical to a new registry's after the same registration and
// mutation sequence.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	if r.recycle == nil {
		r.recycle = make(map[string]any, len(r.byKey))
	}
	for k, m := range r.byKey {
		r.recycle[k] = m
		delete(r.byKey, k)
	}
	r.counters = r.counters[:0]
	r.gauges = r.gauges[:0]
	r.hists = r.hists[:0]
	r.trace.Reset()
}

// insertSorted places h at its tuple-ordered position in s.
func insertSorted[T any](s []*T, less func(a, b *T) bool, h *T) []*T {
	i := sort.Search(len(s), func(i int) bool { return less(h, s[i]) })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = h
	return s
}

func counterLess(a, b *Counter) bool {
	return compareMetric(a.name, a.labels, b.name, b.labels) < 0
}
func gaugeLess(a, b *Gauge) bool {
	return compareMetric(a.name, a.labels, b.name, b.labels) < 0
}
func histogramLess(a, b *Histogram) bool {
	return compareMetric(a.name, a.labels, b.name, b.labels) < 0
}

// Counter returns the counter with the given name and labels, creating it
// on first use. Repeated calls with equal name+labels return the same
// handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.keybuf = appendKey(r.keybuf[:0], name, labels)
	if m, ok := r.byKey[string(r.keybuf)]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as a different metric type", string(r.keybuf)))
		}
		return c
	}
	var c *Counter
	if m, ok := r.recycle[string(r.keybuf)]; ok {
		if rc, ok := m.(*Counter); ok {
			delete(r.recycle, rc.key)
			rc.v = 0
			c = rc
		}
	}
	if c == nil {
		c = &Counter{name: name, key: string(r.keybuf), labels: labels}
	}
	r.byKey[c.key] = c
	r.counters = insertSorted(r.counters, counterLess, c)
	return c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.keybuf = appendKey(r.keybuf[:0], name, labels)
	if m, ok := r.byKey[string(r.keybuf)]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as a different metric type", string(r.keybuf)))
		}
		return g
	}
	var g *Gauge
	if m, ok := r.recycle[string(r.keybuf)]; ok {
		if rg, ok := m.(*Gauge); ok {
			delete(r.recycle, rg.key)
			rg.v, rg.max = 0, 0
			g = rg
		}
	}
	if g == nil {
		g = &Gauge{name: name, key: string(r.keybuf), labels: labels}
	}
	r.byKey[g.key] = g
	r.gauges = insertSorted(r.gauges, gaugeLess, g)
	return g
}

// Histogram returns the histogram with the given name, bounds and labels,
// creating it on first use. Bounds must be ascending; they are fixed at
// creation and later calls reuse the original bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.keybuf = appendKey(r.keybuf[:0], name, labels)
	if m, ok := r.byKey[string(r.keybuf)]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as a different metric type", string(r.keybuf)))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	var h *Histogram
	if m, ok := r.recycle[string(r.keybuf)]; ok {
		if rh, ok := m.(*Histogram); ok && boundsEqual(rh.bounds, bounds) {
			delete(r.recycle, rh.key)
			clear(rh.counts)
			rh.sum, rh.n = 0, 0
			h = rh
		}
	}
	if h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{name: name, key: string(r.keybuf), labels: labels, bounds: b, counts: make([]uint64, len(b)+1)}
	}
	r.byKey[h.key] = h
	r.hists = insertSorted(r.hists, histogramLess, h)
	return h
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Trace returns the registry's trace buffer (nil on a nil registry, which
// Trace methods tolerate).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// SetTraceCapacity replaces the trace buffer with one of the given
// capacity, discarding buffered events. A capacity of 0 disables tracing.
// When the capacity is unchanged the existing ring is cleared in place, so
// handles that captured it stay valid and nothing reallocates.
func (r *Registry) SetTraceCapacity(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	if r.trace != nil && r.trace.capn == n {
		r.trace.Reset()
		return
	}
	r.trace = NewTrace(n)
}

// Snapshot is a value copy of a registry's state at one instant. It is a
// plain value: safe to pass between goroutines, compare with
// reflect.DeepEqual, and encode as JSON.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Trace      []TraceEvent     `json:"trace,omitempty"`
	// TraceEvicted counts stored trace events overwritten by ring-buffer
	// wraparound; TraceDiscarded counts events a disabled trace refused.
	// TraceDropped is their sum, kept for compatibility.
	TraceEvicted   uint64 `json:"traceEvicted,omitempty"`
	TraceDiscarded uint64 `json:"traceDiscarded,omitempty"`
	TraceDropped   uint64 `json:"traceDropped,omitempty"`
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
	Max    int64   `json:"max"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the registry's current state. Metrics are emitted in a
// deterministic order (sorted by name, then labels) so equal runs produce
// byte-identical snapshots. Label slices and histogram bounds are shared
// with the registry's handles — both are immutable after registration —
// while every mutable field (values, histogram counts, trace events) is
// copied, so the snapshot stays a stable value as the simulation runs on.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.Counters = make([]CounterValue, 0, len(r.counters))
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Labels: c.labels, Value: c.v})
	}
	s.Gauges = make([]GaugeValue, 0, len(r.gauges))
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Labels: g.labels, Value: g.v, Max: g.max})
	}
	s.Histograms = make([]HistogramValue, 0, len(r.hists))
	for _, h := range r.hists {
		counts := make([]uint64, len(h.counts))
		copy(counts, h.counts)
		s.Histograms = append(s.Histograms, HistogramValue{
			Name: h.name, Labels: h.labels,
			Bounds: h.bounds, Counts: counts, Sum: h.sum, Count: h.n,
		})
	}
	if r.trace != nil {
		s.Trace = r.trace.Events()
		s.TraceEvicted = r.trace.Evicted()
		s.TraceDiscarded = r.trace.Discarded()
		s.TraceDropped = r.trace.Dropped()
	}
	// The registry's handle slices are maintained in key order, so the
	// snapshot is already sorted.
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		return compareMetric(s.Counters[i].Name, s.Counters[i].Labels, s.Counters[j].Name, s.Counters[j].Labels) < 0
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return compareMetric(s.Gauges[i].Name, s.Gauges[i].Labels, s.Gauges[j].Name, s.Gauges[j].Labels) < 0
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return compareMetric(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels) < 0
	})
}

func countersSorted(v []CounterValue) bool {
	for i := 1; i < len(v); i++ {
		if compareMetric(v[i-1].Name, v[i-1].Labels, v[i].Name, v[i].Labels) > 0 {
			return false
		}
	}
	return true
}

func gaugesSorted(v []GaugeValue) bool {
	for i := 1; i < len(v); i++ {
		if compareMetric(v[i-1].Name, v[i-1].Labels, v[i].Name, v[i].Labels) > 0 {
			return false
		}
	}
	return true
}

func histogramsSorted(v []HistogramValue) bool {
	for i := 1; i < len(v); i++ {
		if compareMetric(v[i-1].Name, v[i-1].Labels, v[i].Name, v[i].Labels) > 0 {
			return false
		}
	}
	return true
}

// Counter returns the value of the named counter in the snapshot, or 0.
func (s Snapshot) Counter(name string, labels ...Label) uint64 {
	k := labelKey(name, labels)
	for _, c := range s.Counters {
		if labelKey(c.Name, c.Labels) == k {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge in the snapshot, or a zero value.
func (s Snapshot) Gauge(name string, labels ...Label) GaugeValue {
	k := labelKey(name, labels)
	for _, g := range s.Gauges {
		if labelKey(g.Name, g.Labels) == k {
			return g
		}
	}
	return GaugeValue{Name: name, Labels: labels}
}

// Histogram returns the named histogram in the snapshot and whether it
// exists.
func (s Snapshot) Histogram(name string, labels ...Label) (HistogramValue, bool) {
	k := labelKey(name, labels)
	for _, h := range s.Histograms {
		if labelKey(h.Name, h.Labels) == k {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Families returns the sorted set of metric family names (counter, gauge
// and histogram names without labels) present in the snapshot.
func (s Snapshot) Families() []string {
	seen := make(map[string]bool)
	for _, c := range s.Counters {
		seen[c.Name] = true
	}
	for _, g := range s.Gauges {
		seen[g.Name] = true
	}
	for _, h := range s.Histograms {
		seen[h.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merge combines snapshots from independent runs into one: counters and
// histogram buckets sum, gauge values sum while high-water marks take the
// per-run maximum (a merged queue-depth HWM answers "the deepest any one
// run got"). Histograms with mismatched bounds panic — bounds are part of
// a metric's identity. Traces are concatenated in argument order. Merge
// only touches plain values, so it is safe wherever the snapshots
// themselves were safely produced.
//
// Registry snapshots are already in canonical tuple order, so the merge is
// a sorted merge-join that never builds key strings; a hand-assembled
// unsorted snapshot is detected and sorted into a copy first. The result
// shares label slices (and pass-through histogram bounds/counts) with its
// inputs — all immutable by the snapshot contract.
//
// Histogram sums are accumulated exactly (see FloatSum): the merged Sum
// is the real-number sum of the input Sums rounded to float64 once, never
// a chain of per-step roundings. The result therefore depends only on
// WHICH snapshots were merged, not on how a fixed-order fold was grouped
// — but a merged Snapshot carries only the rounded Sum, so re-merging an
// already-merged snapshot as a plain input restarts its exact sum from
// that rounded value. Splitting one logical fold across aggregates and
// recombining exactly goes through Accumulator.Absorb, which transfers
// the exact state (Accumulator.HistogramSums) across the boundary. Merge
// panics if a histogram Sum is NaN or ±Inf — an exact sum over those is
// meaningless.
//
// Merge makes snapshots a monoid: Snapshot{} is the identity
// (Merge() == Snapshot{}, and folding the empty snapshot in changes
// nothing), merging is deterministic in its inputs, re-folding a merged
// aggregate changes nothing, and — through Absorb — the fold
// re-associates exactly under any grouping, floating-point sums included.
// Trace order still follows argument order, so deterministic callers fold
// in a fixed order. The monoid laws are property-tested in
// accumulate_test.go; they are what lets aggregation split arbitrarily
// across shards, checkpoints, resumes, and worker processes.
//
// Merge is a left fold over the merger type; Accumulator (accumulate.go)
// runs the identical fold one snapshot at a time, which is what guarantees
// streamed and retained aggregation byte-identical results.
func Merge(snaps ...Snapshot) Snapshot {
	var m merger
	for _, s := range snaps {
		m.fold(s)
	}
	return m.out
}

// mergeCounters joins the accumulator acc with the sorted input b into dst.
func mergeCounters(dst, acc, b []CounterValue) []CounterValue {
	i, j := 0, 0
	for i < len(acc) && j < len(b) {
		switch c := compareMetric(acc[i].Name, acc[i].Labels, b[j].Name, b[j].Labels); {
		case c < 0:
			dst = append(dst, acc[i])
			i++
		case c > 0:
			dst = append(dst, b[j])
			j++
		default:
			m := acc[i]
			m.Value += b[j].Value
			dst = append(dst, m)
			i++
			j++
		}
	}
	dst = append(dst, acc[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

func mergeGauges(dst, acc, b []GaugeValue) []GaugeValue {
	i, j := 0, 0
	for i < len(acc) && j < len(b) {
		switch c := compareMetric(acc[i].Name, acc[i].Labels, b[j].Name, b[j].Labels); {
		case c < 0:
			dst = append(dst, acc[i])
			i++
		case c > 0:
			dst = append(dst, b[j])
			j++
		default:
			m := acc[i]
			m.Value += b[j].Value
			if b[j].Max > m.Max {
				m.Max = b[j].Max
			}
			dst = append(dst, m)
			i++
			j++
		}
	}
	dst = append(dst, acc[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// mergeHistograms joins acc with b. A combine allocates fresh Counts — an
// accumulator entry may still alias an input snapshot's slice, which must
// never be mutated.
//
// Sums are kept exactly: dsums/asums carry one FloatSum per accumulator
// entry (index-aligned), and every entry's Sum field is that exact sum
// rounded once — never a chain of per-fold float roundings. bsums, when
// non-nil, carries the exact sums behind b's entries (an aggregate being
// absorbed); when nil, b is an ordinary snapshot and b's rounded Sum is
// the value folded in. Keeping the exact state is what makes absorbing
// independently-folded aggregates reproduce a serial fold bit-for-bit.
func mergeHistograms(dst []HistogramValue, dsums []*FloatSum, acc []HistogramValue, asums []*FloatSum, b []HistogramValue, bsums []FloatSum) ([]HistogramValue, []*FloatSum) {
	appendB := func(h HistogramValue, j int) {
		f := new(FloatSum)
		if bsums != nil {
			*f = bsums[j]
		} else {
			f.Add(h.Sum)
		}
		h.Sum = f.Value()
		dst = append(dst, h)
		dsums = append(dsums, f)
	}
	i, j := 0, 0
	for i < len(acc) && j < len(b) {
		switch c := compareMetric(acc[i].Name, acc[i].Labels, b[j].Name, b[j].Labels); {
		case c < 0:
			dst = append(dst, acc[i])
			dsums = append(dsums, asums[i])
			i++
		case c > 0:
			appendB(b[j], j)
			j++
		default:
			m := acc[i]
			h := b[j]
			if !boundsEqual(m.Bounds, h.Bounds) {
				panic(fmt.Sprintf("obs: merge of histogram %s with mismatched bounds", labelKey(m.Name, m.Labels)))
			}
			counts := make([]uint64, len(m.Counts))
			copy(counts, m.Counts)
			for k := range counts {
				counts[k] += h.Counts[k]
			}
			m.Counts = counts
			f := asums[i]
			if bsums != nil {
				f.AddSum(&bsums[j])
			} else {
				f.Add(h.Sum)
			}
			m.Sum = f.Value()
			m.Count += h.Count
			dst = append(dst, m)
			dsums = append(dsums, f)
			i++
			j++
		}
	}
	for ; i < len(acc); i++ {
		dst = append(dst, acc[i])
		dsums = append(dsums, asums[i])
	}
	for ; j < len(b); j++ {
		appendB(b[j], j)
	}
	return dst, dsums
}
