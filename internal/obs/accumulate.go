package obs

import "sync"

// merger is the incremental form of Merge: fold() applies exactly one
// left-fold step, so folding snapshots s0..sn one at a time produces the
// same value — field for field, byte for byte once encoded — as
// Merge(s0, ..., sn). Merge and Accumulator both run on this type, which
// is what makes "stream the snapshots in as they land" and "retain them
// all and merge at the end" provably interchangeable.
//
// The scratch slices implement the double-buffer swap from the original
// Merge loop: each fold builds the new accumulator state in the previous
// state's backing array, so a long fold sequence reaches a zero-alloc
// steady state for counters and gauges once the key universe stops
// growing (histogram combines still allocate their fresh Counts — an
// accumulator entry may alias an input snapshot's slice, which must never
// be mutated).
type merger struct {
	out      Snapshot
	scratchC []CounterValue
	scratchG []GaugeValue
	scratchH []HistogramValue
}

// fold merges s into the accumulated state. Registry snapshots are already
// in canonical tuple order; a hand-assembled unsorted snapshot is sorted
// into a copy first, same as Merge.
func (m *merger) fold(s Snapshot) {
	if !countersSorted(s.Counters) || !gaugesSorted(s.Gauges) || !histogramsSorted(s.Histograms) {
		s.Counters = append([]CounterValue(nil), s.Counters...)
		s.Gauges = append([]GaugeValue(nil), s.Gauges...)
		s.Histograms = append([]HistogramValue(nil), s.Histograms...)
		s.sort()
	}
	m.out.Counters, m.scratchC = mergeCounters(m.scratchC[:0], m.out.Counters, s.Counters), m.out.Counters
	m.out.Gauges, m.scratchG = mergeGauges(m.scratchG[:0], m.out.Gauges, s.Gauges), m.out.Gauges
	m.out.Histograms, m.scratchH = mergeHistograms(m.scratchH[:0], m.out.Histograms, s.Histograms), m.out.Histograms
	m.out.Trace = append(m.out.Trace, s.Trace...)
	m.out.TraceEvicted += s.TraceEvicted
	m.out.TraceDiscarded += s.TraceDiscarded
	m.out.TraceDropped += s.TraceDropped
}

// Accumulator folds snapshots into a running aggregate without retaining
// them: Add(s0); ...; Add(sn); State() equals Merge(s0, ..., sn), and each
// snapshot is released to the garbage collector as soon as its fold
// completes. It is the streaming replacement for the retain-all-then-Merge
// pattern, sized for campaigns whose snapshot count is unbounded.
//
// Unlike the rest of the package, an Accumulator is mutex-guarded: it sits
// on the wall-clock side of the sim/wall boundary, where campaign workers
// fold results in while an observability plane (internal/obs/serve) reads
// the current state concurrently. State returns an isolated value copy, so
// a reader's snapshot never changes under it as more folds land.
//
// Like Merge, Add panics when a histogram re-appears with different bucket
// bounds — bounds are part of a metric's identity.
type Accumulator struct {
	mu   sync.Mutex
	m    merger
	adds int
}

// NewAccumulator returns an empty accumulator: State() is a zero Snapshot
// until the first Add.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Add folds one snapshot into the aggregate. Fold order is significant for
// byte-identity (histogram sums are floating-point), so callers that
// promise deterministic output must Add in a deterministic order.
func (a *Accumulator) Add(s Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m.fold(s)
	a.adds++
}

// Adds reports how many snapshots have been folded in.
func (a *Accumulator) Adds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.adds
}

// State returns the current aggregate as an isolated snapshot value: equal
// to Merge of everything Added so far, and unaffected by later Adds. Safe
// to call from any goroutine at any time — this is the read side of the
// live /metrics endpoint.
func (a *Accumulator) State() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.m.out
	// Top-level slices are copied because fold recycles their backing
	// arrays as scratch; the entries' label slices, histogram bounds and
	// histogram counts are never mutated in place (combines allocate fresh
	// Counts), so sharing them keeps State cheap.
	out.Counters = append([]CounterValue(nil), out.Counters...)
	out.Gauges = append([]GaugeValue(nil), out.Gauges...)
	out.Histograms = append([]HistogramValue(nil), out.Histograms...)
	out.Trace = append([]TraceEvent(nil), out.Trace...)
	return out
}
