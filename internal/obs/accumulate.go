package obs

import (
	"fmt"
	"sync"
)

// merger is the incremental form of Merge: fold() applies exactly one
// left-fold step, so folding snapshots s0..sn one at a time produces the
// same value — field for field, byte for byte once encoded — as
// Merge(s0, ..., sn). Merge and Accumulator both run on this type, which
// is what makes "stream the snapshots in as they land" and "retain them
// all and merge at the end" provably interchangeable.
//
// Histogram sums are accumulated exactly: hsums holds one FloatSum per
// out.Histograms entry, and the entry's float64 Sum is always that exact
// sum rounded once. The exact state is exportable (Accumulator
// .HistogramSums) and re-importable (foldSorted with sums / Accumulator
// .Absorb), which is what lets a fold be split across checkpoints and
// processes and still land on identical bytes.
//
// The scratch slices implement the double-buffer swap from the original
// Merge loop: each fold builds the new accumulator state in the previous
// state's backing array, so a long fold sequence reaches a zero-alloc
// steady state for counters and gauges once the key universe stops
// growing (histogram combines still allocate their fresh Counts — an
// accumulator entry may alias an input snapshot's slice, which must never
// be mutated).
type merger struct {
	out      Snapshot
	hsums    []*FloatSum // exact sums, index-aligned with out.Histograms
	scratchC []CounterValue
	scratchG []GaugeValue
	scratchH []HistogramValue
	scratchS []*FloatSum
}

// fold merges s into the accumulated state. Registry snapshots are already
// in canonical tuple order; a hand-assembled unsorted snapshot is sorted
// into a copy first, same as Merge.
func (m *merger) fold(s Snapshot) {
	if !countersSorted(s.Counters) || !gaugesSorted(s.Gauges) || !histogramsSorted(s.Histograms) {
		s.Counters = append([]CounterValue(nil), s.Counters...)
		s.Gauges = append([]GaugeValue(nil), s.Gauges...)
		s.Histograms = append([]HistogramValue(nil), s.Histograms...)
		s.sort()
	}
	m.foldSorted(s, nil)
}

// foldSorted merges the canonically-ordered s into the accumulated state.
// sums, when non-nil, carries the exact histogram sums behind s
// (index-aligned with s.Histograms): the fold then reproduces, limb for
// limb, the state it would have reached by folding whatever snapshot
// sequence produced s — the primitive behind Accumulator.Absorb.
func (m *merger) foldSorted(s Snapshot, sums []FloatSum) {
	m.out.Counters, m.scratchC = mergeCounters(m.scratchC[:0], m.out.Counters, s.Counters), m.out.Counters
	m.out.Gauges, m.scratchG = mergeGauges(m.scratchG[:0], m.out.Gauges, s.Gauges), m.out.Gauges
	h, hs := mergeHistograms(m.scratchH[:0], m.scratchS[:0], m.out.Histograms, m.hsums, s.Histograms, sums)
	m.scratchH, m.scratchS = m.out.Histograms, m.hsums
	m.out.Histograms, m.hsums = h, hs
	m.out.Trace = append(m.out.Trace, s.Trace...)
	m.out.TraceEvicted += s.TraceEvicted
	m.out.TraceDiscarded += s.TraceDiscarded
	m.out.TraceDropped += s.TraceDropped
}

// Accumulator folds snapshots into a running aggregate without retaining
// them: Add(s0); ...; Add(sn); State() equals Merge(s0, ..., sn), and each
// snapshot is released to the garbage collector as soon as its fold
// completes. It is the streaming replacement for the retain-all-then-Merge
// pattern, sized for campaigns whose snapshot count is unbounded.
//
// Unlike the rest of the package, an Accumulator is mutex-guarded: it sits
// on the wall-clock side of the sim/wall boundary, where campaign workers
// fold results in while an observability plane (internal/obs/serve) reads
// the current state concurrently. State returns an isolated value copy, so
// a reader's snapshot never changes under it as more folds land.
//
// Like Merge, Add panics when a histogram re-appears with different bucket
// bounds — bounds are part of a metric's identity.
type Accumulator struct {
	mu   sync.Mutex
	m    merger
	adds int
}

// NewAccumulator returns an empty accumulator: State() is a zero Snapshot
// until the first Add.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Add folds one snapshot into the aggregate. Histogram sums accumulate
// exactly, so they are order-independent; trace events concatenate in Add
// order, so callers that promise deterministic output still Add in a
// deterministic order.
func (a *Accumulator) Add(s Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m.fold(s)
	a.adds++
}

// Adds reports how many snapshots have been folded in.
func (a *Accumulator) Adds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.adds
}

// HistogramSums returns the exact histogram sums behind the aggregate,
// index-aligned with State().Histograms. Each State() entry's Sum is the
// corresponding exact sum rounded once. Exporting State, HistogramSums
// and Adds together captures the accumulator's complete fold state; a
// fresh accumulator Absorbing that triple continues the fold as if it had
// performed every original Add itself.
func (a *Accumulator) HistogramSums() []FloatSum {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FloatSum, len(a.m.hsums))
	for i, f := range a.m.hsums {
		out[i] = *f
	}
	return out
}

// Absorb folds a previously exported aggregate — a State() snapshot with
// its HistogramSums() and Adds() — into this accumulator, exactly.
// Add(s) alone would restart each histogram's exact sum from the rounded
// float64 in the snapshot; Absorb carries the exact state across, so the
// result is bit-identical to having performed the source accumulator's
// Adds in place. Any grouping of the same snapshots into absorbed
// aggregates converges on the same state, which is what makes checkpoint
// resume and per-process shard-range partials byte-identical to an
// uninterrupted single-process fold.
//
// sums must be index-aligned with s.Histograms and s must be in canonical
// order (State output always is); adds is folded into the Adds count.
func (a *Accumulator) Absorb(s Snapshot, sums []FloatSum, adds int) error {
	if len(sums) != len(s.Histograms) {
		return fmt.Errorf("obs: Absorb of %d exact sums for %d histograms", len(sums), len(s.Histograms))
	}
	if adds < 0 {
		return fmt.Errorf("obs: Absorb of negative add count %d", adds)
	}
	if !countersSorted(s.Counters) || !gaugesSorted(s.Gauges) || !histogramsSorted(s.Histograms) {
		return fmt.Errorf("obs: Absorb needs a canonically ordered snapshot")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m.foldSorted(s, sums)
	a.adds += adds
	return nil
}

// State returns the current aggregate as an isolated snapshot value: equal
// to Merge of everything Added so far, and unaffected by later Adds. Safe
// to call from any goroutine at any time — this is the read side of the
// live /metrics endpoint.
func (a *Accumulator) State() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.m.out
	// Top-level slices are copied because fold recycles their backing
	// arrays as scratch; the entries' label slices, histogram bounds and
	// histogram counts are never mutated in place (combines allocate fresh
	// Counts), so sharing them keeps State cheap.
	out.Counters = append([]CounterValue(nil), out.Counters...)
	out.Gauges = append([]GaugeValue(nil), out.Gauges...)
	out.Histograms = append([]HistogramValue(nil), out.Histograms...)
	out.Trace = append([]TraceEvent(nil), out.Trace...)
	return out
}
