package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", L("segment", "lan"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if again := r.Counter("frames_total", L("segment", "lan")); again != c {
		t.Fatal("same name+labels should return the same handle")
	}
	if other := r.Counter("frames_total", L("segment", "wan")); other == c {
		t.Fatal("different labels should be a different handle")
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth")
	g.Set(3)
	g.Set(9)
	g.Set(2)
	g.Add(1)
	if g.Value() != 3 {
		t.Fatalf("Value = %d, want 3", g.Value())
	}
	if g.Max() != 9 {
		t.Fatalf("Max = %d, want 9", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	h.ObserveDuration(2 * time.Second)
	snap := r.Snapshot()
	hv, ok := snap.Histogram("latency_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// 0.5 and 1 land in <=1; 5 and 2s in <=10; 50 in <=100; 500 overflows.
	want := []uint64{2, 2, 1, 1}
	if !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("Counts = %v, want %v", hv.Counts, want)
	}
	if hv.Count != 6 {
		t.Fatalf("Count = %d, want 6", hv.Count)
	}
	if hv.Sum != 0.5+1+5+50+500+2 {
		t.Fatalf("Sum = %v", hv.Sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewRegistry().Histogram("bad", []float64{5, 1})
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on re-registering x as a gauge")
		}
	}()
	r.Gauge("x")
}

func TestNilHandlesAndRegistryAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", DurationBuckets)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.Trace().Add(TraceEvent{})
	r.SetTraceCapacity(10)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles should read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("zeta").Add(1)
		r.Counter("alpha", L("x", "2")).Add(2)
		r.Counter("alpha", L("x", "1")).Add(3)
		r.Gauge("mid").Set(7)
		r.Histogram("h", []float64{1}).Observe(0.5)
		return r.Snapshot()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a, b)
	}
	if a.Counters[0].Name != "alpha" || a.Counters[0].Labels[0].Value != "1" {
		t.Fatalf("counters not sorted: %+v", a.Counters)
	}
}

func TestSnapshotIsolatedFromRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(1)
	snap := r.Snapshot()
	c.Add(10)
	if snap.Counter("n") != 1 {
		t.Fatalf("snapshot mutated by later writes: %d", snap.Counter("n"))
	}
}

func TestMergeAcrossGoroutines(t *testing.T) {
	// The parallel table runner's shape: one registry per worker, merged
	// after the fact. Run under -race this also proves snapshots cross
	// goroutines safely.
	const workers = 4
	snaps := make([]Snapshot, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRegistry()
			r.Counter("events_total").Add(uint64(10 * (w + 1)))
			r.Gauge("depth").Set(int64(w + 1))
			r.Histogram("lat", []float64{1, 10}).Observe(float64(w))
			r.Trace().Emit(time.Duration(w), "test", "tick", "", int64(w))
			snaps[w] = r.Snapshot()
		}(w)
	}
	wg.Wait()
	m := Merge(snaps...)
	if m.Counter("events_total") != 10+20+30+40 {
		t.Fatalf("merged counter = %d", m.Counter("events_total"))
	}
	g := m.Gauge("depth")
	if g.Max != workers {
		t.Fatalf("merged gauge max = %d, want %d", g.Max, workers)
	}
	if g.Value != 1+2+3+4 {
		t.Fatalf("merged gauge value = %d", g.Value)
	}
	h, ok := m.Histogram("lat")
	if !ok || h.Count != workers {
		t.Fatalf("merged histogram = %+v ok=%v", h, ok)
	}
	if len(m.Trace) != workers {
		t.Fatalf("merged trace has %d events", len(m.Trace))
	}
}

func TestMergeMismatchedBoundsPanics(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []float64{1}).Observe(0.5)
	b := NewRegistry()
	b.Histogram("h", []float64{2}).Observe(0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched bounds")
		}
	}()
	Merge(a.Snapshot(), b.Snapshot())
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Emit(time.Duration(i), "c", "e", "", int64(i))
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, want := range []int64{2, 3, 4} {
		if evs[i].Value != want {
			t.Fatalf("events = %+v, want oldest-first 2,3,4", evs)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestTraceDisabled(t *testing.T) {
	tr := NewTrace(0)
	tr.Emit(0, "c", "e", "", 0)
	if tr.Len() != 0 || tr.Dropped() != 1 {
		t.Fatalf("disabled trace: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	var nilTrace *Trace
	nilTrace.Emit(0, "c", "e", "", 0)
	if nilTrace.Events() != nil || nilTrace.Len() != 0 || nilTrace.Dropped() != 0 {
		t.Fatal("nil trace should read as empty")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames", L("segment", "lan")).Add(2)
	r.Gauge("depth").Set(5)
	r.Histogram("lat", []float64{1, 10}).Observe(3)
	r.Trace().Emit(time.Second, "netsim", "drop", "lan", 1)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("frames", L("segment", "lan")) != 2 {
		t.Fatalf("round-trip lost counter: %s", data)
	}
	if len(back.Trace) != 1 || back.Trace[0].Component != "netsim" {
		t.Fatalf("round-trip lost trace: %s", data)
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("x", "1"))
	r.Counter("b_total", L("x", "2"))
	r.Gauge("a_depth")
	r.Histogram("c_lat", []float64{1})
	got := r.Snapshot().Families()
	want := []string{"a_depth", "b_total", "c_lat"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Families = %v, want %v", got, want)
	}
}
