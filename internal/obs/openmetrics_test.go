package obs

import (
	"bytes"
	"strings"
	"testing"
)

func openmetricsFixture() Snapshot {
	r := NewRegistry()
	r.Counter("frames_total", L("segment", "lan")).Add(3)
	r.Counter("frames_total", L("segment", "wan")).Add(1)
	g := r.Gauge("depth")
	g.Set(7)
	g.Set(2)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r.Snapshot()
}

func TestWriteOpenMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, openmetricsFixture()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := []string{
		"# TYPE frames counter\n",
		`frames_total{segment="lan"} 3` + "\n",
		`frames_total{segment="wan"} 1` + "\n",
		"# TYPE depth gauge\ndepth 2\n",
		"# TYPE depth_max gauge\ndepth_max 7\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Fatalf("output missing %q:\n%s", w, got)
		}
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Fatalf("output does not end with # EOF:\n%s", got)
	}
	// One TYPE line per family even with several samples.
	if n := strings.Count(got, "# TYPE frames counter"); n != 1 {
		t.Fatalf("counter family declared %d times", n)
	}
}

func TestWriteOpenMetricsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteOpenMetrics(&a, openmetricsFixture()); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpenMetrics(&b, openmetricsFixture()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal snapshots serialized differently")
	}
}

func TestWriteOpenMetricsEscapesLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", L("k", "a\"b\\c\nd")).Add(1)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `x_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}
