package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// accSnap builds a representative snapshot: counters, gauges, histograms
// (with float sums that make fold order observable), and trace events.
func accSnap(w int) Snapshot {
	r := NewRegistry()
	r.SetTraceCapacity(8)
	r.Counter("events_total").Add(uint64(10 * (w + 1)))
	r.Counter("shard_total", L("shard", string(rune('a'+w)))).Add(1)
	r.Gauge("depth").Set(int64(w + 1))
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.1 * float64(w+1))
	h.Observe(float64(w) + 0.3)
	r.Trace().Emit(time.Duration(w), "acc", "tick", "", int64(w))
	return r.Snapshot()
}

func TestAccumulatorEqualsMerge(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		snaps := make([]Snapshot, n)
		for i := range snaps {
			snaps[i] = accSnap(i)
		}
		acc := NewAccumulator()
		for _, s := range snaps {
			acc.Add(s)
		}
		if got, want := acc.State(), Merge(snaps...); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: Accumulator state diverges from Merge:\n got %+v\nwant %+v", n, got, want)
		}
		if acc.Adds() != n {
			t.Fatalf("n=%d: Adds() = %d", n, acc.Adds())
		}
	}
}

// TestMergeMonoid checks the laws the shard/checkpoint/resume splitting
// relies on: Snapshot{} is the identity, re-folding a merged aggregate
// changes nothing, and — because histogram sums accumulate exactly — the
// merged floats depend only on which snapshots went in, not how the fold
// was grouped. (Exact regrouping across an aggregate boundary goes
// through Accumulator.Absorb; see TestAbsorbReassociatesExactly.)
func TestMergeMonoid(t *testing.T) {
	a, b, c := accSnap(0), accSnap(1), accSnap(2)

	if got := Merge(); !reflect.DeepEqual(got, Snapshot{}) {
		t.Fatalf("Merge() = %+v, want zero Snapshot", got)
	}
	if got, want := Merge(Snapshot{}, a), Merge(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("left identity violated:\n got %+v\nwant %+v", got, want)
	}
	if got, want := Merge(a, Snapshot{}), Merge(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("right identity violated:\n got %+v\nwant %+v", got, want)
	}
	if got, want := Merge(Merge(a, b, c)), Merge(a, b, c); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-folding a merged aggregate changed it:\n got %+v\nwant %+v", got, want)
	}
	// Exact sums make the one-shot fold grouping-independent: any argument
	// order reaches the same float sums (traces follow argument order, so
	// compare the histogram section only).
	fwd, rev := Merge(a, b, c), Merge(c, b, a)
	if !reflect.DeepEqual(fwd.Histograms, rev.Histograms) {
		t.Fatalf("histogram merge depends on argument order:\n fwd %+v\n rev %+v", fwd.Histograms, rev.Histograms)
	}
}

func TestAccumulatorMismatchedBoundsPanics(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []float64{1}).Observe(0.5)
	b := NewRegistry()
	b.Histogram("h", []float64{2}).Observe(0.5)
	acc := NewAccumulator()
	acc.Add(a.Snapshot())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched bounds")
		}
	}()
	acc.Add(b.Snapshot())
}

func TestAccumulatorStateIsolated(t *testing.T) {
	acc := NewAccumulator()
	acc.Add(accSnap(0))
	before := acc.State()
	beforeEvents := before.Counter("events_total")
	beforeCount := len(before.Counters)
	acc.Add(accSnap(1))
	acc.Add(accSnap(2))
	if got := before.Counter("events_total"); got != beforeEvents {
		t.Fatalf("earlier State mutated by later Adds: %d != %d", got, beforeEvents)
	}
	if len(before.Counters) != beforeCount {
		t.Fatalf("earlier State grew: %d counters", len(before.Counters))
	}
}

// TestAccumulatorConcurrentReads drives the live-plane shape under -race:
// one writer folding snapshots while readers snapshot the state.
func TestAccumulatorConcurrentReads(t *testing.T) {
	acc := NewAccumulator()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := acc.State()
				// A reader must always see an internally consistent
				// aggregate: whole snapshots only.
				if v := s.Counter("events_total"); v%10 != 0 {
					t.Errorf("torn read: events_total = %d", v)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		acc.Add(accSnap(i % 8))
	}
	close(done)
	wg.Wait()
	if acc.Adds() != 200 {
		t.Fatalf("Adds() = %d", acc.Adds())
	}
}
