package obs

import (
	"testing"
	"time"
)

func TestTraceMultiWrapKeepsNewestOldestFirst(t *testing.T) {
	tr := NewTrace(4)
	const n = 11 // wraps the ring almost three times
	for i := 0; i < n; i++ {
		tr.Emit(time.Duration(i)*time.Millisecond, "c", "e", "", int64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 || tr.Len() != 4 {
		t.Fatalf("len = %d/%d, want 4", len(evs), tr.Len())
	}
	for i, ev := range evs {
		if want := int64(n - 4 + i); ev.Value != want {
			t.Fatalf("event %d value = %d, want %d (oldest-first)", i, ev.Value, want)
		}
		if ev.At != time.Duration(ev.Value)*time.Millisecond {
			t.Fatalf("event %d timestamp %v does not match value %d", i, ev.At, ev.Value)
		}
	}
	if tr.Evicted() != n-4 || tr.Discarded() != 0 {
		t.Fatalf("evicted=%d discarded=%d, want %d/0", tr.Evicted(), tr.Discarded(), n-4)
	}
	if tr.Dropped() != n-4 {
		t.Fatalf("Dropped = %d, want evicted+discarded = %d", tr.Dropped(), n-4)
	}
}

func TestTraceExactFillDoesNotEvict(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 3; i++ {
		tr.Emit(0, "c", "e", "", int64(i))
	}
	if tr.Len() != 3 || tr.Evicted() != 0 || tr.Discarded() != 0 {
		t.Fatalf("exact fill: len=%d evicted=%d discarded=%d",
			tr.Len(), tr.Evicted(), tr.Discarded())
	}
	tr.Emit(0, "c", "e", "", 3)
	if tr.Evicted() != 1 {
		t.Fatalf("one past capacity: evicted=%d, want 1", tr.Evicted())
	}
}

func TestTraceZeroCapDiscards(t *testing.T) {
	tr := NewTrace(0)
	if tr.Enabled() {
		t.Fatal("zero-cap trace reports enabled")
	}
	for i := 0; i < 4; i++ {
		tr.Emit(0, "c", "e", "", int64(i))
	}
	if tr.Len() != 0 || tr.Evicted() != 0 || tr.Discarded() != 4 || tr.Dropped() != 4 {
		t.Fatalf("zero-cap: len=%d evicted=%d discarded=%d dropped=%d",
			tr.Len(), tr.Evicted(), tr.Discarded(), tr.Dropped())
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Emit(0, "c", "e", "", 0)
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil ||
		tr.Evicted() != 0 || tr.Discarded() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace should read as empty and disabled")
	}
}

func TestSetTraceCapacityReplacesRing(t *testing.T) {
	r := NewRegistry()
	r.Trace().Emit(0, "c", "old", "", 0)
	r.SetTraceCapacity(2)
	if got := r.Trace().Len(); got != 0 {
		t.Fatalf("resized trace kept %d events", got)
	}
	if !r.Trace().Enabled() {
		t.Fatal("resized trace should be enabled")
	}
	r.SetTraceCapacity(0)
	if r.Trace().Enabled() {
		t.Fatal("zero-capacity trace should be disabled")
	}
}
