package obs

import "time"

// DefaultTraceCap is the default trace ring capacity. Sized so a full
// Table-I measurement keeps its most recent attack-relevant events without
// the buffer dominating a snapshot.
const DefaultTraceCap = 4096

// TraceEvent is one entry in the event-trace ring: what happened, where,
// at which virtual time, with an optional numeric payload (a byte count, a
// held-record count, a retry number — whatever the component finds
// useful).
type TraceEvent struct {
	// At is virtual time since simulation start.
	At time.Duration `json:"at"`
	// Component names the emitting subsystem ("simtime", "netsim", ...).
	Component string `json:"component"`
	// Event names what happened ("record_held", "rto_fired", ...).
	Event string `json:"event"`
	// Detail disambiguates within a component (a flow, a device label).
	Detail string `json:"detail,omitempty"`
	// Value carries an optional numeric payload.
	Value int64 `json:"value,omitempty"`
}

// Trace is a fixed-capacity ring buffer of TraceEvents. Like the rest of
// the package it is single-writer: append from the simulation goroutine,
// read after the run. A nil *Trace drops everything.
//
// The backing array is allocated lazily on the first Add, so an enabled
// but never-written trace (a fleet worker that disables tracing right
// after construction) costs a couple of words, not capacity*sizeof(event).
type Trace struct {
	buf     []TraceEvent
	capn    int
	next    int
	wrapped bool
	// evicted counts stored events later overwritten by ring wraparound;
	// discarded counts events a disabled (zero-capacity) trace refused.
	// The distinction matters: a wrapped-but-healthy ring still holds the
	// most recent window, while a discarding trace holds nothing.
	evicted   uint64
	discarded uint64
}

// NewTrace creates a ring holding up to capacity events. Capacity <= 0
// returns a disabled trace that drops every event.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		return &Trace{}
	}
	return &Trace{capn: capacity}
}

// Add appends an event, evicting the oldest once the ring is full.
func (t *Trace) Add(ev TraceEvent) {
	if t == nil || t.capn == 0 {
		if t != nil {
			t.discarded++
		}
		return
	}
	if t.buf == nil {
		t.buf = make([]TraceEvent, 0, t.capn)
	}
	if len(t.buf) < t.capn {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % t.capn
	t.wrapped = true
	t.evicted++
}

// Reset drops all buffered events and drop counters but keeps the ring's
// capacity and backing array, so a recycled trace records exactly like a
// fresh one without reallocating.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.next = 0
	t.wrapped = false
	t.evicted = 0
	t.discarded = 0
}

// Emit is sugar for Add.
func (t *Trace) Emit(at time.Duration, component, event, detail string, value int64) {
	t.Add(TraceEvent{At: at, Component: component, Event: event, Detail: detail, Value: value})
}

// Len reports the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Enabled reports whether the trace stores events at all. Instrumented
// components capture nil handles when tracing is disabled, so the emission
// path costs nothing when off.
func (t *Trace) Enabled() bool {
	return t != nil && t.capn > 0
}

// Evicted reports how many stored events were later overwritten by ring
// wraparound — the buffer still holds the most recent window.
func (t *Trace) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted
}

// Discarded reports how many events a disabled (zero-capacity) trace
// refused outright.
func (t *Trace) Discarded() uint64 {
	if t == nil {
		return 0
	}
	return t.discarded
}

// Dropped reports the total events lost either way: Evicted + Discarded.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted + t.discarded
}

// Events returns the buffered events oldest-first.
func (t *Trace) Events() []TraceEvent {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]TraceEvent, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}
