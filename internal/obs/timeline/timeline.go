// Package timeline reconstructs causal attack timelines from the flat
// flight-recorder ring of package obs. The instrumented layers emit paired
// point events (a hold starts / a hold releases, a keep-alive goes out / is
// answered); Build folds each pair into a Span and leaves everything else
// as a point Mark. The result renders as a Chrome trace-event file
// (Perfetto-loadable, see WriteChromeTrace) or plain text (WriteText).
package timeline

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// Source is one run's flat event stream, named so multi-run exports (one
// table row, one verification device) stay distinguishable.
type Source struct {
	Name   string
	Events []obs.TraceEvent
}

// Span is one reconstructed interval: a hold window, a keep-alive exchange,
// an in-flight request, an experiment phase.
type Span struct {
	// Track groups related spans for display: "component/detail".
	Track string
	// Name is the span kind ("hold", "keepalive", "phase", ...).
	Name string
	// Detail is the opening event's detail (device label, direction, ...).
	Detail string
	Start  time.Duration
	End    time.Duration
	// Close names the event that ended the span ("ka_answered",
	// "ka_timeout", ...); empty for spans that never closed.
	Close string
	// Value is the closing event's payload (released record count, held
	// duration in nanoseconds, ...).
	Value int64
	// Complete is false when the span was still open at the end of the
	// stream, or was displaced by a newer open on the same key.
	Complete bool
}

// Duration is the span's extent.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Mark is an unpaired point event (a spoofed ACK, an RTO firing, a rule
// firing).
type Mark struct {
	Track  string
	Name   string
	Detail string
	At     time.Duration
	Value  int64
}

// Timeline is one source's reconstructed view.
type Timeline struct {
	Name  string
	Spans []Span
	Marks []Mark
}

// spanRule pairs an opening event with its closing events. byValue keys
// the pairing on the event's numeric payload too (request/response ids);
// without it, pairing is per component+detail (one open hold per bridge
// direction).
type spanRule struct {
	component string
	open      string
	closes    []string
	name      string
	byValue   bool
}

var spanRules = []spanRule{
	{component: "core", open: "hold_start", closes: []string{"release"}, name: "hold"},
	{component: "core", open: "op_matched", closes: []string{"op_released"}, name: "delay-op"},
	{component: "mqtt", open: "ka_sent", closes: []string{"ka_answered", "ka_timeout"}, name: "keepalive"},
	{component: "mqtt", open: "publish", closes: []string{"puback", "ack_timeout"}, name: "publish", byValue: true},
	{component: "http", open: "ka_sent", closes: []string{"ka_answered", "ka_timeout"}, name: "keepalive", byValue: true},
	{component: "http", open: "request", closes: []string{"response", "ack_timeout"}, name: "request", byValue: true},
	{component: "experiment", open: "phase_start", closes: []string{"phase_end"}, name: "phase"},
}

// ruleIndex maps "component|event" to the rule it opens or closes.
var openRules, closeRules = func() (map[string]*spanRule, map[string]*spanRule) {
	opens := make(map[string]*spanRule)
	closes := make(map[string]*spanRule)
	for i := range spanRules {
		r := &spanRules[i]
		opens[r.component+"|"+r.open] = r
		for _, c := range r.closes {
			closes[r.component+"|"+c] = r
		}
	}
	return opens, closes
}()

func pairKey(r *spanRule, ev obs.TraceEvent) string {
	k := r.component + "|" + r.name + "|" + ev.Detail
	if r.byValue {
		k += "|" + strconv.FormatInt(ev.Value, 10)
	}
	return k
}

// Build reconstructs one source's timeline. Spans appear in the order they
// opened; marks in event order — both deterministic for a deterministic
// event stream.
func Build(src Source) Timeline {
	tl := Timeline{Name: src.Name}
	open := make(map[string]int) // pairing key -> index into tl.Spans
	var last time.Duration
	for _, ev := range src.Events {
		last = ev.At
		if r, ok := openRules[ev.Component+"|"+ev.Event]; ok {
			key := pairKey(r, ev)
			if i, dup := open[key]; dup {
				// A new open displaces a lost one (e.g. the close event was
				// evicted from the ring): end it where the new one begins.
				tl.Spans[i].End = ev.At
			}
			open[key] = len(tl.Spans)
			tl.Spans = append(tl.Spans, Span{
				Track:  ev.Component + "/" + ev.Detail,
				Name:   r.name,
				Detail: ev.Detail,
				Start:  ev.At,
				End:    ev.At,
			})
			continue
		}
		if r, ok := closeRules[ev.Component+"|"+ev.Event]; ok {
			key := pairKey(r, ev)
			if i, found := open[key]; found {
				delete(open, key)
				tl.Spans[i].End = ev.At
				tl.Spans[i].Close = ev.Event
				tl.Spans[i].Value = ev.Value
				tl.Spans[i].Complete = true
				continue
			}
			// Close without an open (the open was evicted): keep the
			// information as a mark.
		}
		tl.Marks = append(tl.Marks, Mark{
			Track:  ev.Component,
			Name:   ev.Event,
			Detail: ev.Detail,
			At:     ev.At,
			Value:  ev.Value,
		})
	}
	// Spans still open when the stream ends extend to the last event.
	for _, i := range open {
		tl.Spans[i].End = last
	}
	return tl
}

// BuildAll builds one timeline per source.
func BuildAll(srcs []Source) []Timeline {
	out := make([]Timeline, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, Build(s))
	}
	return out
}
