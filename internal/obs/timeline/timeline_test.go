package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func ev(at time.Duration, comp, event, detail string, value int64) obs.TraceEvent {
	return obs.TraceEvent{At: at, Component: comp, Event: event, Detail: detail, Value: value}
}

func TestBuildPairsHoldSpan(t *testing.T) {
	tl := Build(Source{Name: "C1", Events: []obs.TraceEvent{
		ev(time.Second, "core", "hold_start", "up", 120),
		ev(2*time.Second, "tcp", "spoofed_ack", "C1", 0),
		ev(5*time.Second, "core", "release", "up", 3),
	}})
	if len(tl.Spans) != 1 || len(tl.Marks) != 1 {
		t.Fatalf("spans=%d marks=%d, want 1/1", len(tl.Spans), len(tl.Marks))
	}
	s := tl.Spans[0]
	if s.Name != "hold" || s.Track != "core/up" || !s.Complete {
		t.Fatalf("span = %+v", s)
	}
	if s.Start != time.Second || s.End != 5*time.Second || s.Duration() != 4*time.Second {
		t.Fatalf("span extent = [%v, %v]", s.Start, s.End)
	}
	if s.Close != "release" || s.Value != 3 {
		t.Fatalf("close = %q value = %d", s.Close, s.Value)
	}
	if m := tl.Marks[0]; m.Name != "spoofed_ack" || m.At != 2*time.Second {
		t.Fatalf("mark = %+v", m)
	}
}

func TestBuildPairsByValue(t *testing.T) {
	// Two interleaved in-flight HTTP requests from the same device pair by
	// id, not first-in-first-out.
	tl := Build(Source{Name: "d", Events: []obs.TraceEvent{
		ev(1*time.Second, "http", "request", "P1", 1),
		ev(2*time.Second, "http", "request", "P1", 2),
		ev(3*time.Second, "http", "response", "P1", 2),
		ev(9*time.Second, "http", "ack_timeout", "P1", 1),
	}})
	if len(tl.Spans) != 2 || len(tl.Marks) != 0 {
		t.Fatalf("spans=%d marks=%d, want 2/0", len(tl.Spans), len(tl.Marks))
	}
	if tl.Spans[0].Close != "ack_timeout" || tl.Spans[0].End != 9*time.Second {
		t.Fatalf("request 1 = %+v", tl.Spans[0])
	}
	if tl.Spans[1].Close != "response" || tl.Spans[1].End != 3*time.Second {
		t.Fatalf("request 2 = %+v", tl.Spans[1])
	}
}

func TestBuildUnclosedSpanExtendsToEnd(t *testing.T) {
	tl := Build(Source{Name: "d", Events: []obs.TraceEvent{
		ev(time.Second, "mqtt", "ka_sent", "C1", 0),
		ev(7*time.Second, "cloud", "alarm", "C1:stale-event", 0),
	}})
	if len(tl.Spans) != 1 {
		t.Fatalf("spans = %+v", tl.Spans)
	}
	s := tl.Spans[0]
	if s.Complete || s.Close != "" || s.End != 7*time.Second {
		t.Fatalf("unclosed span = %+v", s)
	}
}

func TestBuildCloseWithoutOpenBecomesMark(t *testing.T) {
	tl := Build(Source{Name: "d", Events: []obs.TraceEvent{
		ev(time.Second, "core", "release", "up", 2),
	}})
	if len(tl.Spans) != 0 || len(tl.Marks) != 1 {
		t.Fatalf("spans=%d marks=%d, want 0/1", len(tl.Spans), len(tl.Marks))
	}
	if tl.Marks[0].Name != "release" {
		t.Fatalf("mark = %+v", tl.Marks[0])
	}
}

func TestBuildDuplicateOpenDisplaces(t *testing.T) {
	// The first hold's release was evicted from the ring: a second open on
	// the same key ends it (incomplete) where the new one begins.
	tl := Build(Source{Name: "d", Events: []obs.TraceEvent{
		ev(1*time.Second, "core", "hold_start", "up", 0),
		ev(4*time.Second, "core", "hold_start", "up", 0),
		ev(6*time.Second, "core", "release", "up", 1),
	}})
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %+v", tl.Spans)
	}
	if tl.Spans[0].Complete || tl.Spans[0].End != 4*time.Second {
		t.Fatalf("displaced span = %+v", tl.Spans[0])
	}
	if !tl.Spans[1].Complete || tl.Spans[1].End != 6*time.Second {
		t.Fatalf("live span = %+v", tl.Spans[1])
	}
}

func TestBuildPhaseSpans(t *testing.T) {
	tl := Build(Source{Name: "row", Events: []obs.TraceEvent{
		ev(0, "experiment", "phase_start", "profile", 0),
		ev(time.Minute, "experiment", "phase_end", "profile", 0),
		ev(time.Minute, "experiment", "phase_start", "demo-event", 0),
		ev(2*time.Minute, "experiment", "phase_end", "demo-event", 41),
	}})
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %+v", tl.Spans)
	}
	if tl.Spans[0].Name != "phase" || tl.Spans[0].Detail != "profile" {
		t.Fatalf("phase 0 = %+v", tl.Spans[0])
	}
	if tl.Spans[1].Value != 41 {
		t.Fatalf("phase 1 value = %d, want 41", tl.Spans[1].Value)
	}
}

func chromeFixture() []Timeline {
	return BuildAll([]Source{
		{Name: "C1", Events: []obs.TraceEvent{
			ev(time.Second, "core", "hold_start", "up", 120),
			ev(2*time.Second, "tcp", "spoofed_ack", "C1", 0),
			ev(5*time.Second, "core", "release", "up", 3),
		}},
		{Name: "C2", Events: []obs.TraceEvent{
			ev(time.Second, "mqtt", "ka_sent", "C2", 0),
			ev(2*time.Second, "mqtt", "ka_answered", "C2", 0),
		}},
	})
}

func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta int
	for _, e := range file.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"] == nil {
				t.Fatalf("complete event without dur: %v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	// 2 spans, 1 instant, 2 process_name + 3 thread_name metadata records.
	if spans != 2 || instants != 1 || meta != 5 {
		t.Fatalf("spans=%d instants=%d meta=%d:\n%s", spans, instants, meta, buf.String())
	}
	// Timestamps are microseconds: the hold starts at 1s = 1e6 µs.
	found := false
	for _, e := range file.TraceEvents {
		if e["name"] == "hold" && e["ts"] == 1e6 && e["dur"] == 4e6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hold span with µs timestamps missing:\n%s", buf.String())
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal timelines serialized differently")
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, w := range []string{"=== C1 ===", "=== C2 ===", "span hold", "mark spoofed_ack", "span keepalive"} {
		if !strings.Contains(got, w) {
			t.Fatalf("text render missing %q:\n%s", w, got)
		}
	}
	// Chronological: the hold (1s) precedes the spoofed ACK (2s).
	if strings.Index(got, "span hold") > strings.Index(got, "mark spoofed_ack") {
		t.Fatalf("listing not chronological:\n%s", got)
	}
}
