package timeline

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteText renders timelines as an indented plain-text report — the quick
// no-tooling view of the same data WriteChromeTrace exports.
func WriteText(w io.Writer, tls []Timeline) error {
	for i, tl := range tls {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "=== %s ===\n", tl.Name); err != nil {
			return err
		}
		// One merged chronological listing; spans sort by start, marks by
		// time, ties resolved span-first then by original order.
		type line struct {
			at   time.Duration
			seq  int
			text string
		}
		lines := make([]line, 0, len(tl.Spans)+len(tl.Marks))
		for si, s := range tl.Spans {
			state := s.Close
			if !s.Complete {
				state = "unclosed"
			}
			text := fmt.Sprintf("%12v  span %-9s %-28s %v (%s)",
				s.Start, s.Name, s.Track, s.Duration(), state)
			if s.Value != 0 {
				text += fmt.Sprintf(" value=%d", s.Value)
			}
			lines = append(lines, line{at: s.Start, seq: si, text: text})
		}
		for mi, m := range tl.Marks {
			text := fmt.Sprintf("%12v  mark %-9s %s", m.At, m.Name, m.Track)
			if m.Detail != "" {
				text += " " + m.Detail
			}
			if m.Value != 0 {
				text += fmt.Sprintf(" value=%d", m.Value)
			}
			lines = append(lines, line{at: m.At, seq: len(tl.Spans) + mi, text: text})
		}
		sort.SliceStable(lines, func(a, b int) bool {
			if lines[a].at != lines[b].at {
				return lines[a].at < lines[b].at
			}
			return lines[a].seq < lines[b].seq
		})
		for _, l := range lines {
			if _, err := fmt.Fprintln(w, l.text); err != nil {
				return err
			}
		}
	}
	return nil
}
