package timeline

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// schema chrome://tracing and Perfetto load). Fields marshal in struct
// order and args maps marshal with sorted keys, so equal timelines
// serialize byte-identically.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

const usPerNs = 1e-3

// WriteChromeTrace serializes timelines as a Chrome trace-event JSON file.
// Each timeline becomes one process (named by its source), each track one
// thread; spans render as complete ("X") events and marks as thread-scoped
// instants ("i"). Load the output at https://ui.perfetto.dev or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, tls []Timeline) error {
	file := chromeFile{TraceEvents: []chromeEvent{}}
	for ti, tl := range tls {
		pid := ti + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": tl.Name},
		})
		tracks := make(map[string]int)
		var names []string
		for _, s := range tl.Spans {
			if _, ok := tracks[s.Track]; !ok {
				tracks[s.Track] = 0
				names = append(names, s.Track)
			}
		}
		for _, m := range tl.Marks {
			if _, ok := tracks[m.Track]; !ok {
				tracks[m.Track] = 0
				names = append(names, m.Track)
			}
		}
		sort.Strings(names)
		for i, n := range names {
			tracks[n] = i + 1
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]any{"name": n},
			})
		}
		for _, s := range tl.Spans {
			dur := float64(s.End-s.Start) * usPerNs
			args := map[string]any{"detail": s.Detail, "complete": s.Complete}
			if s.Close != "" {
				args["close"] = s.Close
			}
			if s.Value != 0 {
				args["value"] = s.Value
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.Name, Ph: "X",
				Ts: float64(s.Start) * usPerNs, Dur: &dur,
				Pid: pid, Tid: tracks[s.Track], Args: args,
			})
		}
		for _, m := range tl.Marks {
			args := map[string]any{}
			if m.Detail != "" {
				args["detail"] = m.Detail
			}
			if m.Value != 0 {
				args["value"] = m.Value
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: m.Name, Ph: "i", S: "t",
				Ts:  float64(m.At) * usPerNs,
				Pid: pid, Tid: tracks[m.Track], Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
