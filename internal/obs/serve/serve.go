// Package serve is the live observability plane: a stdlib-only HTTP
// server exposing a running campaign's metrics, progress, and attack
// timelines while the run is still in flight.
//
// The plane lives strictly on the wall-clock side of the repo's sim/wall
// boundary. It holds no simulation state of its own — each endpoint pulls
// through a read hook the caller wires up (typically obs.Accumulator.State
// and fleet.ProgressTracker.ReportAt), so a scrape observes a consistent
// prefix of the campaign without ever touching the workers. The inverse
// direction is fenced by the phantomlint wallclockboundary analyzer: sim
// packages must never import this package (or net, or net/http).
//
// Endpoints:
//
//	/healthz         200 "ok" — liveness for scripts and CI smoke tests
//	/metrics         OpenMetrics text exposition (obs.WriteOpenMetrics)
//	/progress        JSON campaign progress (fleet.ProgressReport shape)
//	/trace           Chrome trace-event JSON, loadable in Perfetto
//	/debug/pprof/... the standard net/http/pprof profiling handlers
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

// openMetricsContentType is the OpenMetrics 1.0 exposition media type,
// negotiated by Prometheus scrapers.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Plane wires a server's endpoints to a running campaign through read
// hooks. A nil hook serves 404 on its endpoint, so a caller exposes only
// what the run actually produces (a table run has no fleet progress; a
// traceless fleet run still serves an empty-but-valid /trace).
type Plane struct {
	// Metrics returns the current aggregate snapshot for /metrics.
	Metrics func() obs.Snapshot
	// Progress returns the /progress JSON payload — any JSON-encodable
	// value, conventionally a fleet.ProgressReport.
	Progress func() any
	// TraceSources returns the event streams rendered by /trace.
	TraceSources func() []timeline.Source
}

// Handler builds the plane's routing table. Exposed separately from Start
// so tests drive it through net/http/httptest.
func (p Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if p.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			// Render to a buffer first: WriteOpenMetrics cannot fail on a
			// bytes.Buffer, and a scraper never sees a torn exposition.
			var buf bytes.Buffer
			if err := obs.WriteOpenMetrics(&buf, p.Metrics()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", openMetricsContentType)
			w.Write(buf.Bytes())
		})
	}
	if p.Progress != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(p.Progress()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf.Bytes())
		})
	}
	if p.TraceSources != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			var buf bytes.Buffer
			if err := timeline.WriteChromeTrace(&buf, timeline.BuildAll(p.TraceSources())); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf.Bytes())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability plane.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (":9090", "127.0.0.1:0", ...) and serves the plane in
// a background goroutine. Binding errors surface immediately; the caller
// learns the resolved port — meaningful with ":0" — from Addr.
func Start(addr string, p Plane) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately. In-flight scrapes are cut off — the
// plane is diagnostics, not data plane, so shutdown never blocks a run's
// exit.
func (s *Server) Close() error { return s.srv.Close() }
