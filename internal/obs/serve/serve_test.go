package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// parseOpenMetrics reads sample lines ("name{labels} value") into a map,
// checking the exposition is well-formed enough to scrape: non-sample
// lines are # comments and the last line is # EOF.
func parseOpenMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatalf("exposition does not end with # EOF:\n%s", body)
	}
	out := make(map[string]float64)
	for _, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", ln)
		}
		v, err := strconv.ParseFloat(ln[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", ln, err)
		}
		out[ln[:sp]] = v
	}
	return out
}

func testSnapshot(n int) obs.Snapshot {
	r := obs.NewRegistry()
	r.SetTraceCapacity(16)
	for i := 0; i < n; i++ {
		r.Counter("requests_total").Add(7)
		r.Histogram("lat_seconds", []float64{1, 10}).Observe(0.5 + float64(i))
		r.Trace().Emit(time.Duration(i)*time.Millisecond, "serve", "tick", "", int64(i))
	}
	r.Gauge("depth").Set(int64(n))
	return r.Snapshot()
}

func TestHealthz(t *testing.T) {
	code, body, _ := get(t, Plane{}.Handler(), "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestNilHooks404(t *testing.T) {
	h := Plane{}.Handler()
	for _, path := range []string{"/metrics", "/progress", "/trace"} {
		if code, _, _ := get(t, h, path); code != http.StatusNotFound {
			t.Errorf("%s with nil hook = %d, want 404", path, code)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	h := Plane{Metrics: func() obs.Snapshot { return testSnapshot(3) }}.Handler()
	code, body, ct := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct != openMetricsContentType {
		t.Fatalf("content type = %q", ct)
	}
	samples := parseOpenMetrics(t, body)
	if samples["requests_total"] != 21 {
		t.Fatalf("requests_total = %v, want 21\n%s", samples["requests_total"], body)
	}
	if samples["lat_seconds_count"] != 3 {
		t.Fatalf("lat_seconds_count = %v, want 3", samples["lat_seconds_count"])
	}
}

// TestMetricsMidRunPrefixConsistent is the live-scrape contract: a mid-run
// scrape of a streaming accumulator parses as OpenMetrics and is a prefix
// of the final aggregate — every family present, every monotone sample
// (counters, bucket counts, histogram counts) no greater than its final
// value.
func TestMetricsMidRunPrefixConsistent(t *testing.T) {
	acc := obs.NewAccumulator()
	h := Plane{Metrics: acc.State}.Handler()

	var midBodies []string
	for i := 0; i < 4; i++ {
		acc.Add(testSnapshot(i + 1))
		_, body, _ := get(t, h, "/metrics")
		midBodies = append(midBodies, body)
	}
	final := parseOpenMetrics(t, midBodies[len(midBodies)-1])

	for i, body := range midBodies {
		mid := parseOpenMetrics(t, body)
		for key, v := range mid {
			fv, ok := final[key]
			if !ok {
				t.Fatalf("scrape %d: sample %q missing from final exposition", i, key)
			}
			monotone := strings.Contains(key, "_total") ||
				strings.Contains(key, "_bucket") ||
				strings.Contains(key, "_count") ||
				strings.Contains(key, "_sum")
			if monotone && v > fv {
				t.Errorf("scrape %d: %s = %v exceeds final %v", i, key, v, fv)
			}
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	start := time.Unix(1000, 0)
	tr := fleet.NewProgressTracker(start, 40)
	tr.OnShard(fleet.ShardResult{Homes: 10, Tallies: []fleet.ModelTally{{Model: "C1", Trials: 4, Successes: 3}}}, 1, 4)
	h := Plane{Progress: func() any { return tr.ReportAt(start.Add(2 * time.Second)) }}.Handler()

	code, body, ct := get(t, h, "/progress")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/progress = %d %q", code, ct)
	}
	var rep fleet.ProgressReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if rep.HomesDone != 10 || rep.HomesTotal != 40 || rep.HomesPerSec != 5 {
		t.Fatalf("progress payload wrong: %+v", rep)
	}
	if len(rep.PerModel) != 1 || rep.PerModel[0].Model != "C1" {
		t.Fatalf("per-model wrong: %+v", rep.PerModel)
	}
}

func TestTraceEndpoint(t *testing.T) {
	snap := testSnapshot(2)
	h := Plane{TraceSources: func() []timeline.Source {
		return []timeline.Source{{Name: "run", Events: snap.Trace}}
	}}.Handler()
	code, body, ct := get(t, h, "/trace")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/trace = %d %q", code, ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace not Chrome JSON: %v\n%s", err, body)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// A traceless run still serves a valid, empty document.
	empty := Plane{TraceSources: func() []timeline.Source { return nil }}.Handler()
	_, body, _ = get(t, empty, "/trace")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v\n%s", err, body)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace has events: %s", body)
	}
}

func TestPprofExposed(t *testing.T) {
	code, body, _ := get(t, Plane{}.Handler(), "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestLiveFleetCampaign wires a real campaign to a real listener — the
// full -serve shape: scrape mid-run from OnShard, then check the final
// result is untouched by serving.
func TestLiveFleetCampaign(t *testing.T) {
	acc := obs.NewAccumulator()
	tr := fleet.NewProgressTracker(time.Unix(0, 0), 24)
	srv, err := Start("127.0.0.1:0", Plane{
		Metrics:  acc.State,
		Progress: func() any { return tr.ReportAt(time.Unix(1, 0)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := fleet.DefaultSpec()
	spec.Trials = 1
	scrapes := 0
	c := fleet.Campaign{
		Spec: spec, Homes: 24, ShardSize: 4, Seed: 7, Workers: 3,
		Accumulator: acc,
		OnShard: func(s fleet.ShardResult, done, total int) {
			tr.OnShard(s, done, total)
			for _, path := range []string{"/healthz", "/metrics", "/progress"} {
				resp, err := http.Get("http://" + srv.Addr() + path)
				if err != nil {
					t.Errorf("mid-run GET %s: %v", path, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("mid-run GET %s = %d", path, resp.StatusCode)
				}
				scrapes++
			}
		},
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if scrapes == 0 {
		t.Fatal("no mid-run scrapes happened")
	}
	if res.TotalTrials == 0 {
		t.Fatal("campaign ran no trials")
	}
	if got := tr.ReportAt(time.Unix(1, 0)); got.HomesDone != 24 {
		t.Fatalf("tracker homesDone = %d, want 24", got.HomesDone)
	}
}
