package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteOpenMetrics writes a snapshot in the OpenMetrics text exposition
// format (the Prometheus scrape format), so campaign metrics plug into
// standard dashboards:
//
//	# TYPE tcpsim_segments_sent counter
//	tcpsim_segments_sent_total{host="C1"} 412
//	# TYPE core_held_records gauge
//	core_held_records 0
//	# TYPE core_release_latency_seconds histogram
//	core_release_latency_seconds_bucket{le="0.001"} 0
//	...
//	# EOF
//
// Counters follow the OpenMetrics family convention: the family name drops
// the registry's "_total" suffix and the sample re-adds it. Gauges emit a
// companion "<name>_max" gauge family carrying the high-water mark.
// Histogram buckets are cumulative (the snapshot stores per-bucket counts)
// and end with the implicit "+Inf" bucket, followed by _sum and _count.
//
// Snapshots are pre-sorted, so equal snapshots serialize byte-identically.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	var b strings.Builder
	lastFamily := ""
	family := func(name, typ string) {
		if name == lastFamily {
			return
		}
		lastFamily = name
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	}
	for _, c := range s.Counters {
		fam := strings.TrimSuffix(c.Name, "_total")
		family(fam, "counter")
		fmt.Fprintf(&b, "%s_total%s %d\n", fam, renderLabels(c.Labels, ""), c.Value)
	}
	for _, g := range s.Gauges {
		family(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", g.Name, renderLabels(g.Labels, ""), g.Value)
	}
	// High-water marks as a separate gauge family per base gauge, emitted
	// after the base families so each family's samples stay contiguous.
	lastFamily = ""
	for _, g := range s.Gauges {
		family(g.Name+"_max", "gauge")
		fmt.Fprintf(&b, "%s_max%s %d\n", g.Name, renderLabels(g.Labels, ""), g.Max)
	}
	lastFamily = ""
	for _, h := range s.Histograms {
		family(h.Name, "histogram")
		labels := renderLabels(h.Labels, "")
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, le), cum)
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, "+Inf"), cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, labels, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, labels, h.Count)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels formats a label set, appending an "le" label when non-empty
// (histogram buckets). An empty set with no le renders as "".
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
