package obs

import (
	"encoding/json"
	"math"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
)

// bigSum folds vs into an arbitrary-precision reference sum. 2200 bits of
// mantissa exceeds the 2098-bit span of all finite float64s plus the
// accumulation headroom, so the reference is exact for every test input.
func bigSum(vs []float64) *big.Float {
	sum := new(big.Float).SetPrec(2200)
	for _, v := range vs {
		sum.Add(sum, new(big.Float).SetPrec(2200).SetFloat64(v))
	}
	return sum
}

// refValue rounds the exact reference sum to float64 the way Value must:
// nearest, ties to even — big.Float's default rounding mode.
func refValue(vs []float64) float64 {
	f, _ := bigSum(vs).Float64()
	return f
}

// randFloat draws from a distribution heavy in awkward cases: mixed signs,
// wildly mixed magnitudes, subnormals, and exact powers of two.
func randFloat(r *rand.Rand) float64 {
	switch r.Intn(8) {
	case 0: // full normal range
		return math.Ldexp(r.Float64()*2-1, r.Intn(2045)-1022)
	case 1: // subnormal
		return math.Ldexp(float64(r.Int63n(1<<52)), -1074) * float64(1-2*r.Intn(2))
	case 2: // power of two
		return math.Ldexp(1, r.Intn(2046)-1074) * float64(1-2*r.Intn(2))
	case 3: // boundary values
		return [...]float64{0, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, 1, -1}[r.Intn(6)]
	default: // everyday magnitudes (delay seconds and the like)
		return (r.Float64()*2 - 1) * math.Pow(10, float64(r.Intn(9)-4))
	}
}

func TestFloatSumMatchesBigFloatReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(12)
		vs := make([]float64, n)
		var s FloatSum
		for i := range vs {
			vs[i] = randFloat(r)
			s.Add(vs[i])
		}
		want := refValue(vs)
		if got := s.Value(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: Value() = %g (% x), reference %g (% x) for %v",
				trial, got, math.Float64bits(got), want, math.Float64bits(want), vs)
		}
	}
}

func TestFloatSumTwoOperandMatchesIEEE(t *testing.T) {
	// A single IEEE addition is correctly rounded, so the exact sum of two
	// values must equal the hardware result bit for bit.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a, b := randFloat(r), randFloat(r)
		if math.IsInf(a+b, 0) {
			continue // overflow rounds to Inf, which FloatSum represents finitely
		}
		var s FloatSum
		s.Add(a)
		s.Add(b)
		if got, want := s.Value(), a+b; math.Float64bits(got) != math.Float64bits(want) && got != want {
			t.Fatalf("%g + %g: Value() = %g, IEEE %g", a, b, got, want)
		}
	}
}

func TestFloatSumAssociativeAndCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		vs := make([]float64, 2+r.Intn(10))
		for i := range vs {
			vs[i] = randFloat(r)
		}
		var serial FloatSum
		for _, v := range vs {
			serial.Add(v)
		}
		// Random permutation, randomly grouped into partial sums merged
		// with AddSum: the limb state must be identical.
		perm := r.Perm(len(vs))
		var grouped FloatSum
		for i := 0; i < len(perm); {
			var part FloatSum
			k := 1 + r.Intn(len(perm)-i)
			for _, idx := range perm[i : i+k] {
				part.Add(vs[idx])
			}
			grouped.AddSum(&part)
			i += k
		}
		if serial != grouped {
			t.Fatalf("trial %d: regrouped accumulation diverged for %v:\n serial  %v\n grouped %v",
				trial, vs, serial.limbs, grouped.limbs)
		}
	}
}

func TestFloatSumCancellation(t *testing.T) {
	var s FloatSum
	for _, v := range []float64{1e300, math.SmallestNonzeroFloat64, -1e300, 0.1, -0.1, -math.SmallestNonzeroFloat64} {
		s.Add(v)
	}
	if !s.IsZero() {
		t.Fatalf("exact cancellation left non-zero limbs: %v", s.limbs)
	}
	if v := s.Value(); v != 0 {
		t.Fatalf("Value() = %g after full cancellation", v)
	}
	// Tiny survivor under a huge transient: exact accumulation must not
	// lose the 2^-1074 to absorption.
	var tiny FloatSum
	tiny.Add(math.MaxFloat64)
	tiny.Add(math.SmallestNonzeroFloat64)
	tiny.Add(-math.MaxFloat64)
	if got := tiny.Value(); got != math.SmallestNonzeroFloat64 {
		t.Fatalf("Value() = %g, want the smallest subnormal to survive", got)
	}
}

func TestFloatSumNegativeTotals(t *testing.T) {
	var s FloatSum
	s.Add(0.1)
	s.Add(-0.3)
	if got, want := s.Value(), refValue([]float64{0.1, -0.3}); got != want {
		t.Fatalf("Value() = %g, want %g", got, want)
	}
	s.Add(-1e308)
	s.Add(-1e308)
	// The exact total is below -MaxFloat64; Value saturates via Ldexp's
	// overflow to -Inf, matching what the real sum rounds to.
	if got := s.Value(); !math.IsInf(got, -1) {
		t.Fatalf("Value() = %g, want -Inf for an overflowing total", got)
	}
}

func TestFloatSumNonFinitePanics(t *testing.T) {
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%v) did not panic", v)
				}
			}()
			var s FloatSum
			s.Add(v)
		}()
	}
}

func TestFloatSumJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		var s FloatSum
		for i := 1 + r.Intn(6); i > 0; i-- {
			s.Add(randFloat(r))
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back FloatSum
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if s != back {
			t.Fatalf("round trip diverged:\n in  %v\n out %v", s.limbs, back.limbs)
		}
		// Canonical: re-encoding the decoded value reproduces the bytes.
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(again) {
			t.Fatalf("encoding not canonical: %s != %s", data, again)
		}
	}
	var zero FloatSum
	data, err := json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("zero sum encodes as %s, want []", data)
	}
	var s FloatSum
	if err := json.Unmarshal([]byte("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35]"), &s); err == nil {
		t.Fatal("oversized limb array accepted")
	}
}

// TestAbsorbReassociatesExactly is the law multi-process fleet merging
// rides on: split a snapshot sequence at any point, fold each half into
// its own accumulator, Absorb both into a third — the result must equal
// the uninterrupted serial fold in every field, exact sums included.
func TestAbsorbReassociatesExactly(t *testing.T) {
	snaps := make([]Snapshot, 7)
	for i := range snaps {
		snaps[i] = accSnap(i)
	}
	serial := NewAccumulator()
	for _, s := range snaps {
		serial.Add(s)
	}
	for split := 0; split <= len(snaps); split++ {
		left, right := NewAccumulator(), NewAccumulator()
		for _, s := range snaps[:split] {
			left.Add(s)
		}
		for _, s := range snaps[split:] {
			right.Add(s)
		}
		merged := NewAccumulator()
		if err := merged.Absorb(left.State(), left.HistogramSums(), left.Adds()); err != nil {
			t.Fatal(err)
		}
		if err := merged.Absorb(right.State(), right.HistogramSums(), right.Adds()); err != nil {
			t.Fatal(err)
		}
		if got, want := merged.State(), serial.State(); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: absorbed state diverges from serial fold:\n got %+v\nwant %+v", split, got, want)
		}
		if got, want := merged.HistogramSums(), serial.HistogramSums(); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: exact sums diverge after absorb", split)
		}
		if merged.Adds() != serial.Adds() {
			t.Fatalf("split %d: Adds() = %d, want %d", split, merged.Adds(), serial.Adds())
		}
	}
}

// TestAbsorbBeatsPlainRefold pins why Absorb exists: re-folding a rounded
// State() loses the exact tail of the sum, and for a crafted sequence the
// difference is observable in the final float64 — Absorb must not lose it.
func TestAbsorbBeatsPlainRefold(t *testing.T) {
	mk := func(v float64) Snapshot {
		r := NewRegistry()
		r.Histogram("h", []float64{1}).Observe(v)
		return r.Snapshot()
	}
	// 2^-53 is exactly half an ulp of 1: each rounded step ties back to 1,
	// but the exact sum 1 + 2·2^-53 = 1 + 2^-52 is representable.
	a, b, c := mk(1), mk(math.Ldexp(1, -53)), mk(math.Ldexp(1, -53))

	serial := NewAccumulator()
	for _, s := range []Snapshot{a, b, c} {
		serial.Add(s)
	}
	prefix := NewAccumulator()
	prefix.Add(a)
	prefix.Add(b)

	exact := NewAccumulator()
	if err := exact.Absorb(prefix.State(), prefix.HistogramSums(), prefix.Adds()); err != nil {
		t.Fatal(err)
	}
	exact.Add(c)

	refold := NewAccumulator()
	refold.Add(prefix.State()) // rounded boundary: exact tail lost
	refold.Add(c)

	wantSum := serial.State().Histograms[0].Sum
	if got := exact.State().Histograms[0].Sum; got != wantSum {
		t.Fatalf("Absorb-resumed sum %g != serial %g", got, wantSum)
	}
	if got := refold.State().Histograms[0].Sum; got == wantSum {
		t.Fatalf("plain re-fold unexpectedly matched the serial sum (%g) — counterexample no longer demonstrates the loss", got)
	}
}

func TestAbsorbValidation(t *testing.T) {
	acc := NewAccumulator()
	src := NewAccumulator()
	src.Add(accSnap(0))
	if err := acc.Absorb(src.State(), nil, src.Adds()); err == nil {
		t.Fatal("misaligned exact sums accepted")
	}
	if err := acc.Absorb(src.State(), src.HistogramSums(), -1); err == nil {
		t.Fatal("negative add count accepted")
	}
	unsorted := src.State()
	unsorted.Counters = append(unsorted.Counters, CounterValue{Name: "aaa_first"})
	if err := acc.Absorb(unsorted, src.HistogramSums(), 1); err == nil {
		t.Fatal("unsorted snapshot accepted")
	}
	if acc.Adds() != 0 {
		t.Fatalf("failed Absorbs mutated the accumulator: Adds() = %d", acc.Adds())
	}
}

// TestSnapshotJSONRoundTripFidelity: checkpoints persist Snapshot and
// FloatSum state as JSON; both must round-trip bit-for-bit, adversarial
// float values included.
func TestSnapshotJSONRoundTripFidelity(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(4)
	h := r.Histogram("awkward", []float64{1e-200, 0.5})
	for _, v := range []float64{0.1, 0.2, 1e-300, -1e-300, math.SmallestNonzeroFloat64, 1e300, -0.30000000000000004} {
		h.Observe(v)
	}
	r.Gauge("g").Set(-9007199254740993) // beyond 2^53: exact in int64 JSON
	r.Counter("c").Add(math.MaxUint64 / 3)
	r.Trace().Emit(1, "x", "y", "z", 2)
	acc := NewAccumulator()
	acc.Add(r.Snapshot())
	acc.Add(accSnap(5))

	state, sums := acc.State(), acc.HistogramSums()
	blob, err := json.Marshal(struct {
		State Snapshot
		Sums  []FloatSum
	}{state, sums})
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		State Snapshot
		Sums  []FloatSum
	}
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.State, state) {
		t.Fatalf("snapshot JSON round trip diverged:\n got %+v\nwant %+v", back.State, state)
	}
	if !reflect.DeepEqual(back.Sums, sums) {
		t.Fatal("exact sums JSON round trip diverged")
	}
	// Absorbing the round-tripped aggregate must continue the fold exactly.
	resumed := NewAccumulator()
	if err := resumed.Absorb(back.State, back.Sums, 2); err != nil {
		t.Fatal(err)
	}
	resumed.Add(accSnap(6))
	direct := NewAccumulator()
	direct.Add(r.Snapshot())
	direct.Add(accSnap(5))
	direct.Add(accSnap(6))
	if got, want := resumed.State(), direct.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("fold resumed from JSON diverged:\n got %+v\nwant %+v", got, want)
	}
}
