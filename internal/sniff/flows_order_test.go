package sniff_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
)

// TestFlowsOrderDeterministic is the regression test for the unsorted
// map-range in Capture.Flows surfaced by the maporder analyzer: the flow
// table is a map, so before the sort the listing changed order from call
// to call (and run to run). Flows feeds fingerprinting and target
// selection, so its byte layout must be a pure function of the capture.
func TestFlowsOrderDeterministic(t *testing.T) {
	clk := simtime.NewClock()
	cap := sniff.NewCapture(clk)

	// Enough flows that a map-ordered listing is overwhelmingly unlikely
	// to match the sorted order by chance (1/64! per call).
	server := tcpsim.Endpoint{Addr: ipaddr.MustParse("100.64.10.10"), Port: 443}
	for i := 0; i < 64; i++ {
		client := tcpsim.Endpoint{
			Addr: ipaddr.MustParse(fmt.Sprintf("192.168.1.%d", 10+i)),
			Port: uint16(50000 + i),
		}
		seg := tcpsim.Segment{Seq: 100, Flags: tcpsim.FlagSYN, SrcPort: client.Port, DstPort: server.Port}
		p := ipnet.Packet{Src: client.Addr, Dst: server.Addr, Proto: ipnet.ProtoTCP, Payload: seg.Marshal()}
		cap.HandleFrame(netsim.Frame{Type: netsim.EtherTypeIPv4, Payload: p.Marshal()})
	}

	first := cap.Flows()
	if len(first) != 64 {
		t.Fatalf("Flows() = %d flows, want 64", len(first))
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i].Client, first[j].Client
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Port < b.Port
	}) {
		t.Fatalf("Flows() not sorted by client endpoint: %v", first)
	}
	// Repeated calls over the same map must produce identical bytes.
	for call := 0; call < 5; call++ {
		if got := cap.Flows(); !reflect.DeepEqual(got, first) {
			t.Fatalf("Flows() call %d differs from first call:\n got %v\nwant %v", call+2, got, first)
		}
	}
}
