// Package sniff implements the passive side of the attack: promiscuous
// capture of frames on the WiFi segment, per-flow TCP stream reassembly,
// and extraction of TLS record metadata (timing, direction, cleartext
// lengths). Record lengths and keep-alive periods are the fingerprints
// that let an attacker recognise device models and message types in
// encrypted traffic (Section II-C / the profiling step of Section IV-C).
package sniff

import (
	"sort"

	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// Direction orients a record within a flow.
type Direction int

// Directions. The TCP initiator is the device side everywhere in the
// simulated home, so client-to-server means device-to-server.
const (
	DirClientToServer Direction = iota + 1
	DirServerToClient
)

// String names the direction.
func (d Direction) String() string {
	if d == DirClientToServer {
		return "c2s"
	}
	return "s2c"
}

// FlowKey identifies a TCP connection, oriented by its initiator.
type FlowKey struct {
	Client tcpsim.Endpoint
	Server tcpsim.Endpoint
}

// RecordMeta is one observed TLS record.
type RecordMeta struct {
	At   simtime.Time
	Flow FlowKey
	Dir  Direction
	Type tlssim.RecordType
	// WireLen is the record's total on-the-wire size (header + body).
	WireLen int
	// Payload is the record's raw wire bytes (header included), retained
	// only when the capture is in RetainPayloads mode and the per-flow
	// budget has not evicted it. Replay attacks re-inject these bytes.
	Payload []byte
}

// PlainLen estimates the record's plaintext length (application records
// carry header + AEAD overhead).
func (r RecordMeta) PlainLen() int {
	if r.Type == tlssim.RecordApplication {
		return r.WireLen - tlssim.Overhead
	}
	return r.WireLen - tlssim.HeaderLen
}

// maxOOOSegments bounds the out-of-order reassembly buffer per stream
// direction. A MITM'd connection puts two TCP streams on one four-tuple
// (the device's and the attacker's re-origination of it); the losing
// stream's segments never reassemble and would otherwise pile up here for
// the life of the flow. Overflow drops the new segment and counts it.
const maxOOOSegments = 512

// Capture reassembles TLS record metadata from observed frames.
type Capture struct {
	clk     *simtime.Clock
	flows   map[FlowKey]*flowState
	records []RecordMeta

	// retainBudget > 0 enables payload retention: each flow keeps up to
	// that many raw record bytes, oldest-evicted-first.
	retainBudget   int
	evictedRecords uint64
	evictedBytes   uint64
	oooDropped     uint64

	mEvictedRecords *obs.Counter
	mEvictedBytes   *obs.Counter
	mOOODropped     *obs.Counter

	// OnRecord observes each record as it completes.
	OnRecord func(RecordMeta)
}

type flowState struct {
	key     FlowKey
	streams [2]*dirStream
	// retained indexes this flow's payload-bearing records (into
	// Capture.records) in arrival order; retainedBytes is their budget use.
	retained      []int
	retainedBytes int
}

// dirStream reassembles one direction of a flow.
type dirStream struct {
	started bool
	nextSeq uint32
	ooo     map[uint32][]byte
	buf     []byte
}

// NewCapture creates an empty capture.
func NewCapture(clk *simtime.Clock) *Capture {
	return &Capture{clk: clk, flows: make(map[FlowKey]*flowState)}
}

// Reset returns the capture to its freshly constructed state — flows,
// records, retention mode, eviction counters and observer hooks all
// cleared — keeping its allocations, so pooled attacker captures behave
// byte-identically to NewCapture(clk) under testbed reuse.
func (c *Capture) Reset() {
	clear(c.flows)
	// clear before truncating so retained payload references are released.
	clear(c.records)
	c.records = c.records[:0]
	c.retainBudget = 0
	c.evictedRecords, c.evictedBytes, c.oooDropped = 0, 0, 0
	c.mEvictedRecords, c.mEvictedBytes, c.mOOODropped = nil, nil, nil
	c.OnRecord = nil
}

// RetainPayloads turns on raw payload retention with the given per-flow
// byte budget (0 turns it off). Only records observed after the call are
// retained; when a flow exceeds its budget the oldest retained payloads
// are evicted and counted.
func (c *Capture) RetainPayloads(budgetPerFlow int) {
	if budgetPerFlow < 0 {
		budgetPerFlow = 0
	}
	c.retainBudget = budgetPerFlow
}

// Retaining reports the active per-flow retention budget (0 = off).
func (c *Capture) Retaining() int { return c.retainBudget }

// EvictedRecords counts payloads evicted by the per-flow retention budget.
func (c *Capture) EvictedRecords() uint64 { return c.evictedRecords }

// EvictedBytes counts payload bytes evicted by the retention budget.
func (c *Capture) EvictedBytes() uint64 { return c.evictedBytes }

// OOODropped counts out-of-order segments dropped by the reassembly cap.
func (c *Capture) OOODropped() uint64 { return c.oooDropped }

// Instrument attaches registry counters for the capture's memory-bound
// events: retention evictions and out-of-order drops.
func (c *Capture) Instrument(reg *obs.Registry) {
	c.mEvictedRecords = reg.Counter("sniff_retained_evicted_records_total")
	c.mEvictedBytes = reg.Counter("sniff_retained_evicted_bytes_total")
	c.mOOODropped = reg.Counter("sniff_ooo_dropped_total")
}

// Tap returns a netsim tap feeding the capture; attach it to a segment (or
// set a promiscuous NIC handler to call HandleFrame).
func (c *Capture) Tap() netsim.Tap {
	return func(f netsim.Frame) { c.HandleFrame(f) }
}

// Records returns all records observed so far.
func (c *Capture) Records() []RecordMeta {
	out := make([]RecordMeta, len(c.records))
	copy(out, c.records)
	return out
}

// FlowRecords returns the records of one flow in order.
func (c *Capture) FlowRecords(key FlowKey) []RecordMeta {
	var out []RecordMeta
	for _, r := range c.records {
		if r.Flow == key {
			out = append(out, r)
		}
	}
	return out
}

// Flows lists the flows seen so far, ordered by client then server
// endpoint. The flow table is a map, so without the sort the listing
// would change order run to run — and Flows feeds fingerprinting and
// attack target selection, which must be pure functions of the capture.
func (c *Capture) Flows() []FlowKey {
	out := make([]FlowKey, 0, len(c.flows))
	for k := range c.flows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return flowKeyLess(out[i], out[j]) })
	return out
}

func flowKeyLess(a, b FlowKey) bool {
	if a.Client != b.Client {
		return endpointLess(a.Client, b.Client)
	}
	return endpointLess(a.Server, b.Server)
}

func endpointLess(a, b tcpsim.Endpoint) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Port < b.Port
}

// StreamSeq returns the next expected TCP sequence number of one direction
// of a live flow — everything an attacker needs to forge a valid in-window
// segment (such as the RST used to take over an established session).
func (c *Capture) StreamSeq(key FlowKey, dir Direction) (uint32, bool) {
	fs, ok := c.flows[key]
	if !ok {
		return 0, false
	}
	st := fs.streams[dir-1]
	if !st.started {
		return 0, false
	}
	return st.nextSeq, true
}

// HandleFrame ingests one layer-2 frame.
func (c *Capture) HandleFrame(f netsim.Frame) {
	if f.Type != netsim.EtherTypeIPv4 {
		return
	}
	pkt, err := ipnet.Unmarshal(f.Payload)
	if err != nil || pkt.Proto != ipnet.ProtoTCP {
		return
	}
	seg, err := tcpsim.UnmarshalSegment(pkt.Payload)
	if err != nil {
		return
	}
	src := tcpsim.Endpoint{Addr: pkt.Src, Port: seg.SrcPort}
	dst := tcpsim.Endpoint{Addr: pkt.Dst, Port: seg.DstPort}

	// Orientation: a bare SYN starts a flow with src as client. Data on
	// unknown flows is attributed by matching either orientation.
	if seg.Flags.Has(tcpsim.FlagSYN) && !seg.Flags.Has(tcpsim.FlagACK) {
		key := FlowKey{Client: src, Server: dst}
		fs := &flowState{key: key}
		fs.streams[0] = &dirStream{nextSeq: seg.Seq + 1, started: true, ooo: make(map[uint32][]byte)}
		fs.streams[1] = &dirStream{ooo: make(map[uint32][]byte)}
		c.flows[key] = fs
		return
	}

	fs, dir := c.lookup(src, dst)
	if fs == nil {
		return
	}
	st := fs.streams[dir-1]
	if seg.Flags.Has(tcpsim.FlagSYN) { // SYN-ACK seeds the server stream
		st.nextSeq = seg.Seq + 1
		st.started = true
		return
	}
	if seg.Flags.Has(tcpsim.FlagRST) {
		delete(c.flows, fs.key)
		return
	}
	if !st.started || len(seg.Payload) == 0 {
		return
	}
	c.ingest(fs, dir, st, seg)
}

func (c *Capture) lookup(src, dst tcpsim.Endpoint) (*flowState, Direction) {
	if fs, ok := c.flows[FlowKey{Client: src, Server: dst}]; ok {
		return fs, DirClientToServer
	}
	if fs, ok := c.flows[FlowKey{Client: dst, Server: src}]; ok {
		return fs, DirServerToClient
	}
	return nil, 0
}

func (c *Capture) ingest(fs *flowState, dir Direction, st *dirStream, seg tcpsim.Segment) {
	switch {
	case seg.Seq == st.nextSeq:
		st.buf = append(st.buf, seg.Payload...)
		st.nextSeq += uint32(len(seg.Payload))
		for {
			p, ok := st.ooo[st.nextSeq]
			if !ok {
				break
			}
			delete(st.ooo, st.nextSeq)
			st.buf = append(st.buf, p...)
			st.nextSeq += uint32(len(p))
		}
		c.drainRecords(fs, dir, st)
	case int32(seg.Seq-st.nextSeq) > 0:
		if len(st.ooo) >= maxOOOSegments {
			c.oooDropped++
			c.mOOODropped.Inc()
			return
		}
		// Detach from the delivered frame: netsim recycles its payload
		// buffers once delivery returns, and this byte range waits here
		// until the gap fills.
		st.ooo[seg.Seq] = append([]byte(nil), seg.Payload...)
	default:
		// Retransmission of already-captured bytes: ignore.
	}
}

func (c *Capture) drainRecords(fs *flowState, dir Direction, st *dirStream) {
	for len(st.buf) >= tlssim.HeaderLen {
		n := int(st.buf[3])<<8 | int(st.buf[4])
		total := tlssim.HeaderLen + n
		if len(st.buf) < total {
			return
		}
		meta := RecordMeta{
			At:      c.clk.Now(),
			Flow:    fs.key,
			Dir:     dir,
			Type:    tlssim.RecordType(st.buf[0]),
			WireLen: total,
		}
		if c.retainBudget > 0 {
			// Clone before the truncation below reuses the stream buffer.
			meta.Payload = append([]byte(nil), st.buf[:total]...)
		}
		st.buf = st.buf[total:]
		idx := len(c.records)
		c.records = append(c.records, meta)
		if meta.Payload != nil {
			c.retainRecord(fs, idx, total)
		}
		if c.OnRecord != nil {
			c.OnRecord(meta)
		}
	}
}

// retainRecord charges a freshly retained payload against its flow's
// budget, evicting the oldest retained payloads until it fits. A record
// larger than the whole budget evicts itself immediately.
func (c *Capture) retainRecord(fs *flowState, idx, size int) {
	fs.retained = append(fs.retained, idx)
	fs.retainedBytes += size
	for fs.retainedBytes > c.retainBudget && len(fs.retained) > 0 {
		old := fs.retained[0]
		fs.retained = fs.retained[1:]
		n := len(c.records[old].Payload)
		c.records[old].Payload = nil
		fs.retainedBytes -= n
		c.evictedRecords++
		c.evictedBytes += uint64(n)
		c.mEvictedRecords.Inc()
		c.mEvictedBytes.Add(uint64(n))
	}
}
