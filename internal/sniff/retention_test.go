package sniff_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// feeder crafts oriented frames for a single synthetic flow.
type feeder struct {
	cap      *sniff.Capture
	src, dst tcpsim.Endpoint
	nextSeq  uint32
}

func newFeeder(cap *sniff.Capture, clientPort uint16) *feeder {
	f := &feeder{
		cap: cap,
		src: tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.10"), Port: clientPort},
		dst: tcpsim.Endpoint{Addr: ipaddr.MustParse("100.64.10.10"), Port: 443},
	}
	f.frame(tcpsim.Segment{Seq: 100, Flags: tcpsim.FlagSYN}, f.src, f.dst)
	f.frame(tcpsim.Segment{Seq: 500, Ack: 101, Flags: tcpsim.FlagSYN | tcpsim.FlagACK}, f.dst, f.src)
	f.nextSeq = 101
	return f
}

func (f *feeder) frame(seg tcpsim.Segment, from, to tcpsim.Endpoint) {
	seg.SrcPort, seg.DstPort = from.Port, to.Port
	p := ipnet.Packet{Src: from.Addr, Dst: to.Addr, Proto: ipnet.ProtoTCP, Payload: seg.Marshal()}
	f.cap.HandleFrame(netsim.Frame{Type: netsim.EtherTypeIPv4, Payload: p.Marshal()})
}

// record sends one in-order application record with an n-byte body filled
// with the given byte, and returns its full wire image.
func (f *feeder) record(n int, fill byte) []byte {
	rec := make([]byte, tlssim.HeaderLen+n)
	rec[0] = byte(tlssim.RecordApplication)
	rec[1], rec[2] = 3, 3
	rec[3], rec[4] = byte(n>>8), byte(n)
	for i := tlssim.HeaderLen; i < len(rec); i++ {
		rec[i] = fill
	}
	f.frame(tcpsim.Segment{Seq: f.nextSeq, Flags: tcpsim.FlagACK, Payload: rec}, f.src, f.dst)
	f.nextSeq += uint32(len(rec))
	return rec
}

func TestRetentionBudgetEvictsOldestFirst(t *testing.T) {
	cap := sniff.NewCapture(simtime.NewClock())
	reg := obs.NewRegistry()
	cap.Instrument(reg)
	cap.RetainPayloads(100)
	if cap.Retaining() != 100 {
		t.Fatalf("Retaining = %d, want 100", cap.Retaining())
	}

	f := newFeeder(cap, 50000)
	wires := [][]byte{f.record(40, 'a'), f.record(40, 'b'), f.record(40, 'c')}

	recs := cap.Records()
	if len(recs) != 3 {
		t.Fatalf("captured %d records, want 3", len(recs))
	}
	// Three 45-byte records against a 100-byte budget: the first is evicted,
	// the later two stay.
	if recs[0].Payload != nil {
		t.Fatal("oldest record still retained past the budget")
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(recs[i].Payload, wires[i]) {
			t.Fatalf("record %d payload = %x, want wire image %x", i, recs[i].Payload, wires[i])
		}
	}
	if cap.EvictedRecords() != 1 || cap.EvictedBytes() != 45 {
		t.Fatalf("evicted %d records / %d bytes, want 1 / 45",
			cap.EvictedRecords(), cap.EvictedBytes())
	}
	snap := reg.Snapshot()
	if snap.Counter("sniff_retained_evicted_records_total") != 1 ||
		snap.Counter("sniff_retained_evicted_bytes_total") != 45 {
		t.Fatalf("registry counters disagree with capture: %d / %d",
			snap.Counter("sniff_retained_evicted_records_total"),
			snap.Counter("sniff_retained_evicted_bytes_total"))
	}
}

func TestRetentionBudgetIsPerFlow(t *testing.T) {
	cap := sniff.NewCapture(simtime.NewClock())
	cap.RetainPayloads(100)
	a := newFeeder(cap, 50000)
	b := newFeeder(cap, 50001)
	// Fill flow A past its budget; flow B stays small.
	a.record(40, 'a')
	a.record(40, 'b')
	a.record(40, 'c')
	bw := b.record(40, 'x')

	var bRecs []sniff.RecordMeta
	for _, r := range cap.Records() {
		if r.Flow.Client.Port == 50001 {
			bRecs = append(bRecs, r)
		}
	}
	if len(bRecs) != 1 || !bytes.Equal(bRecs[0].Payload, bw) {
		t.Fatalf("flow B lost its payload to flow A's budget: %+v", bRecs)
	}
	if cap.EvictedRecords() != 1 {
		t.Fatalf("evictions = %d, want 1 (flow A only)", cap.EvictedRecords())
	}
}

func TestRetentionOversizedRecordEvictsItself(t *testing.T) {
	cap := sniff.NewCapture(simtime.NewClock())
	cap.RetainPayloads(40)
	f := newFeeder(cap, 50000)
	f.record(60, 'z') // 65 wire bytes > whole budget
	recs := cap.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d records, want 1", len(recs))
	}
	if recs[0].Payload != nil {
		t.Fatal("oversized record retained past the budget")
	}
	if cap.EvictedRecords() != 1 || cap.EvictedBytes() != 65 {
		t.Fatalf("evicted %d / %d, want 1 / 65", cap.EvictedRecords(), cap.EvictedBytes())
	}
}

func TestRetentionOffKeepsNothing(t *testing.T) {
	cap := sniff.NewCapture(simtime.NewClock())
	cap.RetainPayloads(-5) // negative clamps to off
	if cap.Retaining() != 0 {
		t.Fatalf("Retaining = %d, want 0", cap.Retaining())
	}
	f := newFeeder(cap, 50000)
	f.record(40, 'a')
	recs := cap.Records()
	if len(recs) != 1 || recs[0].Payload != nil {
		t.Fatalf("retention off but payload kept: %+v", recs)
	}
	if cap.EvictedRecords() != 0 {
		t.Fatal("retention off still counted evictions")
	}
}

func TestOutOfOrderBufferCapDropsAndCounts(t *testing.T) {
	cap := sniff.NewCapture(simtime.NewClock())
	reg := obs.NewRegistry()
	cap.Instrument(reg)
	f := newFeeder(cap, 50000)

	// Non-contiguous future segments pile up in the reassembly buffer until
	// the cap; everything past it is dropped and counted, not stored.
	for i := 0; i < 520; i++ {
		seq := f.nextSeq + 100 + uint32(i)*10
		f.frame(tcpsim.Segment{Seq: seq, Flags: tcpsim.FlagACK, Payload: []byte{1}}, f.src, f.dst)
	}
	if cap.OOODropped() != 8 {
		t.Fatalf("OOODropped = %d, want 8 (520 - cap of 512)", cap.OOODropped())
	}
	if got := reg.Snapshot().Counter("sniff_ooo_dropped_total"); got != 8 {
		t.Fatalf("sniff_ooo_dropped_total = %d, want 8", got)
	}
	if len(cap.Records()) != 0 {
		t.Fatal("out-of-order segments produced records without the gap filling")
	}
}

// TestResetMatchesFreshCapture drives a dirtied-then-Reset capture and a
// brand new one through the same frame sequence and requires bit-identical
// observations — the property pooled attacker captures rely on under
// testbed reuse.
func TestResetMatchesFreshCapture(t *testing.T) {
	run := func(cap *sniff.Capture) ([]sniff.RecordMeta, []sniff.FlowKey) {
		cap.RetainPayloads(100)
		f := newFeeder(cap, 50000)
		f.record(40, 'a')
		f.record(40, 'b')
		f.record(40, 'c')
		g := newFeeder(cap, 50001)
		g.record(12, 'x')
		return cap.Records(), cap.Flows()
	}

	fresh := sniff.NewCapture(simtime.NewClock())
	wantRecs, wantFlows := run(fresh)

	dirty := sniff.NewCapture(simtime.NewClock())
	dirty.RetainPayloads(30)
	dirty.OnRecord = func(sniff.RecordMeta) {}
	h := newFeeder(dirty, 40000)
	h.record(200, 'q')
	h.record(10, 'r')
	if dirty.EvictedRecords() == 0 {
		t.Fatal("dirtying run produced no evictions; test setup is too clean")
	}

	dirty.Reset()
	if dirty.Retaining() != 0 || dirty.EvictedRecords() != 0 || dirty.EvictedBytes() != 0 ||
		dirty.OOODropped() != 0 || len(dirty.Records()) != 0 || len(dirty.Flows()) != 0 {
		t.Fatal("Reset left state behind")
	}

	gotRecs, gotFlows := run(dirty)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("reset capture diverges from fresh:\ngot  %+v\nwant %+v", gotRecs, wantRecs)
	}
	if !reflect.DeepEqual(gotFlows, wantFlows) {
		t.Fatalf("reset flows diverge: got %v want %v", gotFlows, wantFlows)
	}
}

// TestResetMatchesFreshCaptureOnTestbed repeats the reset-vs-fresh identity
// over a real simulated home: same seed, same deployment, one capture fresh
// and one recycled, byte-identical records including retained payloads.
func TestResetMatchesFreshCaptureOnTestbed(t *testing.T) {
	deploy := func(cap *sniff.Capture, budget int, labels ...string) *experiment.Testbed {
		tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 11, Devices: labels})
		if err != nil {
			t.Fatal(err)
		}
		cap.RetainPayloads(budget)
		tb.LAN.AddTap(cap.Tap()) // before Start: the SYN orients the flow
		tb.Start()
		return tb
	}
	observe := func(cap *sniff.Capture) []sniff.RecordMeta {
		tb := deploy(cap, 4096, "P2")
		if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
			t.Fatal(err)
		}
		tb.Clock.RunFor(2 * time.Second)
		return cap.Records()
	}

	want := observe(sniff.NewCapture(simtime.NewClock()))

	recycled := sniff.NewCapture(simtime.NewClock())
	tb := deploy(recycled, 64, "C2") // dirty it against a different home first
	tb.Clock.RunFor(30 * time.Second)
	recycled.Reset()

	got := observe(recycled)
	if len(got) == 0 {
		t.Fatal("no records observed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recycled capture diverges from fresh (%d vs %d records)", len(got), len(want))
	}
}
