package sniff

import (
	"sort"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/tlssim"
)

// MsgKind classifies a record's application meaning.
type MsgKind int

// Message kinds.
const (
	KindKeepAlive MsgKind = iota + 1
	KindEvent
	KindCommand
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case KindKeepAlive:
		return "keep-alive"
	case KindEvent:
		return "event"
	case KindCommand:
		return "command"
	default:
		return "unknown"
	}
}

// MsgSignature matches one message type of a device model on the wire.
type MsgSignature struct {
	// Origin is the device the message belongs to (a hub session carries
	// messages for several origins).
	Origin  string
	Kind    MsgKind
	Dir     Direction
	WireLen int
}

// ModelSignature is the traffic fingerprint of one session-owning device
// model, assembled offline by profiling an attacker-owned copy.
type ModelSignature struct {
	// Owner is the session-owning device label.
	Owner string
	// KeepAlivePeriod is the observed idle keep-alive interval.
	KeepAlivePeriod time.Duration
	// Messages lists the model's distinguishable records.
	Messages []MsgSignature
}

// wireLen converts an application-message pad length to the on-the-wire
// TLS record size an observer measures. The per-record overhead depends on
// the session's replay mode (explicit-sequence modes carry the sequence on
// the wire), which the session owner's hello negotiates for the whole
// session — children's messages ride the owner's records.
func wireLen(padLen int, mode tlssim.ReplayMode) int {
	return padLen + tlssim.ModeOverhead(mode)
}

// BuildSignature derives a model signature from ground-truth profiles (the
// attacker obtains the same numbers empirically from a lab device; see
// core.Profiler).
func BuildSignature(owner device.Profile, children []device.Profile) ModelSignature {
	sig := ModelSignature{Owner: owner.Label, KeepAlivePeriod: owner.KeepAlivePeriod}
	mode := owner.ReplayMode
	if owner.KeepAliveLen > 0 {
		sig.Messages = append(sig.Messages, MsgSignature{
			Origin: owner.Label, Kind: KindKeepAlive, Dir: DirClientToServer,
			WireLen: wireLen(owner.KeepAliveLen, mode),
		})
	}
	add := func(p device.Profile) {
		if p.EventLen > 0 {
			sig.Messages = append(sig.Messages, MsgSignature{
				Origin: p.Label, Kind: KindEvent, Dir: DirClientToServer,
				WireLen: wireLen(p.EventLen, mode),
			})
		}
		if p.CommandAttr != "" && p.CommandLen > 0 {
			sig.Messages = append(sig.Messages, MsgSignature{
				Origin: p.Label, Kind: KindCommand, Dir: DirServerToClient,
				WireLen: wireLen(p.CommandLen, mode),
			})
		}
	}
	add(owner)
	for _, c := range children {
		add(c)
	}
	return sig
}

// BuildCatalogSignatures assembles signatures for every session-owning
// model in the catalog. The catalog is static, so the result is computed
// once and shared; callers must treat it as read-only.
func BuildCatalogSignatures() []ModelSignature {
	catalogSigsOnce.Do(func() { catalogSigsCache = buildCatalogSignatures() })
	return catalogSigsCache
}

var (
	catalogSigsOnce  sync.Once
	catalogSigsCache []ModelSignature
)

func buildCatalogSignatures() []ModelSignature {
	byLabel := device.Index()
	childrenOf := make(map[string][]device.Profile)
	var owners []device.Profile
	for _, p := range device.Catalog() {
		if p.Transport == device.TransportViaHub {
			childrenOf[p.ViaHub] = append(childrenOf[p.ViaHub], p)
			continue
		}
		owners = append(owners, p)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i].Label < owners[j].Label })
	out := make([]ModelSignature, 0, len(owners))
	for _, o := range owners {
		children := childrenOf[o.Label]
		sort.Slice(children, func(i, j int) bool { return children[i].Label < children[j].Label })
		out = append(out, BuildSignature(byLabel[o.Label], children))
	}
	return out
}

// Classifier recognises models and message types from record metadata.
type Classifier struct {
	sigs map[string]ModelSignature
}

// NewClassifier indexes the given signatures.
func NewClassifier(sigs []ModelSignature) *Classifier {
	m := make(map[string]ModelSignature, len(sigs))
	for _, s := range sigs {
		m[s.Owner] = s
	}
	return &Classifier{sigs: m}
}

// CatalogClassifier returns a classifier over the full catalog's
// signatures. Classifiers are immutable after construction, so one shared
// instance serves every testbed.
func CatalogClassifier() *Classifier {
	catalogClassifierOnce.Do(func() {
		catalogClassifierCache = NewClassifier(BuildCatalogSignatures())
	})
	return catalogClassifierCache
}

var (
	catalogClassifierOnce  sync.Once
	catalogClassifierCache *Classifier
)

// Classify matches one record against a known model's signature.
func (c *Classifier) Classify(model string, r RecordMeta) (MsgSignature, bool) {
	return c.ClassifyLen(model, r.Dir, r.WireLen)
}

// ClassifyLen matches a direction and wire length against a model.
func (c *Classifier) ClassifyLen(model string, dir Direction, wire int) (MsgSignature, bool) {
	sig, ok := c.sigs[model]
	if !ok {
		return MsgSignature{}, false
	}
	for _, m := range sig.Messages {
		if m.Dir == dir && m.WireLen == wire {
			return m, true
		}
	}
	return MsgSignature{}, false
}

// IdentifyFlow scores every known model against a flow's records and
// returns the best match: the model whose signature explains the largest
// fraction of observed device-to-server application records (the server
// side carries generic acknowledgements that no signature covers), with
// keep-alive evidence required when the model has keep-alives. ok is
// false if nothing scores above zero.
func (c *Classifier) IdentifyFlow(records []RecordMeta) (string, float64, bool) {
	bestModel := ""
	bestScore := 0.0
	c2s := 0
	for _, r := range records {
		if r.Type == tlssim.RecordApplication && r.Dir == DirClientToServer {
			c2s++
		}
	}
	if c2s == 0 {
		return "", 0, false
	}
	for owner, sig := range c.sigs {
		matched := 0
		kaSeen := false
		for _, r := range records {
			if r.Type != tlssim.RecordApplication || r.Dir != DirClientToServer {
				continue
			}
			if m, ok := c.ClassifyLen(owner, r.Dir, r.WireLen); ok {
				matched++
				if m.Kind == KindKeepAlive {
					kaSeen = true
				}
			}
		}
		if sig.KeepAlivePeriod > 0 && !kaSeen {
			continue
		}
		score := float64(matched) / float64(c2s)
		if score > bestScore || (score == bestScore && owner < bestModel) {
			bestModel, bestScore = owner, score
		}
	}
	if bestScore == 0 {
		return "", 0, false
	}
	return bestModel, bestScore, true
}

// EstimateKeepAlivePeriod estimates a flow's keep-alive period from the
// inter-arrival gaps of its most frequent client-to-server record length
// during idle observation. ok is false with fewer than three samples.
func EstimateKeepAlivePeriod(records []RecordMeta) (time.Duration, bool) {
	byLen := make(map[int][]RecordMeta)
	for _, r := range records {
		if r.Type == tlssim.RecordApplication && r.Dir == DirClientToServer {
			byLen[r.WireLen] = append(byLen[r.WireLen], r)
		}
	}
	var best []RecordMeta
	bestLen := 0
	for l, rs := range byLen {
		if len(rs) > len(best) || (len(rs) == len(best) && l < bestLen) {
			best, bestLen = rs, l
		}
	}
	if len(best) < 3 {
		return 0, false
	}
	gaps := make([]time.Duration, 0, len(best)-1)
	for i := 1; i < len(best); i++ {
		gaps = append(gaps, best[i].At-best[i-1].At)
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2], true
}
