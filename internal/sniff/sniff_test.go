package sniff_test

import (
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// buildHome deploys devices and attaches a capture to the WiFi segment.
func buildHome(t *testing.T, labels ...string) (*experiment.Testbed, *sniff.Capture) {
	t.Helper()
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 11, Devices: labels})
	if err != nil {
		t.Fatal(err)
	}
	cap := sniff.NewCapture(tb.Clock)
	tb.LAN.AddTap(cap.Tap())
	tb.Start()
	return tb, cap
}

func TestCaptureSeesHandshakeAndRecords(t *testing.T) {
	tb, cap := buildHome(t, "P2")
	if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	recs := cap.Records()
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}
	var hs, app int
	for _, r := range recs {
		switch r.Type {
		case tlssim.RecordHandshake:
			hs++
		case tlssim.RecordApplication:
			app++
		}
	}
	if hs < 2 {
		t.Fatalf("handshake records = %d, want >= 2", hs)
	}
	if app == 0 {
		t.Fatal("no application records")
	}
}

func TestEventRecordHasProfileWireLength(t *testing.T) {
	tb, cap := buildHome(t, "P2")
	before := len(cap.Records())
	if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Second)
	want := tb.Profile("P2").EventLen + tlssim.Overhead
	found := false
	for _, r := range cap.Records()[before:] {
		if r.Dir == sniff.DirClientToServer && r.WireLen == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("no c2s record of wire length %d after event", want)
	}
}

func TestClassifierRecognisesEventAndKeepAlive(t *testing.T) {
	tb, cap := buildHome(t, "C2") // Ring contact via H3
	// Let keep-alives flow, then trigger an event.
	tb.Clock.RunFor(2 * time.Minute)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)

	cl := sniff.NewClassifier(sniff.BuildCatalogSignatures())
	kinds := make(map[sniff.MsgKind]int)
	origins := make(map[string]int)
	for _, r := range cap.Records() {
		if r.Type != tlssim.RecordApplication {
			continue
		}
		if m, ok := cl.Classify("H3", r); ok {
			kinds[m.Kind]++
			origins[m.Origin]++
		}
	}
	if kinds[sniff.KindKeepAlive] == 0 {
		t.Fatal("no keep-alives classified")
	}
	if origins["C2"] == 0 {
		t.Fatal("C2 event not classified")
	}
}

func TestIdentifyFlowPicksRightModel(t *testing.T) {
	tb, cap := buildHome(t, "C2", "P2")
	tb.Clock.RunFor(3 * time.Minute)
	// Events disambiguate models that share keep-alive signatures (e.g.
	// TP-Link's plug and bulb ride the same cloud protocol).
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)

	cl := sniff.NewClassifier(sniff.BuildCatalogSignatures())
	// Find the flow from the Ring hub's address.
	ringAddr := tb.DeviceAddrs["H3"]
	kasaAddr := tb.DeviceAddrs["P2"]
	identified := make(map[string]string)
	for _, flow := range cap.Flows() {
		model, score, ok := cl.IdentifyFlow(cap.FlowRecords(flow))
		if !ok || score < 0.5 {
			continue
		}
		identified[flow.Client.Addr.String()] = model
	}
	if identified[ringAddr.String()] != "H3" {
		t.Fatalf("ring flow identified as %q, want H3 (map %v)", identified[ringAddr.String()], identified)
	}
	if identified[kasaAddr.String()] != "P2" {
		t.Fatalf("kasa flow identified as %q, want P2", identified[kasaAddr.String()])
	}
}

func TestEstimateKeepAlivePeriod(t *testing.T) {
	tb, cap := buildHome(t, "H1") // SmartThings: 31s on-idle
	tb.Clock.RunFor(10 * time.Minute)
	stAddr := tb.DeviceAddrs["H1"]
	var flowRecs []sniff.RecordMeta
	for _, flow := range cap.Flows() {
		if flow.Client.Addr == stAddr {
			flowRecs = cap.FlowRecords(flow)
		}
	}
	period, ok := sniff.EstimateKeepAlivePeriod(flowRecs)
	if !ok {
		t.Fatal("period estimation failed")
	}
	if period < 30*time.Second || period > 33*time.Second {
		t.Fatalf("estimated period %v, want about 31s", period)
	}
}

func TestHAPFlowCaptured(t *testing.T) {
	tb, cap := buildHome(t, "A1")
	if err := tb.Device("A1").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Second)
	want := tb.Profile("A1").EventLen + tlssim.Overhead
	found := false
	for _, r := range cap.Records() {
		if r.WireLen == want && r.Dir == sniff.DirClientToServer {
			found = true
		}
	}
	if !found {
		t.Fatalf("HAP event record of %d bytes not captured", want)
	}
}

func TestPlainLen(t *testing.T) {
	r := sniff.RecordMeta{Type: tlssim.RecordApplication, WireLen: 1007}
	if r.PlainLen() != 1007-tlssim.Overhead {
		t.Fatalf("PlainLen = %d", r.PlainLen())
	}
	h := sniff.RecordMeta{Type: tlssim.RecordHandshake, WireLen: 53}
	if h.PlainLen() != 48 {
		t.Fatalf("handshake PlainLen = %d", h.PlainLen())
	}
}

func TestSignatureCollisionsAreRare(t *testing.T) {
	// Within one model's signature, wire lengths must be unambiguous per
	// direction — otherwise the attacker could not classify messages.
	for _, sig := range sniff.BuildCatalogSignatures() {
		seen := make(map[[2]int]string)
		for _, m := range sig.Messages {
			key := [2]int{int(m.Dir), m.WireLen}
			if prev, dup := seen[key]; dup {
				t.Errorf("model %s: ambiguous wire length %d (%s vs %s)",
					sig.Owner, m.WireLen, prev, m.Origin)
			}
			seen[key] = m.Origin
		}
	}
}

func TestCaptureReassemblesOutOfOrderSegments(t *testing.T) {
	// Feed the capture crafted frames with segments out of order; the
	// record must still be extracted once the gap fills.
	clk := simtime.NewClock()
	cap := sniff.NewCapture(clk)

	src := tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.10"), Port: 50000}
	dst := tcpsim.Endpoint{Addr: ipaddr.MustParse("100.64.10.10"), Port: 443}
	frame := func(seg tcpsim.Segment, from, to tcpsim.Endpoint) netsim.Frame {
		seg.SrcPort, seg.DstPort = from.Port, to.Port
		p := ipnet.Packet{Src: from.Addr, Dst: to.Addr, Proto: ipnet.ProtoTCP, Payload: seg.Marshal()}
		return netsim.Frame{Type: netsim.EtherTypeIPv4, Payload: p.Marshal()}
	}

	// SYN / SYN-ACK orient the flow.
	cap.HandleFrame(frame(tcpsim.Segment{Seq: 100, Flags: tcpsim.FlagSYN}, src, dst))
	cap.HandleFrame(frame(tcpsim.Segment{Seq: 500, Ack: 101, Flags: tcpsim.FlagSYN | tcpsim.FlagACK}, dst, src))

	// One 40-byte application record split into two segments, delivered in
	// reverse order.
	rec := make([]byte, 5+40)
	rec[0] = byte(tlssim.RecordApplication)
	rec[1], rec[2] = 3, 3
	rec[4] = 40
	first, second := rec[:20], rec[20:]
	cap.HandleFrame(frame(tcpsim.Segment{Seq: 101 + 20, Flags: tcpsim.FlagACK, Payload: second}, src, dst))
	if len(cap.Records()) != 0 {
		t.Fatal("record extracted before the gap filled")
	}
	cap.HandleFrame(frame(tcpsim.Segment{Seq: 101, Flags: tcpsim.FlagACK, Payload: first}, src, dst))
	recs := cap.Records()
	if len(recs) != 1 || recs[0].WireLen != 45 || recs[0].Dir != sniff.DirClientToServer {
		t.Fatalf("records = %+v", recs)
	}

	// Retransmission of already-seen bytes must not duplicate the record.
	cap.HandleFrame(frame(tcpsim.Segment{Seq: 101, Flags: tcpsim.FlagACK, Payload: first}, src, dst))
	if len(cap.Records()) != 1 {
		t.Fatal("retransmission duplicated a record")
	}

	// StreamSeq reflects the reassembled position.
	flow := sniff.FlowKey{Client: src, Server: dst}
	seq, ok := cap.StreamSeq(flow, sniff.DirClientToServer)
	if !ok || seq != 101+45 {
		t.Fatalf("StreamSeq = %d,%v want %d", seq, ok, 101+45)
	}

	// RST forgets the flow.
	cap.HandleFrame(frame(tcpsim.Segment{Seq: 600, Flags: tcpsim.FlagRST}, dst, src))
	if _, ok := cap.StreamSeq(flow, sniff.DirClientToServer); ok {
		t.Fatal("flow should be forgotten after RST")
	}
}

func TestCaptureIgnoresGarbage(t *testing.T) {
	clk := simtime.NewClock()
	cap := sniff.NewCapture(clk)
	cap.HandleFrame(netsim.Frame{Type: netsim.EtherTypeARP, Payload: []byte{1, 2, 3}})
	cap.HandleFrame(netsim.Frame{Type: netsim.EtherTypeIPv4, Payload: []byte{9}})
	p := ipnet.Packet{Src: 1, Dst: 2, Proto: ipnet.Protocol(99), Payload: []byte("x")}
	cap.HandleFrame(netsim.Frame{Type: netsim.EtherTypeIPv4, Payload: p.Marshal()})
	if len(cap.Records()) != 0 || len(cap.Flows()) != 0 {
		t.Fatal("garbage produced state")
	}
}
