package sniff

import (
	"sort"
	"time"

	"repro/internal/simtime"
)

// InferredMessage is one recognized IoT message in passively captured
// traffic: who generated it and what kind it is — the paper's Section II-C
// side-channel capability, which the active attacks consume.
type InferredMessage struct {
	At     simtime.Time
	Flow   FlowKey
	Origin string
	Kind   MsgKind
}

// Timeline classifies a capture's application records against identified
// flows: flowModels maps each flow to the device model identified for it
// (via IdentifyFlow). Unrecognized records are omitted. The result is
// sorted by time.
func (c *Classifier) Timeline(records []RecordMeta, flowModels map[FlowKey]string) []InferredMessage {
	var out []InferredMessage
	for _, r := range records {
		model, ok := flowModels[r.Flow]
		if !ok {
			continue
		}
		m, ok := c.ClassifyLen(model, r.Dir, r.WireLen)
		if !ok {
			continue
		}
		out = append(out, InferredMessage{At: r.At, Flow: r.Flow, Origin: m.Origin, Kind: m.Kind})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// IdentifyAllFlows runs flow identification over a capture and returns the
// flows it could attribute with at least the given confidence.
func (c *Classifier) IdentifyAllFlows(cap *Capture, minScore float64) map[FlowKey]string {
	out := make(map[FlowKey]string)
	for _, flow := range cap.Flows() {
		model, score, ok := c.IdentifyFlow(cap.FlowRecords(flow))
		if ok && score >= minScore {
			out[flow] = model
		}
	}
	return out
}

// CorrelationResult reports how often a cause message was followed by an
// effect message within a window — the attacker's automation-rule
// inference (the paper's Case 3: door-close events consistently followed
// by lock commands reveal the "lock on close" rule).
type CorrelationResult struct {
	CauseCount  int
	EffectCount int
	// Matched counts cause messages followed by an effect within Window.
	Matched int
	// MeanLag is the average cause-to-effect latency over matches.
	MeanLag time.Duration
}

// Confidence is the fraction of cause messages that produced an effect.
func (r CorrelationResult) Confidence() float64 {
	if r.CauseCount == 0 {
		return 0
	}
	return float64(r.Matched) / float64(r.CauseCount)
}

// Correlate measures the cause→effect pattern in a timeline.
func Correlate(timeline []InferredMessage, causeOrigin string, causeKind MsgKind, effectOrigin string, effectKind MsgKind, window time.Duration) CorrelationResult {
	var res CorrelationResult
	var lagTotal time.Duration
	for i, m := range timeline {
		switch {
		case m.Origin == effectOrigin && m.Kind == effectKind:
			res.EffectCount++
		case m.Origin == causeOrigin && m.Kind == causeKind:
			res.CauseCount++
			for _, e := range timeline[i+1:] {
				if e.At-m.At > window {
					break
				}
				if e.Origin == effectOrigin && e.Kind == effectKind {
					res.Matched++
					lagTotal += e.At - m.At
					break
				}
			}
		}
	}
	if res.Matched > 0 {
		res.MeanLag = lagTotal / time.Duration(res.Matched)
	}
	return res
}
