package sniff_test

import (
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/sniff"
)

// TestPassiveRuleInference replays the paper's Case 3 recon: a purely
// passive observer watches one day's encrypted traffic and discovers that
// door-close events are consistently followed by lock commands — the
// automation rule, inferred without a single decrypted byte.
func TestPassiveRuleInference(t *testing.T) {
	tb, cap := buildHome(t, "C2", "LK1")
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "lock-on-close",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		t.Fatal(err)
	}

	// A day in fast-forward: the door opens and closes several times.
	for i := 0; i < 6; i++ {
		tb.Clock.RunFor(30 * time.Minute)
		if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
			t.Fatal(err)
		}
		tb.Clock.RunFor(time.Minute)
		if err := tb.Device("C2").TriggerEvent("contact", "closed"); err != nil {
			t.Fatal(err)
		}
		tb.Clock.RunFor(time.Minute)
	}

	cl := sniff.NewClassifier(sniff.BuildCatalogSignatures())
	flows := cl.IdentifyAllFlows(cap, 0.5)
	timeline := cl.Timeline(cap.Records(), flows)
	if len(timeline) == 0 {
		t.Fatal("empty timeline")
	}

	// Door events (C2) followed by lock commands (LK1) within 5 seconds.
	res := sniff.Correlate(timeline, "C2", sniff.KindEvent, "LK1", sniff.KindCommand, 5*time.Second)
	// 12 door events (6 open + 6 closed), 6 lock commands: confidence 0.5
	// against all C2 events — the attacker cannot distinguish open from
	// closed, exactly as the paper notes, and confirms the hypothesis with
	// small probe delays (Case 3's verification step).
	if res.CauseCount < 12 {
		t.Fatalf("cause count = %d, want >= 12", res.CauseCount)
	}
	if res.Matched < 6 {
		t.Fatalf("matched = %d, want >= 6 (every close followed by a lock)", res.Matched)
	}
	if res.Confidence() < 0.4 || res.Confidence() > 0.6 {
		t.Fatalf("confidence = %.2f, want about 0.5 (half the contact events trigger)", res.Confidence())
	}
	if res.MeanLag <= 0 || res.MeanLag > time.Second {
		t.Fatalf("mean lag = %v, want sub-second automation latency", res.MeanLag)
	}
	// No correlation in the reverse direction.
	rev := sniff.Correlate(timeline, "LK1", sniff.KindCommand, "C2", sniff.KindEvent, 5*time.Second)
	if rev.Confidence() > res.Confidence() {
		t.Fatalf("reverse correlation %.2f should not beat forward %.2f", rev.Confidence(), res.Confidence())
	}
}

func TestTimelineSortedAndFiltered(t *testing.T) {
	tb, cap := buildHome(t, "C2")
	tb.Clock.RunFor(2 * time.Minute)
	_ = tb.Device("C2").TriggerEvent("contact", "open")
	tb.Clock.RunFor(2 * time.Second)

	cl := sniff.NewClassifier(sniff.BuildCatalogSignatures())
	flows := cl.IdentifyAllFlows(cap, 0.5)
	timeline := cl.Timeline(cap.Records(), flows)
	for i := 1; i < len(timeline); i++ {
		if timeline[i].At < timeline[i-1].At {
			t.Fatal("timeline not sorted")
		}
	}
	sawEvent := false
	for _, m := range timeline {
		if m.Origin == "C2" && m.Kind == sniff.KindEvent {
			sawEvent = true
		}
		if m.Origin == "" {
			t.Fatal("unattributed message leaked into the timeline")
		}
	}
	if !sawEvent {
		t.Fatal("C2 event missing from timeline")
	}
}

func TestCorrelateEmptyTimeline(t *testing.T) {
	res := sniff.Correlate(nil, "A", sniff.KindEvent, "B", sniff.KindCommand, time.Second)
	if res.Confidence() != 0 || res.CauseCount != 0 {
		t.Fatalf("empty timeline should yield zero: %+v", res)
	}
}
