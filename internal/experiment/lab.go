package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/simtime"
)

// NewLab builds the attacker's profiling environment for a device: a
// hijacked lab home where the attacker owns the device and can trigger
// its events and commands (Section IV-C's one-time, per-model effort).
func (tb *Testbed) NewLab(h *core.Hijacker, label string) (*core.Lab, error) {
	d, ok := tb.Devices[label]
	if !ok {
		return nil, fmt.Errorf("experiment: device %q not deployed", label)
	}
	p := d.Profile()
	lab := &core.Lab{
		Clock:       tb.Clock,
		Hijacker:    h,
		EventOrigin: label,
	}
	// Alternate through the device's reportable values so each trigger is
	// a genuine state change.
	i := 0
	lab.TriggerEvent = func() error {
		v := p.EventValues[i%len(p.EventValues)]
		i++
		return d.TriggerEvent(p.EventAttr, v)
	}
	if p.CommandAttr != "" {
		owner, err := device.SessionProfile(p, tb.byLabel)
		if err != nil {
			return nil, err
		}
		j := 0
		if owner.Transport == device.TransportHAP {
			lab.CommandOrigin = label
			lab.TriggerCommand = func() error {
				v := p.EventValues[j%len(p.EventValues)]
				j++
				return tb.LocalHub.SendCommand(label, p.CommandAttr, v, nil)
			}
			lab.ServerAlarmAt = func() (simtime.Time, bool) {
				alarms := tb.LocalHub.Alarms()
				if len(alarms) == 0 {
					return 0, false
				}
				return alarms[len(alarms)-1].At, true
			}
		} else {
			ep, ok := tb.Endpoints[owner.ServerDomain]
			if !ok {
				return nil, fmt.Errorf("experiment: no endpoint for %s", owner.ServerDomain)
			}
			lab.CommandOrigin = label
			lab.TriggerCommand = func() error {
				v := p.EventValues[j%len(p.EventValues)]
				j++
				return ep.SendCommand(label, p.CommandAttr, v, nil)
			}
		}
	}
	return lab, nil
}
