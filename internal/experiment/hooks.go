package experiment

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/rules"
)

// Reuse hooks: the exported surface other subsystems (notably
// internal/fleet's campaign engine) build on to drive testbeds without
// duplicating the experiment package's wiring.

// InstallRule installs a TCA rule on the right automation server for its
// trigger device: rules over local (HAP) devices run on the local hub,
// everything else on the integration server.
func (tb *Testbed) InstallRule(r rules.Rule) error { return installRule(tb, r) }

// AcceptedEventCount reports how many events from the given origin device
// the automation servers have accepted so far — the ground truth for "did
// the delayed message still land".
func (tb *Testbed) AcceptedEventCount(origin string) int { return countAccepted(tb, origin) }

// SessionOwnerProfile resolves the deployed (override-adjusted) profile of
// the session owner for a label: the device itself, or its hub for via-hub
// devices.
func (tb *Testbed) SessionOwnerProfile(label string) device.Profile {
	if d := tb.SessionOwner(label); d != nil {
		return d.Profile()
	}
	return tb.byLabel[label]
}

// MeasuredFromProfile converts ground truth into the attacker's measured
// form — what an attacker who already profiled this model (the paper's
// one-time per-model effort) would arm its predictor with.
func MeasuredFromProfile(p device.Profile) core.Measured { return measuredFromProfile(p) }
