package experiment

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/rules"
)

// resetScenario is one home configuration plus a driver that exercises it.
type resetScenario struct {
	name  string
	cfg   TestbedConfig
	drive func(tb *Testbed) error
}

// resetScenarios covers the deployment shapes the arena must recycle
// across: a cloud home with hubs and multiple vendors, a local HAP home, an
// attacked home (pooled attacker stacks, pending hold timers at teardown),
// and a trace-enabled home (default trace capacity).
func resetScenarios() []resetScenario {
	return []resetScenario{
		{
			name: "cloud",
			cfg:  TestbedConfig{Seed: 11, Devices: []string{"C2", "LK1", "P2", "M7"}, TraceCap: -1},
			drive: func(tb *Testbed) error {
				if err := tb.Integration.AddRule(rules.Rule{
					Name:    "lock-on-close",
					Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
					Actions: []rules.Action{
						{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"},
						{Kind: rules.ActionNotify, Message: "door closed; locking"},
					},
				}); err != nil {
					return err
				}
				tb.Start()
				if err := tb.Device("C2").TriggerEvent("contact", "closed"); err != nil {
					return err
				}
				tb.Clock.RunFor(5 * time.Second)
				if err := tb.Device("M7").TriggerEvent("motion", "active"); err != nil {
					return err
				}
				tb.Clock.RunFor(30 * time.Second)
				return nil
			},
		},
		{
			name: "local",
			cfg:  TestbedConfig{Seed: 12, Devices: []string{"A1", "A6"}, TraceCap: -1},
			drive: func(tb *Testbed) error {
				if err := tb.LocalHub.AddRule(rules.Rule{
					Name:    "light-on-open",
					Trigger: rules.Trigger{Device: "A1", Attribute: "contact", Value: "open"},
					Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "A6", Attribute: "switch", Value: "on"}},
				}); err != nil {
					return err
				}
				tb.Start()
				if err := tb.Device("A1").TriggerEvent("contact", "open"); err != nil {
					return err
				}
				tb.Clock.RunFor(10 * time.Second)
				return nil
			},
		},
		{
			name: "attacked",
			cfg:  TestbedConfig{Seed: 13, Devices: []string{"P2", "M7"}, TraceCap: -1},
			drive: func(tb *Testbed) error {
				atk, err := tb.NewAttacker()
				if err != nil {
					return err
				}
				h, err := tb.Hijack(atk, "P2")
				if err != nil {
					return err
				}
				tb.Start()
				op := h.DelayKeepAlive(0)
				tb.Clock.RunFor(30 * time.Second)
				op.Release()
				// Stop short of full recovery so sessions still hold pending
				// keep-alive and retransmission timers when the arena resets.
				tb.Clock.RunFor(2 * time.Second)
				return nil
			},
		},
		{
			name: "traced",
			cfg:  TestbedConfig{Seed: 14, Devices: []string{"M7"}},
			drive: func(tb *Testbed) error {
				tb.Start()
				if err := tb.Device("M7").TriggerEvent("motion", "active"); err != nil {
					return err
				}
				tb.Clock.RunFor(5 * time.Second)
				return nil
			},
		},
	}
}

// homeFingerprint captures everything observable about a driven testbed:
// the full metrics snapshot (counters, gauges with maxima, histograms,
// trace ring), address assignments, alarm totals and the clock position.
func homeFingerprint(t *testing.T, tb *Testbed) string {
	t.Helper()
	snap, err := json.Marshal(tb.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("addrs=%v servers=%v alarms=%d now=%v snap=%s",
		tb.DeviceAddrs, tb.ServerAddrs, tb.TotalAlarmCount(), tb.Clock.Now(), snap)
}

func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+120, i+120
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("at byte %d:\n fresh:    …%s…\n recycled: …%s…", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestTestbedResetByteIdentity drives each scenario on a fresh testbed and
// on one arena recycled through every scenario twice — including
// cloud→local→attacked transitions that cycle the endpoint, hub and
// attacker pools — and requires identical fingerprints. This is the
// contract that lets fleet campaigns flip ReuseTestbeds without changing a
// single output byte.
func TestTestbedResetByteIdentity(t *testing.T) {
	scenarios := resetScenarios()
	fresh := make([]string, len(scenarios))
	for i, sc := range scenarios {
		tb, err := NewTestbed(sc.cfg)
		if err != nil {
			t.Fatalf("%s: fresh build: %v", sc.name, err)
		}
		if err := sc.drive(tb); err != nil {
			t.Fatalf("%s: fresh drive: %v", sc.name, err)
		}
		fresh[i] = homeFingerprint(t, tb)
	}

	// Recycle one arena through the scenarios in an order that forces every
	// pool transition, then revisit each scenario to prove the second
	// recycling generation is still identical.
	order := []int{0, 1, 2, 3, 1, 2, 0, 3}
	var arena *Testbed
	for step, i := range order {
		sc := scenarios[i]
		if arena == nil {
			var err error
			if arena, err = NewTestbed(sc.cfg); err != nil {
				t.Fatalf("step %d (%s): build: %v", step, sc.name, err)
			}
		} else if err := arena.Reset(sc.cfg); err != nil {
			t.Fatalf("step %d (%s): reset: %v", step, sc.name, err)
		}
		if err := sc.drive(arena); err != nil {
			t.Fatalf("step %d (%s): drive: %v", step, sc.name, err)
		}
		if got := homeFingerprint(t, arena); got != fresh[i] {
			t.Errorf("step %d (%s): recycled home diverged from fresh\n%s", step, sc.name, firstDiff(fresh[i], got))
		}
	}
}

// TestTestbedResetQueueDrained proves teardown leaves no tombstoned events
// behind: after a Reset the clock's queue depth gauge reads zero and the
// rebuilt home starts from simulated time zero.
func TestTestbedResetQueueDrained(t *testing.T) {
	sc := resetScenarios()[2] // attacked: pending timers guaranteed at reset
	tb, err := NewTestbed(sc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.drive(tb); err != nil {
		t.Fatal(err)
	}
	if err := tb.Reset(TestbedConfig{Seed: 99, Devices: []string{"M7"}, TraceCap: -1}); err != nil {
		t.Fatal(err)
	}
	if now := tb.Clock.Now(); now != 0 {
		t.Fatalf("clock after reset = %v, want 0", now)
	}
	for _, g := range tb.Metrics.Snapshot().Gauges {
		if g.Name == "simtime_queue_depth" && g.Value != 0 {
			t.Fatalf("simtime_queue_depth after reset = %d, want 0", g.Value)
		}
	}
}
