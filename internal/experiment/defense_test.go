package experiment

import (
	"testing"
	"time"
)

func TestAckTimeoutDefenseShrinksWindow(t *testing.T) {
	results := RunAckTimeoutDefense("C2", []time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second}, 800)
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d (%v): %v", i, r.AckTimeout, r.Err)
		}
	}
	// The window shrinks monotonically with the timeout...
	for i := 1; i < len(results); i++ {
		if results[i].AchievedDelay >= results[i-1].AchievedDelay {
			t.Errorf("window did not shrink: %v@%v then %v@%v",
				results[i-1].AchievedDelay, results[i-1].AckTimeout,
				results[i].AchievedDelay, results[i].AckTimeout)
		}
	}
	// ...while keep-alive traffic grows.
	if results[3].TrafficPerHour <= results[0].TrafficPerHour {
		t.Errorf("traffic cost did not grow: stock %dB/h vs 5s %dB/h",
			results[0].TrafficPerHour, results[3].TrafficPerHour)
	}
	// The analytical estimate tracks the measured traffic within 20%.
	for _, r := range results {
		ratio := float64(r.TrafficPerHour) / float64(r.EstimatePerHour)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("estimate off at %v: measured %d, estimated %d", r.AckTimeout, r.TrafficPerHour, r.EstimatePerHour)
		}
	}
}

func TestLIFXStyleTrafficCost(t *testing.T) {
	// The paper's LIFX example: a sub-2s keep-alive interval costs orders
	// of magnitude more idle bandwidth than a 30s one.
	results := RunAckTimeoutDefense("L1", []time.Duration{2 * time.Second}, 810)
	if results[1].Err != nil {
		t.Fatal(results[1].Err)
	}
	if results[1].TrafficPerHour < 100_000 {
		t.Errorf("sub-2s keep-alives cost only %d B/h; expected heavy overhead", results[1].TrafficPerHour)
	}
}

func TestTimestampDefense(t *testing.T) {
	res := RunTimestampDefense(820)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.TriggerDelayBlocked {
		t.Errorf("timestamp checking should block delayed triggers: %s", res.TriggerDetail)
	}
	if !res.ConditionDelayStillWorks {
		t.Errorf("the Case 8 condition-delay attack should still succeed: %s", res.ConditionDetail)
	}
	if !res.DetectedAfterTheFact {
		t.Error("the stale condition event should alarm on (late) arrival")
	}
}
