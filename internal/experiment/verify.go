package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// VerifyResult reports the Section VI-C verification test for one device:
// messages are triggered at random phases, delayed to the margin before
// the predicted timeout, and released; the collected parameters are
// correct if every trial avoids the timeout and the message is accepted.
type VerifyResult struct {
	Label           string
	Trials          int
	TimeoutsAvoided int
	Accepted        int
	Err             error

	// Metrics is the device testbed's observability snapshot, taken after
	// the trials finished (or failed).
	Metrics obs.Snapshot
}

// Perfect reports the paper's outcome: 100% avoidance and acceptance.
func (r VerifyResult) Perfect() bool {
	return r.Err == nil && r.TimeoutsAvoided == r.Trials && r.Accepted == r.Trials
}

// VerifyOptions tunes the verification runs.
type VerifyOptions struct {
	Seed   int64
	Trials int
	// Margin before the predicted timeout at which holds release
	// (the paper uses 2 seconds).
	Margin time.Duration
	// TraceCap sizes each testbed's flight-recorder ring (see
	// TestbedConfig.TraceCap).
	TraceCap int
}

// RunVerification profiles each device, then runs randomized delay trials
// using the measured parameters for prediction.
func RunVerification(labels []string, opts VerifyOptions) []VerifyResult {
	if opts.Trials <= 0 {
		opts.Trials = 5
	}
	if opts.Margin <= 0 {
		opts.Margin = 2 * time.Second
	}
	out := make([]VerifyResult, 0, len(labels))
	for i, label := range labels {
		out = append(out, verifyDevice(label, opts, opts.Seed+int64(i)*311))
	}
	return out
}

func verifyDevice(label string, opts VerifyOptions, seed int64) (res VerifyResult) {
	res = VerifyResult{Label: label, Trials: opts.Trials}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{label}, TraceCap: opts.TraceCap})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { res.Metrics = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, label)
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()

	lab, err := tb.NewLab(h, label)
	if err != nil {
		res.Err = err
		return res
	}
	lab.Trials = 2
	lab.Recovery = 30 * time.Second
	m, err := lab.Profile()
	if err != nil {
		res.Err = err
		return res
	}
	if _, _, bounded := m.EventWindow(); !bounded {
		// Unbounded devices trivially avoid timeouts; verify acceptance
		// with a one-hour hold per trial.
		return verifyUnbounded(tb, h, lab, res)
	}
	h.ArmPredictor(m)
	rng := simtime.NewRand(seed + 7)

	for i := 0; i < opts.Trials; i++ {
		// Random phase within the keep-alive cycle.
		wait := rng.DurationRange(3*time.Second, 40*time.Second)
		tb.Clock.RunFor(wait)

		alarmsBefore := tb.TotalAlarmCount()
		acceptedBefore := countAccepted(tb, lab.EventOrigin)
		op := h.MaxEDelay(lab.EventOrigin, opts.Margin)
		released := false
		op.OnReleased = func(time.Duration) { released = true }
		if err := lab.TriggerEvent(); err != nil {
			res.Err = err
			return res
		}
		deadline := tb.Clock.Now() + 20*time.Minute
		for !released && tb.Clock.Now() < deadline {
			if next, ok := tb.Clock.NextEventAt(); !ok || next > deadline {
				break
			}
			tb.Clock.Step()
		}
		tb.Clock.RunFor(5 * time.Second)
		if !released {
			res.Err = fmt.Errorf("experiment: verification trial %d never released", i)
			return res
		}
		sessionAlive := tb.SessionOwner(label).Connected()
		noAlarm := tb.TotalAlarmCount() == alarmsBefore
		if sessionAlive && noAlarm {
			res.TimeoutsAvoided++
		}
		if countAccepted(tb, lab.EventOrigin) > acceptedBefore {
			res.Accepted++
		}
		tb.Clock.RunFor(10 * time.Second)
	}
	return res
}

func verifyUnbounded(tb *Testbed, h *core.Hijacker, lab *core.Lab, res VerifyResult) VerifyResult {
	for i := 0; i < res.Trials; i++ {
		alarmsBefore := tb.TotalAlarmCount()
		acceptedBefore := countAccepted(tb, lab.EventOrigin)
		op := h.EDelay(lab.EventOrigin, time.Hour)
		released := false
		op.OnReleased = func(time.Duration) { released = true }
		if err := lab.TriggerEvent(); err != nil {
			res.Err = err
			return res
		}
		tb.Clock.RunFor(time.Hour + 10*time.Second)
		if !released {
			res.Err = fmt.Errorf("experiment: unbounded trial %d never released", i)
			return res
		}
		if tb.SessionOwner(res.Label).Connected() && tb.TotalAlarmCount() == alarmsBefore {
			res.TimeoutsAvoided++
		}
		if countAccepted(tb, lab.EventOrigin) > acceptedBefore {
			res.Accepted++
		}
	}
	return res
}

// FormatVerifyResults renders the verification outcomes.
func FormatVerifyResults(w io.Writer, results []VerifyResult) {
	fmt.Fprintf(w, "Verification test (release at margin before predicted timeout)\n%s\n", strings.Repeat("=", 64))
	fmt.Fprintf(w, "%-6s %-8s %-16s %-10s %-8s\n", "Label", "Trials", "TimeoutsAvoided", "Accepted", "Perfect")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%-6s ERROR: %v\n", r.Label, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s %-8d %-16d %-10d %-8v\n", r.Label, r.Trials, r.TimeoutsAvoided, r.Accepted, r.Perfect())
	}
}
