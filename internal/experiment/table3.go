package experiment

import (
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/rules"
)

// Table3Cases returns the eleven proof-of-concept attacks of Table III.
// The rules come from the paper's forum-collected automations; devices are
// mapped onto the catalog. One modelling note: the paper's homes mix
// vendors, so a rule's trigger and condition devices ride different TCP
// sessions — a requirement for Type-III attacks, since holding one record
// holds everything behind it on the same session.
func Table3Cases() []Case {
	return []Case{
		case1(), case2(), case3(), case4(), case5(), case6(),
		case7(), case8(), case9(), case10(), case11(),
	}
}

// lateNotificationJudge treats a notification slower than threshold as the
// consequence ("late alert").
func lateNotificationJudge(threshold time.Duration) func(*CaseRun) (bool, string) {
	return func(cr *CaseRun) (bool, string) {
		lat, ok := notificationLatency(cr.TB)
		if !ok {
			return false, "no notification delivered"
		}
		return lat >= threshold, "notification after " + lat.Round(time.Millisecond).String()
	}
}

func case1() Case {
	return Case{
		ID: 1, Type: "state-update-delay",
		Trigger: "Front door opened", Action: "Voice notification",
		Consequence: "late burglary alerts",
		Devices:     []string{"C2"},
		Hijacks:     []string{"C2"},
		Rules: []rules.Rule{{
			Name:    "voice-alert-on-open",
			Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "open"},
			Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "front door opened"}},
		}},
		Attack: func(cr *CaseRun) error {
			h, err := cr.Hijack("C2")
			if err != nil {
				return err
			}
			h.EDelay("C2", 55*time.Second) // inside the Ring 60s window
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			if err := cr.Trigger("C2", "contact", "open"); err != nil {
				return err
			}
			cr.Run(2 * time.Minute)
			return nil
		},
		Judge: lateNotificationJudge(30 * time.Second),
	}
}

func case2() Case {
	c := case1()
	c.ID = 2
	c.Trigger = "Motion active"
	c.Action = "Mobile notification"
	c.Devices = []string{"M3"}
	c.Hijacks = []string{"M3"}
	c.Rules = []rules.Rule{{
		Name:    "motion-alert",
		Trigger: rules.Trigger{Device: "M3", Attribute: "motion", Value: "active"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "motion detected"}},
	}}
	c.Attack = func(cr *CaseRun) error {
		h, err := cr.Hijack("M3")
		if err != nil {
			return err
		}
		h.EDelay("M3", 55*time.Second)
		return nil
	}
	c.Scenario = func(cr *CaseRun) error {
		if err := cr.Trigger("M3", "motion", "active"); err != nil {
			return err
		}
		cr.Run(2 * time.Minute)
		return nil
	}
	return c
}

func case3() Case {
	return Case{
		ID: 3, Type: "action-delay",
		Trigger: "Front door closed", Action: "Lock the door",
		Consequence: "door not locked in time",
		Devices:     []string{"C2", "LK1"},
		Hijacks:     []string{"C2", "LK1"},
		Rules: []rules.Rule{{
			Name:    "lock-on-close",
			Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
			Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("LK1", "lock", "unlocked")
		},
		Attack: func(cr *CaseRun) error {
			hDoor, err := cr.Hijack("C2")
			if err != nil {
				return err
			}
			hLock, err := cr.Hijack("LK1")
			if err != nil {
				return err
			}
			// The Case 3/4 technique: stack e-Delay on the contact sensor
			// with c-Delay on the lock to pass the one-minute mark.
			core.NewActionDelay(core.ActionDelayConfig{
				TriggerHijacker: hDoor, TriggerOrigin: "C2", TriggerHold: 55 * time.Second,
				CommandHijacker: hLock, CommandOrigin: "LK1", CommandHold: 14 * time.Second,
			})
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			if err := cr.Trigger("C2", "contact", "closed"); err != nil {
				return err
			}
			cr.Run(3 * time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			closedAt := cr.TB.Integration.Events()
			_ = closedAt
			at, ok := actuationAt(cr.TB, "LK1", "lock", "locked")
			if !ok {
				return true, "door never locked"
			}
			// The scenario starts right after Prepare+Attack settle; judge
			// by comparing against the last door-close event generation.
			var closeGen time.Duration
			for _, ev := range cr.TB.Integration.Events() {
				if ev.Device == "C2" && ev.Value == "closed" {
					closeGen = ev.GeneratedAt
				}
			}
			delay := at - closeGen
			return delay >= time.Minute, "locked " + delay.Round(time.Millisecond).String() + " after closing"
		},
	}
}

func case4() Case {
	return Case{
		ID: 4, Type: "action-delay",
		Trigger: "Home security system armed", Action: "Turn off heater",
		Consequence: "heater not turned off (event silently discarded)",
		Devices:     []string{"K1", "P2"},
		Hijacks:     []string{"K1"},
		Integration: cloud.IntegrationConfig{
			// The Alexa behaviour found in Case 4: events delayed past 30s
			// are discarded with no notification.
			Policy:      cloud.StaleDiscardSilently,
			MaxEventAge: 30 * time.Second,
		},
		Rules: []rules.Rule{{
			Name:    "heater-off-when-armed",
			Trigger: rules.Trigger{Device: "K1", Attribute: "mode", Value: "away"},
			Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "P2", Attribute: "switch", Value: "off"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("P2", "switch", "on")
		},
		Attack: func(cr *CaseRun) error {
			h, err := cr.Hijack("K1")
			if err != nil {
				return err
			}
			h.EDelay("K1", 45*time.Second) // > 30s staleness cutoff, < 60s session window
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			if err := cr.Trigger("K1", "mode", "away"); err != nil {
				return err
			}
			cr.Run(3 * time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if got := cr.TB.Device("P2").State("switch"); got == "on" {
				return true, "heater still on; armed event discarded"
			}
			return false, "heater turned off"
		},
	}
}

func case5() Case {
	return Case{
		ID: 5, Type: "spurious",
		Trigger: "Front door unlocked", Condition: "Entrance motion inactive",
		Action:      "Disarm security system",
		Consequence: "security system disarmed",
		Devices:     []string{"LK1", "M3", "H3"},
		Hijacks:     []string{"M3", "LK1"},
		Rules: []rules.Rule{{
			Name:      "disarm-on-unlock",
			Trigger:   rules.Trigger{Device: "LK1", Attribute: "lock", Value: "unlocked"},
			Condition: rules.Eq{Device: "M3", Attribute: "motion", Value: "inactive"},
			Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "H3", Attribute: "mode", Value: "disarmed"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("M3", "motion", "inactive")
			_ = cr.Trigger("H3", "mode", "away")
		},
		Attack: func(cr *CaseRun) error {
			hMotion, err := cr.Hijack("M3")
			if err != nil {
				return err
			}
			hLock, err := cr.Hijack("LK1")
			if err != nil {
				return err
			}
			core.SpuriousExecution(hMotion, "M3", hLock, "LK1", 5*time.Second)
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			// Motion at the entrance (would falsify the condition)...
			if err := cr.Trigger("M3", "motion", "active"); err != nil {
				return err
			}
			cr.Run(3 * time.Second)
			// ...then the door is unlocked.
			if err := cr.Trigger("LK1", "lock", "unlocked"); err != nil {
				return err
			}
			cr.Run(time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if got := cr.TB.Device("H3").State("mode"); got == "disarmed" {
				return true, "security disarmed despite motion"
			}
			return false, "security stayed armed"
		},
	}
}

func case6() Case {
	return Case{
		ID: 6, Type: "spurious",
		Trigger: "Bedroom motion active", Condition: "Bedroom door closed",
		Action:      "Turn on bedroom heater",
		Consequence: "heater maliciously turned on",
		Devices:     []string{"M1", "C5", "P2"},
		Hijacks:     []string{"C5", "M1"},
		Rules: []rules.Rule{{
			Name:      "heater-on-motion",
			Trigger:   rules.Trigger{Device: "M1", Attribute: "motion", Value: "active"},
			Condition: rules.Eq{Device: "C5", Attribute: "contact", Value: "closed"},
			Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "P2", Attribute: "switch", Value: "on"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("C5", "contact", "closed")
			_ = cr.Trigger("P2", "switch", "off")
		},
		Attack: func(cr *CaseRun) error {
			hDoor, err := cr.Hijack("C5")
			if err != nil {
				return err
			}
			hMotion, err := cr.Hijack("M1")
			if err != nil {
				return err
			}
			core.SpuriousExecution(hDoor, "C5", hMotion, "M1", 5*time.Second)
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			if err := cr.Trigger("C5", "contact", "open"); err != nil {
				return err
			}
			cr.Run(3 * time.Second)
			if err := cr.Trigger("M1", "motion", "active"); err != nil {
				return err
			}
			cr.Run(time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if got := cr.TB.Device("P2").State("switch"); got == "on" {
				return true, "heater on despite open door"
			}
			return false, "heater stayed off"
		},
	}
}

func case7() Case {
	c := case6()
	c.ID = 7
	c.Trigger = "Study motion active"
	c.Condition = "Study door closed"
	c.Action = "Open the study window"
	c.Consequence = "window maliciously opened"
	c.Devices = []string{"M4", "C5", "V1"}
	c.Hijacks = []string{"C5", "M4"}
	c.Rules = []rules.Rule{{
		Name:      "vent-study",
		Trigger:   rules.Trigger{Device: "M4", Attribute: "motion", Value: "active"},
		Condition: rules.Eq{Device: "C5", Attribute: "contact", Value: "closed"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "V1", Attribute: "valve", Value: "open"}},
	}}
	c.Prepare = func(cr *CaseRun) {
		_ = cr.Trigger("C5", "contact", "closed")
		_ = cr.Trigger("V1", "valve", "closed")
	}
	c.Attack = func(cr *CaseRun) error {
		hDoor, err := cr.Hijack("C5")
		if err != nil {
			return err
		}
		hMotion, err := cr.Hijack("M4")
		if err != nil {
			return err
		}
		core.SpuriousExecution(hDoor, "C5", hMotion, "M4", 5*time.Second)
		return nil
	}
	c.Scenario = func(cr *CaseRun) error {
		if err := cr.Trigger("C5", "contact", "open"); err != nil {
			return err
		}
		cr.Run(3 * time.Second)
		if err := cr.Trigger("M4", "motion", "active"); err != nil {
			return err
		}
		cr.Run(time.Minute)
		return nil
	}
	c.Judge = func(cr *CaseRun) (bool, string) {
		if got := cr.TB.Device("V1").State("valve"); got == "open" {
			return true, "window opened despite open door"
		}
		return false, "window stayed closed"
	}
	return c
}

func case8() Case {
	return Case{
		ID: 8, Type: "spurious",
		Trigger: "Storm door opened", Condition: "Presence on",
		Action:      "Unlock the interior door",
		Consequence: "door maliciously unlocked",
		Devices:     []string{"C5", "P1", "LK1"},
		Hijacks:     []string{"P1", "C5"},
		Rules: []rules.Rule{{
			Name:      "unlock-when-home",
			Trigger:   rules.Trigger{Device: "C5", Attribute: "contact", Value: "open"},
			Condition: rules.Eq{Device: "P1", Attribute: "presence", Value: "present"},
			Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "unlocked"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("P1", "presence", "present")
			_ = cr.Trigger("LK1", "lock", "locked")
		},
		Attack: func(cr *CaseRun) error {
			hPresence, err := cr.Hijack("P1")
			if err != nil {
				return err
			}
			hStorm, err := cr.Hijack("C5")
			if err != nil {
				return err
			}
			core.SpuriousExecution(hPresence, "P1", hStorm, "C5", 5*time.Second)
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			// The user leaves...
			if err := cr.Trigger("P1", "presence", "away"); err != nil {
				return err
			}
			cr.Run(10 * time.Second)
			// ...the burglar pulls the storm door within the 40s window.
			if err := cr.Trigger("C5", "contact", "open"); err != nil {
				return err
			}
			cr.Run(time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if got := cr.TB.Device("LK1").State("lock"); got == "unlocked" {
				return true, "interior door unlocked with nobody home"
			}
			return false, "door stayed locked"
		},
	}
}

func case9() Case {
	return Case{
		ID: 9, Type: "disabled",
		Trigger: "Presence away", Condition: "Front door open",
		Action:      "Send text message",
		Consequence: "door-open notification muted",
		Devices:     []string{"P1", "C2"},
		Hijacks:     []string{"C2", "P1"},
		Rules: []rules.Rule{{
			Name:      "warn-door-open-when-leaving",
			Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
			Condition: rules.Eq{Device: "C2", Attribute: "contact", Value: "open"},
			Actions:   []rules.Action{{Kind: rules.ActionNotify, Message: "you left the front door open!"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("P1", "presence", "present")
			_ = cr.Trigger("C2", "contact", "closed")
		},
		Attack: func(cr *CaseRun) error {
			hDoor, err := cr.Hijack("C2")
			if err != nil {
				return err
			}
			hPresence, err := cr.Hijack("P1")
			if err != nil {
				return err
			}
			core.DisabledExecution(hDoor, "C2", hPresence, "P1", 5*time.Second)
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			// The door is opened (and forgotten)...
			if err := cr.Trigger("C2", "contact", "open"); err != nil {
				return err
			}
			cr.Run(5 * time.Second)
			// ...and the user leaves.
			if err := cr.Trigger("P1", "presence", "away"); err != nil {
				return err
			}
			cr.Run(time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if len(cr.TB.Integration.Notifications()) == 0 {
				return true, "no warning delivered"
			}
			return false, "warning delivered"
		},
	}
}

func case10() Case {
	return Case{
		ID: 10, Type: "disabled",
		Trigger: "Presence away", Condition: "Front door unlocked",
		Action:      "Lock the front door",
		Consequence: "door not locked",
		Devices:     []string{"P1", "LK1"},
		Hijacks:     []string{"LK1", "P1"},
		Rules: []rules.Rule{{
			Name:      "lock-when-leaving",
			Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
			Condition: rules.Eq{Device: "LK1", Attribute: "lock", Value: "unlocked"},
			Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("P1", "presence", "present")
			_ = cr.Trigger("LK1", "lock", "locked")
		},
		Attack: func(cr *CaseRun) error {
			hLock, err := cr.Hijack("LK1")
			if err != nil {
				return err
			}
			hPresence, err := cr.Hijack("P1")
			if err != nil {
				return err
			}
			core.DisabledExecution(hLock, "LK1", hPresence, "P1", 5*time.Second)
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			// Leaving home: unlock, walk out, depart.
			if err := cr.Trigger("LK1", "lock", "unlocked"); err != nil {
				return err
			}
			cr.Run(5 * time.Second)
			if err := cr.Trigger("P1", "presence", "away"); err != nil {
				return err
			}
			cr.Run(time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if got := cr.TB.Device("LK1").State("lock"); got == "unlocked" {
				return true, "door left unlocked all day"
			}
			return false, "door locked automatically"
		},
	}
}

func case11() Case {
	return Case{
		ID: 11, Type: "disabled",
		Trigger: "Presence away", Condition: "Heater is on",
		Action:      "Turn off heater",
		Consequence: "heater not turned off",
		Devices:     []string{"P1", "T1"},
		Hijacks:     []string{"T1", "P1"},
		Rules: []rules.Rule{{
			Name:      "heater-off-when-leaving",
			Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
			Condition: rules.Eq{Device: "T1", Attribute: "heating", Value: "on"},
			Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "T1", Attribute: "heating", Value: "off"}},
		}},
		Prepare: func(cr *CaseRun) {
			_ = cr.Trigger("P1", "presence", "present")
			_ = cr.Trigger("T1", "heating", "off")
		},
		Attack: func(cr *CaseRun) error {
			hHeater, err := cr.Hijack("T1")
			if err != nil {
				return err
			}
			hPresence, err := cr.Hijack("P1")
			if err != nil {
				return err
			}
			core.DisabledExecution(hHeater, "T1", hPresence, "P1", 5*time.Second)
			return nil
		},
		Scenario: func(cr *CaseRun) error {
			if err := cr.Trigger("T1", "heating", "on"); err != nil {
				return err
			}
			cr.Run(5 * time.Second)
			if err := cr.Trigger("P1", "presence", "away"); err != nil {
				return err
			}
			cr.Run(time.Minute)
			return nil
		},
		Judge: func(cr *CaseRun) (bool, string) {
			if got := cr.TB.Device("T1").State("heating"); got == "on" {
				return true, "heater left running"
			}
			return false, "heater turned off"
		},
	}
}
