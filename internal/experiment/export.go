package experiment

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/obs"
)

// Export DTOs: stable JSON shapes for downstream tooling (plots, diffing
// across runs). Durations are exported as seconds so spreadsheets and
// plotting libraries consume them directly.

// TableRowJSON is the export shape of a TableRow.
type TableRowJSON struct {
	Label     string `json:"label"`
	Model     string `json:"model"`
	Class     string `json:"class"`
	Transport string `json:"transport"`
	ViaHub    string `json:"viaHub,omitempty"`

	HasKeepAlive          bool    `json:"hasKeepAlive"`
	KeepAlivePeriodSecs   float64 `json:"keepAlivePeriodSecs,omitempty"`
	KeepAlivePattern      string  `json:"keepAlivePattern,omitempty"`
	KeepAliveTimeoutSecs  float64 `json:"keepAliveTimeoutSecs,omitempty"`
	EventTimeoutSecs      float64 `json:"eventTimeoutSecs,omitempty"`
	CommandTimeoutSecs    float64 `json:"commandTimeoutSecs,omitempty"`
	OnDemand              bool    `json:"onDemand,omitempty"`
	ServerIdleTimeoutSecs float64 `json:"serverIdleTimeoutSecs,omitempty"`

	EventDelaySecs      float64 `json:"eventDelaySecs"`
	EventDelayUnbounded bool    `json:"eventDelayUnbounded"`
	CommandDelaySecs    float64 `json:"commandDelaySecs,omitempty"`
	HasCommands         bool    `json:"hasCommands"`

	ParametersVerified bool   `json:"parametersVerified"`
	StealthOK          bool   `json:"stealthOk"`
	Error              string `json:"error,omitempty"`
}

func secs(d time.Duration) float64 { return d.Seconds() }

// ToJSON converts a measured row to its export shape.
func (r TableRow) ToJSON() TableRowJSON {
	out := TableRowJSON{
		Label:     r.Label,
		Model:     r.Model,
		Class:     r.Class,
		Transport: r.Transport,
		ViaHub:    r.ViaHub,

		HasKeepAlive:        r.Measured.HasKeepAlive,
		OnDemand:            r.Measured.OnDemand,
		EventDelaySecs:      secs(r.EventDelayAchieved),
		EventDelayUnbounded: r.EventDelayUnbounded,
		CommandDelaySecs:    secs(r.CommandDelayAchieved),
		HasCommands:         r.HasCommands,
		ParametersVerified:  r.ParametersVerified,
		StealthOK:           r.StealthOK,
	}
	if r.Measured.HasKeepAlive {
		out.KeepAlivePeriodSecs = secs(r.Measured.KeepAlivePeriod)
		out.KeepAlivePattern = r.Measured.Pattern.String()
		out.KeepAliveTimeoutSecs = secs(r.Measured.KeepAliveTimeout)
	}
	out.EventTimeoutSecs = secs(r.Measured.EventTimeout)
	out.CommandTimeoutSecs = secs(r.Measured.CommandTimeout)
	out.ServerIdleTimeoutSecs = secs(r.Measured.ServerIdleTimeout)
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// WriteRowsJSON writes rows as an indented JSON array.
func WriteRowsJSON(w io.Writer, rows []TableRow) error {
	out := make([]TableRowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.ToJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// MergedMetrics merges the per-row testbed snapshots into one table-wide
// snapshot: counters and histogram buckets sum across devices, gauge
// high-water marks take the per-run maximum.
func MergedMetrics(rows []TableRow) obs.Snapshot {
	snaps := make([]obs.Snapshot, 0, len(rows))
	for _, r := range rows {
		snaps = append(snaps, r.Metrics)
	}
	return obs.Merge(snaps...)
}

// WriteMetricsJSON writes the merged metrics of rows as indented JSON.
func WriteMetricsJSON(w io.Writer, rows []TableRow) error {
	return WriteSnapshotsJSON(w, []obs.Snapshot{MergedMetrics(rows)})
}

// WriteSnapshotsJSON merges arbitrary run snapshots (table rows, case
// arms, verification or defense runs) and writes the result as indented
// JSON — the -metrics output shape for every measuring command.
func WriteSnapshotsJSON(w io.Writer, snaps []obs.Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obs.Merge(snaps...))
}

// CaseResultJSON is the export shape of a Table III case outcome.
type CaseResultJSON struct {
	Case        int    `json:"case"`
	Type        string `json:"type"`
	Trigger     string `json:"trigger"`
	Condition   string `json:"condition,omitempty"`
	Action      string `json:"action"`
	Consequence string `json:"consequence"`

	BaselineConsequence bool   `json:"baselineConsequence"`
	BaselineDetail      string `json:"baselineDetail"`
	AttackConsequence   bool   `json:"attackConsequence"`
	AttackDetail        string `json:"attackDetail"`
	AttackAlarms        int    `json:"attackAlarms"`
	Succeeded           bool   `json:"succeeded"`
	Error               string `json:"error,omitempty"`
}

// ToJSON converts a case result to its export shape.
func (r CaseResult) ToJSON() CaseResultJSON {
	out := CaseResultJSON{
		Case:                r.Case.ID,
		Type:                r.Case.Type,
		Trigger:             r.Case.Trigger,
		Condition:           r.Case.Condition,
		Action:              r.Case.Action,
		Consequence:         r.Case.Consequence,
		BaselineConsequence: r.BaselineConsequence,
		BaselineDetail:      r.BaselineDetail,
		AttackConsequence:   r.AttackConsequence,
		AttackDetail:        r.AttackDetail,
		AttackAlarms:        r.AttackAlarms,
		Succeeded:           r.Succeeded(),
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// WriteCasesJSON writes case results as an indented JSON array.
func WriteCasesJSON(w io.Writer, results []CaseResult) error {
	out := make([]CaseResultJSON, 0, len(results))
	for _, r := range results {
		out = append(out, r.ToJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
