package experiment

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// replayProbeLabels covers every protection combination in the catalog:
// two raw-vulnerable legacy stacks (P3 HTTP, P4 MQTT), two app-vulnerable
// null-cipher stacks (T1 long-poll, W1 on-demand), the three knob-protected
// devices (L3 window, V1 cloud dedup, K2 both), and three seq-bound
// controls across transports (C1 hub child, H1 HomeKit, M7 on-demand).
var replayProbeLabels = []string{"P3", "P4", "T1", "W1", "L3", "V1", "K2", "C1", "H1", "M7"}

func TestReplayAssessmentClasses(t *testing.T) {
	want := map[string]ReplayClass{
		"P3": ReplayRawVulnerable,
		"P4": ReplayRawVulnerable,
		"T1": ReplayAppVulnerable,
		"W1": ReplayAppVulnerable,
		"L3": ReplayProtected,
		"V1": ReplayProtected,
		"K2": ReplayProtected,
		"C1": ReplayProtected,
		"H1": ReplayProtected,
		"M7": ReplayProtected,
	}
	results := RunReplayAssessment(replayProbeLabels, ReplayOptions{Seed: 1})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
		if r.Class != want[r.Label] {
			t.Errorf("%s classified %s, want %s (raw=%v app=%v)", r.Label, r.Class, want[r.Label], r.RawAccepted, r.AppAccepted)
		}
	}
	// The lattice must be visible in the per-path outcomes too: a
	// raw-vulnerable device never reaches the app path, an app-vulnerable
	// one must have failed raw first.
	for _, r := range results {
		if r.RawAccepted && r.AppAccepted {
			t.Errorf("%s: both paths accepted — app replay should not run after raw success", r.Label)
		}
	}
}

// TestReplayAssessmentDeterministic pins the contract the fleet and CLI
// build on: same options, byte-identical table.
func TestReplayAssessmentDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	FormatReplayTable(&a, RunReplayAssessment(replayProbeLabels, ReplayOptions{Seed: 7}))
	FormatReplayTable(&b, RunReplayAssessment(replayProbeLabels, ReplayOptions{Seed: 7}))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("assessment not deterministic:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}

// TestReplayAssessmentTrace checks the Enabled-at-Instrument convention
// end to end: with a trace ring the engine emits replay_injected plus a
// verdict event; without one the assessment still works and the metrics
// counters carry the same story.
func TestReplayAssessmentTrace(t *testing.T) {
	results := RunReplayAssessment([]string{"P4"}, ReplayOptions{Seed: 3, TraceCap: 4096})
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	var injected, verdicts int
	for _, ev := range r.Metrics.Trace {
		if ev.Component != "replay" {
			continue
		}
		switch ev.Event {
		case "replay_injected":
			injected++
		case "replay_accepted", "replay_rejected":
			verdicts++
		}
	}
	if injected == 0 || verdicts == 0 {
		t.Fatalf("trace missing replay events: injected=%d verdicts=%d", injected, verdicts)
	}

	find := func(s obs.Snapshot, name string) uint64 {
		var total uint64
		for _, c := range s.Counters {
			if c.Name == name {
				total += c.Value
			}
		}
		return total
	}
	if find(r.Metrics, "replay_injected_total") == 0 {
		t.Fatal("replay_injected_total not incremented")
	}
	if find(r.Metrics, "replay_accepted_total") == 0 {
		t.Fatal("raw-vulnerable device should count an accepted replay")
	}

	// Traceless run (TraceCap < 0 disables the ring, as fleet campaigns
	// do): identical classification, no trace events.
	quiet := RunReplayAssessment([]string{"P4"}, ReplayOptions{Seed: 3, TraceCap: -1})
	if quiet[0].Class != r.Class {
		t.Fatalf("traceless class %s != traced class %s", quiet[0].Class, r.Class)
	}
	if len(quiet[0].Metrics.Trace) != 0 {
		t.Fatal("traceless run emitted trace events")
	}
}

// TestReplayAssessmentRetention exercises the capture budget path: a
// budget smaller than one event record evicts everything, so the
// assessment reports the missing capture instead of classifying.
func TestReplayAssessmentRetention(t *testing.T) {
	results := RunReplayAssessment([]string{"P4"}, ReplayOptions{Seed: 5, RetainBytes: 64})
	if results[0].Err == nil {
		t.Fatal("expected a no-retained-record error under a 64-byte budget")
	}
}
