package experiment

import (
	"strings"
	"testing"
	"time"
)

// The render functions back the CLI; they must at least produce every
// section header and one row per input.
func TestFormatRowsOutput(t *testing.T) {
	rows := RunTable([]string{"K2"}, TableOptions{Seed: 3, Trials: 1})
	var sb strings.Builder
	FormatRows(&sb, "Table X", rows)
	out := sb.String()
	for _, want := range []string{"Table X", "K2", "SimpliSafe", "http-long"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCaseResultsOutput(t *testing.T) {
	results := RunCases([]Case{case10()}, 11)
	var sb strings.Builder
	FormatCaseResults(&sb, results)
	out := sb.String()
	for _, want := range []string{"Table III", "disabled", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatVerifyAndFindingsOutput(t *testing.T) {
	var sb strings.Builder
	FormatVerifyResults(&sb, RunVerification([]string{"K2"}, VerifyOptions{Seed: 5, Trials: 1}))
	FormatFindings(&sb, RunFindings(6))
	out := sb.String()
	for _, want := range []string{"Verification", "K2", "Finding 1", "Finding 2", "Finding 3", "holds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDefenseAndAblationOutput(t *testing.T) {
	var sb strings.Builder
	ack := RunAckTimeoutDefense("C2", []time.Duration{10 * time.Second}, 7)
	ts := RunTimestampDefense(8)
	FormatDefenseResults(&sb, ack, ts)
	margins := RunMarginAblation("C1", []time.Duration{2 * time.Second}, 1, 9)
	boundary := RunDetectionBoundary("C1", []time.Duration{40 * time.Second}, 10)
	FormatAblation(&sb, margins, boundary)
	out := sb.String()
	for _, want := range []string{"VII-A", "VII-B", "release margin", "detection cliff", "C2", "stock"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
