package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/simtime"
)

// Case is one Table III proof-of-concept attack: an automation rule
// collected from user forums, a physical scenario, and the phantom-delay
// manipulation that produces the listed consequence.
type Case struct {
	ID          int
	Type        string // "state-update-delay", "action-delay", "spurious", "disabled"
	Trigger     string
	Condition   string
	Action      string
	Consequence string

	Devices     []string
	Integration cloud.IntegrationConfig
	Rules       []rules.Rule

	// Trace, when set, streams the attack arm's bridge records (see
	// CaseRun.Trace).
	Trace io.Writer

	// TraceCap sizes the testbeds' flight-recorder rings (see
	// TestbedConfig.TraceCap). An explicit capacity (> 0) records the
	// attack arm only, so the exported timeline is not interleaved with
	// baseline-arm events.
	TraceCap int

	// Hijacks lists the devices whose sessions the attacker takes over.
	// The man-in-the-middle positions are installed before the home
	// starts, so every session establishes through the attacker (attack
	// arm only).
	Hijacks []string

	// Prepare sets initial device states (runs in both arms).
	Prepare func(*CaseRun)
	// Attack arms delay operations on the installed hijackers (attack arm
	// only; runs after Prepare so armed matchers only see scenario
	// traffic).
	Attack func(*CaseRun) error
	// Scenario plays the physical sequence (runs in both arms).
	Scenario func(*CaseRun) error
	// Judge inspects the outcome; it must return consequence=true in the
	// attack arm and consequence=false in the baseline arm.
	Judge func(*CaseRun) (consequence bool, detail string)
}

// CaseRun is the execution context handed to a case's hooks.
type CaseRun struct {
	TB       *Testbed
	Attacker *core.Attacker
	Attacked bool

	// Trace, when set, receives a line per TLS record crossing any
	// hijacked bridge, with its fingerprint classification — the
	// attacker's-eye view of the attack.
	Trace io.Writer

	hijackers map[string]*core.Hijacker
}

// Hijack installs (or returns) a hijacker for a device's session.
func (cr *CaseRun) Hijack(label string) (*core.Hijacker, error) {
	owner := cr.TB.SessionOwner(label).Label()
	if h, ok := cr.hijackers[owner]; ok {
		return h, nil
	}
	h, err := cr.TB.Hijack(cr.Attacker, label)
	if err != nil {
		return nil, err
	}
	cr.hijackers[owner] = h
	if cr.Trace != nil {
		cr.traceBridge(owner, h)
	}
	return h, nil
}

func (cr *CaseRun) traceBridge(owner string, h *core.Hijacker) {
	h.OnRecord = func(b *core.Bridge, r core.RecordInfo) {
		label := "?"
		if cls, ok := h.Classify(r); ok {
			label = cls.Origin + "/" + cls.Kind.String()
		}
		held := ""
		if holding, since := b.Holding(r.Dir); holding {
			held = fmt.Sprintf("  [HOLDING since %v, %d queued]", since.Round(time.Millisecond), b.HeldCount(r.Dir))
		}
		fmt.Fprintf(cr.Trace, "%12v  %-4s %-3s %4dB  %-22s%s\n",
			cr.TB.Clock.Now().Round(time.Millisecond), owner, r.Dir, r.WireLen, label, held)
	}
}

// Run advances virtual time.
func (cr *CaseRun) Run(d time.Duration) { cr.TB.Clock.RunFor(d) }

// Trigger fires a device event and fails the case on error.
func (cr *CaseRun) Trigger(label, attr, value string) error {
	return cr.TB.Device(label).TriggerEvent(attr, value)
}

// CaseResult reports one case run in both arms.
type CaseResult struct {
	Case                Case
	BaselineConsequence bool
	BaselineDetail      string
	AttackConsequence   bool
	AttackDetail        string
	AttackAlarms        int
	Err                 error

	// Metrics is the merged observability snapshot of both arms'
	// testbeds (whatever each arm produced before any failure).
	Metrics obs.Snapshot
}

// Succeeded reports the paper's expectation: the consequence appears only
// under attack, with zero alarms.
func (r CaseResult) Succeeded() bool {
	return r.Err == nil && !r.BaselineConsequence && r.AttackConsequence && r.AttackAlarms == 0
}

// RunCases executes each case twice (baseline, then attacked) on fresh
// testbeds.
func RunCases(cases []Case, seed int64) []CaseResult {
	out := make([]CaseResult, 0, len(cases))
	for i, c := range cases {
		out = append(out, runCase(c, seed+int64(i)*997))
	}
	return out
}

func runCase(c Case, seed int64) (res CaseResult) {
	res = CaseResult{Case: c}
	var armSnaps []obs.Snapshot

	runArm := func(attacked bool, armSeed int64) (consequence bool, detail string, alarms int, err error) {
		traceCap := c.TraceCap
		if !attacked && c.TraceCap > 0 {
			traceCap = -1
		}
		tb, err := NewTestbed(TestbedConfig{
			Seed:        armSeed,
			Devices:     c.Devices,
			Integration: c.Integration,
			TraceCap:    traceCap,
		})
		if err != nil {
			return false, "", 0, err
		}
		defer func() { armSnaps = append(armSnaps, tb.Metrics.Snapshot()) }()
		cr := &CaseRun{TB: tb, Attacked: attacked, hijackers: make(map[string]*core.Hijacker)}
		if attacked {
			cr.Trace = c.Trace
			atk, err := tb.NewAttacker()
			if err != nil {
				return false, "", 0, err
			}
			cr.Attacker = atk
			// Take the man-in-the-middle positions before anything
			// connects, so the sessions establish through the attacker.
			for _, label := range c.Hijacks {
				if _, err := cr.Hijack(label); err != nil {
					return false, "", 0, err
				}
			}
		}
		for _, r := range c.Rules {
			if err := installRule(tb, r); err != nil {
				return false, "", 0, err
			}
		}
		tb.Start()
		if c.Prepare != nil {
			c.Prepare(cr)
			tb.Clock.RunFor(5 * time.Second)
		}
		if attacked && c.Attack != nil {
			if err := c.Attack(cr); err != nil {
				return false, "", 0, err
			}
			tb.Clock.RunFor(time.Second)
		}
		alarmsBefore := tb.TotalAlarmCount()
		if err := c.Scenario(cr); err != nil {
			return false, "", 0, err
		}
		consequence, detail = c.Judge(cr)
		return consequence, detail, tb.TotalAlarmCount() - alarmsBefore, nil
	}

	var err error
	defer func() { res.Metrics = obs.Merge(armSnaps...) }()
	res.BaselineConsequence, res.BaselineDetail, _, err = runArm(false, seed)
	if err != nil {
		res.Err = fmt.Errorf("baseline: %w", err)
		return res
	}
	res.AttackConsequence, res.AttackDetail, res.AttackAlarms, err = runArm(true, seed+1)
	if err != nil {
		res.Err = fmt.Errorf("attack: %w", err)
	}
	return res
}

func installRule(tb *Testbed, r rules.Rule) error {
	// Rules over HAP devices run on the local hub; everything else on the
	// integration server.
	if tb.LocalHub != nil {
		if p, ok := tb.byLabel[r.Trigger.Device]; ok && p.ServerDomain == "local" {
			return tb.LocalHub.AddRule(r)
		}
	}
	return tb.Integration.AddRule(r)
}

// notificationLatency returns the latency of the first notification, if
// any was delivered.
func notificationLatency(tb *Testbed) (time.Duration, bool) {
	n := tb.Integration.Notifications()
	if len(n) == 0 {
		return 0, false
	}
	return n[0].Latency(), true
}

// actuationAt returns when the device last applied attr=value.
func actuationAt(tb *Testbed, label, attr, value string) (simtime.Time, bool) {
	var at simtime.Time
	found := false
	want := attr + "=" + value
	for _, e := range tb.Device(label).Log() {
		if e.Kind == "command-applied" && e.Detail == want {
			at = e.At
			found = true
		}
	}
	return at, found
}

// FormatCaseResults renders Table III-style rows.
func FormatCaseResults(w io.Writer, results []CaseResult) {
	fmt.Fprintf(w, "Table III — proof-of-concept attacks\n%s\n", strings.Repeat("=", 60))
	fmt.Fprintf(w, "%-4s %-20s %-34s %-34s %-9s %-7s\n", "Case", "Type", "Baseline", "Attacked", "Alarms", "Result")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%-4d %-20s ERROR: %v\n", r.Case.ID, r.Case.Type, r.Err)
			continue
		}
		verdict := "FAILED"
		if r.Succeeded() {
			verdict = "ok"
		}
		fmt.Fprintf(w, "%-4d %-20s %-34s %-34s %-9d %-7s\n",
			r.Case.ID, r.Case.Type, r.BaselineDetail, r.AttackDetail, r.AttackAlarms, verdict)
	}
}
