package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/sniff"
)

// ReconResult reports how much of a home an attacker can recognise with a
// fingerprint database limited to the topN most popular session-owning
// models — the paper's Clarification II: profiling a handful of popular
// devices already covers a large share of deployments.
type ReconResult struct {
	TopN            int
	ProfiledModels  []string
	FlowsObserved   int
	FlowsIdentified int
	// DevicesCovered counts deployed devices whose session owner was
	// identified (children count with their hub).
	DevicesCovered int
	DevicesTotal   int
	Err            error
}

// Coverage is the fraction of deployed devices recognisable.
func (r ReconResult) Coverage() float64 {
	if r.DevicesTotal == 0 {
		return 0
	}
	return float64(r.DevicesCovered) / float64(r.DevicesTotal)
}

// RunReconCoverage deploys the given devices, lets the attacker sniff
// passively, and sweeps fingerprint databases limited to the top-N
// session-owning models by app popularity.
func RunReconCoverage(labels []string, topNs []int, seed int64) []ReconResult {
	out := make([]ReconResult, 0, len(topNs))
	for _, n := range topNs {
		out = append(out, reconPoint(labels, n, seed))
	}
	return out
}

func reconPoint(labels []string, topN int, seed int64) ReconResult {
	res := ReconResult{TopN: topN}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: labels})
	if err != nil {
		res.Err = err
		return res
	}
	capture := sniff.NewCapture(tb.Clock)
	tb.LAN.AddTap(capture.Tap())
	tb.Start()

	// Household activity so events are observable, then idle keep-alives.
	i := 0
	for _, label := range labels {
		p := tb.Profile(label)
		_ = tb.Device(label).TriggerEvent(p.EventAttr, p.EventValues[i%len(p.EventValues)])
		i++
		tb.Clock.RunFor(10 * time.Second)
	}
	tb.Clock.RunFor(5 * time.Minute)

	sigs := topModelSignatures(topN)
	for _, s := range sigs {
		res.ProfiledModels = append(res.ProfiledModels, s.Owner)
	}
	cl := sniff.NewClassifier(sigs)
	identified := cl.IdentifyAllFlows(capture, 0.5)
	res.FlowsObserved = len(capture.Flows())
	res.FlowsIdentified = len(identified)

	// Which deployed devices ride an identified session?
	owners := make(map[string]bool)
	for _, model := range identified {
		owners[model] = true
	}
	byLabel := device.Index()
	for _, label := range labels {
		res.DevicesTotal++
		owner, err := device.SessionProfile(byLabel[label], byLabel)
		if err != nil {
			continue
		}
		if owners[owner.Label] {
			res.DevicesCovered++
		}
	}
	return res
}

// topModelSignatures returns signatures for the topN session-owning cloud
// models by app downloads (the paper's popularity proxy).
func topModelSignatures(topN int) []sniff.ModelSignature {
	// Copy before sorting: BuildCatalogSignatures returns a shared slice.
	all := append([]sniff.ModelSignature(nil), sniff.BuildCatalogSignatures()...)
	byLabel := device.Index()
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := byLabel[all[i].Owner], byLabel[all[j].Owner]
		if pi.AppDownloads != pj.AppDownloads {
			return pi.AppDownloads > pj.AppDownloads
		}
		return all[i].Owner < all[j].Owner
	})
	if topN < len(all) {
		all = all[:topN]
	}
	return all
}

// FormatRecon renders the coverage sweep.
func FormatRecon(w io.Writer, results []ReconResult) {
	fmt.Fprintf(w, "Recon coverage vs. fingerprint-database size (Clarification II)\n%s\n", strings.Repeat("=", 64))
	fmt.Fprintf(w, "%-6s %-8s %-12s %-16s %-9s\n", "TopN", "Flows", "Identified", "DevicesCovered", "Coverage")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%-6d ERROR: %v\n", r.TopN, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-6d %-8d %-12d %d/%-14d %.0f%%\n",
			r.TopN, r.FlowsObserved, r.FlowsIdentified, r.DevicesCovered, r.DevicesTotal, r.Coverage()*100)
	}
}
