package experiment

import (
	"runtime"
	"sync"
)

// Parallelism note: a single testbed's simulation is strictly
// single-threaded (that is what makes runs deterministic), but the table
// measurements build one *independent* testbed per device, so they
// parallelise perfectly across devices. Results are identical to the
// serial runner — each device's universe owns its seed — only wall-clock
// time changes.

// RunTableParallel is RunTable with up to workers devices measured
// concurrently. workers <= 0 selects GOMAXPROCS.
func RunTableParallel(labels []string, opts TableOptions, workers int) []TableRow {
	opts.fill()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(labels) {
		workers = len(labels)
	}
	rows := make([]TableRow, len(labels))
	type job struct {
		idx   int
		label string
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				rows[j.idx] = measureDevice(j.label, opts, opts.Seed+int64(j.idx)*101)
			}
		}()
	}
	for i, label := range labels {
		jobs <- job{idx: i, label: label}
	}
	close(jobs)
	wg.Wait()
	return rows
}
