package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sniff"
)

// FindingResult reports one of the paper's three Section VI findings.
type FindingResult struct {
	ID     int
	Title  string
	Holds  bool
	Detail string
	Err    error

	// Metrics is the finding testbed's observability snapshot.
	Metrics obs.Snapshot
}

// RunFindings reproduces Findings 1–3.
func RunFindings(seed int64) []FindingResult {
	return []FindingResult{
		runFinding1(seed),
		runFinding2(seed + 1),
		runFinding3(seed + 2),
	}
}

// runFinding1: on-demand sessions hide timeouts. The device-side timeout
// during an event delay is never noticed by the cloud server, because from
// its view the session was simply slow; even the device reports no anomaly
// afterwards.
func runFinding1(seed int64) (res FindingResult) {
	res = FindingResult{ID: 1, Title: "On-demand sessions hide timeouts from the server"}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{"M7"}})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { res.Metrics = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, "M7")
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()

	// Delay the event well past the device's own 30s give-up point but
	// inside the server's 5-minute idle window.
	const hold = 3 * time.Minute
	h.EDelay("M7", hold)
	if err := tb.Device("M7").TriggerEvent("motion", "active"); err != nil {
		res.Err = err
		return res
	}
	tb.Clock.RunFor(hold + time.Minute)

	deviceGaveUp := tb.Device("M7").LogCount("closed") > 0
	accepted := countAccepted(tb, "M7") == 1
	alarms := tb.TotalAlarmCount()
	res.Holds = deviceGaveUp && accepted && alarms == 0
	res.Detail = fmt.Sprintf("device timed out locally=%v, event accepted after %v=%v, server alarms=%d",
		deviceGaveUp, hold, accepted, alarms)
	return res
}

// runFinding2: half-open connections postpone offline alarms. After a
// forced device-side timeout the attacker keeps the server-side connection
// open; the device reconnects; the server carries both sessions and never
// raises an alarm — even when the stale one finally dies.
func runFinding2(seed int64) (res FindingResult) {
	res = FindingResult{ID: 2, Title: "Half-open connections postpone device-offline alarms"}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{"C1"}})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { res.Metrics = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, "C1")
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()
	firstBridge, ok := h.CurrentBridge()
	if !ok {
		res.Err = fmt.Errorf("experiment: no bridge")
		return res
	}
	// Keep the server side open no matter what the device does.
	firstBridge.HoldDeviceClose = true

	// Force a device-side timeout by holding its keep-alives forever.
	h.DelayKeepAlive(0)
	tb.Clock.RunFor(2 * time.Minute) // device times out (~47s) and reconnects (+3s)

	newBridge, ok := h.CurrentBridge()
	reconnected := ok && newBridge != firstBridge
	srvClosed, _ := firstBridge.ServerClosed()
	ep := tb.Endpoints["smartthings.com"]
	halfOpen := ep.Broker().HalfOpenCount("H1")
	alarmsDuring := tb.TotalAlarmCount()

	// Now let the stale connection die; a live replacement exists, so the
	// server still must not alarm.
	firstBridge.CloseServerSide()
	tb.Clock.RunFor(30 * time.Second)
	alarmsAfter := tb.TotalAlarmCount()

	res.Holds = reconnected && !srvClosed && halfOpen == 1 && alarmsDuring == 0 && alarmsAfter == 0
	res.Detail = fmt.Sprintf("reconnected=%v, stale conn kept open=%v, half-open sessions=%d, alarms=%d then %d",
		reconnected, !srvClosed, halfOpen, alarmsDuring, alarmsAfter)
	return res
}

// runFinding3: unidirectional liveness checking. Keep-alives are always
// device-initiated; the server never probes, so an attacker silently
// blackholing the device's outbound messages leaves the server believing
// the device is merely idle, indefinitely.
func runFinding3(seed int64) (res FindingResult) {
	res = FindingResult{ID: 3, Title: "Unidirectional liveness checking: servers never probe"}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{"C1"}})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { res.Metrics = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, "C1")
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()
	b, ok := h.CurrentBridge()
	if !ok {
		res.Err = fmt.Errorf("experiment: no bridge")
		return res
	}
	b.HoldDeviceClose = true

	// Hold everything the device sends, forever, and count what the
	// server spontaneously sends toward the device.
	h.DelayKeepAlive(0)
	before := b.ForwardedCount(sniff.DirServerToClient)
	tb.Clock.RunFor(30 * time.Minute)
	after := b.ForwardedCount(sniff.DirServerToClient)

	ep := tb.Endpoints["smartthings.com"]
	if _, live := ep.Broker().ActiveSession("H1"); !live {
		res.Detail = "server dropped the session"
		return res
	}
	alarms := tb.TotalAlarmCount()
	res.Holds = after == before && alarms == 0
	res.Detail = fmt.Sprintf("server-initiated records in 30min of silence: %d, alarms: %d, session still believed live: true",
		after-before, alarms)
	return res
}

// FormatFindings renders the finding outcomes.
func FormatFindings(w io.Writer, results []FindingResult) {
	fmt.Fprintf(w, "Session-behaviour findings (Section VI-C)\n%s\n", strings.Repeat("=", 50))
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "Finding %d: ERROR: %v\n", r.ID, r.Err)
			continue
		}
		status := "DID NOT HOLD"
		if r.Holds {
			status = "holds"
		}
		fmt.Fprintf(w, "Finding %d — %s: %s\n    %s\n", r.ID, r.Title, status, r.Detail)
	}
}
