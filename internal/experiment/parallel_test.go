package experiment

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestParallelMatchesSerial(t *testing.T) {
	labels := []string{"C1", "L2", "K2", "M7", "A1", "P2"}
	opts := TableOptions{Seed: 2100, Trials: 1}
	serial := RunTable(labels, opts)
	parallel := RunTableParallel(labels, opts, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("row %d errors: %v / %v", i, s.Err, p.Err)
		}
		if s.Label != p.Label ||
			s.EventDelayAchieved != p.EventDelayAchieved ||
			s.CommandDelayAchieved != p.CommandDelayAchieved ||
			s.Measured.String() != p.Measured.String() {
			t.Fatalf("row %d diverged:\nserial:   %+v\nparallel: %+v", i, s, p)
		}
	}
}

// TestParallelDeterministicAcrossWorkerCounts is the strong form of the
// serial/parallel equivalence claim: every row — including the full
// metrics snapshot of each device's testbed — must be byte-identical to
// the serial runner's, for any worker count.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	labels := []string{"C1", "C2", "L2", "K2", "M7", "A1", "P2", "CM1"}
	opts := TableOptions{Seed: 2150, Trials: 1}
	serial := RunTable(labels, opts)

	serialJSON := encodeRows(t, serial)
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		par := RunTableParallel(labels, opts, workers)
		if !reflect.DeepEqual(serial, par) {
			for i := range serial {
				if !reflect.DeepEqual(serial[i], par[i]) {
					t.Fatalf("workers=%d: row %d (%s) diverged from serial", workers, i, serial[i].Label)
				}
			}
			t.Fatalf("workers=%d: rows diverged from serial", workers)
		}
		if got := encodeRows(t, par); !bytes.Equal(serialJSON, got) {
			t.Fatalf("workers=%d: JSON export not byte-identical to serial", workers)
		}
	}
}

// encodeRows renders both export shapes (rows and merged metrics) so the
// byte-level comparison covers snapshot ordering too.
func encodeRows(t *testing.T, rows []TableRow) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelEmptyLabels(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		rows := RunTableParallel(nil, TableOptions{Seed: 1, Trials: 1}, workers)
		if len(rows) != 0 {
			t.Fatalf("workers=%d: rows = %+v, want empty", workers, rows)
		}
	}
	if rows := RunTableParallel([]string{}, TableOptions{Seed: 1, Trials: 1}, 2); len(rows) != 0 {
		t.Fatalf("explicit empty slice: rows = %+v", rows)
	}
}

func TestParallelWorkerClamping(t *testing.T) {
	rows := RunTableParallel([]string{"K2"}, TableOptions{Seed: 2200, Trials: 1}, 64)
	if len(rows) != 1 || rows[0].Err != nil {
		t.Fatalf("rows = %+v", rows)
	}
	rows = RunTableParallel([]string{"K2"}, TableOptions{Seed: 2200, Trials: 1}, 0)
	if len(rows) != 1 || rows[0].Err != nil {
		t.Fatalf("rows with auto workers = %+v", rows)
	}
}

func TestRowsJSONExport(t *testing.T) {
	rows := RunTable([]string{"K2", "A1"}, TableOptions{Seed: 2300, Trials: 1})
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []TableRowJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d rows", len(decoded))
	}
	k2 := decoded[0]
	if k2.Label != "K2" || !k2.HasKeepAlive || k2.EventTimeoutSecs < 24 || k2.EventTimeoutSecs > 26 {
		t.Fatalf("K2 export = %+v", k2)
	}
	a1 := decoded[1]
	if !a1.EventDelayUnbounded || a1.HasKeepAlive {
		t.Fatalf("A1 export = %+v", a1)
	}
	if !strings.Contains(buf.String(), `"stealthOk": true`) {
		t.Fatal("stealth field missing")
	}
}

func TestCasesJSONExport(t *testing.T) {
	results := RunCases([]Case{case10()}, 2400)
	var buf bytes.Buffer
	if err := WriteCasesJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var decoded []CaseResultJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Case != 10 || !decoded[0].Succeeded {
		t.Fatalf("decoded = %+v", decoded)
	}
}
