package experiment

import (
	"testing"
	"time"
)

// TestCasesRobustAcrossSeeds: the qualitative Table III outcomes must not
// depend on the seed (they drive jitter and ISNs, nothing else).
func TestCasesRobustAcrossSeeds(t *testing.T) {
	cases := Table3Cases()
	for _, seed := range []int64{1, 424242, 99991} {
		results := RunCases(cases, seed)
		for _, r := range results {
			if r.Err != nil {
				t.Errorf("seed %d case %d: %v", seed, r.Case.ID, r.Err)
				continue
			}
			if !r.Succeeded() {
				t.Errorf("seed %d case %d: baseline=%v attacked=%v alarms=%d",
					seed, r.Case.ID, r.BaselineConsequence, r.AttackConsequence, r.AttackAlarms)
			}
		}
	}
}

// TestDeterministicReplay: identical configuration and seed reproduce the
// identical event stream, byte for byte.
func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		tb, err := NewTestbed(TestbedConfig{Seed: 4242, Devices: []string{"C2", "P2"}, Jitter: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		tb.Start()
		_ = tb.Device("C2").TriggerEvent("contact", "open")
		tb.Clock.RunFor(10 * time.Second)
		_ = tb.Device("P2").TriggerEvent("switch", "on")
		tb.Clock.RunFor(10 * time.Second)
		var out []string
		for _, ev := range tb.Integration.Events() {
			out = append(out, ev.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestAttackerNetworkFootprint quantifies a detectability angle the paper
// leaves implicit: the relay doubles the victim flow's bytes on the WiFi
// segment (each frame crosses twice), and the ARP re-poison chatter can
// dominate everything at aggressive intervals — observable by a wired IDS
// even though no protocol layer complains. A patient attacker on a quiet
// LAN tunes the re-poison down and approaches the 2x floor.
func TestAttackerNetworkFootprint(t *testing.T) {
	measure := func(attack bool, repoison time.Duration) uint64 {
		tb, err := NewTestbed(TestbedConfig{Seed: 4300, Devices: []string{"C2"}})
		if err != nil {
			t.Fatal(err)
		}
		if attack {
			atk, err := tb.NewAttacker()
			if err != nil {
				t.Fatal(err)
			}
			atk.Spoofer.SetPeriod(repoison)
			if _, err := tb.Hijack(atk, "C2"); err != nil {
				t.Fatal(err)
			}
		}
		tb.Start()
		start := tb.LAN.Stats().BytesSent
		tb.Clock.RunFor(10 * time.Minute)
		return tb.LAN.Stats().BytesSent - start
	}
	clean := measure(false, 0)
	noisy := float64(measure(true, time.Second)) / float64(clean)
	quiet := float64(measure(true, 5*time.Minute)) / float64(clean)
	if noisy < 5 {
		t.Fatalf("1s re-poison footprint = %.2fx; expected ARP chatter to dominate", noisy)
	}
	if quiet < 1.8 || quiet > 3.0 {
		t.Fatalf("patient footprint = %.2fx; the relay floor is about 2x", quiet)
	}
	if quiet >= noisy {
		t.Fatalf("slower re-poison should cost less: %.2fx vs %.2fx", quiet, noisy)
	}
}
