package experiment

import "testing"

func TestReconCoverageGrowsWithDatabase(t *testing.T) {
	// An 12-device home spanning five vendor sessions plus three direct
	// devices; the attacker's database grows from the top 3 models to all.
	labels := []string{
		"C1", "M1", // SmartThings (most popular)
		"L2", "M2", // Hue
		"C2", "M3", // Ring
		"LK1",       // August
		"P2",        // Kasa
		"CM1", "K2", // Wyze, SimpliSafe
		"SD1", "P4", // Nest, Meross
	}
	results := RunReconCoverage(labels, []int{3, 6, 100}, 1200)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("top%d: %v", r.TopN, r.Err)
		}
	}
	if !(results[0].Coverage() <= results[1].Coverage() && results[1].Coverage() < results[2].Coverage()) {
		t.Fatalf("coverage should grow with the database: %.2f, %.2f, %.2f",
			results[0].Coverage(), results[1].Coverage(), results[2].Coverage())
	}
	// The paper's point: a handful of popular profiles already covers a
	// substantial share of the home (the exact set depends on which
	// popular apps happen to be deployed here).
	if results[0].Coverage() < 0.3 {
		t.Errorf("top-3 coverage = %.2f, want a substantial share", results[0].Coverage())
	}
	if results[1].Coverage() < 0.5 {
		t.Errorf("top-6 coverage = %.2f, want most of the home", results[1].Coverage())
	}
	if results[2].Coverage() < 0.99 {
		t.Errorf("full-database coverage = %.2f, want ~everything", results[2].Coverage())
	}
	if len(results[0].ProfiledModels) != 3 {
		t.Fatalf("top-3 database has %d models", len(results[0].ProfiledModels))
	}
}
