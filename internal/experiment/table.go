package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
)

// TableOptions tunes the Table I/II measurement runs.
type TableOptions struct {
	// Seed drives the testbeds.
	Seed int64
	// Trials per message class (the paper uses 20).
	Trials int
	// Recovery between trials (the paper uses 2 minutes).
	Recovery time.Duration
	// Margin is the release margin before predicted timeouts when
	// measuring achievable delays.
	Margin time.Duration
	// UnboundedDemo is how long unbounded holds are demonstrated before
	// release (HomeKit events).
	UnboundedDemo time.Duration
	// TraceCap sizes each testbed's flight-recorder ring (see
	// TestbedConfig.TraceCap): > 0 explicit, 0 default, < 0 disabled.
	TraceCap int
}

func (o *TableOptions) fill() {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Recovery <= 0 {
		o.Recovery = 30 * time.Second
	}
	if o.Margin <= 0 {
		o.Margin = 2 * time.Second
	}
	if o.UnboundedDemo <= 0 {
		o.UnboundedDemo = time.Hour
	}
}

// TableRow is one measured device: the paper's Table I/II columns.
type TableRow struct {
	Label     string
	Model     string
	Class     string
	Transport string
	ViaHub    string

	// Measured timeout-behaviour parameters (Section IV-B).
	Measured core.Measured

	// Ground truth for validation.
	Truth device.Profile

	// EventDelayAchieved is the longest event delay demonstrated with the
	// message still accepted and zero alarms. EventDelayUnbounded marks
	// the "∞" rows, where EventDelayAchieved only demonstrates a floor.
	EventDelayAchieved  time.Duration
	EventDelayUnbounded bool
	// CommandDelayAchieved mirrors the above for commands (zero when the
	// device takes no commands).
	CommandDelayAchieved  time.Duration
	CommandDelayUnbounded bool
	HasCommands           bool

	// ParametersVerified reports the profiler output matching ground truth
	// within tolerance.
	ParametersVerified bool
	// StealthOK reports zero server-side alarms across all measurements.
	StealthOK bool

	// Metrics is the device testbed's full metrics snapshot, taken after
	// the measurement finished. Snapshots from all rows merge with
	// obs.Merge for a whole-table view.
	Metrics obs.Snapshot

	// Err captures a per-device measurement failure.
	Err error
}

// RunTable measures every given catalog label, building a fresh hijacked
// testbed per device (as the paper measures devices one at a time).
func RunTable(labels []string, opts TableOptions) []TableRow {
	opts.fill()
	rows := make([]TableRow, 0, len(labels))
	for i, label := range labels {
		row := measureDevice(label, opts, opts.Seed+int64(i)*101)
		rows = append(rows, row)
	}
	return rows
}

// RunTable1 reproduces Table I (cloud-connected devices).
func RunTable1(opts TableOptions) []TableRow {
	var labels []string
	for _, p := range device.CloudProfiles() {
		labels = append(labels, p.Label)
	}
	return RunTable(labels, opts)
}

// RunTable2 reproduces Table II (local HomeKit accessories).
func RunTable2(opts TableOptions) []TableRow {
	var labels []string
	for _, p := range device.LocalProfiles() {
		labels = append(labels, p.Label)
	}
	return RunTable(labels, opts)
}

func measureDevice(label string, opts TableOptions, seed int64) (row TableRow) {
	truth, err := device.Lookup(label)
	row = TableRow{Label: label, Err: err}
	if err != nil {
		return row
	}
	row.Model = truth.Model
	row.Class = truth.Class
	row.Transport = truth.Transport.String()
	row.ViaHub = truth.ViaHub
	row.Truth = truth
	row.HasCommands = truth.CommandAttr != ""

	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{label}, TraceCap: opts.TraceCap})
	if err != nil {
		row.Err = err
		return row
	}
	// Snapshot whatever the run produced, even on a failed measurement.
	defer func() { row.Metrics = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		row.Err = err
		return row
	}
	h, err := tb.Hijack(atk, label)
	if err != nil {
		row.Err = err
		return row
	}
	tb.Start()

	lab, err := tb.NewLab(h, label)
	if err != nil {
		row.Err = err
		return row
	}
	lab.Trials = opts.Trials
	lab.Recovery = opts.Recovery
	markPhase(tb, "phase_start", "profile", 0)
	m, err := lab.Profile()
	markPhase(tb, "phase_end", "profile", 0)
	if err != nil {
		row.Err = err
		return row
	}
	row.Measured = m
	row.ParametersVerified = parametersMatch(m, truth, tb)

	// Profiling intentionally causes timeouts in the attacker's own lab;
	// stealth is judged only over the demonstration attack that follows.
	alarmsBeforeDemo := tb.TotalAlarmCount()

	// Demonstrate the maximum stealthy delays.
	h.ArmPredictor(m)
	markPhase(tb, "phase_start", "demo-event", 0)
	row.EventDelayAchieved, row.EventDelayUnbounded, err = demonstrateEventDelay(tb, h, lab, opts)
	markPhase(tb, "phase_end", "demo-event", int64(row.EventDelayAchieved))
	if err != nil {
		row.Err = err
		return row
	}
	if row.HasCommands && lab.TriggerCommand != nil {
		markPhase(tb, "phase_start", "demo-command", 0)
		row.CommandDelayAchieved, row.CommandDelayUnbounded, err = demonstrateCommandDelay(tb, h, lab, opts)
		markPhase(tb, "phase_end", "demo-command", int64(row.CommandDelayAchieved))
		if err != nil {
			row.Err = err
			return row
		}
	}
	row.StealthOK = tb.TotalAlarmCount() == alarmsBeforeDemo
	return row
}

// demonstrateEventDelay holds one event for the maximum predicted-safe
// time (or UnboundedDemo when no timeout bounds it) and verifies the
// event is still accepted.
func demonstrateEventDelay(tb *Testbed, h *core.Hijacker, lab *core.Lab, opts TableOptions) (time.Duration, bool, error) {
	m := h.Predictor().Measured()
	_, _, bounded := m.EventWindow()

	var achieved time.Duration
	released := false
	var op *core.DelayOp
	if bounded {
		op = h.MaxEDelay(lab.EventOrigin, opts.Margin)
	} else {
		op = h.EDelay(lab.EventOrigin, opts.UnboundedDemo)
	}
	op.OnReleased = func(d time.Duration) { achieved, released = d, true }

	eventsBefore := countAccepted(tb, lab.EventOrigin)
	if err := lab.TriggerEvent(); err != nil {
		return 0, false, err
	}
	limit := opts.UnboundedDemo + 10*time.Minute
	deadline := tb.Clock.Now() + limit
	for !released && tb.Clock.Now() < deadline {
		if next, ok := tb.Clock.NextEventAt(); !ok || next > deadline {
			tb.Clock.RunUntil(deadline)
			break
		}
		tb.Clock.Step()
	}
	tb.Clock.RunFor(5 * time.Second)
	if !released {
		return 0, false, fmt.Errorf("experiment: %s event delay never released", lab.EventOrigin)
	}
	if countAccepted(tb, lab.EventOrigin) <= eventsBefore {
		return 0, false, fmt.Errorf("experiment: %s delayed event not accepted", lab.EventOrigin)
	}
	return achieved, !bounded, nil
}

func demonstrateCommandDelay(tb *Testbed, h *core.Hijacker, lab *core.Lab, opts TableOptions) (time.Duration, bool, error) {
	m := h.Predictor().Measured()
	_, _, bounded := m.CommandWindow()

	var achieved time.Duration
	released := false
	var op *core.DelayOp
	if bounded {
		op = h.MaxCDelay(lab.CommandOrigin, opts.Margin)
	} else {
		op = h.CDelay(lab.CommandOrigin, opts.UnboundedDemo)
	}
	op.OnReleased = func(d time.Duration) { achieved, released = d, true }
	if err := lab.TriggerCommand(); err != nil {
		return 0, false, err
	}
	limit := opts.UnboundedDemo + 10*time.Minute
	deadline := tb.Clock.Now() + limit
	for !released && tb.Clock.Now() < deadline {
		if next, ok := tb.Clock.NextEventAt(); !ok || next > deadline {
			tb.Clock.RunUntil(deadline)
			break
		}
		tb.Clock.Step()
	}
	tb.Clock.RunFor(5 * time.Second)
	if !released {
		return 0, false, fmt.Errorf("experiment: %s command delay never released", lab.CommandOrigin)
	}
	return achieved, !bounded, nil
}

// markPhase records an attack-phase boundary in the testbed's flight
// recorder, giving the timeline exporter its top-level spans.
func markPhase(tb *Testbed, event, name string, value int64) {
	if tr := tb.Metrics.Trace(); tr.Enabled() {
		tr.Emit(tb.Clock.Now(), "experiment", event, name, value)
	}
}

func countAccepted(tb *Testbed, origin string) int {
	n := 0
	if tb.LocalHub != nil {
		for _, ev := range tb.LocalHub.Events() {
			if ev.Device == origin {
				n++
			}
		}
	}
	for _, ev := range tb.Integration.Events() {
		if ev.Device == origin {
			n++
		}
	}
	return n
}

// parametersMatch validates the profiler output against ground truth with
// a small tolerance.
func parametersMatch(m core.Measured, truth device.Profile, tb *Testbed) bool {
	owner, err := device.SessionProfile(truth, tb.byLabel)
	if err != nil {
		return false
	}
	const tol = 3 * time.Second
	approx := func(a, b time.Duration) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= tol
	}
	switch owner.Transport {
	case device.TransportHAP:
		return !m.HasKeepAlive && m.EventTimeout == 0
	case device.TransportHTTPOnDemand:
		return m.OnDemand && approx(m.EventTimeout, owner.EventTimeout) &&
			approx(m.ServerIdleTimeout, owner.ServerIdleTimeout)
	}
	if !m.HasKeepAlive || m.Pattern != owner.KeepAlivePattern {
		return false
	}
	if !approx(m.KeepAlivePeriod, owner.KeepAlivePeriod) || !approx(m.KeepAliveTimeout, owner.KeepAliveTimeout) {
		return false
	}
	// A dedicated event timeout only manifests when shorter than the
	// keep-alive bound.
	kaBound := owner.KeepAlivePeriod + owner.KeepAliveTimeout
	if owner.EventTimeout > 0 && owner.EventTimeout < kaBound {
		if !approx(m.EventTimeout, owner.EventTimeout) {
			return false
		}
	} else if m.EventTimeout != 0 {
		return false
	}
	return true
}

// FormatRows renders rows as a paper-style text table.
func FormatRows(w io.Writer, title string, rows []TableRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-5s %-38s %-15s %-24s %-10s %-12s %-12s %-8s %-7s\n",
		"Label", "Model", "Transport", "KeepAlive(period/pat/to)", "EventTO", "e-Delay", "c-Delay", "Verified", "Stealth")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(w, "%-5s %-38s ERROR: %v\n", r.Label, r.Model, r.Err)
			continue
		}
		ka := "-"
		if r.Measured.HasKeepAlive {
			ka = fmt.Sprintf("%v/%s/%v", r.Measured.KeepAlivePeriod, r.Measured.Pattern, r.Measured.KeepAliveTimeout)
		}
		evTO := "∞"
		if r.Measured.EventTimeout > 0 {
			evTO = r.Measured.EventTimeout.String()
		}
		eDelay := r.EventDelayAchieved.String()
		if r.EventDelayUnbounded {
			eDelay = "∞ (" + r.EventDelayAchieved.String() + "+)"
		}
		cDelay := "-"
		if r.HasCommands {
			cDelay = r.CommandDelayAchieved.String()
			if r.CommandDelayUnbounded {
				cDelay = "∞ (" + r.CommandDelayAchieved.String() + "+)"
			}
		}
		fmt.Fprintf(w, "%-5s %-38s %-15s %-24s %-10s %-12s %-12s %-8v %-7v\n",
			r.Label, r.Model, r.Transport, ka, evTO, eDelay, cDelay, r.ParametersVerified, r.StealthOK)
	}
}
