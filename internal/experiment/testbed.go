// Package experiment builds complete simulated smart homes (Figure 1's two
// deployments) and runs the paper's evaluation: the Table I/II timeout
// measurements, the Table III proof-of-concept attacks, the verification
// test, the three findings, and the countermeasure studies.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/device"
	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
)

// TestbedConfig selects what to build.
type TestbedConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Devices lists catalog labels to deploy. Hubs referenced by via-hub
	// devices are added automatically.
	Devices []string
	// Integration configures the automation server.
	Integration cloud.IntegrationConfig
	// Overrides replaces catalog profiles by label before the home is
	// built — how the defense experiments deploy hardened device variants.
	Overrides []device.Profile
	// LANLatency is the WiFi one-way latency. Default 2ms.
	LANLatency time.Duration
	// WANLatency is the uplink one-way latency. Default 10ms.
	WANLatency time.Duration
	// Jitter perturbs latencies by the given factor.
	Jitter float64
	// TraceCap sizes the registry's flight-recorder ring: > 0 sets an
	// explicit capacity, 0 keeps the default, < 0 disables tracing so the
	// instrumented layers skip event emission entirely.
	TraceCap int
}

// Testbed is a running simulated smart home.
type Testbed struct {
	Clock       *simtime.Clock
	Net         *netsim.Network
	LAN         *netsim.Segment
	WAN         *netsim.Segment
	Router      *ipnet.Stack
	Integration *cloud.IntegrationServer
	LocalHub    *cloud.LocalHub
	Endpoints   map[string]*cloud.EndpointServer
	Devices     map[string]*device.Device

	// Metrics is the testbed's observability registry. Every testbed owns
	// exactly one (the simulation is single-threaded); the clock, the
	// network, device TCP stacks and any attacker report into it. Take a
	// Snapshot after a run; snapshots from independent testbeds merge with
	// obs.Merge.
	Metrics *obs.Registry

	// DeviceAddrs maps session-owning device labels to their LAN address.
	DeviceAddrs map[string]ipaddr.Addr
	// ServerAddrs maps vendor domains to their WAN address ("local" maps
	// to the hub's LAN address).
	ServerAddrs map[string]ipaddr.Addr

	cfg      TestbedConfig
	byLabel  map[string]device.Profile
	rng      *simtime.Rand
	nextHost int
	nextWAN  int
	// ordered lists every deployed label (hubs before their children) in
	// deployment order — the fixed iteration order that keeps construction
	// and startup deterministic.
	ordered []string

	// Arena pools. Reset parks the previous home's heavyweight components
	// here; build revives them instead of allocating. Every revival goes
	// through the component's Reset, which reinitialises it byte-identically
	// to fresh construction, so reclaim order never shows in outputs — only
	// retained backing-array capacities differ.
	ipUsed  []*ipnet.Stack
	ipFree  []*ipnet.Stack
	tcpUsed []*tcpsim.Stack
	tcpFree []*tcpsim.Stack
	rndUsed []*simtime.Rand
	rndFree []*simtime.Rand
	capUsed []*sniff.Capture
	capFree []*sniff.Capture
	epPool  map[string]*cloud.EndpointServer
	hubPool *cloud.LocalHub
}

// GatewayAddr is the home router's LAN address.
var GatewayAddr = ipaddr.MustParse("192.168.1.1")

// LocalHubAddr is the local hub's LAN address.
var LocalHubAddr = ipaddr.MustParse("192.168.1.2")

// AttackerAddr is where NewAttacker places its host.
var AttackerAddr = ipaddr.MustParse("192.168.1.66")

var routerWANAddr = ipaddr.MustParse("100.64.0.1")

// NewTestbed builds the home: LAN + router + WAN, one endpoint server per
// vendor domain, the integration server, a local hub if any HAP device is
// selected, and all requested devices (started and connected).
//
// Construction allocates the arena (clock, registry, network, integration
// server, pools) bare and then runs the same build path Reset runs, so a
// fresh and a recycled testbed are the same code path end to end — the
// foundation of the byte-identity contract.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	clk := simtime.NewClock()
	tb := &Testbed{
		Clock:       clk,
		Net:         netsim.NewNetwork(clk, 0),
		Metrics:     obs.NewRegistry(),
		Endpoints:   make(map[string]*cloud.EndpointServer),
		Devices:     make(map[string]*device.Device),
		DeviceAddrs: make(map[string]ipaddr.Addr),
		ServerAddrs: make(map[string]ipaddr.Addr),
		byLabel:     make(map[string]device.Profile, len(device.Index())),
		rng:         simtime.NewRand(0),
		epPool:      make(map[string]*cloud.EndpointServer),
	}
	tb.Integration = cloud.NewIntegrationServer(clk, cloud.IntegrationConfig{})
	if err := tb.build(cfg); err != nil {
		return nil, err
	}
	return tb, nil
}

// Reset reparameterises the testbed in place for a new configuration,
// recycling the previous home's clock, registry, network topology, protocol
// stacks and servers instead of allocating fresh ones. The recycled home is
// byte-identical to NewTestbed(cfg): same addresses, same seeds, same
// metric and trace output. On error the testbed is unusable and must be
// discarded (the caller falls back to NewTestbed).
func (tb *Testbed) Reset(cfg TestbedConfig) error {
	tb.teardown()
	return tb.build(cfg)
}

// teardown parks the previous home's components in the arena pools and
// clears every per-home index. Component state is NOT scrubbed here — each
// pool's revival path runs the component's own Reset, so parking stays
// O(components) cheap.
func (tb *Testbed) teardown() {
	// Clock first: invalidating every pending timer makes the component
	// Resets' defensive Timer.Stop calls no-ops instead of heap operations.
	tb.Clock.Reset()
	tb.Metrics.Reset()
	tb.ipFree = append(tb.ipFree, tb.ipUsed...)
	clear(tb.ipUsed)
	tb.ipUsed = tb.ipUsed[:0]
	tb.tcpFree = append(tb.tcpFree, tb.tcpUsed...)
	clear(tb.tcpUsed)
	tb.tcpUsed = tb.tcpUsed[:0]
	tb.rndFree = append(tb.rndFree, tb.rndUsed...)
	clear(tb.rndUsed)
	tb.rndUsed = tb.rndUsed[:0]
	tb.capFree = append(tb.capFree, tb.capUsed...)
	clear(tb.capUsed)
	tb.capUsed = tb.capUsed[:0]
	for domain, ep := range tb.Endpoints {
		tb.epPool[domain] = ep
	}
	clear(tb.Endpoints)
	if tb.LocalHub != nil {
		tb.hubPool = tb.LocalHub
		tb.LocalHub = nil
	}
	clear(tb.Devices)
	clear(tb.DeviceAddrs)
	clear(tb.ServerAddrs)
	clear(tb.byLabel)
	clear(tb.ordered)
	tb.ordered = tb.ordered[:0]
	tb.Router, tb.LAN, tb.WAN = nil, nil, nil
}

// build constructs a home into the (bare or torn-down) arena. It is the
// single construction path shared by NewTestbed and Reset.
func (tb *Testbed) build(cfg TestbedConfig) error {
	if cfg.LANLatency <= 0 {
		cfg.LANLatency = 2 * time.Millisecond
	}
	if cfg.WANLatency <= 0 {
		cfg.WANLatency = 10 * time.Millisecond
	}
	tb.cfg = cfg
	reg := tb.Metrics
	// The trace capacity must be set before anything captures the ring:
	// SetTraceCapacity replaces the Trace object (in place when the capacity
	// is unchanged), so later Instrument calls would otherwise hold the
	// discarded one.
	switch {
	case cfg.TraceCap > 0:
		reg.SetTraceCapacity(cfg.TraceCap)
	case cfg.TraceCap < 0:
		reg.SetTraceCapacity(0)
	default:
		reg.SetTraceCapacity(obs.DefaultTraceCap)
	}
	tb.Clock.Instrument(reg)
	tb.Net.Reset(cfg.Seed)
	tb.Net.Instrument(reg) // before segments so they get per-segment counters
	tb.LAN = tb.Net.NewSegment("lan", cfg.LANLatency, cfg.Jitter)
	tb.WAN = tb.Net.NewSegment("wan", cfg.WANLatency, cfg.Jitter)
	tb.rng.Reseed(cfg.Seed + 1)
	tb.nextHost, tb.nextWAN = 10, 10
	for l, p := range device.Index() {
		tb.byLabel[l] = p
	}
	for _, p := range cfg.Overrides {
		tb.byLabel[p.Label] = p
	}

	tb.Router = tb.newIPStack("router")
	tb.Router.MustAddIface(tb.LAN, "192.168.1.1/24")
	tb.Router.MustAddIface(tb.WAN, "100.64.0.1/16")
	tb.Router.Forwarding = true

	tb.Integration.Reset(cfg.Integration)
	tb.Integration.Instrument(reg)

	// Resolve the full device set (pull in hubs for via-hub devices) in
	// deployment order. The order is part of the simulation's determinism
	// contract: it fixes address and seed assignment and session start
	// order, so identical configs replay identically.
	seen := map[string]bool{}
	var labels []string
	add := func(l string) {
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}
	for _, l := range cfg.Devices {
		p, ok := tb.byLabel[l]
		if !ok {
			return fmt.Errorf("experiment: unknown device label %q", l)
		}
		if p.Transport == device.TransportViaHub {
			add(p.ViaHub)
		}
		add(l)
	}
	tb.ordered = append(tb.ordered, labels...)

	// Create endpoint servers and the local hub as needed.
	for _, l := range labels {
		p := tb.byLabel[l]
		if p.Transport == device.TransportViaHub {
			continue
		}
		if p.Transport == device.TransportHAP {
			if err := tb.ensureLocalHub(); err != nil {
				return err
			}
			continue
		}
		if _, ok := tb.Endpoints[p.ServerDomain]; !ok {
			if err := tb.addEndpoint(p.ServerDomain); err != nil {
				return err
			}
		}
	}

	// Create session-owning devices first, then children.
	for _, l := range labels {
		p := tb.byLabel[l]
		if p.Transport == device.TransportViaHub {
			continue
		}
		if err := tb.addDevice(p); err != nil {
			return err
		}
	}
	for _, l := range labels {
		p := tb.byLabel[l]
		if p.Transport != device.TransportViaHub {
			continue
		}
		hub, ok := tb.Devices[p.ViaHub]
		if !ok {
			return fmt.Errorf("experiment: hub %q for %q missing", p.ViaHub, p.Label)
		}
		child := device.NewChild(hub, p)
		tb.Devices[p.Label] = child
		tb.registerAtServer(p, p.ViaHub)
	}
	return nil
}

// newIPStack revives a pooled IP stack (or allocates one) on a new host.
func (tb *Testbed) newIPStack(hostname string) *ipnet.Stack {
	var ip *ipnet.Stack
	if k := len(tb.ipFree); k > 0 {
		ip, tb.ipFree[k-1] = tb.ipFree[k-1], nil
		tb.ipFree = tb.ipFree[:k-1]
		ip.Reset(tb.Net.NewHost(hostname))
	} else {
		ip = ipnet.NewStack(tb.Clock, tb.Net.NewHost(hostname))
	}
	tb.ipUsed = append(tb.ipUsed, ip)
	return ip
}

// newTCPStack revives a pooled TCP stack (or allocates one) on an IP stack.
func (tb *Testbed) newTCPStack(ip *ipnet.Stack, seed int64) *tcpsim.Stack {
	var st *tcpsim.Stack
	if k := len(tb.tcpFree); k > 0 {
		st, tb.tcpFree[k-1] = tb.tcpFree[k-1], nil
		tb.tcpFree = tb.tcpFree[:k-1]
		st.Reset(ip, tcpsim.Config{}, seed)
	} else {
		st = tcpsim.NewStack(tb.Clock, ip, tcpsim.Config{}, seed)
	}
	tb.tcpUsed = append(tb.tcpUsed, st)
	return st
}

// newRand revives a pooled randomness source (or allocates one). Reseed
// yields exactly NewRand's sequence, so revival is unobservable.
func (tb *Testbed) newRand(seed int64) *simtime.Rand {
	var r *simtime.Rand
	if k := len(tb.rndFree); k > 0 {
		r, tb.rndFree[k-1] = tb.rndFree[k-1], nil
		tb.rndFree = tb.rndFree[:k-1]
		r.Reseed(seed)
	} else {
		r = simtime.NewRand(seed)
	}
	tb.rndUsed = append(tb.rndUsed, r)
	return r
}

// newCapture revives a pooled sniff capture (or allocates one). Reset
// returns it to NewCapture's state, so revival is unobservable.
func (tb *Testbed) newCapture() *sniff.Capture {
	var c *sniff.Capture
	if k := len(tb.capFree); k > 0 {
		c, tb.capFree[k-1] = tb.capFree[k-1], nil
		tb.capFree = tb.capFree[:k-1]
		c.Reset()
	} else {
		c = sniff.NewCapture(tb.Clock)
	}
	tb.capUsed = append(tb.capUsed, c)
	return c
}

func (tb *Testbed) ensureLocalHub() error {
	if tb.LocalHub != nil {
		return nil
	}
	ip := tb.newIPStack("homepod")
	ip.MustAddIface(tb.LAN, "192.168.1.2/24")
	if err := ip.SetDefaultGateway(GatewayAddr); err != nil {
		return err
	}
	hub := tb.hubPool
	if hub != nil {
		tb.hubPool = nil
		if err := hub.Reset(ip, tb.rng); err != nil {
			return err
		}
	} else {
		var err error
		if hub, err = cloud.NewLocalHub(tb.Clock, ip, tb.rng); err != nil {
			return err
		}
	}
	hub.Instrument(tb.Metrics)
	tb.LocalHub = hub
	tb.ServerAddrs["local"] = LocalHubAddr
	return nil
}

func (tb *Testbed) addEndpoint(domain string) error {
	addr := fmt.Sprintf("100.64.%d.10/16", tb.nextWAN)
	tb.nextWAN++
	ip := tb.newIPStack(domain)
	ip.MustAddIface(tb.WAN, addr)
	// Return path to the LAN runs through the router's WAN side.
	tb.addLANRoute(ip)
	epCfg := cloud.EndpointConfig{Domain: domain}
	// On-demand vendors reap idle sessions after their profile-specified
	// server-side timeout (Finding 1's bound).
	for _, p := range tb.byLabel {
		if p.ServerDomain == domain && p.ServerIdleTimeout > epCfg.HTTP.SessionIdleTimeout {
			epCfg.HTTP.SessionIdleTimeout = p.ServerIdleTimeout
		}
	}
	// Pooled endpoints are keyed by domain so a recycled home with the same
	// vendor mix reuses its session maps at their settled sizes.
	ep, pooled := tb.epPool[domain]
	if pooled {
		delete(tb.epPool, domain)
		if err := ep.Reset(ip, tb.rng, epCfg); err != nil {
			return err
		}
	} else {
		var err error
		if ep, err = cloud.NewEndpointServer(tb.Clock, ip, tb.rng, epCfg); err != nil {
			return err
		}
	}
	ep.Instrument(tb.Metrics)
	tb.Endpoints[domain] = ep
	tb.ServerAddrs[domain] = ip.Addr()
	tb.Integration.AttachEndpoint(ep)
	return nil
}

func (tb *Testbed) addLANRoute(ip *ipnet.Stack) {
	ip.AddRoute(ipaddr.MustParsePrefix("192.168.1.0/24"), routerWANAddr, ip.Ifaces()[0])
}

func (tb *Testbed) addDevice(p device.Profile) error {
	hostAddr := fmt.Sprintf("192.168.1.%d/24", tb.nextHost)
	tb.nextHost++
	ip := tb.newIPStack(p.Label)
	ip.MustAddIface(tb.LAN, hostAddr)
	if err := ip.SetDefaultGateway(GatewayAddr); err != nil {
		return err
	}
	env := device.Env{
		Clock: tb.Clock,
		IP:    ip,
		TCP:   tb.newTCPStack(ip, tb.cfg.Seed+int64(tb.nextHost)),
		RNG:   tb.rng,
	}
	if tr := tb.Metrics.Trace(); tr.Enabled() {
		env.Trace = tr
	}
	env.TCP.Instrument(tb.Metrics, p.Label)
	switch p.Transport {
	case device.TransportHAP:
		env.Server = tb.LocalHub.Addr()
	default:
		ep, ok := tb.Endpoints[p.ServerDomain]
		if !ok {
			return fmt.Errorf("experiment: no endpoint for domain %q", p.ServerDomain)
		}
		env.Server = ep.AddrFor(p.Transport)
	}
	d := device.New(env, p)
	tb.Devices[p.Label] = d
	tb.DeviceAddrs[p.Label] = ip.Addr()
	tb.registerAtServer(p, p.Label)
	return nil
}

func (tb *Testbed) registerAtServer(p device.Profile, owner string) {
	ownerProfile := tb.byLabel[owner]
	if ownerProfile.Transport == device.TransportHAP {
		tb.LocalHub.RegisterDevice(p)
		return
	}
	if ep, ok := tb.Endpoints[ownerProfile.ServerDomain]; ok {
		ep.RegisterDevice(p, owner)
		tb.Integration.RouteDevice(p.Label, ownerProfile.ServerDomain)
	}
}

// Start connects every device and runs the clock until sessions settle.
// Devices start in deployment order so session establishment replays
// identically across runs.
func (tb *Testbed) Start() {
	for _, l := range tb.ordered {
		tb.Devices[l].Start()
	}
	tb.Clock.RunFor(2 * time.Second)
}

// Device returns a deployed device by label.
func (tb *Testbed) Device(label string) *device.Device { return tb.Devices[label] }

// Profile returns the catalog profile for a label.
func (tb *Testbed) Profile(label string) device.Profile { return tb.byLabel[label] }

// SessionOwner resolves the session-owning device for a label.
func (tb *Testbed) SessionOwner(label string) *device.Device {
	p := tb.byLabel[label]
	if p.Transport == device.TransportViaHub {
		return tb.Devices[p.ViaHub]
	}
	return tb.Devices[label]
}

// ServerAddrOf returns the address of the server a device talks to.
func (tb *Testbed) ServerAddrOf(label string) ipaddr.Addr {
	owner := tb.SessionOwner(label)
	p := owner.Profile()
	if p.Transport == device.TransportHAP {
		return tb.ServerAddrs["local"]
	}
	return tb.ServerAddrs[p.ServerDomain]
}

// TotalAlarmCount sums every server-side alarm in the home.
func (tb *Testbed) TotalAlarmCount() int {
	n := tb.Integration.TotalAlarmCount()
	if tb.LocalHub != nil {
		n += len(tb.LocalHub.Alarms())
	}
	return n
}
