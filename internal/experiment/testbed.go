// Package experiment builds complete simulated smart homes (Figure 1's two
// deployments) and runs the paper's evaluation: the Table I/II timeout
// measurements, the Table III proof-of-concept attacks, the verification
// test, the three findings, and the countermeasure studies.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/device"
	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// TestbedConfig selects what to build.
type TestbedConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Devices lists catalog labels to deploy. Hubs referenced by via-hub
	// devices are added automatically.
	Devices []string
	// Integration configures the automation server.
	Integration cloud.IntegrationConfig
	// Overrides replaces catalog profiles by label before the home is
	// built — how the defense experiments deploy hardened device variants.
	Overrides []device.Profile
	// LANLatency is the WiFi one-way latency. Default 2ms.
	LANLatency time.Duration
	// WANLatency is the uplink one-way latency. Default 10ms.
	WANLatency time.Duration
	// Jitter perturbs latencies by the given factor.
	Jitter float64
	// TraceCap sizes the registry's flight-recorder ring: > 0 sets an
	// explicit capacity, 0 keeps the default, < 0 disables tracing so the
	// instrumented layers skip event emission entirely.
	TraceCap int
}

// Testbed is a running simulated smart home.
type Testbed struct {
	Clock       *simtime.Clock
	Net         *netsim.Network
	LAN         *netsim.Segment
	WAN         *netsim.Segment
	Router      *ipnet.Stack
	Integration *cloud.IntegrationServer
	LocalHub    *cloud.LocalHub
	Endpoints   map[string]*cloud.EndpointServer
	Devices     map[string]*device.Device

	// Metrics is the testbed's observability registry. Every testbed owns
	// exactly one (the simulation is single-threaded); the clock, the
	// network, device TCP stacks and any attacker report into it. Take a
	// Snapshot after a run; snapshots from independent testbeds merge with
	// obs.Merge.
	Metrics *obs.Registry

	// DeviceAddrs maps session-owning device labels to their LAN address.
	DeviceAddrs map[string]ipaddr.Addr
	// ServerAddrs maps vendor domains to their WAN address ("local" maps
	// to the hub's LAN address).
	ServerAddrs map[string]ipaddr.Addr

	cfg      TestbedConfig
	byLabel  map[string]device.Profile
	rng      *simtime.Rand
	nextHost int
	nextWAN  int
	// ordered lists every deployed label (hubs before their children) in
	// deployment order — the fixed iteration order that keeps construction
	// and startup deterministic.
	ordered []string
}

// GatewayAddr is the home router's LAN address.
var GatewayAddr = ipaddr.MustParse("192.168.1.1")

// LocalHubAddr is the local hub's LAN address.
var LocalHubAddr = ipaddr.MustParse("192.168.1.2")

// AttackerAddr is where NewAttacker places its host.
var AttackerAddr = ipaddr.MustParse("192.168.1.66")

var routerWANAddr = ipaddr.MustParse("100.64.0.1")

// NewTestbed builds the home: LAN + router + WAN, one endpoint server per
// vendor domain, the integration server, a local hub if any HAP device is
// selected, and all requested devices (started and connected).
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.LANLatency <= 0 {
		cfg.LANLatency = 2 * time.Millisecond
	}
	if cfg.WANLatency <= 0 {
		cfg.WANLatency = 10 * time.Millisecond
	}
	clk := simtime.NewClock()
	reg := obs.NewRegistry()
	// The trace capacity must be set before anything captures the ring:
	// SetTraceCapacity replaces the Trace object, so later Instrument calls
	// would otherwise hold the discarded one.
	if cfg.TraceCap > 0 {
		reg.SetTraceCapacity(cfg.TraceCap)
	} else if cfg.TraceCap < 0 {
		reg.SetTraceCapacity(0)
	}
	clk.Instrument(reg)
	nw := netsim.NewNetwork(clk, cfg.Seed)
	nw.Instrument(reg) // before segments so they get per-segment counters
	tb := &Testbed{
		Clock:       clk,
		Net:         nw,
		LAN:         nw.NewSegment("lan", cfg.LANLatency, cfg.Jitter),
		WAN:         nw.NewSegment("wan", cfg.WANLatency, cfg.Jitter),
		Metrics:     reg,
		Endpoints:   make(map[string]*cloud.EndpointServer),
		Devices:     make(map[string]*device.Device),
		DeviceAddrs: make(map[string]ipaddr.Addr),
		ServerAddrs: make(map[string]ipaddr.Addr),
		cfg:         cfg,
		byLabel:     device.ByLabel(),
		rng:         simtime.NewRand(cfg.Seed + 1),
		nextHost:    10,
		nextWAN:     10,
	}
	for _, p := range cfg.Overrides {
		tb.byLabel[p.Label] = p
	}

	tb.Router = ipnet.NewStack(clk, nw.NewHost("router"))
	tb.Router.MustAddIface(tb.LAN, "192.168.1.1/24")
	tb.Router.MustAddIface(tb.WAN, "100.64.0.1/16")
	tb.Router.Forwarding = true

	tb.Integration = cloud.NewIntegrationServer(clk, cfg.Integration)
	tb.Integration.Instrument(reg)

	// Resolve the full device set (pull in hubs for via-hub devices) in
	// deployment order. The order is part of the simulation's determinism
	// contract: it fixes address and seed assignment and session start
	// order, so identical configs replay identically.
	seen := map[string]bool{}
	var labels []string
	add := func(l string) {
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}
	for _, l := range cfg.Devices {
		p, ok := tb.byLabel[l]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown device label %q", l)
		}
		if p.Transport == device.TransportViaHub {
			add(p.ViaHub)
		}
		add(l)
	}
	tb.ordered = labels

	// Create endpoint servers and the local hub as needed.
	for _, l := range labels {
		p := tb.byLabel[l]
		if p.Transport == device.TransportViaHub {
			continue
		}
		if p.Transport == device.TransportHAP {
			if err := tb.ensureLocalHub(); err != nil {
				return nil, err
			}
			continue
		}
		if _, ok := tb.Endpoints[p.ServerDomain]; !ok {
			if err := tb.addEndpoint(p.ServerDomain); err != nil {
				return nil, err
			}
		}
	}

	// Create session-owning devices first, then children.
	for _, l := range labels {
		p := tb.byLabel[l]
		if p.Transport == device.TransportViaHub {
			continue
		}
		if err := tb.addDevice(p); err != nil {
			return nil, err
		}
	}
	for _, l := range labels {
		p := tb.byLabel[l]
		if p.Transport != device.TransportViaHub {
			continue
		}
		hub, ok := tb.Devices[p.ViaHub]
		if !ok {
			return nil, fmt.Errorf("experiment: hub %q for %q missing", p.ViaHub, p.Label)
		}
		child := device.NewChild(hub, p)
		tb.Devices[p.Label] = child
		tb.registerAtServer(p, p.ViaHub)
	}
	return tb, nil
}

func (tb *Testbed) ensureLocalHub() error {
	if tb.LocalHub != nil {
		return nil
	}
	ip := ipnet.NewStack(tb.Clock, tb.Net.NewHost("homepod"))
	ip.MustAddIface(tb.LAN, "192.168.1.2/24")
	if err := ip.SetDefaultGateway(GatewayAddr); err != nil {
		return err
	}
	hub, err := cloud.NewLocalHub(tb.Clock, ip, tb.rng)
	if err != nil {
		return err
	}
	hub.Instrument(tb.Metrics)
	tb.LocalHub = hub
	tb.ServerAddrs["local"] = LocalHubAddr
	return nil
}

func (tb *Testbed) addEndpoint(domain string) error {
	addr := fmt.Sprintf("100.64.%d.10/16", tb.nextWAN)
	tb.nextWAN++
	ip := ipnet.NewStack(tb.Clock, tb.Net.NewHost(domain))
	ip.MustAddIface(tb.WAN, addr)
	// Return path to the LAN runs through the router's WAN side.
	tb.addLANRoute(ip)
	epCfg := cloud.EndpointConfig{Domain: domain}
	// On-demand vendors reap idle sessions after their profile-specified
	// server-side timeout (Finding 1's bound).
	for _, p := range tb.byLabel {
		if p.ServerDomain == domain && p.ServerIdleTimeout > epCfg.HTTP.SessionIdleTimeout {
			epCfg.HTTP.SessionIdleTimeout = p.ServerIdleTimeout
		}
	}
	ep, err := cloud.NewEndpointServer(tb.Clock, ip, tb.rng, epCfg)
	if err != nil {
		return err
	}
	ep.Instrument(tb.Metrics)
	tb.Endpoints[domain] = ep
	tb.ServerAddrs[domain] = ip.Addr()
	tb.Integration.AttachEndpoint(ep)
	return nil
}

func (tb *Testbed) addLANRoute(ip *ipnet.Stack) {
	ip.AddRoute(ipaddr.MustParsePrefix("192.168.1.0/24"), routerWANAddr, ip.Ifaces()[0])
}

func (tb *Testbed) addDevice(p device.Profile) error {
	hostAddr := fmt.Sprintf("192.168.1.%d/24", tb.nextHost)
	tb.nextHost++
	ip := ipnet.NewStack(tb.Clock, tb.Net.NewHost(p.Label))
	ip.MustAddIface(tb.LAN, hostAddr)
	if err := ip.SetDefaultGateway(GatewayAddr); err != nil {
		return err
	}
	env := device.Env{
		Clock: tb.Clock,
		IP:    ip,
		TCP:   tcpsim.NewStack(tb.Clock, ip, tcpsim.Config{}, tb.cfg.Seed+int64(tb.nextHost)),
		RNG:   tb.rng,
	}
	if tr := tb.Metrics.Trace(); tr.Enabled() {
		env.Trace = tr
	}
	env.TCP.Instrument(tb.Metrics, p.Label)
	switch p.Transport {
	case device.TransportHAP:
		env.Server = tb.LocalHub.Addr()
	default:
		ep, ok := tb.Endpoints[p.ServerDomain]
		if !ok {
			return fmt.Errorf("experiment: no endpoint for domain %q", p.ServerDomain)
		}
		env.Server = ep.AddrFor(p.Transport)
	}
	d := device.New(env, p)
	tb.Devices[p.Label] = d
	tb.DeviceAddrs[p.Label] = ip.Addr()
	tb.registerAtServer(p, p.Label)
	return nil
}

func (tb *Testbed) registerAtServer(p device.Profile, owner string) {
	ownerProfile := tb.byLabel[owner]
	if ownerProfile.Transport == device.TransportHAP {
		tb.LocalHub.RegisterDevice(p)
		return
	}
	if ep, ok := tb.Endpoints[ownerProfile.ServerDomain]; ok {
		ep.RegisterDevice(p, owner)
		tb.Integration.RouteDevice(p.Label, ownerProfile.ServerDomain)
	}
}

// Start connects every device and runs the clock until sessions settle.
// Devices start in deployment order so session establishment replays
// identically across runs.
func (tb *Testbed) Start() {
	for _, l := range tb.ordered {
		tb.Devices[l].Start()
	}
	tb.Clock.RunFor(2 * time.Second)
}

// Device returns a deployed device by label.
func (tb *Testbed) Device(label string) *device.Device { return tb.Devices[label] }

// Profile returns the catalog profile for a label.
func (tb *Testbed) Profile(label string) device.Profile { return tb.byLabel[label] }

// SessionOwner resolves the session-owning device for a label.
func (tb *Testbed) SessionOwner(label string) *device.Device {
	p := tb.byLabel[label]
	if p.Transport == device.TransportViaHub {
		return tb.Devices[p.ViaHub]
	}
	return tb.Devices[label]
}

// ServerAddrOf returns the address of the server a device talks to.
func (tb *Testbed) ServerAddrOf(label string) ipaddr.Addr {
	owner := tb.SessionOwner(label)
	p := owner.Profile()
	if p.Transport == device.TransportHAP {
		return tb.ServerAddrs["local"]
	}
	return tb.ServerAddrs[p.ServerDomain]
}

// TotalAlarmCount sums every server-side alarm in the home.
func (tb *Testbed) TotalAlarmCount() int {
	n := tb.Integration.TotalAlarmCount()
	if tb.LocalHub != nil {
		n += len(tb.LocalHub.Alarms())
	}
	return n
}
