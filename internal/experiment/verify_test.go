package experiment

import "testing"

func TestVerificationHundredPercent(t *testing.T) {
	// One device per timeout-behaviour family.
	labels := []string{"C1", "L2", "CM1", "K2", "M7", "A1"}
	results := RunVerification(labels, VerifyOptions{Seed: 600, Trials: 3})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Label, r.Err)
			continue
		}
		if !r.Perfect() {
			t.Errorf("%s: avoided %d/%d, accepted %d/%d — paper reports 100%%",
				r.Label, r.TimeoutsAvoided, r.Trials, r.Accepted, r.Trials)
		}
	}
}
