package experiment

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sniff"
)

// NewAttacker joins an attacker host to the home WiFi at AttackerAddr —
// the paper's "one controlled WiFi device". The attacker reports into the
// testbed's metrics registry. Its IP/TCP stacks and randomness come from
// the testbed arena, seeded exactly as core.NewAttacker would seed them, so
// pooled and fresh attackers behave byte-identically.
func (tb *Testbed) NewAttacker() (*core.Attacker, error) {
	ip := tb.newIPStack("attacker")
	if _, err := ip.AddIface(tb.LAN, AttackerAddr.String()+"/24"); err != nil {
		return nil, err
	}
	if err := ip.SetDefaultGateway(GatewayAddr); err != nil {
		return nil, err
	}
	tcp := tb.newTCPStack(ip, tb.cfg.Seed+900)
	rng := tb.newRand(tb.cfg.Seed + 901)
	atk, err := core.NewAttackerWith(tb.Clock, tb.LAN, ip, tcp, rng, tb.newCapture())
	if err != nil {
		return nil, err
	}
	atk.TCP.Instrument(tb.Metrics, "attacker")
	atk.Instrument(tb.Metrics)
	return atk, nil
}

// HijackTarget resolves the man-in-the-middle coordinates for a device:
// the session owner's LAN address, its server's address and port, and the
// fingerprint model. Works for cloud and local deployments alike.
func (tb *Testbed) HijackTarget(label string) (core.Target, error) {
	p, ok := tb.byLabel[label]
	if !ok {
		return core.Target{}, fmt.Errorf("experiment: unknown device %q", label)
	}
	owner, err := device.SessionProfile(p, tb.byLabel)
	if err != nil {
		return core.Target{}, err
	}
	devAddr, ok := tb.DeviceAddrs[owner.Label]
	if !ok {
		return core.Target{}, fmt.Errorf("experiment: %s not deployed", owner.Label)
	}
	var port uint16
	var serverKey string
	switch owner.Transport {
	case device.TransportMQTT:
		port, serverKey = cloud.MQTTPort, owner.ServerDomain
	case device.TransportHTTPLong, device.TransportHTTPOnDemand:
		port, serverKey = cloud.HTTPSPort, owner.ServerDomain
	case device.TransportHAP:
		port, serverKey = cloud.HAPPort, "local"
	default:
		return core.Target{}, fmt.Errorf("experiment: %s has no hijackable session", label)
	}
	srvAddr, ok := tb.ServerAddrs[serverKey]
	if !ok {
		return core.Target{}, fmt.Errorf("experiment: no server address for %q", serverKey)
	}
	return core.Target{
		DeviceAddr:  devAddr,
		ServerAddr:  srvAddr,
		ServerPort:  port,
		GatewayAddr: GatewayAddr,
		Model:       owner.Label,
	}, nil
}

// Hijack is the one-call setup used throughout the experiments: create an
// attacker (or reuse the given one), resolve the target for the device and
// install the man in the middle. It must run before the device connects
// for a silent takeover; see core.Hijacker for mid-session options.
func (tb *Testbed) Hijack(atk *core.Attacker, label string) (*core.Hijacker, error) {
	target, err := tb.HijackTarget(label)
	if err != nil {
		return nil, err
	}
	cl := sniff.CatalogClassifier()
	h := core.NewHijacker(atk, target, cl)
	if err := h.Install(nil); err != nil {
		return nil, err
	}
	// Let the poisoning exchanges settle.
	tb.Clock.RunFor(500 * time.Millisecond)
	return h, nil
}
