package experiment

import (
	"testing"
	"time"
)

func TestTable1AllCloudDevices(t *testing.T) {
	rows := RunTable1(TableOptions{Seed: 41, Trials: 2})
	if len(rows) != 33 {
		t.Fatalf("rows = %d, want 33", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s (%s): %v", r.Label, r.Model, r.Err)
			continue
		}
		if !r.ParametersVerified {
			t.Errorf("%s: profiler output does not match ground truth: %+v", r.Label, r.Measured)
		}
		if !r.StealthOK {
			t.Errorf("%s: demonstration attack raised alarms", r.Label)
		}
		// The paper's headline: all devices allow >30s event delays except
		// the SimpliSafe keypad; every c-Delay allows multiple seconds.
		if r.Label == "K2" {
			if r.EventDelayAchieved >= 30*time.Second {
				t.Errorf("K2 achieved %v, should be the sub-30s outlier", r.EventDelayAchieved)
			}
		} else if !r.EventDelayUnbounded && r.EventDelayAchieved < 28*time.Second {
			t.Errorf("%s: event delay %v, want >= ~30s", r.Label, r.EventDelayAchieved)
		}
		if r.HasCommands && r.CommandDelayAchieved < 5*time.Second {
			t.Errorf("%s: command delay %v, want multiple seconds", r.Label, r.CommandDelayAchieved)
		}
	}
}

func TestTable2AllLocalDevices(t *testing.T) {
	rows := RunTable2(TableOptions{Seed: 42, Trials: 1, UnboundedDemo: 2 * time.Hour})
	if len(rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s (%s): %v", r.Label, r.Model, r.Err)
			continue
		}
		if !r.EventDelayUnbounded {
			t.Errorf("%s: HomeKit event delay should be unbounded", r.Label)
		}
		if r.EventDelayAchieved < 2*time.Hour {
			t.Errorf("%s: demonstrated only %v of an unbounded hold", r.Label, r.EventDelayAchieved)
		}
		if !r.ParametersVerified {
			t.Errorf("%s: parameters not verified: %+v", r.Label, r.Measured)
		}
		if !r.StealthOK {
			t.Errorf("%s: alarms raised during demonstration", r.Label)
		}
	}
}
