package experiment

import "testing"

func TestTable3AllCases(t *testing.T) {
	results := RunCases(Table3Cases(), 500)
	if len(results) != 11 {
		t.Fatalf("results = %d, want 11", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("case %d: %v", r.Case.ID, r.Err)
			continue
		}
		if r.BaselineConsequence {
			t.Errorf("case %d: consequence %q appeared WITHOUT attack (%s)",
				r.Case.ID, r.Case.Consequence, r.BaselineDetail)
		}
		if !r.AttackConsequence {
			t.Errorf("case %d: attack failed to produce %q (%s)",
				r.Case.ID, r.Case.Consequence, r.AttackDetail)
		}
		if r.AttackAlarms != 0 {
			t.Errorf("case %d: attack raised %d alarms", r.Case.ID, r.AttackAlarms)
		}
	}
}
