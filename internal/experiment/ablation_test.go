package experiment

import (
	"testing"
	"time"
)

func TestMarginAblationShape(t *testing.T) {
	// Larger margins give up delay; all sane margins stay stealthy in a
	// low-jitter home; the mean delay decreases monotonically with margin.
	margins := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}
	points := RunMarginAblation("C1", margins, 3, 900)
	for i, p := range points {
		if p.Err != nil {
			t.Fatalf("margin %v: %v", p.Margin, p.Err)
		}
		if p.Stealthy != p.Trials || p.Accepted != p.Trials {
			t.Errorf("margin %v: stealthy %d/%d accepted %d/%d",
				p.Margin, p.Stealthy, p.Trials, p.Accepted, p.Trials)
		}
		if i > 0 && p.MeanDelay >= points[i-1].MeanDelay {
			t.Errorf("mean delay did not shrink with margin: %v@%v then %v@%v",
				points[i-1].MeanDelay, points[i-1].Margin, p.MeanDelay, p.Margin)
		}
	}
	// The C1 (SmartThings) window is 47s; with a 2s margin we expect ~45s.
	if got := points[1].MeanDelay; got < 43*time.Second || got > 46*time.Second {
		t.Errorf("2s-margin mean delay = %v, want about 45s", got)
	}
}

func TestDetectionBoundaryCliff(t *testing.T) {
	// C1's window edge is 47s: holds below it stay clean, holds beyond it
	// kill the device's session (which recovers silently — the cliff is a
	// device-side timeout, not an alarm, per Findings 2/3).
	holds := []time.Duration{40 * time.Second, 45 * time.Second, 50 * time.Second, 60 * time.Second}
	points := RunDetectionBoundary("C1", holds, 910)
	for _, p := range points {
		if p.Err != nil {
			t.Fatalf("hold %v: %v", p.Hold, p.Err)
		}
	}
	if points[0].SessionDied || points[1].SessionDied {
		t.Errorf("holds inside the window killed the session: %+v %+v", points[0], points[1])
	}
	if !points[2].SessionDied || !points[3].SessionDied {
		t.Errorf("holds beyond the window should kill the session: %+v %+v", points[2], points[3])
	}
	// Events still accepted inside the window.
	if !points[0].EventAccepted || !points[1].EventAccepted {
		t.Error("in-window events must be accepted")
	}
	// Even past the cliff, the passive server raises no alarm (Finding 3):
	// the loss is the device's quiet reconnection.
	for _, p := range points {
		if p.Alarms != 0 {
			t.Errorf("hold %v raised %d alarms; the cliff should be silent server-side", p.Hold, p.Alarms)
		}
	}
}
