package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/rules"
)

// AckDefenseResult is one point of the VII-A evaluation: a hardened device
// attacked with the maximum stealthy delay.
type AckDefenseResult struct {
	Label           string
	AckTimeout      time.Duration
	AchievedDelay   time.Duration
	TrafficPerHour  int64 // measured on the WiFi segment during idle
	EstimatePerHour int64 // the analytical estimate for comparison
	Err             error

	// Metrics merges the snapshots of the clean (traffic-cost) and
	// attacked testbeds for this point.
	Metrics obs.Snapshot
}

// RunAckTimeoutDefense deploys hardened variants of a device and measures
// the residual attack window plus the idle-traffic cost at each setting.
// For hub-attached devices the countermeasure applies to the session
// owner: the hub's protocol is what carries (and must acknowledge) the
// messages.
func RunAckTimeoutDefense(label string, timeouts []time.Duration, seed int64) []AckDefenseResult {
	truth, err := device.Lookup(label)
	if err != nil {
		return []AckDefenseResult{{Label: label, Err: err}}
	}
	owner, err := device.SessionProfile(truth, device.Index())
	if err != nil {
		return []AckDefenseResult{{Label: label, Err: err}}
	}
	out := make([]AckDefenseResult, 0, len(timeouts)+1)
	// Baseline: the stock profile.
	out = append(out, ackPoint(label, owner, 0, seed))
	for i, to := range timeouts {
		hardened := defense.HardenProfile(owner, to)
		out = append(out, ackPoint(label, hardened, to, seed+int64(i+1)*131))
	}
	return out
}

func ackPoint(label string, profile device.Profile, ackTimeout time.Duration, seed int64) (res AckDefenseResult) {
	res = AckDefenseResult{Label: label, AckTimeout: ackTimeout}
	var snaps []obs.Snapshot
	defer func() { res.Metrics = obs.Merge(snaps...) }()

	// Traffic cost is a property of the defense itself: measure it in a
	// clean home without the attacker, whose relaying would double every
	// frame on the WiFi segment.
	clean, err := NewTestbed(TestbedConfig{
		Seed:      seed + 5000,
		Devices:   []string{label},
		Overrides: []device.Profile{profile},
	})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { snaps = append(snaps, clean.Metrics.Snapshot()) }()
	clean.Start()
	meter := defense.NewTrafficMeter(func() uint64 { return clean.LAN.Stats().BytesSent })
	clean.Clock.RunFor(time.Hour)
	res.TrafficPerHour = int64(meter.Bytes())
	res.EstimatePerHour = defense.KeepAliveTrafficPerHour(profile)

	tb, err := NewTestbed(TestbedConfig{
		Seed:      seed,
		Devices:   []string{label},
		Overrides: []device.Profile{profile},
	})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { snaps = append(snaps, tb.Metrics.Snapshot()) }()
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, label)
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()

	// Attack with ground-truth-equivalent knowledge (the attacker can
	// re-profile hardened devices just as easily).
	m := measuredFromProfile(profile)
	h.ArmPredictor(m)
	lab, err := tb.NewLab(h, label)
	if err != nil {
		res.Err = err
		return res
	}
	achieved, _, err := demonstrateEventDelay(tb, h, lab, TableOptions{Margin: 2 * time.Second, UnboundedDemo: time.Hour})
	if err != nil {
		res.Err = err
		return res
	}
	res.AchievedDelay = achieved
	return res
}

// measuredFromProfile converts ground truth into the attacker's measured
// form (used where re-running the profiler would only reproduce it).
func measuredFromProfile(p device.Profile) core.Measured {
	return core.Measured{
		Model:             p.Label,
		HasKeepAlive:      p.KeepAlivePeriod > 0,
		KeepAlivePeriod:   p.KeepAlivePeriod,
		Pattern:           p.KeepAlivePattern,
		KeepAliveTimeout:  p.KeepAliveTimeout,
		EventTimeout:      p.EventTimeout,
		CommandTimeout:    p.CommandTimeout,
		ServerIdleTimeout: p.ServerIdleTimeout,
		OnDemand:          p.Transport == device.TransportHTTPOnDemand,
	}
}

// TimestampDefenseResult reports the VII-B evaluation: what timestamp
// checking stops and what it cannot.
type TimestampDefenseResult struct {
	// TriggerDelayBlocked: a spurious execution built by delaying the
	// *trigger* event is stopped (the stale trigger is rejected).
	TriggerDelayBlocked bool
	TriggerDetail       string
	// ConditionDelayStillWorks: the Case-8-style attack that delays a
	// *condition* event still fires the action; the server only notices
	// after the fact.
	ConditionDelayStillWorks bool
	ConditionDetail          string
	// DetectedAfterTheFact: the held condition event raised a staleness
	// alarm on arrival — detection, but after the door was already open.
	DetectedAfterTheFact bool
	Err                  error

	// Metrics merges the snapshots of both evaluation arms' testbeds.
	Metrics obs.Snapshot
}

// RunTimestampDefense evaluates countermeasure VII-B.
func RunTimestampDefense(seed int64) (res TimestampDefenseResult) {
	var snaps []obs.Snapshot
	defer func() { res.Metrics = obs.Merge(snaps...) }()

	// Part 1: delayed-trigger spurious execution is blocked.
	blocked, detail, snap1, err := timestampTriggerArm(seed)
	snaps = append(snaps, snap1)
	if err != nil {
		res.Err = err
		return res
	}
	res.TriggerDelayBlocked = blocked
	res.TriggerDetail = detail

	// Part 2: the Case 8 condition-delay attack still succeeds.
	works, detected, detail2, snap2, err := timestampConditionArm(seed + 1)
	snaps = append(snaps, snap2)
	if err != nil {
		res.Err = err
		return res
	}
	res.ConditionDelayStillWorks = works
	res.DetectedAfterTheFact = detected
	res.ConditionDetail = detail2
	return res
}

var timestampPolicy = cloud.IntegrationConfig{
	Policy:      cloud.StaleRejectAlert,
	MaxEventAge: 10 * time.Second,
}

// timestampTriggerArm: rule "when door opens, notify". The attacker delays
// the trigger event 30s; with timestamp checking the stale trigger is
// rejected and the rule never fires on it.
func timestampTriggerArm(seed int64) (blocked bool, detail string, snap obs.Snapshot, err error) {
	tb, err := NewTestbed(TestbedConfig{
		Seed:        seed,
		Devices:     []string{"C2"},
		Integration: timestampPolicy,
	})
	if err != nil {
		return false, "", snap, err
	}
	defer func() { snap = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		return false, "", snap, err
	}
	h, err := tb.Hijack(atk, "C2")
	if err != nil {
		return false, "", snap, err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "alert-on-open",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "open"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "door opened"}},
	}); err != nil {
		return false, "", snap, err
	}
	tb.Start()
	h.EDelay("C2", 30*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		return false, "", snap, err
	}
	tb.Clock.RunFor(2 * time.Minute)

	fired := len(tb.Integration.Notifications()) > 0
	discarded := len(tb.Integration.Discarded()) > 0
	alarms := tb.Integration.Alarms()
	blocked = !fired && discarded && len(alarms) > 0
	return blocked, fmt.Sprintf("rule fired=%v, stale trigger rejected=%v, alarms=%d", fired, discarded, len(alarms)), snap, nil
}

// timestampConditionArm: the Case 8 shape under timestamp checking. The
// held presence event is stale when it finally lands (alarm), but the
// unlock already happened at trigger time with a perfectly fresh trigger.
func timestampConditionArm(seed int64) (worked, detected bool, detail string, snap obs.Snapshot, err error) {
	tb, err := NewTestbed(TestbedConfig{
		Seed:        seed,
		Devices:     []string{"C5", "P1", "LK1"},
		Integration: timestampPolicy,
	})
	if err != nil {
		return false, false, "", snap, err
	}
	defer func() { snap = tb.Metrics.Snapshot() }()
	atk, err := tb.NewAttacker()
	if err != nil {
		return false, false, "", snap, err
	}
	hPresence, err := tb.Hijack(atk, "P1")
	if err != nil {
		return false, false, "", snap, err
	}
	hStorm, err := tb.Hijack(atk, "C5")
	if err != nil {
		return false, false, "", snap, err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:      "unlock-when-home",
		Trigger:   rules.Trigger{Device: "C5", Attribute: "contact", Value: "open"},
		Condition: rules.Eq{Device: "P1", Attribute: "presence", Value: "present"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "unlocked"}},
	}); err != nil {
		return false, false, "", snap, err
	}
	tb.Start()
	_ = tb.Device("P1").TriggerEvent("presence", "present")
	_ = tb.Device("LK1").TriggerEvent("lock", "locked")
	tb.Clock.RunFor(5 * time.Second)

	core.SpuriousExecution(hPresence, "P1", hStorm, "C5", 5*time.Second)
	if err := tb.Device("P1").TriggerEvent("presence", "away"); err != nil {
		return false, false, "", snap, err
	}
	tb.Clock.RunFor(10 * time.Second)
	if err := tb.Device("C5").TriggerEvent("contact", "open"); err != nil {
		return false, false, "", snap, err
	}
	tb.Clock.RunFor(time.Minute)

	worked = tb.Device("LK1").State("lock") == "unlocked"
	detected = tb.Integration.TotalAlarmCount() > 0
	detail = fmt.Sprintf("door unlocked=%v, stale condition event alarmed afterwards=%v", worked, detected)
	return worked, detected, detail, snap, nil
}

// FormatDefenseResults renders the defense evaluations.
func FormatDefenseResults(w io.Writer, ack []AckDefenseResult, ts TimestampDefenseResult) {
	fmt.Fprintf(w, "Countermeasure VII-A — message ACK with shortened timeout\n%s\n", strings.Repeat("=", 60))
	fmt.Fprintf(w, "%-6s %-12s %-14s %-18s %-18s\n", "Label", "AckTimeout", "Residual", "Traffic (meas)", "Traffic (est)")
	for _, r := range ack {
		if r.Err != nil {
			fmt.Fprintf(w, "%-6s %-12v ERROR: %v\n", r.Label, r.AckTimeout, r.Err)
			continue
		}
		to := "stock"
		if r.AckTimeout > 0 {
			to = r.AckTimeout.String()
		}
		fmt.Fprintf(w, "%-6s %-12s %-14v %-18s %-18s\n",
			r.Label, to, r.AchievedDelay.Round(time.Millisecond),
			fmt.Sprintf("%d B/h", r.TrafficPerHour), fmt.Sprintf("%d B/h", r.EstimatePerHour))
	}
	fmt.Fprintf(w, "\nCountermeasure VII-B — timestamp checking\n%s\n", strings.Repeat("=", 60))
	if ts.Err != nil {
		fmt.Fprintf(w, "ERROR: %v\n", ts.Err)
		return
	}
	fmt.Fprintf(w, "delayed-trigger spurious execution blocked: %v (%s)\n", ts.TriggerDelayBlocked, ts.TriggerDetail)
	fmt.Fprintf(w, "condition-delay attack still succeeds:      %v (%s)\n", ts.ConditionDelayStillWorks, ts.ConditionDetail)
	fmt.Fprintf(w, "stale event detected only after the fact:   %v\n", ts.DetectedAfterTheFact)
}
