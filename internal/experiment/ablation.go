package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/device"
)

// MarginPoint is one release-margin setting evaluated over several trials:
// how often the delay stayed stealthy, and how much window the margin gave
// up. The margin is the design parameter DESIGN.md calls out: too small
// and in-flight latency eats it (the release must still cross the bridge
// and reach the waiting timer's owner); too large and attack time is
// wasted.
type MarginPoint struct {
	Margin    time.Duration
	Trials    int
	Stealthy  int           // timeout avoided and no alarms
	Accepted  int           // event delivered
	MeanDelay time.Duration // achieved hold across trials
	Err       error
}

// RunMarginAblation sweeps release margins on one device.
func RunMarginAblation(label string, margins []time.Duration, trials int, seed int64) []MarginPoint {
	out := make([]MarginPoint, 0, len(margins))
	for i, m := range margins {
		out = append(out, marginPoint(label, m, trials, seed+int64(i)*211))
	}
	return out
}

func marginPoint(label string, margin time.Duration, trials int, seed int64) MarginPoint {
	res := MarginPoint{Margin: margin, Trials: trials}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{label}})
	if err != nil {
		res.Err = err
		return res
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, label)
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()
	lab, err := tb.NewLab(h, label)
	if err != nil {
		res.Err = err
		return res
	}
	h.ArmPredictor(measuredFromProfile(mustOwner(tb, label)))

	var total time.Duration
	for i := 0; i < trials; i++ {
		alarmsBefore := tb.TotalAlarmCount()
		acceptedBefore := countAccepted(tb, lab.EventOrigin)
		op := h.MaxEDelay(lab.EventOrigin, margin)
		released := false
		var held time.Duration
		op.OnReleased = func(d time.Duration) { released, held = true, d }
		if err := lab.TriggerEvent(); err != nil {
			res.Err = err
			return res
		}
		deadline := tb.Clock.Now() + 10*time.Minute
		for !released && tb.Clock.Now() < deadline {
			if next, ok := tb.Clock.NextEventAt(); !ok || next > deadline {
				break
			}
			tb.Clock.Step()
		}
		tb.Clock.RunFor(5 * time.Second)
		if !released {
			continue // the session died holding; neither stealthy nor accepted
		}
		total += held
		if tb.SessionOwner(label).Connected() && tb.TotalAlarmCount() == alarmsBefore {
			res.Stealthy++
		}
		if countAccepted(tb, lab.EventOrigin) > acceptedBefore {
			res.Accepted++
		}
		// Let the session recover (or reconnect) between trials.
		tb.Clock.RunFor(time.Minute)
	}
	if trials > 0 {
		res.MeanDelay = total / time.Duration(trials)
	}
	return res
}

func mustOwner(tb *Testbed, label string) device.Profile {
	return tb.SessionOwner(label).Profile()
}

// BoundaryPoint is one hold duration around a device's window edge: does
// holding that long stay silent, or does the cliff (device timeout,
// reconnection, alarms) appear?
type BoundaryPoint struct {
	Hold          time.Duration
	SessionDied   bool
	EventAccepted bool
	Alarms        int
	Err           error
}

// RunDetectionBoundary sweeps hold durations across a device's window edge
// to chart where stealth ends — the cliff the predictor must stay under.
func RunDetectionBoundary(label string, holds []time.Duration, seed int64) []BoundaryPoint {
	out := make([]BoundaryPoint, 0, len(holds))
	for i, hold := range holds {
		out = append(out, boundaryPoint(label, hold, seed+int64(i)*97))
	}
	return out
}

func boundaryPoint(label string, hold time.Duration, seed int64) BoundaryPoint {
	res := BoundaryPoint{Hold: hold}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{label}})
	if err != nil {
		res.Err = err
		return res
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	h, err := tb.Hijack(atk, label)
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()
	owner := tb.SessionOwner(label)
	bridge, ok := h.CurrentBridge()
	if !ok {
		res.Err = fmt.Errorf("experiment: no bridge for %s", label)
		return res
	}

	p := tb.Profile(label)
	h.EDelay(label, hold)
	if err := tb.Device(label).TriggerEvent(p.EventAttr, p.EventValues[0]); err != nil {
		res.Err = err
		return res
	}
	tb.Clock.RunFor(hold + time.Minute)

	died, _ := bridge.DeviceClosed()
	res.SessionDied = died
	res.EventAccepted = countAccepted(tb, label) > 0
	res.Alarms = tb.TotalAlarmCount()
	_ = owner
	return res
}

// FormatAblation renders both ablation studies.
func FormatAblation(w io.Writer, margins []MarginPoint, boundary []BoundaryPoint) {
	fmt.Fprintf(w, "Ablation — release margin vs. stealth\n%s\n", strings.Repeat("=", 50))
	fmt.Fprintf(w, "%-10s %-8s %-10s %-10s %-12s\n", "Margin", "Trials", "Stealthy", "Accepted", "MeanDelay")
	for _, m := range margins {
		if m.Err != nil {
			fmt.Fprintf(w, "%-10v ERROR: %v\n", m.Margin, m.Err)
			continue
		}
		fmt.Fprintf(w, "%-10v %-8d %-10d %-10d %-12v\n",
			m.Margin, m.Trials, m.Stealthy, m.Accepted, m.MeanDelay.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "\nAblation — hold duration vs. detection cliff\n%s\n", strings.Repeat("=", 50))
	fmt.Fprintf(w, "%-10s %-13s %-10s %-8s\n", "Hold", "SessionDied", "Accepted", "Alarms")
	for _, b := range boundary {
		if b.Err != nil {
			fmt.Fprintf(w, "%-10v ERROR: %v\n", b.Hold, b.Err)
			continue
		}
		fmt.Fprintf(w, "%-10v %-13v %-10v %-8d\n", b.Hold, b.SessionDied, b.EventAccepted, b.Alarms)
	}
}
