package experiment

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

// TestTableTraceRecordsEDelaySequence asserts the flight recorder captures
// the paper's e-Delay anatomy for a profiled device: a bridge hold opens,
// the attacker answers at least one keep-alive with a spoofed ACK during
// the hold, the held records release in order (the server's TLS session
// accepts them), and the cloud accepts the delayed event.
func TestTableTraceRecordsEDelaySequence(t *testing.T) {
	rows := RunTable([]string{"C1"}, TableOptions{Seed: 11, Trials: 1, TraceCap: 1 << 16})
	if len(rows) != 1 || rows[0].Err != nil {
		t.Fatalf("rows = %+v", rows)
	}
	evs := rows[0].Metrics.Trace
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}

	type window struct{ start, end time.Duration }
	var holds []window
	var open *window
	for _, ev := range evs {
		if ev.Component == "core" && ev.Event == "hold_start" && open == nil {
			open = &window{start: ev.At}
		}
		if ev.Component == "core" && ev.Event == "release" && open != nil {
			open.end = ev.At
			holds = append(holds, *open)
			open = nil
		}
	}
	if len(holds) == 0 {
		t.Fatal("no hold windows in trace")
	}
	spoofedInHold := false
	recordAfterRelease := false
	acceptedAfterRelease := false
	for _, h := range holds {
		for _, ev := range evs {
			switch {
			case ev.Component == "tcpsim" && ev.Event == "spoofed_ack" &&
				ev.At >= h.start && ev.At <= h.end:
				spoofedInHold = true
			case ev.Component == "tlssim" && ev.Event == "record_ok" && ev.At >= h.end:
				recordAfterRelease = true
			case ev.Component == "cloud" && ev.Event == "event_accepted" && ev.At >= h.end:
				acceptedAfterRelease = true
			}
		}
	}
	if !spoofedInHold {
		t.Error("no spoofed ACK during any hold window")
	}
	if !recordAfterRelease {
		t.Error("no in-order TLS record acceptance after release")
	}
	if !acceptedAfterRelease {
		t.Error("no cloud event acceptance after release")
	}

	// The reconstructed timeline shows the same story as spans: completed
	// holds and experiment phases.
	tl := timeline.Build(timeline.Source{Name: rows[0].Label, Events: evs})
	var holdSpans, phaseSpans int
	for _, s := range tl.Spans {
		switch s.Name {
		case "hold":
			if s.Complete {
				holdSpans++
			}
		case "phase":
			phaseSpans++
		}
	}
	if holdSpans == 0 {
		t.Error("timeline has no completed hold spans")
	}
	if phaseSpans == 0 {
		t.Error("timeline has no experiment phase spans")
	}
}

func TestTableTraceDeterministic(t *testing.T) {
	run := func() []obs.TraceEvent {
		rows := RunTable([]string{"C1"}, TableOptions{Seed: 7, Trials: 1, TraceCap: 1 << 16})
		if rows[0].Err != nil {
			t.Fatal(rows[0].Err)
		}
		return rows[0].Metrics.Trace
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed traces differ: %d vs %d events", len(a), len(b))
	}
}

func TestTableTraceDisabled(t *testing.T) {
	rows := RunTable([]string{"C1"}, TableOptions{Seed: 7, Trials: 1, TraceCap: -1})
	if rows[0].Err != nil {
		t.Fatal(rows[0].Err)
	}
	if n := len(rows[0].Metrics.Trace); n != 0 {
		t.Fatalf("TraceCap -1 still recorded %d events", n)
	}
}

// TestCaseTraceAttackArmOnly: with an explicit capacity, only the attack
// arm records, so the exported timeline is not interleaved with
// baseline-arm events (both arms start at t=0).
func TestCaseTraceAttackArmOnly(t *testing.T) {
	cases := Table3Cases()[:1]
	cases[0].TraceCap = 1 << 16
	res := RunCases(cases, 42)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	evs := res.Metrics.Trace
	if len(evs) == 0 {
		t.Fatal("attack arm recorded no trace events")
	}
	// Merged arm snapshots concatenate traces in arm order; with the
	// baseline arm disabled the stream must stay time-monotonic.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace not monotonic at %d: %v after %v (baseline arm leaked in?)",
				i, evs[i].At, evs[i-1].At)
		}
	}
}
