package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// ReplayClass is the assessment verdict for one device model.
type ReplayClass string

// Verdicts, ordered worst-first: a device that accepts raw re-injection
// is raw-vulnerable even if the application-layer path would also land.
const (
	// ReplayRawVulnerable: a verbatim captured record re-injected on the
	// live session was accepted end to end.
	ReplayRawVulnerable ReplayClass = "raw-vulnerable"
	// ReplayAppVulnerable: raw injection failed (window drop, teardown or
	// no live session) but the readable capture replayed from a fresh
	// attacker session.
	ReplayAppVulnerable ReplayClass = "app-vulnerable"
	// ReplayProtected: neither path produced an accepted duplicate.
	ReplayProtected ReplayClass = "protected"
)

// ReplayResult is the assessment outcome for one device.
type ReplayResult struct {
	Label string
	// Mode/Window describe the session owner's wire-level protections;
	// CloudDedup is the event origin's server-side suppression.
	Mode       tlssim.ReplayMode
	Window     int
	CloudDedup bool
	// RawAccepted/AppAccepted report whether each injection path yielded
	// an accepted duplicate event.
	RawAccepted bool
	AppAccepted bool
	Class       ReplayClass
	Err         error

	// Metrics is the device testbed's observability snapshot.
	Metrics obs.Snapshot
}

// ReplayOptions tunes the assessment runs.
type ReplayOptions struct {
	Seed int64
	// RetainBytes is the capture's per-flow payload retention budget.
	// Default 4096.
	RetainBytes int
	// TraceCap sizes each testbed's flight-recorder ring.
	TraceCap int
}

// RunReplayAssessment probes every listed device with both replay paths
// and classifies it. Each device runs in its own testbed seeded from
// (Seed, position), so the resulting table is a pure function of the
// options — byte-identical across runs and machines.
func RunReplayAssessment(labels []string, opts ReplayOptions) []ReplayResult {
	if opts.RetainBytes <= 0 {
		opts.RetainBytes = 4096
	}
	out := make([]ReplayResult, 0, len(labels))
	for i, label := range labels {
		out = append(out, assessReplay(label, opts, opts.Seed+int64(i)*317))
	}
	return out
}

func assessReplay(label string, opts ReplayOptions, seed int64) (res ReplayResult) {
	res = ReplayResult{Label: label, Class: ReplayProtected}
	tb, err := NewTestbed(TestbedConfig{Seed: seed, Devices: []string{label}, TraceCap: opts.TraceCap})
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { res.Metrics = tb.Metrics.Snapshot() }()
	owner := tb.SessionOwnerProfile(label)
	res.Mode = owner.ReplayMode
	res.Window = owner.ReplayWindow
	res.CloudDedup = tb.byLabel[label].CloudDedup

	atk, err := tb.NewAttacker()
	if err != nil {
		res.Err = err
		return res
	}
	atk.Capture.RetainPayloads(opts.RetainBytes)
	h, err := tb.Hijack(atk, label)
	if err != nil {
		res.Err = err
		return res
	}
	tb.Start()
	lab, err := tb.NewLab(h, label)
	if err != nil {
		res.Err = err
		return res
	}
	eng := replay.NewEngine(atk)
	eng.Instrument(tb.Metrics)

	// Record: let the session settle, then capture one genuine event. The
	// post-trigger run covers delivery, cloud-to-cloud forwarding, and —
	// for on-demand devices — the burst connection's teardown, so the raw
	// path below sees the session state a real attacker would.
	tb.Clock.RunFor(3 * time.Second)
	if err := lab.TriggerEvent(); err != nil {
		res.Err = err
		return res
	}
	tb.Clock.RunFor(3 * time.Second)

	records := atk.Capture.Records()
	idx, ok := replay.FindEventRecord(sniff.CatalogClassifier(), owner.Label, label, records)
	if !ok {
		res.Err = fmt.Errorf("experiment: no retained event record for %s", label)
		return res
	}

	// Raw injection on the live session.
	before := tb.AcceptedEventCount(label)
	if err := eng.RawReplay(h, records[idx]); err == nil {
		tb.Clock.RunFor(5 * time.Second)
		res.RawAccepted = tb.AcceptedEventCount(label) > before
		eng.ReportOutcome(label, res.RawAccepted)
	}

	// Application-layer replay from a fresh session, when the capture is
	// readable at all (ErrNotReadable otherwise, before any connection).
	if !res.RawAccepted {
		target, err := tb.HijackTarget(label)
		if err != nil {
			res.Err = err
			return res
		}
		before = tb.AcceptedEventCount(label)
		server := tcpsim.Endpoint{Addr: target.ServerAddr, Port: target.ServerPort}
		if _, err := eng.AppReplay(server, replay.SessionPrefix(records, idx)); err == nil {
			tb.Clock.RunFor(5 * time.Second)
			res.AppAccepted = tb.AcceptedEventCount(label) > before
			eng.ReportOutcome(label, res.AppAccepted)
		}
	}

	switch {
	case res.RawAccepted:
		res.Class = ReplayRawVulnerable
	case res.AppAccepted:
		res.Class = ReplayAppVulnerable
	}
	return res
}

// FormatReplayTable renders the per-device assessment.
func FormatReplayTable(w io.Writer, results []ReplayResult) {
	fmt.Fprintf(w, "Record-and-replay vulnerability assessment\n%s\n", strings.Repeat("=", 72))
	fmt.Fprintf(w, "%-6s %-14s %-8s %-7s %-6s %-6s %-16s\n",
		"Label", "Wire", "Window", "Dedup", "Raw", "App", "Class")
	counts := map[ReplayClass]int{}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%-6s ERROR: %v\n", r.Label, r.Err)
			continue
		}
		counts[r.Class]++
		fmt.Fprintf(w, "%-6s %-14s %-8d %-7v %-6v %-6v %-16s\n",
			r.Label, r.Mode, r.Window, r.CloudDedup, r.RawAccepted, r.AppAccepted, r.Class)
	}
	fmt.Fprintf(w, "%s\n%d raw-vulnerable, %d app-vulnerable, %d protected\n",
		strings.Repeat("-", 72),
		counts[ReplayRawVulnerable], counts[ReplayAppVulnerable], counts[ReplayProtected])
}
