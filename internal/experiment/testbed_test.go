package experiment

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/rules"
)

func TestCloudHomeEndToEnd(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		Seed:    1,
		Devices: []string{"C2", "LK1", "P2", "M7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hubs pulled in automatically.
	if tb.Device("H3") == nil || tb.Device("H5") == nil {
		t.Fatal("hubs for C2/LK1 not auto-created")
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "lock-on-close",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
		Actions: []rules.Action{
			{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"},
			{Kind: rules.ActionNotify, Message: "door closed; locking"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if !tb.Device("H3").Connected() || !tb.Device("P2").Connected() {
		t.Fatal("devices did not connect")
	}

	// Physical occurrence: the Ring contact sensor closes.
	if err := tb.Device("C2").TriggerEvent("contact", "closed"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)

	// The event reached the integration server...
	evs := tb.Integration.Events()
	found := false
	for _, ev := range evs {
		if ev.Device == "C2" && ev.Value == "closed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("C2 event not ingested: %v", evs)
	}
	// ...the rule fired a notification...
	if n := tb.Integration.Notifications(); len(n) != 1 || n[0].Message != "door closed; locking" {
		t.Fatalf("notifications = %v", n)
	}
	// ...and the command actuated the August lock via its bridge.
	if got := tb.Device("LK1").State("lock"); got != "locked" {
		t.Fatalf("lock state = %q, want locked", got)
	}
	cmds := tb.Integration.Commands()
	if len(cmds) != 1 || cmds[0].Outcome == nil || !cmds[0].Outcome.Acked {
		t.Fatalf("commands = %+v", cmds)
	}
	// Nothing anomalous happened.
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d, want 0", tb.TotalAlarmCount())
	}
}

func TestOnDemandDeviceEventFlow(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Seed: 2, Devices: []string{"M7"}})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Device("M7").TriggerEvent("motion", "active"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 1 || evs[0].Device != "M7" || evs[0].Value != "active" {
		t.Fatalf("events = %v", evs)
	}
}

func TestLocalHomeEndToEnd(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		Seed:    3,
		Devices: []string{"A1", "A6"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.LocalHub == nil {
		t.Fatal("local hub not created for HAP devices")
	}
	if err := tb.LocalHub.AddRule(rules.Rule{
		Name:    "light-on-open",
		Trigger: rules.Trigger{Device: "A1", Attribute: "contact", Value: "open"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "A6", Attribute: "switch", Value: "on"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if !tb.Device("A1").Connected() || !tb.Device("A6").Connected() {
		t.Fatal("accessories did not pair")
	}
	if err := tb.Device("A1").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if got := tb.Device("A6").State("switch"); got != "on" {
		t.Fatalf("bulb state = %q, want on", got)
	}
	if len(tb.LocalHub.Alarms()) != 0 {
		t.Fatalf("alarms = %v", tb.LocalHub.Alarms())
	}
}

func TestFullCatalogDeploys(t *testing.T) {
	var labels []string
	for _, p := range catalogLabels() {
		labels = append(labels, p)
	}
	tb, err := NewTestbed(TestbedConfig{Seed: 4, Devices: labels})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Clock.RunFor(10 * time.Second)
	down := 0
	for label, d := range tb.Devices {
		if !d.Connected() {
			t.Errorf("device %s not connected", label)
			down++
		}
	}
	if down > 0 {
		t.Fatalf("%d devices down", down)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms during steady state: %d", tb.TotalAlarmCount())
	}
	// Run half an hour of idle time: keep-alives must hold every session up.
	tb.Clock.RunFor(30 * time.Minute)
	for label, d := range tb.Devices {
		if !d.Connected() {
			t.Errorf("device %s dropped during idle period", label)
		}
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms during idle period: %d", tb.TotalAlarmCount())
	}
}

func TestStaleDiscardPolicy(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{
		Seed:    5,
		Devices: []string{"C2"},
		Integration: cloud.IntegrationConfig{
			Policy:      cloud.StaleDiscardSilently,
			MaxEventAge: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if len(tb.Integration.Events()) != 1 {
		t.Fatal("fresh event should be accepted")
	}
	if len(tb.Integration.Discarded()) != 0 {
		t.Fatal("fresh event wrongly discarded")
	}
}

func TestUnknownDeviceRejected(t *testing.T) {
	if _, err := NewTestbed(TestbedConfig{Devices: []string{"NOPE"}}); err == nil {
		t.Fatal("unknown label should fail")
	}
}

func catalogLabels() []string {
	return []string{
		"H1", "H2", "H3", "H4", "H5",
		"C1", "M1", "P1", "S1", "L2", "S2", "M2", "C2", "M3", "K1", "C3", "M4", "LK1",
		"CM1", "CM2", "CM3", "P2", "P3", "P4", "L1", "L3", "K2", "T1", "SD1", "V1",
		"M7", "C5", "W1",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11", "A12", "A13", "A14", "A15", "A16", "A17",
	}
}
