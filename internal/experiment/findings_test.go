package experiment

import "testing"

func TestFindingsHold(t *testing.T) {
	for _, r := range RunFindings(700) {
		if r.Err != nil {
			t.Errorf("finding %d: %v", r.ID, r.Err)
			continue
		}
		if !r.Holds {
			t.Errorf("finding %d (%s) did not hold: %s", r.ID, r.Title, r.Detail)
		}
	}
}
