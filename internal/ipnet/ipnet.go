// Package ipnet implements a minimal IPv4-like network layer over netsim:
// interfaces with addresses, static routing with a default gateway, packet
// forwarding (for the home router), and a divert hook that lets an attacker
// host consume packets that ARP poisoning has redirected to it.
package ipnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/arp"
	"repro/internal/ipaddr"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Protocol identifies the transport protocol carried by a packet.
type Protocol uint8

// ProtoTCP is the only transport protocol the simulation carries.
const ProtoTCP Protocol = 6

// DefaultTTL is stamped on packets sent with TTL zero.
const DefaultTTL = 64

// Packet is a network-layer packet.
type Packet struct {
	Src     ipaddr.Addr
	Dst     ipaddr.Addr
	Proto   Protocol
	TTL     uint8
	Payload []byte
}

// headerLen is the fixed marshalled header size.
const headerLen = 12

// Marshal encodes the packet for a frame payload.
func (p Packet) Marshal() []byte {
	return p.AppendTo(nil)
}

// AppendTo encodes the packet onto b (usually a reusable scratch buffer)
// and returns the extended slice.
func (p Packet) AppendTo(b []byte) []byte {
	n := len(b)
	b = grow(b, headerLen+len(p.Payload))
	out := b[n:]
	out[0] = byte(p.Proto)
	out[1] = p.TTL
	src := p.Src.Bytes()
	dst := p.Dst.Bytes()
	copy(out[2:6], src[:])
	copy(out[6:10], dst[:])
	binary.BigEndian.PutUint16(out[10:12], uint16(len(p.Payload)))
	copy(out[headerLen:], p.Payload)
	return b
}

// grow extends b by n zero-initialised bytes, reallocating only when the
// capacity is short.
func grow(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l < n {
		nb := make([]byte, l+n, l+n)
		copy(nb, b)
		return nb
	}
	b = b[:l+n]
	for i := l; i < len(b); i++ {
		b[i] = 0
	}
	return b
}

// ErrShortPacket reports a truncated network-layer payload.
var ErrShortPacket = errors.New("ipnet: short packet")

// Unmarshal decodes a frame payload into a Packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < headerLen {
		return Packet{}, ErrShortPacket
	}
	var src, dst [4]byte
	copy(src[:], b[2:6])
	copy(dst[:], b[6:10])
	n := int(binary.BigEndian.Uint16(b[10:12]))
	if len(b) < headerLen+n {
		return Packet{}, ErrShortPacket
	}
	return Packet{
		Src:     ipaddr.FromBytes(src),
		Dst:     ipaddr.FromBytes(dst),
		Proto:   Protocol(b[0]),
		TTL:     b[1],
		Payload: b[headerLen : headerLen+n],
	}, nil
}

// Len returns the marshalled size in bytes.
func (p Packet) Len() int { return headerLen + len(p.Payload) }

// String summarises the packet for traces.
func (p Packet) String() string {
	return fmt.Sprintf("%s->%s proto=%d len=%d", p.Src, p.Dst, p.Proto, len(p.Payload))
}

// Iface is an addressed attachment of a stack to a segment.
type Iface struct {
	nic    *netsim.NIC
	addr   ipaddr.Addr
	prefix ipaddr.Prefix
	arp    *arp.Client
}

// Addr returns the interface's address.
func (i *Iface) Addr() ipaddr.Addr { return i.addr }

// Prefix returns the interface's on-link prefix.
func (i *Iface) Prefix() ipaddr.Prefix { return i.prefix }

// NIC returns the underlying layer-2 interface.
func (i *Iface) NIC() *netsim.NIC { return i.nic }

// ARP returns the interface's ARP client (exposed for the spoofer).
func (i *Iface) ARP() *arp.Client { return i.arp }

// Route maps a destination prefix to an output interface and optional
// next-hop gateway (zero means deliver directly on-link).
type Route struct {
	Prefix ipaddr.Prefix
	Via    ipaddr.Addr
	Iface  *Iface
}

// Stats counts network-layer activity.
type Stats struct {
	Sent      uint64
	Received  uint64
	Forwarded uint64
	Diverted  uint64
	Dropped   uint64
}

// Stack is a host's network layer.
type Stack struct {
	clk      *simtime.Clock
	host     *netsim.Host
	ifaces   []*Iface
	routes   []Route
	handlers map[Protocol]func(Packet)
	// Forwarding enables router behaviour: packets not addressed to the
	// stack are re-routed instead of dropped.
	Forwarding bool
	// Divert, if non-nil, sees packets not addressed to this stack before
	// forwarding. Returning true consumes the packet. This is the attacker's
	// interception point for traffic redirected to it by ARP poisoning.
	Divert func(Packet) bool
	stats  Stats
	// txbuf is the marshal scratch for the synchronous send path. It is
	// safe to reuse per send because netsim copies the frame payload into
	// its own pooled buffer before Send returns.
	txbuf []byte
	// ifaceFree pools detached interfaces (ARP client included) so a reset
	// stack rebuilds its attachments without allocating.
	ifaceFree []*Iface
}

// NewStack creates a network stack for the host.
func NewStack(clk *simtime.Clock, host *netsim.Host) *Stack {
	return &Stack{
		clk:      clk,
		host:     host,
		handlers: make(map[Protocol]func(Packet)),
	}
}

// Reset rebinds the stack to a (freshly created or revived) host and
// returns it to its freshly constructed state while keeping its
// allocations: interfaces are parked for AddIface to revive, routes and
// handlers are dropped, and forwarding/divert behaviour reverts to the
// defaults. A reset stack behaves byte-identically to NewStack(clk, host).
func (s *Stack) Reset(host *netsim.Host) {
	s.host = host
	for i, ifc := range s.ifaces {
		ifc.arp.Reset(nil, 0)
		ifc.nic = nil
		s.ifaceFree = append(s.ifaceFree, ifc)
		s.ifaces[i] = nil
	}
	s.ifaces = s.ifaces[:0]
	clear(s.routes)
	s.routes = s.routes[:0]
	clear(s.handlers)
	s.Forwarding = false
	s.Divert = nil
	s.stats = Stats{}
}

// Host returns the owning host.
func (s *Stack) Host() *netsim.Host { return s.host }

// Clock returns the stack's virtual clock.
func (s *Stack) Clock() *simtime.Clock { return s.clk }

// Stats returns a copy of the stack's counters.
func (s *Stack) Stats() Stats { return s.stats }

// AddIface attaches the stack to a segment with the given CIDR address
// (e.g. "192.168.1.10/24") and installs the on-link route.
func (s *Stack) AddIface(seg *netsim.Segment, cidr string) (*Iface, error) {
	pfx, err := ipaddr.ParsePrefix(cidr)
	if err != nil {
		return nil, err
	}
	nic := s.host.AttachNIC(seg)
	ifc := &Iface{}
	if k := len(s.ifaceFree); k > 0 {
		ifc, s.ifaceFree[k-1] = s.ifaceFree[k-1], nil
		s.ifaceFree = s.ifaceFree[:k-1]
		ifc.arp.Reset(nic, pfx.Addr)
	} else {
		ifc.arp = arp.NewClient(s.clk, nic, pfx.Addr, arp.Config{})
	}
	ifc.nic = nic
	ifc.addr = pfx.Addr
	ifc.prefix = pfx
	nic.SetHandler(func(_ *netsim.NIC, f netsim.Frame) { s.receiveFrame(ifc, f) })
	s.ifaces = append(s.ifaces, ifc)
	s.routes = append(s.routes, Route{Prefix: pfx, Iface: ifc})
	return ifc, nil
}

// MustAddIface is AddIface for test and builder code; it panics on error.
func (s *Stack) MustAddIface(seg *netsim.Segment, cidr string) *Iface {
	ifc, err := s.AddIface(seg, cidr)
	if err != nil {
		panic(err)
	}
	return ifc
}

// Ifaces returns the stack's interfaces in attachment order.
func (s *Stack) Ifaces() []*Iface {
	out := make([]*Iface, len(s.ifaces))
	copy(out, s.ifaces)
	return out
}

// Addr returns the address of the first interface (convenience for
// single-homed hosts). It returns the zero Addr if no interface exists.
func (s *Stack) Addr() ipaddr.Addr {
	if len(s.ifaces) == 0 {
		return 0
	}
	return s.ifaces[0].addr
}

// AddRoute installs a static route.
func (s *Stack) AddRoute(prefix ipaddr.Prefix, via ipaddr.Addr, ifc *Iface) {
	s.routes = append(s.routes, Route{Prefix: prefix, Via: via, Iface: ifc})
}

// SetDefaultGateway installs a 0.0.0.0/0 route via gw out of the interface
// whose prefix contains gw.
func (s *Stack) SetDefaultGateway(gw ipaddr.Addr) error {
	for _, ifc := range s.ifaces {
		if ifc.prefix.Contains(gw) {
			s.AddRoute(ipaddr.Prefix{}, gw, ifc)
			return nil
		}
	}
	return fmt.Errorf("ipnet: no interface on-link for gateway %s", gw)
}

// Handle registers the receive callback for a transport protocol.
func (s *Stack) Handle(proto Protocol, fn func(Packet)) {
	s.handlers[proto] = fn
}

// ErrNoRoute reports that no route matched a packet's destination.
var ErrNoRoute = errors.New("ipnet: no route to destination")

// Send routes and transmits a packet. A zero Src is filled with the output
// interface's address; a non-zero Src is sent as-is (spoofing is an
// attacker capability). A zero TTL is stamped with DefaultTTL.
func (s *Stack) Send(p Packet) error {
	rt := s.lookupRoute(p.Dst)
	if rt == nil {
		s.stats.Dropped++
		return fmt.Errorf("%w: %s", ErrNoRoute, p.Dst)
	}
	if p.Src.IsZero() {
		p.Src = rt.Iface.addr
	}
	if p.TTL == 0 {
		p.TTL = DefaultTTL
	}
	nextHop := p.Dst
	if !rt.Via.IsZero() {
		nextHop = rt.Via
	}
	s.stats.Sent++
	ifc := rt.Iface
	// Fast path: with the next hop already in the ARP cache the whole send
	// is synchronous, so the packet marshals into the stack's scratch
	// buffer (netsim copies the payload before Send returns).
	if mac, ok := ifc.arp.Lookup(nextHop); ok {
		s.txbuf = p.AppendTo(s.txbuf[:0])
		ifc.nic.Send(netsim.Frame{
			Dst:     mac,
			Type:    netsim.EtherTypeIPv4,
			Payload: s.txbuf,
		})
		return nil
	}
	// Slow path: resolution defers the send, so the packet — whose payload
	// may alias a caller's scratch or a pooled frame buffer — must be
	// detached before it is captured.
	p.Payload = append([]byte(nil), p.Payload...)
	ifc.arp.Resolve(nextHop, func(mac netsim.MAC, ok bool) {
		if !ok {
			s.stats.Dropped++
			return
		}
		ifc.nic.Send(netsim.Frame{
			Dst:     mac,
			Type:    netsim.EtherTypeIPv4,
			Payload: p.Marshal(),
		})
	})
	return nil
}

func (s *Stack) lookupRoute(dst ipaddr.Addr) *Route {
	var best *Route
	for i := range s.routes {
		rt := &s.routes[i]
		if !rt.Prefix.Contains(dst) {
			continue
		}
		if best == nil || rt.Prefix.Bits > best.Prefix.Bits {
			best = rt
		}
	}
	return best
}

func (s *Stack) receiveFrame(ifc *Iface, f netsim.Frame) {
	switch f.Type {
	case netsim.EtherTypeARP:
		ifc.arp.HandleFrame(f)
	case netsim.EtherTypeIPv4:
		p, err := Unmarshal(f.Payload)
		if err != nil {
			s.stats.Dropped++
			return
		}
		s.receivePacket(p)
	}
}

func (s *Stack) receivePacket(p Packet) {
	if s.isLocal(p.Dst) {
		s.stats.Received++
		if h, ok := s.handlers[p.Proto]; ok {
			h(p)
		} else {
			s.stats.Dropped++
		}
		return
	}
	if s.Divert != nil && s.Divert(p) {
		s.stats.Diverted++
		return
	}
	if !s.Forwarding {
		s.stats.Dropped++
		return
	}
	if p.TTL <= 1 {
		s.stats.Dropped++
		return
	}
	p.TTL--
	s.stats.Forwarded++
	// Errors at forwarding time mean an unroutable destination; the packet
	// is silently dropped as a real router without ICMP would.
	if err := s.Send(p); err != nil {
		s.stats.Dropped++
	}
}

func (s *Stack) isLocal(a ipaddr.Addr) bool {
	for _, ifc := range s.ifaces {
		if ifc.addr == a {
			return true
		}
	}
	return false
}
