package ipnet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/arp"
	"repro/internal/ipaddr"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// lanEnv is a single-segment LAN with two hosts.
type lanEnv struct {
	clk  *simtime.Clock
	net  *netsim.Network
	seg  *netsim.Segment
	a, b *Stack
}

func newLANEnv() *lanEnv {
	clk := simtime.NewClock()
	net := netsim.NewNetwork(clk, 1)
	seg := net.NewSegment("lan", time.Millisecond, 0)
	a := NewStack(clk, net.NewHost("a"))
	a.MustAddIface(seg, "192.168.1.10/24")
	b := NewStack(clk, net.NewHost("b"))
	b.MustAddIface(seg, "192.168.1.20/24")
	return &lanEnv{clk: clk, net: net, seg: seg, a: a, b: b}
}

// wanEnv is LAN + router + WAN with a cloud host, mirroring Figure 1(a).
type wanEnv struct {
	clk    *simtime.Clock
	net    *netsim.Network
	lan    *netsim.Segment
	wan    *netsim.Segment
	device *Stack
	router *Stack
	cloud  *Stack
}

func newWANEnv() *wanEnv {
	clk := simtime.NewClock()
	net := netsim.NewNetwork(clk, 1)
	lan := net.NewSegment("lan", time.Millisecond, 0)
	wan := net.NewSegment("wan", 10*time.Millisecond, 0)

	device := NewStack(clk, net.NewHost("device"))
	device.MustAddIface(lan, "192.168.1.10/24")
	if err := device.SetDefaultGateway(ipaddr.MustParse("192.168.1.1")); err != nil {
		panic(err)
	}

	router := NewStack(clk, net.NewHost("router"))
	router.MustAddIface(lan, "192.168.1.1/24")
	router.MustAddIface(wan, "100.64.0.1/16")
	router.Forwarding = true

	cloud := NewStack(clk, net.NewHost("cloud"))
	cloud.MustAddIface(wan, "100.64.10.10/16")
	if err := cloud.SetDefaultGateway(ipaddr.MustParse("100.64.0.1")); err != nil {
		panic(err)
	}
	return &wanEnv{clk: clk, net: net, lan: lan, wan: wan, device: device, router: router, cloud: cloud}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	f := func(src, dst uint32, proto, ttl uint8, payload []byte) bool {
		p := Packet{
			Src:     ipaddr.Addr(src),
			Dst:     ipaddr.Addr(dst),
			Proto:   Protocol(proto),
			TTL:     ttl,
			Payload: payload,
		}
		if len(payload) > 60000 {
			return true // length field is 16-bit by design
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if got.Src != p.Src || got.Dst != p.Dst || got.Proto != p.Proto || got.TTL != p.TTL {
			return false
		}
		return string(got.Payload) == string(p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 3)); err == nil {
		t.Fatal("short buffer should fail")
	}
	// Header claims more payload than present.
	p := Packet{Payload: []byte("abcdef")}
	b := p.Marshal()
	if _, err := Unmarshal(b[:len(b)-2]); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestLANDelivery(t *testing.T) {
	e := newLANEnv()
	var got Packet
	e.b.Handle(ProtoTCP, func(p Packet) { got = p })
	err := e.a.Send(Packet{Dst: e.b.Addr(), Proto: ProtoTCP, Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Run()
	if string(got.Payload) != "hello" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if got.Src != e.a.Addr() {
		t.Fatalf("src = %v, want %v (auto-filled)", got.Src, e.a.Addr())
	}
	if got.TTL != DefaultTTL {
		t.Fatalf("ttl = %d, want %d", got.TTL, DefaultTTL)
	}
}

func TestNoRouteError(t *testing.T) {
	e := newLANEnv()
	err := e.a.Send(Packet{Dst: ipaddr.MustParse("8.8.8.8"), Proto: ProtoTCP})
	if err == nil {
		t.Fatal("expected no-route error")
	}
}

func TestRoutedDeliveryThroughGateway(t *testing.T) {
	e := newWANEnv()
	var got Packet
	e.cloud.Handle(ProtoTCP, func(p Packet) { got = p })
	err := e.device.Send(Packet{Dst: e.cloud.Addr(), Proto: ProtoTCP, Payload: []byte("up")})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Run()
	if string(got.Payload) != "up" {
		t.Fatalf("cloud got %q", got.Payload)
	}
	if got.TTL != DefaultTTL-1 {
		t.Fatalf("ttl = %d, want %d (one hop)", got.TTL, DefaultTTL-1)
	}
	if e.router.Stats().Forwarded != 1 {
		t.Fatalf("router forwarded = %d, want 1", e.router.Stats().Forwarded)
	}
}

func TestReturnPathThroughGateway(t *testing.T) {
	e := newWANEnv()
	e.device.Handle(ProtoTCP, func(p Packet) {})
	var got Packet
	e.cloud.Handle(ProtoTCP, func(p Packet) { got = p })
	// Cloud needs a route back to the LAN: via the router's WAN address.
	e.device.Handle(ProtoTCP, func(p Packet) { got = p })
	err := e.cloud.Send(Packet{Dst: e.device.Addr(), Proto: ProtoTCP, Payload: []byte("cmd")})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Run()
	if string(got.Payload) != "cmd" {
		t.Fatalf("device got %q", got.Payload)
	}
}

func TestNonForwardingHostDrops(t *testing.T) {
	e := newLANEnv()
	// a sends to an off-link address via b as (non-)gateway.
	e.a.AddRoute(ipaddr.Prefix{Addr: ipaddr.MustParse("8.8.8.8"), Bits: 32}, e.b.Addr(), e.a.Ifaces()[0])
	_ = e.a.Send(Packet{Dst: ipaddr.MustParse("8.8.8.8"), Proto: ProtoTCP})
	e.clk.Run()
	if e.b.Stats().Dropped == 0 {
		t.Fatal("non-forwarding host should drop transit packets")
	}
}

// AddRoute with an Addr (not Prefix) — helper overload check via /32 route.
func (s *Stack) addHostRoute(dst ipaddr.Addr, via ipaddr.Addr, ifc *Iface) {
	s.AddRoute(ipaddr.Prefix{Addr: dst, Bits: 32}, via, ifc)
}

func TestLongestPrefixWins(t *testing.T) {
	e := newWANEnv()
	hits := 0
	e.cloud.Handle(ProtoTCP, func(p Packet) { hits++ })
	// A /32 route for the cloud address pointing at a black hole must win
	// over the default route.
	e.device.addHostRoute(e.cloud.Addr(), ipaddr.MustParse("192.168.1.99"), e.device.Ifaces()[0])
	_ = e.device.Send(Packet{Dst: e.cloud.Addr(), Proto: ProtoTCP})
	e.clk.Run()
	if hits != 0 {
		t.Fatal("longest-prefix route not preferred")
	}
}

func TestTTLExpiryDropped(t *testing.T) {
	e := newWANEnv()
	hits := 0
	e.cloud.Handle(ProtoTCP, func(p Packet) { hits++ })
	_ = e.device.Send(Packet{Dst: e.cloud.Addr(), Proto: ProtoTCP, TTL: 1})
	e.clk.Run()
	if hits != 0 {
		t.Fatal("TTL=1 packet should die at the router")
	}
}

func TestSpoofedSourceSent(t *testing.T) {
	e := newLANEnv()
	var got Packet
	e.b.Handle(ProtoTCP, func(p Packet) { got = p })
	fake := ipaddr.MustParse("192.168.1.77")
	_ = e.a.Send(Packet{Src: fake, Dst: e.b.Addr(), Proto: ProtoTCP})
	e.clk.Run()
	if got.Src != fake {
		t.Fatalf("src = %v, want spoofed %v", got.Src, fake)
	}
}

func TestDivertConsumesRedirectedTraffic(t *testing.T) {
	clk := simtime.NewClock()
	net := netsim.NewNetwork(clk, 1)
	seg := net.NewSegment("lan", time.Millisecond, 0)

	victim := NewStack(clk, net.NewHost("victim"))
	victim.MustAddIface(seg, "192.168.1.10/24")
	gw := NewStack(clk, net.NewHost("gw"))
	gw.MustAddIface(seg, "192.168.1.1/24")
	attacker := NewStack(clk, net.NewHost("attacker"))
	atkIfc := attacker.MustAddIface(seg, "192.168.1.66/24")

	if err := victim.SetDefaultGateway(ipaddr.MustParse("192.168.1.1")); err != nil {
		t.Fatal(err)
	}

	var diverted []Packet
	attacker.Divert = func(p Packet) bool {
		diverted = append(diverted, p)
		return true
	}

	// Poison the victim's view of the gateway.
	sp := arp.NewSpoofer(clk, atkIfc.ARP(), time.Second)
	sp.Poison(victim.Addr(), gw.Addr(), nil)
	clk.RunFor(100 * time.Millisecond)

	// Victim sends to an off-link destination; the frame goes to the
	// attacker's MAC and is diverted.
	_ = victim.Send(Packet{Dst: ipaddr.MustParse("8.8.8.8"), Proto: ProtoTCP, Payload: []byte("secret")})
	clk.Run()
	if len(diverted) != 1 || string(diverted[0].Payload) != "secret" {
		t.Fatalf("diverted = %v", diverted)
	}
	if attacker.Stats().Diverted != 1 {
		t.Fatalf("Diverted stat = %d, want 1", attacker.Stats().Diverted)
	}
}

func TestDivertFalseFallsThroughToForwarding(t *testing.T) {
	e := newWANEnv()
	// Make the router also a "divert-capable" host that declines.
	declined := 0
	e.router.Divert = func(p Packet) bool { declined++; return false }
	got := 0
	e.cloud.Handle(ProtoTCP, func(p Packet) { got++ })
	_ = e.device.Send(Packet{Dst: e.cloud.Addr(), Proto: ProtoTCP})
	e.clk.Run()
	if declined != 1 || got != 1 {
		t.Fatalf("declined=%d got=%d, want 1,1", declined, got)
	}
}

func TestUnhandledProtocolDropped(t *testing.T) {
	e := newLANEnv()
	_ = e.a.Send(Packet{Dst: e.b.Addr(), Proto: Protocol(99)})
	e.clk.Run()
	if e.b.Stats().Dropped == 0 {
		t.Fatal("packet for unhandled protocol should be dropped")
	}
}

func TestBadGatewayRejected(t *testing.T) {
	e := newLANEnv()
	if err := e.a.SetDefaultGateway(ipaddr.MustParse("10.9.9.9")); err == nil {
		t.Fatal("off-link gateway should be rejected")
	}
}

func TestAddIfaceBadCIDR(t *testing.T) {
	e := newLANEnv()
	if _, err := e.a.AddIface(e.seg, "bogus"); err == nil {
		t.Fatal("bad CIDR should be rejected")
	}
}
