package simtime_test

import (
	"fmt"
	"time"

	"repro/internal/simtime"
)

func ExampleClock() {
	clk := simtime.NewClock()
	clk.Schedule(2*time.Second, func() {
		fmt.Println("two seconds in, virtual time:", clk.Now())
	})
	tick := simtime.NewTicker(clk, time.Second, func() {
		fmt.Println("tick at", clk.Now())
	})
	clk.RunUntil(2 * time.Second)
	tick.Stop()
	// Output:
	// tick at 1s
	// two seconds in, virtual time: 2s
	// tick at 2s
}

func ExampleTimer_Stop() {
	clk := simtime.NewClock()
	t := clk.Schedule(time.Second, func() { fmt.Println("never runs") })
	fmt.Println("stopped:", t.Stop())
	clk.Run()
	fmt.Println("done at", clk.Now())
	// Output:
	// stopped: true
	// done at 0s
}
