package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestScheduleRunsInOrder(t *testing.T) {
	c := NewClock()
	var got []int
	c.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
}

func TestEqualTimestampsRunFIFO(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { got = append(got, i) })
	}
	c.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO order violated: got %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	c := NewClock()
	var at Time
	c.Schedule(42*time.Second, func() { at = c.Now() })
	c.Run()
	if at != 42*time.Second {
		t.Fatalf("event saw Now()=%v, want 42s", at)
	}
	if c.Now() != 42*time.Second {
		t.Fatalf("final Now()=%v, want 42s", c.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	c := NewClock()
	ran := false
	c.Schedule(time.Second, func() {
		c.Schedule(-5*time.Second, func() { ran = true })
	})
	c.Run()
	if !ran {
		t.Fatal("negative-delay callback did not run")
	}
	if c.Now() != time.Second {
		t.Fatalf("Now()=%v, want 1s (no time travel)", c.Now())
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	ran := false
	tm := c.Schedule(time.Second, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() should report false")
	}
	c.Run()
	if ran {
		t.Fatal("stopped timer still ran")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	c := NewClock()
	tm := c.Schedule(time.Second, func() {})
	c.Run()
	if tm.Active() {
		t.Fatal("timer active after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop() after firing should report false")
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	c := NewClock()
	var ran []string
	c.Schedule(time.Second, func() { ran = append(ran, "a") })
	c.Schedule(3*time.Second, func() { ran = append(ran, "b") })
	c.RunUntil(2 * time.Second)
	if len(ran) != 1 || ran[0] != "a" {
		t.Fatalf("ran = %v, want [a]", ran)
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now()=%v, want 2s", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending()=%d, want 1", c.Pending())
	}
	c.Run()
	if len(ran) != 2 {
		t.Fatalf("second event never ran: %v", ran)
	}
}

func TestRunForAdvancesExactly(t *testing.T) {
	c := NewClock()
	c.RunFor(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now()=%v, want 5s", c.Now())
	}
	c.RunFor(5 * time.Second)
	if c.Now() != 10*time.Second {
		t.Fatalf("Now()=%v, want 10s", c.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	c := NewClock()
	ran := false
	c.Schedule(2*time.Second, func() { ran = true })
	c.RunUntil(2 * time.Second)
	if !ran {
		t.Fatal("event exactly at boundary should run")
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			c.Schedule(time.Millisecond, rec)
		}
	}
	c.Schedule(0, rec)
	c.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if c.Now() != 99*time.Millisecond {
		t.Fatalf("Now()=%v, want 99ms", c.Now())
	}
}

func TestNextEventAt(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty clock should report false")
	}
	tm := c.Schedule(7*time.Second, func() {})
	when, ok := c.NextEventAt()
	if !ok || when != 7*time.Second {
		t.Fatalf("NextEventAt = %v,%v want 7s,true", when, ok)
	}
	tm.Stop()
	if _, ok := c.NextEventAt(); ok {
		t.Fatal("NextEventAt should skip cancelled events")
	}
}

func TestStepLimitPanics(t *testing.T) {
	c := NewClock()
	c.SetStepLimit(10)
	var loop func()
	loop = func() { c.Schedule(0, loop) }
	c.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from step limit")
		}
	}()
	c.Run()
}

func TestAtNilCallbackPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	c.At(0, nil)
}

func TestTickerFiresPeriodically(t *testing.T) {
	c := NewClock()
	var fires []Time
	tk := NewTicker(c, 10*time.Second, func() { fires = append(fires, c.Now()) })
	c.RunUntil(35 * time.Second)
	tk.Stop()
	c.RunUntil(100 * time.Second)
	if len(fires) != 3 {
		t.Fatalf("fires = %v, want 3 at 10s,20s,30s", fires)
	}
	for i, want := range []Time{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		if fires[i] != want {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want)
		}
	}
}

func TestTickerReset(t *testing.T) {
	c := NewClock()
	var fires []Time
	tk := NewTicker(c, 10*time.Second, func() { fires = append(fires, c.Now()) })
	c.RunUntil(5 * time.Second)
	tk.Reset() // next fire at 15s, not 10s
	c.RunUntil(16 * time.Second)
	tk.Stop()
	if len(fires) != 1 || fires[0] != 15*time.Second {
		t.Fatalf("fires = %v, want [15s]", fires)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	c := NewClock()
	n := 0
	var tk *Ticker
	tk = NewTicker(c, time.Second, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	NewTicker(NewClock(), 0, func() {})
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRandDuration(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		d := r.Duration(time.Second)
		if d < 0 || d >= time.Second {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if r.Duration(0) != 0 {
		t.Fatal("Duration(0) should be 0")
	}
	if r.Duration(-time.Second) != 0 {
		t.Fatal("negative Duration should be 0")
	}
}

func TestRandDurationRange(t *testing.T) {
	r := NewRand(2)
	lo, hi := 2*time.Second, 5*time.Second
	for i := 0; i < 1000; i++ {
		d := r.DurationRange(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("DurationRange out of [%v,%v): %v", lo, hi, d)
		}
	}
	if got := r.DurationRange(hi, lo); got != hi {
		t.Fatalf("inverted range should return lo bound, got %v", got)
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(3)
	base := 10 * time.Second
	for i := 0; i < 1000; i++ {
		d := r.Jitter(base, 0.1)
		if d < 9*time.Second || d > 11*time.Second {
			t.Fatalf("Jitter out of bounds: %v", d)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero jitter factor should return base")
	}
}

// Property: for any set of non-negative delays, events run in sorted order
// and the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock()
		var seen []Time
		for _, d := range delays {
			c.Schedule(time.Duration(d)*time.Millisecond, func() {
				seen = append(seen, c.Now())
			})
		}
		c.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(t) never advances past t and executes exactly the
// events with timestamps <= t.
func TestPropertyRunUntil(t *testing.T) {
	f := func(delays []uint16, cutMS uint16) bool {
		c := NewClock()
		cut := time.Duration(cutMS) * time.Millisecond
		ran := 0
		wantRan := 0
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			if dd <= cut {
				wantRan++
			}
			c.Schedule(dd, func() { ran++ })
		}
		c.RunUntil(cut)
		return ran == wantRan && c.Now() == cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCountsUncancelled(t *testing.T) {
	c := NewClock()
	t1 := c.Schedule(time.Second, func() {})
	c.Schedule(2*time.Second, func() {})
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", c.Pending())
	}
	t1.Stop()
	if c.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", c.Pending())
	}
	c.Run()
	if c.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", c.Pending())
	}
}

func TestSetStepLimitZeroRestoresDefault(t *testing.T) {
	c := NewClock()
	c.SetStepLimit(5)
	c.SetStepLimit(0) // back to the default guard
	for i := 0; i < 100; i++ {
		c.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	c.Run() // must not panic under the restored default
}

func TestTickerPeriodAccessor(t *testing.T) {
	c := NewClock()
	tk := NewTicker(c, 7*time.Second, func() {})
	if tk.Period() != 7*time.Second {
		t.Fatalf("Period = %v", tk.Period())
	}
	tk.Stop()
	tk.Reset() // reset after stop is a no-op
	c.RunFor(20 * time.Second)
}
