package simtime

import (
	"testing"
	"time"
)

// BenchmarkTimerChurn models the Stop+Schedule rearm pattern over a fleet
// of connections: each operation cancels a pending timer and schedules a
// replacement, with the clock advancing once per sweep so deadlines pass
// and the queue reaches steady state. Before index-tracked removal,
// cancelled events lingered as heap tombstones that every subsequent
// O(log n) push/pop paid for; with true removal the heap holds only live
// events.
func BenchmarkTimerChurn(b *testing.B) {
	clk := NewClock()
	const conns = 1024
	nop := func() {}
	timers := make([]*Timer, conns)
	for i := range timers {
		timers[i] = clk.Schedule(10*time.Millisecond, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % conns
		timers[j].Stop()
		timers[j] = clk.Schedule(10*time.Millisecond, nop)
		if j == conns-1 {
			clk.RunFor(time.Millisecond)
		}
	}
}

// BenchmarkTimerReset is BenchmarkTimerChurn on the alloc-free path: the
// same fleet of deadlines, each rearmed in place instead of being
// cancelled and replaced. This is the upgraded idiom every protocol
// rearm site (RTO, keep-alive, broker deadline) now uses.
func BenchmarkTimerReset(b *testing.B) {
	clk := NewClock()
	const conns = 1024
	nop := func() {}
	timers := make([]*Timer, conns)
	for i := range timers {
		timers[i] = clk.NewTimer(nop)
		timers[i].Reset(10 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % conns
		timers[j].Reset(10 * time.Millisecond)
		if j == conns-1 {
			clk.RunFor(time.Millisecond)
		}
	}
}
