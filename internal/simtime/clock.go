// Package simtime provides a deterministic discrete-event virtual clock.
//
// All simulation components schedule callbacks on a Clock instead of using
// real time. Events execute in strict timestamp order (FIFO among equal
// timestamps), so a simulation run is reproducible bit-for-bit and hours of
// virtual time execute in milliseconds of wall time.
//
// The Clock is intentionally single-threaded: callbacks run on the goroutine
// that calls Step, Run, RunUntil or RunFor. Simulation code therefore needs
// no locking, which both simplifies the protocol state machines built on top
// and guarantees determinism.
package simtime

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Time is an instant of virtual time, measured as an offset from the start
// of the simulation.
type Time = time.Duration

// Clock is a virtual clock with an event queue. The zero value is not
// usable; create one with NewClock.
type Clock struct {
	now      Time
	events   eventHeap
	seq      uint64
	inEvent  bool
	maxSteps uint64
	// steps counts events executed since the current Run/RunUntil call
	// began; it is reset at the start of each call so the runaway guard
	// bounds one call, not the clock's lifetime.
	steps   uint64
	running bool

	// Instrumentation handles; nil (no-op) until Instrument is called.
	mEvents   *obs.Counter
	mRuns     *obs.Counter
	mQueueHWM *obs.Gauge
	mRunSteps *obs.Histogram
}

// NewClock returns a Clock starting at virtual time zero.
func NewClock() *Clock {
	return &Clock{maxSteps: defaultMaxSteps}
}

// defaultMaxSteps bounds a single Run call as a guard against runaway event
// loops (e.g. two components rescheduling each other at the same instant).
const defaultMaxSteps = 200_000_000

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Instrument registers the clock's metrics with reg and starts updating
// them:
//
//	simtime_events_total     counter — events executed
//	simtime_runs_total       counter — Run/RunUntil/RunFor calls
//	simtime_run_steps        histogram — events executed per run call
//	simtime_queue_depth      gauge — pending events (Max is the high-water
//	                         mark; the value updates on schedule and at the
//	                         end of each run call, not on every pop)
//
// The hot-path cost is one counter increment per event and one gauge
// update per schedule; see BenchmarkClockInstrumentationOverhead.
func (c *Clock) Instrument(reg *obs.Registry) {
	c.mEvents = reg.Counter("simtime_events_total")
	c.mRuns = reg.Counter("simtime_runs_total")
	c.mQueueHWM = reg.Gauge("simtime_queue_depth")
	c.mRunSteps = reg.Histogram("simtime_run_steps", obs.CountBuckets)
}

// SetStepLimit overrides the runaway-loop guard. A limit of 0 restores the
// default.
func (c *Clock) SetStepLimit(n uint64) {
	if n == 0 {
		n = defaultMaxSteps
	}
	c.maxSteps = n
}

// Schedule runs fn after delay d. A non-positive delay schedules fn at the
// current instant; it still runs after the current callback returns.
// The returned Timer may be used to cancel the callback.
func (c *Clock) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// At runs fn at virtual time t. If t is in the past it runs at the current
// instant.
func (c *Clock) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	if t < c.now {
		t = c.now
	}
	ev := &event{when: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, ev)
	c.mQueueHWM.Set(int64(len(c.events)))
	return &Timer{clock: c, ev: ev}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
//
// A caller-driven Step loop is bounded by the caller, so each standalone
// Step call restarts the runaway-guard window.
func (c *Clock) Step() bool {
	if !c.running {
		c.steps = 0
	}
	return c.step()
}

func (c *Clock) step() bool {
	for c.events.Len() > 0 {
		ev, ok := heap.Pop(&c.events).(*event)
		if !ok {
			panic("simtime: corrupt event heap")
		}
		if ev.cancelled {
			continue
		}
		c.now = ev.when
		c.runEvent(ev)
		return true
	}
	return false
}

// startRun opens a runaway-guard window: the step counter restarts so the
// limit bounds this call, not the clock's lifetime.
func (c *Clock) startRun() {
	c.steps = 0
	c.running = true
}

func (c *Clock) finishRun() {
	c.running = false
	c.mRuns.Inc()
	c.mRunSteps.Observe(float64(c.steps))
	// Depth only grows on push, so the high-water mark is maintained there;
	// the current value is refreshed here, off the per-event path.
	c.mQueueHWM.Set(int64(len(c.events)))
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	c.startRun()
	defer c.finishRun()
	for c.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled after t remain pending.
func (c *Clock) RunUntil(t Time) {
	c.startRun()
	defer c.finishRun()
	for {
		ev := c.peek()
		if ev == nil || ev.when > t {
			break
		}
		c.step()
	}
	if t > c.now {
		c.now = t
	}
}

// RunFor executes events within the next d of virtual time, then advances
// the clock by exactly d from its value at the call.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.now + d)
}

// Pending reports the number of scheduled, uncancelled events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// NextEventAt returns the timestamp of the next pending event and whether
// one exists.
func (c *Clock) NextEventAt() (Time, bool) {
	ev := c.peek()
	if ev == nil {
		return 0, false
	}
	return ev.when, true
}

func (c *Clock) peek() *event {
	for c.events.Len() > 0 {
		ev := c.events[0]
		if ev.cancelled {
			heap.Pop(&c.events)
			continue
		}
		return ev
	}
	return nil
}

func (c *Clock) runEvent(ev *event) {
	c.steps++
	c.mEvents.Inc()
	if c.steps > c.maxSteps {
		panic(fmt.Sprintf("simtime: step limit %d exceeded at t=%v (runaway event loop?)", c.maxSteps, c.now))
	}
	if c.inEvent {
		panic("simtime: reentrant event execution")
	}
	c.inEvent = true
	defer func() { c.inEvent = false }()
	ev.fn()
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	clock *Clock
	ev    *event
}

// Stop cancels the callback. It reports whether the callback was still
// pending (false if it already ran or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.cancelled = true
	return true
}

// When returns the virtual time the callback is (or was) scheduled for,
// or 0 on a nil or zero Timer (mirroring Stop and Active's nil guards).
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.when
}

// Active reports whether the callback is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.done
}

type event struct {
	when      Time
	seq       uint64
	fn        func()
	cancelled bool
	done      bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("simtime: push of non-event")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.done = true
	return ev
}
