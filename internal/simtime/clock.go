// Package simtime provides a deterministic discrete-event virtual clock.
//
// All simulation components schedule callbacks on a Clock instead of using
// real time. Events execute in strict timestamp order (FIFO among equal
// timestamps), so a simulation run is reproducible bit-for-bit and hours of
// virtual time execute in milliseconds of wall time.
//
// The Clock is intentionally single-threaded: callbacks run on the goroutine
// that calls Step, Run, RunUntil or RunFor. Simulation code therefore needs
// no locking, which both simplifies the protocol state machines built on top
// and guarantees determinism.
package simtime

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Time is an instant of virtual time, measured as an offset from the start
// of the simulation.
type Time = time.Duration

// Clock is a virtual clock with an event queue. The zero value is not
// usable; create one with NewClock.
type Clock struct {
	now      Time
	events   eventHeap
	seq      uint64
	inEvent  bool
	maxSteps uint64
	// steps counts events executed since the current Run/RunUntil call
	// began; it is reset at the start of each call so the runaway guard
	// bounds one call, not the clock's lifetime.
	steps   uint64
	running bool

	// Instrumentation handles; nil (no-op) until Instrument is called.
	mEvents   *obs.Counter
	mRuns     *obs.Counter
	mQueueHWM *obs.Gauge
	mRunSteps *obs.Histogram
}

// NewClock returns a Clock starting at virtual time zero.
func NewClock() *Clock {
	return &Clock{maxSteps: defaultMaxSteps}
}

// defaultMaxSteps bounds a single Run call as a guard against runaway event
// loops (e.g. two components rescheduling each other at the same instant).
const defaultMaxSteps = 200_000_000

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Instrument registers the clock's metrics with reg and starts updating
// them:
//
//	simtime_events_total     counter — events executed
//	simtime_runs_total       counter — Run/RunUntil/RunFor calls
//	simtime_run_steps        histogram — events executed per run call
//	simtime_queue_depth      gauge — live scheduled events (Max is the
//	                         high-water mark; the value updates on
//	                         schedule, stop/reset and at the end of each
//	                         run call, not on every pop)
//
// Stopped timers leave the heap immediately, so the gauge never counts
// cancelled events — a fleet that schedules and stops N keep-alive
// deadlines reports the live residue, not N.
//
// The hot-path cost is one counter increment per event and one gauge
// update per schedule; see BenchmarkClockInstrumentationOverhead.
func (c *Clock) Instrument(reg *obs.Registry) {
	c.mEvents = reg.Counter("simtime_events_total")
	c.mRuns = reg.Counter("simtime_runs_total")
	c.mQueueHWM = reg.Gauge("simtime_queue_depth")
	c.mRunSteps = reg.Histogram("simtime_run_steps", obs.CountBuckets)
}

// Reset returns the clock to its freshly constructed state — virtual time
// zero, an empty queue, the default step limit — while keeping the queue's
// backing array. Every pending event is cancelled: its Timer reports
// inactive and may be rearmed against the reset clock (the event
// allocation survives, exactly as after Stop). Instrumentation handles are
// dropped; call Instrument again once the registry has been reset. A reset
// clock behaves byte-identically to NewClock().
func (c *Clock) Reset() {
	if c.inEvent {
		panic("simtime: Reset during event execution")
	}
	// Invalidate each pending event's heap index before truncating, so a
	// later Timer.Reset re-pushes instead of fixing a stale position, and
	// nil the slots so the retained array pins nothing.
	for i, ev := range c.events {
		ev.index = -1
		c.events[i] = nil
	}
	c.events = c.events[:0]
	c.now = 0
	c.seq = 0
	c.steps = 0
	c.running = false
	c.maxSteps = defaultMaxSteps
	c.mEvents, c.mRuns, c.mQueueHWM, c.mRunSteps = nil, nil, nil, nil
}

// SetStepLimit overrides the runaway-loop guard. A limit of 0 restores the
// default.
func (c *Clock) SetStepLimit(n uint64) {
	if n == 0 {
		n = defaultMaxSteps
	}
	c.maxSteps = n
}

// Schedule runs fn after delay d. A non-positive delay schedules fn at the
// current instant; it still runs after the current callback returns.
// The returned Timer may be used to cancel the callback.
func (c *Clock) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// At runs fn at virtual time t. If t is in the past it runs at the current
// instant.
func (c *Clock) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	if t < c.now {
		t = c.now
	}
	ev := &event{when: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, ev)
	c.mQueueHWM.Set(int64(len(c.events)))
	return &Timer{clock: c, ev: ev}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
//
// A caller-driven Step loop is bounded by the caller, so each standalone
// Step call restarts the runaway-guard window.
func (c *Clock) Step() bool {
	if !c.running {
		c.steps = 0
	}
	return c.step()
}

func (c *Clock) step() bool {
	if c.events.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&c.events).(*event)
	if !ok {
		panic("simtime: corrupt event heap")
	}
	c.now = ev.when
	c.runEvent(ev)
	return true
}

// startRun opens a runaway-guard window: the step counter restarts so the
// limit bounds this call, not the clock's lifetime.
func (c *Clock) startRun() {
	c.steps = 0
	c.running = true
}

func (c *Clock) finishRun() {
	c.running = false
	c.mRuns.Inc()
	c.mRunSteps.Observe(float64(c.steps))
	// Depth only grows on push, so the high-water mark is maintained there
	// (and on stop/reset); the current value is refreshed here, off the
	// per-event pop path.
	c.mQueueHWM.Set(int64(len(c.events)))
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	c.startRun()
	defer c.finishRun()
	for c.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled after t remain pending.
func (c *Clock) RunUntil(t Time) {
	c.startRun()
	defer c.finishRun()
	for {
		ev := c.peek()
		if ev == nil || ev.when > t {
			break
		}
		c.step()
	}
	if t > c.now {
		c.now = t
	}
}

// RunFor executes events within the next d of virtual time, then advances
// the clock by exactly d from its value at the call.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.now + d)
}

// Pending reports the number of scheduled, uncancelled events. Stopped
// timers are removed from the heap eagerly, so this is the heap size —
// O(1), where it used to scan past tombstones.
func (c *Clock) Pending() int {
	return len(c.events)
}

// NextEventAt returns the timestamp of the next pending event and whether
// one exists.
func (c *Clock) NextEventAt() (Time, bool) {
	ev := c.peek()
	if ev == nil {
		return 0, false
	}
	return ev.when, true
}

func (c *Clock) peek() *event {
	if c.events.Len() == 0 {
		return nil
	}
	return c.events[0]
}

func (c *Clock) runEvent(ev *event) {
	c.steps++
	c.mEvents.Inc()
	if c.steps > c.maxSteps {
		panic(fmt.Sprintf("simtime: step limit %d exceeded at t=%v (runaway event loop?)", c.maxSteps, c.now))
	}
	if c.inEvent {
		panic("simtime: reentrant event execution")
	}
	c.inEvent = true
	defer func() { c.inEvent = false }()
	ev.fn()
}

// NewTimer returns an unarmed timer bound to fn. Reset (or ResetAt) arms
// it. The timer owns one event allocation for its whole life and every
// rearm reuses it, so steady-state rescheduling — an RTO rearmed on every
// ACK, a broker deadline pushed back on every packet — allocates nothing.
// See TestTimerResetSteadyStateAllocFree.
func (c *Clock) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("simtime: NewTimer called with nil callback")
	}
	return &Timer{clock: c, ev: &event{fn: fn, index: -1}}
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	clock *Clock
	ev    *event
}

// Stop cancels the callback. It reports whether the callback was still
// pending (false if it already ran or was already stopped).
//
// Stopping removes the event from the heap immediately (O(log n)) instead
// of tombstoning it, so churn-heavy workloads — every ACK rearming an RTO,
// every packet pushing back a keep-alive deadline — keep the heap at its
// live size rather than bloating every later push and pop.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	c := t.clock
	heap.Remove(&c.events, t.ev.index)
	c.mQueueHWM.Set(int64(len(c.events)))
	return true
}

// Reset reschedules the timer's callback to fire after delay d, reusing
// the timer's event allocation. It works on any timer — still pending
// (rescheduled in place via an O(log n) heap fix), already fired, stopped,
// or fresh from NewTimer (re-armed) — and reports whether the timer was
// still pending, mirroring time.Timer.Reset.
//
// A non-positive delay schedules the callback at the current instant; it
// still runs after the current callback returns. Ordering matches a
// Stop-then-Schedule pair exactly: the rearmed event goes behind every
// event already scheduled for the same instant.
func (t *Timer) Reset(d time.Duration) bool {
	if t == nil || t.ev == nil {
		return false
	}
	if d < 0 {
		d = 0
	}
	return t.ResetAt(t.clock.now + d)
}

// ResetAt is Reset with an absolute virtual time: the callback fires at
// instant at (clamped to the current instant if in the past).
func (t *Timer) ResetAt(at Time) bool {
	if t == nil || t.ev == nil {
		return false
	}
	c := t.clock
	if at < c.now {
		at = c.now
	}
	ev := t.ev
	ev.when = at
	ev.seq = c.seq
	c.seq++
	if ev.index >= 0 {
		heap.Fix(&c.events, ev.index)
		return true
	}
	heap.Push(&c.events, ev)
	c.mQueueHWM.Set(int64(len(c.events)))
	return false
}

// When returns the virtual time the callback is (or was) scheduled for,
// or 0 on a nil or zero Timer (mirroring Stop and Active's nil guards).
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.when
}

// Active reports whether the callback is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && t.ev.index >= 0
}

type event struct {
	when Time
	seq  uint64
	fn   func()
	// index is the event's position in the clock's heap, maintained by the
	// heap callbacks; -1 when not scheduled (unarmed, ran, or stopped).
	// Tracking it is what lets Timer.Stop remove in O(log n) and
	// Timer.Reset rearm in place without allocating.
	index int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("simtime: push of non-event")
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.index = -1
	return ev
}
