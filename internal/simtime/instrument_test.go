package simtime

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// Regression: Clock.steps used to be cumulative for the clock's lifetime,
// so a long-lived lab driven by many small RunFor calls panicked once the
// *total* events crossed maxSteps, even though no single call looped. The
// guard must bound one call.
func TestStepLimitBoundsSingleRunNotLifetime(t *testing.T) {
	c := NewClock()
	c.SetStepLimit(100)
	executed := 0
	// 50 events per second of virtual time, 10 RunFor(1s) calls: 500
	// events total — 5x the limit — but never more than 50 in one call.
	for i := 0; i < 500; i++ {
		c.Schedule(time.Duration(i)*20*time.Millisecond, func() { executed++ })
	}
	for i := 0; i < 10; i++ {
		c.RunFor(time.Second) // must not panic
	}
	if executed != 500 {
		t.Fatalf("executed %d events, want 500", executed)
	}
}

// The guard still fires within one call.
func TestStepLimitStillGuardsOneCall(t *testing.T) {
	c := NewClock()
	c.SetStepLimit(100)
	for i := 0; i < 200; i++ {
		c.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: 200 events in one Run with limit 100")
		}
	}()
	c.Run()
}

// Caller-driven Step loops restart the guard window per call, so a manual
// loop can exceed the limit in total without tripping it.
func TestStepLimitResetsForManualStepLoops(t *testing.T) {
	c := NewClock()
	c.SetStepLimit(10)
	executed := 0
	for i := 0; i < 100; i++ {
		c.Schedule(time.Duration(i)*time.Millisecond, func() { executed++ })
	}
	for c.Step() { // must not panic
	}
	if executed != 100 {
		t.Fatalf("executed %d events, want 100", executed)
	}
}

func TestTimerNilSafety(t *testing.T) {
	var nilTimer *Timer
	if nilTimer.When() != 0 {
		t.Fatal("nil Timer When() should be 0")
	}
	if nilTimer.Stop() {
		t.Fatal("nil Timer Stop() should be false")
	}
	if nilTimer.Active() {
		t.Fatal("nil Timer Active() should be false")
	}
	var zero Timer
	if zero.When() != 0 {
		t.Fatal("zero Timer When() should be 0")
	}
	if zero.Stop() {
		t.Fatal("zero Timer Stop() should be false")
	}
	if zero.Active() {
		t.Fatal("zero Timer Active() should be false")
	}
}

func TestTimerWhenLiveTimer(t *testing.T) {
	c := NewClock()
	tm := c.Schedule(3*time.Second, func() {})
	if tm.When() != 3*time.Second {
		t.Fatalf("When() = %v, want 3s", tm.When())
	}
	c.Run()
	if tm.When() != 3*time.Second {
		t.Fatalf("When() after fire = %v, want 3s", tm.When())
	}
}

func TestClockInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewClock()
	c.Instrument(reg)
	for i := 0; i < 5; i++ {
		c.Schedule(time.Duration(i)*time.Second, func() {})
	}
	c.RunFor(10 * time.Second)
	c.Schedule(time.Second, func() {})
	c.Run()
	snap := reg.Snapshot()
	if got := snap.Counter("simtime_events_total"); got != 6 {
		t.Fatalf("events_total = %d, want 6", got)
	}
	if got := snap.Counter("simtime_runs_total"); got != 2 {
		t.Fatalf("runs_total = %d, want 2", got)
	}
	if g := snap.Gauge("simtime_queue_depth"); g.Max != 5 {
		t.Fatalf("queue_depth max = %d, want 5", g.Max)
	}
	if g := snap.Gauge("simtime_queue_depth"); g.Value != 0 {
		t.Fatalf("queue_depth value = %d, want 0 after drain", g.Value)
	}
	h, ok := snap.Histogram("simtime_run_steps")
	if !ok || h.Count != 2 || h.Sum != 6 {
		t.Fatalf("run_steps = %+v ok=%v, want 2 runs summing 6 steps", h, ok)
	}
}

func TestUninstrumentedClockUnaffected(t *testing.T) {
	c := NewClock()
	ran := 0
	c.Schedule(time.Second, func() { ran++ })
	c.Run()
	if ran != 1 {
		t.Fatal("uninstrumented clock failed to run events")
	}
}
