package simtime

import (
	"math/rand"
	"time"
)

// Rand is a deterministic random source for simulations. It wraps math/rand
// seeded explicitly so that every run with the same seed produces the same
// event sequence.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the source to the start of the given seed's sequence, in
// place. A reseeded Rand produces exactly the byte stream NewRand(seed)
// would, without the source allocation — the testbed arena reuses its
// generators across homes this way.
func (r *Rand) Reseed(seed int64) { r.r.Seed(seed) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Duration returns a uniform duration in [0, d). A non-positive d yields 0.
func (r *Rand) Duration(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(r.r.Int63n(int64(d)))
}

// DurationRange returns a uniform duration in [lo, hi). If hi <= lo it
// returns lo.
func (r *Rand) DurationRange(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + r.Duration(hi-lo)
}

// Jitter returns d perturbed by a uniform factor in [1-f, 1+f]. The factor
// f is clamped to [0, 1].
func (r *Rand) Jitter(d time.Duration, f float64) time.Duration {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	scale := 1 - f + 2*f*r.r.Float64()
	return time.Duration(float64(d) * scale)
}

// Bytes fills b with deterministic pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	if _, err := r.r.Read(b); err != nil {
		// math/rand.Read never fails; keep the check for interface hygiene.
		panic("simtime: rand read: " + err.Error())
	}
}
