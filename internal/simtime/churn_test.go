package simtime

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/obs"
)

// Regression test for the tombstone-accounting bug: the queue-depth gauge
// used to report len(heap) including cancelled events, so a workload that
// schedules and stops N timers looked like N queued events. Stopped timers
// now leave the heap immediately and the gauge tracks live events only.
func TestQueueDepthGaugeCountsLiveEventsOnly(t *testing.T) {
	c := NewClock()
	reg := obs.NewRegistry()
	c.Instrument(reg)

	timers := make([]*Timer, 10)
	for i := range timers {
		timers[i] = c.Schedule(time.Duration(i+1)*time.Second, func() {})
	}
	g := reg.Gauge("simtime_queue_depth")
	if g.Value() != 10 {
		t.Fatalf("gauge after 10 schedules = %d, want 10", g.Value())
	}
	for _, tm := range timers[:7] {
		tm.Stop()
	}
	if g.Value() != 3 {
		t.Fatalf("gauge after stopping 7 of 10 = %d, want 3 (tombstones must not count)", g.Value())
	}
	if g.Max() != 10 {
		t.Fatalf("gauge high-water mark = %d, want 10", g.Max())
	}
	c.Run()
	if g.Value() != 0 {
		t.Fatalf("gauge after drain = %d, want 0", g.Value())
	}
	if g.Max() != 10 {
		t.Fatalf("gauge high-water after drain = %d, want 10", g.Max())
	}
}

// Rearming in place must keep the gauge at the live count: a Reset of a
// pending timer neither grows nor shrinks the queue.
func TestQueueDepthGaugeStableAcrossReset(t *testing.T) {
	c := NewClock()
	reg := obs.NewRegistry()
	c.Instrument(reg)
	g := reg.Gauge("simtime_queue_depth")

	tm := c.Schedule(time.Second, func() {})
	c.Schedule(2*time.Second, func() {})
	for i := 0; i < 100; i++ {
		tm.Reset(time.Second)
		if g.Value() != 2 {
			t.Fatalf("gauge after reset %d = %d, want 2", i, g.Value())
		}
	}
	if g.Max() != 2 {
		t.Fatalf("gauge high-water = %d, want 2", g.Max())
	}
}

// Property: Pending() (now an O(1) length read) always equals the number
// of callbacks that a full Run still executes, across arbitrary
// schedule/stop/reset interleavings.
func TestPropertyPendingMatchesExecutedCallbacks(t *testing.T) {
	f := func(delays []uint16, stopMask, resetMask uint32) bool {
		c := NewClock()
		ran := 0
		timers := make([]*Timer, 0, len(delays))
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			timers = append(timers, c.Schedule(dd, func() { ran++ }))
		}
		live := len(timers)
		for i, tm := range timers {
			switch {
			case stopMask&(1<<(uint(i)%32)) != 0:
				tm.Stop()
				live--
			case resetMask&(1<<(uint(i)%32)) != 0:
				// A reset of a pending timer keeps it live.
				tm.Reset(time.Duration(i) * time.Millisecond)
			}
		}
		if c.Pending() != live {
			return false
		}
		c.Run()
		return ran == live && c.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The steady-state rescheduling paths — an RTO rearmed on every ACK, a
// broker deadline pushed back on every packet — must not allocate. Reset
// of a pending timer is a heap fix of the existing event; Reset of a fired
// timer re-pushes the same event into slack the drain just freed.
func TestTimerResetSteadyStateAllocFree(t *testing.T) {
	c := NewClock()
	reg := obs.NewRegistry()
	c.Instrument(reg)

	// Background events so the heap is non-trivial.
	for i := 0; i < 64; i++ {
		c.Schedule(time.Duration(i+1)*time.Hour, func() {})
	}

	pending := c.NewTimer(func() {})
	pending.Reset(30 * time.Minute)
	if n := testing.AllocsPerRun(1000, func() {
		pending.Reset(30 * time.Minute)
	}); n != 0 {
		t.Fatalf("Reset of a pending timer allocates %.1f per op, want 0", n)
	}

	fired := c.NewTimer(func() {})
	if n := testing.AllocsPerRun(1000, func() {
		fired.Reset(0)
		c.Step() // fires `fired`: it is the only event due now
	}); n != 0 {
		t.Fatalf("fire/rearm cycle allocates %.1f per op, want 0", n)
	}

	if n := testing.AllocsPerRun(1000, func() {
		pending.Stop()
		pending.Reset(30 * time.Minute)
	}); n != 0 {
		t.Fatalf("stop/rearm cycle allocates %.1f per op, want 0", n)
	}
}
