package simtime

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It owns a single reusable timer, so a long-running ticker (an ARP
// re-poisoning loop, an RTT-monitor poll) allocates once at creation and
// never again.
type Ticker struct {
	period time.Duration
	fn     func()
	timer  *Timer
	stop   bool
}

// NewTicker schedules fn every period, with the first invocation one period
// from now. It panics if period is not positive.
func NewTicker(c *Clock, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{period: period, fn: fn}
	t.timer = c.NewTimer(t.tick)
	t.timer.Reset(period)
	return t
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn()
	// fn may have stopped the ticker or rescheduled it via Reset; only
	// rearm when neither happened.
	if !t.stop && !t.timer.Active() {
		t.timer.Reset(t.period)
	}
}

// Stop cancels future invocations.
func (t *Ticker) Stop() {
	t.stop = true
	t.timer.Stop()
}

// Reset restarts the period from the current instant, delaying the next
// invocation to one full period from now.
func (t *Ticker) Reset() {
	if t.stop {
		return
	}
	t.timer.Reset(t.period)
}

// Period returns the ticker's period.
func (t *Ticker) Period() time.Duration { return t.period }
