package simtime

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
type Ticker struct {
	clock  *Clock
	period time.Duration
	fn     func()
	timer  *Timer
	stop   bool
}

// NewTicker schedules fn every period, with the first invocation one period
// from now. It panics if period is not positive.
func NewTicker(c *Clock, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.clock.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future invocations.
func (t *Ticker) Stop() {
	t.stop = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Reset restarts the period from the current instant, delaying the next
// invocation to one full period from now.
func (t *Ticker) Reset() {
	if t.stop {
		return
	}
	if t.timer != nil {
		t.timer.Stop()
	}
	t.arm()
}

// Period returns the ticker's period.
func (t *Ticker) Period() time.Duration { return t.period }
