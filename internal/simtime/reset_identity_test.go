package simtime

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// driveClockWorkload runs a canonical mix of timer traffic — rng-spread
// one-shots, a cancelled timer, a rescheduled timer, a ticker — and
// returns a fingerprint of everything observable: callback order with
// timestamps, the final clock position, a post-run RNG draw, and the full
// metrics snapshot including simtime_queue_depth's value and high-water
// mark.
func driveClockWorkload(t *testing.T, clk *Clock, rng *Rand, reg *obs.Registry) string {
	t.Helper()
	clk.Instrument(reg)
	var fired []string
	for i := 0; i < 8; i++ {
		i := i
		d := time.Duration(100+rng.Intn(900)) * time.Millisecond
		clk.Schedule(d, func() { fired = append(fired, fmt.Sprintf("t%d@%v", i, clk.Now())) })
	}
	clk.Schedule(50*time.Millisecond, func() { fired = append(fired, "cancelled") }).Stop()
	re := clk.Schedule(10*time.Millisecond, func() { fired = append(fired, fmt.Sprintf("re@%v", clk.Now())) })
	re.Reset(700 * time.Millisecond)
	tk := NewTicker(clk, 250*time.Millisecond, func() { fired = append(fired, fmt.Sprintf("tick@%v", clk.Now())) })
	clk.RunFor(time.Second)
	tk.Stop()
	clk.RunFor(500 * time.Millisecond)
	snap, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("fired=%v now=%v draw=%d snap=%s", fired, clk.Now(), rng.Intn(1<<30), snap)
}

// TestClockResetByteIdentity is simtime's slice of the arena contract: a
// clock, generator and registry recycled mid-flight — one-shot timers and
// a live ticker still pending — must replay a workload byte-identically to
// freshly constructed ones.
func TestClockResetByteIdentity(t *testing.T) {
	fresh := driveClockWorkload(t, NewClock(), NewRand(42), obs.NewRegistry())

	clk, rng, reg := NewClock(), NewRand(7), obs.NewRegistry()
	clk.Instrument(reg)
	for i := 0; i < 5; i++ {
		clk.Schedule(time.Duration(i+1)*time.Hour, func() {})
	}
	NewTicker(clk, time.Second, func() {})
	clk.RunFor(3500 * time.Millisecond) // one-shots and ticker still pending

	clk.Reset()
	reg.Reset()
	rng.Reseed(42)
	if got := driveClockWorkload(t, clk, rng, reg); got != fresh {
		t.Errorf("recycled clock diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}
}

// TestClockResetQueueDrained proves pending events at Reset leave no
// tombstones behind: stale Timer handles are inert against the recycled
// clock and never touch the queue-depth gauge, whose high-water mark after
// a reset reflects only newly scheduled work.
func TestClockResetQueueDrained(t *testing.T) {
	clk, reg := NewClock(), obs.NewRegistry()
	clk.Instrument(reg)
	var stale []*Timer
	for i := 0; i < 16; i++ {
		stale = append(stale, clk.Schedule(time.Duration(i+1)*time.Minute, func() {}))
	}
	clk.RunFor(time.Second)

	clk.Reset()
	reg.Reset()
	clk.Instrument(reg)
	clk.Schedule(time.Second, func() {})
	for _, tm := range stale {
		if tm.Stop() {
			t.Error("stale timer reported active after Reset")
		}
	}
	clk.Run()
	for _, g := range reg.Snapshot().Gauges {
		if g.Name != "simtime_queue_depth" {
			continue
		}
		if g.Value != 0 {
			t.Fatalf("simtime_queue_depth after drained run = %d, want 0", g.Value)
		}
		if g.Max != 1 {
			t.Fatalf("simtime_queue_depth high-water mark = %d, want 1 (stale handles must not touch the gauge)", g.Max)
		}
	}
}

// TestRandReseedByteIdentity pins the property every pooled generator in
// the testbed arena leans on: Reseed rewinds a Rand, in place, to exactly
// the stream NewRand would produce for that seed — across every draw kind.
func TestRandReseedByteIdentity(t *testing.T) {
	recycled := NewRand(7)
	for i := 0; i < 100; i++ {
		recycled.Int63()
	}
	recycled.Reseed(1234)
	fresh := NewRand(1234)
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if a, b := fresh.Intn(1000), recycled.Intn(1000); a != b {
				t.Fatalf("draw %d: Intn %d != %d", i, a, b)
			}
		case 1:
			if a, b := fresh.Float64(), recycled.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, a, b)
			}
		case 2:
			if a, b := fresh.Duration(time.Hour), recycled.Duration(time.Hour); a != b {
				t.Fatalf("draw %d: Duration %v != %v", i, a, b)
			}
		case 3:
			var ba, bb [8]byte
			fresh.Bytes(ba[:])
			recycled.Bytes(bb[:])
			if ba != bb {
				t.Fatalf("draw %d: Bytes %x != %x", i, ba, bb)
			}
		}
	}
}
