package hapsim

import (
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

type env struct {
	clk *simtime.Clock
	hub *Hub
	acc *Accessory
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)

	accIP := ipnet.NewStack(clk, nw.NewHost("accessory"))
	accIP.MustAddIface(seg, "192.168.1.10/24")
	hubIP := ipnet.NewStack(clk, nw.NewHost("homepod"))
	hubIP.MustAddIface(seg, "192.168.1.2/24")

	accTCP := tcpsim.NewStack(clk, accIP, tcpsim.Config{}, 7)
	hubTCP := tcpsim.NewStack(clk, hubIP, tcpsim.Config{}, 8)

	rng := simtime.NewRand(99)
	hub := NewHub(clk)
	if _, err := hubTCP.Listen(8443, func(c *tcpsim.Conn) {
		hub.Accept(tlssim.Server(c, rng))
	}); err != nil {
		t.Fatal(err)
	}
	tcp := accTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.2"), Port: 8443})
	acc := NewAccessory(clk, tlssim.Client(tcp, rng), "aqara-contact-1")
	clk.RunFor(time.Second)
	if !acc.Ready() || !hub.Connected("aqara-contact-1") {
		t.Fatal("accessory did not pair with hub")
	}
	return &env{clk: clk, hub: hub, acc: acc}
}

func TestEventDelivery(t *testing.T) {
	e := newEnv(t)
	var events []Message
	e.hub.OnEvent = func(id string, m Message) {
		if id != "aqara-contact-1" {
			t.Fatalf("event from %q", id)
		}
		events = append(events, m)
	}
	if err := e.acc.SendEvent("contact", "open", 1345); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(events) != 1 || events[0].Characteristic != "contact" || events[0].Value != "open" {
		t.Fatalf("events = %v", events)
	}
}

func TestEventsHaveNoAcknowledgement(t *testing.T) {
	// The hub never responds to events: the accessory's TCP stream sees
	// only TCP ACKs, no application records back.
	e := newEnv(t)
	e.hub.OnEvent = func(string, Message) {}
	gotAppData := 0
	e.acc.Session().OnMessage = func([]byte) { gotAppData++ }
	for i := 0; i < 5; i++ {
		if err := e.acc.SendEvent("motion", "active", 0); err != nil {
			t.Fatal(err)
		}
	}
	e.clk.RunFor(time.Minute)
	if gotAppData != 0 {
		t.Fatalf("accessory received %d app messages for its events, want 0", gotAppData)
	}
}

func TestUnboundedEventDelayRaisesNothing(t *testing.T) {
	// Hold an event for 8 virtual hours, then deliver: the hub accepts it
	// and no alarms exist anywhere — Table II's "∞" rows.
	e := newEnv(t)
	var got []Message
	e.hub.OnEvent = func(_ string, m Message) { got = append(got, m) }
	rec := func() []byte {
		m := Message{
			Type:           MsgEvent,
			AccessoryID:    "aqara-contact-1",
			Characteristic: "contact",
			Value:          "open",
			Timestamp:      e.clk.Now(),
		}
		return m.Marshal(0)
	}()
	e.clk.Schedule(8*time.Hour, func() {
		sess := e.acc.Session()
		_ = sess.Send(rec)
	})
	e.clk.RunFor(9 * time.Hour)
	if len(got) != 1 {
		t.Fatalf("delayed event not accepted: %v", got)
	}
	if e.hub.AlarmCount() != 0 {
		t.Fatalf("alarms = %v, want none", e.hub.Alarms())
	}
}

func TestCommandRoundTrip(t *testing.T) {
	e := newEnv(t)
	var gotCmd Message
	e.acc.OnCommand = func(m Message) { gotCmd = m }
	var res CommandResult
	if err := e.hub.Command("aqara-contact-1", "identify", "1", 128, func(r CommandResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if gotCmd.Characteristic != "identify" || gotCmd.Value != "1" {
		t.Fatalf("accessory got %v", gotCmd)
	}
	if !res.Acked {
		t.Fatal("command not acked")
	}
}

func TestCommandTimeoutAlarm(t *testing.T) {
	e := newEnv(t)
	e.acc.Session().OnMessage = func([]byte) {} // accessory goes deaf
	var res CommandResult
	gotRes := false
	if err := e.hub.Command("aqara-contact-1", "identify", "1", 0, func(r CommandResult) { res, gotRes = r, true }); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Minute)
	if !gotRes || res.Acked {
		t.Fatalf("res=%+v, want unacked", res)
	}
	if res.Duration != e.hub.CommandTimeout {
		t.Fatalf("timeout after %v, want %v", res.Duration, e.hub.CommandTimeout)
	}
	if e.hub.alarms.CountKind("no-response") != 1 {
		t.Fatalf("alarms = %v", e.hub.Alarms())
	}
}

func TestCommandToUnknownAccessoryFails(t *testing.T) {
	e := newEnv(t)
	if err := e.hub.Command("ghost", "x", "y", 0, nil); err == nil {
		t.Fatal("command to unknown accessory should fail")
	}
}

func TestSilentDisappearanceUnnoticed(t *testing.T) {
	// Finding 3 in the local setting: an accessory that vanishes without a
	// TCP-visible close is never noticed until a command is attempted.
	e := newEnv(t)
	e.acc.Session().OnMessage = func([]byte) {}
	e.clk.RunFor(time.Hour)
	if e.hub.AlarmCount() != 0 {
		t.Fatalf("alarms = %v, want none before any command", e.hub.Alarms())
	}
	if !e.hub.Connected("aqara-contact-1") {
		t.Fatal("hub should still believe the accessory is online")
	}
}

func TestGracefulCloseRemovesSession(t *testing.T) {
	e := newEnv(t)
	e.acc.Close()
	e.clk.RunFor(time.Second)
	if e.hub.Connected("aqara-contact-1") {
		t.Fatal("session should be gone after close")
	}
	if err := e.acc.SendEvent("contact", "open", 0); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	tests := []Message{
		{Type: MsgHello, AccessoryID: "acc-1", Timestamp: time.Second},
		{Type: MsgEvent, AccessoryID: "acc-1", Characteristic: "contact", Value: "open", Timestamp: 2 * time.Second},
		{Type: MsgCommand, ID: 5, Characteristic: "on", Value: "true"},
		{Type: MsgCommandResp, ID: 5},
	}
	for _, want := range tests {
		got, err := Unmarshal(want.Marshal(64))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{0xee}); err == nil {
		t.Fatal("garbage should fail")
	}
}
