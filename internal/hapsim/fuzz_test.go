package hapsim

import "testing"

// FuzzUnmarshal: arbitrary bytes must never panic the message decoder.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Message{Type: MsgHello, AccessoryID: "a"}.Marshal(0))
	f.Add(Message{Type: MsgEvent, AccessoryID: "a", Characteristic: "c", Value: "v"}.Marshal(64))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		if _, err := Unmarshal(m.Marshal(0)); err != nil {
			t.Fatalf("re-encode of %+v failed: %v", m, err)
		}
	})
}
