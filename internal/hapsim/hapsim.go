// Package hapsim implements a HomeKit-Accessory-Protocol-like local
// protocol between accessories and a hub (e.g. a HomePod).
//
// Its security-relevant property, per the paper's Table II discussion and
// Section VII: event messages are pushed without any acknowledgement, so
// an attacker can delay them with an effectively unbounded window — the
// hub cannot distinguish a delayed accessory from a quiet one. Commands do
// get responses, bounded by the hub's per-command timeout, and a failed
// command is the only way the hub ever notices anything ("No Response").
package hapsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tlssim"
	"repro/internal/wire"
)

// MsgType identifies a HAP-like message.
type MsgType uint8

// Message kinds.
const (
	MsgHello MsgType = iota + 1
	MsgEvent
	MsgCommand
	MsgCommandResp
)

// Message is one protocol message.
type Message struct {
	Type MsgType
	// AccessoryID travels in Hello.
	AccessoryID string
	// ID correlates Command and CommandResp.
	ID uint16
	// Characteristic and Value travel in Event and Command.
	Characteristic string
	Value          string
	// Timestamp is the sender's generation time.
	Timestamp simtime.Time
}

// ErrBadMessage reports an undecodable message.
var ErrBadMessage = errors.New("hapsim: bad message")

// Marshal encodes the message padded to at least padTo bytes.
func (m Message) Marshal(padTo int) []byte {
	w := wire.NewWriter(32)
	w.U8(uint8(m.Type))
	w.String(m.AccessoryID)
	w.U16(m.ID)
	w.String(m.Characteristic)
	w.String(m.Value)
	w.U64(uint64(m.Timestamp))
	w.PadTo(padTo)
	return w.Bytes()
}

// Unmarshal decodes a message, ignoring trailing padding.
func Unmarshal(b []byte) (Message, error) {
	r := wire.NewReader(b)
	var m Message
	m.Type = MsgType(r.U8())
	m.AccessoryID = r.String()
	m.ID = r.U16()
	m.Characteristic = r.String()
	m.Value = r.String()
	m.Timestamp = simtime.Time(r.U64())
	if r.Err() != nil || m.Type < MsgHello || m.Type > MsgCommandResp {
		return Message{}, ErrBadMessage
	}
	return m, nil
}

// Accessory is the device side of a HAP session.
type Accessory struct {
	clk         *simtime.Clock
	sess        *tlssim.Conn
	accessoryID string
	ready       bool
	closed      bool

	// OnReady fires once the session is usable.
	OnReady func()
	// OnCommand delivers hub commands; the response is sent automatically
	// before the callback runs.
	OnCommand func(Message)
	// OnClosed fires exactly once when the session ends.
	OnClosed func(proto.CloseReason)
}

// NewAccessory attaches an accessory to a TLS session toward the hub and
// announces itself once established.
func NewAccessory(clk *simtime.Clock, sess *tlssim.Conn, accessoryID string) *Accessory {
	a := &Accessory{clk: clk, sess: sess, accessoryID: accessoryID}
	sess.OnMessage = a.onMessage
	sess.OnClose = func(error) { a.teardown(proto.ReasonTransport) }
	hello := func() {
		_ = sess.Send(Message{Type: MsgHello, AccessoryID: accessoryID, Timestamp: clk.Now()}.Marshal(0))
		a.ready = true
		if a.OnReady != nil {
			a.OnReady()
		}
	}
	if sess.Established() {
		hello()
	} else {
		sess.OnEstablished = hello
	}
	return a
}

// Ready reports whether the session is usable.
func (a *Accessory) Ready() bool { return a.ready && !a.closed }

// Session returns the underlying TLS connection.
func (a *Accessory) Session() *tlssim.Conn { return a.sess }

// SendEvent pushes a characteristic change to the hub. No acknowledgement
// exists; the call succeeds as soon as the record is written.
func (a *Accessory) SendEvent(characteristic, value string, padTo int) error {
	if !a.Ready() {
		return fmt.Errorf("hapsim: accessory %s not ready", a.accessoryID)
	}
	m := Message{
		Type:           MsgEvent,
		AccessoryID:    a.accessoryID,
		Characteristic: characteristic,
		Value:          value,
		Timestamp:      a.clk.Now(),
	}
	return a.sess.Send(m.Marshal(padTo))
}

// Close ends the session gracefully.
func (a *Accessory) Close() {
	if a.closed {
		return
	}
	a.sess.Close()
	a.teardown(proto.ReasonGraceful)
}

func (a *Accessory) onMessage(b []byte) {
	m, err := Unmarshal(b)
	if err != nil {
		return
	}
	if m.Type != MsgCommand {
		return
	}
	resp := Message{
		Type:        MsgCommandResp,
		AccessoryID: a.accessoryID,
		ID:          m.ID,
		Timestamp:   a.clk.Now(),
	}
	_ = a.sess.Send(resp.Marshal(0))
	if a.OnCommand != nil {
		a.OnCommand(m)
	}
}

func (a *Accessory) teardown(reason proto.CloseReason) {
	if a.closed {
		return
	}
	a.closed = true
	a.ready = false
	if a.OnClosed != nil {
		a.OnClosed(reason)
	}
}

// CommandResult reports the outcome of a hub command.
type CommandResult struct {
	ID       uint16
	Acked    bool
	Duration time.Duration
}

// ErrNoAccessory reports a command for an unknown accessory.
var ErrNoAccessory = errors.New("hapsim: accessory has no live session")

// Hub is the local IoT server side (a HomePod-like controller).
type Hub struct {
	clk      *simtime.Clock
	sessions map[string]*hubSession
	pending  map[uint16]*pendingCommand
	nextID   uint16
	alarms   proto.AlarmLog

	// CommandTimeout bounds each command's wait for a response; expiry
	// raises a "no-response" alarm. Default 10s.
	CommandTimeout time.Duration
	// OnEvent delivers accessory events.
	OnEvent func(accessoryID string, m Message)
	// OnAlarm observes raised alarms.
	OnAlarm func(proto.Alarm)
}

type hubSession struct {
	sess        *tlssim.Conn
	accessoryID string
	closed      bool
}

type pendingCommand struct {
	sentAt simtime.Time
	timer  *simtime.Timer
	done   func(CommandResult)
}

// NewHub creates a local hub.
func NewHub(clk *simtime.Clock) *Hub {
	h := &Hub{
		clk:            clk,
		sessions:       make(map[string]*hubSession),
		pending:        make(map[uint16]*pendingCommand),
		nextID:         1,
		CommandTimeout: 10 * time.Second,
	}
	h.alarms.OnAlarm = func(a proto.Alarm) {
		if h.OnAlarm != nil {
			h.OnAlarm(a)
		}
	}
	return h
}

// Reset returns the hub to its freshly constructed state while keeping its
// allocations: sessions are dropped, pending command timers cancelled, the
// alarm log emptied (its internal relay to OnAlarm stays wired) and the
// observer hooks cleared for the owner to rewire. A reset hub behaves
// identically to NewHub(clk).
func (h *Hub) Reset() {
	clear(h.sessions)
	for _, pc := range h.pending {
		pc.timer.Stop()
	}
	clear(h.pending)
	h.nextID = 1
	h.alarms.Reset()
	h.CommandTimeout = 10 * time.Second
	h.OnEvent = nil
	h.OnAlarm = nil
}

// Accept attaches hub protocol handling to an inbound TLS session.
func (h *Hub) Accept(sess *tlssim.Conn) {
	hs := &hubSession{sess: sess}
	sess.OnMessage = func(b []byte) { h.onMessage(hs, b) }
	sess.OnClose = func(error) { h.onSessionClosed(hs) }
}

// Alarms returns the alarms raised so far.
func (h *Hub) Alarms() []proto.Alarm { return h.alarms.All() }

// AlarmCount returns the number of alarms raised so far.
func (h *Hub) AlarmCount() int { return h.alarms.Count() }

// Connected reports whether an accessory has a live session.
func (h *Hub) Connected(accessoryID string) bool {
	hs, ok := h.sessions[accessoryID]
	return ok && !hs.closed
}

// Command writes a characteristic on an accessory. done may be nil.
func (h *Hub) Command(accessoryID, characteristic, value string, padTo int, done func(CommandResult)) error {
	hs, ok := h.sessions[accessoryID]
	if !ok || hs.closed {
		return fmt.Errorf("%w: %s", ErrNoAccessory, accessoryID)
	}
	id := h.nextID
	h.nextID++
	if h.nextID == 0 {
		h.nextID = 1
	}
	m := Message{
		Type:           MsgCommand,
		ID:             id,
		Characteristic: characteristic,
		Value:          value,
		Timestamp:      h.clk.Now(),
	}
	if err := hs.sess.Send(m.Marshal(padTo)); err != nil {
		return err
	}
	pc := &pendingCommand{sentAt: h.clk.Now(), done: done}
	h.pending[id] = pc
	pc.timer = h.clk.Schedule(h.CommandTimeout, func() {
		delete(h.pending, id)
		h.alarms.Raise(h.clk.Now(), accessoryID, "no-response", characteristic)
		if done != nil {
			done(CommandResult{ID: id, Acked: false, Duration: h.clk.Now() - pc.sentAt})
		}
	})
	return nil
}

func (h *Hub) onMessage(hs *hubSession, b []byte) {
	m, err := Unmarshal(b)
	if err != nil {
		return
	}
	switch m.Type {
	case MsgHello:
		hs.accessoryID = m.AccessoryID
		h.sessions[m.AccessoryID] = hs
	case MsgEvent:
		if h.OnEvent != nil {
			h.OnEvent(hs.accessoryID, m)
		}
	case MsgCommandResp:
		if pc, ok := h.pending[m.ID]; ok {
			delete(h.pending, m.ID)
			pc.timer.Stop()
			if pc.done != nil {
				pc.done(CommandResult{ID: m.ID, Acked: true, Duration: h.clk.Now() - pc.sentAt})
			}
		}
	}
}

func (h *Hub) onSessionClosed(hs *hubSession) {
	if hs.closed {
		return
	}
	hs.closed = true
	if hs.accessoryID != "" && h.sessions[hs.accessoryID] == hs {
		delete(h.sessions, hs.accessoryID)
	}
	// HomeKit raises no proactive offline alarm: absence is only noticed
	// when a command fails (Finding 3 in the local setting).
}
