package defense_test

import (
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/experiment"
)

// TestRTTMonitorDetectsTakeover: the extension defense. A clean session
// shows WAN-scale RTT; after a mid-session takeover the attacker's nearby
// ACKs collapse it, and the monitor (with a persisted baseline) alerts.
func TestRTTMonitorDetectsTakeover(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 95, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()

	// Clean phase: keep-alives produce RTT samples against the real cloud.
	conn := tb.Device("H3").TCPConn()
	if conn == nil {
		t.Fatal("no transport connection")
	}
	mon := defense.NewRTTMonitor(tb.Clock, conn)
	tb.Clock.RunFor(6 * time.Minute)
	baseline, ok := mon.Baseline()
	if !ok {
		t.Fatal("baseline never established")
	}
	// LAN 2ms + WAN 10ms each way, twice: about 24ms.
	if baseline < 20*time.Millisecond || baseline > 30*time.Millisecond {
		t.Fatalf("baseline = %v, want about 24ms (WAN-scale)", baseline)
	}
	if mon.Alerted() {
		t.Fatal("false positive on the clean session")
	}

	// The attacker strikes mid-session.
	h, err := tb.Hijack(atk, "C2")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TakeOver(); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(30 * time.Second) // reconnect lands on the attacker
	mon.Stop()

	newConn := tb.Device("H3").TCPConn()
	if newConn == nil || newConn == conn {
		t.Fatal("device did not reconnect onto a new transport connection")
	}
	// Firmware persists the baseline across reconnects.
	alerted := false
	mon2 := defense.NewRTTMonitor(tb.Clock, newConn)
	mon2.SetBaseline(baseline)
	mon2.OnAlert = func(base, cur time.Duration) {
		alerted = true
		if cur >= base/2 {
			t.Fatalf("alert with current %v not below half of baseline %v", cur, base)
		}
	}
	tb.Clock.RunFor(5 * time.Minute)
	if !alerted {
		srtt, n := defense.SRTTOf(newConn)
		t.Fatalf("takeover undetected: srtt=%v over %d samples, baseline=%v", srtt, n, baseline)
	}
}

// TestRTTMonitorNoFalsePositiveOnCleanReconnect: a device that reconnects
// without an attacker keeps WAN-scale RTT and must not alert.
func TestRTTMonitorNoFalsePositiveOnCleanReconnect(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 96, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	conn := tb.Device("H3").TCPConn()
	mon := defense.NewRTTMonitor(tb.Clock, conn)
	tb.Clock.RunFor(6 * time.Minute)
	baseline, ok := mon.Baseline()
	if !ok {
		t.Fatal("no baseline")
	}
	mon.Stop()

	// Clean reconnect (e.g. a router reboot): abort and let it re-dial.
	conn.Abort()
	tb.Clock.RunFor(30 * time.Second)
	newConn := tb.Device("H3").TCPConn()
	if newConn == nil {
		t.Fatal("device did not reconnect")
	}
	mon2 := defense.NewRTTMonitor(tb.Clock, newConn)
	mon2.SetBaseline(baseline)
	tb.Clock.RunFor(5 * time.Minute)
	if mon2.Alerted() {
		t.Fatal("false positive after a clean reconnect")
	}
}

// TestHardenProfileMonotone: hardening never widens any window.
func TestHardenProfileMonotone(t *testing.T) {
	for _, label := range []string{"H1", "H2", "H3", "CM1", "K2", "P2"} {
		p, err := lookup(label)
		if err != nil {
			t.Fatal(err)
		}
		loStock, hiStock, stockBounded := p.MaxEventDelay()
		for _, to := range []time.Duration{30 * time.Second, 10 * time.Second, 2 * time.Second} {
			lo, hi, bounded := defense.ResidualEventWindow(p, to)
			if !bounded {
				t.Fatalf("%s@%v: hardened window unbounded", label, to)
			}
			if stockBounded && (lo > loStock || hi > hiStock) {
				t.Fatalf("%s@%v: hardening widened window [%v,%v] beyond [%v,%v]",
					label, to, lo, hi, loStock, hiStock)
			}
			if hi > to {
				t.Fatalf("%s@%v: residual max %v exceeds the mandated timeout", label, to, hi)
			}
		}
	}
}

// TestKeepAliveTrafficInverseToPeriod: halving the interval doubles the
// bytes per hour.
func TestKeepAliveTrafficInverseToPeriod(t *testing.T) {
	p, err := lookup("H3")
	if err != nil {
		t.Fatal(err)
	}
	base := defense.KeepAliveTrafficPerHour(p)
	p.KeepAlivePeriod /= 2
	if got := defense.KeepAliveTrafficPerHour(p); got != 2*base {
		t.Fatalf("traffic at half period = %d, want %d", got, 2*base)
	}
	p.KeepAlivePeriod = 0
	if got := defense.KeepAliveTrafficPerHour(p); got != 0 {
		t.Fatalf("no keep-alive should cost nothing, got %d", got)
	}
}

// lookup resolves a catalog profile for the tests.
func lookup(label string) (device.Profile, error) { return device.Lookup(label) }
