// Package defense implements the paper's Section VII countermeasures and
// the analysis of their costs and limitations:
//
//   - Requiring per-message acknowledgements with a short timeout
//     (VII-A): shrinks the attack window, at the price of extra traffic
//     when keep-alive intervals shrink alongside (the LIFX example), and
//     is impractical for battery devices.
//   - Timestamp checking at the receiver (VII-B): detects delayed trigger
//     events, but cannot undo actions fired while a *condition* event was
//     still in flight, and cannot stop the pure delay attacks.
package defense

import (
	"time"

	"repro/internal/device"
	"repro/internal/tlssim"
)

// HardenProfile returns a device variant implementing countermeasure
// VII-A: every event message must be acknowledged within ackTimeout, and
// the keep-alive machinery is tightened to the same bound so the
// keep-alive path cannot be exploited for longer than the messages
// themselves.
func HardenProfile(p device.Profile, ackTimeout time.Duration) device.Profile {
	q := p
	// Tighten, never loosen: devices with an already-shorter timeout keep it.
	if q.EventTimeout == 0 || q.EventTimeout > ackTimeout {
		q.EventTimeout = ackTimeout
	}
	if q.KeepAlivePeriod > 0 {
		if q.KeepAlivePeriod > ackTimeout {
			q.KeepAlivePeriod = ackTimeout
		}
		if q.KeepAliveTimeout > ackTimeout {
			q.KeepAliveTimeout = ackTimeout
		}
	}
	if q.CommandTimeout == 0 || q.CommandTimeout > ackTimeout {
		q.CommandTimeout = ackTimeout
	}
	if q.ServerIdleTimeout > ackTimeout {
		q.ServerIdleTimeout = ackTimeout
	}
	return q
}

// ResidualEventWindow is the e-Delay window remaining after hardening.
func ResidualEventWindow(p device.Profile, ackTimeout time.Duration) (min, max time.Duration, bounded bool) {
	return HardenProfile(p, ackTimeout).MaxEventDelay()
}

// AckSweepPoint relates one mandated ACK timeout to the residual attack
// window and the keep-alive traffic needed to sustain it.
type AckSweepPoint struct {
	AckTimeout time.Duration
	// WindowMin/WindowMax bracket the residual e-Delay window.
	WindowMin time.Duration
	WindowMax time.Duration
	// TrafficPerHour is the estimated keep-alive overhead in bytes/hour
	// (both directions, frame level) at the tightened interval.
	TrafficPerHour int64
}

// SweepAckTimeouts evaluates countermeasure VII-A across timeout choices.
func SweepAckTimeouts(p device.Profile, timeouts []time.Duration) []AckSweepPoint {
	out := make([]AckSweepPoint, 0, len(timeouts))
	for _, to := range timeouts {
		q := HardenProfile(p, to)
		lo, hi, _ := q.MaxEventDelay()
		out = append(out, AckSweepPoint{
			AckTimeout:     to,
			WindowMin:      lo,
			WindowMax:      hi,
			TrafficPerHour: KeepAliveTrafficPerHour(q),
		})
	}
	return out
}

// perMessageOverhead is the fixed per-record framing cost on the wire:
// TLS header+tag, the TCP and IP headers, and the layer-2 frame header.
const perMessageOverhead = tlssim.Overhead + 15 + 12 + 14

// ackSegmentBytes approximates the bare TCP acknowledgement each record
// elicits (empty segment + IP + frame headers).
const ackSegmentBytes = 15 + 12 + 14

// KeepAliveTrafficPerHour estimates the keep-alive bandwidth of a profile:
// one request and one response per period, plus their transport ACKs. This
// is the cost side of shortening intervals — the paper's LIFX bulb, with a
// sub-2s interval, burns >150 MB per hour of such traffic. (The estimate
// counts protocol payloads as sized by the profile; the simulator's
// measured numbers land within a few frame headers of this.)
func KeepAliveTrafficPerHour(p device.Profile) int64 {
	if p.KeepAlivePeriod <= 0 {
		return 0
	}
	exchanges := int64(time.Hour / p.KeepAlivePeriod)
	respLen := 32 // server keep-alive responses are small fixed records
	perExchange := int64(p.KeepAliveLen+perMessageOverhead) +
		int64(respLen+perMessageOverhead) +
		2*ackSegmentBytes
	return exchanges * perExchange
}

// MeasureKeepAliveTraffic reads actual keep-alive bandwidth from a
// segment's counters over an interval. The caller runs the clock; this
// just diffs byte counts.
type TrafficMeter struct {
	stats func() uint64
	start uint64
}

// NewTrafficMeter starts metering a traffic byte counter.
func NewTrafficMeter(stats func() uint64) *TrafficMeter {
	return &TrafficMeter{stats: stats, start: stats()}
}

// Bytes reports bytes accumulated since the meter started.
func (m *TrafficMeter) Bytes() uint64 { return m.stats() - m.start }
