package defense

import (
	"time"

	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// RTTMonitor is a device-side extension beyond the paper's two
// countermeasures (its future work calls for defenses against the delay
// attacks): watch the TCP-level round-trip time of the cloud session.
//
// The split-connection hijacker must acknowledge segments from the LAN —
// that is exactly what keeps the TCP timers quiet. But a LAN
// acknowledgement arrives an order of magnitude faster than one from the
// vendor cloud, so a take-over shows up as a sudden *collapse* of the
// smoothed RTT. The monitor learns a baseline while the session is
// (presumed) clean and alerts when the SRTT drops below a fraction of it.
//
// Limitations, inherent and documented: an attacker present before the
// first connection poisons the baseline; an attacker could artificially
// delay its ACKs to mimic WAN RTT (at the cost of reintroducing timing
// pressure on its own hold bookkeeping); and NAT/route changes can shift
// RTT legitimately (the threshold trades false positives for detection).
type RTTMonitor struct {
	clk  *simtime.Clock
	conn *tcpsim.Conn

	// DropThreshold is the fraction of baseline below which the SRTT is
	// suspicious. Default 0.5.
	DropThreshold float64
	// BaselineSamples is how many RTT samples establish the baseline.
	// Default 8.
	BaselineSamples int
	// Interval is the polling period. Default 5s.
	Interval time.Duration
	// OnAlert fires once when a collapse is detected.
	OnAlert func(baseline, current time.Duration)

	baseline    time.Duration
	baselineSet bool
	alerted     bool
	ticker      *simtime.Ticker
}

// NewRTTMonitor attaches a monitor to a connection and starts polling.
func NewRTTMonitor(clk *simtime.Clock, conn *tcpsim.Conn) *RTTMonitor {
	m := &RTTMonitor{
		clk:             clk,
		conn:            conn,
		DropThreshold:   0.5,
		BaselineSamples: 8,
		Interval:        5 * time.Second,
	}
	m.ticker = simtime.NewTicker(clk, m.Interval, m.poll)
	return m
}

// Stop halts polling.
func (m *RTTMonitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Baseline returns the learned baseline, once set.
func (m *RTTMonitor) Baseline() (time.Duration, bool) { return m.baseline, m.baselineSet }

// SetBaseline seeds the monitor with a baseline persisted from an earlier
// session — reconnecting with a fresh baseline would let an attacker who
// forces a reconnect start from a clean slate.
func (m *RTTMonitor) SetBaseline(d time.Duration) {
	m.baseline = d
	m.baselineSet = d > 0
}

// Alerted reports whether a collapse was flagged.
func (m *RTTMonitor) Alerted() bool { return m.alerted }

func (m *RTTMonitor) poll() {
	srtt, samples := m.conn.SRTT()
	if srtt <= 0 {
		return
	}
	if !m.baselineSet {
		if samples >= m.BaselineSamples {
			m.baseline = srtt
			m.baselineSet = true
		}
		return
	}
	if m.alerted {
		return
	}
	if float64(srtt) < float64(m.baseline)*m.DropThreshold {
		m.alerted = true
		if m.OnAlert != nil {
			m.OnAlert(m.baseline, srtt)
		}
	}
}

// SRTTOf is a convenience for experiments: the current smoothed RTT of a
// connection.
func SRTTOf(conn *tcpsim.Conn) (time.Duration, int) { return conn.SRTT() }
