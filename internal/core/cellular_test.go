package core_test

import (
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/ipnet"
)

// TestCellularBackupSilentUnderPhantomDelay reproduces the Case 1 aside:
// the Ring base station's cellular fallback "is never activated during our
// attack as the base station is not aware" — even when the hold runs past
// the window and the WiFi session dies, the reconnect succeeds (through
// the attacker) and the backup radio stays dark.
func TestCellularBackupSilentUnderPhantomDelay(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	hub := tb.Device("H3")
	if !hub.Profile().CellularBackup {
		t.Fatal("precondition: the Ring base station models a cellular backup")
	}

	// A maximal, even over-long hold: the device times out at ~60s and
	// reconnects — through the attacker, successfully.
	h.EDelay("C2", 0) // indefinite
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Minute)
	if !hub.Connected() {
		t.Fatal("hub should be reconnected (through the attacker)")
	}
	if hub.CellularActive() {
		t.Fatal("phantom delay activated the cellular backup; it must not")
	}
}

// TestCellularBackupActivatesUnderBlackhole is the contrast: a
// jamming-style attacker that silently swallows the flow (instead of
// bridging it) makes every reconnect fail, and the backup radio comes up —
// the loud outcome the phantom delay avoids.
func TestCellularBackupActivatesUnderBlackhole(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 1800, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	target, err := tb.HijackTarget("C2")
	if err != nil {
		t.Fatal(err)
	}
	// Jammer mode: poison both directions, swallow everything, bridge
	// nothing.
	atk.Spoofer.Poison(target.DeviceAddr, target.GatewayAddr, nil)
	atk.Spoofer.Poison(target.GatewayAddr, target.DeviceAddr, nil)
	atk.AddDivert(func(p ipnet.Packet) bool {
		return p.Src == target.DeviceAddr || p.Dst == target.DeviceAddr
	})
	tb.Clock.RunFor(time.Second)
	tb.Start()

	hub := tb.Device("H3")
	// Connect attempts run into the void; SYN retries exhaust (~1 minute
	// with backoff), the device retries, fails again, and falls back.
	tb.Clock.RunFor(10 * time.Minute)
	if hub.Connected() {
		t.Fatal("blackholed hub cannot be connected")
	}
	if !hub.CellularActive() {
		t.Fatalf("blackhole should force the cellular fallback (failed connects logged: %d)",
			hub.LogCount("closed"))
	}
	if hub.LogCount("cellular-activated") != 1 {
		t.Fatalf("cellular-activated log entries = %d", hub.LogCount("cellular-activated"))
	}
}
