package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
)

// TestTakeOverLiveSession hijacks a session that was established *before*
// the attacker appeared: reset the device with a forged in-window RST,
// swallow the stale flow, and let the reconnect land on the spoofed
// listener — silently.
func TestTakeOverLiveSession(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 91, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	// The attacker's foothold exists from the start (its passive tap hears
	// everything, as a sniffing device would), but the home connects
	// DIRECTLY: no poisoning is in place yet.
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Clock.RunFor(time.Minute) // sniff a few keep-alive exchanges
	if !tb.Device("H3").Connected() {
		t.Fatal("precondition: hub should be connected directly")
	}

	// Strike: poison (the live flow is now blackholed at the attacker) and
	// reset the device with a forged in-window RST.
	h, err := tb.Hijack(atk, "C2")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TakeOver(); err != nil {
		t.Fatalf("TakeOver failed: %v", err)
	}

	// Device side dies, reconnects through the attacker.
	tb.Clock.RunFor(30 * time.Second)
	if _, ok := h.CurrentBridge(); !ok {
		t.Fatal("no bridge after takeover: reconnect did not land on the attacker")
	}
	if !tb.Device("H3").Connected() {
		t.Fatal("device did not re-establish its session")
	}
	// The server never alarmed: the old connection lingers half-open and
	// the replacement arrived quickly.
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("takeover raised %d alarms", tb.TotalAlarmCount())
	}

	// And the new, bridged session is fully attackable.
	h.EDelay("C2", 20*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Minute)
	if len(tb.Integration.Events()) != 1 {
		t.Fatalf("post-takeover delayed event not delivered: %d", len(tb.Integration.Events()))
	}
}

func TestTakeOverRequiresInstall(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 92, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	target, err := tb.HijackTarget("C2")
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewHijacker(atk, target, nil)
	if err := h.TakeOver(); err == nil {
		t.Fatal("TakeOver before Install should fail")
	}
}

func TestTakeOverWithoutObservedFlowFails(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 93, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Hijack(atk, "C2") // installed, but nothing has connected yet
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TakeOver(); err == nil {
		t.Fatal("TakeOver with no observed flow should fail")
	}
}
