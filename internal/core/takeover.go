package core

import (
	"fmt"

	"repro/internal/ipnet"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
)

// TakeOver moves an *already established* victim session behind the
// man-in-the-middle. Installing a hijack before the device connects is
// silent by construction; against a live session the attacker instead:
//
//  1. reads the flow's sequence state from its passive capture,
//  2. forges a single RST to the device, spoofed from the server, with the
//     exact sequence number the device expects — the device's stack
//     accepts it and the session dies on the device side only,
//  3. swallows the device's stale segments (the divert rule is already
//     blackholing the old flow), so the *server* never sees the reset:
//     its side lingers half-open (Finding 2) and raises nothing,
//  4. waits: the device auto-reconnects within seconds, and the new
//     handshake lands on the attacker's spoofed listener.
//
// The server-side experience is indistinguishable from a device that went
// quiet and then opened a replacement connection — which real devices do
// all the time.
//
// TakeOver returns an error if the capture has not seen enough of the flow
// to forge a valid reset. The hijack (Install) must already be in place.
func (h *Hijacker) TakeOver() error {
	if !h.installed {
		return fmt.Errorf("core: install the hijack before taking over")
	}
	flow, ok := h.findVictimFlow()
	if !ok {
		return fmt.Errorf("core: no established %s->%s flow observed yet", h.target.DeviceAddr, h.target.ServerAddr)
	}
	// The device's rcv.nxt is the server-direction stream position.
	seq, ok := h.atk.Capture.StreamSeq(flow, sniff.DirServerToClient)
	if !ok {
		return fmt.Errorf("core: server->device stream not yet observed")
	}
	rst := tcpsim.Segment{
		SrcPort: flow.Server.Port,
		DstPort: flow.Client.Port,
		Seq:     seq,
		Flags:   tcpsim.FlagRST | tcpsim.FlagACK,
	}
	return h.atk.IP.Send(ipnet.Packet{
		Src:     flow.Server.Addr,
		Dst:     flow.Client.Addr,
		Proto:   ipnet.ProtoTCP,
		Payload: rst.Marshal(),
	})
}

func (h *Hijacker) findVictimFlow() (sniff.FlowKey, bool) {
	for _, flow := range h.atk.Capture.Flows() {
		if flow.Client.Addr == h.target.DeviceAddr &&
			flow.Server.Addr == h.target.ServerAddr &&
			flow.Server.Port == h.target.ServerPort {
			return flow, true
		}
	}
	return sniff.FlowKey{}, false
}
