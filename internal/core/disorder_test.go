package core_test

import (
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/rules"
)

// TestActionDisorderOverride reproduces Section V-B's override narrative:
// a lock driven by two opposing automations — unlock when the user
// arrives, lock when the door closes. Delaying the *unlock* command until
// after the lock command has executed reorders the two actions: the
// final state is unlocked, all night.
func TestActionDisorderOverride(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    1700,
		Devices: []string{"P1", "C5", "LK1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	hLock, err := tb.Hijack(atk, "LK1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []rules.Rule{
		rules.MustParse(`welcome: WHEN P1.presence=present THEN LK1.lock=unlocked`),
		rules.MustParse(`secure: WHEN C5.contact=closed THEN LK1.lock=locked`),
	} {
		if err := tb.Integration.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	tb.Start()
	_ = tb.Device("LK1").TriggerEvent("lock", "locked")
	_ = tb.Device("P1").TriggerEvent("presence", "away")
	tb.Clock.RunFor(5 * time.Second)

	// The attack: hold the next command to the lock (the unlock) and
	// release it only after a later one (the lock) has gone through —
	// command-level reordering via c-Delay, within the 16s window.
	op := hLock.CDelay("LK1", 0)

	// The user comes home: presence -> unlock command (held)...
	if err := tb.Device("P1").TriggerEvent("presence", "present"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(3 * time.Second)
	if got := tb.Device("LK1").State("lock"); got != "locked" {
		t.Fatalf("unlock should be held, state = %q", got)
	}
	// ...walks in and the door closes behind them -> lock command. It is
	// queued behind the held unlock; releasing now delivers lock AFTER...
	// no — ordering preserves queue order (unlock, then lock). To invert
	// the *effect*, the attacker releases only after observing the second
	// command enqueued: final applied state follows the LAST command, so
	// with order preserved the lock wins and the attack fails. The paper's
	// disorder therefore holds the unlock past the lock's *execution* on a
	// different path: here both ride one session, so the attacker instead
	// delays the unlock until after the door-close, making the unlock the
	// LAST action applied.
	if err := tb.Device("C5").TriggerEvent("contact", "closed"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(3 * time.Second)
	// Both commands are now queued in order [unlock, lock]; released
	// together the lock ends up final. The attacker wants the opposite —
	// so it simply keeps holding. The server's command timeout for the
	// held unlock would fire at 16s; release everything at 10s: commands
	// apply in order, unlock then lock... still locked. The disorder
	// requires the second rule's command to arrive on a DIFFERENT channel
	// or the hold to cover only the first. Verify the honest outcome, then
	// run the variant that works: hold starts AFTER the lock command.
	op.Release()
	tb.Clock.RunFor(5 * time.Second)
	if got := tb.Device("LK1").State("lock"); got != "locked" {
		t.Fatalf("in-order release must preserve final state, got %q", got)
	}

	// Working variant (the paper's framing): the unlock arrives, the
	// attacker holds it; the door-close lock command has ALREADY executed
	// (it preceded the unlock physically). Replay: user leaves, door
	// closes (lock applies), THEN presence flaps to present (unlock held),
	// release after a quiet hour: unlock applies last — door open all
	// night.
	op2 := hLock.CDelay("LK1", 0)
	if err := tb.Device("P1").TriggerEvent("presence", "away"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(3 * time.Second)
	if err := tb.Device("P1").TriggerEvent("presence", "present"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(3 * time.Second)
	if matched, _ := op2.Matched(); !matched {
		t.Fatal("unlock command not captured")
	}
	// Hold it within the window (H5 command timeout 16s), then release:
	// the unlock is now the final action.
	tb.Clock.RunFor(10 * time.Second)
	op2.Release()
	tb.Clock.RunFor(5 * time.Second)
	if got := tb.Device("LK1").State("lock"); got != "unlocked" {
		t.Fatalf("final state = %q, want unlocked (the disorder)", got)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}
