package core

import (
	"repro/internal/obs"
	"repro/internal/sniff"
)

// coreMetrics are the attack toolkit's obs handles. The zero value (all
// nil) is the uninstrumented no-op state; every Bridge carries a copy of
// its attacker's handles by value.
type coreMetrics struct {
	bridges        *obs.Counter
	observed       [2]*obs.Counter // indexed by sniff.Direction - 1
	held           [2]*obs.Counter
	released       [2]*obs.Counter
	heldDepth      *obs.Gauge
	releaseLatency *obs.Histogram
	spoofedSends   *obs.Counter
	trace          *obs.Trace
}

// Instrument registers the attacker's metrics with reg:
//
//	core_bridges_total                      split connections established
//	core_records_observed_total{dir}        TLS records crossing any bridge
//	core_records_held_total{dir}            records the policy enqueued
//	core_records_released_total{dir}        held records flushed by Release
//	core_held_records                       records currently queued (Max = high-water)
//	core_release_latency_seconds            hold duration per Release call
//	core_spoofed_sends_total                records sent onward with spoofed addresses
//
// dir is c2s (device to server) or s2c. Call before creating hijackers;
// existing bridges keep their zero-value (no-op) handles.
func (a *Attacker) Instrument(reg *obs.Registry) {
	dirCounter := func(name string) [2]*obs.Counter {
		return [2]*obs.Counter{
			reg.Counter(name, obs.L("dir", sniff.DirClientToServer.String())),
			reg.Counter(name, obs.L("dir", sniff.DirServerToClient.String())),
		}
	}
	a.met = coreMetrics{
		bridges:        reg.Counter("core_bridges_total"),
		observed:       dirCounter("core_records_observed_total"),
		held:           dirCounter("core_records_held_total"),
		released:       dirCounter("core_records_released_total"),
		heldDepth:      reg.Gauge("core_held_records"),
		releaseLatency: reg.Histogram("core_release_latency_seconds", obs.DurationBuckets),
		spoofedSends:   reg.Counter("core_spoofed_sends_total"),
	}
	a.Capture.Instrument(reg)
	if tr := reg.Trace(); tr.Enabled() {
		a.met.trace = tr
	}
}

func (m coreMetrics) byDir(c [2]*obs.Counter, d sniff.Direction) *obs.Counter {
	if d != sniff.DirClientToServer && d != sniff.DirServerToClient {
		return nil
	}
	return c[d-1]
}
