package core

import (
	"fmt"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/sniff"
)

// Measured is a device's timeout behaviour as derived by the attacker —
// the three parameters of Section IV-B plus the observations needed to
// apply them. It is the profiler's output and the predictor's input.
type Measured struct {
	// Model is the session-owning device label.
	Model string
	// HasKeepAlive reports whether the session exchanges keep-alives.
	HasKeepAlive bool
	// KeepAlivePeriod and Pattern describe the keep-alive schedule.
	KeepAlivePeriod time.Duration
	Pattern         proto.Pattern
	// KeepAliveTimeout is the device-side response deadline for a
	// keep-alive (time from delaying one to session teardown).
	KeepAliveTimeout time.Duration
	// EventTimeout is the dedicated normal-message timeout; zero means
	// none was observed (the "∞" rows).
	EventTimeout time.Duration
	// CommandTimeout is the server-side command response deadline; zero
	// means none was observed.
	CommandTimeout time.Duration
	// ServerIdleTimeout bounds on-demand session lifetime at the server
	// (zero if unknown / not applicable).
	ServerIdleTimeout time.Duration
	// OnDemand reports that the device uses per-event sessions.
	OnDemand bool
}

// EventWindow returns the e-Delay window [min, max] the parameters allow,
// mirroring Section IV-C's reasoning. bounded is false when no timeout
// limits the delay (HomeKit-style events).
func (m Measured) EventWindow() (min, max time.Duration, bounded bool) {
	if m.OnDemand {
		if m.ServerIdleTimeout > 0 {
			return m.ServerIdleTimeout, m.ServerIdleTimeout, true
		}
		return 0, 0, false
	}
	var kaMin, kaMax time.Duration
	kaBounded := false
	if m.HasKeepAlive && m.KeepAlivePeriod > 0 {
		kaBounded = true
		if m.Pattern == proto.PatternOnIdle {
			kaMin = m.KeepAlivePeriod + m.KeepAliveTimeout
			kaMax = kaMin
		} else {
			kaMin = m.KeepAliveTimeout
			kaMax = m.KeepAlivePeriod + m.KeepAliveTimeout
		}
	}
	switch {
	case m.EventTimeout > 0 && kaBounded:
		// A held event stalls the keep-alives behind it too; the earlier
		// timer bounds the window.
		return minDur(m.EventTimeout, kaMin), minDur(m.EventTimeout, kaMax), true
	case m.EventTimeout > 0:
		return m.EventTimeout, m.EventTimeout, true
	case kaBounded:
		return kaMin, kaMax, true
	default:
		return 0, 0, false
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// CommandWindow returns the c-Delay window the parameters allow. The
// command timeout is still capped by the keep-alive bound: holding the
// server-to-device direction also stalls keep-alive responses.
func (m Measured) CommandWindow() (min, max time.Duration, bounded bool) {
	n := m
	n.EventTimeout = m.CommandTimeout
	n.OnDemand = false
	return n.EventWindow()
}

// String summarises the profile as a Table I row fragment.
func (m Measured) String() string {
	ka := "none"
	if m.HasKeepAlive {
		ka = fmt.Sprintf("%v/%s to=%v", m.KeepAlivePeriod, m.Pattern, m.KeepAliveTimeout)
	}
	ev := "∞"
	if m.EventTimeout > 0 {
		ev = m.EventTimeout.String()
	}
	cmd := "∞"
	if m.CommandTimeout > 0 {
		cmd = m.CommandTimeout.String()
	}
	return fmt.Sprintf("%s keepalive=%s event=%s command=%s", m.Model, ka, ev, cmd)
}

// Predictor forecasts when a session timeout would fire if a hold started
// now, from the measured parameters plus live observations of the
// session's traffic (keep-alive phase, last device send).
type Predictor struct {
	m Measured

	lastC2S simtime.Time
	lastKA  simtime.Time
	seenKA  bool
	seenC2S bool
	// kaOutstanding marks a keep-alive request whose response has not yet
	// flowed back: holding the server direction now would strand it.
	kaOutstanding bool
}

// NewPredictor creates a predictor for the measured profile.
func NewPredictor(m Measured) *Predictor { return &Predictor{m: m} }

// Measured returns the profile the predictor runs on.
func (p *Predictor) Measured() Measured { return p.m }

// Observe feeds one classified record (the hijacker calls this for every
// record crossing its bridges).
func (p *Predictor) Observe(cr ClassifiedRecord) {
	if cr.Dir == sniff.DirServerToClient {
		// Any server record clears the pending keep-alive response (the
		// response is the next thing the server sends after the request).
		p.kaOutstanding = false
		return
	}
	p.lastC2S = cr.At
	p.seenC2S = true
	if cr.Known && cr.Msg.Kind == sniff.KindKeepAlive {
		p.lastKA = cr.At
		p.seenKA = true
		p.kaOutstanding = true
	}
}

// PredictClose forecasts the session-teardown instant if a record of the
// given kind is held from holdStart onward (with everything behind it).
// bounded is false when nothing would ever fire.
func (p *Predictor) PredictClose(holdStart simtime.Time, kind sniff.MsgKind) (simtime.Time, bool) {
	var bounds []simtime.Time
	if p.m.OnDemand && p.m.ServerIdleTimeout > 0 && kind == sniff.KindEvent {
		// The server reaps the idle session; the device-side 408 earlier is
		// harmless (Finding 1), so only the server bound limits delivery.
		bounds = append(bounds, holdStart+p.m.ServerIdleTimeout)
	}
	if kind == sniff.KindEvent && p.m.EventTimeout > 0 && !p.m.OnDemand {
		bounds = append(bounds, holdStart+p.m.EventTimeout)
	}
	if kind == sniff.KindCommand && p.m.CommandTimeout > 0 {
		bounds = append(bounds, holdStart+p.m.CommandTimeout)
	}
	if ka, ok := p.keepAliveBound(holdStart, kind); ok {
		bounds = append(bounds, ka)
	}
	if len(bounds) == 0 {
		return 0, false
	}
	min := bounds[0]
	for _, b := range bounds[1:] {
		if b < min {
			min = b
		}
	}
	return min, true
}

// keepAliveBound computes when the keep-alive machinery would tear the
// session down given a hold starting at holdStart.
//
// Holding the device-to-server direction delays the device's next
// keep-alive request; holding server-to-device delays its response. Either
// way the device's deadline fires KeepAliveTimeout after the first
// keep-alive it sends at or after holdStart.
func (p *Predictor) keepAliveBound(holdStart simtime.Time, kind sniff.MsgKind) (simtime.Time, bool) {
	if !p.m.HasKeepAlive || p.m.KeepAlivePeriod <= 0 {
		return 0, false
	}
	// A server-direction hold (command delay) that starts while a
	// keep-alive response is in flight strands that response: the device's
	// deadline runs from the *request* it already sent.
	if kind == sniff.KindCommand && p.kaOutstanding && p.seenKA {
		return p.lastKA + p.m.KeepAliveTimeout, true
	}
	var nextKA simtime.Time
	switch p.m.Pattern {
	case proto.PatternOnIdle:
		// The device's schedule resets on its last send. For an event
		// delay, the held event itself is that send; for a command delay,
		// the device keeps its own anchor.
		last := p.lastC2S
		if !p.seenC2S || (kind == sniff.KindEvent && holdStart > last) {
			last = holdStart
		}
		nextKA = last + p.m.KeepAlivePeriod
	default: // fixed schedule anchored at the last observed keep-alive
		anchor := p.lastKA
		if !p.seenKA {
			anchor = holdStart
		}
		nextKA = anchor + p.m.KeepAlivePeriod
		for nextKA < holdStart {
			nextKA += p.m.KeepAlivePeriod
		}
	}
	return nextKA + p.m.KeepAliveTimeout, true
}
