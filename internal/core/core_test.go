package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/proto"
	"repro/internal/rules"
	"repro/internal/sniff"
)

// hijackedHome deploys the given devices with a hijacker already installed
// on target before anything connects.
func hijackedHome(t *testing.T, target string, labels ...string) (*experiment.Testbed, *core.Attacker, *core.Hijacker) {
	t.Helper()
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 21, Devices: labels})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Hijack(atk, target)
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	return tb, atk, h
}

func TestHijackedSessionWorksTransparently(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	if _, ok := h.CurrentBridge(); !ok {
		t.Fatal("no bridge established; the session did not route through the attacker")
	}
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) == 0 || evs[len(evs)-1].Device != "C2" {
		t.Fatalf("event did not traverse the bridge: %v", evs)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("transparent relay raised %d alarms", tb.TotalAlarmCount())
	}
}

func TestHijackSurvivesLongIdleWithKeepAlives(t *testing.T) {
	tb, _, h := hijackedHome(t, "H1", "H1")
	tb.Clock.RunFor(20 * time.Minute)
	b, ok := h.CurrentBridge()
	if !ok || !b.Alive() {
		t.Fatal("bridge died during idle keep-alive traffic")
	}
	if !tb.Device("H1").Connected() {
		t.Fatal("device session died behind the bridge")
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

func TestNoRetransmissionsDuringDelay(t *testing.T) {
	// The paper's distinction from jamming: no packets are dropped, so no
	// retransmissions occur anywhere while records are held.
	tb, _, h := hijackedHome(t, "C2", "C2")
	op := h.EDelay("C2", 20*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(40 * time.Second)
	if matched, _ := op.Matched(); !matched {
		t.Fatal("delay op never matched the event record")
	}
	if !op.Released() {
		t.Fatal("delay op never released")
	}
	b := h.Bridges()[0]
	if n := b.DeviceConn().Stats().Retransmits; n != 0 {
		t.Fatalf("attacker->device retransmits = %d, want 0", n)
	}
	if n := b.ServerConn().Stats().Retransmits; n != 0 {
		t.Fatalf("attacker->server retransmits = %d, want 0", n)
	}
}

func TestEDelayDelaysDeliveryWithoutAlarms(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	const hold = 25 * time.Second
	h.EDelay("C2", hold)

	trigger := tb.Clock.Now()
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(10 * time.Second)
	if len(tb.Integration.Events()) != 0 {
		t.Fatal("event arrived while it should be held")
	}
	tb.Clock.RunFor(30 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 1 {
		t.Fatalf("events after release = %d, want 1", len(evs))
	}
	delay := evs[0].ReceivedAt - trigger
	if delay < hold || delay > hold+2*time.Second {
		t.Fatalf("delivery delayed %v, want about %v", delay, hold)
	}
	// The delayed event is accepted and usable; nothing anywhere alarmed.
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d, want 0", tb.TotalAlarmCount())
	}
	// And the device still believes everything is fine.
	if !tb.Device("H3").Connected() {
		t.Fatal("hub session died")
	}
}

func TestCDelayDelaysActuation(t *testing.T) {
	tb, _, h := hijackedHome(t, "LK1", "LK1", "C2")
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "lock-on-close",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		t.Fatal(err)
	}
	const hold = 10 * time.Second
	h.CDelay("LK1", hold)

	start := tb.Clock.Now()
	if err := tb.Device("C2").TriggerEvent("contact", "closed"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)
	if got := tb.Device("LK1").State("lock"); got == "locked" {
		t.Fatal("lock actuated while command should be held")
	}
	tb.Clock.RunFor(10 * time.Second)
	if got := tb.Device("LK1").State("lock"); got != "locked" {
		t.Fatalf("lock state = %q after release, want locked", got)
	}
	var lockedAt time.Duration
	for _, e := range tb.Device("LK1").Log() {
		if e.Kind == "command-applied" {
			lockedAt = e.At - start
		}
	}
	if lockedAt < hold {
		t.Fatalf("actuation after %v, want >= %v", lockedAt, hold)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d, want 0", tb.TotalAlarmCount())
	}
}

func TestHoldingPastTimeoutRaisesDeviceSideTimeout(t *testing.T) {
	// Holding *too long* does trip the device's own timer — the boundary
	// the primitives must stay inside. SmartThings: event held; next
	// keep-alive at +31s; ping deadline 16s later; device closes at ~47s.
	tb, _, h := hijackedHome(t, "C1", "C1")
	op := h.EDelay("C1", 0) // manual: hold forever
	if err := tb.Device("C1").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Second)
	matched, matchedAt := op.Matched()
	if !matched {
		t.Fatal("event not captured")
	}
	b := h.Bridges()[0]
	closed := false
	var closedAt time.Duration
	b.OnDeviceClosed = func(error) { closed, closedAt = true, tb.Clock.Now()-matchedAt }
	tb.Clock.RunFor(2 * time.Minute)
	if !closed {
		t.Fatal("device never timed out despite indefinite hold")
	}
	want := 47 * time.Second
	if closedAt < want-3*time.Second || closedAt > want+3*time.Second {
		t.Fatalf("device closed after %v, want about %v (31s keep-alive + 16s timeout)", closedAt, want)
	}
}

func TestMaxEDelayReleasesBeforeTimeout(t *testing.T) {
	// With a measured profile armed, MaxEDelay holds until margin before
	// the predicted timeout: the session survives and the event arrives.
	tb, _, h := hijackedHome(t, "C1", "C1")
	h.ArmPredictor(core.Measured{
		Model:            "H1",
		HasKeepAlive:     true,
		KeepAlivePeriod:  31 * time.Second,
		Pattern:          proto.PatternOnIdle,
		KeepAliveTimeout: 16 * time.Second,
	})
	op := h.MaxEDelay("C1", 2*time.Second)
	var heldFor time.Duration
	op.OnReleased = func(d time.Duration) { heldFor = d }

	if err := tb.Device("C1").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Minute)
	if !op.Released() {
		t.Fatal("never released")
	}
	// Window is 47s; margin 2s → ~45s hold.
	if heldFor < 43*time.Second || heldFor > 46*time.Second {
		t.Fatalf("held %v, want about 45s", heldFor)
	}
	// Event accepted, session alive, zero alarms.
	if len(tb.Integration.Events()) != 1 {
		t.Fatalf("events = %d, want 1", len(tb.Integration.Events()))
	}
	if !tb.Device("H1").Connected() {
		t.Fatal("session died: released too late")
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

func TestDelayOtherDevicesUntouched(t *testing.T) {
	// Selectivity: delaying C2's events leaves P2 (different session, not
	// even hijacked) and H3's keep-alives untouched.
	tb, _, h := hijackedHome(t, "C2", "C2", "P2")
	h.EDelay("C2", 30*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Second)
	if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 1 || evs[0].Device != "P2" {
		t.Fatalf("expected only P2's event to arrive, got %v", evs)
	}
}

func TestHAPUnboundedHold(t *testing.T) {
	// Table II: HomeKit events can be held for hours; release still lands.
	tb, _, h := hijackedHome(t, "A1", "A1", "A6")
	if err := tb.LocalHub.AddRule(rules.Rule{
		Name:    "light-on-open",
		Trigger: rules.Trigger{Device: "A1", Attribute: "contact", Value: "open"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "A6", Attribute: "switch", Value: "on"}},
	}); err != nil {
		t.Fatal(err)
	}
	op := h.EDelay("A1", 0) // manual
	if err := tb.Device("A1").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(6 * time.Hour)
	if got := tb.Device("A6").State("switch"); got == "on" {
		t.Fatal("rule fired while the event was held")
	}
	if len(tb.LocalHub.Alarms()) != 0 {
		t.Fatalf("hub alarms during 6h hold: %v", tb.LocalHub.Alarms())
	}
	op.Release()
	tb.Clock.RunFor(5 * time.Second)
	if got := tb.Device("A6").State("switch"); got != "on" {
		t.Fatal("released event did not fire the rule")
	}
}

func TestDelayOpCancel(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	op := h.EDelay("C2", time.Minute)
	op.Cancel()
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if matched, _ := op.Matched(); matched {
		t.Fatal("cancelled op still matched")
	}
	if len(tb.Integration.Events()) != 1 {
		t.Fatal("event should have flowed normally")
	}
}

func TestSequentialDelayOps(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	op1 := h.EDelay("C2", 5*time.Second)
	op2 := h.EDelay("C2", 5*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(15 * time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "closed"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(15 * time.Second)
	if m1, _ := op1.Matched(); !m1 {
		t.Fatal("op1 never matched")
	}
	if m2, _ := op2.Matched(); !m2 {
		t.Fatal("op2 never matched")
	}
	if got := len(tb.Integration.Events()); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
}

func TestTLSAlertsNeverRaisedByHold(t *testing.T) {
	// Holding + in-order release never violates TLS: no alerts anywhere.
	tb, _, h := hijackedHome(t, "C2", "C2")
	h.EDelay("C2", 20*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Minute)
	// If TLS had failed, sessions would be down and events absent.
	if len(tb.Integration.Events()) != 1 {
		t.Fatal("event lost — integrity failure?")
	}
	if !tb.Device("H3").Connected() {
		t.Fatal("session down — alert fired?")
	}
}

func TestSnifferIdentifiesVictimBeforeHijack(t *testing.T) {
	// End-to-end recon: passive capture first, then identify, then verify
	// the identified model matches the deployed hub.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 33, Devices: []string{"C2"}})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Clock.RunFor(3 * time.Minute)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)

	cl := sniff.NewClassifier(sniff.BuildCatalogSignatures())
	hubAddr := tb.DeviceAddrs["H3"]
	found := ""
	for _, flow := range atk.Capture.Flows() {
		if flow.Client.Addr != hubAddr {
			continue
		}
		if model, score, ok := cl.IdentifyFlow(atk.Capture.FlowRecords(flow)); ok && score > 0.5 {
			found = model
		}
	}
	if found != "H3" {
		t.Fatalf("recon identified %q, want H3", found)
	}
}
