// Package core implements the paper's contribution: the phantom-delay
// attack toolkit. It contains
//
//   - Attacker: a foothold host on the victim WiFi (one controlled device,
//     per the attack model of Section III-B);
//   - Hijacker: the ARP-poisoned split-connection TCP proxy of Figure 2,
//     which acknowledges both sides immediately (so no TCP timer ever
//     fires) while holding TLS records and releasing them in order (so
//     TLS integrity and sequencing stay intact);
//   - the e-Delay and c-Delay primitives with timeout prediction
//     (Section IV-C), including the "release shortly before the predicted
//     timeout" maximisation;
//   - the Section IV-C profiler that derives a device's timeout-behaviour
//     parameters from controlled delays against a lab copy;
//   - orchestrators for the Type-I/II/III attacks of Section V.
package core

import (
	"fmt"

	"repro/internal/arp"
	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
)

// Attacker is the one controlled WiFi device of the attack model. It can
// sniff the broadcast medium, poison ARP caches, terminate TCP with
// spoofed addresses, and transparently forward everything it does not
// care about.
type Attacker struct {
	Clock   *simtime.Clock
	Host    *netsim.Host
	IP      *ipnet.Stack
	TCP     *tcpsim.Stack
	Spoofer *arp.Spoofer
	Capture *sniff.Capture

	rng       *simtime.Rand
	diverters []func(ipnet.Packet) bool
	acceptors map[uint16]map[ipaddr.Addr]func(*tcpsim.Conn)
	met       coreMetrics
}

// NewAttacker joins the attacker to a LAN segment at the given CIDR
// address. The host name must be unique within the network.
func NewAttacker(nw *netsim.Network, lan *netsim.Segment, name, cidr string, gateway ipaddr.Addr, seed int64) (*Attacker, error) {
	clk := nw.Clock()
	ip := ipnet.NewStack(clk, nw.NewHost(name))
	if _, err := ip.AddIface(lan, cidr); err != nil {
		return nil, err
	}
	if err := ip.SetDefaultGateway(gateway); err != nil {
		return nil, err
	}
	return NewAttackerOn(clk, lan, ip, tcpsim.NewStack(clk, ip, tcpsim.Config{}, seed), simtime.NewRand(seed+1))
}

// NewAttackerOn assembles an attacker from pre-built components: an IP
// stack already attached to the LAN with its default gateway set, a TCP
// stack bound to it, and a randomness source. It exists so arena owners
// (the experiment testbed) can feed pooled stacks through the exact wiring
// NewAttacker performs; both paths behave byte-identically given
// identically seeded inputs.
func NewAttackerOn(clk *simtime.Clock, lan *netsim.Segment, ip *ipnet.Stack, tcp *tcpsim.Stack, rng *simtime.Rand) (*Attacker, error) {
	return NewAttackerWith(clk, lan, ip, tcp, rng, sniff.NewCapture(clk))
}

// NewAttackerWith is NewAttackerOn with a caller-supplied capture, so
// arena owners can pool captures across homes (a freshly Reset capture is
// byte-identical to a new one). The capture must be empty.
func NewAttackerWith(clk *simtime.Clock, lan *netsim.Segment, ip *ipnet.Stack, tcp *tcpsim.Stack, rng *simtime.Rand, cap *sniff.Capture) (*Attacker, error) {
	ifaces := ip.Ifaces()
	if len(ifaces) == 0 {
		return nil, fmt.Errorf("core: attacker IP stack has no interface")
	}
	a := &Attacker{
		Clock:     clk,
		Host:      ip.Host(),
		IP:        ip,
		TCP:       tcp,
		Capture:   cap,
		rng:       rng,
		acceptors: make(map[uint16]map[ipaddr.Addr]func(*tcpsim.Conn)),
	}
	// Forward traffic that is not being attacked; divert what is. Unknown
	// diverted flows are swallowed silently (SendRST off): blackholing a
	// flow the attacker wants to take over is quieter than resetting it.
	a.IP.Forwarding = true
	a.IP.Divert = a.divert
	a.TCP.SendRST = false
	a.Spoofer = arp.NewSpoofer(clk, ifaces[0].ARP(), 0)
	a.Spoofer.Start()
	// Passive sniffing of the WiFi medium (the radio, not the NIC).
	lan.AddTap(a.Capture.Tap())
	return a, nil
}

// RNG returns the attacker's deterministic randomness source.
func (a *Attacker) RNG() *simtime.Rand { return a.rng }

// AddDivert registers a packet interceptor. Interceptors run in
// registration order; the first to return true consumes the packet.
func (a *Attacker) AddDivert(fn func(ipnet.Packet) bool) {
	a.diverters = append(a.diverters, fn)
}

func (a *Attacker) divert(p ipnet.Packet) bool {
	for _, fn := range a.diverters {
		if fn(p) {
			return true
		}
	}
	return false
}

// AcceptSpoofed routes inbound connections to a port, keyed by the true
// client address, so several hijackers can impersonate different servers
// on the same port.
func (a *Attacker) AcceptSpoofed(port uint16, client ipaddr.Addr, accept func(*tcpsim.Conn)) error {
	byClient, ok := a.acceptors[port]
	if !ok {
		byClient = make(map[ipaddr.Addr]func(*tcpsim.Conn))
		a.acceptors[port] = byClient
		if _, err := a.TCP.Listen(port, func(c *tcpsim.Conn) {
			if fn, ok := a.acceptors[port][c.Remote().Addr]; ok {
				fn(c)
			}
		}); err != nil {
			return fmt.Errorf("core: attacker listen %d: %w", port, err)
		}
	}
	if _, dup := byClient[client]; dup {
		return fmt.Errorf("core: port %d already hijacked for %s", port, client)
	}
	byClient[client] = accept
	return nil
}

// StopAccepting removes a spoofed-accept registration.
func (a *Attacker) StopAccepting(port uint16, client ipaddr.Addr) {
	if byClient, ok := a.acceptors[port]; ok {
		delete(byClient, client)
	}
}

// OnLink reports whether an address is on the attacker's LAN.
func (a *Attacker) OnLink(addr ipaddr.Addr) bool {
	return a.IP.Ifaces()[0].Prefix().Contains(addr)
}
