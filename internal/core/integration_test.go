package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/proto"
	"repro/internal/rules"
	"repro/internal/simtime"
	"repro/internal/sniff"
)

// TestAttackInBusyHome runs a Type-III attack while an 18-device home
// chatters in the background: selectivity and stealth must survive noise.
func TestAttackInBusyHome(t *testing.T) {
	labels := []string{
		"H1", "C1", "M1", "P1", "S1", // SmartThings family
		"L2", "S2", "M2", // Hue family
		"C2", "M3", "K1", // Ring family
		"LK1",                    // August lock
		"P2", "P3", "CM1", "SD1", // WiFi direct
		"M7", "C5", // on-demand
	}
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 1001, Devices: labels})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	hLock, err := tb.Hijack(atk, "LK1")
	if err != nil {
		t.Fatal(err)
	}
	hPresence, err := tb.Hijack(atk, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:      "lock-when-leaving",
		Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
		Condition: rules.Eq{Device: "LK1", Attribute: "lock", Value: "unlocked"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	_ = tb.Device("P1").TriggerEvent("presence", "present")
	_ = tb.Device("LK1").TriggerEvent("lock", "locked")
	tb.Clock.RunFor(5 * time.Second)

	// Background chatter: motion, plugs, cameras every few seconds.
	noiseMakers := []struct{ label, attr string }{
		{"M1", "motion"}, {"M2", "motion"}, {"M3", "motion"},
		{"P2", "switch"}, {"P3", "switch"}, {"CM1", "motion"}, {"M7", "motion"},
	}
	i := 0
	noise := simtime.NewTicker(tb.Clock, 7*time.Second, func() {
		n := noiseMakers[i%len(noiseMakers)]
		v := []string{"active", "inactive"}[i%2]
		if n.attr == "switch" {
			v = []string{"on", "off"}[i%2]
		}
		i++
		_ = tb.Device(n.label).TriggerEvent(n.attr, v)
	})
	defer noise.Stop()
	tb.Clock.RunFor(30 * time.Second)

	// The attack, amid the noise: Case-10 shape.
	core.DisabledExecution(hLock, "LK1", hPresence, "P1", 5*time.Second)
	_ = tb.Device("LK1").TriggerEvent("lock", "unlocked")
	tb.Clock.RunFor(5 * time.Second)
	_ = tb.Device("P1").TriggerEvent("presence", "away")
	tb.Clock.RunFor(2 * time.Minute)

	if got := tb.Device("LK1").State("lock"); got != "unlocked" {
		t.Fatalf("lock = %q; the attack should have disabled the rule", got)
	}
	if n := len(tb.Integration.Engine().Executions("lock-when-leaving")); n != 0 {
		t.Fatalf("rule fired %d times", n)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms in busy home = %d", tb.TotalAlarmCount())
	}
	// The noise traffic kept flowing throughout.
	seen := map[string]int{}
	for _, ev := range tb.Integration.Events() {
		seen[ev.Device]++
	}
	for _, n := range noiseMakers {
		if seen[n.label] == 0 {
			t.Errorf("noise device %s starved during the attack", n.label)
		}
	}
}

// TestAttackUnderJitter: latency jitter must not break the predictor's
// margins (the margin exists precisely to absorb transit variance).
func TestAttackUnderJitter(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    1002,
		Devices: []string{"C1"},
		Jitter:  0.5, // ±50% on every link
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Hijack(atk, "C1")
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	h.ArmPredictor(core.Measured{
		Model:            "H1",
		HasKeepAlive:     true,
		KeepAlivePeriod:  31 * time.Second,
		Pattern:          proto.PatternOnIdle,
		KeepAliveTimeout: 16 * time.Second,
	})
	for trial := 0; trial < 3; trial++ {
		op := h.MaxEDelay("C1", 2*time.Second)
		released := false
		op.OnReleased = func(time.Duration) { released = true }
		if err := tb.Device("C1").TriggerEvent("contact", "open"); err != nil {
			t.Fatal(err)
		}
		tb.Clock.RunFor(2 * time.Minute)
		if !released {
			t.Fatalf("trial %d never released", trial)
		}
		if !tb.Device("H1").Connected() {
			t.Fatalf("trial %d: session died under jitter", trial)
		}
	}
	if got := len(tb.Integration.Events()); got != 3 {
		t.Fatalf("events delivered = %d, want 3", got)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

// TestLargeRecordSpansSegments: an event record bigger than the TCP MSS
// crosses the bridge in several segments; the bridge must reassemble the
// record before holding and release it intact.
func TestLargeRecordSpansSegments(t *testing.T) {
	big, err := device.Lookup("C5")
	if err != nil {
		t.Fatal(err)
	}
	big.EventLen = 5000 // > MSS (1400): four segments per record
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:      1003,
		Devices:   []string{"C5"},
		Overrides: []device.Profile{big},
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Hijack(atk, "C5")
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()

	// The stock signature no longer matches the fat record; match on size.
	op := h.DelayMatching(sniff.DirClientToServer, func(cr core.ClassifiedRecord) bool {
		return cr.WireLen > 4000
	}, 20*time.Second)
	if err := tb.Device("C5").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(10 * time.Second)
	if matched, _ := op.Matched(); !matched {
		t.Fatal("fat record never matched — segment reassembly broken?")
	}
	if len(tb.Integration.Events()) != 0 {
		t.Fatal("record leaked during hold")
	}
	tb.Clock.RunFor(30 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 1 || evs[0].Value != "open" {
		t.Fatalf("fat record not delivered intact: %v", evs)
	}
}

// TestUninstallRestoresDirectPath: after Uninstall, the healed ARP caches
// route fresh sessions directly again.
func TestUninstallRestoresDirectPath(t *testing.T) {
	tb, _, h := hijackedHome(t, "P2", "P2")
	if _, ok := h.CurrentBridge(); !ok {
		t.Fatal("no bridge while installed")
	}
	bridgesBefore := len(h.Bridges())

	h.Uninstall()
	tb.Clock.RunFor(2 * time.Second)
	// Force a reconnect: the new session must NOT pass the attacker.
	tb.Device("P2").TCPConn().Abort()
	tb.Clock.RunFor(15 * time.Second)
	if !tb.Device("P2").Connected() {
		t.Fatal("device did not reconnect after uninstall")
	}
	if len(h.Bridges()) != bridgesBefore {
		t.Fatal("a new bridge appeared after uninstall")
	}
	// And the direct session works.
	if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if len(tb.Integration.Events()) != 1 {
		t.Fatal("direct session broken after uninstall")
	}
	if h.Installed() {
		t.Fatal("Installed() should be false")
	}
}
