package core

import (
	"time"

	"repro/internal/sniff"
)

// This file maps Section V's attack families onto the two primitives.
//
// Type-I (state-update delay) and Type-II (action delay) are direct uses
// of e-Delay and c-Delay. Type-III (erroneous execution) adds ordering:
// the attacker holds the event that would change a rule's condition until
// after the rule's trigger has passed (spurious execution), or holds the
// event that would satisfy the condition until the trigger has passed
// (disabled execution). Both reduce to "release when some other message is
// observed", which ReleaseWhen implements across hijacked sessions.

// StateUpdateDelay launches a Type-I attack: the next event from the
// device is delayed, deferring the user's awareness of the state change
// (e.g. a smoke alert). With hold == 0 the delay runs until released.
func StateUpdateDelay(h *Hijacker, origin string, hold time.Duration) *DelayOp {
	return h.EDelay(origin, hold)
}

// ActionDelay is a Type-II attack: an automation's effect is deferred by
// delaying its trigger event and/or its action command. Combining both
// extends the window beyond either timeout alone (the Case 3/4 technique:
// e-Delay on the contact sensor plus c-Delay on the lock stack to at least
// 60 seconds).
type ActionDelay struct {
	// TriggerOp is the e-Delay on the rule's trigger event (nil if only
	// the command is delayed).
	TriggerOp *DelayOp
	// CommandOp is the c-Delay on the resulting action command (nil if
	// only the event is delayed).
	CommandOp *DelayOp
}

// ActionDelayConfig selects what to delay.
type ActionDelayConfig struct {
	// TriggerHijacker/TriggerOrigin delay the trigger event. Optional.
	TriggerHijacker *Hijacker
	TriggerOrigin   string
	TriggerHold     time.Duration
	// CommandHijacker/CommandOrigin delay the action command. Optional.
	CommandHijacker *Hijacker
	CommandOrigin   string
	CommandHold     time.Duration
}

// NewActionDelay arms a Type-II attack.
func NewActionDelay(cfg ActionDelayConfig) *ActionDelay {
	a := &ActionDelay{}
	if cfg.TriggerHijacker != nil {
		a.TriggerOp = cfg.TriggerHijacker.EDelay(cfg.TriggerOrigin, cfg.TriggerHold)
	}
	if cfg.CommandHijacker != nil {
		a.CommandOp = cfg.CommandHijacker.CDelay(cfg.CommandOrigin, cfg.CommandHold)
	}
	return a
}

// ReleaseWhen releases op as soon as the watching hijacker observes a
// record from origin of the given kind (plus extra slack). This is the
// ordering tool of the Type-III attacks: "hold the condition event until
// the trigger has gone past".
func ReleaseWhen(op *DelayOp, watch *Hijacker, origin string, kind sniff.MsgKind, extra time.Duration) {
	prev := watch.OnRecord
	done := false
	watch.OnRecord = func(b *Bridge, r RecordInfo) {
		if prev != nil {
			prev(b, r)
		}
		if done {
			return
		}
		cr := watch.classify(r)
		if !cr.Known || cr.Msg.Origin != origin || cr.Msg.Kind != kind {
			return
		}
		done = true
		if extra > 0 {
			watch.atk.Clock.Schedule(extra, op.Release)
		} else {
			op.Release()
		}
	}
}

// SpuriousExecution arms the Type-III(1) attack against a rule
// (T, C, A): the event that would turn the condition false is held; the
// victim (or the attacker's timing) produces the trigger while the server
// still believes the stale condition; the action fires spuriously. The
// held event is released when the trigger's event message is observed
// passing through watchTrigger, after slack.
func SpuriousExecution(condHijacker *Hijacker, condOrigin string, watchTrigger *Hijacker, triggerOrigin string, slack time.Duration) *DelayOp {
	op := condHijacker.EDelay(condOrigin, 0)
	ReleaseWhen(op, watchTrigger, triggerOrigin, sniff.KindEvent, slack)
	return op
}

// DisabledExecution arms the Type-III(2) attack: the event that would turn
// the condition true (or that is itself the trigger) is held until after
// the other event has passed, so the rule never fires. The choreography is
// identical to SpuriousExecution — what differs is which event is held —
// so this is an alias with its own name for call-site clarity.
func DisabledExecution(heldHijacker *Hijacker, heldOrigin string, watch *Hijacker, watchOrigin string, slack time.Duration) *DelayOp {
	return SpuriousExecution(heldHijacker, heldOrigin, watch, watchOrigin, slack)
}
