package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rules"
)

func TestTypeIStateUpdateDelay(t *testing.T) {
	// Fig. 3(a): the "smoke detected" notification reaches the user tens
	// of seconds late.
	tb, _, h := hijackedHome(t, "SD1", "SD1")
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "smoke-alert",
		Trigger: rules.Trigger{Device: "SD1", Attribute: "smoke", Value: "detected"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "SMOKE DETECTED"}},
	}); err != nil {
		t.Fatal(err)
	}
	const hold = 35 * time.Second
	core.StateUpdateDelay(h, "SD1", hold)
	if err := tb.Device("SD1").TriggerEvent("smoke", "detected"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Minute)
	n := tb.Integration.Notifications()
	if len(n) != 1 {
		t.Fatalf("notifications = %d, want 1", len(n))
	}
	if lat := n[0].Latency(); lat < hold {
		t.Fatalf("notification latency %v, want >= %v", lat, hold)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

func TestTypeIIActionDelayCombinesPrimitives(t *testing.T) {
	// Fig. 3(b): water leak triggers valve shut-off; e-Delay on the sensor
	// plus c-Delay on the valve stack the two windows.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    77,
		Devices: []string{"W1", "V1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	hSensor, err := tb.Hijack(atk, "W1")
	if err != nil {
		t.Fatal(err)
	}
	hValve, err := tb.Hijack(atk, "V1")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "shut-valve-on-leak",
		Trigger: rules.Trigger{Device: "W1", Attribute: "water", Value: "wet"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "V1", Attribute: "valve", Value: "closed"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()

	const eHold, cHold = 40 * time.Second, 15 * time.Second
	core.NewActionDelay(core.ActionDelayConfig{
		TriggerHijacker: hSensor,
		TriggerOrigin:   "W1",
		TriggerHold:     eHold,
		CommandHijacker: hValve,
		CommandOrigin:   "V1",
		CommandHold:     cHold,
	})

	leakAt := tb.Clock.Now()
	if err := tb.Device("W1").TriggerEvent("water", "wet"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Minute)
	if got := tb.Device("V1").State("valve"); got != "closed" {
		t.Fatalf("valve state = %q, want closed after release", got)
	}
	var closedAt time.Duration
	for _, e := range tb.Device("V1").Log() {
		if e.Kind == "command-applied" {
			closedAt = e.At - leakAt
		}
	}
	if closedAt < eHold+cHold {
		t.Fatalf("valve closed after %v, want >= %v (stacked delays)", closedAt, eHold+cHold)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

func TestTypeIIISpuriousExecution(t *testing.T) {
	// Case 8 shape (Fig. 3c): "when storm door opens, if user present,
	// unlock". The user leaves; presence-off is held; pulling the storm
	// door then unlocks the door for the burglar.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    78,
		Devices: []string{"P1", "C5", "LK1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	hPresence, err := tb.Hijack(atk, "P1") // presence rides the SmartThings hub
	if err != nil {
		t.Fatal(err)
	}
	hStorm, err := tb.Hijack(atk, "C5") // storm-door contact (on-demand WiFi)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:      "unlock-when-home",
		Trigger:   rules.Trigger{Device: "C5", Attribute: "contact", Value: "open"},
		Condition: rules.Eq{Device: "P1", Attribute: "presence", Value: "present"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "unlocked"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Device("LK1").TriggerEvent("lock", "locked")
	tb.Device("P1").TriggerEvent("presence", "present")
	tb.Clock.RunFor(5 * time.Second)

	// Attack: hold the presence-off event; release after the storm-door
	// trigger has gone through.
	core.SpuriousExecution(hPresence, "P1", hStorm, "C5", 5*time.Second)

	// The user leaves (physically away)...
	if err := tb.Device("P1").TriggerEvent("presence", "away"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(10 * time.Second)
	// ...the burglar pulls the storm door.
	if err := tb.Device("C5").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(30 * time.Second)

	if got := tb.Device("LK1").State("lock"); got != "unlocked" {
		t.Fatalf("lock = %q, want spuriously unlocked", got)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
	// Sanity: without the attack the rule would not have fired — the
	// presence event arrives first and falsifies the condition.
	execs := tb.Integration.Engine().Executions("unlock-when-home")
	if len(execs) != 1 {
		t.Fatalf("executions = %d, want exactly the spurious one", len(execs))
	}
}

func TestTypeIIIDisabledExecution(t *testing.T) {
	// Case 10 shape (Fig. 3d): "when presence goes away, if front door
	// unlocked, lock it". Holding the door-unlocked event until after the
	// presence trigger leaves the door unlocked all day.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    79,
		Devices: []string{"P1", "LK1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	hLock, err := tb.Hijack(atk, "LK1")
	if err != nil {
		t.Fatal(err)
	}
	hPresence, err := tb.Hijack(atk, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:      "lock-when-leaving",
		Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
		Condition: rules.Eq{Device: "LK1", Attribute: "lock", Value: "unlocked"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Device("LK1").TriggerEvent("lock", "locked")
	tb.Device("P1").TriggerEvent("presence", "present")
	tb.Clock.RunFor(5 * time.Second)

	// Attack: hold the "unlocked" state update until after "away" passes.
	core.DisabledExecution(hLock, "LK1", hPresence, "P1", 5*time.Second)

	// The user unlocks the door, walks out, leaves.
	if err := tb.Device("LK1").TriggerEvent("lock", "unlocked"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)
	if err := tb.Device("P1").TriggerEvent("presence", "away"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Minute)

	// The rule never fired: the server saw "away" while still believing
	// the door was locked. The door stays unlocked.
	if execs := tb.Integration.Engine().Executions("lock-when-leaving"); len(execs) != 0 {
		t.Fatalf("rule fired %d times; the attack should disable it", len(execs))
	}
	if got := tb.Device("LK1").State("lock"); got != "unlocked" {
		t.Fatalf("lock = %q, want left unlocked", got)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

func TestBaselineWithoutAttackRulesBehave(t *testing.T) {
	// The no-attack control for both Type-III scenarios.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    80,
		Devices: []string{"P1", "LK1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:      "lock-when-leaving",
		Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
		Condition: rules.Eq{Device: "LK1", Attribute: "lock", Value: "unlocked"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Device("LK1").TriggerEvent("lock", "locked")
	tb.Device("P1").TriggerEvent("presence", "present")
	tb.Clock.RunFor(5 * time.Second)
	tb.Device("LK1").TriggerEvent("lock", "unlocked")
	tb.Clock.RunFor(5 * time.Second)
	tb.Device("P1").TriggerEvent("presence", "away")
	tb.Clock.RunFor(30 * time.Second)
	if got := tb.Device("LK1").State("lock"); got != "locked" {
		t.Fatalf("lock = %q; without attack the rule must lock the door", got)
	}
}
