package core

import (
	"time"

	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// RecordInfo describes one TLS record crossing the bridge. The attacker
// sees exactly this much: timing, direction, record type and cleartext
// length — never plaintext.
type RecordInfo struct {
	At      simtime.Time
	Dir     sniff.Direction
	Type    tlssim.RecordType
	WireLen int
	// Index numbers records per direction, starting at 0.
	Index int
}

// Decision is a policy verdict for one record.
type Decision int

// Decisions.
const (
	// Forward relays the record immediately.
	Forward Decision = iota + 1
	// Hold enqueues the record; every later record in the same direction
	// is forced to queue behind it so that release preserves TLS order.
	Hold
)

// Policy decides the fate of each record crossing a bridge. Policies run
// only for records at the head of a flowing direction: once a direction
// holds, ordering forces everything behind into the queue.
type Policy func(*Bridge, RecordInfo) Decision

// ForwardAll is the transparent relay policy.
func ForwardAll(*Bridge, RecordInfo) Decision { return Forward }

// Bridge is one split connection: the attacker terminates TCP with the
// device (impersonating the server) and with the server (impersonating the
// device), bridging TLS records between the two byte streams. Both kernels
// see a perfectly healthy peer — ACKs are immediate — which is what keeps
// every TCP-layer timer quiet during arbitrarily long holds.
type Bridge struct {
	clk     *simtime.Clock
	devConn *tcpsim.Conn
	srvConn *tcpsim.Conn
	policy  *Policy
	dirs    [2]*bridgeDir
	met     coreMetrics

	devClosed   bool
	srvClosed   bool
	devClosedAt simtime.Time
	srvClosedAt simtime.Time

	// HoldDeviceClose prevents a device-side close from propagating to the
	// server, keeping the server-side connection half-open (Finding 2).
	HoldDeviceClose bool
	// HoldServerClose is the mirror for server-side closes.
	HoldServerClose bool

	// OnRecord observes every record as it arrives (before the policy).
	OnRecord func(RecordInfo)
	// OnDeviceClosed fires when the device-side connection ends.
	OnDeviceClosed func(error)
	// OnServerClosed fires when the server-side connection ends.
	OnServerClosed func(error)
}

type bridgeDir struct {
	buf       []byte
	queue     [][]byte
	holding   bool
	heldSince simtime.Time
	index     int
	forwarded int
	held      int
}

// newBridge wires the two connections. srvConn may still be handshaking;
// tcpsim queues writes until establishment.
func newBridge(clk *simtime.Clock, devConn, srvConn *tcpsim.Conn, policy *Policy, met coreMetrics) *Bridge {
	b := &Bridge{
		clk:     clk,
		devConn: devConn,
		srvConn: srvConn,
		policy:  policy,
		dirs:    [2]*bridgeDir{{}, {}},
		met:     met,
	}
	met.bridges.Inc()
	devConn.OnData = func(data []byte) { b.onData(sniff.DirClientToServer, data) }
	srvConn.OnData = func(data []byte) { b.onData(sniff.DirServerToClient, data) }
	devConn.OnClose = func(err error) {
		if b.devClosed {
			return
		}
		b.devClosed = true
		b.devClosedAt = clk.Now()
		if b.OnDeviceClosed != nil {
			b.OnDeviceClosed(err)
		}
		// Propagate unless told to keep the server side half-open or there
		// are still held records to deliver.
		if !b.HoldDeviceClose && !b.dirs[0].holding && !b.srvClosed {
			b.srvConn.Close()
		}
	}
	srvConn.OnClose = func(err error) {
		if b.srvClosed {
			return
		}
		b.srvClosed = true
		b.srvClosedAt = clk.Now()
		if b.OnServerClosed != nil {
			b.OnServerClosed(err)
		}
		if !b.HoldServerClose && !b.dirs[1].holding && !b.devClosed {
			b.devConn.Close()
		}
	}
	return b
}

// DeviceConn returns the device-facing connection.
func (b *Bridge) DeviceConn() *tcpsim.Conn { return b.devConn }

// ServerConn returns the server-facing connection.
func (b *Bridge) ServerConn() *tcpsim.Conn { return b.srvConn }

// DeviceClosed reports whether the device side has ended, and when.
func (b *Bridge) DeviceClosed() (bool, simtime.Time) { return b.devClosed, b.devClosedAt }

// ServerClosed reports whether the server side has ended, and when.
func (b *Bridge) ServerClosed() (bool, simtime.Time) { return b.srvClosed, b.srvClosedAt }

// Alive reports whether both sides are still open.
func (b *Bridge) Alive() bool { return !b.devClosed && !b.srvClosed }

func (b *Bridge) dir(d sniff.Direction) *bridgeDir { return b.dirs[d-1] }

// HeldCount reports how many records are queued in a direction.
func (b *Bridge) HeldCount(d sniff.Direction) int { return b.dir(d).held - b.releasedCount(d) }

func (b *Bridge) releasedCount(d sniff.Direction) int {
	return b.dir(d).held - len(b.dir(d).queue)
}

// Holding reports whether a direction is currently held, and since when.
func (b *Bridge) Holding(d sniff.Direction) (bool, simtime.Time) {
	st := b.dir(d)
	return st.holding, st.heldSince
}

// ForwardedCount reports how many records flowed through a direction.
func (b *Bridge) ForwardedCount(d sniff.Direction) int { return b.dir(d).forwarded }

func (b *Bridge) onData(d sniff.Direction, data []byte) {
	st := b.dir(d)
	st.buf = append(st.buf, data...)
	for len(st.buf) >= tlssim.HeaderLen {
		n := int(st.buf[3])<<8 | int(st.buf[4])
		total := tlssim.HeaderLen + n
		if len(st.buf) < total {
			return
		}
		rec := make([]byte, total)
		copy(rec, st.buf[:total])
		st.buf = st.buf[total:]
		b.processRecord(d, st, rec)
	}
}

func (b *Bridge) processRecord(d sniff.Direction, st *bridgeDir, rec []byte) {
	info := RecordInfo{
		At:      b.clk.Now(),
		Dir:     d,
		Type:    tlssim.RecordType(rec[0]),
		WireLen: len(rec),
		Index:   st.index,
	}
	st.index++
	b.met.byDir(b.met.observed, d).Inc()
	if b.OnRecord != nil {
		b.OnRecord(info)
	}
	decision := Forward
	if st.holding {
		decision = Hold // ordering constraint: nothing overtakes a held record
	} else if p := *b.policy; p != nil {
		decision = p(b, info)
	}
	if decision == Hold {
		if !st.holding {
			st.holding = true
			st.heldSince = b.clk.Now()
			if b.met.trace != nil {
				b.met.trace.Emit(b.clk.Now(), "core", "hold_start", d.String(), int64(info.WireLen))
			}
		}
		st.held++
		st.queue = append(st.queue, rec)
		b.met.byDir(b.met.held, d).Inc()
		b.met.heldDepth.Add(1)
		return
	}
	st.forwarded++
	b.send(d, rec)
}

// Release flushes every held record of a direction, in original order, and
// lets the direction flow again. It returns how many records were
// released. If the direction's outbound connection died while holding, the
// records are lost (as the paper's on-demand discussion notes, the device
// side may have long given up; delivery only needs the other side).
func (b *Bridge) Release(d sniff.Direction) int {
	st := b.dir(d)
	n := len(st.queue)
	for _, rec := range st.queue {
		st.forwarded++
		b.send(d, rec)
	}
	st.queue = nil
	if n > 0 {
		b.met.byDir(b.met.released, d).Add(uint64(n))
		b.met.heldDepth.Add(int64(-n))
		b.met.releaseLatency.ObserveDuration(b.clk.Now() - st.heldSince)
		if b.met.trace != nil {
			b.met.trace.Emit(b.clk.Now(), "core", "release", d.String(), int64(n))
		}
	}
	st.holding = false
	// Close propagation after a hold is asymmetric. If the *device* died
	// mid-hold, the stealthy move (Finding 2) is to leave the server side
	// half-open: the device's quiet reconnection supersedes it and no
	// offline alarm ever fires — so nothing is propagated here. If the
	// *server* died mid-hold, hiding that from the device only zombifies
	// its session (its messages would go nowhere), so the close flows on.
	if d == sniff.DirServerToClient && b.srvClosed && !b.HoldServerClose && !b.devClosed {
		b.devConn.Close()
	}
	return n
}

// ReleaseAfter schedules a Release of the direction after delay d.
func (b *Bridge) ReleaseAfter(dir sniff.Direction, d time.Duration) *simtime.Timer {
	return b.clk.Schedule(d, func() { b.Release(dir) })
}

// CloseServerSide ends the server-facing connection gracefully.
func (b *Bridge) CloseServerSide() { b.srvConn.Close() }

// CloseDeviceSide ends the device-facing connection gracefully.
func (b *Bridge) CloseDeviceSide() { b.devConn.Close() }

// Inject writes a raw TLS record into the bridge's outbound stream in the
// given direction, exactly as if the bridge were forwarding it — the raw
// half of a record-and-replay attack. The receiver's TLS stack decides the
// outcome: seq-bound sessions alert on the duplicate, explicit-sequence
// sessions accept or window-drop it. Injection bypasses the delay policy
// (a replayed record is the attacker's own traffic, not a held one).
func (b *Bridge) Inject(d sniff.Direction, rec []byte) {
	b.send(d, rec)
}

func (b *Bridge) send(d sniff.Direction, rec []byte) {
	var conn *tcpsim.Conn
	if d == sniff.DirClientToServer {
		conn = b.srvConn
	} else {
		conn = b.devConn
	}
	// A dead outbound side drops the record; the stats still count it as
	// forwarded so callers can detect loss via the connection state.
	b.met.spoofedSends.Inc()
	_ = conn.Send(rec)
}
