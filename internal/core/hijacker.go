package core

import (
	"fmt"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
)

// Target identifies the session to hijack.
type Target struct {
	// DeviceAddr is the victim device's (or hub's) LAN address.
	DeviceAddr ipaddr.Addr
	// ServerAddr is the IoT server's address (cloud, or the local hub).
	ServerAddr ipaddr.Addr
	// ServerPort is the service port (8883 MQTT, 443 HTTPS, 8443 HAP).
	ServerPort uint16
	// GatewayAddr is the home router's LAN address (the poisoning victim
	// for the inbound direction when the server is off-link).
	GatewayAddr ipaddr.Addr
	// Model is the fingerprint label of the session-owning device, used
	// by the classifier-driven delay primitives.
	Model string
}

// Hijacker owns the man-in-the-middle position for one device↔server pair:
// ARP poisoning on both sides, a divert rule for the flow, and a split
// bridge per TCP connection (devices reconnect; each connection gets a
// fresh bridge under the same policy).
type Hijacker struct {
	atk        *Attacker
	target     Target
	classifier *sniff.Classifier
	policy     Policy
	bridges    []*Bridge
	installed  bool
	ops        []*DelayOp

	// OnNewBridge fires when a hijacked connection establishes.
	OnNewBridge func(*Bridge)
	// OnRecord observes every record on every bridge.
	OnRecord func(*Bridge, RecordInfo)

	predictor *Predictor
}

// NewHijacker prepares (but does not install) a hijack. classifier may be
// nil if only manual policies are used.
func NewHijacker(atk *Attacker, target Target, classifier *sniff.Classifier) *Hijacker {
	return &Hijacker{
		atk:        atk,
		target:     target,
		classifier: classifier,
		policy:     nil,
	}
}

// Target returns the hijack target.
func (h *Hijacker) Target() Target { return h.target }

// Attacker returns the owning attacker.
func (h *Hijacker) Attacker() *Attacker { return h.atk }

// Install poisons both directions and starts intercepting. done (optional)
// fires once the ARP caches are poisoned.
func (h *Hijacker) Install(done func(ok bool)) error {
	if h.installed {
		return fmt.Errorf("core: hijacker for %s already installed", h.target.DeviceAddr)
	}
	if err := h.atk.AcceptSpoofed(h.target.ServerPort, h.target.DeviceAddr, h.accept); err != nil {
		return err
	}
	h.atk.AddDivert(h.divert)
	h.installed = true

	// Outbound: the device resolves either the server itself (local
	// deployment) or its default gateway (cloud deployment).
	outboundClaim := h.target.GatewayAddr
	if h.atk.OnLink(h.target.ServerAddr) {
		outboundClaim = h.target.ServerAddr
	}
	// Inbound: whoever delivers packets *to* the device must believe the
	// device's address is at the attacker's MAC.
	inboundVictim := h.target.GatewayAddr
	if h.atk.OnLink(h.target.ServerAddr) {
		inboundVictim = h.target.ServerAddr
	}
	remaining := 2
	report := func(ok bool) {
		if !ok {
			if done != nil {
				done(false)
				done = nil
			}
			return
		}
		remaining--
		if remaining == 0 && done != nil {
			done(true)
		}
	}
	h.atk.Spoofer.Poison(h.target.DeviceAddr, outboundClaim, report)
	h.atk.Spoofer.Poison(inboundVictim, h.target.DeviceAddr, report)
	return nil
}

// Uninstall withdraws from the man-in-the-middle position: the spoofed
// listener stops accepting, the divert rule turns itself off, and the ARP
// spoofer heals the victims' caches. Live bridges are left to drain; once
// the caches heal, new connections bypass the attacker entirely.
func (h *Hijacker) Uninstall() {
	if !h.installed {
		return
	}
	h.installed = false
	h.atk.StopAccepting(h.target.ServerPort, h.target.DeviceAddr)
	h.atk.Spoofer.Restore()
}

// Installed reports whether the hijack is active.
func (h *Hijacker) Installed() bool { return h.installed }

// Bridges returns every bridge created so far (oldest first).
func (h *Hijacker) Bridges() []*Bridge {
	out := make([]*Bridge, len(h.bridges))
	copy(out, h.bridges)
	return out
}

// CurrentBridge returns the most recent bridge with a live device side.
func (h *Hijacker) CurrentBridge() (*Bridge, bool) {
	for i := len(h.bridges) - 1; i >= 0; i-- {
		if closed, _ := h.bridges[i].DeviceClosed(); !closed {
			return h.bridges[i], true
		}
	}
	return nil, false
}

// SetRawPolicy replaces the per-record policy for all bridges, bypassing
// the delay-operation machinery.
func (h *Hijacker) SetRawPolicy(p Policy) { h.policy = p }

// Predictor returns the hijacker's timeout predictor, once armed with a
// measured profile via ArmPredictor.
func (h *Hijacker) Predictor() *Predictor { return h.predictor }

// ArmPredictor attaches a measured timeout profile so that delay
// primitives can release just before the predicted timeout.
func (h *Hijacker) ArmPredictor(m Measured) {
	h.predictor = NewPredictor(m)
}

func (h *Hijacker) divert(p ipnet.Packet) bool {
	if !h.installed || p.Proto != ipnet.ProtoTCP {
		return false
	}
	match := (p.Src == h.target.DeviceAddr && p.Dst == h.target.ServerAddr) ||
		(p.Src == h.target.ServerAddr && p.Dst == h.target.DeviceAddr)
	if !match {
		return false
	}
	h.atk.TCP.HandlePacket(p)
	return true
}

// accept runs when the device's SYN (diverted to us) completes a handshake
// with the attacker's stack impersonating the server. The attacker then
// dials the real server impersonating the device, reusing the device's own
// source port so the server observes the exact 4-tuple it expects.
func (h *Hijacker) accept(devConn *tcpsim.Conn) {
	srvConn := h.atk.TCP.DialFrom(
		devConn.Remote(), // the device's true endpoint, spoofed
		tcpsim.Endpoint{Addr: h.target.ServerAddr, Port: h.target.ServerPort},
	)
	b := newBridge(h.atk.Clock, devConn, srvConn, &h.policy, h.atk.met)
	b.OnRecord = func(r RecordInfo) {
		if h.predictor != nil {
			h.predictor.Observe(h.classify(r))
		}
		if h.OnRecord != nil {
			h.OnRecord(b, r)
		}
	}
	h.bridges = append(h.bridges, b)
	if h.OnNewBridge != nil {
		h.OnNewBridge(b)
	}
}

// classify resolves a record against the target model's signature.
func (h *Hijacker) classify(r RecordInfo) ClassifiedRecord {
	cr := ClassifiedRecord{RecordInfo: r}
	if h.classifier == nil || h.target.Model == "" {
		return cr
	}
	if m, ok := h.classifier.ClassifyLen(h.target.Model, r.Dir, r.WireLen); ok {
		cr.Msg = m
		cr.Known = true
	}
	return cr
}

// Classify resolves a record against the target model's fingerprint, for
// observers (tracing, custom policies).
func (h *Hijacker) Classify(r RecordInfo) (sniff.MsgSignature, bool) {
	cr := h.classify(r)
	return cr.Msg, cr.Known
}

// ClassifiedRecord pairs a record with its fingerprint match, if any.
type ClassifiedRecord struct {
	RecordInfo

	Msg   sniff.MsgSignature
	Known bool
}
