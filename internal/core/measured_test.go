package core_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/sniff"
)

func clampDur(v uint16, lo, hi time.Duration) time.Duration {
	span := int64(hi-lo) + 1
	return lo + time.Duration(int64(v)%span)
}

// randomMeasured builds plausible profiles from fuzz input.
func randomMeasured(ka, kaTO, evTO, cmdTO uint16, onIdle, hasKA bool) core.Measured {
	m := core.Measured{
		Model:        "fuzz",
		HasKeepAlive: hasKA,
	}
	if hasKA {
		m.KeepAlivePeriod = clampDur(ka, 2*time.Second, 5*time.Minute)
		m.KeepAliveTimeout = clampDur(kaTO, time.Second, 2*time.Minute)
		m.Pattern = proto.PatternFixed
		if onIdle {
			m.Pattern = proto.PatternOnIdle
		}
	}
	if evTO%3 == 0 {
		m.EventTimeout = clampDur(evTO, time.Second, 3*time.Minute)
	}
	if cmdTO%2 == 0 {
		m.CommandTimeout = clampDur(cmdTO, time.Second, time.Minute)
	}
	return m
}

// Property: windows are well-formed (min <= max) and never exceed their
// defining timers.
func TestPropertyWindowWellFormed(t *testing.T) {
	f := func(ka, kaTO, evTO, cmdTO uint16, onIdle, hasKA bool) bool {
		m := randomMeasured(ka, kaTO, evTO, cmdTO, onIdle, hasKA)
		lo, hi, bounded := m.EventWindow()
		if bounded {
			if lo > hi || lo < 0 {
				return false
			}
			if m.EventTimeout > 0 && hi > m.EventTimeout {
				return false
			}
			if m.HasKeepAlive && hi > m.KeepAlivePeriod+m.KeepAliveTimeout {
				return false
			}
		} else if m.EventTimeout > 0 || m.HasKeepAlive {
			return false // something should have bounded it
		}
		clo, chi, cbounded := m.CommandWindow()
		if cbounded && (clo > chi || (m.CommandTimeout > 0 && chi > m.CommandTimeout)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the predictor's forecast is always strictly after the hold
// start when bounded, and never earlier than the tightest constituent
// timer could allow.
func TestPropertyPredictorBounds(t *testing.T) {
	f := func(ka, kaTO, evTO, cmdTO uint16, onIdle, hasKA bool, holdMS uint16) bool {
		m := randomMeasured(ka, kaTO, evTO, cmdTO, onIdle, hasKA)
		p := core.NewPredictor(m)
		holdStart := simtime.Time(holdMS) * time.Millisecond
		for _, kind := range []sniff.MsgKind{sniff.KindEvent, sniff.KindCommand} {
			at, bounded := p.PredictClose(holdStart, kind)
			if !bounded {
				continue
			}
			if at <= holdStart {
				return false
			}
			// Never beyond the loosest possible bound.
			loosest := holdStart
			if m.HasKeepAlive {
				loosest += m.KeepAlivePeriod + m.KeepAliveTimeout
			}
			if m.EventTimeout > loosest-holdStart {
				loosest = holdStart + m.EventTimeout
			}
			if m.CommandTimeout > loosest-holdStart {
				loosest = holdStart + m.CommandTimeout
			}
			if at > loosest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: feeding the predictor observations never makes it forecast a
// close before the hold start.
func TestPropertyPredictorWithObservations(t *testing.T) {
	f := func(obsMS []uint16, holdMS uint16) bool {
		m := core.Measured{
			Model:            "x",
			HasKeepAlive:     true,
			KeepAlivePeriod:  31 * time.Second,
			Pattern:          proto.PatternOnIdle,
			KeepAliveTimeout: 16 * time.Second,
		}
		p := core.NewPredictor(m)
		var last simtime.Time
		for _, o := range obsMS {
			at := last + simtime.Time(o)*time.Millisecond
			last = at
			p.Observe(core.ClassifiedRecord{
				RecordInfo: core.RecordInfo{At: at, Dir: sniff.DirClientToServer},
				Msg:        sniff.MsgSignature{Kind: sniff.KindKeepAlive},
				Known:      true,
			})
		}
		holdStart := last + simtime.Time(holdMS)*time.Millisecond
		at, bounded := p.PredictClose(holdStart, sniff.KindEvent)
		return bounded && at > holdStart
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredString(t *testing.T) {
	m := core.Measured{
		Model:            "H1",
		HasKeepAlive:     true,
		KeepAlivePeriod:  31 * time.Second,
		Pattern:          proto.PatternOnIdle,
		KeepAliveTimeout: 16 * time.Second,
	}
	s := m.String()
	for _, want := range []string{"H1", "31s", "on-idle", "16s", "∞"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
