package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rules"
	"repro/internal/sniff"
	"repro/internal/tlssim"
)

// TestBridgeRawPolicyHoldAndTimedRelease exercises the bridge primitives
// directly: a raw policy holding all device-to-server application records,
// inspection of the hold queue, and a scheduled ReleaseAfter.
func TestBridgeRawPolicyHoldAndTimedRelease(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	b, ok := h.CurrentBridge()
	if !ok {
		t.Fatal("no bridge")
	}
	h.SetRawPolicy(func(_ *core.Bridge, r core.RecordInfo) core.Decision {
		if r.Dir == sniff.DirClientToServer && r.Type == tlssim.RecordApplication {
			return core.Hold
		}
		return core.Forward
	})
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Second)
	if got := b.HeldCount(sniff.DirClientToServer); got < 1 {
		t.Fatalf("held = %d, want >= 1", got)
	}
	holding, since := b.Holding(sniff.DirClientToServer)
	if !holding || since == 0 {
		t.Fatalf("holding=%v since=%v", holding, since)
	}
	if len(tb.Integration.Events()) != 0 {
		t.Fatal("event leaked through a holding bridge")
	}

	// Timed flush. Restore a pass-through policy first so later records flow.
	h.SetRawPolicy(core.ForwardAll)
	b.ReleaseAfter(sniff.DirClientToServer, 10*time.Second)
	tb.Clock.RunFor(5 * time.Second)
	if len(tb.Integration.Events()) != 0 {
		t.Fatal("released early")
	}
	tb.Clock.RunFor(10 * time.Second)
	if len(tb.Integration.Events()) != 1 {
		t.Fatalf("events after timed release = %d", len(tb.Integration.Events()))
	}
	if holding, _ := b.Holding(sniff.DirClientToServer); holding {
		t.Fatal("still holding after release")
	}
}

// TestBridgeOrderingForcesQueueing: once one record is held, later records
// in the same direction queue behind it even if the policy would forward
// them — the TLS sequencing constraint.
func TestBridgeOrderingForcesQueueing(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	b, _ := h.CurrentBridge()
	held := 0
	h.SetRawPolicy(func(_ *core.Bridge, r core.RecordInfo) core.Decision {
		if r.Dir == sniff.DirClientToServer && r.Type == tlssim.RecordApplication && held == 0 {
			held++
			return core.Hold
		}
		return core.Forward // policy would forward, ordering must override
	})
	_ = tb.Device("C2").TriggerEvent("contact", "open")
	tb.Clock.RunFor(time.Second)
	_ = tb.Device("C2").TriggerEvent("contact", "closed")
	tb.Clock.RunFor(time.Second)
	if got := b.HeldCount(sniff.DirClientToServer); got < 2 {
		t.Fatalf("held = %d, want both records queued in order", got)
	}
	b.Release(sniff.DirClientToServer)
	tb.Clock.RunFor(time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 2 || evs[0].Value != "open" || evs[1].Value != "closed" {
		t.Fatalf("events after release = %v (order must be preserved)", evs)
	}
}

// TestHoldServerCloseKeepsDeviceSideUp mirrors Finding 2 from the other
// side: a server-side close can be hidden from the device.
func TestHoldServerCloseKeepsDeviceSideUp(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	b, _ := h.CurrentBridge()
	b.HoldServerClose = true
	// Kill the server side brutally.
	b.ServerConn().Abort()
	tb.Clock.RunFor(10 * time.Second)
	if closed, _ := b.ServerClosed(); !closed {
		t.Fatal("server side should be closed")
	}
	if closed, _ := b.DeviceClosed(); closed {
		t.Fatal("device side must stay up while the close is held")
	}
	if !tb.Device("H3").Connected() {
		t.Fatal("device session should still believe it is connected")
	}
}

// TestAttackerForwardsUnrelatedFlows: the MITM is transparent for devices
// it poisons but does not attack — and invisible to devices it never
// touched.
func TestAttackerForwardsUnrelatedFlows(t *testing.T) {
	tb, _, _ := hijackedHome(t, "C2", "C2", "P2", "M7")
	// P2 and M7 are not hijacked: their flows bypass the attacker entirely
	// (no poisoning); everything must work.
	if err := tb.Device("P2").TriggerEvent("switch", "on"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Device("M7").TriggerEvent("motion", "active"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)
	seen := map[string]bool{}
	for _, ev := range tb.Integration.Events() {
		seen[ev.Device] = true
	}
	if !seen["P2"] || !seen["M7"] {
		t.Fatalf("unrelated devices broken by the attack: %v", seen)
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

// TestTwoHijackersSameAttacker: one foothold, two victims, independent
// delay policies.
func TestTwoHijackersSameAttacker(t *testing.T) {
	tb, err := newTB(77, "C2", "P2")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	hRing, err := tb.Hijack(atk, "C2")
	if err != nil {
		t.Fatal(err)
	}
	hKasa, err := tb.Hijack(atk, "P2")
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()

	hRing.EDelay("C2", 30*time.Second)
	hKasa.EDelay("P2", 10*time.Second)
	_ = tb.Device("C2").TriggerEvent("contact", "open")
	_ = tb.Device("P2").TriggerEvent("switch", "on")

	tb.Clock.RunFor(15 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 1 || evs[0].Device != "P2" {
		t.Fatalf("after 15s want only P2's event, got %v", evs)
	}
	tb.Clock.RunFor(30 * time.Second)
	if len(tb.Integration.Events()) != 2 {
		t.Fatalf("both events should have landed, got %d", len(tb.Integration.Events()))
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

// TestDelayMatchingCustomMatcher delays only a specific record size class.
func TestDelayMatchingCustomMatcher(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2", "M3")
	// Delay only motion events (M3, 1010+21 wire bytes); contact events
	// (C2) pass freely — both ride the same H3 session.
	op := h.DelayMatching(sniff.DirClientToServer, func(cr core.ClassifiedRecord) bool {
		return cr.Known && cr.Msg.Origin == "M3"
	}, 20*time.Second)
	_ = tb.Device("M3").TriggerEvent("motion", "active")
	tb.Clock.RunFor(2 * time.Second)
	// C2's event arrives after M3's hold started: ordering queues it too —
	// demonstrate that the matcher picked M3's record as the head.
	if matched, _ := op.Matched(); !matched {
		t.Fatal("custom matcher never matched")
	}
	tb.Clock.RunFor(30 * time.Second)
	if len(tb.Integration.Events()) != 1 {
		t.Fatalf("motion event not delivered after hold: %v", tb.Integration.Events())
	}
}

// TestRuleEngineSeesDelayedOrder ties the stack together: event order at
// the rule engine equals release order, not physical order.
func TestRuleEngineSeesDelayedOrder(t *testing.T) {
	tb, err := newTB(88, "C2", "M7")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Hijack(atk, "C2")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "log-order",
		Trigger: rules.Trigger{Device: "M7", Attribute: "motion", Value: "active"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "motion"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	h.EDelay("C2", 20*time.Second)
	_ = tb.Device("C2").TriggerEvent("contact", "open") // physically first
	tb.Clock.RunFor(2 * time.Second)
	_ = tb.Device("M7").TriggerEvent("motion", "active") // physically second
	tb.Clock.RunFor(40 * time.Second)

	evs := tb.Integration.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Device != "M7" || evs[1].Device != "C2" {
		t.Fatalf("server order = [%s %s], want the delayed event last", evs[0].Device, evs[1].Device)
	}
	if evs[1].GeneratedAt >= evs[0].GeneratedAt {
		t.Fatal("generation timestamps must still show the physical order")
	}
}

func newTB(seed int64, labels ...string) (*experiment.Testbed, error) {
	return experiment.NewTestbed(experiment.TestbedConfig{Seed: seed, Devices: labels})
}
