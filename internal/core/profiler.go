package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/sniff"
	"repro/internal/tlssim"
)

// Lab is the attacker's controlled environment for profiling a device
// model's timeout behaviour (Section IV-C): the attacker owns a copy of
// the device, can trigger its events and commands at will, and measures
// when delays cause session teardowns. The resulting Measured profile is
// then reused against victims of the same model.
type Lab struct {
	Clock    *simtime.Clock
	Hijacker *Hijacker

	// TriggerEvent makes the lab device emit one event.
	TriggerEvent func() error
	// TriggerCommand makes the lab server issue one command toward the
	// device. Nil for pure sensors.
	TriggerCommand func() error
	// EventOrigin/CommandOrigin are the fingerprint origins of the
	// triggered messages (default: the hijack target's model).
	EventOrigin   string
	CommandOrigin string
	// ServerAlarmAt reports the latest lab-server alarm, if any — the
	// observable for command timeouts on servers that alarm without
	// closing (the HomeKit hub). Optional.
	ServerAlarmAt func() (simtime.Time, bool)

	// Trials per message class. Default 5 (the paper uses 20; pass 20 for
	// the table reproduction).
	Trials int
	// Recovery is the inter-trial settling time. Default 2 minutes, as in
	// the paper.
	Recovery time.Duration
	// IdleObservation bounds the keep-alive discovery phase. Default 10m.
	IdleObservation time.Duration
	// UnboundedCap is how long a hold runs before the profiler declares
	// "no timeout". Default 15 minutes.
	UnboundedCap time.Duration
}

// ErrNoSession reports that the lab device never connected through the
// hijacker.
var ErrNoSession = errors.New("core: lab device has no hijacked session")

func (l *Lab) fill() {
	if l.Trials <= 0 {
		l.Trials = 5
	}
	if l.Recovery <= 0 {
		l.Recovery = 2 * time.Minute
	}
	if l.IdleObservation <= 0 {
		l.IdleObservation = 10 * time.Minute
	}
	if l.UnboundedCap <= 0 {
		l.UnboundedCap = 15 * time.Minute
	}
	if l.EventOrigin == "" {
		l.EventOrigin = l.Hijacker.Target().Model
	}
	if l.CommandOrigin == "" {
		l.CommandOrigin = l.Hijacker.Target().Model
	}
}

// Profile runs the full Section IV-C procedure and returns the measured
// parameters. It drives the simulation clock.
func (l *Lab) Profile() (Measured, error) {
	l.fill()
	m := Measured{Model: l.Hijacker.Target().Model}

	// Step 1: observe idle traffic; find the keep-alive length and period,
	// or conclude the device uses on-demand sessions.
	kaLen, period, hasKA := l.observeKeepAlive()
	m.HasKeepAlive = hasKA
	m.KeepAlivePeriod = period
	if !hasKA {
		if _, alive := l.Hijacker.CurrentBridge(); !alive {
			m.OnDemand = true
		}
	}

	// Step 2: determine the keep-alive pattern by checking whether a
	// normal message postpones the next keep-alive.
	if hasKA {
		pattern, err := l.measurePattern(kaLen, period)
		if err != nil {
			return m, err
		}
		m.Pattern = pattern

		// Step 3: delay a keep-alive in an idle state until timeout.
		kaTimeout, err := l.measureKeepAliveTimeout()
		if err != nil {
			return m, err
		}
		m.KeepAliveTimeout = kaTimeout
	}

	// Step 4: delay event messages right after a keep-alive exchange; a
	// teardown earlier than the keep-alive bound reveals a dedicated
	// normal-message timeout.
	if l.TriggerEvent != nil {
		evTimeout, srvIdle, err := l.measureEventTimeout(m)
		if err != nil {
			return m, err
		}
		m.EventTimeout = evTimeout
		if m.OnDemand {
			m.ServerIdleTimeout = srvIdle
		}
	}

	// Step 4': same procedure for command messages (server-side timers).
	if l.TriggerCommand != nil {
		cmdTimeout, err := l.measureCommandTimeout(m)
		if err != nil {
			return m, err
		}
		m.CommandTimeout = cmdTimeout
	}
	return m, nil
}

// observeKeepAlive watches idle traffic for repeating device-to-server
// records.
func (l *Lab) observeKeepAlive() (wireLen int, period time.Duration, ok bool) {
	type obs struct {
		at  simtime.Time
		len int
	}
	var seen []obs
	restore := l.hookRecords(func(_ *Bridge, r RecordInfo) {
		if r.Dir == sniff.DirClientToServer && r.Type == tlssim.RecordApplication {
			seen = append(seen, obs{at: r.At, len: r.WireLen})
		}
	})
	l.Clock.RunFor(l.IdleObservation)
	restore()

	byLen := make(map[int][]simtime.Time)
	for _, o := range seen {
		byLen[o.len] = append(byLen[o.len], o.at)
	}
	best, bestLen := 0, 0
	for ln, ts := range byLen {
		if len(ts) > best || (len(ts) == best && ln < bestLen) {
			best, bestLen = len(ts), ln
		}
	}
	if best < 3 {
		return 0, 0, false
	}
	ts := byLen[bestLen]
	gaps := make([]time.Duration, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i]-ts[i-1])
	}
	return bestLen, median(gaps), true
}

// measurePattern triggers an event mid-period and checks whether the next
// keep-alive shifted (on-idle) or stayed on schedule (fixed).
func (l *Lab) measurePattern(kaLen int, period time.Duration) (proto.Pattern, error) {
	var kaTimes []simtime.Time
	restore := l.hookRecords(func(_ *Bridge, r RecordInfo) {
		if r.Dir == sniff.DirClientToServer && r.WireLen == kaLen {
			kaTimes = append(kaTimes, r.At)
		}
	})
	defer restore()

	// Wait for a keep-alive to anchor the schedule.
	if !l.runUntil(func() bool { return len(kaTimes) > 0 }, 2*period+l.IdleObservation) {
		return 0, fmt.Errorf("core: no keep-alive observed while measuring pattern")
	}
	anchor := kaTimes[len(kaTimes)-1]
	// Fire an event a third of the way into the period.
	l.Clock.RunUntil(anchor + period/3)
	if err := l.TriggerEvent(); err != nil {
		return 0, err
	}
	eventAt := l.Clock.Now()
	seen := len(kaTimes)
	if !l.runUntil(func() bool { return len(kaTimes) > seen }, 2*period+time.Minute) {
		return 0, fmt.Errorf("core: no keep-alive after probe event")
	}
	nextKA := kaTimes[len(kaTimes)-1]
	// On-idle: the event pushed the schedule to event+period.
	// Fixed: the keep-alive stayed at anchor+period.
	distOnIdle := absDur(nextKA - (eventAt + period))
	distFixed := absDur(nextKA - (anchor + period))
	if distOnIdle < distFixed {
		return proto.PatternOnIdle, nil
	}
	return proto.PatternFixed, nil
}

// measureKeepAliveTimeout holds keep-alives until the device tears the
// session down, over several trials.
func (l *Lab) measureKeepAliveTimeout() (time.Duration, error) {
	var samples []time.Duration
	for i := 0; i < l.Trials; i++ {
		op := l.Hijacker.DelayKeepAlive(0)
		if !l.runUntil(func() bool { m, _ := op.Matched(); return m }, l.IdleObservation) {
			return 0, fmt.Errorf("core: keep-alive never captured (trial %d)", i)
		}
		_, matchedAt := op.Matched()
		closedAt, ok := l.waitDeviceClose(op, l.UnboundedCap)
		if !ok {
			return 0, fmt.Errorf("core: no teardown when holding keep-alive (trial %d)", i)
		}
		samples = append(samples, closedAt-matchedAt)
		op.Release()
		if err := l.recoverSession(); err != nil {
			return 0, err
		}
	}
	return median(samples), nil
}

// measureEventTimeout delays events right after a keep-alive exchange and
// compares the observed teardown with the keep-alive bound.
func (l *Lab) measureEventTimeout(m Measured) (evTimeout, srvIdle time.Duration, err error) {
	var eventSamples []time.Duration
	var srvSamples []time.Duration
	dedicated := 0
	for i := 0; i < l.Trials; i++ {
		if m.HasKeepAlive {
			if !l.waitForKeepAlive() {
				return 0, 0, fmt.Errorf("core: no keep-alive before event trial %d", i)
			}
		}
		op := l.Hijacker.EDelay(l.EventOrigin, 0)
		if err := l.TriggerEvent(); err != nil {
			return 0, 0, err
		}
		if !l.runUntil(func() bool { mt, _ := op.Matched(); return mt }, time.Minute) {
			return 0, 0, fmt.Errorf("core: event never captured (trial %d)", i)
		}
		_, matchedAt := op.Matched()

		kaBound := time.Duration(0)
		if m.HasKeepAlive {
			if m.Pattern == proto.PatternOnIdle {
				kaBound = m.KeepAlivePeriod + m.KeepAliveTimeout
			} else {
				kaBound = m.KeepAlivePeriod + m.KeepAliveTimeout // worst case from just-after-KA
			}
		}
		limit := l.UnboundedCap
		if kaBound > 0 {
			limit = kaBound + time.Minute
		}
		closedAt, closed := l.waitDeviceClose(op, limit)
		switch {
		case !closed:
			// No teardown at all within the cap (HomeKit-style): keep
			// holding to measure a server-side idle reap if one exists.
			if srvAt, ok := l.waitServerClose(op, l.UnboundedCap); ok {
				srvSamples = append(srvSamples, srvAt-matchedAt)
			}
		case m.HasKeepAlive && closedAt-matchedAt < kaBound-2*time.Second:
			dedicated++
			eventSamples = append(eventSamples, closedAt-matchedAt)
		case !m.HasKeepAlive:
			// On-demand: the device-side 408. Keep holding for the
			// server-side idle reap (the true delivery bound, Finding 1).
			dedicated++
			eventSamples = append(eventSamples, closedAt-matchedAt)
			if srvAt, ok := l.waitServerClose(op, l.UnboundedCap); ok {
				srvSamples = append(srvSamples, srvAt-matchedAt)
			}
		}
		op.Release()
		if err := l.recoverSession(); err != nil {
			return 0, 0, err
		}
	}
	if dedicated > l.Trials/2 {
		evTimeout = median(eventSamples)
	}
	if len(srvSamples) > 0 {
		srvIdle = median(srvSamples)
	}
	return evTimeout, srvIdle, nil
}

// measureCommandTimeout delays commands and watches for server-side
// teardown or (for servers that only alarm) a lab alarm.
func (l *Lab) measureCommandTimeout(m Measured) (time.Duration, error) {
	var samples []time.Duration
	dedicated := 0
	for i := 0; i < l.Trials; i++ {
		if m.HasKeepAlive {
			if !l.waitForKeepAlive() {
				return 0, fmt.Errorf("core: no keep-alive before command trial %d", i)
			}
		}
		op := l.Hijacker.CDelay(l.CommandOrigin, 0)
		if err := l.TriggerCommand(); err != nil {
			return 0, err
		}
		if !l.runUntil(func() bool { mt, _ := op.Matched(); return mt }, time.Minute) {
			return 0, fmt.Errorf("core: command never captured (trial %d)", i)
		}
		_, matchedAt := op.Matched()

		kaBound := time.Duration(0)
		if m.HasKeepAlive {
			kaBound = m.KeepAlivePeriod + m.KeepAliveTimeout
		}
		limit := l.UnboundedCap
		if kaBound > 0 {
			limit = kaBound + time.Minute
		}
		at, kind := l.waitCommandOutcome(op, matchedAt, limit)
		if kind == outcomeServer || kind == outcomeAlarm {
			d := at - matchedAt
			if kaBound == 0 || d < kaBound-2*time.Second {
				dedicated++
				samples = append(samples, d)
			}
		}
		op.Release()
		if err := l.recoverSession(); err != nil {
			return 0, err
		}
	}
	if dedicated > l.Trials/2 {
		return median(samples), nil
	}
	return 0, nil
}

type outcomeKind int

const (
	outcomeNone outcomeKind = iota
	outcomeServer
	outcomeDevice
	outcomeAlarm
)

func (l *Lab) waitCommandOutcome(op *DelayOp, since simtime.Time, limit time.Duration) (simtime.Time, outcomeKind) {
	deadline := l.Clock.Now() + limit
	for l.Clock.Now() < deadline {
		if op.bridge != nil {
			if closed, at := op.bridge.ServerClosed(); closed {
				return at, outcomeServer
			}
			if closed, at := op.bridge.DeviceClosed(); closed {
				return at, outcomeDevice
			}
		}
		if l.ServerAlarmAt != nil {
			if at, ok := l.ServerAlarmAt(); ok && at > since {
				return at, outcomeAlarm
			}
		}
		if !l.step(deadline) {
			break
		}
	}
	return 0, outcomeNone
}

// --- plumbing ---

// hookRecords chains an observer onto the hijacker and returns a restore
// function.
func (l *Lab) hookRecords(fn func(*Bridge, RecordInfo)) (restore func()) {
	prev := l.Hijacker.OnRecord
	l.Hijacker.OnRecord = func(b *Bridge, r RecordInfo) {
		fn(b, r)
		if prev != nil {
			prev(b, r)
		}
	}
	return func() { l.Hijacker.OnRecord = prev }
}

// waitForKeepAlive waits for a *successful exchange* of a keep-alive: the
// device's request and the server's answer both past the bridge. Arming a
// hold before the answer has flowed back would strand it in the hold queue
// and trip the device's keep-alive deadline instead of the timer under
// measurement.
func (l *Lab) waitForKeepAlive() bool {
	kaSeen := false
	exchanged := false
	restore := l.hookRecords(func(_ *Bridge, r RecordInfo) {
		cr := l.Hijacker.classify(r)
		if cr.Known && cr.Msg.Kind == sniff.KindKeepAlive && r.Dir == sniff.DirClientToServer {
			kaSeen = true
			return
		}
		if kaSeen && r.Dir == sniff.DirServerToClient {
			exchanged = true
		}
	})
	defer restore()
	if !l.runUntil(func() bool { return exchanged }, l.IdleObservation) {
		return false
	}
	// Small settle so the response also reaches the device.
	l.Clock.RunFor(time.Second)
	return true
}

func (l *Lab) waitDeviceClose(op *DelayOp, limit time.Duration) (simtime.Time, bool) {
	deadline := l.Clock.Now() + limit
	for {
		if op.bridge != nil {
			if closed, at := op.bridge.DeviceClosed(); closed {
				return at, true
			}
		}
		if l.Clock.Now() >= deadline || !l.step(deadline) {
			return 0, false
		}
	}
}

func (l *Lab) waitServerClose(op *DelayOp, limit time.Duration) (simtime.Time, bool) {
	deadline := l.Clock.Now() + limit
	for {
		if op.bridge != nil {
			if closed, at := op.bridge.ServerClosed(); closed {
				return at, true
			}
		}
		if l.Clock.Now() >= deadline || !l.step(deadline) {
			return 0, false
		}
	}
}

// recoverSession settles state between trials and waits for the device
// session to re-establish through the hijacker.
func (l *Lab) recoverSession() error {
	l.Clock.RunFor(l.Recovery)
	if b, ok := l.Hijacker.CurrentBridge(); ok && b.Alive() {
		return nil
	}
	// On-demand devices have no standing session; nothing to wait for.
	return nil
}

// runUntil advances the clock until cond holds or cap elapses.
func (l *Lab) runUntil(cond func() bool, limit time.Duration) bool {
	deadline := l.Clock.Now() + limit
	for !cond() {
		if l.Clock.Now() >= deadline || !l.step(deadline) {
			return cond()
		}
	}
	return true
}

// step executes the next event if it is before deadline; otherwise it
// advances the clock to the deadline and reports false.
func (l *Lab) step(deadline simtime.Time) bool {
	next, ok := l.Clock.NextEventAt()
	if !ok || next > deadline {
		l.Clock.RunUntil(deadline)
		return false
	}
	l.Clock.Step()
	return true
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
