package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rules"
	"repro/internal/tlssim"
)

// TestLocalDeploymentDisabledExecution runs a Type-III attack in the
// Figure 1(b) deployment: HomeKit accessories, rules on the local hub,
// and an unbounded condition-event hold (Table II's "∞").
func TestLocalDeploymentDisabledExecution(t *testing.T) {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    1500,
		Devices: []string{"A1", "A2", "A6"}, // contact, motion, bulb
	})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		t.Fatal(err)
	}
	// Each accessory has its own TCP session to the hub; hijack two.
	hContact, err := tb.Hijack(atk, "A1")
	if err != nil {
		t.Fatal(err)
	}
	hMotion, err := tb.Hijack(atk, "A2")
	if err != nil {
		t.Fatal(err)
	}
	// "When motion goes active, if the door is open, turn on the light."
	if err := tb.LocalHub.AddRule(rules.Rule{
		Name:      "light-path",
		Trigger:   rules.Trigger{Device: "A2", Attribute: "motion", Value: "active"},
		Condition: rules.Eq{Device: "A1", Attribute: "contact", Value: "open"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "A6", Attribute: "switch", Value: "on"}},
	}); err != nil {
		t.Fatal(err)
	}
	tb.Start()
	_ = tb.Device("A1").TriggerEvent("contact", "closed")
	_ = tb.Device("A6").TriggerEvent("switch", "off")
	tb.Clock.RunFor(2 * time.Second)

	// Hold the door-open event until after the motion trigger has passed.
	core.DisabledExecution(hContact, "A1", hMotion, "A2", 3*time.Second)

	_ = tb.Device("A1").TriggerEvent("contact", "open")
	tb.Clock.RunFor(4 * time.Second)
	_ = tb.Device("A2").TriggerEvent("motion", "active")
	tb.Clock.RunFor(time.Minute)

	if got := tb.Device("A6").State("switch"); got == "on" {
		t.Fatal("rule fired; the attack should have disabled it")
	}
	if n := len(tb.LocalHub.Alarms()); n != 0 {
		t.Fatalf("hub alarms = %d", n)
	}
	// The held event eventually landed (stale) without any fuss.
	found := false
	for _, ev := range tb.LocalHub.Events() {
		if ev.Device == "A1" && ev.Value == "open" {
			found = true
		}
	}
	if !found {
		t.Fatal("held event never delivered")
	}
}

// TestForgeryContrastsWithDelay reproduces Clarification I end-to-end: the
// same man-in-the-middle position that delays records silently CANNOT
// forge them — an injected fake record kills the session loudly, while a
// 30-second hold changes nothing.
func TestForgeryContrastsWithDelay(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	b, ok := h.CurrentBridge()
	if !ok {
		t.Fatal("no bridge")
	}

	// Phase 1: a long hold. Nothing notices.
	op := h.EDelay("C2", 30*time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(time.Minute)
	if !op.Released() || len(tb.Integration.Events()) != 1 {
		t.Fatal("delay phase failed")
	}
	if tb.TotalAlarmCount() != 0 {
		t.Fatal("delay phase raised alarms")
	}
	if !b.Alive() {
		t.Fatal("bridge should survive the delay")
	}

	// Phase 2: the attacker tries to forge an event toward the server. The
	// fake record has no valid AEAD tag; the server's TLS layer raises an
	// alert and tears the session down — detection, immediately.
	forged := make([]byte, 5+50)
	forged[0] = byte(tlssim.RecordApplication)
	forged[1], forged[2] = 0x03, 0x03
	forged[3], forged[4] = 0, 50
	if err := b.ServerConn().Send(forged); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(10 * time.Second)
	if closed, _ := b.ServerClosed(); !closed {
		t.Fatal("forgery should have killed the server side")
	}

	// The device quietly reconnects; whether the broker alarms depends on
	// replacement timing — but the session disruption is visible in the
	// record stream and TCP state, unlike any amount of delaying.
	tb.Clock.RunFor(30 * time.Second)
	if _, ok := h.CurrentBridge(); !ok {
		t.Fatal("device never re-established after the forgery fallout")
	}
}
