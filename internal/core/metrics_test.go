package core_test

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestAttackMetrics(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	const hold = 25 * time.Second
	h.EDelay("C2", hold)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(40 * time.Second)

	snap := tb.Metrics.Snapshot()
	if got := snap.Counter("core_bridges_total"); got == 0 {
		t.Fatal("no bridges counted")
	}
	if got := snap.Counter("core_records_held_total", obs.L("dir", "c2s")); got == 0 {
		t.Fatal("no held records counted")
	}
	released := snap.Counter("core_records_released_total", obs.L("dir", "c2s"))
	held := snap.Counter("core_records_held_total", obs.L("dir", "c2s"))
	if released != held {
		t.Fatalf("released %d != held %d after the hold ended", released, held)
	}
	g := snap.Gauge("core_held_records")
	if g.Value != 0 {
		t.Fatalf("held gauge = %d after release, want 0", g.Value)
	}
	if g.Max == 0 {
		t.Fatal("held gauge high-water mark never moved")
	}
	hv, ok := snap.Histogram("core_release_latency_seconds")
	if !ok || hv.Count == 0 {
		t.Fatal("release latency never observed")
	}
	// The one deliberate hold lasted ~25s; the histogram must place it in a
	// bucket bounded at >= hold.
	if hv.Sum < hold.Seconds() {
		t.Fatalf("release latency sum = %v, want >= %v", hv.Sum, hold.Seconds())
	}
	if got := snap.Counter("core_spoofed_sends_total"); got == 0 {
		t.Fatal("no spoofed sends counted")
	}
	// Records flowed both ways through the bridge.
	for _, dir := range []string{"c2s", "s2c"} {
		if got := snap.Counter("core_records_observed_total", obs.L("dir", dir)); got == 0 {
			t.Fatalf("no %s records observed", dir)
		}
	}
	// The trace ring recorded the hold lifecycle.
	var sawHold, sawRelease bool
	for _, ev := range snap.Trace {
		if ev.Component != "core" {
			continue
		}
		switch ev.Event {
		case "hold_start":
			sawHold = true
		case "release":
			sawRelease = true
		}
	}
	if !sawHold || !sawRelease {
		t.Fatalf("trace missing hold lifecycle: hold=%v release=%v", sawHold, sawRelease)
	}
}

func TestTransparentRelayCountsNoHolds(t *testing.T) {
	tb, _, h := hijackedHome(t, "C2", "C2")
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if _, ok := h.CurrentBridge(); !ok {
		t.Fatal("no bridge")
	}
	snap := tb.Metrics.Snapshot()
	for _, dir := range []string{"c2s", "s2c"} {
		if got := snap.Counter("core_records_held_total", obs.L("dir", dir)); got != 0 {
			t.Fatalf("transparent relay held %d %s records", got, dir)
		}
	}
	if got := snap.Counter("core_spoofed_sends_total"); got == 0 {
		t.Fatal("relayed records must count as spoofed sends")
	}
}
