package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// profileDevice runs the Section IV-C procedure against a lab copy of the
// device and returns the measured parameters.
func profileDevice(t *testing.T, label string, trials int) core.Measured {
	t.Helper()
	tb, _, h := hijackedHome(t, label, label)
	lab, err := tb.NewLab(h, label)
	if err != nil {
		t.Fatal(err)
	}
	lab.Trials = trials
	lab.Recovery = 30 * time.Second // lab-tuned; the paper waits 2 minutes
	m, err := lab.Profile()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProfilerRecoversSmartThingsParameters(t *testing.T) {
	m := profileDevice(t, "C1", 3)
	if !m.HasKeepAlive {
		t.Fatal("keep-alive not detected")
	}
	if m.KeepAlivePeriod < 30*time.Second || m.KeepAlivePeriod > 32*time.Second {
		t.Fatalf("period = %v, want about 31s", m.KeepAlivePeriod)
	}
	if m.Pattern != proto.PatternOnIdle {
		t.Fatalf("pattern = %v, want on-idle", m.Pattern)
	}
	if m.KeepAliveTimeout < 15*time.Second || m.KeepAliveTimeout > 17*time.Second {
		t.Fatalf("keep-alive timeout = %v, want about 16s", m.KeepAliveTimeout)
	}
	if m.EventTimeout != 0 {
		t.Fatalf("event timeout = %v, want none (∞)", m.EventTimeout)
	}
	lo, hi, bounded := m.EventWindow()
	if !bounded || lo < 45*time.Second || hi > 49*time.Second {
		t.Fatalf("event window = [%v,%v], want about 47s", lo, hi)
	}
}

func TestProfilerRecoversHuePattern(t *testing.T) {
	m := profileDevice(t, "L2", 3)
	if m.Pattern != proto.PatternFixed {
		t.Fatalf("pattern = %v, want fixed (Hue bridge)", m.Pattern)
	}
	if m.KeepAlivePeriod < 118*time.Second || m.KeepAlivePeriod > 122*time.Second {
		t.Fatalf("period = %v, want about 120s", m.KeepAlivePeriod)
	}
	if m.KeepAliveTimeout < 58*time.Second || m.KeepAliveTimeout > 62*time.Second {
		t.Fatalf("keep-alive timeout = %v, want about 60s", m.KeepAliveTimeout)
	}
	lo, hi, bounded := m.EventWindow()
	if !bounded || lo < 58*time.Second || hi > 182*time.Second {
		t.Fatalf("event window = [%v,%v], want about [60s,180s]", lo, hi)
	}
}

func TestProfilerRecoversHueCommandTimeout(t *testing.T) {
	m := profileDevice(t, "L2", 3)
	if m.CommandTimeout < 19*time.Second || m.CommandTimeout > 23*time.Second {
		t.Fatalf("command timeout = %v, want about 21s", m.CommandTimeout)
	}
}

func TestProfilerDetectsDedicatedEventTimeout(t *testing.T) {
	// SimpliSafe keypad: a dedicated 25s event timeout shorter than the
	// keep-alive bound (45s).
	m := profileDevice(t, "K2", 3)
	if m.EventTimeout < 23*time.Second || m.EventTimeout > 27*time.Second {
		t.Fatalf("event timeout = %v, want about 25s", m.EventTimeout)
	}
	lo, _, bounded := m.EventWindow()
	if !bounded || lo >= 30*time.Second {
		t.Fatalf("K2 window = %v, must stay the sub-30s outlier", lo)
	}
}

func TestProfilerDetectsOnDemandDevice(t *testing.T) {
	m := profileDevice(t, "M7", 3)
	if !m.OnDemand {
		t.Fatal("on-demand transport not detected")
	}
	if m.HasKeepAlive {
		t.Fatal("on-demand device has no keep-alives")
	}
	// Device-side 408 at ~30s.
	if m.EventTimeout < 28*time.Second || m.EventTimeout > 32*time.Second {
		t.Fatalf("device-side event timeout = %v, want about 30s", m.EventTimeout)
	}
	// Server-side idle reap at ~5m — the true delivery bound (Finding 1).
	if m.ServerIdleTimeout < 4*time.Minute || m.ServerIdleTimeout > 6*time.Minute {
		t.Fatalf("server idle timeout = %v, want about 5m", m.ServerIdleTimeout)
	}
	lo, _, bounded := m.EventWindow()
	if !bounded || lo < 2*time.Minute {
		t.Fatalf("window = %v, want > 2 minutes", lo)
	}
}

func TestProfilerHomeKitUnbounded(t *testing.T) {
	tb, _, h := hijackedHome(t, "A1", "A1")
	lab, err := tb.NewLab(h, "A1")
	if err != nil {
		t.Fatal(err)
	}
	lab.Trials = 1
	lab.Recovery = 10 * time.Second
	lab.UnboundedCap = 10 * time.Minute
	m, err := lab.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if m.HasKeepAlive {
		t.Fatal("HAP accessory should show no keep-alive")
	}
	if m.EventTimeout != 0 {
		t.Fatalf("event timeout = %v, want none", m.EventTimeout)
	}
	if _, _, bounded := m.EventWindow(); bounded {
		t.Fatal("HomeKit event window must be unbounded")
	}
}

func TestProfilerHomeKitCommandTimeout(t *testing.T) {
	tb, _, h := hijackedHome(t, "A6", "A6")
	lab, err := tb.NewLab(h, "A6")
	if err != nil {
		t.Fatal(err)
	}
	lab.Trials = 2
	lab.Recovery = 10 * time.Second
	lab.IdleObservation = 3 * time.Minute
	lab.UnboundedCap = 5 * time.Minute
	m, err := lab.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if m.CommandTimeout < 9*time.Second || m.CommandTimeout > 11*time.Second {
		t.Fatalf("command timeout = %v, want about 10s (hub no-response)", m.CommandTimeout)
	}
}
