package core

import (
	"time"

	"repro/internal/simtime"
	"repro/internal/sniff"
)

// DelayOp is one armed delay: it waits for a matching record, holds it
// (and, by TLS ordering, everything behind it) and releases either after a
// fixed duration, at a predicted-timeout margin, or manually.
type DelayOp struct {
	h     *Hijacker
	match func(ClassifiedRecord) bool
	dir   sniff.Direction

	// hold selects the release strategy.
	holdFor time.Duration // > 0: fixed duration
	margin  time.Duration // > 0: predictor-driven (release at predicted close - margin)
	manual  bool

	bridge    *Bridge
	matched   bool
	matchedAt simtime.Time
	released  bool
	relTimer  *simtime.Timer
	cancelled bool
	// traceDetail labels the op's trace span (origin/kind of the captured
	// record), set at match time.
	traceDetail string

	// OnMatched fires when the target record starts being held.
	OnMatched func(ClassifiedRecord)
	// OnReleased fires when the hold ends, with the achieved delay.
	OnReleased func(held time.Duration)
}

// Matched reports whether the op has captured its record, and when.
func (op *DelayOp) Matched() (bool, simtime.Time) { return op.matched, op.matchedAt }

// Released reports whether the hold has ended.
func (op *DelayOp) Released() bool { return op.released }

// Release ends the hold now, flushing held records in order.
func (op *DelayOp) Release() {
	if !op.matched || op.released || op.cancelled {
		return
	}
	op.released = true
	if op.relTimer != nil {
		op.relTimer.Stop()
	}
	held := op.h.atk.Clock.Now() - op.matchedAt
	if m := op.h.atk.met; m.trace != nil {
		m.trace.Emit(op.h.atk.Clock.Now(), "core", "op_released", op.traceDetail, int64(held))
	}
	op.bridge.Release(op.dir)
	if op.OnReleased != nil {
		op.OnReleased(held)
	}
}

// Cancel disarms an op that has not matched yet (a matched op must be
// released instead).
func (op *DelayOp) Cancel() {
	if op.matched {
		return
	}
	op.cancelled = true
}

// HeldDuration reports how long the record has been (or was) held.
func (op *DelayOp) HeldDuration() time.Duration {
	if !op.matched {
		return 0
	}
	if op.released {
		return 0 // consult OnReleased for the final figure
	}
	return op.h.atk.Clock.Now() - op.matchedAt
}

// arm registers the op and ensures the hijacker's policy dispatches ops.
func (h *Hijacker) arm(op *DelayOp) *DelayOp {
	if h.policy == nil {
		h.policy = h.opsPolicy
	}
	h.ops = append(h.ops, op)
	return op
}

// opsPolicy is the hijacker's default policy: the first armed, unmatched
// op whose matcher accepts the record captures it.
func (h *Hijacker) opsPolicy(b *Bridge, r RecordInfo) Decision {
	cr := h.classify(r)
	for _, op := range h.ops {
		if op.cancelled || op.matched || op.dir != r.Dir {
			continue
		}
		if !op.match(cr) {
			continue
		}
		op.matched = true
		op.matchedAt = h.atk.Clock.Now()
		op.bridge = b
		if m := h.atk.met; m.trace != nil {
			op.traceDetail = r.Dir.String()
			if cr.Known {
				op.traceDetail = cr.Msg.Origin + "/" + cr.Msg.Kind.String()
			}
			m.trace.Emit(op.matchedAt, "core", "op_matched", op.traceDetail, int64(r.WireLen))
		}
		if op.OnMatched != nil {
			op.OnMatched(cr)
		}
		h.scheduleRelease(op, cr)
		return Hold
	}
	return Forward
}

// armRelease (re)schedules the op's release at the given instant, reusing
// the op's timer allocation across rearms.
func (op *DelayOp) armRelease(at simtime.Time) {
	if op.relTimer == nil {
		op.relTimer = op.h.atk.Clock.NewTimer(op.Release)
	}
	op.relTimer.ResetAt(at)
}

func (h *Hijacker) scheduleRelease(op *DelayOp, cr ClassifiedRecord) {
	switch {
	case op.manual:
		// Caller releases.
	case op.holdFor > 0:
		op.armRelease(h.atk.Clock.Now() + op.holdFor)
	case op.margin > 0:
		kind := sniff.KindEvent
		if cr.Known {
			kind = cr.Msg.Kind
		} else if cr.Dir == sniff.DirServerToClient {
			kind = sniff.KindCommand
		}
		closeAt, bounded := h.predictor.PredictClose(op.matchedAt, kind)
		if !bounded {
			// No timeout exists; the hold is indefinite until the caller
			// releases (the HomeKit case).
			return
		}
		releaseAt := closeAt - op.margin
		if releaseAt <= h.atk.Clock.Now() {
			// The margin consumes the whole window: release as soon as the
			// record has been enqueued (never synchronously from inside the
			// policy, which runs before the record joins the hold queue).
			op.armRelease(h.atk.Clock.Now())
			return
		}
		op.armRelease(releaseAt)
	}
}

// matcherFor builds a record matcher from a fingerprint origin and kind.
func matcherFor(origin string, kind sniff.MsgKind) func(ClassifiedRecord) bool {
	return func(cr ClassifiedRecord) bool {
		return cr.Known && cr.Msg.Origin == origin && cr.Msg.Kind == kind
	}
}

// EDelay arms the event-message-delay primitive: the next event from the
// given origin device is held for the given duration, then released in
// order. A zero duration makes the hold manual.
func (h *Hijacker) EDelay(origin string, hold time.Duration) *DelayOp {
	return h.arm(&DelayOp{
		h:       h,
		dir:     sniff.DirClientToServer,
		match:   matcherFor(origin, sniff.KindEvent),
		holdFor: hold,
		manual:  hold == 0,
	})
}

// CDelay arms the command-message-delay primitive for the next command to
// the given origin device. A zero duration makes the hold manual.
func (h *Hijacker) CDelay(origin string, hold time.Duration) *DelayOp {
	return h.arm(&DelayOp{
		h:       h,
		dir:     sniff.DirServerToClient,
		match:   matcherFor(origin, sniff.KindCommand),
		holdFor: hold,
		manual:  hold == 0,
	})
}

// DelayKeepAlive arms a hold on the next device keep-alive (the profiling
// step 3 measurement). A zero duration makes the hold manual.
func (h *Hijacker) DelayKeepAlive(hold time.Duration) *DelayOp {
	return h.arm(&DelayOp{
		h:       h,
		dir:     sniff.DirClientToServer,
		match:   func(cr ClassifiedRecord) bool { return cr.Known && cr.Msg.Kind == sniff.KindKeepAlive },
		holdFor: hold,
		manual:  hold == 0,
	})
}

// MaxEDelay arms an event delay that releases margin before the predicted
// timeout — the maximum stealthy delay of Section IV-C. The hijacker's
// predictor must be armed. If the device has no bounding timeout the hold
// is indefinite until released manually.
func (h *Hijacker) MaxEDelay(origin string, margin time.Duration) *DelayOp {
	return h.arm(&DelayOp{
		h:      h,
		dir:    sniff.DirClientToServer,
		match:  matcherFor(origin, sniff.KindEvent),
		margin: margin,
	})
}

// MaxCDelay is MaxEDelay for commands.
func (h *Hijacker) MaxCDelay(origin string, margin time.Duration) *DelayOp {
	return h.arm(&DelayOp{
		h:      h,
		dir:    sniff.DirServerToClient,
		match:  matcherFor(origin, sniff.KindCommand),
		margin: margin,
	})
}

// DelayMatching arms a custom delay. dir orients the hold; match sees
// classified records; hold semantics follow EDelay.
func (h *Hijacker) DelayMatching(dir sniff.Direction, match func(ClassifiedRecord) bool, hold time.Duration) *DelayOp {
	return h.arm(&DelayOp{
		h:       h,
		dir:     dir,
		match:   match,
		holdFor: hold,
		manual:  hold == 0,
	})
}
