// Package proto holds the small vocabulary shared by the simulation's
// application protocols: keep-alive patterns, session close reasons, and
// server-side alarms.
package proto

import (
	"fmt"

	"repro/internal/simtime"
)

// Pattern describes when a session's initiator sends keep-alives
// (Section IV-B of the paper, the "pattern of keep-alive messages").
type Pattern int

// Keep-alive patterns.
const (
	// PatternFixed sends keep-alives on a strict period, independent of
	// other traffic (e.g. the Philips Hue bridge's 120s schedule).
	PatternFixed Pattern = iota + 1
	// PatternOnIdle resets the keep-alive timer on every send, so
	// keep-alives are only exchanged when the session is otherwise idle
	// (e.g. the SmartThings hub's 31s schedule).
	PatternOnIdle
	// PatternNone marks devices without keep-alives (on-demand sessions).
	PatternNone
)

// String names the pattern as the paper's tables do.
func (p Pattern) String() string {
	switch p {
	case PatternFixed:
		return "fixed"
	case PatternOnIdle:
		return "on-idle"
	case PatternNone:
		return "none"
	default:
		return "unknown"
	}
}

// CloseReason explains why a session ended.
type CloseReason int

// Close reasons.
const (
	// ReasonGraceful means an orderly shutdown.
	ReasonGraceful CloseReason = iota + 1
	// ReasonKeepAliveTimeout means a keep-alive went unanswered past the
	// initiator's timeout threshold — the device-side alarm the attacker
	// must stay ahead of.
	ReasonKeepAliveTimeout
	// ReasonAckTimeout means a normal message's acknowledgement or
	// response timed out.
	ReasonAckTimeout
	// ReasonTransport means the TCP or TLS layer failed.
	ReasonTransport
	// ReasonServerClosed means the server ended the session.
	ReasonServerClosed
)

// String names the reason for logs.
func (r CloseReason) String() string {
	switch r {
	case ReasonGraceful:
		return "graceful"
	case ReasonKeepAliveTimeout:
		return "keepalive-timeout"
	case ReasonAckTimeout:
		return "ack-timeout"
	case ReasonTransport:
		return "transport-error"
	case ReasonServerClosed:
		return "server-closed"
	default:
		return "unknown"
	}
}

// Alarm is a server-side anomaly report — exactly what the phantom-delay
// attack must never generate.
type Alarm struct {
	At       simtime.Time
	ClientID string
	Kind     string
	Detail   string
}

// String renders the alarm for logs.
func (a Alarm) String() string {
	return fmt.Sprintf("[%v] %s: %s (%s)", a.At, a.ClientID, a.Kind, a.Detail)
}

// AlarmLog accumulates alarms and optionally notifies an observer.
type AlarmLog struct {
	alarms []Alarm
	// OnAlarm, if set, fires for every recorded alarm.
	OnAlarm func(Alarm)
}

// Raise records an alarm.
func (l *AlarmLog) Raise(at simtime.Time, clientID, kind, detail string) {
	a := Alarm{At: at, ClientID: clientID, Kind: kind, Detail: detail}
	l.alarms = append(l.alarms, a)
	if l.OnAlarm != nil {
		l.OnAlarm(a)
	}
}

// All returns a copy of the recorded alarms.
func (l *AlarmLog) All() []Alarm {
	out := make([]Alarm, len(l.alarms))
	copy(out, l.alarms)
	return out
}

// Count returns the number of recorded alarms.
func (l *AlarmLog) Count() int { return len(l.alarms) }

// Reset discards the recorded alarms, keeping the observer hook and the
// backing array. A reset log behaves identically to a fresh one.
func (l *AlarmLog) Reset() {
	clear(l.alarms)
	l.alarms = l.alarms[:0]
}

// CountKind returns the number of alarms of one kind.
func (l *AlarmLog) CountKind(kind string) int {
	n := 0
	for _, a := range l.alarms {
		if a.Kind == kind {
			n++
		}
	}
	return n
}
