package proto

import (
	"testing"
	"time"
)

func TestPatternStrings(t *testing.T) {
	tests := []struct {
		p    Pattern
		want string
	}{
		{PatternFixed, "fixed"},
		{PatternOnIdle, "on-idle"},
		{PatternNone, "none"},
		{Pattern(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Pattern(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestCloseReasonStrings(t *testing.T) {
	tests := []struct {
		r    CloseReason
		want string
	}{
		{ReasonGraceful, "graceful"},
		{ReasonKeepAliveTimeout, "keepalive-timeout"},
		{ReasonAckTimeout, "ack-timeout"},
		{ReasonTransport, "transport-error"},
		{ReasonServerClosed, "server-closed"},
		{CloseReason(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("CloseReason(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestAlarmLogRaiseAndQuery(t *testing.T) {
	var l AlarmLog
	var observed []Alarm
	l.OnAlarm = func(a Alarm) { observed = append(observed, a) }

	l.Raise(time.Second, "dev-1", "device-offline", "gone")
	l.Raise(2*time.Second, "dev-2", "command-timeout", "lock/set")
	l.Raise(3*time.Second, "dev-1", "device-offline", "gone again")

	if l.Count() != 3 {
		t.Fatalf("Count = %d, want 3", l.Count())
	}
	if l.CountKind("device-offline") != 2 || l.CountKind("command-timeout") != 1 {
		t.Fatalf("kind counts wrong: %v", l.All())
	}
	if l.CountKind("nope") != 0 {
		t.Fatal("unknown kind should count 0")
	}
	if len(observed) != 3 {
		t.Fatalf("observer saw %d alarms", len(observed))
	}
	all := l.All()
	if len(all) != 3 || all[0].At != time.Second || all[2].Detail != "gone again" {
		t.Fatalf("All() = %v", all)
	}
	// All returns a copy.
	all[0].ClientID = "mutated"
	if l.All()[0].ClientID != "dev-1" {
		t.Fatal("All() leaked internal slice")
	}
}

func TestAlarmString(t *testing.T) {
	a := Alarm{At: 5 * time.Second, ClientID: "H1", Kind: "device-offline", Detail: "lost"}
	want := "[5s] H1: device-offline (lost)"
	if a.String() != want {
		t.Fatalf("String() = %q, want %q", a.String(), want)
	}
}

func TestEmptyAlarmLog(t *testing.T) {
	var l AlarmLog
	if l.Count() != 0 || len(l.All()) != 0 {
		t.Fatal("zero-value log should be empty and usable")
	}
}
