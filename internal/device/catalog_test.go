package device

import (
	"testing"
	"time"

	"repro/internal/proto"
)

func TestCatalogHasFiftyDevices(t *testing.T) {
	cat := Catalog()
	if len(cat) != 50 {
		t.Fatalf("catalog size = %d, want 50", len(cat))
	}
	if got := len(CloudProfiles()); got != 33 {
		t.Fatalf("cloud roster = %d, want 33 (Table I)", got)
	}
	if got := len(LocalProfiles()); got != 17 {
		t.Fatalf("local roster = %d, want 17 (Table II)", got)
	}
}

func TestCatalogLabelsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range Catalog() {
		if p.Label == "" {
			t.Fatalf("profile %q has empty label", p.Model)
		}
		if seen[p.Label] {
			t.Fatalf("duplicate label %s", p.Label)
		}
		seen[p.Label] = true
	}
}

func TestCatalogStructurallySound(t *testing.T) {
	byLabel := ByLabel()
	for _, p := range Catalog() {
		if p.Model == "" || p.Vendor == "" || p.Class == "" {
			t.Errorf("%s: missing identity fields", p.Label)
		}
		if p.EventAttr == "" || len(p.EventValues) == 0 {
			t.Errorf("%s: no reportable attribute", p.Label)
		}
		if p.EventLen <= 0 {
			t.Errorf("%s: no event length", p.Label)
		}
		switch p.Transport {
		case TransportViaHub:
			hub, ok := byLabel[p.ViaHub]
			if !ok {
				t.Errorf("%s: unknown hub %q", p.Label, p.ViaHub)
				continue
			}
			if !hub.IsHub() {
				t.Errorf("%s: via non-hub %s", p.Label, hub.Label)
			}
		case TransportMQTT, TransportHTTPLong:
			if p.KeepAlivePeriod <= 0 || p.KeepAliveTimeout <= 0 {
				t.Errorf("%s: long-lived transport without keep-alive parameters", p.Label)
			}
			if p.KeepAlivePattern != proto.PatternFixed && p.KeepAlivePattern != proto.PatternOnIdle {
				t.Errorf("%s: bad keep-alive pattern", p.Label)
			}
			if p.KeepAliveLen <= 0 {
				t.Errorf("%s: no keep-alive length", p.Label)
			}
			if p.ServerDomain == "" {
				t.Errorf("%s: no server domain", p.Label)
			}
		case TransportHTTPOnDemand:
			if p.EventTimeout <= 0 || p.ServerIdleTimeout <= 0 {
				t.Errorf("%s: on-demand device needs event + server-idle timeouts", p.Label)
			}
		case TransportHAP:
			if p.ServerDomain != "local" {
				t.Errorf("%s: HAP device must use the local domain", p.Label)
			}
		default:
			t.Errorf("%s: unknown transport", p.Label)
		}
		if p.CommandAttr != "" && p.Transport != TransportViaHub {
			if p.CommandLen <= 0 {
				t.Errorf("%s: commandable device without command length", p.Label)
			}
		}
	}
}

func TestPaperProseValuesEncodedExactly(t *testing.T) {
	byLabel := ByLabel()
	st := byLabel["H1"]
	if st.KeepAlivePeriod != 31*time.Second || st.KeepAliveTimeout != 16*time.Second ||
		st.KeepAlivePattern != proto.PatternOnIdle || st.KeepAliveLen != 40 {
		t.Fatalf("SmartThings hub mismatch: %+v", st)
	}
	if st.EventTimeout != 0 {
		t.Fatal("SmartThings events must have no dedicated timeout")
	}
	hue := byLabel["H2"]
	if hue.KeepAlivePeriod != 120*time.Second || hue.KeepAlivePattern != proto.PatternFixed ||
		hue.KeepAliveTimeout != 60*time.Second || hue.CommandTimeout != 21*time.Second {
		t.Fatalf("Hue bridge mismatch: %+v", hue)
	}
	ring := byLabel["H3"]
	if ring.KeepAliveLen != 48 {
		t.Fatalf("Ring keep-alive len = %d, want 48", ring.KeepAliveLen)
	}
	if byLabel["C2"].EventLen != 986 {
		t.Fatalf("Ring contact event len = %d, want 986", byLabel["C2"].EventLen)
	}
	if byLabel["L1"].KeepAlivePeriod > 2*time.Second {
		t.Fatal("LIFX keep-alive must be sub-2s")
	}
	if lo, _, ok := byLabel["K2"].MaxEventDelay(); !ok || lo >= 30*time.Second {
		t.Fatal("SimpliSafe keypad must be the sub-30s outlier")
	}
}

func TestEventWindowsMatchPaperAggregate(t *testing.T) {
	// "Event messages of all tested devices can be delayed for longer than
	// 30 seconds except the SimpliSafe keypad."
	byLabel := ByLabel()
	for _, p := range CloudProfiles() {
		sp, err := SessionProfile(p, byLabel)
		if err != nil {
			t.Fatal(err)
		}
		eff := sp
		if p.Transport == TransportViaHub {
			// Children inherit session timeouts; their own EventTimeout
			// field is unset.
			eff.EventLen = p.EventLen
		}
		lo, _, bounded := eff.MaxEventDelay()
		if !bounded {
			continue // unbounded is trivially > 30s
		}
		if p.Label == "K2" {
			if lo >= 30*time.Second {
				t.Fatalf("K2 window %v, want < 30s", lo)
			}
			continue
		}
		if lo < 30*time.Second {
			t.Errorf("%s: min event window %v < 30s", p.Label, lo)
		}
	}
}

func TestHomeKitWindowsUnbounded(t *testing.T) {
	for _, p := range LocalProfiles() {
		if _, _, bounded := p.MaxEventDelay(); bounded {
			t.Errorf("%s: HAP event window should be unbounded", p.Label)
		}
	}
}

func TestMaxEventDelayShapes(t *testing.T) {
	onIdle := Profile{
		Transport:        TransportMQTT,
		KeepAlivePeriod:  31 * time.Second,
		KeepAlivePattern: proto.PatternOnIdle,
		KeepAliveTimeout: 16 * time.Second,
	}
	lo, hi, ok := onIdle.MaxEventDelay()
	if !ok || lo != 47*time.Second || hi != 47*time.Second {
		t.Fatalf("on-idle window = [%v,%v], want constant 47s", lo, hi)
	}
	fixed := Profile{
		Transport:        TransportMQTT,
		KeepAlivePeriod:  120 * time.Second,
		KeepAlivePattern: proto.PatternFixed,
		KeepAliveTimeout: 60 * time.Second,
	}
	lo, hi, ok = fixed.MaxEventDelay()
	if !ok || lo != 60*time.Second || hi != 180*time.Second {
		t.Fatalf("fixed window = [%v,%v], want [60s,180s] (the Hue range)", lo, hi)
	}
	dedicated := Profile{Transport: TransportHTTPLong, EventTimeout: 25 * time.Second}
	lo, hi, ok = dedicated.MaxEventDelay()
	if !ok || lo != 25*time.Second || hi != 25*time.Second {
		t.Fatalf("dedicated window = [%v,%v], want 25s", lo, hi)
	}
	onDemand := Profile{Transport: TransportHTTPOnDemand, ServerIdleTimeout: 5 * time.Minute}
	lo, _, ok = onDemand.MaxEventDelay()
	if !ok || lo != 5*time.Minute {
		t.Fatalf("on-demand window = %v, want 5m", lo)
	}
}

func TestMaxCommandDelay(t *testing.T) {
	p := Profile{CommandAttr: "switch", CommandTimeout: 21 * time.Second}
	lo, hi, ok := p.MaxCommandDelay()
	if !ok || lo != 21*time.Second || hi != 21*time.Second {
		t.Fatalf("command window = [%v,%v], want 21s", lo, hi)
	}
	sensor := Profile{}
	if _, _, ok := sensor.MaxCommandDelay(); ok {
		t.Fatal("pure sensor has no command window")
	}
	noTimeout := Profile{
		CommandAttr:      "switch",
		Transport:        TransportMQTT,
		KeepAlivePeriod:  31 * time.Second,
		KeepAlivePattern: proto.PatternOnIdle,
		KeepAliveTimeout: 16 * time.Second,
	}
	lo, _, ok = noTimeout.MaxCommandDelay()
	if !ok || lo != 47*time.Second {
		t.Fatalf("keep-alive-bounded command window = %v, want 47s", lo)
	}
}

func TestSessionProfileResolution(t *testing.T) {
	byLabel := ByLabel()
	c2 := byLabel["C2"]
	sp, err := SessionProfile(c2, byLabel)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Label != "H3" {
		t.Fatalf("C2 session owner = %s, want H3", sp.Label)
	}
	h1 := byLabel["H1"]
	sp, err = SessionProfile(h1, byLabel)
	if err != nil || sp.Label != "H1" {
		t.Fatalf("hub should own its session: %v %v", sp.Label, err)
	}
	if _, err := SessionProfile(Profile{Label: "X", Transport: TransportViaHub, ViaHub: "GONE"}, byLabel); err == nil {
		t.Fatal("dangling hub reference should fail")
	}
}

func TestLookup(t *testing.T) {
	p, err := Lookup("H1")
	if err != nil || p.Label != "H1" {
		t.Fatalf("Lookup(H1) = %v, %v", p.Label, err)
	}
	if _, err := Lookup("ZZ"); err == nil {
		t.Fatal("unknown label should fail")
	}
}

func TestBodyCodec(t *testing.T) {
	b := EncodeBody("LK1", "lock", "unlocked")
	origin, attr, value, err := DecodeBody(b)
	if err != nil || origin != "LK1" || attr != "lock" || value != "unlocked" {
		t.Fatalf("decode = %s %s %s %v", origin, attr, value, err)
	}
	if _, _, _, err := DecodeBody([]byte("no separators")); err == nil {
		t.Fatal("malformed body should fail")
	}
	// Values may contain the separator; only the first two split.
	b = EncodeBody("D", "a", "x|y")
	_, _, v, err := DecodeBody(b)
	if err != nil || v != "x|y" {
		t.Fatalf("value with separator: %q %v", v, err)
	}
}

func TestTopicHelpers(t *testing.T) {
	if EventTopic("C2") != "C2/event" || CommandTopic("LK1") != "LK1/set" {
		t.Fatal("topic helpers wrong")
	}
}

// TestDeclaredLengthsFitEncodings: every profile's declared wire lengths
// must exceed the raw protocol encoding of its messages, or padding could
// not reach them and the fingerprint signatures would be wrong.
func TestDeclaredLengthsFitEncodings(t *testing.T) {
	byLabel := ByLabel()
	for _, p := range Catalog() {
		owner, err := SessionProfile(p, byLabel)
		if err != nil {
			t.Fatal(err)
		}
		longestValue := ""
		for _, v := range p.EventValues {
			if len(v) > len(longestValue) {
				longestValue = v
			}
		}
		// Conservative upper bounds on raw encodings per transport: header
		// fields + topic/path + ids + body.
		rawEvent := 64 + len(p.Label) + len(p.EventAttr) + len(longestValue)
		if p.EventLen < rawEvent && p.EventLen > 0 {
			// The encoding itself would exceed the declared length.
			t.Errorf("%s: event length %d below raw encoding bound %d", p.Label, p.EventLen, rawEvent)
		}
		if p.CommandAttr != "" && p.CommandLen > 0 {
			rawCmd := 64 + len(p.Label) + len(p.CommandAttr) + len(longestValue)
			if p.CommandLen < rawCmd {
				t.Errorf("%s: command length %d below raw encoding bound %d", p.Label, p.CommandLen, rawCmd)
			}
		}
		if owner.KeepAliveLen > 0 && owner.KeepAliveLen < 16 {
			t.Errorf("%s: keep-alive length %d too small for any framing", owner.Label, owner.KeepAliveLen)
		}
	}
}
