// Package device models IoT devices as timeout-behaviour profiles driving
// real protocol sessions (MQTT, HTTP long-lived, HTTP on-demand, or a
// HAP-like local protocol) over the simulated network stack.
//
// A Profile is the ground truth of Section IV-B's three parameters —
// keep-alive timeout threshold, keep-alive pattern (period + fixed/on-idle),
// and normal-message timeout threshold — plus the wire lengths that make a
// device's encrypted traffic fingerprintable. The attack-side profiler
// (internal/core) must rediscover these values from observed behaviour.
package device

import (
	"time"

	"repro/internal/proto"
	"repro/internal/tlssim"
)

// Transport selects the protocol stack a device speaks to its server.
type Transport int

// Transports.
const (
	// TransportMQTT is a long-lived MQTT session (most hubs and plugs).
	TransportMQTT Transport = iota + 1
	// TransportHTTPLong is a long-lived HTTP-like session with
	// application keep-alives (most cameras).
	TransportHTTPLong
	// TransportHTTPOnDemand opens a session per event and closes it after
	// the response (battery WiFi sensors; the Finding 1 devices).
	TransportHTTPOnDemand
	// TransportHAP is the local HomeKit-like protocol (Table II devices).
	TransportHAP
	// TransportViaHub means the device has no network presence of its own:
	// its traffic rides its hub's session (Zigbee/Z-Wave devices).
	TransportViaHub
)

// String names the transport for table rendering.
func (t Transport) String() string {
	switch t {
	case TransportMQTT:
		return "mqtt"
	case TransportHTTPLong:
		return "http-long"
	case TransportHTTPOnDemand:
		return "http-on-demand"
	case TransportHAP:
		return "hap"
	case TransportViaHub:
		return "via-hub"
	default:
		return "unknown"
	}
}

// Profile is a device model's ground-truth behaviour.
type Profile struct {
	// Label is the paper-style row identifier (H1, C2, M7, ...).
	Label string
	// Model is the commercial product name.
	Model string
	// Vendor is the manufacturer.
	Vendor string
	// Class is the device category ("contact sensor", "camera", ...).
	Class string
	// Transport selects the protocol stack.
	Transport Transport
	// ViaHub names the hub profile this device rides on (Zigbee/Z-Wave
	// devices); it implies TransportViaHub.
	ViaHub string
	// ServerDomain groups devices under their vendor endpoint cloud.
	// Local (HAP) devices use "local".
	ServerDomain string

	// KeepAlivePeriod is the keep-alive interval of the device's session
	// (zero for on-demand and HAP devices).
	KeepAlivePeriod time.Duration
	// KeepAlivePattern is fixed or on-idle.
	KeepAlivePattern proto.Pattern
	// KeepAliveTimeout is how long the device waits for a keep-alive
	// response before tearing the session down.
	KeepAliveTimeout time.Duration
	// EventTimeout bounds the device's wait for an event acknowledgement;
	// zero means none (the "∞" rows of Table I and all of Table II).
	EventTimeout time.Duration
	// CommandTimeout is the server-side wait for a command response;
	// zero means the device takes no commands or the server never times
	// them out.
	CommandTimeout time.Duration
	// ServerIdleTimeout is how long the vendor server keeps an on-demand
	// session open with no traffic (bounds Finding 1 delays).
	ServerIdleTimeout time.Duration

	// EventLen, CommandLen and KeepAliveLen are the plaintext wire lengths
	// of the device's messages — its traffic fingerprint.
	EventLen     int
	CommandLen   int
	KeepAliveLen int

	// EventAttr and EventValues describe the device's primary reportable
	// attribute (used by examples and PoC scenarios).
	EventAttr   string
	EventValues []string
	// CommandAttr names the actuator attribute, empty for pure sensors.
	CommandAttr string

	// ReplayMode is the TLS stack the device's firmware ships: seq-bound
	// (modern, the zero value), legacy explicit-nonce, or null-cipher. It
	// decides whether captured records can be re-injected (and read) by an
	// on-path attacker; see internal/replay.
	ReplayMode tlssim.ReplayMode
	// ReplayWindow is the DTLS-style anti-replay window the device
	// negotiates for its sessions (0 disables it). Only meaningful for the
	// explicit-sequence replay modes.
	ReplayWindow int
	// CloudDedup marks vendors whose cloud discards events it has already
	// accepted (same device, attribute, value and generation timestamp) —
	// the server-side replay defense.
	CloudDedup bool

	// ReconnectDelay is the device's backoff before re-dialling after a
	// session loss. Default 3s.
	ReconnectDelay time.Duration
	// CellularBackup marks devices with a fallback WAN (the Ring base
	// station): repeated failures to reach the cloud over WiFi activate
	// it. The paper's Case 1 observes that phantom delays never trigger
	// it, because the device never perceives a connectivity failure.
	CellularBackup bool
	// AppDownloads is the popularity indicator the paper uses (companion
	// app downloads on Google Play).
	AppDownloads int
}

// IsHub reports whether other devices ride this profile's session.
func (p Profile) IsHub() bool { return p.Class == "hub" || p.Class == "bridge" }

// EffectiveTransport resolves TransportViaHub to the hub's own transport
// when the hub profile is known.
func (p Profile) EffectiveTransport() Transport { return p.Transport }

// MaxEventDelay computes the theoretical maximum e-Delay window for the
// profile, following Section IV-C:
//
//   - a dedicated event timeout bounds the delay directly;
//   - otherwise the window runs until the session's next keep-alive would
//     time out: for on-idle patterns the event resets the schedule, giving
//     a constant period+timeout window; for fixed patterns the window
//     depends on the phase and spans [timeout, period+timeout];
//   - on-demand devices are bounded only by the server's idle timeout
//     (Finding 1), and HAP devices by nothing at all.
//
// The returned min/max bracket the window; unbounded is reported via ok.
// When both a dedicated event timeout and a keep-alive bound exist, the
// earlier one wins: a held event also stalls the keep-alives queued behind
// it, so whichever timer fires first ends the session.
func (p Profile) MaxEventDelay() (min, max time.Duration, bounded bool) {
	switch p.Transport {
	case TransportHAP:
		return 0, 0, false
	case TransportHTTPOnDemand:
		// The device-side timeout is harmless (Finding 1); delivery is
		// bounded only by the server's idle reaper.
		if p.ServerIdleTimeout > 0 {
			return p.ServerIdleTimeout, p.ServerIdleTimeout, true
		}
		return 0, 0, false
	}
	var kaMin, kaMax time.Duration
	kaBounded := p.KeepAlivePeriod > 0
	if kaBounded {
		if p.KeepAlivePattern == proto.PatternOnIdle {
			kaMin = p.KeepAlivePeriod + p.KeepAliveTimeout
			kaMax = kaMin
		} else {
			kaMin = p.KeepAliveTimeout
			kaMax = p.KeepAlivePeriod + p.KeepAliveTimeout
		}
	}
	switch {
	case p.EventTimeout > 0 && kaBounded:
		return minDur(p.EventTimeout, kaMin), minDur(p.EventTimeout, kaMax), true
	case p.EventTimeout > 0:
		return p.EventTimeout, p.EventTimeout, true
	case kaBounded:
		return kaMin, kaMax, true
	default:
		return 0, 0, false
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// MaxCommandDelay computes the theoretical maximum c-Delay window: the
// command timeout when one exists (still capped by the keep-alive bound,
// since holding the server direction also stalls keep-alive responses),
// otherwise the keep-alive bound alone.
func (p Profile) MaxCommandDelay() (min, max time.Duration, bounded bool) {
	if p.CommandAttr == "" {
		return 0, 0, false
	}
	if p.Transport == TransportHAP {
		// HAP events are unacknowledged, but commands do get responses
		// bounded by the hub's per-command timeout.
		if p.CommandTimeout > 0 {
			return p.CommandTimeout, p.CommandTimeout, true
		}
		return 0, 0, false
	}
	q := p
	q.EventTimeout = p.CommandTimeout
	return q.MaxEventDelay()
}
