package device_test

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/proto"
)

func home(t *testing.T, labels ...string) *experiment.Testbed {
	t.Helper()
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: 777, Devices: labels})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	return tb
}

func TestDeviceReconnectsAfterAbort(t *testing.T) {
	tb := home(t, "P2")
	d := tb.Device("P2")
	if !d.Connected() {
		t.Fatal("not connected")
	}
	first := d.TCPConn()
	first.Abort()
	tb.Clock.RunFor(10 * time.Second)
	if !d.Connected() {
		t.Fatal("device did not reconnect")
	}
	if d.TCPConn() == first {
		t.Fatal("reconnect should produce a new transport connection")
	}
	if got := d.LogCount("closed"); got != 1 {
		t.Fatalf("closed log entries = %d, want 1", got)
	}
	if got := d.LogCount("connected"); got != 2 {
		t.Fatalf("connected log entries = %d, want 2", got)
	}
}

func TestDeviceStopDisablesReconnect(t *testing.T) {
	tb := home(t, "P2")
	d := tb.Device("P2")
	d.Stop()
	tb.Clock.RunFor(30 * time.Second)
	if d.Connected() {
		t.Fatal("stopped device should stay disconnected")
	}
	if err := d.TriggerEvent("switch", "on"); err == nil {
		t.Fatal("event on a stopped device should fail")
	}
}

func TestChildEventRidesHubSession(t *testing.T) {
	tb := home(t, "C2")
	hub := tb.Device("H3")
	child := tb.Device("C2")
	if child.TCPConn() != hub.TCPConn() {
		t.Fatal("child transport should be the hub's")
	}
	if err := child.TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if hub.LogCount("event-sent") != 1 {
		t.Fatalf("hub event-sent = %d", hub.LogCount("event-sent"))
	}
	if child.State("contact") != "open" {
		t.Fatal("child state not tracked")
	}
}

func TestChildEventDroppedWhileHubDown(t *testing.T) {
	tb := home(t, "C2")
	hub := tb.Device("H3")
	hub.TCPConn().Abort()
	// Before the reconnect completes, events are dropped (the paper's
	// cited observation that blocked events are lost permanently).
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err == nil {
		t.Fatal("event during outage should report an error")
	}
	if hub.LogCount("event-dropped") != 1 {
		t.Fatalf("event-dropped = %d", hub.LogCount("event-dropped"))
	}
	tb.Clock.RunFor(10 * time.Second)
	if len(tb.Integration.Events()) != 0 {
		t.Fatal("dropped event must not be delivered later")
	}
}

func TestActuationEmitsConfirmingEvent(t *testing.T) {
	tb := home(t, "P2")
	actuated := ""
	tb.Device("P2").OnActuation = func(attr, value string) { actuated = attr + "=" + value }
	ep := tb.Endpoints["tplinkcloud.com"]
	if err := ep.SendCommand("P2", "switch", "on", nil); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if actuated != "switch=on" {
		t.Fatalf("actuation hook = %q", actuated)
	}
	// The confirming state update reached the cloud.
	evs := tb.Integration.Events()
	if len(evs) != 1 || evs[0].Device != "P2" || evs[0].Value != "on" {
		t.Fatalf("confirming event = %v", evs)
	}
}

func TestOnDemandDeviceSessionPerEvent(t *testing.T) {
	tb := home(t, "M7")
	d := tb.Device("M7")
	if d.TCPConn() != nil {
		t.Fatal("on-demand device should hold no standing connection")
	}
	if !d.Connected() {
		t.Fatal("on-demand devices report connected (they dial per event)")
	}
	for i := 0; i < 3; i++ {
		v := []string{"active", "inactive"}[i%2]
		if err := d.TriggerEvent("motion", v); err != nil {
			t.Fatal(err)
		}
		tb.Clock.RunFor(5 * time.Second)
	}
	if got := len(tb.Integration.Events()); got != 3 {
		t.Fatalf("events = %d, want 3", got)
	}
	if d.LogCount("event-sent") != 3 {
		t.Fatalf("event-sent = %d", d.LogCount("event-sent"))
	}
}

func TestNewPanicsOnViaHubProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p, _ := device.Lookup("C2")
	device.New(device.Env{}, p)
}

func TestNewChildPanicsOnSessionOwner(t *testing.T) {
	tb := home(t, "P2")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p, _ := device.Lookup("P2")
	device.NewChild(tb.Device("P2"), p)
}

func TestSessionLossReasonSurfaced(t *testing.T) {
	tb := home(t, "P2")
	var reason proto.CloseReason
	tb.Device("P2").OnSessionClosed = func(r proto.CloseReason) { reason = r }
	tb.Device("P2").TCPConn().Abort()
	tb.Clock.RunFor(time.Second)
	if reason != proto.ReasonTransport {
		t.Fatalf("reason = %v, want transport", reason)
	}
}

func TestDeviceLogCopies(t *testing.T) {
	tb := home(t, "P2")
	d := tb.Device("P2")
	_ = d.TriggerEvent("switch", "on")
	log1 := d.Log()
	if len(log1) == 0 {
		t.Fatal("empty log")
	}
	log1[0].Detail = "mutated"
	if d.Log()[0].Detail == "mutated" {
		t.Fatal("Log() leaked internal slice")
	}
}

func TestStopAcrossTransports(t *testing.T) {
	tb := home(t, "P2", "CM1", "A1")
	for _, label := range []string{"P2", "CM1", "A1"} {
		d := tb.Device(label)
		if !d.Connected() {
			t.Fatalf("%s not connected", label)
		}
		d.Stop()
	}
	tb.Clock.RunFor(30 * time.Second)
	for _, label := range []string{"P2", "CM1", "A1"} {
		if tb.Device(label).Connected() {
			t.Fatalf("%s still connected after Stop", label)
		}
	}
	// Graceful stops raise nothing.
	if tb.TotalAlarmCount() != 0 {
		t.Fatalf("alarms = %d", tb.TotalAlarmCount())
	}
}

func TestCommandForUnknownChildIgnored(t *testing.T) {
	tb := home(t, "C2")
	ep := tb.Endpoints["ring.com"]
	// Register a bogus routing entry and send a command for it: the hub
	// receives a command for a child it does not know and must ignore it.
	p, _ := device.Lookup("C2")
	p.Label = "GHOST"
	p.CommandAttr = "contact"
	p.CommandTimeout = 5 * time.Second
	ep.RegisterDevice(p, "H3")
	if err := ep.SendCommand("GHOST", "contact", "open", nil); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if tb.Device("H3").State("contact") != "" {
		t.Fatal("hub applied a command for an unknown child to itself")
	}
}

func TestChildrenListing(t *testing.T) {
	tb := home(t, "C2", "M3")
	hub := tb.Device("H3")
	kids := hub.Children()
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	seen := map[string]bool{}
	for _, c := range kids {
		seen[c.Label()] = true
	}
	if !seen["C2"] || !seen["M3"] {
		t.Fatalf("children = %v", seen)
	}
}

func TestTransportStrings(t *testing.T) {
	tests := []struct {
		tr   device.Transport
		want string
	}{
		{device.TransportMQTT, "mqtt"},
		{device.TransportHTTPLong, "http-long"},
		{device.TransportHTTPOnDemand, "http-on-demand"},
		{device.TransportHAP, "hap"},
		{device.TransportViaHub, "via-hub"},
		{device.Transport(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.tr.String(); got != tt.want {
			t.Errorf("%d = %q want %q", tt.tr, got, tt.want)
		}
	}
}
