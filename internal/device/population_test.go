package device_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/simtime"
)

func TestEcosystemsCoverEveryViaHubDevice(t *testing.T) {
	covered := make(map[string]bool)
	for _, eco := range device.Ecosystems() {
		if p, err := device.Lookup(eco.Hub); err != nil || !p.IsHub() {
			t.Fatalf("ecosystem hub %q invalid (err=%v)", eco.Hub, err)
		}
		for _, c := range eco.Children {
			covered[c] = true
		}
	}
	for _, p := range device.Catalog() {
		if p.Transport == device.TransportViaHub && !covered[p.Label] {
			t.Errorf("via-hub device %s missing from ecosystems", p.Label)
		}
	}
}

func TestSampleDevicesDeterministicAndValid(t *testing.T) {
	tmpl := device.DefaultPopulationTemplate()
	byLabel := device.ByLabel()
	for seed := int64(0); seed < 50; seed++ {
		a := tmpl.SampleDevices(simtime.NewRand(seed))
		b := tmpl.SampleDevices(simtime.NewRand(seed))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: sampling not deterministic: %v vs %v", seed, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty home", seed)
		}
		seen := make(map[string]bool)
		for _, l := range a {
			p, ok := byLabel[l]
			if !ok {
				t.Fatalf("seed %d: unknown label %q", seed, l)
			}
			if seen[l] {
				t.Fatalf("seed %d: duplicate label %q", seed, l)
			}
			seen[l] = true
			if p.Transport == device.TransportViaHub && !seen[p.ViaHub] {
				t.Fatalf("seed %d: child %s sampled before/without hub %s", seed, l, p.ViaHub)
			}
		}
	}
}

func TestSampleDevicesMixesVary(t *testing.T) {
	tmpl := device.DefaultPopulationTemplate()
	sizes := make(map[int]bool)
	for seed := int64(0); seed < 200; seed++ {
		sizes[len(tmpl.SampleDevices(simtime.NewRand(seed)))] = true
	}
	if len(sizes) < 4 {
		t.Fatalf("population not heterogeneous: only %d distinct home sizes", len(sizes))
	}
}

func TestWithTimingJitter(t *testing.T) {
	p, err := device.Lookup("H1")
	if err != nil {
		t.Fatal(err)
	}
	rng := simtime.NewRand(7)
	q := p.WithTimingJitter(rng, 0.2)
	if q.EventLen != p.EventLen || q.KeepAliveLen != p.KeepAliveLen || q.CommandLen != p.CommandLen {
		t.Fatal("jitter must not touch wire lengths")
	}
	if q.Label != p.Label || q.Transport != p.Transport {
		t.Fatal("jitter must not change identity")
	}
	lo := time.Duration(float64(p.KeepAlivePeriod) * 0.8)
	hi := time.Duration(float64(p.KeepAlivePeriod) * 1.2)
	if q.KeepAlivePeriod < lo || q.KeepAlivePeriod > hi {
		t.Fatalf("keep-alive period %v outside ±20%% of %v", q.KeepAlivePeriod, p.KeepAlivePeriod)
	}
	if q.EventTimeout != 0 {
		t.Fatal("zero timeout must stay zero under jitter")
	}
	// Clamped factor: even f=3 must not zero a timeout.
	r := p.WithTimingJitter(simtime.NewRand(9), 3)
	if r.KeepAliveTimeout < p.KeepAliveTimeout/2 {
		t.Fatalf("jitter factor not clamped: %v from %v", r.KeepAliveTimeout, p.KeepAliveTimeout)
	}
}
