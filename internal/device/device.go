package device

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/hapsim"
	"repro/internal/httpsim"
	"repro/internal/ipnet"
	"repro/internal/mqttsim"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// Env is the network context a session-owning device runs in.
type Env struct {
	Clock *simtime.Clock
	IP    *ipnet.Stack
	TCP   *tcpsim.Stack
	RNG   *simtime.Rand
	// Server is the device's cloud endpoint (or local hub for HAP).
	Server tcpsim.Endpoint
	// Trace, when enabled, makes the device's TLS and application-protocol
	// sessions emit flight-recorder events.
	Trace *obs.Trace
}

// EventTopic returns the MQTT topic carrying a device's events.
func EventTopic(label string) string { return label + "/event" }

// CommandTopic returns the MQTT topic carrying commands for a device.
func CommandTopic(label string) string { return label + "/set" }

// EncodeBody packs an event or command into a message body.
func EncodeBody(origin, attr, value string) []byte {
	return []byte(origin + "|" + attr + "|" + value)
}

// DecodeBody unpacks a message body produced by EncodeBody.
func DecodeBody(b []byte) (origin, attr, value string, err error) {
	parts := strings.SplitN(string(b), "|", 3)
	if len(parts) != 3 {
		return "", "", "", fmt.Errorf("device: malformed body %q", b)
	}
	return parts[0], parts[1], parts[2], nil
}

// LogEntry records one device-visible occurrence.
type LogEntry struct {
	At     simtime.Time
	Kind   string // "connected", "closed", "event-sent", "command-applied", "event-dropped"
	Detail string
}

// ErrNotConnected reports an event raised while the device's session (or
// its hub's) is down.
var ErrNotConnected = errors.New("device: session not connected")

// Device is a running device instance.
type Device struct {
	env     Env
	profile Profile

	parent   *Device
	children map[string]*Device

	state     map[string]string
	log       []LogEntry
	connected bool
	stopped   bool

	failedConnects int
	cellular       bool

	mqtt *mqttsim.Client
	http *httpsim.Client
	hap  *hapsim.Accessory

	reconnect *simtime.Timer

	// OnActuation fires when a command changes the physical world (after
	// the state update and before the confirming event is emitted).
	OnActuation func(attr, value string)
	// OnSessionClosed observes session loss (reconnection is automatic).
	OnSessionClosed func(proto.CloseReason)
}

// New creates a session-owning device (anything but TransportViaHub).
func New(env Env, p Profile) *Device {
	if p.Transport == TransportViaHub {
		panic("device: use NewChild for via-hub devices")
	}
	if p.ReconnectDelay <= 0 {
		p.ReconnectDelay = 3 * time.Second
	}
	return &Device{
		env:      env,
		profile:  p,
		children: make(map[string]*Device),
		state:    make(map[string]string),
	}
}

// NewChild creates a hub-attached device riding the parent's session.
func NewChild(parent *Device, p Profile) *Device {
	if p.Transport != TransportViaHub {
		panic("device: NewChild requires TransportViaHub")
	}
	d := &Device{
		env:      parent.env,
		profile:  p,
		parent:   parent,
		children: make(map[string]*Device),
		state:    make(map[string]string),
	}
	parent.children[p.Label] = d
	return d
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.profile }

// Label returns the device's identifier.
func (d *Device) Label() string { return d.profile.Label }

// Children returns the hub's attached devices (empty for non-hubs),
// ordered by label: the attachment table is a map, and callers walk the
// result to drive deterministic startup and measurement.
func (d *Device) Children() []*Device {
	out := make([]*Device, 0, len(d.children))
	for _, c := range d.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label() < out[j].Label() })
	return out
}

// State returns the device's last known value for an attribute.
func (d *Device) State(attr string) string { return d.state[attr] }

// Connected reports whether the device (or its hub) has a live session.
// On-demand devices are always "connected": they dial per event.
func (d *Device) Connected() bool {
	if d.parent != nil {
		return d.parent.Connected()
	}
	if d.profile.Transport == TransportHTTPOnDemand {
		return !d.stopped
	}
	return d.connected
}

// TCPConn exposes the transport connection of the device's live session
// (nil when disconnected or on-demand). Device-side defenses such as the
// RTT monitor attach here, as firmware instrumentation would.
func (d *Device) TCPConn() *tcpsim.Conn {
	switch {
	case d.parent != nil:
		return d.parent.TCPConn()
	case d.mqtt != nil:
		return d.mqtt.Session().TCP()
	case d.http != nil:
		return d.http.Session().TCP()
	case d.hap != nil:
		return d.hap.Session().TCP()
	default:
		return nil
	}
}

// CellularActive reports whether the device fell back to its cellular
// path — the loud outcome jamming produces and phantom delays never do.
func (d *Device) CellularActive() bool { return d.cellular }

// Log returns the device's event log.
func (d *Device) Log() []LogEntry {
	out := make([]LogEntry, len(d.log))
	copy(out, d.log)
	return out
}

// LogCount counts log entries of one kind.
func (d *Device) LogCount(kind string) int {
	n := 0
	for _, e := range d.log {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Start connects the device to its server. Via-hub and on-demand devices
// need no standing connection; Start is a no-op for them.
func (d *Device) Start() {
	if d.parent != nil || d.stopped {
		return
	}
	switch d.profile.Transport {
	case TransportMQTT:
		d.startMQTT()
	case TransportHTTPLong:
		d.startHTTPLong()
	case TransportHAP:
		d.startHAP()
	case TransportHTTPOnDemand:
		// Sessions are opened per event.
	}
}

// Stop disconnects the device and disables reconnection.
func (d *Device) Stop() {
	d.stopped = true
	if d.reconnect != nil {
		d.reconnect.Stop()
	}
	switch {
	case d.mqtt != nil:
		d.mqtt.Disconnect()
	case d.http != nil:
		d.http.Close()
	case d.hap != nil:
		d.hap.Close()
	}
}

// TriggerEvent simulates a physical occurrence: the state changes and an
// event message is emitted toward the server.
func (d *Device) TriggerEvent(attr, value string) error {
	d.state[attr] = value
	if d.parent != nil {
		return d.parent.sendEventFor(d.profile, attr, value)
	}
	return d.sendEventFor(d.profile, attr, value)
}

func (d *Device) sendEventFor(origin Profile, attr, value string) error {
	switch d.profile.Transport {
	case TransportMQTT:
		if !d.connected {
			d.logf("event-dropped", "%s %s=%s (disconnected)", origin.Label, attr, value)
			return ErrNotConnected
		}
		needAck := d.profile.EventTimeout > 0
		if _, err := d.mqtt.Publish(EventTopic(origin.Label), []byte(attr+"="+value), origin.EventLen, needAck); err != nil {
			return err
		}
	case TransportHTTPLong:
		if !d.connected {
			d.logf("event-dropped", "%s %s=%s (disconnected)", origin.Label, attr, value)
			return ErrNotConnected
		}
		if _, err := d.http.Request("/event", EncodeBody(origin.Label, attr, value), origin.EventLen); err != nil {
			return err
		}
	case TransportHTTPOnDemand:
		// The on-demand path logs asynchronously once its session is up.
		d.sendOnDemandEvent(origin, attr, value)
		return nil
	case TransportHAP:
		if !d.connected {
			d.logf("event-dropped", "%s %s=%s (disconnected)", origin.Label, attr, value)
			return ErrNotConnected
		}
		if err := d.hap.SendEvent(attr, value, origin.EventLen); err != nil {
			return err
		}
	default:
		return fmt.Errorf("device: %s cannot emit events itself", d.profile.Label)
	}
	d.logf("event-sent", "%s %s=%s", origin.Label, attr, value)
	return nil
}

// applyCommand actuates the device and emits the confirming state update,
// as real devices do.
func (d *Device) applyCommand(attr, value string) {
	d.state[attr] = value
	d.logf("command-applied", "%s=%s", attr, value)
	if d.OnActuation != nil {
		d.OnActuation(attr, value)
	}
	// The confirming event is best-effort; a torn session drops it.
	_ = d.TriggerEvent(attr, value)
}

func (d *Device) routeCommand(target, attr, value string) {
	if target == d.profile.Label || target == "" {
		d.applyCommand(attr, value)
		return
	}
	if c, ok := d.children[target]; ok {
		c.applyCommand(attr, value)
	}
}

func (d *Device) logf(kind, format string, args ...any) {
	d.log = append(d.log, LogEntry{
		At:     d.env.Clock.Now(),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (d *Device) onClosed(reason proto.CloseReason) {
	wasConnected := d.connected
	d.connected = false
	d.mqtt = nil
	d.http = nil
	d.hap = nil
	d.logf("closed", "%s", reason)
	if d.OnSessionClosed != nil {
		d.OnSessionClosed(reason)
	}
	if d.stopped || reason == proto.ReasonGraceful {
		return
	}
	// Cellular fallback: a session that established and later timed out is
	// an ordinary hiccup, but repeatedly failing to even connect means the
	// WiFi path is dead (jamming, outage) and the backup radio kicks in.
	if wasConnected {
		d.failedConnects = 0
	} else {
		d.failedConnects++
		if d.profile.CellularBackup && !d.cellular && d.failedConnects >= 2 {
			d.cellular = true
			d.logf("cellular-activated", "wifi path failed %d times", d.failedConnects)
		}
	}
	if d.reconnect == nil {
		d.reconnect = d.env.Clock.NewTimer(d.Start)
	}
	d.reconnect.Reset(d.profile.ReconnectDelay)
}

// --- transport wiring ---

func (d *Device) dialTLS() *tlssim.Conn {
	tcp := d.env.TCP.Dial(d.env.Server)
	sess := tlssim.ClientWithMode(tcp, d.env.RNG, d.profile.ReplayMode, d.profile.ReplayWindow)
	sess.Instrument(d.env.Trace, d.profile.Label)
	return sess
}

func (d *Device) startMQTT() {
	sess := d.dialTLS()
	cli := mqttsim.NewClient(d.env.Clock, sess, mqttsim.ClientConfig{
		ClientID:    d.profile.Label,
		KeepAlive:   d.profile.KeepAlivePeriod,
		Pattern:     d.profile.KeepAlivePattern,
		PingTimeout: d.profile.KeepAliveTimeout,
		AckTimeout:  d.profile.EventTimeout,
		PingLen:     d.profile.KeepAliveLen,
	})
	cli.Instrument(d.env.Trace)
	d.mqtt = cli
	cli.OnConnected = func() {
		d.connected = true
		d.logf("connected", "mqtt")
	}
	cli.OnCommand = func(pkt mqttsim.Packet) {
		target := strings.TrimSuffix(pkt.Topic, "/set")
		attr, val, ok := strings.Cut(string(pkt.Payload), "=")
		if !ok {
			return
		}
		d.routeCommand(target, attr, val)
	}
	cli.OnClosed = d.onClosed
}

func (d *Device) startHTTPLong() {
	sess := d.dialTLS()
	cli := httpsim.NewClient(d.env.Clock, sess, httpsim.ClientConfig{
		DeviceID:         d.profile.Label,
		KeepAlive:        d.profile.KeepAlivePeriod,
		Pattern:          d.profile.KeepAlivePattern,
		KeepAliveTimeout: d.profile.KeepAliveTimeout,
		ResponseTimeout:  d.profile.EventTimeout,
		KeepAliveLen:     d.profile.KeepAliveLen,
	})
	cli.Instrument(d.env.Trace)
	d.http = cli
	cli.OnReady = func() {
		d.connected = true
		d.logf("connected", "http")
		// Announce so the server binds the session to this device.
		_, _ = cli.Request("/register", EncodeBody(d.profile.Label, "status", "online"), 0)
	}
	cli.OnCommand = func(m httpsim.Message) {
		target, attr, val, err := DecodeBody(m.Body)
		if err != nil {
			return
		}
		d.routeCommand(target, attr, val)
	}
	cli.OnClosed = d.onClosed
}

func (d *Device) startHAP() {
	sess := d.dialTLS()
	acc := hapsim.NewAccessory(d.env.Clock, sess, d.profile.Label)
	d.hap = acc
	acc.OnReady = func() {
		d.connected = true
		d.logf("connected", "hap")
	}
	acc.OnCommand = func(m hapsim.Message) {
		d.routeCommand(d.profile.Label, m.Characteristic, m.Value)
	}
	acc.OnClosed = d.onClosed
}

func (d *Device) sendOnDemandEvent(origin Profile, attr, value string) {
	sess := d.dialTLS()
	cli := httpsim.NewClient(d.env.Clock, sess, httpsim.ClientConfig{
		DeviceID:        d.profile.Label,
		ResponseTimeout: d.profile.EventTimeout,
	})
	cli.Instrument(d.env.Trace)
	cli.OnReady = func() {
		if _, err := cli.Request("/event", EncodeBody(origin.Label, attr, value), origin.EventLen); err != nil {
			cli.Close()
			return
		}
		d.logf("event-sent", "%s %s=%s (on-demand)", origin.Label, attr, value)
	}
	cli.OnResponse = func(httpsim.Message) { cli.Close() }
	cli.OnClosed = func(reason proto.CloseReason) {
		if reason == proto.ReasonAckTimeout {
			// Per the paper, the device gives up silently and reports no
			// anomaly in later sessions (Finding 1).
			d.logf("closed", "on-demand %s", reason)
		}
	}
}
