package device

import (
	"sort"
	"time"

	"repro/internal/simtime"
)

// Ecosystem groups a session-owning hub with the via-hub devices that ride
// its session — the unit of deployment a real buyer installs together.
type Ecosystem struct {
	Hub      string
	Children []string
}

// Ecosystems derives the hub ecosystems from the catalog, sorted by hub
// label with children in catalog order.
func Ecosystems() []Ecosystem {
	children := make(map[string][]string)
	for _, p := range Catalog() {
		if p.Transport == TransportViaHub {
			children[p.ViaHub] = append(children[p.ViaHub], p.Label)
		}
	}
	hubs := make([]string, 0, len(children))
	for hub := range children {
		hubs = append(hubs, hub)
	}
	sort.Strings(hubs)
	out := make([]Ecosystem, 0, len(hubs))
	for _, hub := range hubs {
		out = append(out, Ecosystem{Hub: hub, Children: children[hub]})
	}
	return out
}

// PopulationTemplate parameterises synthetic home sampling: the probability
// that each kind of deployment is present in a home. Real smart homes are
// heterogeneous mixes of hub ecosystems, direct WiFi devices, battery
// on-demand sensors and local HomeKit accessories; the template controls
// how often each shows up.
type PopulationTemplate struct {
	// Name identifies the template in campaign fingerprints.
	Name string
	// EcosystemProb is the probability that each hub ecosystem (hub plus a
	// sampled subset of its children) is deployed.
	EcosystemProb float64
	// ChildProb is the per-child inclusion probability within a deployed
	// ecosystem (at least one child is always kept).
	ChildProb float64
	// DirectProb is the per-device probability for direct WiFi devices
	// (cameras, plugs, bulbs, keypads, ...).
	DirectProb float64
	// OnDemandProb is the per-device probability for battery on-demand
	// sensors (the Finding 1 devices).
	OnDemandProb float64
	// HAPProb is the probability that the home runs a local HomeKit
	// deployment at all.
	HAPProb float64
	// MaxHAP bounds how many HomeKit accessories a HAP home gets.
	MaxHAP int
}

// DefaultPopulationTemplate is the standard mix: most homes have one or two
// hub ecosystems, a few direct WiFi devices, occasionally on-demand sensors
// and a HomeKit corner. Mean home size lands in the 4–10 device range the
// traffic-characterization literature reports for real deployments.
func DefaultPopulationTemplate() PopulationTemplate {
	return PopulationTemplate{
		Name:          "default",
		EcosystemProb: 0.35,
		ChildProb:     0.6,
		DirectProb:    0.18,
		OnDemandProb:  0.2,
		HAPProb:       0.25,
		MaxHAP:        4,
	}
}

func (t *PopulationTemplate) fill() {
	if t.Name == "" {
		*t = DefaultPopulationTemplate()
	}
	if t.MaxHAP <= 0 {
		t.MaxHAP = 1
	}
}

// SampleDevices draws one home's device mix from the template. The walk
// over the catalog is in a fixed order, so a given rng state fully
// determines the mix. The result always contains at least one attackable
// device (a minimal SmartThings deployment is substituted for an empty
// draw) and lists hubs before their children.
func (t PopulationTemplate) SampleDevices(rng *simtime.Rand) []string {
	t.fill()
	var out []string
	for _, eco := range Ecosystems() {
		if rng.Float64() >= t.EcosystemProb {
			continue
		}
		out = append(out, eco.Hub)
		picked := 0
		for _, child := range eco.Children {
			if rng.Float64() < t.ChildProb {
				out = append(out, child)
				picked++
			}
		}
		if picked == 0 && len(eco.Children) > 0 {
			// A hub nobody pairs anything with is not a deployment.
			out = append(out, eco.Children[0])
		}
	}
	for _, p := range Catalog() {
		switch p.Transport {
		case TransportHTTPLong, TransportMQTT:
			if p.IsHub() {
				continue // hubs are sampled as ecosystems
			}
			if rng.Float64() < t.DirectProb {
				out = append(out, p.Label)
			}
		case TransportHTTPOnDemand:
			if rng.Float64() < t.OnDemandProb {
				out = append(out, p.Label)
			}
		}
	}
	if rng.Float64() < t.HAPProb {
		out = append(out, sampleK(rng, hapLabels(), 1+rng.Intn(t.MaxHAP))...)
	}
	if len(out) == 0 {
		out = []string{"H1", "C1"}
	}
	return out
}

func hapLabels() []string {
	var out []string
	for _, p := range LocalProfiles() {
		out = append(out, p.Label)
	}
	return out
}

// sampleK picks k of the given labels without replacement, preserving
// order, via sequential (selection) sampling: each element is included with
// probability needed/remaining, which yields a uniform k-subset in one
// deterministic pass.
func sampleK(rng *simtime.Rand, labels []string, k int) []string {
	if k >= len(labels) {
		return labels
	}
	out := make([]string, 0, k)
	need := k
	for i, l := range labels {
		if need == 0 {
			break
		}
		remaining := len(labels) - i
		if rng.Intn(remaining) < need {
			out = append(out, l)
			need--
		}
	}
	return out
}

// WithTimingJitter returns a copy of p with its timing parameters — the
// keep-alive period, the timeout thresholds, the server idle reaper and the
// reconnect backoff — perturbed by a uniform factor in [1-f, 1+f]. Wire
// lengths are untouched: a jittered unit is still the same model to the
// traffic classifier, it just shipped with slightly different firmware
// timers. f is clamped to [0, 0.5] so no timeout collapses to zero. Zero
// durations stay zero (an "∞" row never grows a timeout from jitter).
func (p Profile) WithTimingJitter(rng *simtime.Rand, f float64) Profile {
	if f < 0 {
		f = 0
	}
	if f > 0.5 {
		f = 0.5
	}
	j := func(d time.Duration) time.Duration {
		if d <= 0 {
			return d
		}
		return rng.Jitter(d, f)
	}
	q := p
	q.KeepAlivePeriod = j(p.KeepAlivePeriod)
	q.KeepAliveTimeout = j(p.KeepAliveTimeout)
	q.EventTimeout = j(p.EventTimeout)
	q.CommandTimeout = j(p.CommandTimeout)
	q.ServerIdleTimeout = j(p.ServerIdleTimeout)
	q.ReconnectDelay = j(p.ReconnectDelay)
	return q
}
