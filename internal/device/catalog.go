package device

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/tlssim"
)

// Catalog returns the 50-device roster of the paper's evaluation:
// 33 cloud-connected devices (Table I) and 17 HomeKit accessories paired
// with a local hub (Table II).
//
// Parameters stated in the paper's prose are encoded exactly:
//
//   - SmartThings hub: 31s on-idle keep-alive (40-byte requests), 16s
//     keep-alive timeout, no event/command timeout;
//   - Philips Hue bridge: 120s fixed keep-alive, 60s keep-alive timeout
//     (events delayable [60s, 180s]), 21s command timeout;
//   - Ring base station: 48-byte keep-alives, 986-byte contact events,
//     events delayable up to 60s;
//   - LIFX: sub-2s keep-alive interval (the traffic-cost example);
//   - SimpliSafe keypad: the only device with an event window under 30s;
//   - M7/C5-style on-demand sensors: windows beyond 2 minutes bounded only
//     by server-side idle timeouts (Finding 1);
//   - HomeKit accessories: unacknowledged events, unbounded delay.
//
// The remaining rows carry representative values consistent with the
// paper's aggregate claims (all 50 vulnerable; every event window ≥ 30s
// except the SimpliSafe keypad; command windows from several seconds to
// sub-minute). EXPERIMENTS.md marks which rows are prose-exact.
// The roster is static, so it is assembled once and shared: Catalog and
// Index return views that callers must treat as read-only. Per-home
// parameter overrides go through copies (ByLabel, Profile.WithTimingJitter),
// never through these shared views.
func Catalog() []Profile {
	catalogOnce.Do(buildCatalog)
	return catalogCache
}

var (
	catalogOnce  sync.Once
	catalogCache []Profile
	indexCache   map[string]Profile
)

func buildCatalog() {
	var out []Profile
	out = append(out, cloudHubs()...)
	out = append(out, hubChildren()...)
	out = append(out, wifiDirect()...)
	out = append(out, onDemand()...)
	out = append(out, homeKit()...)
	catalogCache = out
	indexCache = make(map[string]Profile, len(out))
	for _, p := range out {
		indexCache[p.Label] = p
	}
}

func cloudHubs() []Profile {
	return []Profile{
		{
			Label: "H1", Model: "SmartThings Hub v3", Vendor: "Samsung", Class: "hub",
			Transport: TransportMQTT, ServerDomain: "smartthings.com",
			KeepAlivePeriod: 31 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 16 * time.Second,
			EventLen:         208, KeepAliveLen: 40, CommandLen: 230,
			EventAttr: "status", EventValues: []string{"online"},
			AppDownloads: 10_000_000,
		},
		{
			Label: "H2", Model: "Philips Hue Bridge", Vendor: "Signify", Class: "bridge",
			Transport: TransportMQTT, ServerDomain: "meethue.com",
			KeepAlivePeriod: 120 * time.Second, KeepAlivePattern: proto.PatternFixed,
			KeepAliveTimeout: 60 * time.Second, CommandTimeout: 21 * time.Second,
			EventLen: 180, KeepAliveLen: 64, CommandLen: 470,
			EventAttr: "status", EventValues: []string{"online"},
			AppDownloads: 10_000_000,
		},
		{
			Label: "H3", Model: "Ring Alarm Base Station", Vendor: "Ring", Class: "hub",
			Transport: TransportMQTT, ServerDomain: "ring.com",
			KeepAlivePeriod: 30 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 30 * time.Second, CommandTimeout: 25 * time.Second,
			EventLen: 210, KeepAliveLen: 48, CommandLen: 320,
			EventAttr: "mode", EventValues: []string{"disarmed", "home", "away"},
			CommandAttr: "mode", AppDownloads: 10_000_000,
			CellularBackup: true,
		},
		{
			Label: "H4", Model: "Aqara Hub M2", Vendor: "Aqara", Class: "hub",
			Transport: TransportMQTT, ServerDomain: "aqara.com",
			KeepAlivePeriod: 60 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 20 * time.Second, CommandTimeout: 15 * time.Second,
			EventLen: 190, KeepAliveLen: 52, CommandLen: 260,
			EventAttr: "status", EventValues: []string{"online"},
			AppDownloads: 1_000_000,
		},
		{
			Label: "H5", Model: "August Connect Bridge", Vendor: "August", Class: "bridge",
			Transport: TransportHTTPLong, ServerDomain: "august.com",
			KeepAlivePeriod: 40 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 18 * time.Second, CommandTimeout: 16 * time.Second,
			EventLen: 200, KeepAliveLen: 44, CommandLen: 540,
			EventAttr: "status", EventValues: []string{"online"},
			AppDownloads: 1_000_000,
		},
	}
}

func hubChildren() []Profile {
	children := []struct {
		label, model, vendor, class, hub string
		eventLen, cmdLen                 int
		attr                             string
		values                           []string
		cmdAttr                          string
		downloads                        int
	}{
		{"C1", "SmartThings Multipurpose Sensor", "Samsung", "contact sensor", "H1", 1135, 0, "contact", []string{"open", "closed"}, "", 10_000_000},
		{"M1", "SmartThings Motion Sensor", "Samsung", "motion sensor", "H1", 1142, 0, "motion", []string{"active", "inactive"}, "", 10_000_000},
		{"P1", "SmartThings Arrival Sensor", "Samsung", "presence sensor", "H1", 1150, 0, "presence", []string{"present", "away"}, "", 10_000_000},
		{"S1", "SmartThings Button", "Samsung", "button", "H1", 1128, 0, "button", []string{"pushed", "held"}, "", 10_000_000},
		{"L2", "Philips Hue White A19", "Signify", "bulb", "H2", 420, 470, "switch", []string{"on", "off"}, "switch", 10_000_000},
		{"S2", "Philips Hue Dimmer Switch", "Signify", "button", "H2", 275, 0, "button", []string{"pushed", "held"}, "", 10_000_000},
		{"M2", "Philips Hue Motion Sensor", "Signify", "motion sensor", "H2", 290, 0, "motion", []string{"active", "inactive"}, "", 10_000_000},
		{"C2", "Ring Contact Sensor", "Ring", "contact sensor", "H3", 986, 0, "contact", []string{"open", "closed"}, "", 10_000_000},
		{"M3", "Ring Motion Detector", "Ring", "motion sensor", "H3", 1010, 0, "motion", []string{"active", "inactive"}, "", 10_000_000},
		{"K1", "Ring Alarm Keypad", "Ring", "keypad", "H3", 940, 960, "mode", []string{"disarmed", "home", "away"}, "mode", 10_000_000},
		{"C3", "Aqara Door & Window Sensor", "Aqara", "contact sensor", "H4", 410, 0, "contact", []string{"open", "closed"}, "", 1_000_000},
		{"M4", "Aqara Motion Sensor P1", "Aqara", "motion sensor", "H4", 418, 0, "motion", []string{"active", "inactive"}, "", 1_000_000},
		{"LK1", "August Smart Lock Pro", "August", "lock", "H5", 512, 540, "lock", []string{"locked", "unlocked"}, "lock", 1_000_000},
	}
	out := make([]Profile, 0, len(children))
	for _, c := range children {
		out = append(out, Profile{
			Label: c.label, Model: c.model, Vendor: c.vendor, Class: c.class,
			Transport: TransportViaHub, ViaHub: c.hub,
			EventLen: c.eventLen, CommandLen: c.cmdLen,
			EventAttr: c.attr, EventValues: c.values, CommandAttr: c.cmdAttr,
			AppDownloads: c.downloads,
		})
	}
	return out
}

func wifiDirect() []Profile {
	return []Profile{
		{
			Label: "CM1", Model: "Wyze Cam v3", Vendor: "Wyze", Class: "camera",
			Transport: TransportHTTPLong, ServerDomain: "wyze.com",
			KeepAlivePeriod: 20 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 15 * time.Second, EventTimeout: 45 * time.Second,
			CommandTimeout: 20 * time.Second,
			EventLen:       620, KeepAliveLen: 96, CommandLen: 300,
			EventAttr: "motion", EventValues: []string{"active", "inactive"},
			CommandAttr: "recording", AppDownloads: 5_000_000,
		},
		{
			Label: "CM2", Model: "Arlo Q", Vendor: "Arlo", Class: "camera",
			Transport: TransportHTTPLong, ServerDomain: "arlo.com",
			KeepAlivePeriod: 30 * time.Second, KeepAlivePattern: proto.PatternFixed,
			KeepAliveTimeout: 35 * time.Second, EventTimeout: 60 * time.Second,
			CommandTimeout: 25 * time.Second,
			EventLen:       680, KeepAliveLen: 88, CommandLen: 310,
			EventAttr: "motion", EventValues: []string{"active", "inactive"},
			CommandAttr: "recording", AppDownloads: 5_000_000,
		},
		{
			Label: "CM3", Model: "Blink Mini", Vendor: "Amazon", Class: "camera",
			Transport: TransportHTTPLong, ServerDomain: "blink.com",
			KeepAlivePeriod: 30 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 25 * time.Second, EventTimeout: 40 * time.Second,
			CommandTimeout: 30 * time.Second,
			EventLen:       590, KeepAliveLen: 84, CommandLen: 295,
			EventAttr: "motion", EventValues: []string{"active", "inactive"},
			CommandAttr: "recording", AppDownloads: 5_000_000,
		},
		{
			Label: "P2", Model: "Kasa Smart Plug HS103", Vendor: "TP-Link", Class: "plug",
			Transport: TransportMQTT, ServerDomain: "tplinkcloud.com",
			KeepAlivePeriod: 60 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 30 * time.Second, CommandTimeout: 12 * time.Second,
			EventLen: 340, KeepAliveLen: 72, CommandLen: 360,
			EventAttr: "switch", EventValues: []string{"on", "off"},
			CommandAttr: "switch", AppDownloads: 10_000_000,
		},
		{
			Label: "P3", Model: "Wemo Mini Smart Plug", Vendor: "Belkin", Class: "plug",
			Transport: TransportHTTPLong, ServerDomain: "wemo.com",
			KeepAlivePeriod: 30 * time.Second, KeepAlivePattern: proto.PatternFixed,
			KeepAliveTimeout: 32 * time.Second, EventTimeout: 35 * time.Second,
			CommandTimeout: 18 * time.Second,
			EventLen:       355, KeepAliveLen: 80, CommandLen: 370,
			EventAttr: "switch", EventValues: []string{"on", "off"},
			CommandAttr: "switch", AppDownloads: 1_000_000,
			// Legacy explicit-nonce TLS build, no anti-replay window, no
			// cloud dedup: captured records re-inject cleanly.
			ReplayMode: tlssim.ModeLegacyNonce,
		},
		{
			Label: "P4", Model: "Meross Smart Plug MSS110", Vendor: "Meross", Class: "plug",
			Transport: TransportMQTT, ServerDomain: "meross.com",
			KeepAlivePeriod: 30 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 20 * time.Second, CommandTimeout: 15 * time.Second,
			EventLen: 330, KeepAliveLen: 64, CommandLen: 345,
			EventAttr: "switch", EventValues: []string{"on", "off"},
			CommandAttr: "switch", AppDownloads: 1_000_000,
			// Legacy explicit-nonce TLS build with no replay defenses.
			ReplayMode: tlssim.ModeLegacyNonce,
		},
		{
			Label: "L1", Model: "LIFX Mini White", Vendor: "LIFX", Class: "bulb",
			Transport: TransportMQTT, ServerDomain: "lifx.com",
			// The paper's traffic-cost example: keep-alives under every 2s.
			KeepAlivePeriod: 2 * time.Second, KeepAlivePattern: proto.PatternFixed,
			KeepAliveTimeout: 35 * time.Second, CommandTimeout: 10 * time.Second,
			EventLen: 412, KeepAliveLen: 60, CommandLen: 420,
			EventAttr: "switch", EventValues: []string{"on", "off"},
			CommandAttr: "switch", AppDownloads: 1_000_000,
		},
		{
			Label: "L3", Model: "Kasa Smart Bulb KL110", Vendor: "TP-Link", Class: "bulb",
			Transport: TransportMQTT, ServerDomain: "tplinkcloud.com",
			KeepAlivePeriod: 60 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 30 * time.Second, CommandTimeout: 12 * time.Second,
			EventLen: 348, KeepAliveLen: 72, CommandLen: 365,
			EventAttr: "switch", EventValues: []string{"on", "off"},
			CommandAttr: "switch", AppDownloads: 10_000_000,
			// Legacy TLS build, but the firmware negotiates a DTLS-style
			// anti-replay window that silently drops re-injected records.
			ReplayMode: tlssim.ModeLegacyNonce, ReplayWindow: 64,
		},
		{
			Label: "K2", Model: "SimpliSafe Keypad (HS3)", Vendor: "SimpliSafe", Class: "keypad",
			Transport: TransportHTTPLong, ServerDomain: "simplisafe.com",
			KeepAlivePeriod: 25 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 20 * time.Second,
			// The one sub-30s event window in Table I.
			EventTimeout: 25 * time.Second, CommandTimeout: 20 * time.Second,
			EventLen: 510, KeepAliveLen: 76, CommandLen: 520,
			EventAttr: "mode", EventValues: []string{"off", "home", "away"},
			CommandAttr: "mode", AppDownloads: 1_000_000,
			// Null-cipher firmware, but defense in depth elsewhere: a
			// session replay window stops raw injection and the vendor cloud
			// discards duplicate events, so fresh-session replays die too.
			ReplayMode: tlssim.ModeNullCipher, ReplayWindow: 64,
			CloudDedup: true,
		},
		{
			Label: "T1", Model: "Ecobee3 Thermostat", Vendor: "Ecobee", Class: "thermostat",
			Transport: TransportHTTPLong, ServerDomain: "ecobee.com",
			KeepAlivePeriod: 30 * time.Second, KeepAlivePattern: proto.PatternFixed,
			KeepAliveTimeout: 40 * time.Second, EventTimeout: 60 * time.Second,
			CommandTimeout: 30 * time.Second,
			EventLen:       700, KeepAliveLen: 100, CommandLen: 710,
			EventAttr: "heating", EventValues: []string{"on", "off"},
			CommandAttr: "heating", AppDownloads: 1_000_000,
			// Null-cipher firmware with a per-session replay window: raw
			// re-injection on the live session is dropped, but the readable
			// capture replays from a fresh attacker session (no cloud dedup).
			ReplayMode: tlssim.ModeNullCipher, ReplayWindow: 64,
		},
		{
			Label: "SD1", Model: "Nest Protect", Vendor: "Google", Class: "smoke detector",
			Transport: TransportHTTPLong, ServerDomain: "nest.com",
			KeepAlivePeriod: 60 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 40 * time.Second, EventTimeout: 90 * time.Second,
			EventLen: 720, KeepAliveLen: 90,
			EventAttr: "smoke", EventValues: []string{"detected", "clear"},
			AppDownloads: 5_000_000,
		},
		{
			Label: "V1", Model: "LeakSmart Shut-off Valve", Vendor: "LeakSmart", Class: "valve",
			Transport: TransportMQTT, ServerDomain: "leaksmart.com",
			KeepAlivePeriod: 45 * time.Second, KeepAlivePattern: proto.PatternOnIdle,
			KeepAliveTimeout: 25 * time.Second, CommandTimeout: 20 * time.Second,
			EventLen: 280, KeepAliveLen: 56, CommandLen: 310,
			EventAttr: "valve", EventValues: []string{"open", "closed"},
			CommandAttr: "valve", AppDownloads: 100_000,
			// Legacy TLS build saved by its cloud: the vendor backend
			// discards duplicate events, so replays inject but never fire.
			ReplayMode: tlssim.ModeLegacyNonce, CloudDedup: true,
		},
	}
}

func onDemand() []Profile {
	mk := func(label, model, vendor, class, domain, attr string, values []string, eventLen, downloads int) Profile {
		return Profile{
			Label: label, Model: model, Vendor: vendor, Class: class,
			Transport: TransportHTTPOnDemand, ServerDomain: domain,
			// The device itself gives up after 30s, but the server accepts
			// the held event until its idle reaper fires — the >2min
			// windows of Finding 1.
			EventTimeout:      30 * time.Second,
			ServerIdleTimeout: 5 * time.Minute,
			EventLen:          eventLen,
			EventAttr:         attr, EventValues: values,
			AppDownloads: downloads,
		}
	}
	// Govee ships a null-cipher TLS build: its on-demand bursts are too
	// short-lived for raw re-injection, but the readable capture replays
	// from a fresh attacker session at the application layer.
	w1 := mk("W1", "Govee Water Leak Detector", "Govee", "water sensor", "govee.com", "water", []string{"wet", "dry"}, 440, 1_000_000)
	w1.ReplayMode = tlssim.ModeNullCipher
	return []Profile{
		mk("M7", "SmartLife WiFi Motion Sensor", "Tuya", "motion sensor", "tuya.com", "motion", []string{"active", "inactive"}, 470, 10_000_000),
		mk("C5", "SmartLife WiFi Contact Sensor", "Tuya", "contact sensor", "tuya.com", "contact", []string{"open", "closed"}, 455, 10_000_000),
		w1,
	}
}

func homeKit() []Profile {
	mk := func(label, model, vendor, class string, eventLen, cmdLen int, attr string, values []string, cmdAttr string) Profile {
		return Profile{
			Label: label, Model: model, Vendor: vendor, Class: class,
			Transport: TransportHAP, ServerDomain: "local",
			CommandTimeout: 10 * time.Second,
			EventLen:       eventLen, CommandLen: cmdLen,
			EventAttr: attr, EventValues: values, CommandAttr: cmdAttr,
			AppDownloads: 1_000_000,
		}
	}
	return []Profile{
		mk("A1", "Aqara Door & Window Sensor (HomeKit)", "Aqara", "contact sensor", 1345, 0, "contact", []string{"open", "closed"}, ""),
		mk("A2", "Aqara Motion Sensor (HomeKit)", "Aqara", "motion sensor", 1310, 0, "motion", []string{"active", "inactive"}, ""),
		mk("A3", "Aqara Wireless Mini Switch (HomeKit)", "Aqara", "button", 1453, 0, "button", []string{"pushed", "held"}, ""),
		mk("A4", "Philips Hue Dimmer (HomeKit)", "Signify", "button", 275, 0, "button", []string{"pushed", "held"}, ""),
		mk("A5", "Philips Hue Motion (HomeKit)", "Signify", "motion sensor", 290, 0, "motion", []string{"active", "inactive"}, ""),
		mk("A6", "Philips Hue White A19 (HomeKit)", "Signify", "bulb", 420, 423, "switch", []string{"on", "off"}, "switch"),
		mk("A7", "LIFX Mini White (HomeKit)", "LIFX", "bulb", 412, 415, "switch", []string{"on", "off"}, "switch"),
		mk("A8", "iHome iSP6X Smart Plug", "iHome", "plug", 341, 345, "switch", []string{"on", "off"}, "switch"),
		mk("A9", "Ecobee Smart Sensor", "Ecobee", "motion sensor", 679, 0, "motion", []string{"active", "inactive"}, ""),
		mk("A10", "Insignia Garage Controller", "Insignia", "garage controller", 129, 135, "door", []string{"open", "closed"}, "door"),
		mk("A11", "Arlo Q (HomeKit)", "Arlo", "camera", 200, 210, "motion", []string{"active", "inactive"}, "recording"),
		mk("A12", "Eve Door & Window", "Eve", "contact sensor", 980, 0, "contact", []string{"open", "closed"}, ""),
		mk("A13", "Eve Motion", "Eve", "motion sensor", 1010, 0, "motion", []string{"active", "inactive"}, ""),
		mk("A14", "Eve Energy Plug", "Eve", "plug", 870, 880, "switch", []string{"on", "off"}, "switch"),
		mk("A15", "Meross Smart Plug (HomeKit)", "Meross", "plug", 355, 360, "switch", []string{"on", "off"}, "switch"),
		mk("A16", "Nanoleaf Essentials Bulb", "Nanoleaf", "bulb", 402, 408, "switch", []string{"on", "off"}, "switch"),
		mk("A17", "Ecobee3 Lite (HomeKit)", "Ecobee", "thermostat", 700, 705, "heating", []string{"on", "off"}, "heating"),
	}
}

// ByLabel indexes the catalog into a fresh map the caller may mutate
// (testbeds overlay per-home profile overrides on their copy). Read-only
// callers should prefer Index, which shares one immutable map.
func ByLabel() map[string]Profile {
	cat := Catalog()
	m := make(map[string]Profile, len(cat))
	for _, p := range cat {
		m[p.Label] = p
	}
	return m
}

// Index returns the shared label→profile index. The map is built once and
// must not be modified.
func Index() map[string]Profile {
	catalogOnce.Do(buildCatalog)
	return indexCache
}

// Lookup returns the catalog profile with the given label.
func Lookup(label string) (Profile, error) {
	p, ok := Index()[label]
	if !ok {
		return Profile{}, fmt.Errorf("device: no catalog entry %q", label)
	}
	return p, nil
}

// CloudProfiles returns the Table I roster (cloud-connected devices,
// including hub-attached ones).
func CloudProfiles() []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if p.Transport != TransportHAP {
			out = append(out, p)
		}
	}
	return out
}

// LocalProfiles returns the Table II roster (HomeKit accessories).
func LocalProfiles() []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if p.Transport == TransportHAP {
			out = append(out, p)
		}
	}
	return out
}

// SessionProfile resolves the session-owning profile for p: hubs and
// direct devices own their sessions; via-hub devices ride their hub's.
func SessionProfile(p Profile, byLabel map[string]Profile) (Profile, error) {
	if p.Transport != TransportViaHub {
		return p, nil
	}
	hub, ok := byLabel[p.ViaHub]
	if !ok {
		return Profile{}, fmt.Errorf("device: %s references unknown hub %q", p.Label, p.ViaHub)
	}
	return hub, nil
}
