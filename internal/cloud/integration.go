package cloud

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/rules"
	"repro/internal/simtime"
)

// StalenessPolicy controls what an automation server does with events that
// were generated long before they arrived.
type StalenessPolicy int

// Staleness policies.
const (
	// StaleAccept processes every event regardless of age — the default
	// behaviour of the platforms the paper measured.
	StaleAccept StalenessPolicy = iota + 1
	// StaleDiscardSilently drops over-age events without any notice — the
	// Alexa behaviour from Case 4, which lets attackers permanently
	// disable safety routines.
	StaleDiscardSilently
	// StaleRejectAlert drops over-age events and raises an alarm — the
	// Section VII-B timestamp-checking countermeasure.
	StaleRejectAlert
)

// String names the policy.
func (p StalenessPolicy) String() string {
	switch p {
	case StaleAccept:
		return "accept"
	case StaleDiscardSilently:
		return "discard-silently"
	case StaleRejectAlert:
		return "reject-alert"
	default:
		return "unknown"
	}
}

// Notification is a user-visible push message (the Type-I observable).
type Notification struct {
	At      simtime.Time
	Message string
	Cause   rules.Event
}

// Latency returns how long after the physical occurrence the user was
// told about it.
func (n Notification) Latency() time.Duration { return n.At - n.Cause.GeneratedAt }

// CommandRecord logs one command issued by the integration server.
type CommandRecord struct {
	IssuedAt  simtime.Time
	Device    string
	Attribute string
	Value     string
	Outcome   *CommandOutcome // nil until resolved
}

// IntegrationConfig parameterises the automation server.
type IntegrationConfig struct {
	// Policy selects staleness handling. Default StaleAccept.
	Policy StalenessPolicy
	// MaxEventAge is the staleness threshold for non-accept policies
	// (Alexa's observed value is 30s).
	MaxEventAge time.Duration
}

// IntegrationServer executes automation rules over events forwarded by
// endpoint servers and issues commands back through them.
type IntegrationServer struct {
	clk       *simtime.Clock
	cfg       IntegrationConfig
	engine    *rules.Engine
	endpoints map[string]*EndpointServer // domain -> endpoint
	routes    map[string]string          // device label -> domain

	events        []rules.Event
	discarded     []rules.Event
	notifications []Notification
	commands      []*CommandRecord
	alarms        proto.AlarmLog
	trace         *obs.Trace
}

// NewIntegrationServer creates the automation server.
func NewIntegrationServer(clk *simtime.Clock, cfg IntegrationConfig) *IntegrationServer {
	if cfg.Policy == 0 {
		cfg.Policy = StaleAccept
	}
	s := &IntegrationServer{
		clk:       clk,
		cfg:       cfg,
		engine:    rules.NewEngine(clk),
		endpoints: make(map[string]*EndpointServer),
		routes:    make(map[string]string),
	}
	s.engine.Execute = s.execute
	return s
}

// Reset reparameterises the server in place for a new home, keeping its
// engine and map/slice allocations. Rules, routes, attached endpoints and
// every recorded event/notification/command/alarm are dropped; tracing is
// cleared for the owner to rewire. A reset server behaves byte-identically
// to NewIntegrationServer(clk, cfg).
func (s *IntegrationServer) Reset(cfg IntegrationConfig) {
	if cfg.Policy == 0 {
		cfg.Policy = StaleAccept
	}
	s.cfg = cfg
	s.engine.Reset()
	clear(s.endpoints)
	clear(s.routes)
	clear(s.events)
	s.events = s.events[:0]
	clear(s.discarded)
	s.discarded = s.discarded[:0]
	clear(s.notifications)
	s.notifications = s.notifications[:0]
	clear(s.commands)
	s.commands = s.commands[:0]
	s.alarms.Reset()
	s.trace = nil
}

// Instrument attaches the registry's trace ring (when enabled) so the
// server emits "cloud" events: event_accepted, event_discarded, alarm and
// rule_fired — the automation-visible tail of every phantom delay.
func (s *IntegrationServer) Instrument(reg *obs.Registry) {
	if tr := reg.Trace(); tr.Enabled() {
		s.trace = tr
	}
}

func (s *IntegrationServer) emit(event, detail string, value int64) {
	if s.trace == nil {
		return
	}
	s.trace.Emit(s.clk.Now(), "cloud", event, detail, value)
}

// Engine exposes the rule engine (for installing rules and inspection).
func (s *IntegrationServer) Engine() *rules.Engine { return s.engine }

// AttachEndpoint links a vendor endpoint; its events flow here and its
// devices become commandable.
func (s *IntegrationServer) AttachEndpoint(ep *EndpointServer) {
	s.endpoints[ep.Domain()] = ep
	ep.OnEvent = s.Ingest
}

// RouteDevice records which endpoint serves a device.
func (s *IntegrationServer) RouteDevice(label, domain string) {
	s.routes[label] = domain
}

// AddRule installs an automation rule.
func (s *IntegrationServer) AddRule(r rules.Rule) error { return s.engine.AddRule(r) }

// Events returns every event the server processed.
func (s *IntegrationServer) Events() []rules.Event {
	out := make([]rules.Event, len(s.events))
	copy(out, s.events)
	return out
}

// Discarded returns events dropped by the staleness policy.
func (s *IntegrationServer) Discarded() []rules.Event {
	out := make([]rules.Event, len(s.discarded))
	copy(out, s.discarded)
	return out
}

// Notifications returns the user-visible pushes so far.
func (s *IntegrationServer) Notifications() []Notification {
	out := make([]Notification, len(s.notifications))
	copy(out, s.notifications)
	return out
}

// Commands returns the issued command log.
func (s *IntegrationServer) Commands() []*CommandRecord {
	out := make([]*CommandRecord, len(s.commands))
	copy(out, s.commands)
	return out
}

// Alarms returns integration-level alarms (staleness rejections).
func (s *IntegrationServer) Alarms() []proto.Alarm { return s.alarms.All() }

// TotalAlarmCount sums integration and endpoint alarms — the
// "did anything notice?" metric of every attack experiment.
func (s *IntegrationServer) TotalAlarmCount() int {
	n := s.alarms.Count()
	for _, ep := range s.endpoints {
		n += ep.AlarmCount()
	}
	return n
}

// Ingest processes one event from an endpoint.
func (s *IntegrationServer) Ingest(ev rules.Event) {
	ev.ReceivedAt = s.clk.Now()
	if s.cfg.Policy != StaleAccept && s.cfg.MaxEventAge > 0 {
		if age := ev.ReceivedAt - ev.GeneratedAt; age > s.cfg.MaxEventAge {
			s.discarded = append(s.discarded, ev)
			if s.trace != nil {
				s.emit("event_discarded", ev.Device+"/"+ev.Attribute, int64(age))
			}
			if s.cfg.Policy == StaleRejectAlert {
				s.emit("alarm", ev.Device+":stale-event", int64(age))
				s.alarms.Raise(s.clk.Now(), ev.Device, "stale-event",
					fmt.Sprintf("%s.%s=%s aged %v", ev.Device, ev.Attribute, ev.Value, age))
			}
			return
		}
	}
	if s.trace != nil {
		s.emit("event_accepted", ev.Device+"/"+ev.Attribute, int64(ev.ReceivedAt-ev.GeneratedAt))
	}
	s.events = append(s.events, ev)
	s.engine.HandleEvent(ev)
}

func (s *IntegrationServer) execute(a rules.Action, cause rules.Event) {
	switch a.Kind {
	case rules.ActionNotify:
		if s.trace != nil {
			s.emit("rule_fired", "notify:"+a.Message, int64(s.clk.Now()-cause.GeneratedAt))
		}
		s.notifications = append(s.notifications, Notification{
			At:      s.clk.Now(),
			Message: a.Message,
			Cause:   cause,
		})
	case rules.ActionCommand:
		if s.trace != nil {
			s.emit("rule_fired", "command:"+a.Device+"."+a.Attribute+"="+a.Value, int64(s.clk.Now()-cause.GeneratedAt))
		}
		rec := &CommandRecord{
			IssuedAt:  s.clk.Now(),
			Device:    a.Device,
			Attribute: a.Attribute,
			Value:     a.Value,
		}
		s.commands = append(s.commands, rec)
		domain, ok := s.routes[a.Device]
		if !ok {
			return
		}
		ep, ok := s.endpoints[domain]
		if !ok {
			return
		}
		// Dispatch failures (device offline) leave Outcome nil, which the
		// experiment reports as an unexecuted action.
		_ = ep.SendCommand(a.Device, a.Attribute, a.Value, func(o CommandOutcome) {
			rec.Outcome = &o
		})
	}
}
