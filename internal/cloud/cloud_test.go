package cloud_test

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/experiment"
	"repro/internal/rules"
)

func build(t *testing.T, cfg cloud.IntegrationConfig, labels ...string) *experiment.Testbed {
	t.Helper()
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:        321,
		Devices:     labels,
		Integration: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	return tb
}

func TestEndpointForwardsEventsWithGenerationTime(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "C2")
	tb.Clock.RunUntil(30 * time.Second)
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	evs := tb.Integration.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	ev := evs[0]
	if ev.GeneratedAt != 30*time.Second {
		t.Fatalf("GeneratedAt = %v, want 30s", ev.GeneratedAt)
	}
	if ev.ReceivedAt <= ev.GeneratedAt {
		t.Fatal("ReceivedAt should trail GeneratedAt by transit + cloud-to-cloud latency")
	}
	if ev.ReceivedAt-ev.GeneratedAt > time.Second {
		t.Fatalf("unattacked transit took %v", ev.ReceivedAt-ev.GeneratedAt)
	}
}

func TestCommandForUnknownDeviceFails(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "C2")
	ep := tb.Endpoints["ring.com"]
	if err := ep.SendCommand("ghost", "x", "y", nil); err == nil {
		t.Fatal("command for unregistered device should fail")
	}
}

func TestCommandOutcomeCarriesDuration(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "K1")
	ep := tb.Endpoints["ring.com"]
	var got cloud.CommandOutcome
	done := false
	if err := ep.SendCommand("K1", "mode", "away", func(o cloud.CommandOutcome) { got, done = o, true }); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(5 * time.Second)
	if !done || !got.Acked {
		t.Fatalf("outcome = %+v done=%v", got, done)
	}
	if got.Duration <= 0 || got.Duration > time.Second {
		t.Fatalf("duration = %v", got.Duration)
	}
	if got.Device != "K1" || got.Attribute != "mode" || got.Value != "away" {
		t.Fatalf("outcome identity wrong: %+v", got)
	}
}

func TestNotificationLatency(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "C2")
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "n",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "open"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "open!"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	ns := tb.Integration.Notifications()
	if len(ns) != 1 {
		t.Fatalf("notifications = %d", len(ns))
	}
	if lat := ns[0].Latency(); lat <= 0 || lat > time.Second {
		t.Fatalf("latency = %v", lat)
	}
}

func TestStalePoliciesSideBySide(t *testing.T) {
	// The same stale event under the three policies.
	mkEvent := func() rules.Event {
		return rules.Event{
			Device: "X", Attribute: "a", Value: "v",
			GeneratedAt: 0,
		}
	}
	run := func(cfg cloud.IntegrationConfig) (accepted, discarded, alarms int) {
		tb := build(t, cfg, "C2")
		tb.Clock.RunUntil(2 * time.Minute) // event will be 2 minutes old
		tb.Integration.Ingest(mkEvent())
		return len(tb.Integration.Events()), len(tb.Integration.Discarded()), len(tb.Integration.Alarms())
	}

	if a, d, al := run(cloud.IntegrationConfig{}); a != 1 || d != 0 || al != 0 {
		t.Fatalf("accept policy: %d/%d/%d", a, d, al)
	}
	cfgDiscard := cloud.IntegrationConfig{Policy: cloud.StaleDiscardSilently, MaxEventAge: 30 * time.Second}
	if a, d, al := run(cfgDiscard); a != 0 || d != 1 || al != 0 {
		t.Fatalf("discard policy: %d/%d/%d", a, d, al)
	}
	cfgReject := cloud.IntegrationConfig{Policy: cloud.StaleRejectAlert, MaxEventAge: 30 * time.Second}
	if a, d, al := run(cfgReject); a != 0 || d != 1 || al != 1 {
		t.Fatalf("reject policy: %d/%d/%d", a, d, al)
	}
}

func TestFreshEventPassesStrictPolicy(t *testing.T) {
	cfg := cloud.IntegrationConfig{Policy: cloud.StaleRejectAlert, MaxEventAge: 30 * time.Second}
	tb := build(t, cfg, "C2")
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunFor(2 * time.Second)
	if len(tb.Integration.Events()) != 1 || len(tb.Integration.Discarded()) != 0 {
		t.Fatal("fresh event should pass the strict policy")
	}
}

func TestLocalHubRulesAndCommands(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "A1", "A6")
	if err := tb.LocalHub.AddRule(rules.Rule{
		Name:      "night-light",
		Trigger:   rules.Trigger{Device: "A1", Attribute: "contact", Value: "open"},
		Condition: rules.Eq{Device: "A6", Attribute: "switch", Value: "off"},
		Actions: []rules.Action{
			{Kind: rules.ActionCommand, Device: "A6", Attribute: "switch", Value: "on"},
			{Kind: rules.ActionNotify, Message: "door opened at night"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	_ = tb.Device("A6").TriggerEvent("switch", "off")
	tb.Clock.RunFor(time.Second)
	_ = tb.Device("A1").TriggerEvent("contact", "open")
	tb.Clock.RunFor(2 * time.Second)

	if got := tb.Device("A6").State("switch"); got != "on" {
		t.Fatalf("bulb = %q", got)
	}
	if len(tb.LocalHub.Notifications()) != 1 {
		t.Fatalf("hub notifications = %d", len(tb.LocalHub.Notifications()))
	}
	cmds := tb.LocalHub.Commands()
	if len(cmds) != 1 || cmds[0].Outcome == nil || !cmds[0].Outcome.Acked {
		t.Fatalf("hub commands = %+v", cmds)
	}
}

func TestLocalHubCommandToUnknownAccessory(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "A1")
	if err := tb.LocalHub.SendCommand("ghost", "x", "y", nil); err == nil {
		t.Fatal("command to unknown accessory should fail")
	}
}

func TestStalenessPolicyStrings(t *testing.T) {
	tests := []struct {
		p    cloud.StalenessPolicy
		want string
	}{
		{cloud.StaleAccept, "accept"},
		{cloud.StaleDiscardSilently, "discard-silently"},
		{cloud.StaleRejectAlert, "reject-alert"},
		{cloud.StalenessPolicy(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("policy %d = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestCommandRecordOutcomeResolution(t *testing.T) {
	tb := build(t, cloud.IntegrationConfig{}, "C2", "LK1")
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "lock",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		t.Fatal(err)
	}
	_ = tb.Device("C2").TriggerEvent("contact", "closed")
	tb.Clock.RunFor(3 * time.Second)
	cmds := tb.Integration.Commands()
	if len(cmds) != 1 {
		t.Fatalf("commands = %d", len(cmds))
	}
	rec := cmds[0]
	if rec.Outcome == nil || !rec.Outcome.Acked {
		t.Fatalf("outcome = %+v", rec.Outcome)
	}
	if rec.IssuedAt <= 0 || rec.Device != "LK1" {
		t.Fatalf("record = %+v", rec)
	}
}
