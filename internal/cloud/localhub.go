package cloud

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/hapsim"
	"repro/internal/ipnet"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/rules"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// LocalHub is the Figure 1(b) deployment: a HomePod-like controller that
// terminates HAP accessory sessions and runs automations locally.
type LocalHub struct {
	clk    *simtime.Clock
	ip     *ipnet.Stack
	tcp    *tcpsim.Stack
	rng    *simtime.Rand
	hub    *hapsim.Hub
	engine *rules.Engine

	profiles map[string]device.Profile

	events        []rules.Event
	notifications []Notification
	commands      []*CommandRecord
	trace         *obs.Trace
}

// NewLocalHub creates the hub and starts its listener.
func NewLocalHub(clk *simtime.Clock, ip *ipnet.Stack, rng *simtime.Rand) (*LocalHub, error) {
	h := &LocalHub{
		clk:      clk,
		ip:       ip,
		tcp:      tcpsim.NewStack(clk, ip, tcpsim.Config{}, 4242),
		rng:      rng,
		hub:      hapsim.NewHub(clk),
		engine:   rules.NewEngine(clk),
		profiles: make(map[string]device.Profile),
	}
	h.engine.Execute = h.execute
	h.hub.OnEvent = h.onEvent
	if err := h.listen(); err != nil {
		return nil, err
	}
	return h, nil
}

// listen installs the accessory-facing listener. The accept closure reads
// the hub's fields at accept time, so it stays valid across Reset.
func (h *LocalHub) listen() error {
	if _, err := h.tcp.Listen(HAPPort, func(c *tcpsim.Conn) {
		sess := tlssim.Server(c, h.rng)
		sess.Instrument(h.trace, "hub")
		h.hub.Accept(sess)
	}); err != nil {
		return fmt.Errorf("local hub: %w", err)
	}
	return nil
}

// Reset reparameterises the hub in place for a new home, keeping the HAP
// hub, rule engine, TCP stack and map/slice allocations. Sessions, rules,
// recorded events/notifications/commands and alarms are all dropped; the
// listener is reinstalled; tracing is cleared for the owner to rewire. A
// reset hub behaves byte-identically to NewLocalHub(clk, ip, rng).
func (h *LocalHub) Reset(ip *ipnet.Stack, rng *simtime.Rand) error {
	h.ip = ip
	h.rng = rng
	h.tcp.Reset(ip, tcpsim.Config{}, 4242)
	h.hub.Reset()
	h.hub.OnEvent = h.onEvent
	h.engine.Reset()
	clear(h.profiles)
	clear(h.events)
	h.events = h.events[:0]
	clear(h.notifications)
	h.notifications = h.notifications[:0]
	clear(h.commands)
	h.commands = h.commands[:0]
	h.trace = nil
	return h.listen()
}

// Instrument attaches the registry's trace ring (when enabled) so the hub
// emits "cloud" events (event_accepted, rule_fired) and its accessory TLS
// sessions emit per-record events.
func (h *LocalHub) Instrument(reg *obs.Registry) {
	if tr := reg.Trace(); tr.Enabled() {
		h.trace = tr
	}
}

func (h *LocalHub) emit(event, detail string, value int64) {
	if h.trace == nil {
		return
	}
	h.trace.Emit(h.clk.Now(), "cloud", event, detail, value)
}

// Addr returns the hub's accessory-facing endpoint.
func (h *LocalHub) Addr() tcpsim.Endpoint {
	return tcpsim.Endpoint{Addr: h.ip.Addr(), Port: HAPPort}
}

// HAP exposes the protocol hub (for command-timeout tuning).
func (h *LocalHub) HAP() *hapsim.Hub { return h.hub }

// Engine exposes the rule engine.
func (h *LocalHub) Engine() *rules.Engine { return h.engine }

// RegisterDevice tells the hub about an accessory.
func (h *LocalHub) RegisterDevice(p device.Profile) { h.profiles[p.Label] = p }

// AddRule installs an automation rule.
func (h *LocalHub) AddRule(r rules.Rule) error { return h.engine.AddRule(r) }

// Events returns the events the hub processed.
func (h *LocalHub) Events() []rules.Event {
	out := make([]rules.Event, len(h.events))
	copy(out, h.events)
	return out
}

// Notifications returns user-visible pushes.
func (h *LocalHub) Notifications() []Notification {
	out := make([]Notification, len(h.notifications))
	copy(out, h.notifications)
	return out
}

// Commands returns issued commands.
func (h *LocalHub) Commands() []*CommandRecord {
	out := make([]*CommandRecord, len(h.commands))
	copy(out, h.commands)
	return out
}

// Alarms returns hub-side alarms ("no-response" command failures only —
// HAP has nothing else).
func (h *LocalHub) Alarms() []proto.Alarm { return h.hub.Alarms() }

// SendCommand writes a characteristic on an accessory directly.
func (h *LocalHub) SendCommand(label, attr, value string, done func(CommandOutcome)) error {
	p, ok := h.profiles[label]
	if !ok {
		return fmt.Errorf("cloud: local hub does not serve %q", label)
	}
	return h.hub.Command(label, attr, value, p.CommandLen, func(r hapsim.CommandResult) {
		if done != nil {
			done(CommandOutcome{Device: label, Attribute: attr, Value: value, Acked: r.Acked, Duration: r.Duration})
		}
	})
}

func (h *LocalHub) onEvent(accessoryID string, m hapsim.Message) {
	ev := rules.Event{
		Device:      accessoryID,
		Attribute:   m.Characteristic,
		Value:       m.Value,
		GeneratedAt: m.Timestamp,
		ReceivedAt:  h.clk.Now(),
	}
	if h.trace != nil {
		h.emit("event_accepted", ev.Device+"/"+ev.Attribute, int64(ev.ReceivedAt-ev.GeneratedAt))
	}
	h.events = append(h.events, ev)
	h.engine.HandleEvent(ev)
}

func (h *LocalHub) execute(a rules.Action, cause rules.Event) {
	switch a.Kind {
	case rules.ActionNotify:
		if h.trace != nil {
			h.emit("rule_fired", "notify:"+a.Message, int64(h.clk.Now()-cause.GeneratedAt))
		}
		h.notifications = append(h.notifications, Notification{At: h.clk.Now(), Message: a.Message, Cause: cause})
	case rules.ActionCommand:
		if h.trace != nil {
			h.emit("rule_fired", "command:"+a.Device+"."+a.Attribute+"="+a.Value, int64(h.clk.Now()-cause.GeneratedAt))
		}
		rec := &CommandRecord{
			IssuedAt:  h.clk.Now(),
			Device:    a.Device,
			Attribute: a.Attribute,
			Value:     a.Value,
		}
		h.commands = append(h.commands, rec)
		_ = h.SendCommand(a.Device, a.Attribute, a.Value, func(o CommandOutcome) {
			rec.Outcome = &o
		})
	}
}
