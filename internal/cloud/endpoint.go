// Package cloud implements the server side of Figure 1: vendor endpoint
// servers that terminate device sessions, an integration server that runs
// the automation rules and issues commands through the endpoints
// (cloud-to-cloud), and a local hub for the HomeKit-style deployment.
package cloud

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/httpsim"
	"repro/internal/ipnet"
	"repro/internal/mqttsim"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/rules"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// Well-known ports.
const (
	// MQTTPort is the endpoint brokers' listening port.
	MQTTPort uint16 = 8883
	// HTTPSPort is the endpoint HTTP servers' listening port.
	HTTPSPort uint16 = 443
	// HAPPort is the local hub's listening port.
	HAPPort uint16 = 8443
)

// EndpointConfig parameterises a vendor endpoint server.
type EndpointConfig struct {
	// Domain names the vendor cloud (e.g. "ring.com").
	Domain string
	// CloudToCloudLatency delays event forwarding to the integration
	// server. Default 20ms.
	CloudToCloudLatency time.Duration
	// Broker configures the MQTT side.
	Broker mqttsim.BrokerConfig
	// HTTP configures the HTTP side.
	HTTP httpsim.ServerConfig
}

// EndpointServer is one vendor cloud: it terminates its devices' sessions,
// forwards their events to the integration server, and delivers commands.
type EndpointServer struct {
	clk    *simtime.Clock
	cfg    EndpointConfig
	ip     *ipnet.Stack
	tcp    *tcpsim.Stack
	rng    *simtime.Rand
	broker *mqttsim.Broker
	http   *httpsim.Server

	profiles map[string]device.Profile
	owner    map[string]string // device label -> session-owner label
	trace    *obs.Trace

	// Server-side replay suppression (profiles with CloudDedup): a ring of
	// the most recently accepted event keys. Replays of accepted events —
	// raw re-injections and fresh-session application replays alike — carry
	// the original generation timestamp and are discarded here.
	dedupSeen  map[eventKey]bool
	dedupRing  [dedupRingSize]eventKey
	dedupN     int
	dedupDrops *obs.Counter

	// OnEvent receives every device event this endpoint accepts (wired to
	// the integration server by the testbed builder).
	OnEvent func(rules.Event)
}

// NewEndpointServer creates a vendor cloud on the given IP stack and
// starts its listeners.
func NewEndpointServer(clk *simtime.Clock, ip *ipnet.Stack, rng *simtime.Rand, cfg EndpointConfig) (*EndpointServer, error) {
	if cfg.CloudToCloudLatency <= 0 {
		cfg.CloudToCloudLatency = 20 * time.Millisecond
	}
	s := &EndpointServer{
		clk:       clk,
		cfg:       cfg,
		ip:        ip,
		tcp:       tcpsim.NewStack(clk, ip, tcpsim.Config{}, int64(len(cfg.Domain))+100),
		rng:       rng,
		profiles:  make(map[string]device.Profile),
		owner:     make(map[string]string),
		dedupSeen: make(map[eventKey]bool),
	}
	s.broker = mqttsim.NewBroker(clk, cfg.Broker)
	s.broker.OnPublish = s.onMQTTPublish
	s.http = httpsim.NewServer(clk, cfg.HTTP)
	s.http.OnRequest = s.onHTTPRequest
	if err := s.listen(); err != nil {
		return nil, err
	}
	return s, nil
}

// listen installs the two protocol listeners. The accept closures read the
// server's fields at accept time, so they stay valid across Reset.
func (s *EndpointServer) listen() error {
	if _, err := s.tcp.Listen(MQTTPort, func(c *tcpsim.Conn) {
		sess := tlssim.Server(c, s.rng)
		sess.Instrument(s.trace, s.cfg.Domain)
		s.broker.Accept(sess)
	}); err != nil {
		return fmt.Errorf("endpoint %s: %w", s.cfg.Domain, err)
	}
	if _, err := s.tcp.Listen(HTTPSPort, func(c *tcpsim.Conn) {
		sess := tlssim.Server(c, s.rng)
		sess.Instrument(s.trace, s.cfg.Domain)
		s.http.Accept(sess)
	}); err != nil {
		return fmt.Errorf("endpoint %s: %w", s.cfg.Domain, err)
	}
	return nil
}

// Reset reparameterises the endpoint in place for a new home, keeping the
// broker, HTTP server, TCP stack and map allocations. Sessions, timers,
// alarms and registrations are all dropped; listeners are reinstalled; the
// trace and OnEvent hooks are cleared for the owner to rewire. A reset
// endpoint behaves byte-identically to NewEndpointServer(clk, ip, rng, cfg).
func (s *EndpointServer) Reset(ip *ipnet.Stack, rng *simtime.Rand, cfg EndpointConfig) error {
	if cfg.CloudToCloudLatency <= 0 {
		cfg.CloudToCloudLatency = 20 * time.Millisecond
	}
	s.cfg = cfg
	s.ip = ip
	s.rng = rng
	s.tcp.Reset(ip, tcpsim.Config{}, int64(len(cfg.Domain))+100)
	s.broker.Reset(cfg.Broker)
	s.broker.OnPublish = s.onMQTTPublish
	s.http.Reset(cfg.HTTP)
	s.http.OnRequest = s.onHTTPRequest
	clear(s.profiles)
	clear(s.owner)
	clear(s.dedupSeen)
	s.dedupN = 0
	s.dedupDrops = nil
	s.trace = nil
	s.OnEvent = nil
	return s.listen()
}

// Instrument attaches the registry's trace ring (when enabled) so
// server-side TLS sessions emit per-record events — the evidence that
// records released after a hold still verify in order at the endpoint.
func (s *EndpointServer) Instrument(reg *obs.Registry) {
	s.dedupDrops = reg.Counter("cloud_events_deduped_total", obs.L("domain", s.cfg.Domain))
	if tr := reg.Trace(); tr.Enabled() {
		s.trace = tr
	}
}

// Domain returns the vendor domain.
func (s *EndpointServer) Domain() string { return s.cfg.Domain }

// Addr returns the server's network address.
func (s *EndpointServer) Addr() tcpsim.Endpoint {
	return tcpsim.Endpoint{Addr: s.ip.Addr(), Port: HTTPSPort}
}

// AddrFor returns the endpoint devices of the given transport dial.
func (s *EndpointServer) AddrFor(t device.Transport) tcpsim.Endpoint {
	port := HTTPSPort
	if t == device.TransportMQTT {
		port = MQTTPort
	}
	return tcpsim.Endpoint{Addr: s.ip.Addr(), Port: port}
}

// Broker exposes the MQTT side (for enforcement toggles in experiments).
func (s *EndpointServer) Broker() *mqttsim.Broker { return s.broker }

// HTTP exposes the HTTP side.
func (s *EndpointServer) HTTP() *httpsim.Server { return s.http }

// RegisterDevice tells the endpoint about a device it serves. owner is the
// label of the session-owning device (the device itself, or its hub).
func (s *EndpointServer) RegisterDevice(p device.Profile, owner string) {
	s.profiles[p.Label] = p
	s.owner[p.Label] = owner
}

// Alarms aggregates server-side alarms from both protocol fronts.
func (s *EndpointServer) Alarms() []proto.Alarm {
	out := append([]proto.Alarm{}, s.broker.Alarms()...)
	return append(out, s.http.Alarms()...)
}

// AlarmCount counts all server-side alarms.
func (s *EndpointServer) AlarmCount() int { return len(s.Alarms()) }

// CommandOutcome reports a delivered or timed-out command.
type CommandOutcome struct {
	Device    string
	Attribute string
	Value     string
	Acked     bool
	Duration  time.Duration
}

// SendCommand delivers a command to a device through its session (possibly
// its hub's). done may be nil.
func (s *EndpointServer) SendCommand(label, attr, value string, done func(CommandOutcome)) error {
	p, ok := s.profiles[label]
	if !ok {
		return fmt.Errorf("cloud: endpoint %s does not serve %q", s.cfg.Domain, label)
	}
	ownerLabel := s.owner[label]
	ownerProfile, ok := s.profiles[ownerLabel]
	if !ok {
		return fmt.Errorf("cloud: endpoint %s has no session owner for %q", s.cfg.Domain, label)
	}
	timeout := p.CommandTimeout
	if timeout <= 0 {
		timeout = ownerProfile.CommandTimeout
	}
	padTo := p.CommandLen
	wrap := func(acked bool, d time.Duration) {
		if done != nil {
			done(CommandOutcome{Device: label, Attribute: attr, Value: value, Acked: acked, Duration: d})
		}
	}
	switch ownerProfile.Transport {
	case device.TransportMQTT:
		return s.broker.Publish(ownerLabel, device.CommandTopic(label), []byte(attr+"="+value), padTo, timeout,
			func(r mqttsim.CommandResult) { wrap(r.Acked, r.Duration) })
	case device.TransportHTTPLong:
		return s.http.Command(ownerLabel, "/command", device.EncodeBody(label, attr, value), padTo, timeout,
			func(r httpsim.CommandResult) { wrap(r.Acked, r.Duration) })
	default:
		return fmt.Errorf("cloud: cannot command %q over transport %v", label, ownerProfile.Transport)
	}
}

func (s *EndpointServer) onMQTTPublish(sess *mqttsim.Session, pkt mqttsim.Packet) {
	label, ok := eventOrigin(pkt.Topic)
	if !ok {
		return
	}
	attr, value, ok := cutEq(string(pkt.Payload))
	if !ok {
		return
	}
	s.accept(rules.Event{
		Device:      label,
		Attribute:   attr,
		Value:       value,
		GeneratedAt: pkt.Timestamp,
		ReceivedAt:  s.clk.Now(),
	})
}

func (s *EndpointServer) onHTTPRequest(sess *httpsim.Session, m httpsim.Message) {
	if m.Path != "/event" {
		return
	}
	origin, attr, value, err := device.DecodeBody(m.Body)
	if err != nil {
		return
	}
	s.accept(rules.Event{
		Device:      origin,
		Attribute:   attr,
		Value:       value,
		GeneratedAt: m.Timestamp,
		ReceivedAt:  s.clk.Now(),
	})
}

// accept runs the endpoint's acceptance policy on a parsed device event:
// vendors with server-side dedup discard events they have already accepted
// (matching device, attribute, value and generation timestamp), everything
// else forwards to the integration server.
func (s *EndpointServer) accept(ev rules.Event) {
	if s.profiles[ev.Device].CloudDedup && s.duplicate(ev) {
		s.dedupDrops.Inc()
		if s.trace != nil {
			s.trace.Emit(s.clk.Now(), "cloud", "event_deduped", ev.Device+":"+ev.Attribute+"="+ev.Value, int64(ev.GeneratedAt))
		}
		return
	}
	s.forward(ev)
}

// dedupRingSize bounds the accepted-event memory per endpoint; the oldest
// key falls out when the ring wraps, mirroring the bounded dedup caches
// real event ingestion pipelines run.
const dedupRingSize = 128

// eventKey identifies an accepted event for replay suppression.
type eventKey struct {
	device, attr, value string
	generatedAt         simtime.Time
}

// duplicate reports whether ev was already accepted, recording it if not.
func (s *EndpointServer) duplicate(ev rules.Event) bool {
	k := eventKey{ev.Device, ev.Attribute, ev.Value, ev.GeneratedAt}
	if s.dedupSeen[k] {
		return true
	}
	pos := s.dedupN % dedupRingSize
	if s.dedupN >= dedupRingSize {
		delete(s.dedupSeen, s.dedupRing[pos])
	}
	s.dedupRing[pos] = k
	s.dedupSeen[k] = true
	s.dedupN++
	return false
}

func (s *EndpointServer) forward(ev rules.Event) {
	if s.OnEvent == nil {
		return
	}
	s.clk.Schedule(s.cfg.CloudToCloudLatency, func() { s.OnEvent(ev) })
}

func eventOrigin(topic string) (string, bool) {
	const suffix = "/event"
	if len(topic) <= len(suffix) || topic[len(topic)-len(suffix):] != suffix {
		return "", false
	}
	return topic[:len(topic)-len(suffix)], true
}

func cutEq(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}
