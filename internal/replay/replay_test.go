package replay_test

import (
	"testing"

	"repro/internal/device"
	"repro/internal/ipaddr"
	"repro/internal/replay"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// fakeCapture builds a capture transcript for one device flow: keep-alive,
// event, keep-alive, plus a second flow as a decoy. Payloads are synthetic —
// the helpers under test select records by classifier verdict and flow
// membership, never by content.
func fakeCapture(t *testing.T, label string) ([]sniff.RecordMeta, sniff.FlowKey) {
	t.Helper()
	var prof device.Profile
	for _, p := range device.Catalog() {
		if p.Label == label {
			prof = p
		}
	}
	if prof.Label == "" {
		t.Fatalf("label %s not in catalog", label)
	}
	flow := sniff.FlowKey{
		Client: tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.30"), Port: 40000},
		Server: tcpsim.Endpoint{Addr: ipaddr.MustParse("100.64.10.10"), Port: 8883},
	}
	decoy := sniff.FlowKey{
		Client: tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.31"), Port: 40001},
		Server: flow.Server,
	}
	rec := func(f sniff.FlowKey, dir sniff.Direction, wire int) sniff.RecordMeta {
		return sniff.RecordMeta{
			Flow: f, Dir: dir, Type: tlssim.RecordApplication,
			WireLen: wire, Payload: make([]byte, wire),
		}
	}
	ka := prof.KeepAliveLen + tlssim.Overhead
	ev := prof.EventLen + tlssim.Overhead
	records := []sniff.RecordMeta{
		rec(flow, sniff.DirClientToServer, ka),
		rec(decoy, sniff.DirClientToServer, ka+1), // wrong length: unclassified
		rec(flow, sniff.DirServerToClient, ev),    // wrong direction
		rec(flow, sniff.DirClientToServer, ev),    // the event
		rec(flow, sniff.DirClientToServer, ka),    // traffic after the event
	}
	return records, flow
}

func TestFindEventRecordPicksLatestEvent(t *testing.T) {
	const label = "P2"
	records, _ := fakeCapture(t, label)
	idx, ok := replay.FindEventRecord(sniff.CatalogClassifier(), label, label, records)
	if !ok || idx != 3 {
		t.Fatalf("FindEventRecord = %d, %v; want 3, true", idx, ok)
	}

	// A duplicate event later in the capture wins: newest-first scan.
	records = append(records, records[3])
	idx, ok = replay.FindEventRecord(sniff.CatalogClassifier(), label, label, records)
	if !ok || idx != 5 {
		t.Fatalf("after duplicate: FindEventRecord = %d, %v; want 5, true", idx, ok)
	}

	// Records without retained payloads cannot be replayed, so they are
	// skipped even when their lengths classify.
	for i := range records {
		records[i].Payload = nil
	}
	if _, ok := replay.FindEventRecord(sniff.CatalogClassifier(), label, label, records); ok {
		t.Fatal("payload-less capture yielded a replayable event")
	}
}

func TestSessionPrefixFiltersFlowAndDirection(t *testing.T) {
	records, flow := fakeCapture(t, "P2")
	prefix := replay.SessionPrefix(records, 3)
	// Device-to-server records of the event's flow, up to and including the
	// event: the opening keep-alive and the event itself. The decoy flow,
	// the server-to-client record and post-event traffic are all excluded.
	if len(prefix) != 2 {
		t.Fatalf("prefix has %d records, want 2: %+v", len(prefix), prefix)
	}
	for _, r := range prefix {
		if r.Flow != flow || r.Dir != sniff.DirClientToServer {
			t.Fatalf("prefix leaked a foreign record: %+v", r)
		}
	}
	if prefix[len(prefix)-1].WireLen != records[3].WireLen {
		t.Fatal("prefix does not end at the event record")
	}

	if replay.SessionPrefix(records, -1) != nil || replay.SessionPrefix(records, len(records)) != nil {
		t.Fatal("out-of-range index returned a prefix")
	}
}
