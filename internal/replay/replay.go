// Package replay implements the record-and-replay attack family: the
// attacker retains captured TLS record bytes (sniff.Capture in payload
// retention mode) and re-issues them against the victim's cloud, either
// verbatim on the hijacked session (raw injection) or re-encoded over a
// fresh attacker session at the application layer.
//
// Whether a replay lands depends entirely on the victim stack's replay
// protections, which is what the per-device assessment in
// internal/experiment classifies:
//
//   - seq-bound TLS rejects raw duplicates outright (bad_record_mac and
//     session teardown) and its ciphertext is unreadable, so both paths
//     die — the device is protected by its transport;
//   - legacy explicit-nonce TLS decrypts a verbatim replay against the
//     carried sequence, so raw injection works unless a DTLS-style
//     anti-replay window or server-side dedup discards the duplicate;
//   - null-cipher firmware additionally exposes the plaintext, so even a
//     window-protected session replays from a fresh attacker connection
//     unless the vendor cloud deduplicates events.
package replay

import (
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sniff"
	"repro/internal/tcpsim"
	"repro/internal/tlssim"
)

// Replay failure modes. These are preconditions, not verdicts: a replay
// that injects cleanly can still be silently dropped by the receiver.
var (
	// ErrNoPayload reports a record whose raw bytes were not retained
	// (capture not in retention mode, or the budget evicted them).
	ErrNoPayload = errors.New("replay: record payload not retained")
	// ErrNoBridge reports that the hijacker has no live bridge to inject
	// into (the session closed, or never existed — on-demand devices).
	ErrNoBridge = errors.New("replay: no live hijacked session")
	// ErrNotReadable reports a capture with no null-cipher plaintext to
	// re-issue at the application layer.
	ErrNotReadable = errors.New("replay: no readable plaintext in capture")
)

// Engine drives replay injections from one attacker foothold. The zero
// handles are no-ops; Instrument attaches counters and the trace ring.
type Engine struct {
	atk *core.Attacker

	injectedRaw *obs.Counter
	injectedApp *obs.Counter
	accepted    *obs.Counter
	rejected    *obs.Counter
	trace       *obs.Trace
}

// NewEngine creates an uninstrumented engine over the attacker's stacks.
func NewEngine(atk *core.Attacker) *Engine { return &Engine{atk: atk} }

// Instrument registers the engine's metrics with reg:
//
//	replay_injected_total{mode}   injections attempted (raw or app)
//	replay_accepted_total         injections the receiving cloud accepted
//	replay_rejected_total         injections dropped anywhere downstream
//
// and attaches the registry's trace ring (when enabled) so injections and
// verdicts land in the flight recorder.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.injectedRaw = reg.Counter("replay_injected_total", obs.L("mode", "raw"))
	e.injectedApp = reg.Counter("replay_injected_total", obs.L("mode", "app"))
	e.accepted = reg.Counter("replay_accepted_total")
	e.rejected = reg.Counter("replay_rejected_total")
	if tr := reg.Trace(); tr.Enabled() {
		e.trace = tr
	}
}

func (e *Engine) emit(event, detail string, value int64) {
	if e.trace == nil {
		return
	}
	e.trace.Emit(e.atk.Clock.Now(), "replay", event, detail, value)
}

// RawReplay re-injects a captured record's wire bytes into the hijacker's
// live bridge, in the record's original direction. The receiver's TLS
// stack decides the outcome: seq-bound sessions alert and tear down,
// explicit-sequence sessions accept the duplicate or window-drop it.
func (e *Engine) RawReplay(h *core.Hijacker, rec sniff.RecordMeta) error {
	if len(rec.Payload) == 0 {
		return ErrNoPayload
	}
	b, ok := h.CurrentBridge()
	if !ok {
		return ErrNoBridge
	}
	b.Inject(rec.Dir, rec.Payload)
	e.injectedRaw.Inc()
	e.emit("replay_injected", "raw:"+h.Target().Model, int64(rec.WireLen))
	return nil
}

// AppSession is one fresh attacker connection replaying captured
// plaintexts at the application layer. The session is deliberately left
// open after sending: gracefully closing a superseding MQTT session
// raises the broker's device-offline alarm, while an idle session is
// reaped silently (Finding 3) or superseded by the real device's next
// message without any alarm (Finding 2).
type AppSession struct {
	// Conn is the attacker's TLS session to the server.
	Conn *tlssim.Conn
	// Sent counts the plaintexts queued for the session; they go out when
	// the handshake completes (drive the simulation clock to land them).
	Sent int
}

// AppReplay re-issues the readable device-to-server plaintexts of a
// captured conversation, in capture order, over a fresh attacker session
// to the server. Only null-cipher records are readable; a capture with
// none returns ErrNotReadable before any connection is made. Replaying
// the full prefix (connect/keepalive traffic and then the event)
// reproduces the device's own conversation shape, so brokers that expect
// a CONNECT before PUBLISH are satisfied too.
func (e *Engine) AppReplay(server tcpsim.Endpoint, records []sniff.RecordMeta) (*AppSession, error) {
	var plains [][]byte
	for _, r := range records {
		if r.Dir != sniff.DirClientToServer {
			continue
		}
		if p := tlssim.ReadPlaintext(r.Payload); p != nil {
			plains = append(plains, p)
		}
	}
	if len(plains) == 0 {
		return nil, ErrNotReadable
	}
	// The attacker has no device keys, so it offers the one mode it can
	// speak without them; the server adopts the client's offer.
	tcp := e.atk.TCP.Dial(server)
	sess := tlssim.ClientWithMode(tcp, e.atk.RNG(), tlssim.ModeNullCipher, 0)
	s := &AppSession{Conn: sess}
	sess.OnEstablished = func() {
		for _, p := range plains {
			if sess.Send(p) == nil {
				s.Sent++
			}
		}
		e.injectedApp.Add(uint64(s.Sent))
		e.emit("replay_injected", "app", int64(s.Sent))
	}
	return s, nil
}

// ReportOutcome records the ground-truth verdict for one injection —
// whether the replayed event was ultimately accepted by the automation
// backend — into the engine's metrics and trace.
func (e *Engine) ReportOutcome(target string, accepted bool) {
	if accepted {
		e.accepted.Inc()
		e.emit("replay_accepted", target, 1)
		return
	}
	e.rejected.Inc()
	e.emit("replay_rejected", target, 0)
}

// FindEventRecord scans a capture newest-first for the latest
// payload-bearing application record that the classifier attributes to
// origin's event message on owner's session, returning its index.
func FindEventRecord(cl *sniff.Classifier, owner, origin string, records []sniff.RecordMeta) (int, bool) {
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		if r.Dir != sniff.DirClientToServer || len(r.Payload) == 0 || r.Type != tlssim.RecordApplication {
			continue
		}
		if m, ok := cl.Classify(owner, r); ok && m.Kind == sniff.KindEvent && m.Origin == origin {
			return i, true
		}
	}
	return 0, false
}

// SessionPrefix returns the device-to-server records of records[idx]'s
// flow up to and including idx, in capture order — the conversation an
// application-layer replay re-issues against a fresh session.
func SessionPrefix(records []sniff.RecordMeta, idx int) []sniff.RecordMeta {
	if idx < 0 || idx >= len(records) {
		return nil
	}
	flow := records[idx].Flow
	var out []sniff.RecordMeta
	for i := 0; i <= idx; i++ {
		if records[i].Flow == flow && records[i].Dir == sniff.DirClientToServer {
			out = append(out, records[i])
		}
	}
	return out
}
