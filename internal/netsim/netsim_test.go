package netsim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func newTestNet(t *testing.T) (*simtime.Clock, *Network, *Segment) {
	t.Helper()
	clk := simtime.NewClock()
	net := NewNetwork(clk, 1)
	seg := net.NewSegment("lan", time.Millisecond, 0)
	return clk, net, seg
}

func TestUnicastDelivery(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	var got []byte
	b.SetHandler(func(_ *NIC, f Frame) { got = f.Payload })
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4, Payload: []byte("hi")})
	clk.Run()
	if string(got) != "hi" {
		t.Fatalf("payload = %q, want hi", got)
	}
}

func TestUnicastNotDeliveredToOthers(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	c := net.NewHost("c").AttachNIC(seg)
	bGot, cGot := 0, 0
	b.SetHandler(func(_ *NIC, f Frame) { bGot++ })
	c.SetHandler(func(_ *NIC, f Frame) { cGot++ })
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if bGot != 1 || cGot != 0 {
		t.Fatalf("b=%d c=%d, want 1,0", bGot, cGot)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	c := net.NewHost("c").AttachNIC(seg)
	bGot, cGot, aGot := 0, 0, 0
	a.SetHandler(func(_ *NIC, f Frame) { aGot++ })
	b.SetHandler(func(_ *NIC, f Frame) { bGot++ })
	c.SetHandler(func(_ *NIC, f Frame) { cGot++ })
	a.Send(Frame{Dst: BroadcastMAC, Type: EtherTypeARP})
	clk.Run()
	if bGot != 1 || cGot != 1 {
		t.Fatalf("b=%d c=%d, want 1,1", bGot, cGot)
	}
	if aGot != 0 {
		t.Fatal("sender should not receive its own broadcast")
	}
}

func TestPromiscuousSeesUnicast(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	sniffer := net.NewHost("attacker").AttachNIC(seg)
	sniffed := 0
	sniffer.SetPromiscuous(true)
	sniffer.SetHandler(func(_ *NIC, f Frame) { sniffed++ })
	b.SetHandler(func(_ *NIC, f Frame) {})
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if sniffed != 1 {
		t.Fatalf("promiscuous NIC saw %d frames, want 1", sniffed)
	}
}

func TestTapSeesEverything(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	b.SetHandler(func(_ *NIC, f Frame) {})
	var taps int
	seg.AddTap(func(f Frame) { taps++ })
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	a.Send(Frame{Dst: BroadcastMAC, Type: EtherTypeARP})
	clk.Run()
	if taps != 2 {
		t.Fatalf("tap saw %d frames, want 2", taps)
	}
}

func TestLatencyApplied(t *testing.T) {
	clk := simtime.NewClock()
	net := NewNetwork(clk, 1)
	seg := net.NewSegment("lan", 5*time.Millisecond, 0)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	var at simtime.Time
	b.SetHandler(func(_ *NIC, f Frame) { at = clk.Now() })
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
}

func TestJitterBounded(t *testing.T) {
	clk := simtime.NewClock()
	net := NewNetwork(clk, 42)
	seg := net.NewSegment("lan", 10*time.Millisecond, 0.5)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	var times []simtime.Time
	b.SetHandler(func(_ *NIC, f Frame) { times = append(times, clk.Now()) })
	for i := 0; i < 100; i++ {
		a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	}
	clk.Run()
	for _, at := range times {
		if at < 5*time.Millisecond || at > 15*time.Millisecond {
			t.Fatalf("jittered delivery at %v outside [5ms,15ms]", at)
		}
	}
}

func TestSpoofedSourcePreserved(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	fake := MAC{0x02, 0x00, 0xde, 0xad, 0xbe, 0xef}
	var gotSrc MAC
	b.SetHandler(func(_ *NIC, f Frame) { gotSrc = f.Src })
	a.Send(Frame{Src: fake, Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if gotSrc != fake {
		t.Fatalf("src = %v, want spoofed %v", gotSrc, fake)
	}
}

func TestZeroSourceStamped(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	var gotSrc MAC
	b.SetHandler(func(_ *NIC, f Frame) { gotSrc = f.Src })
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if gotSrc != a.MAC() {
		t.Fatalf("src = %v, want NIC MAC %v", gotSrc, a.MAC())
	}
}

func TestPayloadCopiedAtBoundary(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	var got []byte
	b.SetHandler(func(_ *NIC, f Frame) { got = f.Payload })
	p := []byte("original")
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4, Payload: p})
	copy(p, "mutated!")
	clk.Run()
	if string(got) != "original" {
		t.Fatalf("payload = %q, sender mutation leaked", got)
	}
}

func TestDownNICDropsTraffic(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	got := 0
	b.SetHandler(func(_ *NIC, f Frame) { got++ })
	b.SetDown(true)
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if got != 0 {
		t.Fatal("down NIC received a frame")
	}
	// The suppressed reception is counted, on the NIC and the segment.
	if b.Stats().DropsIfaceDown != 1 {
		t.Fatalf("rx-down drop = %d, want 1", b.Stats().DropsIfaceDown)
	}
	if seg.Stats().DropsIfaceDown != 1 || seg.Stats().DropsNoReceiver != 0 {
		t.Fatalf("segment drop split = %+v, want one iface_down drop", seg.Stats())
	}
	b.SetDown(false)
	a.SetDown(true)
	sentBefore := seg.Stats().FramesSent
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if got != 0 {
		t.Fatal("down NIC transmitted a frame")
	}
	// The refused transmission is counted on the NIC and never enters the
	// segment's sent accounting.
	if a.Stats().DropsIfaceDown != 1 {
		t.Fatalf("tx-down drop = %d, want 1", a.Stats().DropsIfaceDown)
	}
	if seg.Stats().FramesSent != sentBefore {
		t.Fatalf("refused tx leaked into segment FramesSent")
	}
}

func TestStatsCounters(t *testing.T) {
	clk, net, seg := newTestNet(t)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	b.SetHandler(func(_ *NIC, f Frame) {})
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4, Payload: make([]byte, 100)})
	a.Send(Frame{Dst: MAC{0x02, 0, 0, 0, 0, 0x99}, Type: EtherTypeIPv4}) // nobody
	clk.Run()
	st := seg.Stats()
	if st.FramesSent != 2 {
		t.Fatalf("FramesSent = %d, want 2", st.FramesSent)
	}
	if st.FramesDelivered != 1 || st.FramesDropped() != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 1,1", st.FramesDelivered, st.FramesDropped())
	}
	if st.DropsNoReceiver != 1 || st.DropsLoss != 0 || st.DropsIfaceDown != 0 {
		t.Fatalf("drop split = %+v, want exactly one no_receiver drop", st)
	}
	if st.BytesSent != uint64(14+100+14) {
		t.Fatalf("BytesSent = %d, want %d", st.BytesSent, 14+100+14)
	}
	if a.Stats().FramesSent != 2 {
		t.Fatalf("NIC FramesSent = %d, want 2", a.Stats().FramesSent)
	}
}

func TestDuplicateHostNamePanics(t *testing.T) {
	_, net, _ := newTestNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate host name")
		}
	}()
	net.NewHost("a")
	net.NewHost("a")
}

func TestHostLookup(t *testing.T) {
	_, net, _ := newTestNet(t)
	h := net.NewHost("router")
	if net.Host("router") != h {
		t.Fatal("Host lookup failed")
	}
	if net.Host("nope") != nil {
		t.Fatal("unknown host should be nil")
	}
}

func TestUniqueMACs(t *testing.T) {
	_, net, seg := newTestNet(t)
	seen := make(map[MAC]bool)
	for i := 0; i < 50; i++ {
		nic := net.NewHost(string(rune('A' + i))).AttachNIC(seg)
		if seen[nic.MAC()] {
			t.Fatalf("duplicate MAC %v", nic.MAC())
		}
		seen[nic.MAC()] = true
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	if m.String() != "02:00:00:00:00:01" {
		t.Fatalf("String() = %q", m.String())
	}
	if !BroadcastMAC.IsBroadcast() {
		t.Fatal("BroadcastMAC.IsBroadcast() = false")
	}
	if !(MAC{}).IsZero() {
		t.Fatal("zero MAC not detected")
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	clk := simtime.NewClock()
	net := NewNetwork(clk, 7)
	seg := net.NewSegment("lossy", time.Millisecond, 0)
	seg.SetLossRate(0.5)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	got := 0
	b.SetHandler(func(_ *NIC, f Frame) { got++ })
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	}
	clk.Run()
	if got < 400 || got > 600 {
		t.Fatalf("delivered %d/%d at 50%% loss, want about half", got, n)
	}
	if int(seg.Stats().DropsLoss) != n-got {
		t.Fatalf("loss-drop stat = %d, want %d", seg.Stats().DropsLoss, n-got)
	}
	if seg.Stats().FramesDropped() != seg.Stats().DropsLoss {
		t.Fatalf("loss should be the only drop cause: %+v", seg.Stats())
	}
}

func TestLossRateClamped(t *testing.T) {
	clk := simtime.NewClock()
	net := NewNetwork(clk, 7)
	seg := net.NewSegment("l", 0, 0)
	seg.SetLossRate(-1)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	got := 0
	b.SetHandler(func(_ *NIC, f Frame) { got++ })
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if got != 1 {
		t.Fatal("negative loss rate should clamp to 0")
	}
	seg.SetLossRate(2)
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if got != 1 {
		t.Fatal("loss rate above 1 should clamp to always-drop")
	}
}
