package netsim

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

func TestSegmentMetricsMirrorStats(t *testing.T) {
	clk := simtime.NewClock()
	reg := obs.NewRegistry()
	net := NewNetwork(clk, 1)
	net.Instrument(reg)
	seg := net.NewSegment("lan", time.Millisecond, 0)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	b.SetHandler(func(_ *NIC, f Frame) {})

	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4, Payload: make([]byte, 50)})
	a.Send(Frame{Dst: MAC{0x02, 0, 0, 0, 0, 0x99}, Type: EtherTypeIPv4}) // nobody
	clk.Run()
	b.SetDown(true)
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4}) // blocked rx
	clk.Run()

	snap := reg.Snapshot()
	lan := obs.L("segment", "lan")
	if got := snap.Counter("netsim_frames_sent_total", lan); got != 3 {
		t.Fatalf("frames_sent = %d, want 3", got)
	}
	if got := snap.Counter("netsim_frames_delivered_total", lan); got != 1 {
		t.Fatalf("frames_delivered = %d, want 1", got)
	}
	if got := snap.Counter("netsim_frames_dropped_total", lan, obs.L("reason", "no_receiver")); got != 1 {
		t.Fatalf("no_receiver drops = %d, want 1", got)
	}
	if got := snap.Counter("netsim_frames_dropped_total", lan, obs.L("reason", "iface_down")); got != 1 {
		t.Fatalf("iface_down drops = %d, want 1", got)
	}
	if got := snap.Counter("netsim_bytes_sent_total", lan); got != uint64(14+50+14+14) {
		t.Fatalf("bytes_sent = %d", got)
	}
	// The obs counters mirror the struct stats exactly.
	st := seg.Stats()
	if st.FramesSent != 3 || st.FramesDelivered != 1 || st.FramesDropped() != 2 {
		t.Fatalf("struct stats diverged: %+v", st)
	}
}

func TestLossMetricCounted(t *testing.T) {
	clk := simtime.NewClock()
	reg := obs.NewRegistry()
	net := NewNetwork(clk, 7)
	net.Instrument(reg)
	seg := net.NewSegment("lossy", 0, 0)
	seg.SetLossRate(1)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	b.SetHandler(func(_ *NIC, f Frame) {})
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if got := reg.Snapshot().Counter("netsim_frames_dropped_total",
		obs.L("segment", "lossy"), obs.L("reason", "loss")); got != 1 {
		t.Fatalf("loss drops = %d, want 1", got)
	}
}

func TestUninstrumentedNetworkStillCounts(t *testing.T) {
	clk := simtime.NewClock()
	net := NewNetwork(clk, 1)
	seg := net.NewSegment("lan", 0, 0)
	a := net.NewHost("a").AttachNIC(seg)
	b := net.NewHost("b").AttachNIC(seg)
	b.SetHandler(func(_ *NIC, f Frame) {})
	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	clk.Run()
	if seg.Stats().FramesDelivered != 1 {
		t.Fatal("struct stats must work without a registry")
	}
}
