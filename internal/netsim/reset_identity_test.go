package netsim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// driveNetWorkload builds a three-host jittered LAN on the network — the
// same calls whether the topology comes from fresh allocations or the
// reset pools — drives unicast and broadcast traffic, and fingerprints
// everything observable: assigned MACs, delivery order and timing, NIC
// stats and the full metrics snapshot.
func driveNetWorkload(t *testing.T, clk *simtime.Clock, nw *Network, reg *obs.Registry) string {
	t.Helper()
	clk.Instrument(reg)
	nw.Instrument(reg)
	seg := nw.NewSegment("lan", time.Millisecond, 0.2) // jitter draws the network RNG per frame
	a := nw.NewHost("a").AttachNIC(seg)
	b := nw.NewHost("b").AttachNIC(seg)
	c := nw.NewHost("c").AttachNIC(seg)
	var lines []string
	rec := func(name string) func(*NIC, Frame) {
		return func(_ *NIC, f Frame) {
			lines = append(lines, fmt.Sprintf("%s<-%q@%v", name, f.Payload, clk.Now()))
		}
	}
	a.SetHandler(rec("a"))
	b.SetHandler(rec("b"))
	c.SetHandler(rec("c"))
	for i := 0; i < 6; i++ {
		a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4, Payload: []byte(fmt.Sprintf("p%d", i))})
	}
	b.Send(Frame{Dst: BroadcastMAC, Type: EtherTypeARP, Payload: []byte("who-has")})
	clk.Run()
	snap, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("macs=%v/%v/%v lines=%v stats=%+v/%+v now=%v snap=%s",
		a.MAC(), b.MAC(), c.MAC(), lines, a.Stats(), b.Stats(), clk.Now(), snap)
}

// TestNetworkResetByteIdentity recycles a network that still has a frame
// in flight (its delivery timer pending) through Reset and requires the
// rebuilt topology to replay a jittered workload byte-identically to a
// fresh network — same MAC assignments, same delivery timing, same
// instrumented counters.
func TestNetworkResetByteIdentity(t *testing.T) {
	clkFresh := simtime.NewClock()
	fresh := driveNetWorkload(t, clkFresh, NewNetwork(clkFresh, 42), obs.NewRegistry())

	clk := simtime.NewClock()
	nw := NewNetwork(clk, 9)
	reg := obs.NewRegistry()
	clk.Instrument(reg)
	nw.Instrument(reg)
	seg := nw.NewSegment("wan", 500*time.Millisecond, 0)
	x := nw.NewHost("x").AttachNIC(seg)
	y := nw.NewHost("y").AttachNIC(seg)
	y.SetHandler(func(*NIC, Frame) {})
	x.Send(Frame{Dst: y.MAC(), Type: EtherTypeIPv4, Payload: []byte("in-flight")})
	clk.RunFor(time.Millisecond) // the delivery timer is still pending

	// Teardown order mirrors the testbed arena: clock first, so the
	// in-flight delivery's timer is already inert when Reset reclaims it.
	clk.Reset()
	nw.Reset(42)
	reg.Reset()
	clk.Instrument(reg)
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == "simtime_queue_depth" && (g.Value != 0 || g.Max != 0) {
			t.Fatalf("simtime_queue_depth after reset = %d (max %d), want 0", g.Value, g.Max)
		}
	}
	if got := driveNetWorkload(t, clk, nw, reg); got != fresh {
		t.Errorf("recycled network diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}

	// Second generation: the pools are now warm; identity must hold again.
	clk.Reset()
	nw.Reset(42)
	reg.Reset()
	if got := driveNetWorkload(t, clk, nw, reg); got != fresh {
		t.Errorf("second recycling generation diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}
}
