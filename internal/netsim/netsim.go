// Package netsim models a layer-2 network: broadcast segments (one per
// WiFi LAN or point-to-point uplink), hosts with NICs, and frame delivery
// with configurable latency and jitter.
//
// The medium is a broadcast domain, like WiFi: every frame is observable by
// promiscuous NICs and segment taps regardless of its destination MAC. This
// is what makes the paper's sniffing step possible, and ARP cache poisoning
// (package arp) is what redirects unicast traffic through an attacker.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// MAC is a 48-bit hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether m is the all-zeros (unset) address.
func (m MAC) IsZero() bool { return m == MAC{} }

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// EtherType values mirror the real registry for the two protocols we carry.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// Frame is a layer-2 frame.
type Frame struct {
	Src     MAC
	Dst     MAC
	Type    EtherType
	Payload []byte
}

// Len returns the frame's size in bytes, counting a fixed 14-byte header.
func (f Frame) Len() int { return 14 + len(f.Payload) }

// Tap observes every frame delivered on a segment. Taps receive frames at
// delivery time, after the propagation delay.
type Tap func(Frame)

// Network owns segments and hosts and assigns deterministic MAC addresses.
type Network struct {
	clk     *simtime.Clock
	rng     *simtime.Rand
	macSeq  uint32
	hosts   map[string]*Host
	segs    []*Segment
	metrics *obs.Registry
	// free is the in-flight-frame pool: each delivery owns a payload buffer
	// and a rearm-in-place timer, recycled the moment the frame has been
	// handed to every receiver. Steady-state frame transport allocates
	// nothing once the pool has grown to the peak in-flight depth.
	free []*delivery
	// allDeliv tracks every delivery ever created so Reset can reclaim the
	// ones still in flight (their timers were cancelled with the clock).
	allDeliv []*delivery
	// Topology pools: Reset parks every segment, host and NIC here, and the
	// constructors revive them fully reinitialised, so a rebuilt topology of
	// the same shape allocates nothing.
	segFree  []*Segment
	hostFree []*Host
	nicFree  []*NIC
}

// NewNetwork creates a network on the given clock. The seed drives latency
// jitter; the same seed reproduces the same run.
func NewNetwork(clk *simtime.Clock, seed int64) *Network {
	return &Network{
		clk:   clk,
		rng:   simtime.NewRand(seed),
		hosts: make(map[string]*Host),
	}
}

// Reset returns the network to its freshly constructed state for the given
// seed while keeping its allocations: the RNG is reseeded in place, the
// topology is torn down with every segment, host and NIC parked in pools
// for the constructors to revive, and in-flight deliveries are reclaimed
// (their timers stopped if still pending). Segments and hosts are rebuilt
// by the caller; a reset network behaves byte-identically to
// NewNetwork(clk, seed).
func (n *Network) Reset(seed int64) {
	n.rng.Reseed(seed)
	n.macSeq = 0
	n.metrics = nil
	// Reclaim NICs through the segments (each NIC sits on exactly one), then
	// the segments themselves. Handler and tap closures pin whole protocol
	// stacks, so every reference is cleared before pooling.
	for _, s := range n.segs {
		for i, nic := range s.nics {
			*nic = NIC{}
			n.nicFree = append(n.nicFree, nic)
			s.nics[i] = nil
		}
		nics, taps := s.nics[:0], s.taps[:0]
		clear(s.taps)
		*s = Segment{nics: nics, taps: taps}
		n.segFree = append(n.segFree, s)
	}
	n.segs = n.segs[:0]
	// Host reclaim order follows map iteration; pooled objects are fully
	// reinitialised on revival, so the order is unobservable.
	for _, h := range n.hosts {
		for i := range h.nics {
			h.nics[i] = nil
		}
		nics := h.nics[:0]
		*h = Host{nics: nics}
		//lint:allow maporder -- free-pool order is unobservable: revival reinitialises fully
		n.hostFree = append(n.hostFree, h)
	}
	clear(n.hosts)
	// Deliveries still in flight hold frame state and (unless the caller
	// already reset the clock) a pending timer; both are released here.
	for _, d := range n.allDeliv {
		d.tm.Stop()
		d.seg, d.from, d.f = nil, nil, Frame{}
	}
	n.free = append(n.free[:0], n.allDeliv...)
}

// delivery is one frame in flight: scheduled at send time, fired at
// delivery time, recycled immediately after.
type delivery struct {
	net  *Network
	seg  *Segment
	from *NIC
	f    Frame
	buf  []byte // owned; f.Payload aliases it while in flight
	tm   *simtime.Timer
}

func (d *delivery) fire() {
	d.seg.deliver(d.from, d.f)
	// Receivers must have copied what they keep (taps and protocol layers
	// above copy at their own boundaries), so the buffer recycles here.
	d.seg, d.from, d.f = nil, nil, Frame{}
	d.net.free = append(d.net.free, d)
}

func (n *Network) getDelivery() *delivery {
	if len(n.free) == 0 {
		d := &delivery{net: n}
		d.tm = n.clk.NewTimer(d.fire)
		n.allDeliv = append(n.allDeliv, d)
		return d
	}
	d := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	return d
}

// Clock returns the virtual clock the network runs on.
func (n *Network) Clock() *simtime.Clock { return n.clk }

// Instrument attaches a metrics registry. Segments created afterwards
// export per-segment counters:
//
//	netsim_frames_sent_total{segment}      frames put on the medium
//	netsim_bytes_sent_total{segment}       bytes put on the medium
//	netsim_frames_delivered_total{segment} frames a NIC handled
//	netsim_frames_dropped_total{segment,reason}
//	    reason: loss | no_receiver | iface_down
//
// Call it before building the topology; segments created earlier stay
// uninstrumented (their Stats struct still counts everything).
func (n *Network) Instrument(reg *obs.Registry) { n.metrics = reg }

// NewSegment creates a broadcast segment. Frames experience the given base
// latency perturbed by the jitter factor (0 disables jitter).
func (n *Network) NewSegment(name string, latency time.Duration, jitter float64) *Segment {
	if latency < 0 {
		latency = 0
	}
	s := &Segment{}
	if k := len(n.segFree); k > 0 {
		s, n.segFree[k-1] = n.segFree[k-1], nil
		n.segFree = n.segFree[:k-1]
	}
	s.net, s.name, s.latency, s.jitter = n, name, latency, jitter
	s.met = newSegMetrics(n.metrics, name)
	n.segs = append(n.segs, s)
	return s
}

// NewHost creates a named host. Host names must be unique.
func (n *Network) NewHost(name string) *Host {
	if _, dup := n.hosts[name]; dup {
		panic("netsim: duplicate host name " + name)
	}
	h := &Host{}
	if k := len(n.hostFree); k > 0 {
		h, n.hostFree[k-1] = n.hostFree[k-1], nil
		n.hostFree = n.hostFree[:k-1]
	}
	h.net, h.name = n, name
	n.hosts[name] = h
	return h
}

// Host returns the host with the given name, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

func (n *Network) nextMAC() MAC {
	n.macSeq++
	s := n.macSeq
	// Locally administered unicast prefix 02:00.
	return MAC{0x02, 0x00, byte(s >> 24), byte(s >> 16), byte(s >> 8), byte(s)}
}

// Stats counts traffic on a segment or NIC. Drops are split by cause so
// profiler-facing numbers are truthful: injected medium loss, frames no
// powered-up NIC wanted (taps may still have observed them), and frames
// blocked by an administratively-down interface.
type Stats struct {
	FramesSent      uint64
	BytesSent       uint64
	FramesDelivered uint64
	// DropsLoss counts frames lost to the segment's injected loss rate.
	DropsLoss uint64
	// DropsNoReceiver counts frames delivered to the medium that no NIC
	// accepted (unknown destination, or the only match had no handler).
	DropsNoReceiver uint64
	// DropsIfaceDown counts frames blocked by a down interface: on a NIC,
	// both refused transmissions and suppressed receptions; on a segment,
	// frames whose only would-be receivers were down.
	DropsIfaceDown uint64
}

// FramesDropped totals the drop counters across causes.
func (s Stats) FramesDropped() uint64 {
	return s.DropsLoss + s.DropsNoReceiver + s.DropsIfaceDown
}

// segMetrics are a segment's obs counter handles (nil when the owning
// network is uninstrumented; all methods no-op).
type segMetrics struct {
	framesSent      *obs.Counter
	bytesSent       *obs.Counter
	framesDelivered *obs.Counter
	dropsLoss       *obs.Counter
	dropsNoReceiver *obs.Counter
	dropsIfaceDown  *obs.Counter
}

func newSegMetrics(reg *obs.Registry, segment string) segMetrics {
	if reg == nil {
		return segMetrics{}
	}
	l := obs.L("segment", segment)
	drop := func(reason string) *obs.Counter {
		return reg.Counter("netsim_frames_dropped_total", l, obs.L("reason", reason))
	}
	return segMetrics{
		framesSent:      reg.Counter("netsim_frames_sent_total", l),
		bytesSent:       reg.Counter("netsim_bytes_sent_total", l),
		framesDelivered: reg.Counter("netsim_frames_delivered_total", l),
		dropsLoss:       drop("loss"),
		dropsNoReceiver: drop("no_receiver"),
		dropsIfaceDown:  drop("iface_down"),
	}
}

// Segment is a broadcast domain.
type Segment struct {
	net      *Network
	name     string
	latency  time.Duration
	jitter   float64
	lossRate float64
	nics     []*NIC
	taps     []Tap
	stats    Stats
	met      segMetrics
}

// SetLossRate makes the segment drop frames uniformly at the given
// probability (deterministic per seed). Used for failure-injection tests:
// the phantom-delay attack never drops frames itself, but the TCP layer
// underneath must survive a lossy medium.
func (s *Segment) SetLossRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s.lossRate = p
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// Stats returns a copy of the segment's traffic counters.
func (s *Segment) Stats() Stats { return s.stats }

// AddTap registers a passive observer of all frames on the segment.
func (s *Segment) AddTap(t Tap) { s.taps = append(s.taps, t) }

// send delivers f from the given NIC after the propagation delay.
func (s *Segment) send(from *NIC, f Frame) {
	s.stats.FramesSent++
	s.stats.BytesSent += uint64(f.Len())
	s.met.framesSent.Inc()
	s.met.bytesSent.Add(uint64(f.Len()))
	if s.lossRate > 0 && s.net.rng.Float64() < s.lossRate {
		s.stats.DropsLoss++
		s.met.dropsLoss.Inc()
		return
	}
	delay := s.latency
	if s.jitter > 0 {
		delay = s.net.rng.Jitter(s.latency, s.jitter)
	}
	// Copy the payload at the boundary so senders cannot mutate frames in
	// flight. The copy lives in a pooled buffer that recycles at delivery,
	// so steady-state transport does not allocate per frame.
	d := s.net.getDelivery()
	d.seg, d.from = s, from
	if len(f.Payload) > 0 {
		d.buf = append(d.buf[:0], f.Payload...)
		f.Payload = d.buf
	}
	d.f = f
	d.tm.Reset(delay)
}

func (s *Segment) deliver(from *NIC, f Frame) {
	for _, t := range s.taps {
		t(f)
	}
	delivered := false
	blockedByDown := false
	for _, nic := range s.nics {
		if nic == from {
			continue
		}
		wants := f.Dst.IsBroadcast() || nic.mac == f.Dst || nic.promiscuous
		if !wants {
			continue
		}
		if nic.down {
			// The frame reached a station that would have taken it, but the
			// interface is administratively down: count the suppressed rx.
			nic.stats.DropsIfaceDown++
			blockedByDown = true
			continue
		}
		if nic.handler == nil {
			continue
		}
		nic.stats.FramesDelivered++
		nic.handler(nic, f)
		delivered = true
	}
	switch {
	case delivered:
		s.stats.FramesDelivered++
		s.met.framesDelivered.Inc()
	case blockedByDown:
		s.stats.DropsIfaceDown++
		s.met.dropsIfaceDown.Inc()
	default:
		// Taps may have observed the frame, but no NIC wanted it.
		s.stats.DropsNoReceiver++
		s.met.dropsNoReceiver.Inc()
	}
}

// Host is a machine with one or more NICs.
type Host struct {
	net  *Network
	name string
	nics []*NIC
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// NICs returns the host's interfaces in attachment order.
func (h *Host) NICs() []*NIC {
	out := make([]*NIC, len(h.nics))
	copy(out, h.nics)
	return out
}

// AttachNIC connects the host to a segment with a fresh MAC address.
func (h *Host) AttachNIC(seg *Segment) *NIC {
	n := h.net
	nic := &NIC{}
	if k := len(n.nicFree); k > 0 {
		nic, n.nicFree[k-1] = n.nicFree[k-1], nil
		n.nicFree = n.nicFree[:k-1]
	}
	nic.host, nic.seg, nic.mac = h, seg, n.nextMAC()
	h.nics = append(h.nics, nic)
	seg.nics = append(seg.nics, nic)
	return nic
}

// NIC is a network interface on a segment.
type NIC struct {
	host        *Host
	seg         *Segment
	mac         MAC
	handler     func(*NIC, Frame)
	promiscuous bool
	down        bool
	stats       Stats
}

// MAC returns the interface's hardware address.
func (nic *NIC) MAC() MAC { return nic.mac }

// Host returns the owning host.
func (nic *NIC) Host() *Host { return nic.host }

// Segment returns the attached segment.
func (nic *NIC) Segment() *Segment { return nic.seg }

// Stats returns a copy of the NIC's counters.
func (nic *NIC) Stats() Stats { return nic.stats }

// SetHandler installs the receive callback. Frames arriving while no
// handler is installed are dropped.
func (nic *NIC) SetHandler(fn func(*NIC, Frame)) { nic.handler = fn }

// SetPromiscuous toggles delivery of frames addressed to other stations.
// An attacker NIC uses this to sniff the WiFi medium.
func (nic *NIC) SetPromiscuous(on bool) { nic.promiscuous = on }

// SetDown toggles the interface administratively down (drops rx and tx).
func (nic *NIC) SetDown(down bool) { nic.down = down }

// Send transmits a frame on the segment. If f.Src is zero it is stamped
// with the NIC's own MAC; a non-zero Src is sent as-is, which is what
// permits spoofing.
func (nic *NIC) Send(f Frame) {
	if nic.down {
		// The frame never reaches the medium, so it does not enter the
		// segment's sent/dropped accounting — the refused tx is visible on
		// the NIC itself.
		nic.stats.DropsIfaceDown++
		return
	}
	if f.Src.IsZero() {
		f.Src = nic.mac
	}
	nic.stats.FramesSent++
	nic.stats.BytesSent += uint64(f.Len())
	nic.seg.send(nic, f)
}
