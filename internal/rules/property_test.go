package rules

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

// randomStore builds a store from fuzz input: attribute i of device "D<i>"
// gets value "0" or "1".
func randomStore(bits []bool) *Store {
	s := NewStore()
	for i, b := range bits {
		v := "0"
		if b {
			v = "1"
		}
		s.Set(deviceName(i), "a", v, 0)
	}
	return s
}

func deviceName(i int) string { return string(rune('A' + i%20)) }

func condFor(i int) Condition {
	return Eq{Device: deviceName(i), Attribute: "a", Value: "1"}
}

// Property: De Morgan — !(p && q) == (!p || !q) over random stores.
func TestPropertyDeMorgan(t *testing.T) {
	f := func(bits []bool, i, j uint8) bool {
		if len(bits) == 0 {
			bits = []bool{true}
		}
		s := randomStore(bits)
		p, q := condFor(int(i)), condFor(int(j))
		left := Not{And{p, q}}
		right := Or{Not{p}, Not{q}}
		return left.Eval(s) == right.Eval(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: double negation is identity.
func TestPropertyDoubleNegation(t *testing.T) {
	f := func(bits []bool, i uint8) bool {
		if len(bits) == 0 {
			bits = []bool{false}
		}
		s := randomStore(bits)
		p := condFor(int(i))
		return p.Eval(s) == (Not{Not{p}}).Eval(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: And is commutative and Or distributes over And.
func TestPropertyDistribution(t *testing.T) {
	f := func(bits []bool, i, j, k uint8) bool {
		if len(bits) == 0 {
			bits = []bool{true, false}
		}
		s := randomStore(bits)
		p, q, r := condFor(int(i)), condFor(int(j)), condFor(int(k))
		if (And{p, q}).Eval(s) != (And{q, p}).Eval(s) {
			return false
		}
		left := Or{p, And{q, r}}
		right := And{Or{p, q}, Or{p, r}}
		return left.Eval(s) == right.Eval(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: empty And is true, empty Or is false (the usual identities).
func TestEmptyCombinators(t *testing.T) {
	s := NewStore()
	if !(And{}).Eval(s) {
		t.Fatal("empty And should be true")
	}
	if (Or{}).Eval(s) {
		t.Fatal("empty Or should be false")
	}
}

// Property: the engine fires exactly the number of matching rule-action
// pairs for a random event stream against value-matching rules.
func TestPropertyEngineFiringCount(t *testing.T) {
	f := func(values []bool) bool {
		clk := simtime.NewClock()
		e := NewEngine(clk)
		fired := 0
		e.Execute = func(Action, Event) { fired++ }
		if err := e.AddRule(Rule{
			Name:    "r",
			Trigger: Trigger{Device: "D", Attribute: "a", Value: "1"},
			Actions: []Action{{Kind: ActionNotify, Message: "m"}},
		}); err != nil {
			return false
		}
		want := 0
		for _, b := range values {
			v := "0"
			if b {
				v = "1"
				want++
			}
			e.HandleEvent(Event{Device: "D", Attribute: "a", Value: v})
		}
		return fired == want && len(e.Trace()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: store reads return exactly the last write per key.
func TestPropertyStoreLastWriteWins(t *testing.T) {
	f := func(writes []uint8) bool {
		s := NewStore()
		last := map[string]string{}
		for i, w := range writes {
			dev := deviceName(int(w))
			val := string(rune('0' + w%10))
			s.Set(dev, "a", val, simtime.Time(i))
			last[dev] = val
		}
		for dev, want := range last {
			got, _, ok := s.Get(dev, "a")
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
